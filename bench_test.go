// Package repro's benchmark harness regenerates every table and figure of
// "Byzantine Attacks Exploiting Penalties in Ethereum PoS" (DSN 2024).
//
// Each benchmark runs the code that produces one paper artifact and reports
// the reproduced headline quantity as a custom metric, so that
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction record (see EXPERIMENTS.md for the
// paper-vs-measured index).
package repro

import (
	"runtime"
	"strings"
	"testing"

	"repro/gasperleak"
)

// BenchmarkTable1Scenarios runs all five scenarios at paper scale
// (Table 1). Metric: the Scenario 5.1 conflicting-finalization epoch.
func BenchmarkTable1Scenarios(b *testing.B) {
	var epoch float64
	for i := 0; i < b.N; i++ {
		rows, err := gasperleak.Table1(1)
		if err != nil {
			b.Fatal(err)
		}
		epoch = float64(rows[0].SimEpoch)
	}
	b.ReportMetric(epoch, "conflict-epochs(5.1)")
}

// BenchmarkTable2Slashing regenerates Table 2 (paper row beta0=0.2: 3107).
func BenchmarkTable2Slashing(b *testing.B) {
	var epoch float64
	for i := 0; i < b.N; i++ {
		s, err := gasperleak.Scenario521(0.5, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		epoch = float64(s.SimEpoch)
	}
	b.ReportMetric(epoch, "conflict-epochs(beta0=0.2)")
}

// BenchmarkTable3SemiActive regenerates Table 3 (paper row beta0=0.33: 556).
func BenchmarkTable3SemiActive(b *testing.B) {
	var epoch float64
	for i := 0; i < b.N; i++ {
		s, err := gasperleak.Scenario522(0.5, 0.33)
		if err != nil {
			b.Fatal(err)
		}
		epoch = float64(s.SimEpoch)
	}
	b.ReportMetric(epoch, "conflict-epochs(beta0=0.33)")
}

// BenchmarkFigure2StakeTrajectories regenerates Figure 2. Metric: the
// semi-active stake at epoch 4000 (ETH).
func BenchmarkFigure2StakeTrajectories(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		f := gasperleak.Figure2()
		v = f.Series[1].Values[400]
	}
	b.ReportMetric(v, "semiactive-ETH(t=4000)")
}

// BenchmarkFigure3ActiveRatio regenerates Figure 3. Metric: the p0=0.5
// ratio at epoch 4000.
func BenchmarkFigure3ActiveRatio(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		f := gasperleak.Figure3()
		v = f.Series[1].Values[400]
	}
	b.ReportMetric(v, "ratio(p0=0.5,t=4000)")
}

// BenchmarkFigure6ConflictCurves regenerates Figure 6 (100-point beta0
// sweep, numeric Equation 10 roots). Metric: semi-active epoch at
// beta0=0.33.
func BenchmarkFigure6ConflictCurves(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		f, err := gasperleak.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		v = f.Series[1].Values[len(f.X)-1]
	}
	b.ReportMetric(v, "semiactive-epochs(beta0=0.33)")
}

// BenchmarkFigure7ThresholdRegion regenerates Figure 7. Metric: the
// symmetric-corner threshold (paper: 0.2421).
func BenchmarkFigure7ThresholdRegion(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		f := gasperleak.Figure7()
		v = f.Series[2].Values[len(f.X)/2]
	}
	b.ReportMetric(v*1e4, "threshold-beta0-x1e4")
}

// BenchmarkFigure9Distribution regenerates Figure 9 at t=4024. Metric: the
// censored CDF at 26 ETH.
func BenchmarkFigure9Distribution(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		f := gasperleak.Figure9(4024)
		v = f.Series[1].Values[260]
	}
	b.ReportMetric(v, "cdf(26ETH,t=4024)")
}

// BenchmarkFigure10BounceProbability regenerates Figure 10's Equation 24
// curves. Metric: the beta0=1/3 probability at epoch 4000 (paper: 0.5).
func BenchmarkFigure10BounceProbability(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		f := gasperleak.Figure10()
		v = f.Series[0].Values[400]
	}
	b.ReportMetric(v, "P(beta>1/3)(t=4000)")
}

// BenchmarkFigure10MonteCarlo cross-checks Figure 10 with the exact integer
// Monte-Carlo at beta0=1/3. Metric: the Monte-Carlo probability at epoch
// 4000 (paper model: 0.5).
func BenchmarkFigure10MonteCarlo(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		f, err := gasperleak.Figure10MonteCarlo(1.0/3.0, 300, 3, 5, 0)
		if err != nil {
			b.Fatal(err)
		}
		v = f.Series[0].Values[3]
	}
	b.ReportMetric(v, "MC-P(beta>1/3)(t=4000)")
}

// BenchmarkScenarioAllHonestSim runs the FULL protocol simulator through
// Scenario 5.1 under a compressed spec (experiment X1). Metric: the epoch
// of the detected Safety violation.
func BenchmarkScenarioAllHonestSim(b *testing.B) {
	var violationEpoch float64
	for i := 0; i < b.N; i++ {
		s, err := gasperleak.NewSimulation(gasperleak.SimConfig{
			Validators: 16,
			Spec:       gasperleak.CompressedSpec(1 << 16),
			GST:        1 << 30,
			Delay:      1,
			Seed:       3,
			PartitionOf: func(v gasperleak.ValidatorIndex) int {
				if v < 8 {
					return 0
				}
				return 1
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		violationEpoch = 0
		for epoch := 1; epoch <= 40 && violationEpoch == 0; epoch++ {
			if err := s.RunEpochs(1); err != nil {
				b.Fatal(err)
			}
			if v := s.CheckFinalitySafety(); v != nil {
				violationEpoch = float64(epoch)
			}
		}
	}
	b.ReportMetric(violationEpoch, "violation-epoch(compressed)")
}

// BenchmarkBounceContinuation evaluates the Section 5.3 continuation
// probability (experiment X2). Metric: -log10 of the paper's 1.01e-121.
func BenchmarkBounceContinuation(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		v = gasperleak.BounceContinuationProbability(1.0/3.0, 8, 7000)
	}
	var exp float64
	for v < 1 && exp < 400 {
		v *= 10
		exp++
	}
	b.ReportMetric(exp, "-log10(P-continue-7000)")
}

// BenchmarkBounceWindow evaluates the Equation 14 window over a beta0 sweep
// (experiment X3). Metric: the window width at beta0=1/3 (0.5).
func BenchmarkBounceWindow(b *testing.B) {
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		for _, beta0 := range []float64{0.05, 0.1, 0.2, 0.3, 1.0 / 3.0} {
			lo, hi = gasperleak.BounceWindow(beta0)
		}
	}
	b.ReportMetric(hi-lo, "window-width(beta0=1/3)")
}

// BenchmarkAblationUnboundedScores compares the paper's unbounded-score
// simplification with the real floored scores (DESIGN.md ablation).
// Metric: bounded-minus-unbounded probability at epoch 5000 (>= 0 means the
// paper's model is conservative, as it claims).
func BenchmarkAblationUnboundedScores(b *testing.B) {
	var diff float64
	for i := 0; i < b.N; i++ {
		epochs := []gasperleak.Epoch{5000}
		bounded := gasperleak.BounceMC{NHonest: 300, Beta0: 0.33, P0: 0.5, Seed: 7}
		unbounded := bounded
		unbounded.UnboundedScores = true
		pb, err := bounded.ExceedProbability(epochs, 2)
		if err != nil {
			b.Fatal(err)
		}
		pu, err := unbounded.ExceedProbability(epochs, 2)
		if err != nil {
			b.Fatal(err)
		}
		diff = pb[0] - pu[0]
	}
	b.ReportMetric(diff*1e4, "bounded-minus-unbounded-x1e4")
}

// BenchmarkAblationPaperVsContinuousAnchor quantifies the paper's
// 4685-vs-endogenous-4661 ejection anchoring gap (DESIGN.md ablation).
// Metric: the anchor gap in epochs.
func BenchmarkAblationPaperVsContinuousAnchor(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		gap = gasperleak.PaperParams().EjectionEpoch - gasperleak.ContinuousParams().EjectionEpoch
	}
	b.ReportMetric(gap, "anchor-gap-epochs")
}

// BenchmarkProtocolSimHealthyEpoch measures the cost of one healthy-network
// protocol epoch (16 validators), the substrate's unit of work.
func BenchmarkProtocolSimHealthyEpoch(b *testing.B) {
	s, err := gasperleak.NewSimulation(gasperleak.SimConfig{
		Validators: 16,
		Spec:       gasperleak.DefaultSpec(),
		Delay:      1,
		Seed:       1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.RunEpochs(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtocolSimPaperScaleEpoch measures one healthy-network
// protocol epoch at paper scale (10,000 validators) on the view-cohort
// kernel: the full protocol — block tree, LMD-GHOST, FFG, attestation
// pool, columnar registry — at 625x the validator count of the
// per-validator benchmark above, at comparable wall-clock.
func BenchmarkProtocolSimPaperScaleEpoch(b *testing.B) {
	s, err := gasperleak.NewSimulation(gasperleak.SimConfig{
		Validators: 10000,
		Spec:       gasperleak.DefaultSpec(),
		Delay:      1,
		Seed:       1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.RunEpochs(1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.RunEpochs(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeakSimFullScale measures one full-scale (9000-epoch, 10k
// validators) aggregate leak simulation — the engine behind Tables 2-3.
func BenchmarkLeakSimFullScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := gasperleak.LeakSim{N: 10000, P0: 0.5, Beta0: 0.2, Mode: gasperleak.ByzDoubleVote}
		if _, err := sim.Run(9000, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkSweepTable1 runs the Table 1 scenario sweep through the engine
// with the given worker count and reports the 5.1 conflict epoch.
func benchmarkSweepTable1(b *testing.B, workers int) {
	var epoch float64
	for i := 0; i < b.N; i++ {
		results := gasperleak.Sweep(gasperleak.Table1Cells(1),
			gasperleak.SweepOptions{Workers: workers})
		if err := gasperleak.SweepFirstError(results); err != nil {
			b.Fatal(err)
		}
		epoch, _ = results[0].Metric("sim_epoch")
	}
	b.ReportMetric(epoch, "conflict-epochs(5.1)")
}

// BenchmarkSweepTable1Workers1 is the sequential baseline of the Table 1
// sweep; compare with BenchmarkSweepTable1WorkersMax for the worker-pool
// speedup (see EXPERIMENTS.md).
func BenchmarkSweepTable1Workers1(b *testing.B) { benchmarkSweepTable1(b, 1) }

// BenchmarkSweepTable1WorkersMax runs the same sweep on all CPUs. Results
// are bit-identical to the sequential run; only the wall time changes.
func BenchmarkSweepTable1WorkersMax(b *testing.B) { benchmarkSweepTable1(b, runtime.NumCPU()) }

// benchmarkSweepLeakGrid sweeps a 20-cell uniform leaksim grid (p0 x
// beta0 x mode at full paper scale) with the given worker count — the
// scaling probe for the worker pool, since every cell costs about the
// same.
func benchmarkSweepLeakGrid(b *testing.B, workers int) {
	grid := gasperleak.SweepGrid{
		Scenario: "leaksim",
		P0:       []float64{0.3, 0.4, 0.5, 0.6, 0.7},
		Beta0:    []float64{0.1, 0.2},
		Modes:    []string{"double", "semi"},
	}
	cells := grid.Cells()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := gasperleak.Sweep(cells, gasperleak.SweepOptions{Workers: workers})
		if err := gasperleak.SweepFirstError(results); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepLeakGridWorkers1 is the sequential baseline of the
// 20-cell leaksim grid.
func BenchmarkSweepLeakGridWorkers1(b *testing.B) { benchmarkSweepLeakGrid(b, 1) }

// BenchmarkSweepLeakGridWorkersMax runs the same grid on all CPUs.
func BenchmarkSweepLeakGridWorkersMax(b *testing.B) { benchmarkSweepLeakGrid(b, runtime.NumCPU()) }

// TestBenchHarnessSmoke keeps the bench file honest under plain `go test`:
// the harness's metrics match the paper's headline values.
func TestBenchHarnessSmoke(t *testing.T) {
	rows, err := gasperleak.Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, r := range rows {
		ids = append(ids, r.ID)
	}
	if got := strings.Join(ids, ","); got != "5.1,5.2.1,5.2.2,5.2.3,5.3" {
		t.Errorf("Table 1 scenario ids = %s", got)
	}
}
