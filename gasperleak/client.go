package gasperleak

import (
	"context"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/report"
	"repro/internal/store"
)

// Streaming-API re-exports.
type (
	// SweepUpdate is one event of a streaming sweep: a finished cell's
	// result plus progress counts.
	SweepUpdate = engine.Update
	// ScenarioInfo is the serializable description of one registered
	// scenario.
	ScenarioInfo = engine.Info
	// ScenarioRunMeta is the non-deterministic execution metadata of a
	// ScenarioResult (wall-clock duration, sustained simulation
	// throughput, cache provenance, warm-start provenance).
	ScenarioRunMeta = engine.RunMeta
	// ScenarioSimStats is the end-of-run retention summary simulation
	// scenarios attach to their metadata (block-tree and fork-choice
	// column sizes after compaction).
	ScenarioSimStats = engine.SimStats
	// SweepWarmStartOptions configures the snapshot-tree warm-start
	// scheduler (see WithWarmStart).
	SweepWarmStartOptions = engine.WarmStartOptions
	// SweepWarmMeta is the warm-start provenance of one sweep cell
	// (ScenarioRunMeta.Warm): what the cell reused and the scheduler's
	// running counters.
	SweepWarmMeta = engine.WarmMeta
	// ResultStoreStats is the persistent result store's footprint and
	// counter snapshot (see WithResultStore and Client.StoreStats).
	ResultStoreStats = store.Stats
	// CheckpointStats is the durable-checkpoint tier's counter snapshot
	// (see WithCheckpoints and Client.CheckpointStats).
	CheckpointStats = store.CheckpointStats
	// ScenarioCheckpointMeta is the durable-checkpoint provenance of one
	// sweep cell (ScenarioRunMeta.Checkpoint): whether it resumed from an
	// on-disk checkpoint and how many epochs the resume skipped.
	ScenarioCheckpointMeta = engine.CheckpointMeta
)

// Client is the v2 entry point of the reproduction: a handle on a scenario
// registry plus execution policy (worker pool width), with every run and
// sweep threaded through a context.Context for cancellation and deadlines.
//
//	c, err := gasperleak.NewClient(gasperleak.WithWorkers(8))
//	res, err := c.Run(ctx, "5.2.1", gasperleak.ScenarioParams{Beta0: 0.2})
//	for u := range c.SweepStream(ctx, cells) { ... }
//
// The zero worker count means "all CPUs"; negative counts are rejected by
// NewClient so every CLI and service layered on the client validates
// -workers uniformly.
type Client struct {
	reg       *engine.Registry
	workers   int
	warm      *engine.WarmStartOptions
	store     *store.Results
	ckpts     *store.Checkpoints
	ckptEvery int
	wantCkpt  bool
}

// ClientOption configures a Client (functional options).
type ClientOption func(*Client) error

// WithWorkers bounds the client's sweep concurrency (0 = all CPUs).
// Negative counts are rejected.
func WithWorkers(n int) ClientOption {
	return func(c *Client) error {
		if n < 0 {
			return fmt.Errorf("gasperleak: workers = %d, want >= 0 (0 = all CPUs)", n)
		}
		c.workers = n
		return nil
	}
}

// WithWarmStart routes the client's sweeps through the snapshot-tree
// warm-start scheduler: cells sharing a simulation prefix (same scenario,
// same pre-branch parameters) are fanned out from one simulated prefix
// instead of each re-simulating from genesis. Results stay bit-identical
// to cold sweeps; scenarios that do not support warm-starting fall back
// cell by cell. budget bounds resident snapshot bytes (0 = engine
// default, negative = unlimited).
func WithWarmStart(budget int64) ClientOption {
	return func(c *Client) error {
		c.warm = &engine.WarmStartOptions{MemoryBudget: budget}
		return nil
	}
}

// WithResultStore backs the client with the persistent content-addressed
// result store rooted at dir (created if needed): runs and sweep cells
// whose canonical (scenario, defaulted params) key is already on disk are
// served from the store without recomputation, and fresh computes are
// written through. The store is shared currency with the serve fabric —
// the same directory, keys, and bytes — so results computed by a server
// (or an earlier process) are hits here and vice versa. Call Close when
// done.
func WithResultStore(dir string) ClientOption {
	return func(c *Client) error {
		st, err := store.OpenResults(dir)
		if err != nil {
			return fmt.Errorf("gasperleak: opening result store: %w", err)
		}
		c.store = st
		return nil
	}
}

// WithCheckpoints turns on durable mid-cell checkpointing for the
// client's sweeps, sharing the WithResultStore directory (NewClient
// rejects the combination without one): long-horizon simulation cells
// persist a restartable snapshot every `every` epochs, and a re-run of
// an interrupted sweep resumes each cell from its newest on-disk
// checkpoint instead of recomputing from epoch 0 — with bit-identical
// results. every = 0 uses the engine default interval; negative keeps
// resume probes but disables periodic writes. Cancellation (Ctrl-C in
// the CLIs) flushes a final checkpoint per in-flight cell before the
// sweep unwinds, and completed cells delete theirs.
func WithCheckpoints(every int) ClientOption {
	return func(c *Client) error {
		c.wantCkpt = true
		c.ckptEvery = every
		return nil
	}
}

// WithRegistry points the client at a custom scenario registry instead of
// the built-in one.
func WithRegistry(reg *ScenarioRegistry) ClientOption {
	return func(c *Client) error {
		if reg == nil {
			return fmt.Errorf("gasperleak: WithRegistry(nil)")
		}
		c.reg = reg
		return nil
	}
}

// NewClient builds a client over the built-in scenario registry, all-CPU
// sweeps, and no deadline, then applies the options in order.
func NewClient(opts ...ClientOption) (*Client, error) {
	c := &Client{reg: engine.Default}
	for _, opt := range opts {
		if err := opt(c); err != nil {
			return nil, err
		}
	}
	// Resolved after all options so WithCheckpoints and WithResultStore
	// compose in either order.
	if c.wantCkpt {
		if c.store == nil {
			return nil, fmt.Errorf("gasperleak: WithCheckpoints requires WithResultStore (checkpoints live in the store directory)")
		}
		c.ckpts = c.store.Checkpoints()
	}
	return c, nil
}

// options is the engine view of the client's execution policy.
func (c *Client) options() engine.Options {
	o := engine.Options{Workers: c.workers, Registry: c.reg, WarmStart: c.warm}
	if c.ckpts != nil {
		o.Checkpoint = &engine.CheckpointOptions{Every: c.ckptEvery, Store: c.ckpts}
	}
	return o
}

// Workers reports the configured sweep pool width (0 = all CPUs).
func (c *Client) Workers() int { return c.workers }

// StoreStats reports the persistent store's footprint and hit/miss
// counters; ok is false when the client has no store.
func (c *Client) StoreStats() (stats store.Stats, ok bool) {
	if c.store == nil {
		return store.Stats{}, false
	}
	return c.store.Stats(), true
}

// CheckpointStats reports the durable-checkpoint tier's counters; ok is
// false when the client has no checkpoint tier (see WithCheckpoints).
func (c *Client) CheckpointStats() (stats CheckpointStats, ok bool) {
	if c.ckpts == nil {
		return CheckpointStats{}, false
	}
	return c.ckpts.Stats(), true
}

// Close releases the client's persistent store (no-op without one).
// Reads from an already-open store keep working after Close; writes stop.
func (c *Client) Close() error {
	if c.store == nil {
		return nil
	}
	return c.store.Close()
}

// storeLookup consults the persistent store for one cell's canonical key.
func (c *Client) storeLookup(cell SweepCell) (key string, res ScenarioResult, hit bool) {
	if c.store == nil {
		return "", ScenarioResult{}, false
	}
	key, ok := engine.CanonicalCellKey(c.reg, cell)
	if !ok {
		return "", ScenarioResult{}, false
	}
	res, hit = c.store.Get(key)
	if hit {
		res.Meta = engine.RunMeta{Cached: true}.Merged(res.Meta)
	}
	return key, res, hit
}

// storeSave writes a successful result through to the store (metadata
// stripped; failures only cost a future recomputation).
func (c *Client) storeSave(key string, res ScenarioResult) {
	if c.store == nil || key == "" || res.Err != "" {
		return
	}
	c.store.Put(key, res) //nolint:errcheck // a failed persist only costs a future recomputation
}

// Scenarios describes every registered scenario, sorted by name.
func (c *Client) Scenarios() []ScenarioInfo { return c.reg.Infos() }

// Lookup finds a scenario in the client's registry.
func (c *Client) Lookup(name string) (Scenario, bool) { return c.reg.Lookup(name) }

// Run executes one scenario with cooperative cancellation: scenarios with
// long internal loops (leaksim, bounce-mc, fig7-threshold, sim/partition)
// observe ctx mid-run.
// Repeated parameter points are served from the persistent store when one
// is configured (WithResultStore), marked Cached in their metadata.
func (c *Client) Run(ctx context.Context, name string, p ScenarioParams) (ScenarioResult, error) {
	cell := SweepCell{Scenario: name, Params: p}
	key, cached, hit := c.storeLookup(cell)
	if hit {
		return cached, nil
	}
	// With a checkpoint tier, eligible long-horizon runs persist mid-run
	// state and resume across invocations (an interrupted run flushes a
	// final checkpoint on the way out).
	if c.ckpts != nil {
		res, handled, err := engine.RunCheckpointed(ctx, c.reg, cell,
			&engine.CheckpointOptions{Every: c.ckptEvery, Store: c.ckpts})
		if handled {
			if err == nil {
				c.storeSave(key, res)
			}
			return res, err
		}
	}
	res, err := c.reg.RunContext(ctx, name, p)
	if err == nil {
		c.storeSave(key, res)
	}
	return res, err
}

// SweepStream fans the cells out over the client's worker pool and yields
// one update per cell as it completes (completion order). The caller must
// drain the channel; after ctx is cancelled the remaining cells are marked
// with the context error and the stream closes promptly. Result payloads
// are bit-identical for any worker count (Meta carries the timing).
// With a persistent store (WithResultStore), cells already on disk are
// emitted first without recomputation and fresh computes are written
// through; payloads stay bit-identical either way.
func (c *Client) SweepStream(ctx context.Context, cells []SweepCell) <-chan SweepUpdate {
	if c.store == nil {
		return engine.SweepStream(ctx, cells, c.options())
	}
	// Split the sweep exactly as the serving layer does: stored cells are
	// answered immediately, the rest go through the engine and are saved.
	type pending struct {
		index int
		key   string
	}
	var cached []SweepUpdate
	var todo []SweepCell
	var meta []pending
	for i, cell := range cells {
		if key, res, hit := c.storeLookup(cell); hit {
			cached = append(cached, SweepUpdate{Index: i, Result: res})
		} else {
			todo = append(todo, cell)
			meta = append(meta, pending{index: i, key: key})
		}
	}
	out := make(chan SweepUpdate)
	go func() {
		defer close(out)
		completed := 0
		emit := func(u SweepUpdate) {
			completed++
			u.Completed = completed
			u.Total = len(cells)
			out <- u
		}
		for _, u := range cached {
			emit(u)
		}
		for u := range engine.SweepStream(ctx, todo, c.options()) {
			p := meta[u.Index]
			c.storeSave(p.key, u.Result)
			u.Index = p.index
			emit(u)
		}
	}()
	return out
}

// Sweep collects a streaming sweep into one result per cell, in cell
// order. Unfinished cells after cancellation record the context error.
func (c *Client) Sweep(ctx context.Context, cells []SweepCell) []ScenarioResult {
	if c.store == nil {
		return engine.SweepContext(ctx, cells, c.options())
	}
	results := make([]ScenarioResult, len(cells))
	for u := range c.SweepStream(ctx, cells) {
		results[u.Index] = u.Result
	}
	return results
}

// SweepGrid expands a parameter grid and sweeps it.
func (c *Client) SweepGrid(ctx context.Context, g SweepGrid) []ScenarioResult {
	if c.store == nil {
		return engine.SweepGridContext(ctx, g, c.options())
	}
	return c.Sweep(ctx, g.Cells())
}

// RenderTable1 renders the paper's Table 1 over the client's pool.
func (c *Client) RenderTable1(ctx context.Context, seed int64) (*ReportTable, error) {
	return report.Table1(ctx, seed, c.options())
}

// RenderTable2 renders the paper's Table 2 over the client's pool.
func (c *Client) RenderTable2(ctx context.Context) (*ReportTable, error) {
	return report.Table2(ctx, c.options())
}

// RenderTable3 renders the paper's Table 3 over the client's pool.
func (c *Client) RenderTable3(ctx context.Context) (*ReportTable, error) {
	return report.Table3(ctx, c.options())
}

// Figure3Sim overlays the integer simulation on Figure 3's grid.
func (c *Client) Figure3Sim(ctx context.Context, every int) (*Figure, error) {
	return report.Figure3Sim(ctx, every, c.options())
}

// Figure7Sim overlays the integer-simulation threshold boundary on
// Figure 7.
func (c *Client) Figure7Sim(ctx context.Context, points int) (*Figure, error) {
	return report.Figure7Sim(ctx, points, c.options())
}

// Figure10MonteCarlo overlays the integer Monte-Carlo on Figure 10.
func (c *Client) Figure10MonteCarlo(ctx context.Context, beta0 float64, nHonest, runs int, seed int64) (*Figure, error) {
	return report.Figure10MonteCarlo(ctx, beta0, nHonest, runs, seed, c.options())
}

// BounceMCSweep runs `runs` independent bouncing-attack trajectories and
// returns the engine results plus the run-averaged exceed-probability
// curve on the epoch grid sample, 2*sample, ..., horizon.
func (c *Client) BounceMCSweep(ctx context.Context, p0, beta0 float64, n, runs int, seed int64, sample, horizon int) ([]ScenarioResult, []float64, error) {
	return report.BounceMCSweep(ctx, p0, beta0, n, runs, seed, sample, horizon, c.options())
}

// SweepThroughput summarizes a sweep's pacing (cells/sec and cumulative
// compute time) from the results' duration metadata and the measured wall
// clock.
func SweepThroughput(results []ScenarioResult, wall time.Duration) string {
	return report.SweepThroughput(results, wall)
}

// StripScenarioMeta returns a copy of the results with execution metadata
// removed, for comparing the deterministic payload of two sweeps.
func StripScenarioMeta(results []ScenarioResult) []ScenarioResult {
	return engine.StripMeta(results)
}
