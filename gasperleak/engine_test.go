package gasperleak_test

import (
	"strings"
	"testing"

	"repro/gasperleak"
)

// TestPublicEngineWrappers exercises the scenario-engine re-exports: the
// registry, a single run, a parsed sweep, and the three renderers.
func TestPublicEngineWrappers(t *testing.T) {
	names := gasperleak.ScenarioNames()
	if len(names) == 0 {
		t.Fatal("empty registry")
	}
	if _, ok := gasperleak.LookupScenario("5.2.1"); !ok {
		t.Errorf("5.2.1 missing from registry %v", names)
	}

	res, err := gasperleak.RunScenario("analytic/conflict", gasperleak.ScenarioParams{Mode: "slashing", Beta0: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.Metric("conflict_epoch"); !ok || v < 3100 || v > 3115 {
		t.Errorf("conflict_epoch = %v, want ~3108", v)
	}

	g, err := gasperleak.ParseGrid("analytic/threshold", "p0=0.3,0.5,0.7")
	if err != nil {
		t.Fatal(err)
	}
	results := gasperleak.RunSweepGrid(g, gasperleak.SweepOptions{Workers: 2})
	if err := gasperleak.SweepFirstError(results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}

	tbl := gasperleak.RenderSweep("demo", results)
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "threshold_both_branches") {
		t.Errorf("sweep table missing metric column:\n%s", b.String())
	}
	b.Reset()
	if err := gasperleak.WriteSweepCSV(&b, "demo", results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "scenario,p0") {
		t.Errorf("sweep CSV header missing:\n%s", b.String())
	}
	b.Reset()
	if err := gasperleak.WriteSweepJSON(&b, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"scenario"`) {
		t.Errorf("sweep JSON missing:\n%s", b.String())
	}

	if gasperleak.DeriveSeed(1, 0.5, 0.2, "double", 0) == gasperleak.DeriveSeed(2, 0.5, 0.2, "double", 0) {
		t.Error("DeriveSeed must depend on the base seed")
	}
	if len(gasperleak.Table1Cells(1)) != 5 || len(gasperleak.Table2Cells()) != 5 || len(gasperleak.Table3Cells()) != 5 {
		t.Error("table cell lists must have 5 cells each")
	}
}
