package gasperleak_test

import (
	"fmt"
	"log"

	"repro/gasperleak"
)

// The paper's Table 2 headline row: with beta0 = 0.2 of stake double-voting
// on both branches of a partition, conflicting finalization takes ~3107
// epochs instead of the honest-only ~4685.
func ExampleLeakSim() {
	sim := gasperleak.LeakSim{N: 10000, P0: 0.5, Beta0: 0.2, Mode: gasperleak.ByzDoubleVote}
	res, err := sim.Run(9000, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("conflicting finalization at epoch", res.ConflictEpoch)
	// Output: conflicting finalization at epoch 3109
}

// Equation 9 in closed form: the same row analytically.
func ExampleAnalyticParams_conflictEpochSlashing() {
	p := gasperleak.PaperParams()
	fmt.Printf("%.0f\n", p.ConflictEpochSlashing(0.5, 0.2))
	// Output: 3107
}

// The minimum initial Byzantine proportion that can exceed the 1/3 Safety
// threshold on both branches of a 50/50 fork (Figure 7's corner).
func ExampleAnalyticParams_thresholdBeta0() {
	p := gasperleak.PaperParams()
	fmt.Printf("%.4f\n", p.ThresholdBeta0(0.5))
	// Output: 0.2421
}

// Equation 14: the honest-split window inside which the probabilistic
// bouncing attack can continue, at beta0 = 1/3.
func ExampleBounceWindow() {
	lo, hi := gasperleak.BounceWindow(1.0 / 3.0)
	fmt.Printf("p0 in (%.2f, %.2f)\n", lo, hi)
	// Output: p0 in (0.50, 1.00)
}

// Equation 24 at beta0 = 1/3 evaluates to exactly one half at every epoch
// of the attack.
func ExampleBounceModel_ExceedProbability() {
	m := gasperleak.BounceModel{P0: 0.5}
	fmt.Printf("%.2f\n", m.ExceedProbability(4000, 1.0/3.0, gasperleak.PaperParams()))
	// Output: 0.50
}

// A healthy full-protocol run: 16 honest validators finalize epoch after
// epoch.
func ExampleNewSimulation() {
	s, err := gasperleak.NewSimulation(gasperleak.SimConfig{
		Validators: 16,
		Spec:       gasperleak.DefaultSpec(),
		Delay:      1,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := s.RunEpochs(8); err != nil {
		log.Fatal(err)
	}
	fmt.Println("finalized epoch:", s.View(0).Finalized().Epoch)
	fmt.Println("safety violation:", s.CheckFinalitySafety() != nil)
	// Output:
	// finalized epoch: 5
	// safety violation: false
}
