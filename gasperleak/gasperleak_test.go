package gasperleak_test

import (
	"math"
	"strings"
	"testing"

	"repro/gasperleak"
)

// TestPublicAPIQuickstart exercises the facade the way the README does.
func TestPublicAPIQuickstart(t *testing.T) {
	sim := gasperleak.LeakSim{N: 10000, P0: 0.5, Beta0: 0.2, Mode: gasperleak.ByzDoubleVote}
	res, err := sim.Run(9000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := int(res.ConflictEpoch); got < 3105 || got > 3112 {
		t.Errorf("quickstart conflict epoch = %d, want ~3108", got)
	}
}

func TestPublicAnalytic(t *testing.T) {
	p := gasperleak.PaperParams()
	if got := p.ThresholdBeta0(0.5); math.Abs(got-0.2421) > 5e-4 {
		t.Errorf("ThresholdBeta0 = %v, want 0.2421", got)
	}
	if gasperleak.StakeActive(100) != 32 {
		t.Error("StakeActive must be 32")
	}
	if !(gasperleak.StakeInactive(1000) < gasperleak.StakeSemiActive(1000)) {
		t.Error("stake law ordering broken")
	}
	lo, hi := gasperleak.BounceWindow(1.0 / 3.0)
	if lo != 0.5 || hi != 1.0 {
		t.Errorf("BounceWindow(1/3) = (%v, %v)", lo, hi)
	}
	if p := gasperleak.BounceContinuationProbability(1.0/3.0, 8, 7000); p > 1e-100 {
		t.Errorf("continuation probability = %v, want ~1e-121", p)
	}
	bc, err := p.ConflictingFinalization(gasperleak.WithSlashing, 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if bc.ConflictEpoch != 3108 {
		t.Errorf("conflict epoch = %v, want 3108", bc.ConflictEpoch)
	}
}

func TestPublicSpecs(t *testing.T) {
	d := gasperleak.DefaultSpec()
	if d.InactivityPenaltyQuotient != 1<<26 {
		t.Error("default quotient must be 2^26")
	}
	c := gasperleak.CompressedSpec(1 << 16)
	if c.InactivityPenaltyQuotient != 1<<10 {
		t.Error("compressed quotient must be 2^10")
	}
}

func TestPublicProtocolSim(t *testing.T) {
	s, err := gasperleak.NewSimulation(gasperleak.SimConfig{
		Validators: 8,
		Spec:       gasperleak.DefaultSpec(),
		Delay:      1,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunEpochs(6); err != nil {
		t.Fatal(err)
	}
	if s.View(0).Finalized().Epoch < 3 {
		t.Errorf("finalized epoch = %d, want >= 3", s.View(0).Finalized().Epoch)
	}
	if v := s.CheckFinalitySafety(); v != nil {
		t.Errorf("safety violation on healthy chain: %v", v)
	}
}

func TestPublicFigures(t *testing.T) {
	var b strings.Builder
	if err := gasperleak.Figure2().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "epoch,active,semi_active,inactive") {
		t.Error("Figure 2 CSV header missing")
	}
	if gasperleak.FormatEpoch(4685) == "" {
		t.Error("FormatEpoch must render")
	}
}

// TestPublicScenarioWrappers exercises every scenario re-export once.
func TestPublicScenarioWrappers(t *testing.T) {
	if _, err := gasperleak.Scenario51(0.5); err != nil {
		t.Error(err)
	}
	if _, err := gasperleak.Scenario521(0.5, 0.2); err != nil {
		t.Error(err)
	}
	if _, err := gasperleak.Scenario522(0.5, 0.2); err != nil {
		t.Error(err)
	}
	s23, err := gasperleak.Scenario523(0.5, 0.25)
	if err != nil {
		t.Error(err)
	}
	if !s23.CrossedOneThird {
		t.Error("scenario 5.2.3 wrapper lost the crossing")
	}
	if _, err := gasperleak.Scenario523Corner(0.5, 0.25, 100); err != nil {
		t.Error(err)
	}
	if _, err := gasperleak.Scenario53(0.5, 0.33, 1); err != nil {
		t.Error(err)
	}
	if rows, err := gasperleak.Table1(1); err != nil || len(rows) != 5 {
		t.Errorf("Table1: %v, %d rows", err, len(rows))
	}
}

// TestPublicFigureWrappers exercises every figure re-export once.
func TestPublicFigureWrappers(t *testing.T) {
	if f := gasperleak.Figure3(); len(f.Series) != 5 {
		t.Error("Figure3 wrapper broken")
	}
	if f, err := gasperleak.Figure3Sim(2000, 0); err != nil || len(f.Series) != 5 {
		t.Errorf("Figure3Sim wrapper: %v", err)
	}
	if f, err := gasperleak.Figure6(); err != nil || len(f.Series) != 2 {
		t.Errorf("Figure6 wrapper: %v", err)
	}
	if f := gasperleak.Figure7(); len(f.Series) != 3 {
		t.Error("Figure7 wrapper broken")
	}
	if f, err := gasperleak.Figure7Sim(3, 0); err != nil || len(f.Series) != 2 {
		t.Errorf("Figure7Sim wrapper: %v", err)
	}
	if f := gasperleak.Figure9(4024); len(f.Series) != 3 {
		t.Error("Figure9 wrapper broken")
	}
	if f := gasperleak.Figure10(); len(f.Series) != 6 {
		t.Error("Figure10 wrapper broken")
	}
	if f, err := gasperleak.Figure10MonteCarlo(0.33, 50, 1, 1, 0); err != nil || len(f.Series) != 2 {
		t.Errorf("Figure10MonteCarlo wrapper: %v", err)
	}
	for n, f := range map[string]func() (*gasperleak.ReportTable, error){
		"t1": func() (*gasperleak.ReportTable, error) { return gasperleak.RenderTable1(1, 0) },
		"t2": func() (*gasperleak.ReportTable, error) { return gasperleak.RenderTable2(0) },
		"t3": func() (*gasperleak.ReportTable, error) { return gasperleak.RenderTable3(0) },
	} {
		tbl, err := f()
		if err != nil || len(tbl.Rows) == 0 {
			t.Errorf("%s: %v", n, err)
		}
	}
}

// TestPublicAnalyticWrappers covers the remaining analytic re-exports.
func TestPublicAnalyticWrappers(t *testing.T) {
	p := gasperleak.ContinuousParams()
	if p.EjectionEpoch >= gasperleak.PaperParams().EjectionEpoch {
		t.Error("continuous ejection must precede the paper anchor")
	}
	for _, behavior := range []gasperleak.Behavior{
		gasperleak.HonestOnly, gasperleak.WithSlashing, gasperleak.WithoutSlashing,
	} {
		if behavior.String() == "" {
			t.Error("behavior must render")
		}
	}
	m := gasperleak.BounceModel{P0: 0.5}
	if got := m.ExceedProbability(2000, 1.0/3.0, gasperleak.PaperParams()); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("BounceModel wrapper = %v, want 0.5", got)
	}
}

func TestPublicBouncer(t *testing.T) {
	adv := gasperleak.NewBouncer(0.7, 1, [2]gasperleak.ValidatorIndex{0, 4})
	if adv == nil {
		t.Fatal("NewBouncer returned nil")
	}
	mc := gasperleak.BounceMC{NHonest: 100, Beta0: 1.0 / 3.0, P0: 0.5, Seed: 1}
	probs, err := mc.ExceedProbability([]gasperleak.Epoch{2000}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(probs[0]-0.5) > 0.15 {
		t.Errorf("MC probability = %v, want ~0.5", probs[0])
	}
}
