package gasperleak

import "repro/internal/core"

// Re-exported paper-scale scenario engines.
type (
	// LeakSim is the aggregate two-branch inactivity-leak simulation in
	// exact integer arithmetic.
	LeakSim = core.LeakSim
	// LeakResult reports a LeakSim run.
	LeakResult = core.Result
	// BranchResult reports one branch of a LeakSim run.
	BranchResult = core.BranchResult
	// BranchTrace samples one branch's state.
	BranchTrace = core.BranchTrace
	// ByzMode selects the Byzantine strategy of a leak scenario.
	ByzMode = core.ByzMode
	// BounceMC is the per-validator bouncing-attack Monte-Carlo.
	BounceMC = core.BounceMC
	// BouncePoint samples the bouncing attack state.
	BouncePoint = core.BouncePoint
	// ScenarioSummary pairs analytic and simulated outcomes.
	ScenarioSummary = core.Summary
)

// Byzantine strategies for LeakSim.
const (
	// ByzAbsent is Scenario 5.1 (honest only).
	ByzAbsent = core.ByzAbsent
	// ByzDoubleVote is Scenario 5.2.1.
	ByzDoubleVote = core.ByzDoubleVote
	// ByzSemiActive is Scenarios 5.2.2 / 5.2.3.
	ByzSemiActive = core.ByzSemiActive
)

// Scenario51 runs the honest-only partition scenario at paper scale.
func Scenario51(p0 float64) (ScenarioSummary, error) { return core.Scenario51(p0) }

// Scenario521 runs the slashable double-voting scenario.
func Scenario521(p0, beta0 float64) (ScenarioSummary, error) { return core.Scenario521(p0, beta0) }

// Scenario522 runs the non-slashable semi-active scenario.
func Scenario522(p0, beta0 float64) (ScenarioSummary, error) { return core.Scenario522(p0, beta0) }

// Scenario523 runs the over-one-third scenario.
func Scenario523(p0, beta0 float64) (ScenarioSummary, error) { return core.Scenario523(p0, beta0) }

// Scenario523Corner runs the paper's footnote 12 corner case: finalize
// `lead` epochs before the ejection under the production-spec residual
// penalty rule, which ejects the honest inactive validators anyway.
func Scenario523Corner(p0, beta0 float64, lead Epoch) (ScenarioSummary, error) {
	return core.Scenario523Corner(p0, beta0, lead)
}

// Scenario53 runs the probabilistic bouncing scenario.
func Scenario53(p0, beta0 float64, seed int64) (ScenarioSummary, error) {
	return core.Scenario53(p0, beta0, seed)
}

// Table1 runs all five scenarios at the paper's reference parameters.
func Table1(seed int64) ([]ScenarioSummary, error) { return core.Table1(seed) }
