package gasperleak_test

import (
	"context"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/gasperleak"
	"repro/internal/engine"
)

// storeTestRegistry registers one invocation-counting scenario; the test
// builds it through the internal engine package (same module) since the
// public surface re-exports the registry type but reproductions normally
// run the built-in registry.
func storeTestRegistry(runs *atomic.Int64) *gasperleak.ScenarioRegistry {
	reg := engine.NewRegistry()
	reg.MustRegister(gasperleak.NewScenario("counted", "counts invocations",
		gasperleak.ScenarioParams{P0: 0.5, N: 10},
		func(p gasperleak.ScenarioParams) (gasperleak.ScenarioResult, error) {
			runs.Add(1)
			return gasperleak.ScenarioResult{
				Outcome: fmt.Sprintf("seed %d", p.Seed),
				Metrics: []gasperleak.ScenarioMetric{{Name: "value", Value: float64(p.Seed)}},
			}, nil
		}))
	return reg
}

// TestClientResultStoreReadThrough: a client with WithResultStore serves
// repeated runs and sweeps from disk, and a second client over the same
// directory (a later process) inherits every result.
func TestClientResultStoreReadThrough(t *testing.T) {
	ctx := context.Background()
	var runs atomic.Int64
	reg := storeTestRegistry(&runs)
	dir := t.TempDir()

	c1, err := gasperleak.NewClient(gasperleak.WithRegistry(reg), gasperleak.WithResultStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	first, err := c1.Run(ctx, "counted", gasperleak.ScenarioParams{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Fatalf("first run: %d invocations, want 1", runs.Load())
	}
	second, err := c1.Run(ctx, "counted", gasperleak.ScenarioParams{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Errorf("repeat run recomputed (%d invocations)", runs.Load())
	}
	if second.Meta == nil || !second.Meta.Cached {
		t.Errorf("repeat run meta = %+v, want a store hit", second.Meta)
	}
	if !reflect.DeepEqual(first.WithoutMeta(), second.WithoutMeta()) {
		t.Error("store-served payload diverges")
	}
	if stats, ok := c1.StoreStats(); !ok || stats.Entries != 1 || stats.Hits != 1 {
		t.Errorf("StoreStats = %+v, %v; want 1 entry, 1 hit", stats, ok)
	}

	// Sweep: the stored cell is a hit, the rest compute and persist.
	cells := []gasperleak.SweepCell{
		{Scenario: "counted", Params: gasperleak.ScenarioParams{Seed: 3}},
		{Scenario: "counted", Params: gasperleak.ScenarioParams{Seed: 4}},
		{Scenario: "counted", Params: gasperleak.ScenarioParams{Seed: 5}},
	}
	swept := c1.Sweep(ctx, cells)
	if runs.Load() != 3 {
		t.Errorf("sweep over a warm store ran %d total cells, want 3 (one was stored)", runs.Load())
	}
	if len(swept) != 3 || swept[0].Meta == nil || !swept[0].Meta.Cached {
		t.Errorf("sweep cell 0 meta = %+v, want the stored cell served from disk", swept[0].Meta)
	}

	// A second client over the same directory inherits everything.
	c2, err := gasperleak.NewClient(gasperleak.WithRegistry(reg), gasperleak.WithResultStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	again := c2.Sweep(ctx, cells)
	if runs.Load() != 3 {
		t.Errorf("second client recomputed: %d total invocations, want still 3", runs.Load())
	}
	if !reflect.DeepEqual(gasperleak.StripScenarioMeta(swept), gasperleak.StripScenarioMeta(again)) {
		t.Error("second client's sweep payload diverges")
	}
}

// TestClientWithoutStoreUnchanged: Close and StoreStats are nil-safe and
// sweeps behave exactly as before when no store is configured.
func TestClientWithoutStoreUnchanged(t *testing.T) {
	var runs atomic.Int64
	reg := storeTestRegistry(&runs)
	c, err := gasperleak.NewClient(gasperleak.WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.StoreStats(); ok {
		t.Error("StoreStats ok without a store")
	}
	if err := c.Close(); err != nil {
		t.Errorf("Close without a store: %v", err)
	}
	cells := []gasperleak.SweepCell{
		{Scenario: "counted", Params: gasperleak.ScenarioParams{Seed: 1}},
		{Scenario: "counted", Params: gasperleak.ScenarioParams{Seed: 2}},
	}
	res := c.Sweep(context.Background(), cells)
	if len(res) != 2 || runs.Load() != 2 {
		t.Errorf("plain sweep: %d results, %d invocations", len(res), runs.Load())
	}
	if res[0].Meta != nil && res[0].Meta.Cached {
		t.Error("plain sweep reported a cache hit from nowhere")
	}
}

// TestClientBadStoreDir: an unusable store directory fails construction
// with a clear error instead of a silent in-memory fallback.
func TestClientBadStoreDir(t *testing.T) {
	_, err := gasperleak.NewClient(gasperleak.WithResultStore("/dev/null/not-a-dir"))
	if err == nil {
		t.Fatal("WithResultStore over a file must error")
	}
}
