package gasperleak_test

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/gasperleak"
)

func TestNewClientOptionValidation(t *testing.T) {
	if _, err := gasperleak.NewClient(gasperleak.WithWorkers(-3)); err == nil ||
		!strings.Contains(err.Error(), "-3") || !strings.Contains(err.Error(), "workers") {
		t.Errorf("WithWorkers(-3) err = %v, want a clear validation error", err)
	}
	if _, err := gasperleak.NewClient(gasperleak.WithRegistry(nil)); err == nil {
		t.Error("WithRegistry(nil) must error")
	}
	c, err := gasperleak.NewClient(gasperleak.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if c.Workers() != 4 {
		t.Errorf("Workers() = %d, want 4", c.Workers())
	}
}

// TestClientMatchesDeprecatedSurface: the v2 client and the v1 shims
// produce the same result payloads over the same registry.
func TestClientMatchesDeprecatedSurface(t *testing.T) {
	c, err := gasperleak.NewClient(gasperleak.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	res, err := c.Run(ctx, "analytic/conflict", gasperleak.ScenarioParams{Mode: "slashing", Beta0: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	old, err := gasperleak.RunScenario("analytic/conflict", gasperleak.ScenarioParams{Mode: "slashing", Beta0: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.WithoutMeta(), old.WithoutMeta()) {
		t.Errorf("client run diverges from v1 shim: %+v vs %+v", res, old)
	}

	cells := gasperleak.Table1Cells(1)
	v2 := gasperleak.StripScenarioMeta(c.Sweep(ctx, cells))
	v1 := gasperleak.StripScenarioMeta(gasperleak.Sweep(cells, gasperleak.SweepOptions{Workers: 2}))
	if !reflect.DeepEqual(v2, v1) {
		t.Error("client sweep diverges from v1 shim")
	}
}

func TestClientSweepStreamAndThroughput(t *testing.T) {
	c, err := gasperleak.NewClient(gasperleak.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	g, err := gasperleak.ParseGrid("analytic/threshold", "p0=0.3,0.5,0.7")
	if err != nil {
		t.Fatal(err)
	}
	cells := g.Cells()
	start := time.Now()
	var results []gasperleak.ScenarioResult
	for u := range c.SweepStream(context.Background(), cells) {
		if u.Total != len(cells) {
			t.Fatalf("Total = %d, want %d", u.Total, len(cells))
		}
		results = append(results, u.Result)
	}
	if len(results) != len(cells) {
		t.Fatalf("streamed %d results, want %d", len(results), len(cells))
	}
	line := gasperleak.SweepThroughput(results, time.Since(start))
	if !strings.Contains(line, "cells/sec") {
		t.Errorf("throughput line = %q", line)
	}
}

func TestClientScenariosAndCancellation(t *testing.T) {
	c, err := gasperleak.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	infos := c.Scenarios()
	if len(infos) != len(gasperleak.ScenarioNames()) {
		t.Fatalf("Scenarios() = %d entries, want %d", len(infos), len(gasperleak.ScenarioNames()))
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Run(ctx, "leaksim", gasperleak.ScenarioParams{}); err == nil {
		t.Error("cancelled run must error")
	}
	results := c.Sweep(ctx, gasperleak.Table1Cells(1))
	if len(results) != 5 {
		t.Fatalf("cancelled sweep results = %d, want 5", len(results))
	}
	for i, r := range results {
		if !strings.Contains(r.Err, context.Canceled.Error()) {
			t.Errorf("cell %d: Err = %q, want context error", i, r.Err)
		}
	}
}
