package gasperleak

import (
	"repro/internal/beacon"
	"repro/internal/behavior"
	"repro/internal/sim"
)

// Re-exported protocol simulator.
type (
	// SimConfig parameterizes a full protocol simulation.
	SimConfig = sim.Config
	// Simulation is a running protocol instance: one materialized view
	// per cohort (partition of honest validators, or the bridging
	// Byzantine set) over a partitionable network. Set
	// SimConfig.PerValidatorViews for the pre-refactor
	// one-node-per-validator layout (the equivalence oracle).
	Simulation = sim.Simulation
	// Cohort is one materialized view and the validators holding it.
	Cohort = sim.Cohort
	// SimMessage is the simulator's wire format.
	SimMessage = sim.Message
	// AttBatch carries one attestation data value cast by many
	// validators — the wire form of a cohort's duty slot.
	AttBatch = sim.AttBatch
	// Adversary coordinates the Byzantine validators.
	Adversary = sim.Adversary
	// Node is one materialized protocol view (use Simulation.View to
	// fetch the view a validator acts from).
	Node = beacon.Node
	// SafetyViolation describes a detected conflicting finalization.
	SafetyViolation = sim.SafetyViolation
	// EpochMetrics snapshots aggregate honest-view state per epoch
	// (Simulation.MetricsAt).
	EpochMetrics = sim.EpochMetrics
	// MetricsRecorder accumulates per-epoch metrics via its Hook.
	MetricsRecorder = sim.Recorder
	// SimSnapshot is a frozen deep copy of a simulation's full protocol
	// state: take one with Simulation.Snapshot, rewind or fan out
	// continuations with Simulation.Restore — long runs become
	// resumable and same-config sweeps warm-start from a shared prefix.
	SimSnapshot = sim.Snapshot

	// DoubleVoter is the Scenario 5.2.1 adversary.
	DoubleVoter = behavior.DoubleVoter
	// SemiActive is the Scenario 5.2.2 / 5.2.3 adversary.
	SemiActive = behavior.SemiActive
	// Bouncer is the Scenario 5.3 adversary.
	Bouncer = behavior.Bouncer
)

// NewSimulation builds a protocol simulation from cfg.
func NewSimulation(cfg SimConfig) (*Simulation, error) { return sim.New(cfg) }

// NewBouncer builds the bouncing adversary with the paper's p0 parameter
// and partition representatives used to locate the fork at GST.
func NewBouncer(p0 float64, seed int64, reps [2]ValidatorIndex) *Bouncer {
	return behavior.NewBouncer(p0, seed, reps)
}
