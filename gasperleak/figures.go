package gasperleak

import "repro/internal/report"

// Re-exported reporting primitives.
type (
	// Figure is a CSV-renderable data series set.
	Figure = report.Figure
	// ReportTable is an ASCII-renderable table.
	ReportTable = report.Table
)

// Figure2 regenerates the paper's Figure 2 (stake trajectories).
func Figure2() *Figure { return report.Figure2() }

// Figure3 regenerates Figure 3 (active-stake ratio curves).
func Figure3() *Figure { return report.Figure3() }

// Figure3Sim overlays the integer simulation on Figure 3's grid.
func Figure3Sim(every int) (*Figure, error) { return report.Figure3Sim(every) }

// Figure6 regenerates Figure 6 (conflict epoch vs beta0, both behaviors).
func Figure6() (*Figure, error) { return report.Figure6() }

// Figure7 regenerates Figure 7 (the beta_max >= 1/3 region).
func Figure7() *Figure { return report.Figure7() }

// Figure7Sim overlays the integer-simulation threshold boundary on
// Figure 7.
func Figure7Sim(points int) (*Figure, error) { return report.Figure7Sim(points) }

// Figure9 regenerates Figure 9 (censored stake distribution at epoch t).
func Figure9(t float64) *Figure { return report.Figure9(t) }

// Figure10 regenerates Figure 10 (Equation 24 probability curves).
func Figure10() *Figure { return report.Figure10() }

// Figure10MonteCarlo overlays the integer Monte-Carlo on Figure 10.
func Figure10MonteCarlo(beta0 float64, nHonest, runs int, seed int64) (*Figure, error) {
	return report.Figure10MonteCarlo(beta0, nHonest, runs, seed)
}

// RenderTable1 renders the scenario overview (Table 1).
func RenderTable1(seed int64) (*ReportTable, error) { return report.Table1(seed) }

// RenderTable2 renders Table 2 (paper vs analytic vs integer simulation).
func RenderTable2() (*ReportTable, error) { return report.Table2() }

// RenderTable3 renders Table 3.
func RenderTable3() (*ReportTable, error) { return report.Table3() }

// FormatEpoch renders an epoch count with its wall-clock duration.
func FormatEpoch(epochs float64) string { return report.FormatEpoch(epochs) }

// Timeline renders a protocol-simulation metrics history (from a
// MetricsRecorder) as a CSV-ready figure.
func Timeline(history []EpochMetrics) *Figure { return report.Timeline(history) }
