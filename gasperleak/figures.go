package gasperleak

import (
	"context"

	"repro/internal/engine"
	"repro/internal/report"
)

// Re-exported reporting primitives.
type (
	// Figure is a CSV-renderable data series set.
	Figure = report.Figure
	// ReportTable is an ASCII-renderable table.
	ReportTable = report.Table
)

// Figure2 regenerates the paper's Figure 2 (stake trajectories).
func Figure2() *Figure { return report.Figure2() }

// Figure3 regenerates Figure 3 (active-stake ratio curves).
func Figure3() *Figure { return report.Figure3() }

// Figure3Sim overlays the integer simulation on Figure 3's grid, running
// the p0 cells on `workers` goroutines (<= 0 = all CPUs).
//
// Deprecated: use Client.Figure3Sim, which takes a context.
func Figure3Sim(every, workers int) (*Figure, error) {
	return report.Figure3Sim(context.Background(), every, engine.Options{Workers: workers})
}

// Figure6 regenerates Figure 6 (conflict epoch vs beta0, both behaviors).
func Figure6() (*Figure, error) { return report.Figure6() }

// Figure7 regenerates Figure 7 (the beta_max >= 1/3 region).
func Figure7() *Figure { return report.Figure7() }

// Figure7Sim overlays the integer-simulation threshold boundary on
// Figure 7, running the per-p0 bisections on `workers` goroutines (<= 0 =
// all CPUs).
//
// Deprecated: use Client.Figure7Sim, which takes a context.
func Figure7Sim(points, workers int) (*Figure, error) {
	return report.Figure7Sim(context.Background(), points, engine.Options{Workers: workers})
}

// Figure9 regenerates Figure 9 (censored stake distribution at epoch t).
func Figure9(t float64) *Figure { return report.Figure9(t) }

// Figure10 regenerates Figure 10 (Equation 24 probability curves).
func Figure10() *Figure { return report.Figure10() }

// Figure10MonteCarlo overlays the integer Monte-Carlo on Figure 10:
// `runs` independent trajectories averaged, run on `workers` goroutines
// (<= 0 = all CPUs).
//
// Deprecated: use Client.Figure10MonteCarlo, which takes a context.
func Figure10MonteCarlo(beta0 float64, nHonest, runs int, seed int64, workers int) (*Figure, error) {
	return report.Figure10MonteCarlo(context.Background(), beta0, nHonest, runs, seed, engine.Options{Workers: workers})
}

// RenderTable1 renders the scenario overview (Table 1), sweeping the five
// scenarios on `workers` goroutines (<= 0 = all CPUs).
//
// Deprecated: use Client.RenderTable1, which takes a context.
func RenderTable1(seed int64, workers int) (*ReportTable, error) {
	return report.Table1(context.Background(), seed, engine.Options{Workers: workers})
}

// RenderTable2 renders Table 2 (paper vs analytic vs integer simulation),
// sweeping the beta0 rows on `workers` goroutines (<= 0 = all CPUs).
//
// Deprecated: use Client.RenderTable2, which takes a context.
func RenderTable2(workers int) (*ReportTable, error) {
	return report.Table2(context.Background(), engine.Options{Workers: workers})
}

// RenderTable3 renders Table 3, sweeping the beta0 rows on `workers`
// goroutines (<= 0 = all CPUs).
//
// Deprecated: use Client.RenderTable3, which takes a context.
func RenderTable3(workers int) (*ReportTable, error) {
	return report.Table3(context.Background(), engine.Options{Workers: workers})
}

// Table2Cells lists the engine sweep behind Table 2.
func Table2Cells() []SweepCell { return report.Table2Cells() }

// Table3Cells lists the engine sweep behind Table 3.
func Table3Cells() []SweepCell { return report.Table3Cells() }

// FormatEpoch renders an epoch count with its wall-clock duration.
func FormatEpoch(epochs float64) string { return report.FormatEpoch(epochs) }

// Timeline renders a protocol-simulation metrics history (from a
// MetricsRecorder) as a CSV-ready figure.
func Timeline(history []EpochMetrics) *Figure { return report.Timeline(history) }
