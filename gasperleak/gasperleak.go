// Package gasperleak is the public API of the reproduction of "Byzantine
// Attacks Exploiting Penalties in Ethereum PoS" (Pavloff, Amoussou-Guenou,
// Tucci-Piergiovanni — DSN 2024).
//
// It exposes three layers:
//
//   - the analytic models of the paper (stake laws, active-ratio curves,
//     conflicting-finalization solvers, and the bouncing-attack stake
//     distribution — Equations 1-24);
//   - the paper-scale scenario engines (aggregate two-branch leak
//     simulation and the bouncing Monte-Carlo), in exact integer Gwei
//     arithmetic;
//   - the full protocol simulator (block tree, LMD-GHOST, Casper FFG,
//     attestations, slashing, partitionable network, adversaries), for
//     mechanism-level experiments.
//
// Quick start:
//
//	res, err := gasperleak.LeakSim{N: 10000, P0: 0.5, Beta0: 0.2,
//	    Mode: gasperleak.ByzDoubleVote}.Run(9000, 0)
//	// res.ConflictEpoch ~ 3108: conflicting finalization in ~2 weeks.
package gasperleak

import (
	"repro/internal/analytic"
	"repro/internal/types"
)

// Re-exported protocol primitives.
type (
	// Slot is a 12-second protocol time unit.
	Slot = types.Slot
	// Epoch is a 32-slot protocol time unit.
	Epoch = types.Epoch
	// Gwei is a stake amount in 10^-9 ETH.
	Gwei = types.Gwei
	// ValidatorIndex identifies a validator.
	ValidatorIndex = types.ValidatorIndex
	// Checkpoint is a (block, epoch) pair.
	Checkpoint = types.Checkpoint
	// Spec bundles the protocol constants of the analysis.
	Spec = types.Spec
)

// DefaultSpec returns the paper's protocol constants.
func DefaultSpec() Spec { return types.DefaultSpec() }

// CompressedSpec returns a spec with the penalty quotient divided by
// factor, compressing leak time scales by ~sqrt(factor) for fast
// experiments with unchanged mechanisms.
func CompressedSpec(factor uint64) Spec { return types.CompressedSpec(factor) }

// Re-exported analytic models (paper Equations 1-24).
type (
	// AnalyticParams selects the ejection anchoring of the continuous
	// models.
	AnalyticParams = analytic.Params
	// BounceModel is the Section 5.3 stochastic stake model.
	BounceModel = analytic.BounceModel
	// Behavior selects the Byzantine strategy in conflict solvers.
	Behavior = analytic.Behavior
	// BranchConflict reports per-branch quorum and conflict epochs.
	BranchConflict = analytic.BranchConflict
)

// Byzantine behaviors for the analytic conflict solvers.
const (
	// HonestOnly is Scenario 5.1.
	HonestOnly = analytic.HonestOnly
	// WithSlashing is Scenario 5.2.1 (double voting).
	WithSlashing = analytic.WithSlashing
	// WithoutSlashing is Scenario 5.2.2 (semi-active).
	WithoutSlashing = analytic.WithoutSlashing
)

// PaperParams anchors the analytic models the way the paper reports them
// (ejection at epoch 4685).
func PaperParams() AnalyticParams { return analytic.PaperParams() }

// ContinuousParams derives the ejection epochs endogenously from the stake
// laws (~4660.7 / ~7610.9).
func ContinuousParams() AnalyticParams { return analytic.ContinuousParams() }

// StakeActive is the constant 32 ETH trajectory of an always-active
// validator.
func StakeActive(t float64) float64 { return analytic.StakeActive(t) }

// StakeSemiActive is the 32 e^{-3t^2/2^28} trajectory of a validator active
// every other epoch.
func StakeSemiActive(t float64) float64 { return analytic.StakeSemiActive(t) }

// StakeInactive is the 32 e^{-t^2/2^25} trajectory of an inactive
// validator.
func StakeInactive(t float64) float64 { return analytic.StakeInactive(t) }

// BounceWindow returns the Equation 14 interval of honest splits for which
// the probabilistic bouncing attack can continue.
func BounceWindow(beta0 float64) (lo, hi float64) { return analytic.BounceWindow(beta0) }

// BounceContinuationProbability is the (1-(1-beta0)^j)^k estimate of the
// attack lasting k epochs.
func BounceContinuationProbability(beta0 float64, j, k int) float64 {
	return analytic.BounceContinuationProbability(beta0, j, k)
}
