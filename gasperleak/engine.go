package gasperleak

import (
	"context"
	"io"

	"repro/internal/engine"
	// Install the snapshot-tree warm-start scheduler behind WithWarmStart
	// (the engine package cannot import it; see
	// engine.SetWarmStartScheduler).
	_ "repro/internal/engine/warmstart"
	"repro/internal/report"
)

// Re-exported scenario-engine primitives: the unified runner behind every
// table, figure, and CLI of the reproduction. Scenarios are looked up by
// name in a registry and parameter grids fan out over a worker pool with
// per-cell derived seeds, so sweep result payloads are bit-identical
// regardless of worker count.
//
// The execution entry points below are the v1 batch surface, kept as thin
// shims over the v2 Client (client.go): they run on the default registry
// with no cancellation. New code should construct a Client and pass a
// context instead.
type (
	// Scenario is one runnable analysis (analytic solver, paper-scale
	// engine, or protocol-simulator experiment).
	Scenario = engine.Scenario
	// ScenarioParams parameterizes a scenario run (zero field = scenario
	// default).
	ScenarioParams = engine.Params
	// ScenarioResult is the structured record every scenario emits.
	ScenarioResult = engine.Result
	// ScenarioMetric is one named scalar output.
	ScenarioMetric = engine.Metric
	// ScenarioRegistry is a named set of scenarios.
	ScenarioRegistry = engine.Registry
	// SweepCell is one sweep unit: scenario name + parameters.
	SweepCell = engine.Cell
	// SweepGrid is a rectangular parameter sweep (p0 x beta0 x mode x
	// seed x horizon) for one scenario.
	SweepGrid = engine.Grid
	// SweepOptions bounds sweep concurrency and selects the registry.
	SweepOptions = engine.Options
	// ParamField identifies one ScenarioParams field for
	// explicit-presence tracking (ScenarioParams.Explicit): marking a
	// field keeps an explicit zero — rate=0, gst=0 — through defaulting.
	ParamField = engine.Field
)

// ParamFieldForKey resolves a canonical parameter key ("p0", "rate",
// "gst", …) to its ScenarioParams presence bit; CLIs use it with
// flag.Visit to mark exactly the flags the user passed.
func ParamFieldForKey(key string) (ParamField, bool) { return engine.FieldForKey(key) }

// RunScenario executes a named scenario from the default registry.
//
// Deprecated: use Client.Run, which takes a context for cancellation.
func RunScenario(name string, p ScenarioParams) (ScenarioResult, error) {
	return engine.Run(name, p)
}

// LookupScenario finds a scenario in the default registry.
func LookupScenario(name string) (Scenario, bool) { return engine.Lookup(name) }

// ScenarioNames lists the default registry, sorted.
func ScenarioNames() []string { return engine.Names() }

// NewScenario builds a Scenario from a function, for registration in a
// custom registry (or engine.Default).
func NewScenario(name, desc string, defaults ScenarioParams, run func(ScenarioParams) (ScenarioResult, error)) Scenario {
	return engine.NewScenario(name, desc, defaults, run)
}

// Sweep fans the cells out over a bounded worker pool and returns one
// result per cell, in cell order, with payloads bit-identical for any
// worker count.
//
// Deprecated: use Client.Sweep (collected) or Client.SweepStream
// (per-cell updates as they complete), which take a context for
// cancellation.
func Sweep(cells []SweepCell, opt SweepOptions) []ScenarioResult {
	return engine.Sweep(cells, opt)
}

// RunSweepGrid expands a parameter grid and sweeps it.
//
// Deprecated: use Client.SweepGrid, which takes a context for
// cancellation.
func RunSweepGrid(g SweepGrid, opt SweepOptions) []ScenarioResult {
	return engine.SweepGrid(g, opt)
}

// ParseGrid parses a "p0=0.2:0.8:0.1; beta0=0.1,0.2; mode=double" sweep
// spec into a grid for the named scenario.
func ParseGrid(scenario, spec string) (SweepGrid, error) {
	return engine.ParseGrid(scenario, spec)
}

// SweepFirstError returns the first per-cell error of a sweep, if any.
func SweepFirstError(results []ScenarioResult) error { return engine.FirstError(results) }

// Table1Cells lists the paper's Table 1 as sweep cells.
func Table1Cells(seed int64) []SweepCell { return engine.Table1Cells(seed) }

// DeriveSeed maps a base seed and cell coordinates to the cell's own
// deterministic seed.
func DeriveSeed(base int64, p0, beta0 float64, mode string, horizon int) int64 {
	return engine.DeriveSeed(base, p0, beta0, mode, horizon)
}

// BounceMCGrid builds the standard bouncing Monte-Carlo ensemble grid:
// one bounce-mc cell per run with consecutive base seeds.
func BounceMCGrid(p0, beta0 float64, n, runs int, seed int64, sample, horizon int) SweepGrid {
	return engine.BounceMCGrid(p0, beta0, n, runs, seed, sample, horizon)
}

// BounceMCSweep runs `runs` independent bouncing-attack trajectories and
// returns the engine results plus the run-averaged exceed-probability
// curve on the epoch grid sample, 2*sample, ..., horizon.
//
// Deprecated: use Client.BounceMCSweep, which takes a context for
// cancellation.
func BounceMCSweep(p0, beta0 float64, n, runs int, seed int64, sample, horizon, workers int) ([]ScenarioResult, []float64, error) {
	return report.BounceMCSweep(context.Background(), p0, beta0, n, runs, seed, sample, horizon, engine.Options{Workers: workers})
}

// RenderSweep renders sweep results as a fixed-width ASCII table.
func RenderSweep(title string, results []ScenarioResult) *ReportTable {
	return report.SweepTable(title, results)
}

// WriteSweepCSV emits sweep results as CSV.
func WriteSweepCSV(w io.Writer, title string, results []ScenarioResult) error {
	return report.WriteSweepCSV(w, title, results)
}

// WriteSweepJSON emits sweep results as indented JSON.
func WriteSweepJSON(w io.Writer, results []ScenarioResult) error {
	return report.WriteSweepJSON(w, results)
}
