// Partition-finality: run the FULL protocol simulator (block tree,
// LMD-GHOST, Casper FFG, attestations, inactivity leak) through the paper's
// Scenario 5.1 — a lasting 50/50 partition with only honest validators —
// and watch both sides finalize conflicting chains.
//
// The headline violation epoch comes from the registry's sim/partition
// scenario via the v2 client; the epoch-by-epoch walkthrough then replays
// the identical configuration on the raw simulator so both layers can be
// compared line by line.
//
// The run uses a compressed penalty quotient (2^10 instead of 2^26) so the
// leak completes in ~25 epochs instead of ~4700; every mechanism is
// unchanged (see types.CompressedSpec).
//
// Run with:
//
//	go run ./examples/partition-finality
package main

import (
	"context"
	"fmt"
	"log"

	"repro/gasperleak"
)

func main() {
	const (
		validators = 16
		horizon    = 40
		seed       = 3
	)

	// Layer 1: the registry scenario, one client call. sim/partition
	// drives the same full simulator to the first finality-safety
	// violation.
	c, err := gasperleak.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.Run(context.Background(), "sim/partition",
		gasperleak.ScenarioParams{P0: 0.5, N: validators, Horizon: horizon, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	want, _ := res.Metric("violation_epoch")
	fmt.Printf("registry sim/partition: safety violation at epoch %.0f\n\n", want)

	// Layer 2: the same configuration on the raw simulator, epoch by
	// epoch.
	cfg := gasperleak.SimConfig{
		Validators: validators,
		Spec:       gasperleak.CompressedSpec(1 << 16),
		GST:        1 << 30, // the partition never heals
		Delay:      1,
		Seed:       seed,
		PartitionOf: func(v gasperleak.ValidatorIndex) int {
			if int(v) < validators/2 {
				return 0
			}
			return 1
		},
	}
	s, err := gasperleak.NewSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("epoch | side A: justified finalized stake | side B: justified finalized stake")
	for epoch := 1; epoch <= horizon; epoch++ {
		if err := s.RunEpochs(1); err != nil {
			log.Fatal(err)
		}
		a, b := s.View(0), s.View(validators-1)
		if epoch%4 == 0 || epoch > 20 {
			fmt.Printf("%5d | %9d %9d %6.0f ETH | %9d %9d %6.0f ETH\n",
				epoch,
				a.FFG.LatestJustified().Epoch, a.Finalized().Epoch,
				a.Registry.TotalStake().ETH(),
				b.FFG.LatestJustified().Epoch, b.Finalized().Epoch,
				b.Registry.TotalStake().ETH())
		}
		if v := s.CheckFinalitySafety(); v != nil {
			fmt.Printf("\nSAFETY VIOLATION at epoch %d (registry said %.0f):\n  %v\n", epoch, want, v)
			fmt.Println("\nBoth partitions finalized incompatible branches — exactly the")
			fmt.Println("paper's Scenario 5.1 outcome, with zero Byzantine validators.")
			return
		}
	}
	fmt.Printf("no violation within %d epochs (unexpected; check parameters)\n", horizon)
}
