// Partition-finality: run the FULL protocol simulator (block tree,
// LMD-GHOST, Casper FFG, attestations, inactivity leak) through the paper's
// Scenario 5.1 — a lasting 50/50 partition with only honest validators —
// and watch both sides finalize conflicting chains.
//
// The run uses a compressed penalty quotient (2^10 instead of 2^26) so the
// leak completes in ~25 epochs instead of ~4700; every mechanism is
// unchanged (see types.CompressedSpec).
//
// Run with:
//
//	go run ./examples/partition-finality
package main

import (
	"fmt"
	"log"

	"repro/gasperleak"
)

func main() {
	const validators = 16
	cfg := gasperleak.SimConfig{
		Validators: validators,
		Spec:       gasperleak.CompressedSpec(1 << 16),
		GST:        1 << 30, // the partition never heals
		Delay:      1,
		Seed:       3,
		PartitionOf: func(v gasperleak.ValidatorIndex) int {
			if int(v) < validators/2 {
				return 0
			}
			return 1
		},
	}
	s, err := gasperleak.NewSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("epoch | side A: justified finalized stake | side B: justified finalized stake")
	for epoch := 1; epoch <= 40; epoch++ {
		if err := s.RunEpochs(1); err != nil {
			log.Fatal(err)
		}
		a, b := s.Nodes[0], s.Nodes[validators-1]
		if epoch%4 == 0 || epoch > 20 {
			fmt.Printf("%5d | %9d %9d %6.0f ETH | %9d %9d %6.0f ETH\n",
				epoch,
				a.FFG.LatestJustified().Epoch, a.Finalized().Epoch,
				a.Registry.TotalStake().ETH(),
				b.FFG.LatestJustified().Epoch, b.Finalized().Epoch,
				b.Registry.TotalStake().ETH())
		}
		if v := s.CheckFinalitySafety(); v != nil {
			fmt.Printf("\nSAFETY VIOLATION at epoch %d:\n  %v\n", epoch, v)
			fmt.Println("\nBoth partitions finalized incompatible branches — exactly the")
			fmt.Println("paper's Scenario 5.1 outcome, with zero Byzantine validators.")
			return
		}
	}
	fmt.Println("no violation within 40 epochs (unexpected; check parameters)")
}
