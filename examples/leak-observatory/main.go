// Leak-observatory: attach a metrics recorder to the full protocol
// simulator and chart the life of an inactivity leak as CSV — finality
// stall, leak activation across views, stake drain, and the recovery when
// the partition heals. The counterfactual (what if the partition never
// healed?) comes from the registry's sim/partition scenario via the v2
// client.
//
// Run with:
//
//	go run ./examples/leak-observatory          # human-readable log
//	go run ./examples/leak-observatory -csv     # machine-readable series
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/gasperleak"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of a log")
	flag.Parse()

	const validators = 16
	rec := &gasperleak.MetricsRecorder{}
	cfg := gasperleak.SimConfig{
		Validators: validators,
		Spec:       gasperleak.CompressedSpec(1 << 16),
		GST:        12 * 32, // partition heals at epoch 12
		Delay:      1,
		Seed:       5,
		PartitionOf: func(v gasperleak.ValidatorIndex) int {
			if int(v) < validators/2 {
				return 0
			}
			return 1
		},
		OnEpoch: rec.Hook,
	}
	s, err := gasperleak.NewSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.RunEpochs(20); err != nil {
		log.Fatal(err)
	}

	if *csv {
		fmt.Println("epoch,min_finalized,max_finalized,max_justified,views_in_leak,min_total_stake_eth")
		for _, m := range rec.History {
			fmt.Printf("%d,%d,%d,%d,%d,%.1f\n",
				m.Epoch, m.MinFinalized, m.MaxFinalized, m.MaxJustified,
				m.InLeak, m.MinTotalStake.ETH())
		}
		return
	}

	for _, m := range rec.History {
		phase := "partitioned"
		if m.Epoch >= 12 {
			phase = "healed"
		}
		fmt.Printf("epoch %2d [%-11s] finalized %d..%d, justified %d, %2d/16 views in leak, stake >= %.1f ETH\n",
			m.Epoch, phase, m.MinFinalized, m.MaxFinalized, m.MaxJustified,
			m.InLeak, m.MinTotalStake.ETH())
	}
	fmt.Printf("\nfinality stalled for %d epochs before recovering\n", longestStall(rec))
	if v := s.CheckFinalitySafety(); v != nil {
		fmt.Println("safety violation:", v)
	} else {
		fmt.Println("safety held: the partition healed before the leak completed")
	}

	// The counterfactual through the v2 client: the same topology and
	// seed with a partition that never heals finalizes two conflicting
	// chains — the observatory shows how close the healed run came.
	c, err := gasperleak.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.Run(context.Background(), "sim/partition",
		gasperleak.ScenarioParams{P0: 0.5, N: validators, Horizon: 40, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	if v, _ := res.Metric("violation_epoch"); v > 0 {
		fmt.Printf("counterfactual (never heals): conflicting finalization at epoch %.0f\n", v)
	}
}

// longestStall finds the longest run of epochs without finality progress.
func longestStall(rec *gasperleak.MetricsRecorder) int {
	longest, cur := 0, 0
	for i := 1; i < len(rec.History); i++ {
		if rec.History[i].MaxFinalized == rec.History[i-1].MaxFinalized {
			cur++
			if cur > longest {
				longest = cur
			}
		} else {
			cur = 0
		}
	}
	return longest
}
