// Bouncing-attack: explore the probabilistic bouncing attack under the
// inactivity leak (paper Section 5.3) at three levels:
//
//  1. the Equation 14 feasibility window and the continuation probability;
//  2. Equation 24 vs the exact integer Monte-Carlo for P[beta > 1/3];
//  3. a protocol-level run of the bouncing adversary on the full simulator
//     (compressed spec): finality stalls while the attack runs and recovers
//     when it stops.
//
// Run with:
//
//	go run ./examples/bouncing-attack
package main

import (
	"fmt"
	"log"

	"repro/gasperleak"
)

func main() {
	analyticLevel()
	monteCarloLevel()
	protocolLevel()
}

func analyticLevel() {
	fmt.Println("-- Equation 14: the attack window --")
	for _, beta0 := range []float64{0.1, 0.2, 0.3, 1.0 / 3.0} {
		lo, hi := gasperleak.BounceWindow(beta0)
		fmt.Printf("beta0=%.4f: honest split p0 must lie in (%.4f, %.4f)\n", beta0, lo, hi)
	}
	fmt.Printf("\ncontinuation to epoch 7000 (j=8, beta0=1/3): %.2e (the paper's 1e-121)\n\n",
		gasperleak.BounceContinuationProbability(1.0/3.0, 8, 7000))
}

func monteCarloLevel() {
	fmt.Println("-- P[beta > 1/3]: Equation 24 vs integer Monte-Carlo --")
	model := gasperleak.BounceModel{P0: 0.5}
	params := gasperleak.PaperParams()
	epochs := []gasperleak.Epoch{2000, 4000, 6000}
	for _, beta0 := range []float64{1.0 / 3.0, 0.33} {
		mc := gasperleak.BounceMC{NHonest: 400, Beta0: beta0, P0: 0.5, Seed: 7}
		probs, err := mc.ExceedProbability(epochs, 4)
		if err != nil {
			log.Fatal(err)
		}
		for i, e := range epochs {
			fmt.Printf("beta0=%.4f t=%4d  Eq24=%.3f  MC=%.3f\n",
				beta0, e, model.ExceedProbability(float64(e), beta0, params), probs[i])
		}
	}
	fmt.Println()
}

func protocolLevel() {
	fmt.Println("-- protocol-level bouncing (compressed spec) --")
	const validators = 32
	adv := gasperleak.NewBouncer(0.7, 99, [2]gasperleak.ValidatorIndex{0, 12})
	adv.Stop = 14
	cfg := gasperleak.SimConfig{
		Validators: validators,
		Spec:       gasperleak.CompressedSpec(1 << 14),
		GST:        3 * 32,
		Delay:      1,
		Seed:       19,
		Byzantine:  []gasperleak.ValidatorIndex{24, 25, 26, 27, 28, 29, 30, 31},
		PartitionOf: func(v gasperleak.ValidatorIndex) int {
			if v < 12 {
				return 0
			}
			return 1
		},
		Adversary: adv,
	}
	s, err := gasperleak.NewSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for epoch := 1; epoch <= 20; epoch++ {
		if err := s.RunEpochs(1); err != nil {
			log.Fatal(err)
		}
		n := s.Nodes[1]
		phase := "attack"
		if epoch >= 14 {
			phase = "stopped"
		}
		fmt.Printf("epoch %2d [%s]: justified=%d finalized=%d honest stake=%.0f ETH\n",
			epoch, phase, n.FFG.LatestJustified().Epoch, n.Finalized().Epoch,
			n.Registry.TotalStake().ETH())
	}
	if v := s.CheckFinalitySafety(); v != nil {
		fmt.Println("unexpected safety violation:", v)
	} else {
		fmt.Println("finality stalled during the attack, recovered after it stopped; no fork")
	}
}
