// Bouncing-attack: explore the probabilistic bouncing attack under the
// inactivity leak (paper Section 5.3) at three levels:
//
//  1. the Equation 14 feasibility window and the continuation probability,
//     from the analytic registry entries via the v2 client;
//  2. Equation 24 vs the exact integer Monte-Carlo for P[beta > 1/3],
//     as a parallel client sweep of bounce-mc cells;
//  3. a protocol-level run of the bouncing adversary on the full simulator
//     (compressed spec): finality stalls while the attack runs and recovers
//     when it stops.
//
// Run with:
//
//	go run ./examples/bouncing-attack
package main

import (
	"context"
	"fmt"
	"log"

	"repro/gasperleak"
)

func main() {
	ctx := context.Background()
	c, err := gasperleak.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	analyticLevel(ctx, c)
	monteCarloLevel(ctx, c)
	protocolLevel()
}

func analyticLevel(ctx context.Context, c *gasperleak.Client) {
	fmt.Println("-- Equation 14: the attack window --")
	for _, beta0 := range []float64{0.1, 0.2, 0.3, 1.0 / 3.0} {
		res, err := c.Run(ctx, "analytic/bounce", gasperleak.ScenarioParams{P0: 0.5, Beta0: beta0, Horizon: 4000})
		if err != nil {
			log.Fatal(err)
		}
		lo, _ := res.Metric("window_lo")
		hi, _ := res.Metric("window_hi")
		fmt.Printf("beta0=%.4f: honest split p0 must lie in (%.4f, %.4f)\n", beta0, lo, hi)
	}
	fmt.Printf("\ncontinuation to epoch 7000 (j=8, beta0=1/3): %.2e (the paper's 1e-121)\n\n",
		gasperleak.BounceContinuationProbability(1.0/3.0, 8, 7000))
}

func monteCarloLevel(ctx context.Context, c *gasperleak.Client) {
	fmt.Println("-- P[beta > 1/3]: Equation 24 vs integer Monte-Carlo --")
	model := gasperleak.BounceModel{P0: 0.5}
	params := gasperleak.PaperParams()
	const (
		runs    = 4
		sample  = 2000
		horizon = 6000
	)
	for _, beta0 := range []float64{1.0 / 3.0, 0.33} {
		// One bounce-mc cell per derived seed, each simulated once to
		// the full horizon with the crossing fraction sampled every
		// `sample` epochs, fanned out in parallel.
		grid := gasperleak.BounceMCGrid(0.5, beta0, 400, runs, 7, sample, horizon)
		results := c.SweepGrid(ctx, grid)
		if err := gasperleak.SweepFirstError(results); err != nil {
			log.Fatal(err)
		}
		mc := map[float64]float64{}
		for _, r := range results {
			for _, pt := range r.Curve {
				mc[pt.X] += pt.Y / runs
			}
		}
		for e := float64(sample); e <= horizon; e += sample {
			fmt.Printf("beta0=%.4f t=%4.0f  Eq24=%.3f  MC=%.3f\n",
				beta0, e, model.ExceedProbability(e, beta0, params), mc[e])
		}
	}
	fmt.Println()
}

func protocolLevel() {
	fmt.Println("-- protocol-level bouncing (compressed spec) --")
	const validators = 32
	adv := gasperleak.NewBouncer(0.7, 99, [2]gasperleak.ValidatorIndex{0, 12})
	adv.Stop = 14
	cfg := gasperleak.SimConfig{
		Validators: validators,
		Spec:       gasperleak.CompressedSpec(1 << 14),
		GST:        3 * 32,
		Delay:      1,
		Seed:       19,
		Byzantine:  []gasperleak.ValidatorIndex{24, 25, 26, 27, 28, 29, 30, 31},
		PartitionOf: func(v gasperleak.ValidatorIndex) int {
			if v < 12 {
				return 0
			}
			return 1
		},
		Adversary: adv,
	}
	s, err := gasperleak.NewSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for epoch := 1; epoch <= 20; epoch++ {
		if err := s.RunEpochs(1); err != nil {
			log.Fatal(err)
		}
		n := s.View(1)
		phase := "attack"
		if epoch >= 14 {
			phase = "stopped"
		}
		fmt.Printf("epoch %2d [%s]: justified=%d finalized=%d honest stake=%.0f ETH\n",
			epoch, phase, n.FFG.LatestJustified().Epoch, n.Finalized().Epoch,
			n.Registry.TotalStake().ETH())
	}
	if v := s.CheckFinalitySafety(); v != nil {
		fmt.Println("unexpected safety violation:", v)
	} else {
		fmt.Println("finality stalled during the attack, recovered after it stopped; no fork")
	}
}
