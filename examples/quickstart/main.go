// Quickstart: reproduce the paper's headline numbers in a few lines of
// the v2 client API — every scenario is a named registry entry run
// through a cancellable context.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/gasperleak"
)

func main() {
	ctx := context.Background()
	c, err := gasperleak.NewClient()
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, p gasperleak.ScenarioParams) gasperleak.ScenarioResult {
		res, err := c.Run(ctx, name, p)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	epochOf := func(r gasperleak.ScenarioResult) string {
		v, _ := r.Metric("sim_epoch")
		return gasperleak.FormatEpoch(v)
	}

	// With only honest validators, a lasting 50/50 partition finalizes
	// two conflicting chains once the inactivity leak has drained the
	// "unreachable" half on each side (paper Section 5.1).
	fmt.Printf("honest only:     conflicting finalization after %s\n",
		epochOf(run("5.1", gasperleak.ScenarioParams{P0: 0.5})))

	// Byzantine validators holding 20% of stake and double-voting on
	// both branches make it happen ~1.5x faster (Section 5.2.1)...
	fmt.Printf("double voting:   conflicting finalization after %s\n",
		epochOf(run("5.2.1", gasperleak.ScenarioParams{P0: 0.5, Beta0: 0.2})))

	// ...and with beta0 = 0.33 about ten times faster.
	fmt.Printf("beta0=0.33:      conflicting finalization after %s\n",
		epochOf(run("5.2.1", gasperleak.ScenarioParams{P0: 0.5, Beta0: 0.33})))

	// The same attack without any slashable action (Section 5.2.2).
	fmt.Printf("non-slashable:   conflicting finalization after %s\n",
		epochOf(run("5.2.2", gasperleak.ScenarioParams{P0: 0.5, Beta0: 0.33})))

	// And the minimum initial Byzantine proportion that can cross the
	// 1/3 Safety threshold on both branches (Section 5.2.3), from the
	// closed-form registry entry.
	threshold := run("analytic/threshold", gasperleak.ScenarioParams{P0: 0.5})
	v, _ := threshold.Metric("threshold_both_branches")
	fmt.Printf("threshold:       beta0 >= %.4f can exceed 1/3 on both branches\n", v)
}
