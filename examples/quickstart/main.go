// Quickstart: reproduce the paper's headline numbers in a few lines.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/gasperleak"
)

func main() {
	// With only honest validators, a lasting 50/50 partition finalizes
	// two conflicting chains once the inactivity leak has drained the
	// "unreachable" half on each side (paper Section 5.1).
	honest, err := gasperleak.Scenario51(0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("honest only:     conflicting finalization after %s\n",
		gasperleak.FormatEpoch(float64(honest.SimEpoch)))

	// Byzantine validators holding 20%% of stake and double-voting on
	// both branches make it happen ~1.5x faster (Section 5.2.1)...
	slashable, err := gasperleak.Scenario521(0.5, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("double voting:   conflicting finalization after %s\n",
		gasperleak.FormatEpoch(float64(slashable.SimEpoch)))

	// ...and with beta0 = 0.33 about ten times faster.
	fast, err := gasperleak.Scenario521(0.5, 0.33)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("beta0=0.33:      conflicting finalization after %s\n",
		gasperleak.FormatEpoch(float64(fast.SimEpoch)))

	// The same attack without any slashable action (Section 5.2.2).
	subtle, err := gasperleak.Scenario522(0.5, 0.33)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("non-slashable:   conflicting finalization after %s\n",
		gasperleak.FormatEpoch(float64(subtle.SimEpoch)))

	// And the minimum initial Byzantine proportion that can cross the
	// 1/3 Safety threshold on both branches (Section 5.2.3).
	params := gasperleak.PaperParams()
	fmt.Printf("threshold:       beta0 >= %.4f can exceed 1/3 on both branches\n",
		params.ThresholdBeta0(0.5))
}
