// Byzantine-acceleration: sweep the initial Byzantine proportion beta0 and
// show how much faster Safety breaks under the two Byzantine behaviors of
// the paper (double-voting vs semi-active), plus the 1/3-threshold scenario.
//
// Run with:
//
//	go run ./examples/byzantine-acceleration
package main

import (
	"fmt"
	"log"

	"repro/gasperleak"
)

func main() {
	fmt.Println("Epochs until conflicting finalization (p0 = 0.5), integer simulation:")
	fmt.Println("beta0   double-vote   semi-active   speedup-vs-honest")
	baseline := 0.0
	for _, beta0 := range []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.33} {
		var dv, sa gasperleak.ScenarioSummary
		var err error
		if beta0 == 0 {
			dv, err = gasperleak.Scenario51(0.5)
			if err != nil {
				log.Fatal(err)
			}
			sa = dv
			baseline = float64(dv.SimEpoch)
		} else {
			dv, err = gasperleak.Scenario521(0.5, beta0)
			if err != nil {
				log.Fatal(err)
			}
			sa, err = gasperleak.Scenario522(0.5, beta0)
			if err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%.2f    %11d   %11d   %17.1fx\n",
			beta0, dv.SimEpoch, sa.SimEpoch, baseline/float64(dv.SimEpoch))
	}

	fmt.Println()
	fmt.Println("Crossing the 1/3 Safety threshold by delaying finalization (5.2.3):")
	params := gasperleak.PaperParams()
	fmt.Printf("analytic minimum beta0 at p0=0.5: %.4f\n", params.ThresholdBeta0(0.5))
	for _, beta0 := range []float64{0.23, 0.2421, 0.25, 0.3} {
		s, err := gasperleak.Scenario523(0.5, beta0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("beta0=%.4f  peak proportion %.4f at epoch %d  crossed 1/3: %v\n",
			beta0, s.PeakByzProportion, s.SimEpoch, s.CrossedOneThird)
	}
}
