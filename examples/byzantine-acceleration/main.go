// Byzantine-acceleration: sweep the initial Byzantine proportion beta0 and
// show how much faster Safety breaks under the two Byzantine behaviors of
// the paper (double-voting vs semi-active), plus the 1/3-threshold
// scenario — all as one streamed v2-client sweep over the registry, with
// per-cell results arriving as they complete.
//
// Run with:
//
//	go run ./examples/byzantine-acceleration
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/gasperleak"
)

func main() {
	ctx := context.Background()
	c, err := gasperleak.NewClient()
	if err != nil {
		log.Fatal(err)
	}

	// One cell per (beta0, behavior): the registry's 5.1 covers beta0=0,
	// 5.2.1 the double-voting rows, 5.2.2 the semi-active rows.
	betas := []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.33}
	var cells []gasperleak.SweepCell
	for _, beta0 := range betas {
		if beta0 == 0 {
			cells = append(cells, gasperleak.SweepCell{Scenario: "5.1", Params: gasperleak.ScenarioParams{P0: 0.5}})
			continue
		}
		cells = append(cells,
			gasperleak.SweepCell{Scenario: "5.2.1", Params: gasperleak.ScenarioParams{P0: 0.5, Beta0: beta0}},
			gasperleak.SweepCell{Scenario: "5.2.2", Params: gasperleak.ScenarioParams{P0: 0.5, Beta0: beta0}},
		)
	}

	// Stream the sweep: cells land in completion order, so collect by
	// index and show live progress on the way.
	results := make([]gasperleak.ScenarioResult, len(cells))
	start := time.Now()
	for u := range c.SweepStream(ctx, cells) {
		if u.Result.Err != "" {
			log.Fatalf("cell %d: %s", u.Index, u.Result.Err)
		}
		fmt.Printf("\r%d/%d cells done", u.Completed, u.Total)
		results[u.Index] = u.Result
	}
	fmt.Printf("\r%s\n\n", gasperleak.SweepThroughput(results, time.Since(start)))

	fmt.Println("Epochs until conflicting finalization (p0 = 0.5), integer simulation:")
	fmt.Println("beta0   double-vote   semi-active   speedup-vs-honest")
	epochOf := func(r gasperleak.ScenarioResult) float64 {
		v, _ := r.Metric("sim_epoch")
		return v
	}
	baseline := epochOf(results[0])
	i := 1
	for _, beta0 := range betas {
		if beta0 == 0 {
			fmt.Printf("%.2f    %11.0f   %11.0f   %17.1fx\n", beta0, baseline, baseline, 1.0)
			continue
		}
		dv, sa := epochOf(results[i]), epochOf(results[i+1])
		i += 2
		fmt.Printf("%.2f    %11.0f   %11.0f   %17.1fx\n", beta0, dv, sa, baseline/dv)
	}

	fmt.Println()
	fmt.Println("Crossing the 1/3 Safety threshold by delaying finalization (5.2.3):")
	threshold, err := c.Run(ctx, "analytic/threshold", gasperleak.ScenarioParams{P0: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	minBeta, _ := threshold.Metric("threshold_both_branches")
	fmt.Printf("analytic minimum beta0 at p0=0.5: %.4f\n", minBeta)
	for _, beta0 := range []float64{0.23, 0.2421, 0.25, 0.3} {
		res, err := c.Run(ctx, "5.2.3", gasperleak.ScenarioParams{P0: 0.5, Beta0: beta0})
		if err != nil {
			log.Fatal(err)
		}
		peak, _ := res.Metric("peak_byz_proportion")
		epoch, _ := res.Metric("sim_epoch")
		crossed, _ := res.Metric("crossed_one_third")
		fmt.Printf("beta0=%.4f  peak proportion %.4f at epoch %.0f  crossed 1/3: %v\n",
			beta0, peak, epoch, crossed == 1)
	}
}
