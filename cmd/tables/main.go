// Command tables prints the paper's Tables 1-3, each comparing the paper's
// reported values with the analytic models and the exact integer
// simulation.
//
// Usage:
//
//	tables            # all three tables
//	tables -table 2   # only Table 2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/gasperleak"
)

func main() {
	table := flag.Int("table", 0, "table number (1, 2, 3); 0 = all")
	seed := flag.Int64("seed", 1, "seed for Table 1's Monte-Carlo scenario")
	flag.Parse()

	if err := run(*table, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

func run(table int, seed int64) error {
	want := func(n int) bool { return table == 0 || table == n }
	if want(1) {
		t, err := gasperleak.RenderTable1(seed)
		if err != nil {
			return err
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if want(2) {
		t, err := gasperleak.RenderTable2()
		if err != nil {
			return err
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if want(3) {
		t, err := gasperleak.RenderTable3()
		if err != nil {
			return err
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if table != 0 && table < 1 || table > 3 {
		return fmt.Errorf("unknown table %d (want 1, 2, or 3)", table)
	}
	return nil
}
