// Command tables prints the paper's Tables 1-3, each comparing the paper's
// reported values with the analytic models and the exact integer
// simulation. Every table's scenario cells run through the engine registry
// over a parallel worker pool.
//
// Usage:
//
//	tables                       # all three tables
//	tables -table 2 -workers 8   # only Table 2, 8-way parallel rows
//	tables -table 1 -json        # Table 1's engine results as JSON
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/gasperleak"
)

func main() {
	table := flag.Int("table", 0, "table number (1, 2, 3); 0 = all")
	seed := flag.Int64("seed", 1, "seed for Table 1's Monte-Carlo scenario")
	workers := flag.Int("workers", 0, "worker pool size for the scenario sweeps (0 = all CPUs)")
	jsonOut := flag.Bool("json", false, "emit the engine sweep results as JSON instead of ASCII tables")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stdout, *table, *seed, *workers, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, w io.Writer, table int, seed int64, workers int, jsonOut bool) error {
	if table < 0 || table > 3 {
		return fmt.Errorf("unknown table %d (want 1, 2, or 3)", table)
	}
	c, err := gasperleak.NewClient(gasperleak.WithWorkers(workers))
	if err != nil {
		return err
	}
	want := func(n int) bool { return table == 0 || table == n }
	if jsonOut {
		return runJSON(ctx, w, c, want, seed)
	}
	render := map[int]func() (*gasperleak.ReportTable, error){
		1: func() (*gasperleak.ReportTable, error) { return c.RenderTable1(ctx, seed) },
		2: func() (*gasperleak.ReportTable, error) { return c.RenderTable2(ctx) },
		3: func() (*gasperleak.ReportTable, error) { return c.RenderTable3(ctx) },
	}
	for n := 1; n <= 3; n++ {
		if !want(n) {
			continue
		}
		t, err := render[n]()
		if err != nil {
			return err
		}
		if err := t.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runJSON emits the engine results behind each requested table as one JSON
// array, in table order.
func runJSON(ctx context.Context, w io.Writer, c *gasperleak.Client, want func(int) bool, seed int64) error {
	var cells []gasperleak.SweepCell
	if want(1) {
		cells = append(cells, gasperleak.Table1Cells(seed)...)
	}
	if want(2) {
		cells = append(cells, gasperleak.Table2Cells()...)
	}
	if want(3) {
		cells = append(cells, gasperleak.Table3Cells()...)
	}
	results := c.Sweep(ctx, cells)
	if err := gasperleak.SweepFirstError(results); err != nil {
		return err
	}
	return gasperleak.WriteSweepJSON(w, results)
}
