package main

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/gasperleak"
)

func TestRunSingleTables(t *testing.T) {
	for _, n := range []int{2, 3} {
		var b strings.Builder
		if err := run(context.Background(), &b, n, 1, 0, false); err != nil {
			t.Errorf("table %d: %v", n, err)
		}
		if !strings.Contains(b.String(), "4685") {
			t.Errorf("table %d must contain the paper's 4685 row:\n%s", n, b.String())
		}
	}
}

func TestRunBadTable(t *testing.T) {
	if err := run(context.Background(), &strings.Builder{}, 9, 1, 0, false); err == nil {
		t.Error("unknown table must error")
	}
}

func TestRunJSON(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b, 2, 1, 2, true); err != nil {
		t.Fatal(err)
	}
	var results []gasperleak.ScenarioResult
	if err := json.Unmarshal([]byte(b.String()), &results); err != nil {
		t.Fatalf("-json output is not JSON: %v", err)
	}
	if len(results) != 5 {
		t.Fatalf("results = %d, want the 5 Table 2 rows", len(results))
	}
	for _, r := range results {
		if r.Scenario != "leaksim" {
			t.Errorf("table 2 row ran scenario %q, want leaksim", r.Scenario)
		}
	}
}

// Negative -workers is rejected with a clear error (uniform across all
// cmd tools via the client constructor), not silently clamped.
func TestRunRejectsNegativeWorkers(t *testing.T) {
	err := run(context.Background(), &strings.Builder{}, 2, 1, -2, false)
	if err == nil || !strings.Contains(err.Error(), "-2") || !strings.Contains(err.Error(), "workers") {
		t.Errorf("workers=-2 err = %v, want a clear validation error", err)
	}
}
