package main

import "testing"

func TestRunSingleTables(t *testing.T) {
	for _, n := range []int{2, 3} {
		if err := run(n, 1); err != nil {
			t.Errorf("table %d: %v", n, err)
		}
	}
}

func TestRunBadTable(t *testing.T) {
	if err := run(9, 1); err == nil {
		t.Error("unknown table must error")
	}
}
