package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/gasperleak"
)

func testClient(t *testing.T, workers int) *gasperleak.Client {
	t.Helper()
	c, err := gasperleak.NewClient(gasperleak.WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildEveryFigure(t *testing.T) {
	for _, id := range []string{"2", "3", "6", "7", "9", "10"} { // sim overlays tested separately
		f, err := build(context.Background(), testClient(t, 0), id, 4024, 1.0/3.0, 50, 1, 1)
		if err != nil {
			t.Errorf("figure %s: %v", id, err)
			continue
		}
		if len(f.X) == 0 || len(f.Series) == 0 {
			t.Errorf("figure %s: empty", id)
		}
	}
}

func TestBuildMonteCarloFigure(t *testing.T) {
	f, err := build(context.Background(), testClient(t, 2), "10mc", 0, 1.0/3.0, 50, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Errorf("10mc series = %d, want 2", len(f.Series))
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := build(context.Background(), testClient(t, 0), "99", 0, 0, 0, 0, 0); err == nil {
		t.Error("unknown figure must error")
	}
}

func TestEmitAll(t *testing.T) {
	dir := t.TempDir()
	if err := emitAll(context.Background(), testClient(t, 0), dir, 4024, 1.0/3.0, 50, 1, 1, false); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"2", "3", "3sim", "6", "7", "7sim", "9", "10", "10mc"} {
		path := filepath.Join(dir, "fig"+id+".csv")
		info, err := os.Stat(path)
		if err != nil {
			t.Errorf("missing %s: %v", path, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestEmitAllJSON(t *testing.T) {
	dir := t.TempDir()
	if err := emitAll(context.Background(), testClient(t, 0), dir, 4024, 1.0/3.0, 50, 1, 1, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig2.json"))
	if err != nil {
		t.Fatal(err)
	}
	var fig struct {
		Title  string `json:"title"`
		Series []struct {
			Name string `json:"name"`
		} `json:"series"`
	}
	if err := json.Unmarshal(data, &fig); err != nil {
		t.Fatalf("fig2.json is not JSON: %v", err)
	}
	if fig.Title == "" || len(fig.Series) != 3 {
		t.Errorf("fig2.json incomplete: %+v", fig)
	}
}

// Negative -workers is rejected with a clear error (uniform across all
// cmd tools via the client constructor), not silently clamped.
func TestRunRejectsNegativeWorkers(t *testing.T) {
	err := run(context.Background(), "2", false, ".", 4024, 1.0/3.0, 50, 1, 1, -2, false)
	if err == nil || !strings.Contains(err.Error(), "-2") || !strings.Contains(err.Error(), "workers") {
		t.Errorf("workers=-2 err = %v, want a clear validation error", err)
	}
}
