// Command figures emits the data series behind every figure of the paper,
// either to stdout (one figure) or into a directory (all figures). The
// simulation-backed figures (3sim, 7sim, 10mc) run their cells through the
// engine registry over a parallel worker pool.
//
// Usage:
//
//	figures -fig 2            # Figure 2 CSV to stdout
//	figures -fig 10 -json     # Equation 24 curves as JSON
//	figures -fig 10mc -beta0 0.333 -n 1000 -runs 10 -workers 8
//	figures -all -out data/   # every figure as data/figN.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"repro/gasperleak"
)

func main() {
	fig := flag.String("fig", "", "figure id: 2, 3, 3sim, 6, 7, 7sim, 9, 10, 10mc")
	all := flag.Bool("all", false, "emit every figure")
	out := flag.String("out", ".", "output directory for -all")
	t := flag.Float64("t", 4024, "epoch for figure 9")
	beta0 := flag.Float64("beta0", 1.0/3.0, "beta0 for figure 10mc")
	n := flag.Int("n", 500, "honest validators for figure 10mc")
	runs := flag.Int("runs", 5, "Monte-Carlo runs for figure 10mc")
	seed := flag.Int64("seed", 1, "seed for figure 10mc")
	workers := flag.Int("workers", 0, "worker pool size for simulation-backed figures (0 = all CPUs)")
	jsonOut := flag.Bool("json", false, "emit the figure as JSON instead of CSV")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *fig, *all, *out, *t, *beta0, *n, *runs, *seed, *workers, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, fig string, all bool, out string, t, beta0 float64, n, runs int, seed int64, workers int, jsonOut bool) error {
	c, err := gasperleak.NewClient(gasperleak.WithWorkers(workers))
	if err != nil {
		return err
	}
	if all {
		return emitAll(ctx, c, out, t, beta0, n, runs, seed, jsonOut)
	}
	f, err := build(ctx, c, fig, t, beta0, n, runs, seed)
	if err != nil {
		return err
	}
	if jsonOut {
		return f.WriteJSON(os.Stdout)
	}
	return f.WriteCSV(os.Stdout)
}

func build(ctx context.Context, c *gasperleak.Client, fig string, t, beta0 float64, n, runs int, seed int64) (*gasperleak.Figure, error) {
	switch fig {
	case "2":
		return gasperleak.Figure2(), nil
	case "3":
		return gasperleak.Figure3(), nil
	case "3sim":
		return c.Figure3Sim(ctx, 10)
	case "6":
		return gasperleak.Figure6()
	case "7":
		return gasperleak.Figure7(), nil
	case "7sim":
		return c.Figure7Sim(ctx, 17)
	case "9":
		return gasperleak.Figure9(t), nil
	case "10":
		return gasperleak.Figure10(), nil
	case "10mc":
		return c.Figure10MonteCarlo(ctx, beta0, n, runs, seed)
	default:
		return nil, fmt.Errorf("unknown figure %q (want 2, 3, 3sim, 6, 7, 7sim, 9, 10, 10mc)", fig)
	}
}

func emitAll(ctx context.Context, c *gasperleak.Client, dir string, t, beta0 float64, n, runs int, seed int64, jsonOut bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ext, write := ".csv", (*gasperleak.Figure).WriteCSV
	if jsonOut {
		ext, write = ".json", (*gasperleak.Figure).WriteJSON
	}
	for _, id := range []string{"2", "3", "3sim", "6", "7", "7sim", "9", "10", "10mc"} {
		f, err := build(ctx, c, id, t, beta0, n, runs, seed)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, "fig"+id+ext)
		w, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f, w); err != nil {
			w.Close()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}
