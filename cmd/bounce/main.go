// Command bounce explores the probabilistic bouncing attack (paper Section
// 5.3): the feasibility window of Equation 14, the continuation
// probability, and the Monte-Carlo estimate of the probability that the
// Byzantine stake proportion exceeds one-third. The Monte-Carlo runs are
// engine-registry cells (one trajectory per derived seed) fanned out over
// a parallel worker pool.
//
// Usage:
//
//	bounce -window                        # Equation 14 window per beta0
//	bounce -beta0 0.333 -epochs 4000      # Eq 24 vs Monte-Carlo at one epoch
//	bounce -beta0 0.33 -sweep -workers 8  # probability curve over the leak
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/gasperleak"
)

// options collects the CLI flags.
type options struct {
	window  bool
	sweep   bool
	beta0   float64
	p0      float64
	epochs  int
	n       int
	runs    int
	seed    int64
	j       int
	workers int
	jsonOut bool
}

func main() {
	var o options
	flag.BoolVar(&o.window, "window", false, "print the Equation 14 attack window for a beta0 sweep")
	flag.BoolVar(&o.sweep, "sweep", false, "print the probability curve over the leak")
	flag.Float64Var(&o.beta0, "beta0", 1.0/3.0, "initial Byzantine stake proportion")
	flag.Float64Var(&o.p0, "p0", 0.5, "per-epoch honest placement probability")
	flag.IntVar(&o.epochs, "epochs", 4000, "evaluation epoch")
	flag.IntVar(&o.n, "n", 500, "honest validators in the Monte-Carlo")
	flag.IntVar(&o.runs, "runs", 5, "Monte-Carlo runs")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	flag.IntVar(&o.j, "j", 8, "first slots with a Byzantine proposer (continuation estimate)")
	flag.IntVar(&o.workers, "workers", 0, "worker pool size for the Monte-Carlo runs (0 = all CPUs)")
	flag.BoolVar(&o.jsonOut, "json", false, "emit the engine results as JSON")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "bounce:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, w io.Writer, o options) error {
	c, err := gasperleak.NewClient(gasperleak.WithWorkers(o.workers))
	if err != nil {
		return err
	}
	if o.runs <= 0 {
		return fmt.Errorf("runs = %d, want > 0", o.runs)
	}
	// The engine treats zero-valued params as "use the scenario default",
	// so an explicit degenerate value would silently diverge from the
	// analytic columns computed with the raw flags. Reject it instead.
	if !o.window && (o.beta0 <= 0 || o.beta0 >= 1) {
		return fmt.Errorf("beta0 = %v, want in (0, 1)", o.beta0)
	}
	if o.p0 <= 0 || o.p0 >= 1 {
		return fmt.Errorf("p0 = %v, want in (0, 1)", o.p0)
	}
	// The curve sweep has its own fixed epoch grid; every other mode
	// evaluates at -epochs.
	if !o.sweep && o.epochs <= 0 {
		return fmt.Errorf("epochs = %d, want > 0", o.epochs)
	}
	if o.window {
		grid := gasperleak.SweepGrid{
			Scenario: "analytic/bounce",
			P0:       []float64{o.p0},
			Beta0:    []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 1.0 / 3.0},
			Horizons: []int{o.epochs},
		}
		results := c.SweepGrid(ctx, grid)
		if err := gasperleak.SweepFirstError(results); err != nil {
			return err
		}
		if o.jsonOut {
			return gasperleak.WriteSweepJSON(w, results)
		}
		fmt.Fprintln(w, "Equation 14 attack window (p0 range) per beta0:")
		for _, r := range results {
			lo, _ := r.Metric("window_lo")
			hi, _ := r.Metric("window_hi")
			fmt.Fprintf(w, "  beta0=%.4f  p0 in (%.4f, %.4f)\n", r.Params.Beta0, lo, hi)
		}
		return nil
	}

	model := gasperleak.BounceModel{P0: o.p0}
	params := gasperleak.PaperParams()

	if o.sweep {
		const sample, horizon = 1000, 7000
		results, mc, err := c.BounceMCSweep(ctx, o.p0, o.beta0, o.n, o.runs, o.seed, sample, horizon)
		if err != nil {
			return err
		}
		if o.jsonOut {
			return gasperleak.WriteSweepJSON(w, results)
		}
		fmt.Fprintf(w, "P[beta > 1/3] over the leak (beta0=%.4f, p0=%.2f, %d runs):\n", o.beta0, o.p0, o.runs)
		fmt.Fprintln(w, "epoch  equation24  montecarlo")
		for i, v := range mc {
			e := float64((i + 1) * sample)
			fmt.Fprintf(w, "%5.0f  %10.4f  %10.4f\n", e,
				model.ExceedProbability(e, o.beta0, params), v)
		}
		return nil
	}

	// Single-epoch estimate: the analytic window/continuation context plus
	// an engine sweep of `runs` one-trajectory Monte-Carlo cells.
	an, err := c.Run(ctx, "analytic/bounce",
		gasperleak.ScenarioParams{P0: o.p0, Beta0: o.beta0, Horizon: o.epochs})
	if err != nil {
		return err
	}
	grid := gasperleak.BounceMCGrid(o.p0, o.beta0, o.n, o.runs, o.seed, 0, o.epochs)
	results := c.SweepGrid(ctx, grid)
	if err := gasperleak.SweepFirstError(results); err != nil {
		return err
	}
	if o.jsonOut {
		return gasperleak.WriteSweepJSON(w, append([]gasperleak.ScenarioResult{an}, results...))
	}

	lo, _ := an.Metric("window_lo")
	hi, _ := an.Metric("window_hi")
	inWindow, _ := an.Metric("in_window")
	fmt.Fprintf(w, "beta0=%.4f p0=%.2f (window %.4f..%.4f, inside: %v)\n",
		o.beta0, o.p0, lo, hi, inWindow == 1)
	cont := gasperleak.BounceContinuationProbability(o.beta0, o.j, o.epochs)
	fmt.Fprintf(w, "continuation probability to epoch %d (j=%d): %.3e\n", o.epochs, o.j, cont)

	eq24, _ := an.Metric("eq24_probability")
	var mcProb float64
	for _, r := range results {
		v, _ := r.Metric("mc_probability")
		mcProb += v / float64(o.runs)
	}
	fmt.Fprintf(w, "P[beta > 1/3] at epoch %d: Equation 24 = %.4f, Monte-Carlo = %.4f (%d runs)\n",
		o.epochs, eq24, mcProb, o.runs)
	return nil
}
