// Command bounce explores the probabilistic bouncing attack (paper Section
// 5.3): the feasibility window of Equation 14, the continuation
// probability, and the Monte-Carlo estimate of the probability that the
// Byzantine stake proportion exceeds one-third.
//
// Usage:
//
//	bounce -window                        # Equation 14 window per beta0
//	bounce -beta0 0.333 -epochs 4000      # Eq 24 vs Monte-Carlo at one epoch
//	bounce -beta0 0.33 -sweep             # probability curve over the leak
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/gasperleak"
)

func main() {
	window := flag.Bool("window", false, "print the Equation 14 attack window for a beta0 sweep")
	sweep := flag.Bool("sweep", false, "print the probability curve over the leak")
	beta0 := flag.Float64("beta0", 1.0/3.0, "initial Byzantine stake proportion")
	p0 := flag.Float64("p0", 0.5, "per-epoch honest placement probability")
	epochs := flag.Int("epochs", 4000, "evaluation epoch")
	n := flag.Int("n", 500, "honest validators in the Monte-Carlo")
	runs := flag.Int("runs", 5, "Monte-Carlo runs")
	seed := flag.Int64("seed", 1, "random seed")
	j := flag.Int("j", 8, "first slots with a Byzantine proposer (continuation estimate)")
	flag.Parse()

	if err := run(*window, *sweep, *beta0, *p0, *epochs, *n, *runs, *seed, *j); err != nil {
		fmt.Fprintln(os.Stderr, "bounce:", err)
		os.Exit(1)
	}
}

func run(window, sweep bool, beta0, p0 float64, epochs, n, runs int, seed int64, j int) error {
	if window {
		fmt.Println("Equation 14 attack window (p0 range) per beta0:")
		for _, b := range []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 1.0 / 3.0} {
			lo, hi := gasperleak.BounceWindow(b)
			fmt.Printf("  beta0=%.4f  p0 in (%.4f, %.4f)\n", b, lo, hi)
		}
		return nil
	}

	model := gasperleak.BounceModel{P0: p0}
	params := gasperleak.PaperParams()

	if sweep {
		fmt.Printf("P[beta > 1/3] over the leak (beta0=%.4f, p0=%.2f):\n", beta0, p0)
		fmt.Println("epoch  equation24  montecarlo")
		var epochList []gasperleak.Epoch
		for e := 1000; e <= 7000; e += 1000 {
			epochList = append(epochList, gasperleak.Epoch(e))
		}
		mc := gasperleak.BounceMC{NHonest: n, Beta0: beta0, P0: p0, Seed: seed}
		probs, err := mc.ExceedProbability(epochList, runs)
		if err != nil {
			return err
		}
		for i, e := range epochList {
			fmt.Printf("%5d  %10.4f  %10.4f\n", e,
				model.ExceedProbability(float64(e), beta0, params), probs[i])
		}
		return nil
	}

	lo, hi := gasperleak.BounceWindow(beta0)
	fmt.Printf("beta0=%.4f p0=%.2f (window %.4f..%.4f, inside: %v)\n",
		beta0, p0, lo, hi, lo < p0 && p0 < hi)
	cont := gasperleak.BounceContinuationProbability(beta0, j, epochs)
	fmt.Printf("continuation probability to epoch %d (j=%d): %.3e\n", epochs, j, cont)

	an := model.ExceedProbability(float64(epochs), beta0, params)
	mc := gasperleak.BounceMC{NHonest: n, Beta0: beta0, P0: p0, Seed: seed}
	probs, err := mc.ExceedProbability([]gasperleak.Epoch{gasperleak.Epoch(epochs)}, runs)
	if err != nil {
		return err
	}
	fmt.Printf("P[beta > 1/3] at epoch %d: Equation 24 = %.4f, Monte-Carlo = %.4f\n",
		epochs, an, probs[0])
	return nil
}
