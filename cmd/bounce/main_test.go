package main

import "testing"

func TestRunWindow(t *testing.T) {
	if err := run(true, false, 0.3, 0.5, 100, 50, 1, 1, 8); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingle(t *testing.T) {
	if err := run(false, false, 1.0/3.0, 0.5, 500, 50, 1, 1, 8); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweep(t *testing.T) {
	if err := run(false, true, 0.33, 0.5, 0, 50, 1, 1, 8); err != nil {
		t.Fatal(err)
	}
}
