package main

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/gasperleak"
)

func TestRunWindow(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b, options{window: true, beta0: 0.3, p0: 0.5, runs: 1, epochs: 4000}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "beta0=0.3333") {
		t.Errorf("window output incomplete:\n%s", b.String())
	}
}

func TestRunWindowJSON(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b, options{window: true, p0: 0.5, runs: 1, epochs: 4000, jsonOut: true}); err != nil {
		t.Fatal(err)
	}
	var results []gasperleak.ScenarioResult
	if err := json.Unmarshal([]byte(b.String()), &results); err != nil {
		t.Fatalf("-window -json output is not JSON: %v", err)
	}
	if len(results) != 7 || results[0].Scenario != "analytic/bounce" {
		t.Errorf("results = %d %q", len(results), results[0].Scenario)
	}
}

func TestRunBadEpochs(t *testing.T) {
	err := run(context.Background(), &strings.Builder{}, options{runs: 1, epochs: 0, beta0: 0.3, p0: 0.5})
	if err == nil || !strings.Contains(err.Error(), "epochs") {
		t.Errorf("epochs = 0 must error, got %v", err)
	}
}

func TestRunSingle(t *testing.T) {
	var b strings.Builder
	o := options{beta0: 1.0 / 3.0, p0: 0.5, epochs: 500, n: 50, runs: 2, seed: 1, j: 8, workers: 2}
	if err := run(context.Background(), &b, o); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"continuation probability", "Equation 24", "Monte-Carlo"} {
		if !strings.Contains(out, want) {
			t.Errorf("single output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSweep(t *testing.T) {
	var b strings.Builder
	o := options{sweep: true, beta0: 0.33, p0: 0.5, n: 50, runs: 1, seed: 1, j: 8}
	if err := run(context.Background(), &b, o); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 9 { // 2 header lines + 7 epochs
		t.Errorf("sweep lines = %d:\n%s", len(lines), b.String())
	}
}

func TestRunSweepJSON(t *testing.T) {
	var b strings.Builder
	o := options{sweep: true, beta0: 0.33, p0: 0.5, n: 50, runs: 2, seed: 1, jsonOut: true}
	if err := run(context.Background(), &b, o); err != nil {
		t.Fatal(err)
	}
	var results []gasperleak.ScenarioResult
	if err := json.Unmarshal([]byte(b.String()), &results); err != nil {
		t.Fatalf("-json output is not JSON: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want one per run", len(results))
	}
	if results[0].Scenario != "bounce-mc" || len(results[0].Curve) != 7 {
		t.Errorf("unexpected result: %+v", results[0])
	}
	if results[0].Params.Seed == results[1].Params.Seed {
		t.Error("runs must get distinct derived seeds")
	}
}

func TestRunBadRuns(t *testing.T) {
	if err := run(context.Background(), &strings.Builder{}, options{runs: 0}); err == nil {
		t.Error("runs = 0 must error")
	}
}

// Negative -workers is rejected with a clear error (uniform across all
// cmd tools via the client constructor), not silently clamped.
func TestRunRejectsNegativeWorkers(t *testing.T) {
	err := run(context.Background(), &strings.Builder{}, options{window: true, runs: 1, p0: 0.5, beta0: 0.33, epochs: 10, workers: -2})
	if err == nil || !strings.Contains(err.Error(), "-2") || !strings.Contains(err.Error(), "workers") {
		t.Errorf("workers=-2 err = %v, want a clear validation error", err)
	}
}
