// Command leaksim runs scenarios from the engine registry: the paper's
// five scenarios at full paper scale, the generic engines, and parallel
// parameter sweeps over any of them.
//
// Usage:
//
//	leaksim -list                             # registered scenarios
//	leaksim -scenario all                     # Table 1 (all five scenarios)
//	leaksim -scenario 5.2.1 -p0 0.5 -beta0 0.2
//	leaksim -scenario 5.3 -beta0 0.33 -seed 1 -json
//	leaksim -scenario leaksim -sweep "p0=0.3:0.7:0.1; beta0=0.1,0.2; mode=double,semi" -workers 8
//	leaksim -scenario bounce-mc -sweep "beta0=0.32,0.33; seed=1:5:1" -csv
//	leaksim -scenario sim/drops -sweep "rate=0:0.4:0.1" -n 1000      # full protocol, view-cohort kernel
//	leaksim -scenario sim/gst -sweep "gst=4:20:4" -n 1000 -horizon 30
//	leaksim -scenario sim/gst -sweep "horizon=8:22:2" -n 10000 -gst 40 -warm  # shared-prefix warm start
//	leaksim -scenario sim/bounce -p0 0.7 -n 10000                    # paper-scale bouncing attack
//	leaksim -scenario sim/leak -n 10000 -horizon 5000 -store .cache  # durable: Ctrl-C + re-run resumes
//
// Sweeps run through the v2 client API: Ctrl-C cancels cooperatively, and
// the same grids are network-addressable via the serve command. With a
// -store, interrupted long-horizon cells flush a final checkpoint and the
// printed resume command picks them up mid-run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/gasperleak"
)

// options collects the CLI flags.
type options struct {
	scenario  string
	list      bool
	sweep     string
	workers   int
	warm      bool
	store     string
	ckptEvery int
	jsonOut   bool
	csvOut    bool
	verbose   bool
	params    gasperleak.ScenarioParams
}

func main() {
	var o options
	flag.StringVar(&o.scenario, "scenario", "all", "scenario name from the registry (see -list), or all for Table 1")
	flag.BoolVar(&o.list, "list", false, "list registered scenarios and exit")
	flag.StringVar(&o.sweep, "sweep", "", `parameter grid, e.g. "p0=0.3:0.7:0.1; beta0=0.1,0.2; mode=double,semi; seed=1:3:1"`)
	flag.IntVar(&o.workers, "workers", 0, "sweep worker pool size (0 = all CPUs)")
	flag.BoolVar(&o.warm, "warm", false, "warm-start sweeps from shared simulation prefixes (bit-identical results; scenarios without prefix support run cold)")
	flag.StringVar(&o.store, "store", "", "persistent result store directory: finished cells are reused across runs, and long-horizon simulation cells checkpoint mid-run so an interrupted sweep resumes instead of recomputing")
	flag.IntVar(&o.ckptEvery, "checkpoint-every", 0, "mid-cell checkpoint interval in simulated epochs (0 = engine default, negative disables checkpointing; no effect without -store)")
	flag.BoolVar(&o.jsonOut, "json", false, "emit results as JSON")
	flag.BoolVar(&o.csvOut, "csv", false, "emit results as CSV")
	flag.BoolVar(&o.verbose, "v", false, "log execution metadata per cell (throughput, tree/engine retention)")
	flag.Float64Var(&o.params.P0, "p0", 0, "proportion of honest validators on branch A (omit for the scenario default; an explicit -p0 0 means zero)")
	flag.Float64Var(&o.params.Beta0, "beta0", 0, "initial Byzantine stake proportion (omit for the scenario default; an explicit -beta0 0 means no Byzantine stake)")
	flag.StringVar(&o.params.Mode, "mode", "", "scenario mode (empty = scenario default)")
	flag.Int64Var(&o.params.Seed, "seed", 0, "random seed for Monte-Carlo scenarios (0 = scenario default)")
	flag.IntVar(&o.params.N, "n", 0, "validator count (0 = scenario default)")
	flag.IntVar(&o.params.Horizon, "horizon", 0, "epoch horizon / evaluation epoch (0 = scenario default)")
	flag.IntVar(&o.params.Sample, "sample", 0, "trace sampling interval in epochs (0 = no trace)")
	flag.Float64Var(&o.params.Rate, "rate", 0, "link-outage rate for protocol-simulator scenarios (omit for the scenario default; an explicit -rate 0 means rate zero)")
	flag.IntVar(&o.params.GST, "gst", 0, "partition-heal epoch for protocol-simulator scenarios (omit for the scenario default; an explicit -gst 0 means heal at once)")
	flag.Parse()
	// Flags whose zero is a meaningful value are explicit when the user
	// actually passed them: -rate 0 pins the lossless baseline and -gst 0
	// the immediate heal (likewise -p0/-beta0 0) instead of deferring to
	// the scenario default. The remaining flags keep their documented
	// "0 = scenario default" contract — a zero -n, -horizon, -seed, or
	// -sample is never a runnable value, so zero stays "use the default".
	explicitZeroFlags := map[string]bool{"p0": true, "beta0": true, "rate": true, "gst": true}
	flag.Visit(func(f *flag.Flag) {
		if !explicitZeroFlags[f.Name] {
			return
		}
		if field, ok := gasperleak.ParamFieldForKey(f.Name); ok {
			o.params = o.params.MarkExplicit(field)
		}
	})

	// Ctrl-C cancels in-flight sweeps cooperatively: finished cells keep
	// their results, unfinished ones record the context error. With a
	// -store, each interrupted cell also flushes a final mid-run
	// checkpoint on the way out, so the re-run below resumes near where
	// it stopped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := run(ctx, os.Stdout, o)
	if ctx.Err() != nil && o.store != "" && o.ckptEvery >= 0 {
		fmt.Fprintf(os.Stderr, "leaksim: interrupted; finished cells and mid-cell checkpoints are saved in %s\n", o.store)
		fmt.Fprintf(os.Stderr, "leaksim: resume with: %s\n", strings.Join(os.Args, " "))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "leaksim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, w io.Writer, o options) error {
	copts := []gasperleak.ClientOption{gasperleak.WithWorkers(o.workers)}
	if o.warm {
		copts = append(copts, gasperleak.WithWarmStart(0))
	}
	if o.store != "" {
		copts = append(copts, gasperleak.WithResultStore(o.store))
		if o.ckptEvery >= 0 {
			copts = append(copts, gasperleak.WithCheckpoints(o.ckptEvery))
		}
	}
	c, err := gasperleak.NewClient(copts...)
	if err != nil {
		return err
	}
	defer c.Close()
	if o.list {
		return list(w, c)
	}
	if o.sweep != "" {
		return runSweep(ctx, w, c, o)
	}
	if o.scenario == "all" {
		return runTable1(ctx, w, c, o)
	}
	res, err := c.Run(ctx, o.scenario, o.params)
	if err != nil {
		return err
	}
	return emit(w, o, res.Scenario+": "+descriptionOf(c, res.Scenario), []gasperleak.ScenarioResult{res})
}

// list prints the registry: every scenario with its description.
func list(w io.Writer, c *gasperleak.Client) error {
	for _, info := range c.Scenarios() {
		if _, err := fmt.Fprintf(w, "%-20s %s\n", info.Name, info.Description); err != nil {
			return err
		}
	}
	return nil
}

// runSweep expands the -sweep grid for -scenario and fans it out.
func runSweep(ctx context.Context, w io.Writer, c *gasperleak.Client, o options) error {
	if o.scenario == "all" {
		return fmt.Errorf("-sweep needs a single scenario (see -list), not -scenario all")
	}
	if _, ok := c.Lookup(o.scenario); !ok {
		return fmt.Errorf("unknown scenario %q (see -list)", o.scenario)
	}
	grid, err := gasperleak.ParseGrid(o.scenario, o.sweep)
	if err != nil {
		return err
	}
	// Dimensions the spec leaves out fall back to the plain flags, so
	// "-sweep beta0=... -horizon 1000" pins the horizon of every cell.
	grid = grid.FillFrom(o.params)
	start := time.Now()
	results := c.SweepGrid(ctx, grid)
	wall := time.Since(start)
	// Individual cell failures are recorded in the error column so a
	// partial sweep still renders, but a sweep with no surviving cell is
	// a failed run.
	failed := 0
	for _, r := range results {
		if r.Err != "" {
			failed++
		}
	}
	if len(results) > 0 && failed == len(results) {
		return fmt.Errorf("every sweep cell failed: %w", gasperleak.SweepFirstError(results))
	}
	title := fmt.Sprintf("sweep %s: %s (%d cells)", o.scenario, o.sweep, len(results))
	if err := emit(w, o, title, results); err != nil {
		return err
	}
	if !o.jsonOut && !o.csvOut {
		if line := gasperleak.SweepThroughput(results, wall); line != "" {
			if _, err := fmt.Fprintf(w, "# %s\n", line); err != nil {
				return err
			}
		}
	}
	return nil
}

// runTable1 sweeps the paper's five scenarios (Table 1).
func runTable1(ctx context.Context, w io.Writer, c *gasperleak.Client, o options) error {
	seed := o.params.Seed
	if seed == 0 {
		seed = 1
	}
	results := c.Sweep(ctx, gasperleak.Table1Cells(seed))
	if err := gasperleak.SweepFirstError(results); err != nil {
		return err
	}
	return emit(w, o, "Table 1: scenarios and outcomes", results)
}

// emit renders results in the selected format: JSON, CSV, or ASCII. Only
// JSON carries sampled curves; the other modes say so instead of dropping
// them silently.
func emit(w io.Writer, o options, title string, results []gasperleak.ScenarioResult) error {
	if o.jsonOut {
		return gasperleak.WriteSweepJSON(w, results)
	}
	var err error
	if o.csvOut {
		err = gasperleak.WriteSweepCSV(w, title, results)
	} else {
		err = gasperleak.RenderSweep(title, results).Render(w)
	}
	if err != nil {
		return err
	}
	for _, r := range results {
		if len(r.Curve) > 0 {
			_, err = fmt.Fprintf(w, "# %d cells carry a sampled %s curve; use -json to export it\n",
				curveCount(results), r.CurveName)
			break
		}
	}
	if err == nil && o.verbose {
		err = emitVerbose(w, results)
	}
	return err
}

// emitVerbose logs per-cell execution metadata: sustained simulation
// throughput plus the retention statistics (block-tree node/segment/folded
// counts and byte footprints) that make the memory half of the leak-depth
// story visible.
func emitVerbose(w io.Writer, results []gasperleak.ScenarioResult) error {
	for _, r := range results {
		m := r.Meta
		if m == nil {
			continue
		}
		line := fmt.Sprintf("# %s %s:", r.Scenario, r.Params)
		if m.EpochsPerSec != 0 {
			line += fmt.Sprintf(" %.1f epochs/sec;", m.EpochsPerSec)
		}
		if s := m.Sim; s != nil {
			line += fmt.Sprintf(" trees %d nodes (%d skip segments, %d blocks folded, %d KiB); oracle %d nodes; engines %d KiB",
				s.TreeNodes, s.TreeSegments, s.TreeFolded, s.TreeBytes/1024, s.OracleNodes, s.EngineBytes/1024)
		}
		if ck := m.Checkpoint; ck != nil {
			if ck.Resumed {
				line += fmt.Sprintf("; checkpoint resume @%d (+%d epochs saved, %d written)", ck.ResumeEpoch, ck.EpochsSaved, ck.Written)
			} else {
				line += fmt.Sprintf("; checkpoints written %d", ck.Written)
			}
		}
		if wm := m.Warm; wm != nil {
			if wm.Hit {
				line += fmt.Sprintf("; warm hit @%d (+%d epochs saved)", wm.BranchEpoch, wm.EpochsSaved)
			} else {
				line += "; warm miss (ran cold)"
			}
			line += fmt.Sprintf(" [tree %d nodes, %d hits, %d rebuilt, peak %d KiB]",
				wm.PrefixNodes, wm.SnapshotHits, wm.Rebuilt, wm.PeakResidentBytes/1024)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

func curveCount(results []gasperleak.ScenarioResult) int {
	n := 0
	for _, r := range results {
		if len(r.Curve) > 0 {
			n++
		}
	}
	return n
}

func descriptionOf(c *gasperleak.Client, name string) string {
	if s, ok := c.Lookup(name); ok {
		return s.Description()
	}
	return ""
}
