// Command leaksim runs the paper's scenarios at full paper scale and prints
// their analytic and simulated outcomes.
//
// Usage:
//
//	leaksim -scenario 5.1  [-p0 0.5]
//	leaksim -scenario 5.2.1 [-p0 0.5] [-beta0 0.2]
//	leaksim -scenario 5.2.2 [-p0 0.5] [-beta0 0.2]
//	leaksim -scenario 5.2.3 [-p0 0.5] [-beta0 0.25]
//	leaksim -scenario 5.3  [-p0 0.5] [-beta0 0.33] [-seed 1]
//	leaksim -scenario all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/gasperleak"
)

func main() {
	scenario := flag.String("scenario", "all", "scenario id: 5.1, 5.2.1, 5.2.2, 5.2.3, 5.2.3c, 5.3, or all")
	p0 := flag.Float64("p0", 0.5, "proportion of honest validators on branch A")
	beta0 := flag.Float64("beta0", 0.2, "initial Byzantine stake proportion")
	seed := flag.Int64("seed", 1, "random seed for Monte-Carlo scenarios")
	flag.Parse()

	if err := run(*scenario, *p0, *beta0, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "leaksim:", err)
		os.Exit(1)
	}
}

func run(scenario string, p0, beta0 float64, seed int64) error {
	switch scenario {
	case "all":
		rows, err := gasperleak.Table1(seed)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Println(r)
		}
		return nil
	case "5.1":
		s, err := gasperleak.Scenario51(p0)
		if err != nil {
			return err
		}
		printSummary(s)
		fmt.Printf("conflicting finalization after %s\n", gasperleak.FormatEpoch(float64(s.SimEpoch)))
		return nil
	case "5.2.1":
		s, err := gasperleak.Scenario521(p0, beta0)
		if err != nil {
			return err
		}
		printSummary(s)
		fmt.Printf("conflicting finalization after %s\n", gasperleak.FormatEpoch(float64(s.SimEpoch)))
		return nil
	case "5.2.2":
		s, err := gasperleak.Scenario522(p0, beta0)
		if err != nil {
			return err
		}
		printSummary(s)
		fmt.Printf("conflicting finalization after %s (no slashable offense)\n",
			gasperleak.FormatEpoch(float64(s.SimEpoch)))
		return nil
	case "5.2.3":
		s, err := gasperleak.Scenario523(p0, beta0)
		if err != nil {
			return err
		}
		printSummary(s)
		fmt.Printf("peak Byzantine proportion %.4f at epoch %d (crossed 1/3: %v)\n",
			s.PeakByzProportion, s.SimEpoch, s.CrossedOneThird)
		return nil
	case "5.2.3c":
		s, err := gasperleak.Scenario523Corner(p0, beta0, 200)
		if err != nil {
			return err
		}
		printSummary(s)
		fmt.Printf("footnote-12 corner: finalized 200 epochs before ejection, peak %.4f at epoch %d (crossed 1/3: %v)\n",
			s.PeakByzProportion, s.SimEpoch, s.CrossedOneThird)
		return nil
	case "5.3":
		s, err := gasperleak.Scenario53(p0, beta0, seed)
		if err != nil {
			return err
		}
		printSummary(s)
		fmt.Printf("P[beta > 1/3] at epoch %d: Monte-Carlo %.3f, Equation 24 %.3f\n",
			s.SimEpoch, s.PeakByzProportion, s.AnalyticEpoch/100)
		return nil
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}
}

func printSummary(s gasperleak.ScenarioSummary) {
	fmt.Println(s)
}
