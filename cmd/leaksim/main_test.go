package main

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/gasperleak"
)

func TestRunAllScenarios(t *testing.T) {
	for _, sc := range []string{"5.1", "5.2.1", "5.2.2", "5.2.3", "5.2.3c", "5.3", "all"} {
		beta0 := 0.2
		if sc == "5.2.3" || sc == "5.2.3c" {
			beta0 = 0.25
		}
		var b strings.Builder
		o := options{scenario: sc, params: gasperleak.ScenarioParams{P0: 0.5, Beta0: beta0, Seed: 1}}
		if err := run(context.Background(), &b, o); err != nil {
			t.Errorf("scenario %s: %v", sc, err)
		}
		if b.Len() == 0 {
			t.Errorf("scenario %s: no output", sc)
		}
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if err := run(context.Background(), &strings.Builder{}, options{scenario: "9.9"}); err == nil {
		t.Error("unknown scenario must error")
	}
}

func TestRunList(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b, options{list: true}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"5.1", "leaksim", "bounce-mc", "analytic/conflict", "sim/partition"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, b.String())
		}
	}
}

func TestRunSweepGridASCII(t *testing.T) {
	var b strings.Builder
	o := options{
		scenario: "analytic/threshold",
		sweep:    "p0=0.3,0.5,0.7",
		workers:  2,
	}
	if err := run(context.Background(), &b, o); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "threshold_both_branches") || !strings.Contains(out, "0.5") {
		t.Errorf("sweep output incomplete:\n%s", out)
	}
}

// TestRunSweepFlagFallback: plain flags pin dimensions the sweep spec
// leaves out (-horizon, -n here).
func TestRunSweepFlagFallback(t *testing.T) {
	var b strings.Builder
	o := options{
		scenario: "bounce-mc",
		sweep:    "beta0=0.32,0.33",
		jsonOut:  true,
		params:   gasperleak.ScenarioParams{N: 50, Horizon: 300},
	}
	if err := run(context.Background(), &b, o); err != nil {
		t.Fatal(err)
	}
	var results []gasperleak.ScenarioResult
	if err := json.Unmarshal([]byte(b.String()), &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	for _, r := range results {
		if r.Params.Horizon != 300 || r.Params.N != 50 {
			t.Errorf("flag fallback lost: %+v", r.Params)
		}
	}
}

func TestRunSweepRejectsAll(t *testing.T) {
	if err := run(context.Background(), &strings.Builder{}, options{scenario: "all", sweep: "p0=0.5"}); err == nil {
		t.Error("-sweep with -scenario all must error")
	}
}

func TestRunSweepRejectsUnknownScenario(t *testing.T) {
	if err := run(context.Background(), &strings.Builder{}, options{scenario: "leaksym", sweep: "p0=0.5"}); err == nil {
		t.Error("-sweep with an unknown scenario must error")
	}
}

func TestRunSweepFailsWhenEveryCellFails(t *testing.T) {
	err := run(context.Background(), &strings.Builder{}, options{scenario: "leaksim", sweep: "mode=warp"})
	if err == nil || !strings.Contains(err.Error(), "every sweep cell failed") {
		t.Errorf("all-failed sweep must error, got %v", err)
	}
	// A partial failure still renders (exit 0) with the error column set.
	var b strings.Builder
	if err := run(context.Background(), &b, options{scenario: "leaksim", sweep: "mode=warp,double; horizon=100", params: gasperleak.ScenarioParams{N: 100}}); err != nil {
		t.Fatalf("partial sweep must render: %v", err)
	}
	if !strings.Contains(b.String(), "unknown leaksim mode") {
		t.Errorf("partial sweep lost the cell error:\n%s", b.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	var b strings.Builder
	o := options{scenario: "analytic/bounce", jsonOut: true, params: gasperleak.ScenarioParams{Beta0: 0.33}}
	if err := run(context.Background(), &b, o); err != nil {
		t.Fatal(err)
	}
	var results []gasperleak.ScenarioResult
	if err := json.Unmarshal([]byte(b.String()), &results); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, b.String())
	}
	if len(results) != 1 || results[0].Scenario != "analytic/bounce" {
		t.Errorf("results = %+v", results)
	}
}

func TestRunCSVOutput(t *testing.T) {
	var b strings.Builder
	o := options{scenario: "analytic/threshold", sweep: "p0=0.4,0.6", csvOut: true}
	if err := run(context.Background(), &b, o); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Errorf("CSV lines = %d:\n%s", len(lines), b.String())
	}
}

// Negative -workers is rejected with a clear error (uniform across all
// cmd tools via the client constructor), not silently clamped.
func TestRunRejectsNegativeWorkers(t *testing.T) {
	err := run(context.Background(), &strings.Builder{}, options{scenario: "5.1", workers: -2})
	if err == nil || !strings.Contains(err.Error(), "-2") || !strings.Contains(err.Error(), "workers") {
		t.Errorf("workers=-2 err = %v, want a clear validation error", err)
	}
}
