package main

import "testing"

func TestRunAllScenarios(t *testing.T) {
	for _, sc := range []string{"5.1", "5.2.1", "5.2.2", "5.2.3", "5.2.3c", "5.3", "all"} {
		beta0 := 0.2
		if sc == "5.2.3" || sc == "5.2.3c" {
			beta0 = 0.25
		}
		if err := run(sc, 0.5, beta0, 1); err != nil {
			t.Errorf("scenario %s: %v", sc, err)
		}
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if err := run("9.9", 0.5, 0.2, 1); err == nil {
		t.Error("unknown scenario must error")
	}
}
