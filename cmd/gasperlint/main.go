// Command gasperlint runs the project's static-analysis suite — the
// build-time enforcement of the determinism, codec-coverage, and
// no-alloc contracts every headline result rests on.
//
// Usage:
//
//	go run ./cmd/gasperlint ./...
//	go run ./cmd/gasperlint -only detrange,codecfields ./internal/sim
//
// Diagnostics print as file:line:col: analyzer: message, one per line;
// the exit status is 1 if any diagnostic was reported. The suite is
// documented in internal/lint and in the README's "correctness tooling"
// section.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gasperlint [-only a,b] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "gasperlint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = filtered
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gasperlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gasperlint: %v\n", err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gasperlint: %d diagnostic(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
