package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

func TestRunRejectsNegativeWorkers(t *testing.T) {
	err := run(context.Background(), "127.0.0.1:0", server.Config{Workers: -4})
	if err == nil || !strings.Contains(err.Error(), "-4") {
		t.Fatalf("run(workers=-4) err = %v, want a clear validation error", err)
	}
}

// TestRunServesAndShutsDown boots the binary's run loop on an ephemeral
// port, checks liveness over real HTTP, and verifies the signal context
// drains it.
func TestRunServesAndShutsDown(t *testing.T) {
	// Reserve an ephemeral port, then hand it to the server.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, addr, server.Config{Workers: 1, CacheSize: 16}) }()

	var resp *http.Response
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		resp, err = http.Get("http://" + addr + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up on %s: %v", addr, err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil || health.Status != "ok" {
		t.Errorf("healthz = %+v (%v)", health, err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v after shutdown, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}
