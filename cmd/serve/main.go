// Command serve exposes the scenario registry as an HTTP service: listing,
// cached single runs, and streaming parameter sweeps (NDJSON). It is the
// network face of the v2 client API; every request is cancellable and an
// interrupt drains in-flight sweeps cooperatively.
//
// One binary plays every fabric role. A plain serve is a worker; -store
// adds the persistent result tier; -shard turns the instance into a
// coordinator that dispatches sweep cells over its workers:
//
//	serve                          # listen on :8791
//	serve -addr :9000 -workers 8   # bounded sweep pool
//	serve -cache 2048              # larger LRU result cache
//	serve -warm                    # warm-start sweeps from shared prefixes
//	serve -store /var/lib/gasperleak  # disk-backed result store
//	serve -store /var/lib/gasperleak -checkpoint-every 500  # crash-resumable long cells
//	serve -shard http://w1:8791,http://w2:8791  # coordinate two workers
//
//	curl localhost:8791/scenarios
//	curl -X POST localhost:8791/run -d '{"scenario":"5.2.1","params":{"beta0":0.2}}'
//	curl -N -X POST localhost:8791/sweep -d '{"scenario":"leaksim","sweep":"beta0=0.1,0.2,0.3"}'
//	curl localhost:8791/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8791", "listen address (use :0 for an ephemeral port; the resolved address is printed)")
	workers := flag.Int("workers", 0, "default sweep worker pool size (0 = all CPUs)")
	cache := flag.Int("cache", server.DefaultCacheSize, "LRU result cache entries (negative disables caching)")
	warm := flag.Bool("warm", false, `warm-start sweeps from shared simulation prefixes by default (per-request "warm" overrides)`)
	warmBudget := flag.Int64("warm-budget", 0, "resident warm-start snapshot byte budget (0 = engine default, negative = unlimited)")
	storeDir := flag.String("store", "", "persistent result store directory (empty disables the disk tier)")
	ckptEvery := flag.Int("checkpoint-every", 0, "mid-cell checkpoint interval in simulated epochs for long-horizon sweep cells, persisted in the -store directory so killed or drained cells resume instead of recomputing (0 = engine default, negative disables; no effect without -store)")
	shard := flag.String("shard", "", "comma-separated worker base URLs; non-empty makes this instance a sweep coordinator")
	shardInflight := flag.Int("shard-inflight", 0, "concurrently dispatched cells per worker (0 = default)")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-cell dispatch timeout before a worker is retired (0 = unbounded)")
	queue := flag.Int("queue", 0, "admission bound on queued+running cells, 429 beyond it (0 = default, negative = unlimited)")
	maxBody := flag.Int64("max-body", 0, "request body byte limit, 413 beyond it (0 = default 1MiB, negative = unlimited)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := server.Config{
		Workers:          *workers,
		CacheSize:        *cache,
		WarmStart:        *warm,
		WarmBudget:       *warmBudget,
		StoreDir:         *storeDir,
		CheckpointEvery:  *ckptEvery,
		ShardInflight:    *shardInflight,
		ShardCellTimeout: *cellTimeout,
		QueueDepth:       *queue,
		MaxBodyBytes:     *maxBody,
	}
	if *shard != "" {
		cfg.Shards = strings.Split(*shard, ",")
	}
	if err := run(ctx, *addr, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, addr string, cfg server.Config) error {
	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	// Bind before announcing, so ":0" callers (integration tests, ad-hoc
	// fabrics) can scrape the real port from the first stdout line.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		s.Close()
		return err
	}
	httpSrv := &http.Server{
		Handler: s.Handler(),
		// Derive every request context from the signal context, so an
		// interrupt cancels in-flight sweeps through the engine instead
		// of waiting out their full grids.
		BaseContext: func(net.Listener) context.Context { return ctx },
		// Slow-client bounds: a stalled request line or body cannot pin a
		// connection forever. Responses stay unbounded — sweep streams
		// legitimately run long.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	role := "worker"
	if len(cfg.Shards) > 0 {
		role = fmt.Sprintf("coordinator of %d workers", len(cfg.Shards))
	}
	fmt.Printf("serve: listening on %s (%s, workers=%d, cache=%d, warm=%t, store=%q)\n",
		ln.Addr(), role, cfg.Workers, cfg.CacheSize, cfg.WarmStart, cfg.StoreDir)

	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := httpSrv.Shutdown(shutCtx)
		// Close the store only after the drain: in-flight requests may
		// still be writing results through it.
		if cerr := s.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}
