// Command serve exposes the scenario registry as an HTTP service: listing,
// cached single runs, and streaming parameter sweeps (NDJSON). It is the
// network face of the v2 client API; every request is cancellable and an
// interrupt drains in-flight sweeps cooperatively.
//
// Usage:
//
//	serve                          # listen on :8791
//	serve -addr :9000 -workers 8   # bounded sweep pool
//	serve -cache 2048              # larger LRU result cache
//	serve -warm                    # warm-start sweeps from shared prefixes
//
//	curl localhost:8791/scenarios
//	curl -X POST localhost:8791/run -d '{"scenario":"5.2.1","params":{"beta0":0.2}}'
//	curl -N -X POST localhost:8791/sweep -d '{"scenario":"leaksim","sweep":"beta0=0.1,0.2,0.3"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8791", "listen address")
	workers := flag.Int("workers", 0, "default sweep worker pool size (0 = all CPUs)")
	cache := flag.Int("cache", server.DefaultCacheSize, "LRU result cache entries (negative disables caching)")
	warm := flag.Bool("warm", false, `warm-start sweeps from shared simulation prefixes by default (per-request "warm" overrides)`)
	warmBudget := flag.Int64("warm-budget", 0, "resident warm-start snapshot byte budget (0 = engine default, negative = unlimited)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := server.Config{Workers: *workers, CacheSize: *cache, WarmStart: *warm, WarmBudget: *warmBudget}
	if err := run(ctx, *addr, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, addr string, cfg server.Config) error {
	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Addr:    addr,
		Handler: s.Handler(),
		// Derive every request context from the signal context, so an
		// interrupt cancels in-flight sweeps through the engine instead
		// of waiting out their full grids.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("serve: listening on %s (workers=%d, cache=%d, warm=%t)\n", addr, cfg.Workers, cfg.CacheSize, cfg.WarmStart)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}
