package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
)

// serveProc is one real serve process of the integration fabric.
type serveProc struct {
	cmd  *exec.Cmd
	addr string
	mu   sync.Mutex
	out  bytes.Buffer
}

// Write collects process stderr under the same lock as the stdout
// scanner (exec writes stderr from its own goroutine).
func (p *serveProc) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.out.Write(b)
}

// startServe launches the built binary with the given extra flags on an
// ephemeral port and waits for its "listening on" line and /healthz.
func startServe(t *testing.T, bin string, args ...string) *serveProc {
	t.Helper()
	p := &serveProc{}
	p.cmd = exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	p.cmd.Stderr = p
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if p.cmd.Process != nil {
			p.cmd.Process.Kill() //nolint:errcheck // already-dead is fine
			p.cmd.Wait()         //nolint:errcheck // reaping only
		}
	})

	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.out.WriteString(line + "\n")
			p.mu.Unlock()
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if j := strings.Index(rest, " ("); j >= 0 {
					select {
					case addrc <- rest[:j]:
					default:
					}
				}
			}
		}
	}()
	select {
	case p.addr = <-addrc:
	case <-time.After(15 * time.Second):
		t.Fatalf("serve never announced its address; output:\n%s", p.output())
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(p.url() + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve at %s never became healthy; output:\n%s", p.addr, p.output())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (p *serveProc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.out.String()
}

func (p *serveProc) url() string { return "http://" + p.addr }

// kill terminates the process abruptly (a crash, not a drain).
func (p *serveProc) kill() {
	p.cmd.Process.Kill() //nolint:errcheck // a dead process is the goal
	p.cmd.Wait()         //nolint:errcheck // reaping only
}

// stop interrupts the process (graceful shutdown: drain, then store close).
func (p *serveProc) stop(t *testing.T) {
	t.Helper()
	p.cmd.Process.Signal(os.Interrupt) //nolint:errcheck // checked via Wait below
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		p.cmd.Process.Kill() //nolint:errcheck // last resort
		t.Fatalf("serve did not shut down on interrupt; output:\n%s", p.output())
	}
}

// sweepFabric posts the cells and decodes the NDJSON stream.
func sweepFabric(t *testing.T, url string, cells []engine.Cell) []engine.Update {
	t.Helper()
	body, err := json.Marshal(map[string]any{"cells": cells})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d", resp.StatusCode)
	}
	var updates []engine.Update
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		var u engine.Update
		if err := json.Unmarshal(sc.Bytes(), &u); err != nil {
			t.Fatalf("bad NDJSON line: %v", err)
		}
		updates = append(updates, u)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return updates
}

// fabricGrid is a small sim/gst grid, cheap enough for CI but multi-cell
// enough to exercise dispatch and requeue.
func fabricGrid(n int) []engine.Cell {
	cells := make([]engine.Cell, n)
	for i := range cells {
		cells[i] = engine.Cell{Scenario: "sim/gst", Params: engine.Params{
			P0: 0.5, N: 3000, GST: 3, Horizon: 5 + i,
		}}
	}
	return cells
}

func resultsByIndex(t *testing.T, updates []engine.Update, n int) []engine.Result {
	t.Helper()
	if len(updates) != n {
		t.Fatalf("streamed %d updates, want %d", len(updates), n)
	}
	out := make([]engine.Result, n)
	for _, u := range updates {
		if u.Result.Err != "" {
			t.Errorf("cell %d surfaced an error: %s", u.Index, u.Result.Err)
		}
		out[u.Index] = u.Result
	}
	return out
}

// TestFabricProcesses is the end-to-end acceptance test with real
// processes: a coordinator with a persistent store dispatches a sweep over
// two plain-serve workers; the merged stream matches an in-process sweep
// bit-identically; a worker killed mid-sweep costs nothing but throughput;
// and after a graceful coordinator restart the whole grid is served from
// the store without any worker at all.
func TestFabricProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fabric test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building serve: %v\n%s", err, out)
	}

	cells := fabricGrid(8)
	want := engine.Sweep(cells, engine.Options{})

	storeDir := t.TempDir()
	w1 := startServe(t, bin, "-cache", "-1")
	w2 := startServe(t, bin, "-cache", "-1")
	coordA := startServe(t, bin,
		"-store", storeDir,
		"-shard", w1.url()+","+w2.url(),
	)

	got := resultsByIndex(t, sweepFabric(t, coordA.url(), cells), len(cells))
	if !reflect.DeepEqual(engine.StripMeta(got), engine.StripMeta(want)) {
		t.Error("two-worker fabric sweep diverges from in-process sweep")
	}

	// Kill a worker mid-sweep on a fresh grid (different seeds so nothing
	// is already stored): the grid must still complete without
	// client-visible errors, bit-identical to in-process.
	killCells := make([]engine.Cell, len(cells))
	copy(killCells, cells)
	for i := range killCells {
		killCells[i].Params.Seed = 77
	}
	killWant := engine.Sweep(killCells, engine.Options{})
	killDone := make(chan []engine.Update, 1)
	go func() {
		body, err := json.Marshal(map[string]any{"cells": killCells})
		if err != nil {
			killDone <- nil
			return
		}
		resp, err := http.Post(coordA.url()+"/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			killDone <- nil
			return
		}
		defer resp.Body.Close()
		var updates []engine.Update
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 16<<20)
		first := true
		for sc.Scan() {
			var u engine.Update
			if json.Unmarshal(sc.Bytes(), &u) != nil {
				killDone <- nil
				return
			}
			updates = append(updates, u)
			if first {
				first = false
				w2.kill() // crash one worker as soon as the sweep is rolling
			}
		}
		killDone <- updates
	}()
	var killUpdates []engine.Update
	select {
	case killUpdates = <-killDone:
	case <-time.After(120 * time.Second):
		t.Fatalf("sweep with a crashing worker never finished; coordinator output:\n%s", coordA.output())
	}
	if killUpdates == nil {
		t.Fatalf("sweep with a crashing worker failed; coordinator output:\n%s", coordA.output())
	}
	killGot := resultsByIndex(t, killUpdates, len(killCells))
	if !reflect.DeepEqual(engine.StripMeta(killGot), engine.StripMeta(killWant)) {
		t.Error("sweep with a crashed worker diverges from in-process sweep")
	}

	// Graceful coordinator restart: the new process — no workers at all —
	// serves the first sweep from the persistent store alone.
	coordA.stop(t)
	w1.kill()
	coordB := startServe(t, bin, "-store", storeDir)
	restored := resultsByIndex(t, sweepFabric(t, coordB.url(), cells), len(cells))
	if !reflect.DeepEqual(engine.StripMeta(restored), engine.StripMeta(want)) {
		t.Error("restarted process's store-served sweep diverges")
	}
	for i, r := range restored {
		if r.Meta == nil || !r.Meta.Cached {
			t.Errorf("restarted cell %d meta = %+v, want served from the store", i, r.Meta)
		}
	}

	// The store survived the graceful shutdown: /healthz on the restarted
	// process reports the persisted entries.
	resp, err := http.Get(coordB.url() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Store *struct {
			Entries int64  `json:"entries"`
			Hits    uint64 `json:"hits"`
		} `json:"store"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Store == nil || health.Store.Entries < int64(len(cells)) {
		t.Errorf("restarted /healthz store = %+v, want >= %d entries", health.Store, len(cells))
	}
}

// TestFabricCrashResume is the durability acceptance test: a worker
// sharing the coordinator's store directory is killed with SIGKILL while
// deep inside one long-horizon cell. The coordinator requeues the cell,
// its retry finds the dead worker's newest on-disk checkpoint, and the
// stream completes bit-identical to an in-process sweep — with /metrics
// proving the recovery resumed (epochs_saved > 0) instead of recomputing
// from epoch 0.
func TestFabricCrashResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fabric test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building serve: %v\n%s", err, out)
	}

	// One long cell: deep enough that several checkpoint intervals pass
	// before the kill, long enough that losing the prefix would be
	// visible in the requeued retry.
	cells := []engine.Cell{{Scenario: "sim/leak", Params: engine.Params{
		P0: 0.5, N: 1000, Horizon: 3000, Seed: 1,
	}}}
	want := engine.Sweep(cells, engine.Options{})

	storeDir := t.TempDir()
	worker := startServe(t, bin, "-cache", "-1", "-store", storeDir, "-checkpoint-every", "200")
	coord := startServe(t, bin,
		"-store", storeDir,
		"-checkpoint-every", "200",
		"-shard", worker.url(),
	)

	done := make(chan []engine.Update, 1)
	go func() {
		body, err := json.Marshal(map[string]any{"cells": cells})
		if err != nil {
			done <- nil
			return
		}
		resp, err := http.Post(coord.url()+"/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- nil
			return
		}
		defer resp.Body.Close()
		var updates []engine.Update
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 16<<20)
		for sc.Scan() {
			var u engine.Update
			if json.Unmarshal(sc.Bytes(), &u) != nil {
				done <- nil
				return
			}
			updates = append(updates, u)
		}
		done <- updates
	}()

	// Kill the worker once it has durably checkpointed mid-cell: poll the
	// shared store directory for a checkpoint entry (the only writes this
	// sweep makes before completion).
	deadline := time.Now().Add(60 * time.Second)
	for {
		if entries, err := filepath.Glob(filepath.Join(storeDir, "*", "*.res")); err == nil && len(entries) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never wrote a checkpoint; worker output:\n%s", worker.output())
		}
		time.Sleep(25 * time.Millisecond)
	}
	worker.kill()

	var updates []engine.Update
	select {
	case updates = <-done:
	case <-time.After(120 * time.Second):
		t.Fatalf("sweep never finished after the worker crash; coordinator output:\n%s", coord.output())
	}
	if updates == nil {
		t.Fatalf("sweep failed after the worker crash; coordinator output:\n%s", coord.output())
	}
	got := resultsByIndex(t, updates, len(cells))
	if !reflect.DeepEqual(engine.StripMeta(got), engine.StripMeta(want)) {
		t.Error("crash-resumed sweep diverges from in-process sweep")
	}

	// The coordinator's metrics prove the retry resumed from the dead
	// worker's checkpoint rather than recomputing the prefix.
	resp, err := http.Get(coord.url() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Checkpoints *struct {
			Resumed     uint64 `json:"resumed"`
			EpochsSaved uint64 `json:"epochs_saved"`
			GCDeleted   uint64 `json:"gc_deleted"`
		} `json:"checkpoints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Checkpoints == nil {
		t.Fatalf("coordinator metrics omit the checkpoints block; output:\n%s", coord.output())
	}
	if m.Checkpoints.Resumed < 1 || m.Checkpoints.EpochsSaved == 0 {
		t.Errorf("metrics checkpoints = %+v, want a resume with epochs_saved > 0", m.Checkpoints)
	}
	if m.Checkpoints.GCDeleted == 0 {
		t.Error("completed cell left its checkpoint on disk (no GC)")
	}
}
