package blocktree

import (
	"repro/internal/codec"
	"repro/internal/types"
)

// EncodeTo serializes the tree for the durable snapshot codec: version,
// lifetime folded count, then per node its block, parent link, and
// folded-segment length. Child/sibling links and the root index are not
// written — DecodeTree rebuilds both from the parent links, exactly as
// PruneBelow and Compact relink their compacted arrays (the node array is
// topological and sibling order equals index order, so the relink is
// lossless).
func (t *Tree) EncodeTo(w *codec.Writer) {
	w.U64(t.version)
	w.Int(t.folded)
	w.Len(len(t.nodes))
	for i := range t.nodes {
		n := &t.nodes[i]
		w.U64(uint64(n.block.Slot))
		w.Raw(n.block.Root[:])
		w.Raw(n.block.Parent[:])
		w.U64(uint64(n.block.Proposer))
		w.I32(n.parent)
		w.I32(n.foldedBelow)
	}
}

// DecodeTree reconstructs a tree serialized by EncodeTo. Structural
// impossibilities (no nodes, a parent at or after its child, a duplicate
// root) surface through the reader's sticky error.
func DecodeTree(r *codec.Reader) *Tree {
	t := &Tree{version: r.U64(), folded: r.Int()}
	n := r.Len()
	if r.Err() != nil {
		return nil
	}
	if n == 0 {
		r.Corrupt("blocktree: empty node array")
		return nil
	}
	t.nodes = make([]node, n)
	t.index = make(map[types.Root]int32, n)
	for i := 0; i < n; i++ {
		nd := &t.nodes[i]
		nd.block.Slot = types.Slot(r.U64())
		r.Raw(nd.block.Root[:])
		r.Raw(nd.block.Parent[:])
		nd.block.Proposer = types.ValidatorIndex(r.U64())
		nd.parent = r.I32()
		nd.firstChild = NoIndex
		nd.lastChild = NoIndex
		nd.nextSibling = NoIndex
		nd.foldedBelow = r.I32()
		if r.Err() != nil {
			return nil
		}
		if i == 0 {
			if nd.parent != NoIndex {
				r.Corrupt("blocktree: root node has parent %d", nd.parent)
				return nil
			}
		} else if nd.parent < 0 || nd.parent >= int32(i) {
			r.Corrupt("blocktree: node %d has non-topological parent %d", i, nd.parent)
			return nil
		}
		if _, dup := t.index[nd.block.Root]; dup {
			r.Corrupt("blocktree: duplicate root at node %d", i)
			return nil
		}
		t.index[nd.block.Root] = int32(i)
	}
	// Relink children in ascending index order: the array is topological
	// and siblings were stored in index order, so this reproduces the
	// original first-child/last-child/next-sibling chains.
	for i := int32(1); i < int32(n); i++ {
		p := t.nodes[i].parent
		if t.nodes[p].firstChild == NoIndex {
			t.nodes[p].firstChild = i
		} else {
			t.nodes[t.nodes[p].lastChild].nextSibling = i
		}
		t.nodes[p].lastChild = i
	}
	return t
}
