// Package blocktree stores the tree-like block structure every validator
// maintains locally (paper Section 2: "Validators keep a local data
// structure in form of a tree containing all the blocks perceived").
//
// It offers ancestry queries, checkpoint-block resolution (the block that a
// checkpoint (b, e) refers to is the last block at or before the first slot
// of epoch e on the branch), and chain extraction — the primitives that the
// fork-choice rule and the FFG finality engine are built on.
package blocktree

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/types"
)

// Sentinel errors for tree operations.
var (
	ErrUnknownBlock  = errors.New("blocktree: unknown block")
	ErrUnknownParent = errors.New("blocktree: unknown parent")
	ErrDuplicate     = errors.New("blocktree: duplicate block")
	ErrBadSlot       = errors.New("blocktree: slot not after parent slot")
)

// Block is a vertex of the tree. Payload contents are irrelevant to the
// consensus analysis; identity, position, and parentage are everything.
type Block struct {
	Slot     types.Slot
	Root     types.Root
	Parent   types.Root
	Proposer types.ValidatorIndex
}

// Tree is an append-only block tree rooted at a genesis block. The zero
// value is not usable; construct with New.
type Tree struct {
	blocks   map[types.Root]Block
	children map[types.Root][]types.Root
	genesis  types.Root
}

// New creates a tree containing only the genesis block at slot 0.
func New(genesis types.Root) *Tree {
	t := &Tree{
		blocks:   make(map[types.Root]Block),
		children: make(map[types.Root][]types.Root),
		genesis:  genesis,
	}
	t.blocks[genesis] = Block{Slot: 0, Root: genesis}
	return t
}

// Genesis returns the root of the genesis block.
func (t *Tree) Genesis() types.Root { return t.genesis }

// Len returns the number of blocks in the tree, genesis included.
func (t *Tree) Len() int { return len(t.blocks) }

// Has reports whether the tree contains root.
func (t *Tree) Has(root types.Root) bool {
	_, ok := t.blocks[root]
	return ok
}

// Block returns the block stored under root.
func (t *Tree) Block(root types.Root) (Block, error) {
	b, ok := t.blocks[root]
	if !ok {
		return Block{}, fmt.Errorf("%w: %s", ErrUnknownBlock, root)
	}
	return b, nil
}

// Add inserts b. The parent must already be present, the slot must be
// strictly greater than the parent's slot, and the root must be new.
func (t *Tree) Add(b Block) error {
	if _, ok := t.blocks[b.Root]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicate, b.Root)
	}
	parent, ok := t.blocks[b.Parent]
	if !ok {
		return fmt.Errorf("%w: parent %s of %s", ErrUnknownParent, b.Parent, b.Root)
	}
	if b.Slot <= parent.Slot {
		return fmt.Errorf("%w: block %s at slot %d, parent at slot %d",
			ErrBadSlot, b.Root, b.Slot, parent.Slot)
	}
	t.blocks[b.Root] = b
	t.children[b.Parent] = append(t.children[b.Parent], b.Root)
	return nil
}

// Children returns the direct children of root in insertion order. The
// returned slice is a copy.
func (t *Tree) Children(root types.Root) []types.Root {
	kids := t.children[root]
	out := make([]types.Root, len(kids))
	copy(out, kids)
	return out
}

// IsAncestor reports whether a is an ancestor of (or equal to) d.
func (t *Tree) IsAncestor(a, d types.Root) bool {
	if !t.Has(a) || !t.Has(d) {
		return false
	}
	cur := d
	for {
		if cur == a {
			return true
		}
		b := t.blocks[cur]
		if cur == t.genesis {
			return false
		}
		cur = b.Parent
	}
}

// AncestorAt walks from root toward genesis and returns the last block on
// that path whose slot is <= slot. This is the block a checkpoint for a
// given epoch resolves to on the branch ending at root.
func (t *Tree) AncestorAt(root types.Root, slot types.Slot) (types.Root, error) {
	if !t.Has(root) {
		return types.Root{}, fmt.Errorf("%w: %s", ErrUnknownBlock, root)
	}
	cur := root
	for {
		b := t.blocks[cur]
		if b.Slot <= slot {
			return cur, nil
		}
		if cur == t.genesis {
			return t.genesis, nil
		}
		cur = b.Parent
	}
}

// CheckpointFor resolves the checkpoint of epoch e on the branch ending at
// head: the pair (block at or before the epoch's first slot, e).
func (t *Tree) CheckpointFor(head types.Root, e types.Epoch) (types.Checkpoint, error) {
	r, err := t.AncestorAt(head, e.StartSlot())
	if err != nil {
		return types.Checkpoint{}, err
	}
	return types.Checkpoint{Epoch: e, Root: r}, nil
}

// Chain returns the path from genesis to root, inclusive, in increasing
// slot order.
func (t *Tree) Chain(root types.Root) ([]Block, error) {
	if !t.Has(root) {
		return nil, fmt.Errorf("%w: %s", ErrUnknownBlock, root)
	}
	var rev []Block
	cur := root
	for {
		b := t.blocks[cur]
		rev = append(rev, b)
		if cur == t.genesis {
			break
		}
		cur = b.Parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// Leaves returns all blocks without children, sorted by (slot, root) for
// determinism.
func (t *Tree) Leaves() []Block {
	var out []Block
	for root, b := range t.blocks {
		if len(t.children[root]) == 0 {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Slot != out[j].Slot {
			return out[i].Slot < out[j].Slot
		}
		return lessRoot(out[i].Root, out[j].Root)
	})
	return out
}

// CommonAncestor returns the highest block that is an ancestor of both a
// and b.
func (t *Tree) CommonAncestor(a, b types.Root) (types.Root, error) {
	if !t.Has(a) || !t.Has(b) {
		return types.Root{}, ErrUnknownBlock
	}
	onPath := map[types.Root]bool{}
	cur := a
	for {
		onPath[cur] = true
		if cur == t.genesis {
			break
		}
		cur = t.blocks[cur].Parent
	}
	cur = b
	for {
		if onPath[cur] {
			return cur, nil
		}
		if cur == t.genesis {
			return t.genesis, nil
		}
		cur = t.blocks[cur].Parent
	}
}

// PruneBelow discards every block that is not a descendant of (or equal
// to) keep, which becomes the tree's effective root. Nodes prune at
// finalized checkpoints: blocks conflicting with finality can never return
// to the canonical chain, and long simulations need the memory back. The
// genesis pointer moves to keep. Returns the number of blocks removed.
func (t *Tree) PruneBelow(keep types.Root) (int, error) {
	if !t.Has(keep) {
		return 0, fmt.Errorf("%w: %s", ErrUnknownBlock, keep)
	}
	if keep == t.genesis {
		return 0, nil
	}
	// Collect the surviving subtree.
	survivors := make(map[types.Root]bool, len(t.blocks))
	stack := []types.Root{keep}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if survivors[cur] {
			continue
		}
		survivors[cur] = true
		stack = append(stack, t.children[cur]...)
	}
	removed := 0
	for root := range t.blocks {
		if !survivors[root] {
			delete(t.blocks, root)
			delete(t.children, root)
			removed++
		}
	}
	// The new root keeps its slot but forgets its parent, so ancestry
	// walks terminate at it.
	b := t.blocks[keep]
	b.Parent = keep
	t.blocks[keep] = b
	t.genesis = keep
	return removed, nil
}

// Slot returns the slot of root, or an error if unknown.
func (t *Tree) Slot(root types.Root) (types.Slot, error) {
	b, err := t.Block(root)
	if err != nil {
		return 0, err
	}
	return b.Slot, nil
}

func lessRoot(a, b types.Root) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
