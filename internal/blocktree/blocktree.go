// Package blocktree stores the tree-like block structure every validator
// maintains locally (paper Section 2: "Validators keep a local data
// structure in form of a tree containing all the blocks perceived").
//
// It offers ancestry queries, checkpoint-block resolution (the block that a
// checkpoint (b, e) refers to is the last block at or before the first slot
// of epoch e on the branch), and chain extraction — the primitives that the
// fork-choice rule and the FFG finality engine are built on.
//
// Storage is flat: blocks live in an insertion-ordered node array with
// parent/first-child/next-sibling index links, plus a root→index map. The
// array order is topological (a parent always precedes its children), and
// every index stays stable until PruneBelow compacts the array — each
// compaction bumps Version, which incremental consumers (the proto-array
// fork-choice engine in internal/forkchoice) watch to know when their
// cached indices are void. Ancestry walks are integer chases with no map
// lookups.
package blocktree

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"unsafe"

	"repro/internal/types"
)

// Sentinel errors for tree operations.
var (
	ErrUnknownBlock  = errors.New("blocktree: unknown block")
	ErrUnknownParent = errors.New("blocktree: unknown parent")
	ErrDuplicate     = errors.New("blocktree: duplicate block")
	ErrBadSlot       = errors.New("blocktree: slot not after parent slot")
	// ErrCompactedRange reports an ancestor-at-slot query whose answer was
	// folded away by Compact: the walk crossed a summarized segment that
	// could contain the true answer. Callers querying inside the retention
	// window (Compact's olderThan horizon) never see it.
	ErrCompactedRange = errors.New("blocktree: ancestor query crosses a compacted range")
)

// NoIndex marks "no node" in the index-link accessors (missing parent,
// child, or sibling).
const NoIndex int32 = -1

// Block is a vertex of the tree. Payload contents are irrelevant to the
// consensus analysis; identity, position, and parentage are everything.
type Block struct {
	Slot     types.Slot
	Root     types.Root
	Parent   types.Root
	Proposer types.ValidatorIndex
}

// node is one slot of the flat array: the block plus its structural links.
type node struct {
	block       Block
	parent      int32
	firstChild  int32
	lastChild   int32
	nextSibling int32
	// foldedBelow counts the blocks Compact folded away between this node
	// and its parent: a nonzero value marks the parent link as an
	// ancestor-skip link summarizing a segment of the spine.
	foldedBelow int32
}

// Tree is an append-only block tree rooted at a genesis block. The zero
// value is not usable; construct with New.
type Tree struct {
	nodes   []node
	index   map[types.Root]int32 //gasper:nocodec root index; DecodeTree rebuilds it from the parent links
	version uint64
	// folded is the lifetime count of blocks removed by Compact.
	folded int
}

// New creates a tree containing only the genesis block at slot 0.
func New(genesis types.Root) *Tree {
	t := &Tree{index: make(map[types.Root]int32)}
	t.nodes = append(t.nodes, node{
		block:       Block{Slot: 0, Root: genesis},
		parent:      NoIndex,
		firstChild:  NoIndex,
		lastChild:   NoIndex,
		nextSibling: NoIndex,
	})
	t.index[genesis] = 0
	return t
}

// Clone deep-copies the tree. The clone starts a fresh identity: consumers
// caching indices against the original (the proto-array fork-choice
// engine) detect the new tree pointer and rebuild.
func (t *Tree) Clone() *Tree {
	out := &Tree{
		nodes:   append([]node(nil), t.nodes...),
		index:   make(map[types.Root]int32, len(t.index)),
		version: t.version,
		folded:  t.folded,
	}
	for r, i := range t.index {
		out.index[r] = i
	}
	return out
}

// Genesis returns the root of the tree's effective root block (the original
// genesis, or the finalized block PruneBelow promoted).
func (t *Tree) Genesis() types.Root { return t.nodes[0].block.Root }

// Len returns the number of blocks in the tree, genesis included.
func (t *Tree) Len() int { return len(t.nodes) }

// Version identifies the current index space. It is bumped whenever node
// indices are invalidated (PruneBelow compaction); plain Add calls never
// change it, so consumers caching indices only re-sync after pruning.
func (t *Tree) Version() uint64 { return t.version }

// Has reports whether the tree contains root.
func (t *Tree) Has(root types.Root) bool {
	_, ok := t.index[root]
	return ok
}

// IndexOf returns the stable array index of root within the current
// Version's index space.
func (t *Tree) IndexOf(root types.Root) (int32, bool) {
	i, ok := t.index[root]
	return i, ok
}

// BlockAt returns the block stored at array index i. The index must be in
// [0, Len()).
func (t *Tree) BlockAt(i int32) Block { return t.nodes[i].block }

// ParentIndex returns the array index of i's parent, or NoIndex for the
// effective root. Parents always have smaller indices than their children.
func (t *Tree) ParentIndex(i int32) int32 { return t.nodes[i].parent }

// FirstChild returns the array index of i's first child in insertion order,
// or NoIndex for a leaf.
func (t *Tree) FirstChild(i int32) int32 { return t.nodes[i].firstChild }

// NextSibling returns the array index of the sibling inserted after i, or
// NoIndex for the last child.
func (t *Tree) NextSibling(i int32) int32 { return t.nodes[i].nextSibling }

// Block returns the block stored under root.
func (t *Tree) Block(root types.Root) (Block, error) {
	i, ok := t.index[root]
	if !ok {
		return Block{}, fmt.Errorf("%w: %s", ErrUnknownBlock, root)
	}
	return t.nodes[i].block, nil
}

// Add inserts b. The parent must already be present, the slot must be
// strictly greater than the parent's slot, and the root must be new.
func (t *Tree) Add(b Block) error {
	if _, ok := t.index[b.Root]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicate, b.Root)
	}
	pi, ok := t.index[b.Parent]
	if !ok {
		return fmt.Errorf("%w: parent %s of %s", ErrUnknownParent, b.Parent, b.Root)
	}
	if b.Slot <= t.nodes[pi].block.Slot {
		return fmt.Errorf("%w: block %s at slot %d, parent at slot %d",
			ErrBadSlot, b.Root, b.Slot, t.nodes[pi].block.Slot)
	}
	i := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{
		block:       b,
		parent:      pi,
		firstChild:  NoIndex,
		lastChild:   NoIndex,
		nextSibling: NoIndex,
	})
	if t.nodes[pi].firstChild == NoIndex {
		t.nodes[pi].firstChild = i
	} else {
		t.nodes[t.nodes[pi].lastChild].nextSibling = i
	}
	t.nodes[pi].lastChild = i
	t.index[b.Root] = i
	return nil
}

// Children returns the direct children of root in insertion order. The
// returned slice is a copy.
func (t *Tree) Children(root types.Root) []types.Root {
	i, ok := t.index[root]
	if !ok {
		return nil
	}
	var out []types.Root
	for c := t.nodes[i].firstChild; c != NoIndex; c = t.nodes[c].nextSibling {
		out = append(out, t.nodes[c].block.Root)
	}
	return out
}

// IsAncestor reports whether a is an ancestor of (or equal to) d.
func (t *Tree) IsAncestor(a, d types.Root) bool {
	ai, ok := t.index[a]
	if !ok {
		return false
	}
	di, ok := t.index[d]
	if !ok {
		return false
	}
	// Parents precede children in the array, so the walk can stop as soon
	// as the descendant's index drops below the candidate ancestor's.
	for di > ai {
		di = t.nodes[di].parent
	}
	return di == ai
}

// AncestorAt walks from root toward genesis and returns the last block on
// that path whose slot is <= slot. This is the block a checkpoint for a
// given epoch resolves to on the branch ending at root.
//
// Stepping across a compacted segment (a skip link with folded blocks
// behind it) whose slot range straddles the query returns
// ErrCompactedRange: the true answer may have been folded, and a silently
// lower ancestor would corrupt checkpoint resolution. Queries at or above
// Compact's retention horizon never cross such a segment.
func (t *Tree) AncestorAt(root types.Root, slot types.Slot) (types.Root, error) {
	i, ok := t.index[root]
	if !ok {
		return types.Root{}, fmt.Errorf("%w: %s", ErrUnknownBlock, root)
	}
	for {
		n := &t.nodes[i]
		if n.block.Slot <= slot || n.parent == NoIndex {
			return n.block.Root, nil
		}
		if n.foldedBelow > 0 && t.nodes[n.parent].block.Slot < slot {
			// The folded blocks between parent and n occupied slots in
			// (parent.Slot, n.Slot); one of them could be the answer.
			return types.Root{}, fmt.Errorf("%w: slot %d between %s (slot %d) and its skip parent (%d folded blocks)",
				ErrCompactedRange, slot, n.block.Root, n.block.Slot, n.foldedBelow)
		}
		i = n.parent
	}
}

// CheckpointFor resolves the checkpoint of epoch e on the branch ending at
// head: the pair (block at or before the epoch's first slot, e).
func (t *Tree) CheckpointFor(head types.Root, e types.Epoch) (types.Checkpoint, error) {
	r, err := t.AncestorAt(head, e.StartSlot())
	if err != nil {
		return types.Checkpoint{}, err
	}
	return types.Checkpoint{Epoch: e, Root: r}, nil
}

// Chain returns the path from genesis to root, inclusive, in increasing
// slot order.
func (t *Tree) Chain(root types.Root) ([]Block, error) {
	i, ok := t.index[root]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownBlock, root)
	}
	var rev []Block
	for ; i != NoIndex; i = t.nodes[i].parent {
		rev = append(rev, t.nodes[i].block)
	}
	for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
		rev[a], rev[b] = rev[b], rev[a]
	}
	return rev, nil
}

// Leaves returns all blocks without children, sorted by (slot, root) for
// determinism.
func (t *Tree) Leaves() []Block {
	var out []Block
	for i := range t.nodes {
		if t.nodes[i].firstChild == NoIndex {
			out = append(out, t.nodes[i].block)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Slot != out[j].Slot {
			return out[i].Slot < out[j].Slot
		}
		return bytes.Compare(out[i].Root[:], out[j].Root[:]) < 0
	})
	return out
}

// CommonAncestor returns the highest block that is an ancestor of both a
// and b.
func (t *Tree) CommonAncestor(a, b types.Root) (types.Root, error) {
	ai, ok := t.index[a]
	if !ok {
		return types.Root{}, ErrUnknownBlock
	}
	bi, ok := t.index[b]
	if !ok {
		return types.Root{}, ErrUnknownBlock
	}
	// Parents precede children, so repeatedly lifting the deeper index
	// converges on the meet without any visited-set allocation.
	for ai != bi {
		if ai > bi {
			ai = t.nodes[ai].parent
		} else {
			bi = t.nodes[bi].parent
		}
	}
	return t.nodes[ai].block.Root, nil
}

// PruneBelow discards every block that is not a descendant of (or equal
// to) keep, which becomes the tree's effective root. Nodes prune at
// finalized checkpoints: blocks conflicting with finality can never return
// to the canonical chain, and long simulations need the memory back. The
// genesis pointer moves to keep, the node array is compacted in pre-order
// (keeping it topological), and Version is bumped to void cached indices.
// Returns the number of blocks removed.
func (t *Tree) PruneBelow(keep types.Root) (int, error) {
	ki, ok := t.index[keep]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownBlock, keep)
	}
	if ki == 0 {
		return 0, nil
	}
	// Collect the surviving subtree in pre-order: parents stay ahead of
	// their children and sibling order is preserved, so relinking the
	// compacted array by ascending index reproduces insertion order.
	order := make([]int32, 0, len(t.nodes))
	t.preorder(ki, &order)
	oldToNew := make(map[int32]int32, len(order))
	for newIdx, oldIdx := range order {
		oldToNew[oldIdx] = int32(newIdx)
	}
	fresh := make([]node, len(order))
	index := make(map[types.Root]int32, len(order))
	for newIdx, oldIdx := range order {
		b := t.nodes[oldIdx].block
		fresh[newIdx] = node{
			block:       b,
			parent:      NoIndex,
			firstChild:  NoIndex,
			lastChild:   NoIndex,
			nextSibling: NoIndex,
			foldedBelow: t.nodes[oldIdx].foldedBelow,
		}
		if oldIdx != ki {
			fresh[newIdx].parent = oldToNew[t.nodes[oldIdx].parent]
		}
		index[b.Root] = int32(newIdx)
	}
	// The new root keeps its slot but forgets its parent, so ancestry
	// walks terminate at it; any segment folded below it is gone too.
	fresh[0].block.Parent = keep
	fresh[0].foldedBelow = 0
	for i := int32(1); i < int32(len(fresh)); i++ {
		p := fresh[i].parent
		if fresh[p].firstChild == NoIndex {
			fresh[p].firstChild = i
		} else {
			fresh[fresh[p].lastChild].nextSibling = i
		}
		fresh[p].lastChild = i
	}
	removed := len(t.nodes) - len(fresh)
	t.nodes = fresh
	t.index = index
	t.version++
	return removed, nil
}

// preorder appends the subtree of root to out in pre-order (parent first,
// children in sibling order), with an explicit stack so a deep surviving
// chain costs no call-stack growth.
func (t *Tree) preorder(root int32, out *[]int32) {
	stack := []int32{root}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		*out = append(*out, i)
		// Push the children, then reverse the pushed run so they pop in
		// sibling order.
		n := len(stack)
		for c := t.nodes[i].firstChild; c != NoIndex; c = t.nodes[c].nextSibling {
			stack = append(stack, c)
		}
		for a, b := n, len(stack)-1; a < b; a, b = a+1, b-1 {
			stack[a], stack[b] = stack[b], stack[a]
		}
	}
}

// Compact folds the cold interior of the tree into summary segments,
// PruneBelow's sibling for runs where finality — and therefore pruning —
// never happens (an inactivity leak). A block survives compaction iff it
//
//   - sits at or above the retention horizon (Slot >= olderThan),
//   - is the effective root,
//   - is protected by the keep predicate (vote targets, checkpoint
//     anchors — whatever the caller still addresses by root), or
//   - is a branch point of the surviving set (the lowest common ancestor
//     of two survivors), so ancestry relations among survivors persist.
//
// Everything else — the unbranched non-finalized spine and dead side
// branches carrying no protected root — is folded away: each survivor's
// parent link jumps to its nearest surviving ancestor (an ancestor-skip
// link), its Block.Parent is rewritten to that ancestor's root so
// root-chain walks stay closed, and foldedBelow records the segment
// length. Version is bumped so incremental consumers rebuild. Returns the
// number of blocks folded (0 leaves the tree and Version untouched).
//
// IsAncestor and CommonAncestor remain exact over surviving blocks.
// AncestorAt queries below olderThan may answer ErrCompactedRange.
func (t *Tree) Compact(olderThan types.Slot, keep func(types.Root) bool) int {
	n := int32(len(t.nodes))
	if n <= 1 {
		return 0
	}
	mark := make([]bool, n)
	mark[0] = true
	retained := int32(1)
	for i := int32(1); i < n; i++ {
		b := &t.nodes[i].block
		if b.Slot >= olderThan || (keep != nil && keep(b.Root)) {
			mark[i] = true
			retained++
		}
	}
	// LCA closure, leaf-to-root (children have larger indices, so each
	// node's child counts are final when visited): a node with two or more
	// children whose subtrees carry survivors is a branch point of the
	// surviving set and must survive itself.
	childrenWith := make([]int8, n)
	for i := n - 1; i >= 1; i-- {
		if !mark[i] && childrenWith[i] >= 2 {
			mark[i] = true
			retained++
		}
		if mark[i] || childrenWith[i] > 0 {
			if p := t.nodes[i].parent; childrenWith[p] < 2 {
				childrenWith[p]++
			}
		}
	}
	if retained == n {
		return 0
	}
	// Nearest surviving ancestor and folded-gap length, root-to-leaf: a
	// dropped node accumulates its own segment history (foldedBelow) plus
	// itself into the gap its surviving descendants inherit.
	nrAnc := make([]int32, n)
	gap := make([]int32, n)
	nrAnc[0] = NoIndex
	for i := int32(1); i < n; i++ {
		p := t.nodes[i].parent
		if mark[p] {
			nrAnc[i] = p
			gap[i] = t.nodes[i].foldedBelow
		} else {
			nrAnc[i] = nrAnc[p]
			gap[i] = t.nodes[i].foldedBelow + 1 + gap[p]
		}
	}
	// Rebuild in ascending index order: survivors keep their relative
	// order, so the array stays topological.
	fresh := make([]node, 0, retained)
	index := make(map[types.Root]int32, retained)
	oldToNew := make([]int32, n)
	for i := int32(0); i < n; i++ {
		if !mark[i] {
			oldToNew[i] = NoIndex
			continue
		}
		nd := node{
			block:       t.nodes[i].block,
			parent:      NoIndex,
			firstChild:  NoIndex,
			lastChild:   NoIndex,
			nextSibling: NoIndex,
			foldedBelow: gap[i],
		}
		if i != 0 {
			np := oldToNew[nrAnc[i]]
			nd.parent = np
			nd.block.Parent = fresh[np].block.Root
		}
		oldToNew[i] = int32(len(fresh))
		index[nd.block.Root] = oldToNew[i]
		fresh = append(fresh, nd)
	}
	for i := int32(1); i < int32(len(fresh)); i++ {
		p := fresh[i].parent
		if fresh[p].firstChild == NoIndex {
			fresh[p].firstChild = i
		} else {
			fresh[fresh[p].lastChild].nextSibling = i
		}
		fresh[p].lastChild = i
	}
	removed := int(n) - len(fresh)
	t.nodes = fresh
	t.index = index
	t.folded += removed
	t.version++
	return removed
}

// Stats reports the tree's retained-state sizes: the memory-growth half of
// the leak-depth story.
type Stats struct {
	// Nodes is the live block count (Len).
	Nodes int
	// Segments counts skip links currently summarizing a folded run.
	Segments int
	// Folded is the lifetime count of blocks removed by Compact.
	Folded int
	// Bytes approximates the retained heap footprint (node array plus
	// root index).
	Bytes int
}

// Stats computes the current Stats by one scan of the node array.
func (t *Tree) Stats() Stats {
	s := Stats{Nodes: len(t.nodes), Folded: t.folded}
	for i := range t.nodes {
		if t.nodes[i].foldedBelow > 0 {
			s.Segments++
		}
	}
	// Rough per-entry map cost: key, value, and bucket overhead.
	const mapEntryBytes = int(unsafe.Sizeof(types.Root{})) + 8 + 16
	s.Bytes = cap(t.nodes)*int(unsafe.Sizeof(node{})) + len(t.index)*mapEntryBytes
	return s
}

// Slot returns the slot of root, or an error if unknown.
func (t *Tree) Slot(root types.Root) (types.Slot, error) {
	b, err := t.Block(root)
	if err != nil {
		return 0, err
	}
	return b.Slot, nil
}
