package blocktree

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func root(v uint64) types.Root { return types.RootFromUint64(v) }

// buildLinearChain constructs genesis -> b1 -> b2 ... -> bn, one block per
// slot, and returns the tree plus the roots in order (index 0 = genesis).
func buildLinearChain(t *testing.T, n int) (*Tree, []types.Root) {
	t.Helper()
	tree := New(root(0))
	roots := []types.Root{root(0)}
	for i := 1; i <= n; i++ {
		b := Block{Slot: types.Slot(i), Root: root(uint64(i)), Parent: roots[i-1]}
		if err := tree.Add(b); err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
		roots = append(roots, b.Root)
	}
	return tree, roots
}

// buildFork creates a genesis with two branches:
//
//	genesis -> a1(slot 1) -> a2(slot 2)
//	        -> b1(slot 1') -> b2(slot 2')
//
// using distinct roots for each side.
func buildFork(t *testing.T) (*Tree, []types.Root, []types.Root) {
	t.Helper()
	tree := New(root(0))
	a := []types.Root{root(10), root(11)}
	b := []types.Root{root(20), root(21)}
	mustAdd(t, tree, Block{Slot: 1, Root: a[0], Parent: root(0)})
	mustAdd(t, tree, Block{Slot: 2, Root: a[1], Parent: a[0]})
	mustAdd(t, tree, Block{Slot: 1, Root: b[0], Parent: root(0)})
	mustAdd(t, tree, Block{Slot: 2, Root: b[1], Parent: b[0]})
	return tree, a, b
}

func mustAdd(t *testing.T, tree *Tree, b Block) {
	t.Helper()
	if err := tree.Add(b); err != nil {
		t.Fatalf("Add(%v): %v", b.Root, err)
	}
}

func TestNewContainsGenesis(t *testing.T) {
	tree := New(root(0))
	if !tree.Has(root(0)) {
		t.Fatal("genesis missing")
	}
	if tree.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tree.Len())
	}
	if tree.Genesis() != root(0) {
		t.Fatal("wrong genesis root")
	}
}

func TestAddRejectsUnknownParent(t *testing.T) {
	tree := New(root(0))
	err := tree.Add(Block{Slot: 1, Root: root(1), Parent: root(99)})
	if !errors.Is(err, ErrUnknownParent) {
		t.Errorf("want ErrUnknownParent, got %v", err)
	}
}

func TestAddRejectsDuplicate(t *testing.T) {
	tree, roots := buildLinearChain(t, 2)
	err := tree.Add(Block{Slot: 3, Root: roots[1], Parent: roots[2]})
	if !errors.Is(err, ErrDuplicate) {
		t.Errorf("want ErrDuplicate, got %v", err)
	}
}

func TestAddRejectsNonIncreasingSlot(t *testing.T) {
	tree, roots := buildLinearChain(t, 2)
	err := tree.Add(Block{Slot: 2, Root: root(99), Parent: roots[2]})
	if !errors.Is(err, ErrBadSlot) {
		t.Errorf("want ErrBadSlot, got %v", err)
	}
}

func TestIsAncestorLinear(t *testing.T) {
	tree, roots := buildLinearChain(t, 5)
	if !tree.IsAncestor(roots[1], roots[5]) {
		t.Error("b1 should be ancestor of b5")
	}
	if tree.IsAncestor(roots[5], roots[1]) {
		t.Error("b5 should not be ancestor of b1")
	}
	if !tree.IsAncestor(roots[3], roots[3]) {
		t.Error("a block is its own ancestor")
	}
	if tree.IsAncestor(root(99), roots[1]) || tree.IsAncestor(roots[1], root(99)) {
		t.Error("unknown blocks are never ancestors")
	}
}

func TestIsAncestorAcrossFork(t *testing.T) {
	tree, a, b := buildFork(t)
	if tree.IsAncestor(a[0], b[1]) {
		t.Error("branch A block must not be ancestor of branch B block")
	}
	if !tree.IsAncestor(root(0), a[1]) || !tree.IsAncestor(root(0), b[1]) {
		t.Error("genesis is ancestor of all blocks")
	}
}

func TestAncestorAt(t *testing.T) {
	tree, roots := buildLinearChain(t, 10)
	got, err := tree.AncestorAt(roots[10], 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != roots[7] {
		t.Errorf("AncestorAt(slot 7) = %v, want %v", got, roots[7])
	}
	got, err = tree.AncestorAt(roots[10], 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != roots[0] {
		t.Errorf("AncestorAt(slot 0) = %v, want genesis", got)
	}
	if _, err := tree.AncestorAt(root(99), 0); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("want ErrUnknownBlock, got %v", err)
	}
}

func TestAncestorAtSkippedSlots(t *testing.T) {
	// Chain with gaps: genesis(0) -> x(5) -> y(12).
	tree := New(root(0))
	mustAdd(t, tree, Block{Slot: 5, Root: root(1), Parent: root(0)})
	mustAdd(t, tree, Block{Slot: 12, Root: root(2), Parent: root(1)})
	got, err := tree.AncestorAt(root(2), 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != root(1) {
		t.Errorf("AncestorAt(slot 8) = %v, want block at slot 5", got)
	}
}

func TestCheckpointFor(t *testing.T) {
	// 70 slots: epochs 0 and 1 fully populated, epoch 2 starts at slot 64.
	tree, roots := buildLinearChain(t, 70)
	cp, err := tree.CheckpointFor(roots[70], 2)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Root != roots[64] || cp.Epoch != 2 {
		t.Errorf("checkpoint = %v, want epoch 2 root at slot 64", cp)
	}
	cp, err = tree.CheckpointFor(roots[70], 1)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Root != roots[32] {
		t.Errorf("checkpoint epoch 1 = %v, want slot-32 block", cp)
	}
}

func TestCheckpointForEmptyEpochStart(t *testing.T) {
	// If the first slot of the epoch is empty, the checkpoint falls back
	// to the latest earlier block.
	tree := New(root(0))
	mustAdd(t, tree, Block{Slot: 30, Root: root(1), Parent: root(0)})
	mustAdd(t, tree, Block{Slot: 40, Root: root(2), Parent: root(1)})
	cp, err := tree.CheckpointFor(root(2), 1) // epoch 1 starts at slot 32
	if err != nil {
		t.Fatal(err)
	}
	if cp.Root != root(1) {
		t.Errorf("checkpoint = %v, want slot-30 block", cp)
	}
}

func TestChain(t *testing.T) {
	tree, roots := buildLinearChain(t, 4)
	chain, err := tree.Chain(roots[4])
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 5 {
		t.Fatalf("chain len = %d, want 5", len(chain))
	}
	for i, b := range chain {
		if b.Root != roots[i] {
			t.Errorf("chain[%d] = %v, want %v", i, b.Root, roots[i])
		}
	}
	if _, err := tree.Chain(root(99)); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("want ErrUnknownBlock, got %v", err)
	}
}

func TestLeaves(t *testing.T) {
	tree, a, b := buildFork(t)
	leaves := tree.Leaves()
	if len(leaves) != 2 {
		t.Fatalf("leaves = %d, want 2", len(leaves))
	}
	got := map[types.Root]bool{leaves[0].Root: true, leaves[1].Root: true}
	if !got[a[1]] || !got[b[1]] {
		t.Errorf("leaves = %v, want tips of both branches", leaves)
	}
}

func TestCommonAncestor(t *testing.T) {
	tree, a, b := buildFork(t)
	ca, err := tree.CommonAncestor(a[1], b[1])
	if err != nil {
		t.Fatal(err)
	}
	if ca != root(0) {
		t.Errorf("CommonAncestor = %v, want genesis", ca)
	}
	ca, err = tree.CommonAncestor(a[0], a[1])
	if err != nil {
		t.Fatal(err)
	}
	if ca != a[0] {
		t.Errorf("CommonAncestor on same branch = %v, want %v", ca, a[0])
	}
}

func TestChildrenCopied(t *testing.T) {
	tree, roots := buildLinearChain(t, 2)
	kids := tree.Children(roots[0])
	if len(kids) != 1 {
		t.Fatalf("children = %d, want 1", len(kids))
	}
	kids[0] = root(99)
	if tree.Children(roots[0])[0] == root(99) {
		t.Error("Children must return a copy")
	}
}

func TestSlot(t *testing.T) {
	tree, roots := buildLinearChain(t, 3)
	s, err := tree.Slot(roots[3])
	if err != nil || s != 3 {
		t.Errorf("Slot = %d, %v; want 3, nil", s, err)
	}
	if _, err := tree.Slot(root(99)); err == nil {
		t.Error("Slot of unknown block should error")
	}
}

func TestPruneBelow(t *testing.T) {
	tree, a, b := buildFork(t)
	// Finalize branch A's first block: branch B must vanish.
	removed, err := tree.PruneBelow(a[0])
	if err != nil {
		t.Fatal(err)
	}
	// Removed: genesis, b1, b2.
	if removed != 3 {
		t.Errorf("removed = %d, want 3", removed)
	}
	if tree.Genesis() != a[0] {
		t.Errorf("new root = %v, want %v", tree.Genesis(), a[0])
	}
	if tree.Has(b[0]) || tree.Has(b[1]) || tree.Has(root(0)) {
		t.Error("pruned blocks still present")
	}
	if !tree.Has(a[0]) || !tree.Has(a[1]) {
		t.Error("surviving branch lost")
	}
	// Ancestry still works and terminates at the new root.
	if !tree.IsAncestor(a[0], a[1]) {
		t.Error("ancestry broken after prune")
	}
	if tree.IsAncestor(a[1], a[0]) {
		t.Error("reverse ancestry after prune")
	}
	chain, err := tree.Chain(a[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 || chain[0].Root != a[0] {
		t.Errorf("chain after prune = %v", chain)
	}
	// New blocks extend normally.
	if err := tree.Add(Block{Slot: 3, Root: root(30), Parent: a[1]}); err != nil {
		t.Fatal(err)
	}
	// Pruning at the current root is a no-op.
	removed, err = tree.PruneBelow(a[0])
	if err != nil || removed != 0 {
		t.Errorf("no-op prune = (%d, %v)", removed, err)
	}
	// Unknown keep block errors.
	if _, err := tree.PruneBelow(root(99)); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("want ErrUnknownBlock, got %v", err)
	}
}

func TestPruneBelowDeepChain(t *testing.T) {
	tree, roots := buildLinearChain(t, 50)
	removed, err := tree.PruneBelow(roots[40])
	if err != nil {
		t.Fatal(err)
	}
	if removed != 40 {
		t.Errorf("removed = %d, want 40", removed)
	}
	if tree.Len() != 11 {
		t.Errorf("len = %d, want 11", tree.Len())
	}
	// AncestorAt clamps at the new root.
	got, err := tree.AncestorAt(roots[50], 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != roots[40] {
		t.Errorf("AncestorAt below root = %v, want new root", got)
	}
}

func TestAncestorAtPropertyMonotone(t *testing.T) {
	tree, roots := buildLinearChain(t, 64)
	tip := roots[64]
	f := func(rawA, rawB uint8) bool {
		sa := types.Slot(rawA % 65)
		sb := types.Slot(rawB % 65)
		if sa > sb {
			sa, sb = sb, sa
		}
		ra, err1 := tree.AncestorAt(tip, sa)
		rb, err2 := tree.AncestorAt(tip, sb)
		if err1 != nil || err2 != nil {
			return false
		}
		// The ancestor at an earlier slot is an ancestor of the
		// ancestor at a later slot.
		return tree.IsAncestor(ra, rb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFlatIndexInvariants pins the contract the proto-array fork-choice
// engine builds on: indices are insertion-ordered and topological (parent
// before child), the child links walk in insertion order, and plain Adds
// never bump Version.
func TestFlatIndexInvariants(t *testing.T) {
	tree := New(types.RootFromUint64(0))
	v0 := tree.Version()
	for _, b := range []Block{
		{Slot: 1, Root: types.RootFromUint64(1), Parent: types.RootFromUint64(0)},
		{Slot: 1, Root: types.RootFromUint64(2), Parent: types.RootFromUint64(0)},
		{Slot: 2, Root: types.RootFromUint64(3), Parent: types.RootFromUint64(1)},
		{Slot: 3, Root: types.RootFromUint64(4), Parent: types.RootFromUint64(1)},
	} {
		if err := tree.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Version() != v0 {
		t.Error("Add must not bump Version")
	}
	for i := int32(0); i < int32(tree.Len()); i++ {
		b := tree.BlockAt(i)
		if gi, ok := tree.IndexOf(b.Root); !ok || gi != i {
			t.Errorf("IndexOf(%v) = %d/%v, want %d", b.Root, gi, ok, i)
		}
		if p := tree.ParentIndex(i); p != NoIndex && p >= i {
			t.Errorf("parent index %d of node %d not topological", p, i)
		}
		// Child links must reproduce Children() exactly.
		var linked []types.Root
		for c := tree.FirstChild(i); c != NoIndex; c = tree.NextSibling(c) {
			linked = append(linked, tree.BlockAt(c).Root)
		}
		want := tree.Children(b.Root)
		if len(linked) != len(want) {
			t.Fatalf("node %d: %d linked children, Children() has %d", i, len(linked), len(want))
		}
		for j := range want {
			if linked[j] != want[j] {
				t.Errorf("node %d child %d: link walk %v, Children %v", i, j, linked[j], want[j])
			}
		}
	}
}

// TestPruneBumpsVersionAndReindexes: compaction preserves structure,
// stays topological, and signals consumers through Version.
func TestPruneBumpsVersionAndReindexes(t *testing.T) {
	tree := New(types.RootFromUint64(0))
	for _, b := range []Block{
		{Slot: 1, Root: types.RootFromUint64(1), Parent: types.RootFromUint64(0)},
		{Slot: 1, Root: types.RootFromUint64(2), Parent: types.RootFromUint64(0)},
		{Slot: 2, Root: types.RootFromUint64(3), Parent: types.RootFromUint64(1)},
		{Slot: 3, Root: types.RootFromUint64(4), Parent: types.RootFromUint64(3)},
		{Slot: 4, Root: types.RootFromUint64(5), Parent: types.RootFromUint64(3)},
	} {
		if err := tree.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	v0 := tree.Version()
	removed, err := tree.PruneBelow(types.RootFromUint64(1))
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 { // genesis sibling branch (block 2) and old genesis
		t.Errorf("removed = %d, want 2", removed)
	}
	if tree.Version() == v0 {
		t.Error("PruneBelow must bump Version")
	}
	if tree.Genesis() != types.RootFromUint64(1) {
		t.Errorf("new effective root = %v", tree.Genesis())
	}
	if i, ok := tree.IndexOf(types.RootFromUint64(1)); !ok || i != 0 {
		t.Errorf("new root index = %d/%v, want 0", i, ok)
	}
	if tree.ParentIndex(0) != NoIndex {
		t.Error("new root must have no parent index")
	}
	for i := int32(1); i < int32(tree.Len()); i++ {
		if p := tree.ParentIndex(i); p == NoIndex || p >= i {
			t.Errorf("post-prune node %d has non-topological parent %d", i, p)
		}
	}
	if !tree.IsAncestor(types.RootFromUint64(3), types.RootFromUint64(5)) {
		t.Error("surviving ancestry lost in compaction")
	}
	if tree.Has(types.RootFromUint64(2)) {
		t.Error("pruned branch still present")
	}
}

// TestCompactFoldsSpine: on a deep linear chain, Compact folds everything
// older than the watermark slot into one skip segment below the retained
// suffix, bumps Version, and keeps ancestry exact over the survivors.
func TestCompactFoldsSpine(t *testing.T) {
	tree, roots := buildLinearChain(t, 50)
	v0 := tree.Version()
	removed := tree.Compact(40, nil)
	if removed != 39 { // blocks 1..39 fold; genesis and 40..50 survive
		t.Fatalf("removed = %d, want 39", removed)
	}
	if tree.Version() == v0 {
		t.Error("Compact must bump Version")
	}
	if tree.Len() != 12 {
		t.Errorf("len = %d, want 12", tree.Len())
	}
	for _, i := range []int{1, 20, 39} {
		if tree.Has(roots[i]) {
			t.Errorf("folded block %d still present", i)
		}
	}
	// The skip link: block 40's parent pointer was rewritten to the
	// nearest surviving ancestor (genesis), recording the gap length.
	b40, err := tree.Block(roots[40])
	if err != nil {
		t.Fatal(err)
	}
	if b40.Parent != roots[0] {
		t.Errorf("block 40 parent = %v, want genesis", b40.Parent)
	}
	if !tree.IsAncestor(roots[0], roots[50]) || !tree.IsAncestor(roots[40], roots[50]) {
		t.Error("ancestry broken across the fold")
	}
	st := tree.Stats()
	if st.Nodes != 12 || st.Segments != 1 || st.Folded != 39 || st.Bytes <= 0 {
		t.Errorf("Stats = %+v, want 12 nodes / 1 segment / 39 folded", st)
	}
	// Queries landing inside the folded range fail loudly instead of
	// returning a wrong ancestor; queries at surviving slots stay exact.
	if _, err := tree.AncestorAt(roots[50], 20); !errors.Is(err, ErrCompactedRange) {
		t.Errorf("AncestorAt into fold: got %v, want ErrCompactedRange", err)
	}
	if got, err := tree.AncestorAt(roots[50], 45); err != nil || got != roots[45] {
		t.Errorf("AncestorAt(45) = %v, %v", got, err)
	}
	if got, err := tree.AncestorAt(roots[50], 0); err != nil || got != roots[0] {
		t.Errorf("AncestorAt(0) = %v, %v, want genesis", got, err)
	}
	// The tree still extends normally.
	if err := tree.Add(Block{Slot: 51, Root: root(51), Parent: roots[50]}); err != nil {
		t.Fatal(err)
	}
}

// TestCompactKeepsPinnedRoots: pinned roots survive inside the folded
// range, splitting the spine into multiple skip segments, and a second
// compaction accumulates gap lengths instead of losing history.
func TestCompactKeepsPinnedRoots(t *testing.T) {
	tree, roots := buildLinearChain(t, 50)
	pin := roots[20]
	removed := tree.Compact(40, func(r types.Root) bool { return r == pin })
	if removed != 38 {
		t.Fatalf("removed = %d, want 38", removed)
	}
	if !tree.Has(pin) {
		t.Fatal("pinned root folded")
	}
	if got, err := tree.AncestorAt(roots[50], 20); err != nil || got != pin {
		t.Errorf("AncestorAt(pinned slot) = %v, %v", got, err)
	}
	if st := tree.Stats(); st.Segments != 2 || st.Folded != 38 {
		t.Errorf("Stats = %+v, want 2 segments / 38 folded", st)
	}
	// Unpin and recompact: the pinned survivor folds too, and block 40's
	// skip segment absorbs both prior gaps plus the dropped node itself.
	if r2 := tree.Compact(40, nil); r2 != 1 {
		t.Fatalf("second compact removed %d, want 1", r2)
	}
	if st := tree.Stats(); st.Segments != 1 || st.Folded != 39 {
		t.Errorf("Stats after recompact = %+v, want 1 segment / 39 folded", st)
	}
	if b40, err := tree.Block(roots[40]); err != nil || b40.Parent != roots[0] {
		t.Errorf("block 40 parent after recompact = %v, %v", b40, err)
	}
}

// TestCompactPreservesBranchPoints: an old, unpinned fork node whose both
// subtrees carry survivors is retained by the LCA closure, so
// CommonAncestor stays exact over the surviving set.
func TestCompactPreservesBranchPoints(t *testing.T) {
	tree := New(root(0))
	prev := root(0)
	var forkRoot types.Root
	for i := 1; i <= 10; i++ {
		b := Block{Slot: types.Slot(i), Root: root(uint64(i)), Parent: prev}
		mustAdd(t, tree, b)
		prev = b.Root
	}
	forkRoot = prev // slot 10
	// Two branches from the fork, both reaching past the watermark.
	for side, base := range []uint64{100, 200} {
		p := forkRoot
		for i := 11; i <= 45; i++ {
			b := Block{Slot: types.Slot(i), Root: root(base + uint64(i)), Parent: p}
			mustAdd(t, tree, b)
			p = b.Root
		}
		_ = side
	}
	removed := tree.Compact(40, nil)
	if removed == 0 {
		t.Fatal("expected compaction")
	}
	if !tree.Has(forkRoot) {
		t.Fatal("branch point folded despite surviving subtrees on both sides")
	}
	tipA, tipB := root(100+45), root(200+45)
	if ca, err := tree.CommonAncestor(tipA, tipB); err != nil || ca != forkRoot {
		t.Errorf("CommonAncestor = %v, %v, want fork root", ca, err)
	}
	if tree.IsAncestor(tipA, tipB) || !tree.IsAncestor(forkRoot, tipA) {
		t.Error("ancestry wrong across compacted fork")
	}
}

// TestCompactDropsDeadBranches: a side branch that is entirely old and
// unpinned disappears wholesale — no branch point is retained for it.
func TestCompactDropsDeadBranches(t *testing.T) {
	tree, roots := buildLinearChain(t, 50)
	// Dead side branch off block 5, tip at slot 8.
	mustAdd(t, tree, Block{Slot: 6, Root: root(300), Parent: roots[5]})
	mustAdd(t, tree, Block{Slot: 7, Root: root(301), Parent: root(300)})
	mustAdd(t, tree, Block{Slot: 8, Root: root(302), Parent: root(301)})
	removed := tree.Compact(40, nil)
	if removed != 42 { // 39 spine blocks + 3 dead-branch blocks
		t.Fatalf("removed = %d, want 42", removed)
	}
	for _, r := range []types.Root{root(300), root(301), root(302), roots[5]} {
		if tree.Has(r) {
			t.Errorf("dead branch block %v survived", r)
		}
	}
	if leaves := tree.Leaves(); len(leaves) != 1 || leaves[0].Root != roots[50] {
		t.Errorf("leaves after compact = %v", leaves)
	}
}

// TestCompactNoop: when everything is retained (watermark at or below the
// oldest block), Compact returns 0 and does not bump Version.
func TestCompactNoop(t *testing.T) {
	tree, _ := buildLinearChain(t, 10)
	v0 := tree.Version()
	if removed := tree.Compact(0, nil); removed != 0 {
		t.Fatalf("removed = %d, want 0", removed)
	}
	if tree.Version() != v0 {
		t.Error("no-op Compact must not bump Version")
	}
}

// TestCompactCloneIndependence: Clone deep-copies compacted state — skip
// links, fold counters, and index — bit-identically and independently.
func TestCompactCloneIndependence(t *testing.T) {
	tree, roots := buildLinearChain(t, 50)
	tree.Compact(40, nil)
	clone := tree.Clone()
	if clone.Stats() != tree.Stats() {
		t.Fatalf("clone stats %+v != original %+v", clone.Stats(), tree.Stats())
	}
	if clone.Version() != tree.Version() {
		t.Error("clone must carry Version")
	}
	// Divergence after cloning stays local.
	mustAdd(t, clone, Block{Slot: 51, Root: root(400), Parent: roots[50]})
	if tree.Has(root(400)) {
		t.Error("clone write leaked into original")
	}
	if _, err := clone.AncestorAt(root(400), 20); !errors.Is(err, ErrCompactedRange) {
		t.Error("clone lost skip-segment ambiguity guard")
	}
}
