package core

import (
	"testing"

	"repro/internal/types"
)

// BenchmarkLeakSimFullHorizon measures a full 9000-epoch, 10k-validator
// aggregate run (the unit behind every Table 2/3 cell).
func BenchmarkLeakSimFullHorizon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := LeakSim{N: 10000, P0: 0.5, Beta0: 0.2, Mode: ByzSemiActive}
		if _, err := sim.Run(9000, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBounceMCEpochValidator measures the per-validator-epoch cost of
// the bouncing Monte-Carlo (500 validators x 1000 epochs per op).
func BenchmarkBounceMCEpochValidator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mc := BounceMC{NHonest: 500, Beta0: 0.33, P0: 0.5, Seed: int64(i)}
		if _, _, err := mc.Run(1000, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenario523Corner measures the footnote-12 corner-case scenario
// (two full-horizon runs per op).
func BenchmarkScenario523Corner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Scenario523Corner(0.5, 0.25, types.Epoch(200)); err != nil {
			b.Fatal(err)
		}
	}
}
