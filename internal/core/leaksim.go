// Package core implements the paper's five analysis scenarios at full paper
// scale. It complements the node-level protocol simulator (internal/sim)
// with two engines built on the same exact integer penalty arithmetic
// (internal/incentives semantics):
//
//   - LeakSim: an aggregate two-branch leak simulation over validator
//     cohorts (honest active per branch, Byzantine), which regenerates the
//     conflicting-finalization epochs of Tables 2-3, the ratio curves of
//     Figure 3, the speedup curves of Figure 6, and the threshold region of
//     Figure 7 — at the paper's own 4685-epoch scale in microseconds per
//     run;
//   - BounceMC: a per-validator Monte-Carlo of the probabilistic bouncing
//     attack (Section 5.3) with branch-accurate ledgers, which regenerates
//     Figure 10 mechanistically and cross-checks the paper's censored
//     log-normal model (Equation 24).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/types"
)

// cancelCheckEvery is how many epochs a long simulation loop runs between
// cooperative cancellation checks. A LeakSim epoch costs nanoseconds and a
// BounceMC epoch is O(NHonest), so a few hundred epochs keeps the check
// overhead negligible while bounding the cancellation latency well under a
// millisecond for every paper-scale configuration.
const cancelCheckEvery = 256

// ByzMode selects the Byzantine strategy of a leak scenario.
type ByzMode int

// Byzantine strategies (paper Sections 5.1-5.2).
const (
	// ByzAbsent is Scenario 5.1: no Byzantine validators.
	ByzAbsent ByzMode = iota
	// ByzDoubleVote is Scenario 5.2.1: active on both branches every
	// epoch (slashable once observable).
	ByzDoubleVote
	// ByzSemiActive is Scenarios 5.2.2/5.2.3: active on alternating
	// branches, never slashable.
	ByzSemiActive
)

// String names the mode.
func (m ByzMode) String() string {
	switch m {
	case ByzAbsent:
		return "honest only"
	case ByzDoubleVote:
		return "double vote (slashable)"
	case ByzSemiActive:
		return "semi-active (non-slashable)"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ErrBadParams reports invalid scenario parameters.
var ErrBadParams = errors.New("core: invalid scenario parameters")

// cohort is a set of identical validators tracked in aggregate with exact
// integer per-member state.
type cohort struct {
	count  uint64
	stake  types.Gwei // per member
	score  uint64     // inactivity score per member
	inSet  bool
	exited types.Epoch
}

func (c *cohort) total() types.Gwei {
	if !c.inSet {
		return 0
	}
	return types.Gwei(c.count) * c.stake
}

// stepPenalty applies one epoch of Equation 2 to the cohort (score and
// stake of the previous epoch), then updates the score per activity.
func (c *cohort) step(spec types.Spec, active bool, inLeak bool, epoch types.Epoch) {
	if !c.inSet || c.count == 0 {
		return
	}
	if inLeak || (spec.ResidualPenalties && c.score > 0) {
		penalty := types.Gwei(c.score * uint64(c.stake) / spec.InactivityPenaltyQuotient)
		c.stake = c.stake.SaturatingSub(penalty)
	}
	if active {
		if c.score >= spec.InactivityScoreRecovery {
			c.score -= spec.InactivityScoreRecovery
		} else {
			c.score = 0
		}
	} else {
		c.score += spec.InactivityScoreBias
	}
	if !inLeak {
		if c.score >= spec.InactivityScoreFlatRecovery {
			c.score -= spec.InactivityScoreFlatRecovery
		} else {
			c.score = 0
		}
	}
	if c.stake <= spec.EjectionBalance {
		c.inSet = false
		c.exited = epoch
	}
}

// LeakSim is the aggregate two-branch inactivity-leak simulation.
type LeakSim struct {
	// Spec holds protocol constants (paper values by default).
	Spec types.Spec
	// N is the total validator count used to size cohorts.
	N int
	// P0 is the proportion of honest validators active on branch A.
	P0 float64
	// Beta0 is the initial Byzantine stake proportion (< 1/3).
	Beta0 float64
	// Mode is the Byzantine strategy.
	Mode ByzMode
	// DelayFinalization is Scenario 5.2.3: even after the branch quorum
	// returns, the Byzantine validators refuse to stay active two
	// consecutive epochs, so nothing finalizes and the leak keeps
	// draining honest inactive validators until they are ejected — the
	// move that pushes the Byzantine proportion past 1/3.
	DelayFinalization bool
	// EndLeakAtEpoch, when nonzero, force-ends the leak on both branches
	// at the given epoch (the Byzantine validators finalize then). With
	// Spec.ResidualPenalties set, this expresses the paper's footnote 12
	// corner case: finalize just before the honest inactive validators'
	// ejection and let their accumulated scores finish the job while the
	// Byzantine validators bleed much less.
	EndLeakAtEpoch types.Epoch
}

// BranchTrace samples one branch's state at an epoch.
type BranchTrace struct {
	Epoch          types.Epoch
	ActiveRatio    float64
	ByzProportion  float64
	ActiveStake    types.Gwei
	InactiveStake  types.Gwei
	ByzStake       types.Gwei
	InactiveInSet  bool
	QuorumRegained bool
}

// BranchResult reports one branch's outcome.
type BranchResult struct {
	// ThresholdEpoch is the first epoch with a 2/3 active-stake quorum
	// (0 = never within the horizon).
	ThresholdEpoch types.Epoch
	// EjectionEpoch is when the branch ejected its inactive honest
	// validators (0 = never).
	EjectionEpoch types.Epoch
	// PeakByzProportion is the maximum Byzantine stake proportion
	// observed on the branch.
	PeakByzProportion float64
	// PeakByzEpoch is when the peak occurred.
	PeakByzEpoch types.Epoch
	// Trace holds sampled states (every SampleEvery epochs).
	Trace []BranchTrace
}

// Result reports a LeakSim run.
type Result struct {
	A, B BranchResult
	// ConflictEpoch is when conflicting finalization is complete: one
	// epoch after the slower branch regains its quorum (0 = not within
	// the horizon).
	ConflictEpoch types.Epoch
	// CrossedOneThird reports whether the Byzantine proportion exceeded
	// 1/3 on both branches (Scenario 5.2.3's outcome).
	CrossedOneThird bool
}

// branch holds one branch's cohorts. Honest "active" validators on a branch
// are the "inactive" ones of the other branch.
type branch struct {
	active   cohort // honest, always active on this branch
	inactive cohort // honest, never active on this branch
	byz      cohort // Byzantine, activity per mode
}

func (b *branch) totals() (active, total types.Gwei) {
	act := b.active.total() + b.byz.total()
	tot := act + b.inactive.total()
	return act, tot
}

// Run simulates up to maxEpochs epochs of leak (epoch 0 = leak start) with
// samples every sampleEvery epochs (0 disables tracing).
func (l LeakSim) Run(maxEpochs int, sampleEvery int) (Result, error) {
	return l.RunContext(context.Background(), maxEpochs, sampleEvery)
}

// RunContext is Run with cooperative cancellation: the epoch loop checks
// ctx every cancelCheckEvery epochs and returns ctx.Err() once cancelled.
func (l LeakSim) RunContext(ctx context.Context, maxEpochs int, sampleEvery int) (Result, error) {
	if l.N <= 0 || l.P0 < 0 || l.P0 > 1 || l.Beta0 < 0 || l.Beta0 >= 1 {
		return Result{}, fmt.Errorf("%w: %+v", ErrBadParams, l)
	}
	if l.Mode == ByzAbsent && l.Beta0 != 0 {
		return Result{}, fmt.Errorf("%w: honest-only scenario with beta0=%v", ErrBadParams, l.Beta0)
	}
	spec := l.Spec
	if spec.SlotsPerEpoch == 0 {
		spec = types.DefaultSpec()
	}

	nByz := uint64(math.Round(float64(l.N) * l.Beta0))
	nHonest := uint64(l.N) - nByz
	nA := uint64(math.Round(float64(nHonest) * l.P0))
	nB := nHonest - nA

	mk := func(count uint64) cohort {
		return cohort{count: count, stake: spec.MaxEffectiveBalance, inSet: true, exited: types.FarFutureEpoch}
	}
	branches := [2]branch{
		{active: mk(nA), inactive: mk(nB), byz: mk(nByz)},
		{active: mk(nB), inactive: mk(nA), byz: mk(nByz)},
	}

	var res Result
	results := [2]*BranchResult{&res.A, &res.B}
	crossed := [2]bool{}

	for epoch := types.Epoch(1); epoch <= types.Epoch(maxEpochs); epoch++ {
		if uint64(epoch)%cancelCheckEvery == 1 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		for i := range branches {
			br := &branches[i]
			out := results[i]

			// Byzantine activity on this branch this epoch.
			byzActive := false
			switch l.Mode {
			case ByzDoubleVote:
				byzActive = true
			case ByzSemiActive:
				byzActive = uint64(epoch)%2 == uint64(i)
			}

			// The leak on a branch lasts until it regains a quorum
			// AND someone finalizes; under DelayFinalization the
			// Byzantine validators withhold finalization until the
			// honest inactive validators are ejected; under
			// EndLeakAtEpoch they finalize at a chosen moment.
			inLeak := out.ThresholdEpoch == 0 ||
				(l.DelayFinalization && br.inactive.inSet)
			if l.EndLeakAtEpoch != 0 && epoch >= l.EndLeakAtEpoch {
				inLeak = false
			}

			br.active.step(spec, true, inLeak, epoch)
			br.inactive.step(spec, false, inLeak, epoch)
			if br.byz.count > 0 {
				br.byz.step(spec, byzActive, inLeak, epoch)
			}
			if !br.inactive.inSet && out.EjectionEpoch == 0 {
				out.EjectionEpoch = epoch
			}

			act, tot := br.totals()
			ratio := 0.0
			if tot > 0 {
				ratio = float64(act) / float64(tot)
			}
			byzProp := 0.0
			if tot > 0 {
				byzProp = float64(br.byz.total()) / float64(tot)
			}
			if byzProp > out.PeakByzProportion {
				out.PeakByzProportion = byzProp
				out.PeakByzEpoch = epoch
			}
			if byzProp > 1.0/3.0 {
				crossed[i] = true
			}
			if out.ThresholdEpoch == 0 && ratio > 2.0/3.0 {
				out.ThresholdEpoch = epoch
			}
			if sampleEvery > 0 && uint64(epoch)%uint64(sampleEvery) == 0 {
				out.Trace = append(out.Trace, BranchTrace{
					Epoch:          epoch,
					ActiveRatio:    ratio,
					ByzProportion:  byzProp,
					ActiveStake:    br.active.total(),
					InactiveStake:  br.inactive.total(),
					ByzStake:       br.byz.total(),
					InactiveInSet:  br.inactive.inSet,
					QuorumRegained: out.ThresholdEpoch != 0,
				})
			}
		}
		if res.A.ThresholdEpoch != 0 && res.B.ThresholdEpoch != 0 && res.ConflictEpoch == 0 {
			slower := res.A.ThresholdEpoch
			if res.B.ThresholdEpoch > slower {
				slower = res.B.ThresholdEpoch
			}
			res.ConflictEpoch = slower + 1
		}
	}
	res.CrossedOneThird = crossed[0] && crossed[1]
	return res, nil
}
