package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/types"
)

// TestLeakSimRunContextCancel: a cancelled context aborts the epoch loop
// promptly with the context's error, and a background context leaves the
// result identical to the plain Run path.
func TestLeakSimRunContextCancel(t *testing.T) {
	ls := LeakSim{N: 10000, P0: 0.5, Beta0: 0.2, Mode: ByzDoubleVote}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := ls.RunContext(ctx, 1_000_000, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("cancelled run took %v, want prompt return", d)
	}

	plain, err := ls.Run(2000, 0)
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := ls.RunContext(context.Background(), 2000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plain.A.ThresholdEpoch != viaCtx.A.ThresholdEpoch || plain.ConflictEpoch != viaCtx.ConflictEpoch {
		t.Errorf("RunContext(Background) diverges from Run: %+v vs %+v", viaCtx, plain)
	}
}

// TestBounceMCRunContextCancel mirrors the LeakSim check for the
// per-validator Monte-Carlo, including the ExceedProbability path.
func TestBounceMCRunContextCancel(t *testing.T) {
	mc := BounceMC{NHonest: 200, Beta0: 0.33, P0: 0.5, Seed: 1}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, _, err := mc.RunContext(ctx, 1_000_000, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("cancelled run took %v, want prompt return", d)
	}
	if _, err := mc.ExceedProbabilityContext(ctx, []types.Epoch{1000}, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExceedProbabilityContext err = %v, want context.Canceled", err)
	}
}
