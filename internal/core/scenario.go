package core

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/types"
)

// Summary pairs a scenario's analytic prediction (the paper's continuous
// model, anchored like the paper anchors it) with the exact integer
// simulation outcome, for Table 1 and the CLI reports.
type Summary struct {
	// ID is the paper's section number (e.g. "5.2.1").
	ID string
	// Name describes the scenario.
	Name string
	// Outcome is the paper's Table 1 outcome line.
	Outcome string
	// P0 and Beta0 are the scenario parameters.
	P0, Beta0 float64
	// AnalyticEpoch is the continuous model's conflicting-finalization
	// epoch (or threshold-crossing epoch), paper-anchored.
	AnalyticEpoch float64
	// SimEpoch is the integer simulation's corresponding epoch.
	SimEpoch types.Epoch
	// PeakByzProportion is the simulated maximum Byzantine proportion
	// (Scenarios 5.2.3, 5.3).
	PeakByzProportion float64
	// CrossedOneThird reports whether the simulated Byzantine proportion
	// exceeded 1/3 (Scenarios 5.2.3, 5.3).
	CrossedOneThird bool
}

// String renders the summary as one report line.
func (s Summary) String() string {
	return fmt.Sprintf("%-6s %-34s p0=%.2f beta0=%.4f analytic=%.0f sim=%d outcome=%q",
		s.ID, s.Name, s.P0, s.Beta0, s.AnalyticEpoch, s.SimEpoch, s.Outcome)
}

// defaultHorizon bounds full-scale scenario runs; the paper's slowest
// outcome lands at 4686, and semi-active ejection at 7653.
const defaultHorizon = 9000

// scenarioN is the validator-set size used by the aggregate runs; results
// are proportion-driven, so any reasonably large N reproduces the paper.
const scenarioN = 10000

// Scenario51 runs the honest-only partition scenario at paper scale.
func Scenario51(p0 float64) (Summary, error) {
	params := analytic.PaperParams()
	bc, err := params.ConflictingFinalization(analytic.HonestOnly, p0, 0)
	if err != nil {
		return Summary{}, fmt.Errorf("core: scenario 5.1: %w", err)
	}
	sim := LeakSim{N: scenarioN, P0: p0, Mode: ByzAbsent}
	res, err := sim.Run(defaultHorizon, 0)
	if err != nil {
		return Summary{}, fmt.Errorf("core: scenario 5.1: %w", err)
	}
	return Summary{
		ID:            "5.1",
		Name:          "All honest, lasting partition",
		Outcome:       "2 finalized branches",
		P0:            p0,
		AnalyticEpoch: bc.ConflictEpoch,
		SimEpoch:      res.ConflictEpoch,
	}, nil
}

// Scenario521 runs the slashable double-voting scenario at paper scale.
func Scenario521(p0, beta0 float64) (Summary, error) {
	params := analytic.PaperParams()
	bc, err := params.ConflictingFinalization(analytic.WithSlashing, p0, beta0)
	if err != nil {
		return Summary{}, fmt.Errorf("core: scenario 5.2.1: %w", err)
	}
	sim := LeakSim{N: scenarioN, P0: p0, Beta0: beta0, Mode: ByzDoubleVote}
	res, err := sim.Run(defaultHorizon, 0)
	if err != nil {
		return Summary{}, fmt.Errorf("core: scenario 5.2.1: %w", err)
	}
	return Summary{
		ID:            "5.2.1",
		Name:          "Byzantine double vote (slashable)",
		Outcome:       "2 finalized branches",
		P0:            p0,
		Beta0:         beta0,
		AnalyticEpoch: bc.ConflictEpoch,
		SimEpoch:      res.ConflictEpoch,
	}, nil
}

// Scenario522 runs the non-slashable semi-active scenario at paper scale.
func Scenario522(p0, beta0 float64) (Summary, error) {
	params := analytic.PaperParams()
	bc, err := params.ConflictingFinalization(analytic.WithoutSlashing, p0, beta0)
	if err != nil {
		return Summary{}, fmt.Errorf("core: scenario 5.2.2: %w", err)
	}
	sim := LeakSim{N: scenarioN, P0: p0, Beta0: beta0, Mode: ByzSemiActive}
	res, err := sim.Run(defaultHorizon, 0)
	if err != nil {
		return Summary{}, fmt.Errorf("core: scenario 5.2.2: %w", err)
	}
	return Summary{
		ID:            "5.2.2",
		Name:          "Byzantine semi-active (non-slashable)",
		Outcome:       "2 finalized branches",
		P0:            p0,
		Beta0:         beta0,
		AnalyticEpoch: bc.ConflictEpoch,
		SimEpoch:      res.ConflictEpoch,
	}, nil
}

// Scenario523 runs the over-one-third scenario at paper scale: semi-active
// Byzantine validators delay finalization until the honest inactive
// validators are ejected.
func Scenario523(p0, beta0 float64) (Summary, error) {
	params := analytic.PaperParams()
	sim := LeakSim{N: scenarioN, P0: p0, Beta0: beta0, Mode: ByzSemiActive, DelayFinalization: true}
	res, err := sim.Run(defaultHorizon, 0)
	if err != nil {
		return Summary{}, fmt.Errorf("core: scenario 5.2.3: %w", err)
	}
	peak := res.A.PeakByzProportion
	epoch := res.A.PeakByzEpoch
	if res.B.PeakByzProportion > peak {
		peak, epoch = res.B.PeakByzProportion, res.B.PeakByzEpoch
	}
	return Summary{
		ID:                "5.2.3",
		Name:              "Byzantine delay finalization",
		Outcome:           "beta > 1/3",
		P0:                p0,
		Beta0:             beta0,
		AnalyticEpoch:     params.EjectionEpoch,
		SimEpoch:          epoch,
		PeakByzProportion: peak,
		CrossedOneThird:   res.CrossedOneThird,
	}, nil
}

// Scenario523Corner runs the paper's footnote 12 corner case under the
// production-spec residual-penalty rule: the Byzantine validators finalize
// `lead` epochs BEFORE the honest inactive validators would be ejected.
// The leak ends, but the inactive validators' huge accumulated scores keep
// draining them (scores decay only 16 per epoch) until they are ejected
// anyway, while the semi-active Byzantine validators' much smaller scores
// cost them little — "Byzantine validators could potentially eject honest
// inactive participants while incurring fewer penalties themselves".
func Scenario523Corner(p0, beta0 float64, lead types.Epoch) (Summary, error) {
	// First find the ejection epoch under the plain 5.2.3 run.
	probe := LeakSim{N: scenarioN, P0: p0, Beta0: beta0, Mode: ByzSemiActive, DelayFinalization: true}
	probeRes, err := probe.Run(defaultHorizon, 0)
	if err != nil {
		return Summary{}, fmt.Errorf("core: scenario 5.2.3 corner probe: %w", err)
	}
	ejection := probeRes.A.EjectionEpoch
	if ejection == 0 || ejection <= lead {
		return Summary{}, fmt.Errorf("%w: no ejection within horizon (lead %d)", ErrBadParams, lead)
	}

	spec := types.DefaultSpec()
	spec.ResidualPenalties = true
	sim := LeakSim{
		Spec: spec, N: scenarioN, P0: p0, Beta0: beta0,
		Mode: ByzSemiActive, DelayFinalization: true,
		EndLeakAtEpoch: ejection - lead,
	}
	res, err := sim.Run(defaultHorizon, 0)
	if err != nil {
		return Summary{}, fmt.Errorf("core: scenario 5.2.3 corner: %w", err)
	}
	peak := res.A.PeakByzProportion
	epoch := res.A.PeakByzEpoch
	if res.B.PeakByzProportion > peak {
		peak, epoch = res.B.PeakByzProportion, res.B.PeakByzEpoch
	}
	return Summary{
		ID:                "5.2.3c",
		Name:              "Finalize just before ejection (fn. 12)",
		Outcome:           "inactive ejected post-finalization",
		P0:                p0,
		Beta0:             beta0,
		AnalyticEpoch:     float64(ejection),
		SimEpoch:          epoch,
		PeakByzProportion: peak,
		CrossedOneThird:   res.CrossedOneThird,
	}, nil
}

// Scenario53 runs the probabilistic bouncing scenario: the Monte-Carlo
// estimate of the Equation 24 probability at the reference epoch 4000,
// next to the analytic value.
func Scenario53(p0, beta0 float64, seed int64) (Summary, error) {
	const refEpoch = 4000
	mc := BounceMC{NHonest: 500, Beta0: beta0, P0: p0, Seed: seed}
	probs, err := mc.ExceedProbability([]types.Epoch{refEpoch}, 3)
	if err != nil {
		return Summary{}, fmt.Errorf("core: scenario 5.3: %w", err)
	}
	model := analytic.BounceModel{P0: p0}
	prob := model.ExceedProbability(refEpoch, beta0, analytic.PaperParams())
	return Summary{
		ID:                "5.3",
		Name:              "Probabilistic bouncing attack",
		Outcome:           "beta > 1/3 probably",
		P0:                p0,
		Beta0:             beta0,
		AnalyticEpoch:     prob * 100, // Equation 24 at epoch 4000, percent
		SimEpoch:          refEpoch,
		CrossedOneThird:   probs[0] > 0,
		PeakByzProportion: probs[0],
	}, nil
}

// Table1 reproduces the paper's Table 1: all five scenarios with their
// outcomes, run at the paper's reference parameters.
func Table1(seed int64) ([]Summary, error) {
	out := make([]Summary, 0, 5)
	s1, err := Scenario51(0.5)
	if err != nil {
		return nil, err
	}
	out = append(out, s1)
	s21, err := Scenario521(0.5, 0.2)
	if err != nil {
		return nil, err
	}
	out = append(out, s21)
	s22, err := Scenario522(0.5, 0.2)
	if err != nil {
		return nil, err
	}
	out = append(out, s22)
	s23, err := Scenario523(0.5, 0.25)
	if err != nil {
		return nil, err
	}
	out = append(out, s23)
	s3, err := Scenario53(0.5, 0.33, seed)
	if err != nil {
		return nil, err
	}
	out = append(out, s3)
	return out, nil
}
