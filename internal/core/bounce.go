package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/types"
)

// BounceMC is the per-validator Monte-Carlo of the probabilistic bouncing
// attack with the inactivity leak (paper Section 5.3). Each epoch, every
// honest validator lands on branch A with probability P0 and on branch B
// otherwise (the Figure 8 Markov chain); Byzantine validators are
// semi-active on each branch (active at alternating epochs). Both branches
// keep their own ledgers with the exact integer score/penalty arithmetic,
// including the score floor at zero that the paper's closed-form analysis
// deliberately ignores.
type BounceMC struct {
	// Spec holds protocol constants.
	Spec types.Spec
	// NHonest is the number of honest validators tracked individually.
	NHonest int
	// Beta0 is the initial Byzantine stake proportion.
	Beta0 float64
	// P0 is the per-epoch probability of an honest validator being
	// active on branch A.
	P0 float64
	// Seed drives the placement coins.
	Seed int64
	// UnboundedScores removes the score floor at zero, matching the
	// paper's analytical simplification exactly (an ablation knob).
	UnboundedScores bool
}

// BouncePoint samples the attack state at one epoch.
type BouncePoint struct {
	Epoch types.Epoch
	// BetaA and BetaB are the aggregate Byzantine stake proportions on
	// each branch's ledger.
	BetaA, BetaB float64
	// FracBelowA is the fraction of honest validators whose branch-A
	// stake satisfies the paper's Equation 23 crossing condition
	// s < 2 beta0/(1-beta0) * sB (ejected validators count as below:
	// their stake collapsed to the Equation 20 atom). This is the
	// Monte-Carlo counterpart of the Equation 24 probability.
	FracBelowA float64
	// MeanHonestStakeA is the mean honest stake (ETH) on branch A.
	MeanHonestStakeA float64
	// ByzStake is the per-Byzantine-validator stake in ETH (semi-active
	// law).
	ByzStake float64
	// ByzEjected reports whether the Byzantine validators left the set.
	ByzEjected bool
}

// honestState is one honest validator's per-branch ledger entry.
type honestState struct {
	stake [2]types.Gwei
	score [2]int64
	inSet [2]bool
}

// Run simulates one attack trajectory for maxEpochs epochs, sampling every
// sampleEvery epochs (plus the epoch where beta first exceeds 1/3, if any).
// It returns the samples and the first epoch at which the Byzantine
// proportion exceeded 1/3 on either branch (0 = never).
func (b BounceMC) Run(maxEpochs, sampleEvery int) ([]BouncePoint, types.Epoch, error) {
	return b.RunContext(context.Background(), maxEpochs, sampleEvery)
}

// RunContext is Run with cooperative cancellation: the epoch loop checks
// ctx every cancelCheckEvery epochs and returns ctx.Err() once cancelled.
func (b BounceMC) RunContext(ctx context.Context, maxEpochs, sampleEvery int) ([]BouncePoint, types.Epoch, error) {
	if b.NHonest <= 0 || b.P0 < 0 || b.P0 > 1 || b.Beta0 < 0 || b.Beta0 >= 1 {
		return nil, 0, fmt.Errorf("%w: %+v", ErrBadParams, b)
	}
	spec := b.Spec
	if spec.SlotsPerEpoch == 0 {
		spec = types.DefaultSpec()
	}
	rng := rand.New(rand.NewSource(b.Seed))

	// Byzantine cohort: count chosen so that the initial proportion is
	// beta0 given NHonest honest validators. Rounded, not truncated: the
	// Equation 23 threshold is sensitive to the count at the sub-percent
	// level, which matters because the honest stake dispersion is itself
	// sub-percent.
	nByz := uint64(math.Round(float64(b.NHonest) * b.Beta0 / (1 - b.Beta0)))
	byz := [2]cohort{}
	for i := range byz {
		byz[i] = cohort{count: nByz, stake: spec.MaxEffectiveBalance, inSet: true}
	}

	honest := make([]honestState, b.NHonest)
	for i := range honest {
		honest[i] = honestState{
			stake: [2]types.Gwei{spec.MaxEffectiveBalance, spec.MaxEffectiveBalance},
			inSet: [2]bool{true, true},
		}
	}

	var samples []BouncePoint
	var crossedAt types.Epoch

	measure := func(epoch types.Epoch) BouncePoint {
		var pt BouncePoint
		pt.Epoch = epoch
		var honestTot [2]types.Gwei
		var meanA float64
		var countA, below int
		byzInSet := byz[0].inSet
		// Equation 23 crossing condition for a single honest validator
		// i on branch A: beta(t) > 1/3 <=> nHonest*s_i < 2*nByz*sB.
		// Ejected validators have s_i = 0 (the Equation 20 atom) and
		// always satisfy it. The comparison stays in exact integers;
		// the magnitudes (<= 2^45 Gwei times counts <= 2^20) cannot
		// overflow uint64.
		rhs := 2 * nByz * uint64(byz[0].stake)
		for i := range honest {
			h := &honest[i]
			for br := 0; br < 2; br++ {
				if h.inSet[br] {
					honestTot[br] += h.stake[br]
				}
			}
			si := uint64(0)
			if h.inSet[0] {
				si = uint64(h.stake[0])
				meanA += h.stake[0].ETH()
				countA++
			}
			if byzInSet && uint64(b.NHonest)*si < rhs {
				below++
			}
		}
		if byzInSet {
			pt.FracBelowA = float64(below) / float64(b.NHonest)
		}
		if countA > 0 {
			pt.MeanHonestStakeA = meanA / float64(countA)
		}
		byzTot := [2]types.Gwei{byz[0].total(), byz[1].total()}
		if t := honestTot[0] + byzTot[0]; t > 0 {
			pt.BetaA = float64(byzTot[0]) / float64(t)
		}
		if t := honestTot[1] + byzTot[1]; t > 0 {
			pt.BetaB = float64(byzTot[1]) / float64(t)
		}
		pt.ByzStake = byz[0].stake.ETH()
		pt.ByzEjected = !byz[0].inSet
		return pt
	}

	for epoch := types.Epoch(1); epoch <= types.Epoch(maxEpochs); epoch++ {
		if uint64(epoch)%cancelCheckEvery == 1 {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
		}
		// Byzantine semi-activity: active on branch (epoch mod 2).
		for br := 0; br < 2; br++ {
			byz[br].step(spec, uint64(epoch)%2 == uint64(br), true, epoch)
		}
		// Honest placement coin and per-branch integer accounting.
		for i := range honest {
			onA := rng.Float64() < b.P0
			for br := 0; br < 2; br++ {
				h := &honest[i]
				if !h.inSet[br] {
					continue
				}
				score := h.score[br]
				if score > 0 {
					penalty := types.Gwei(uint64(score) * uint64(h.stake[br]) / spec.InactivityPenaltyQuotient)
					h.stake[br] = h.stake[br].SaturatingSub(penalty)
				}
				active := (br == 0) == onA
				if active {
					score -= int64(spec.InactivityScoreRecovery)
				} else {
					score += int64(spec.InactivityScoreBias)
				}
				if !b.UnboundedScores && score < 0 {
					score = 0
				}
				h.score[br] = score
				if h.stake[br] <= spec.EjectionBalance {
					h.inSet[br] = false
				}
			}
		}

		pt := measure(epoch)
		if crossedAt == 0 && (pt.BetaA > 1.0/3.0 || pt.BetaB > 1.0/3.0) {
			crossedAt = epoch
			samples = append(samples, pt)
		} else if sampleEvery > 0 && uint64(epoch)%uint64(sampleEvery) == 0 {
			samples = append(samples, pt)
		}
	}
	return samples, crossedAt, nil
}

// ExceedProbability estimates the paper's Equation 24 probability — that a
// randomly placed honest validator's stake has fallen far enough for the
// Byzantine proportion proxy to exceed 1/3 — at the given epochs, averaged
// over `runs` independent trajectories (Figure 10's Monte-Carlo
// counterpart).
func (b BounceMC) ExceedProbability(epochs []types.Epoch, runs int) ([]float64, error) {
	return b.ExceedProbabilityContext(context.Background(), epochs, runs)
}

// ExceedProbabilityContext is ExceedProbability with cooperative
// cancellation threaded into every underlying trajectory.
func (b BounceMC) ExceedProbabilityContext(ctx context.Context, epochs []types.Epoch, runs int) ([]float64, error) {
	if len(epochs) == 0 || runs <= 0 {
		return nil, fmt.Errorf("%w: no epochs or runs", ErrBadParams)
	}
	maxEpoch := epochs[0]
	for _, e := range epochs {
		if e > maxEpoch {
			maxEpoch = e
		}
	}
	sums := make([]float64, len(epochs))
	for r := 0; r < runs; r++ {
		mc := b
		mc.Seed = b.Seed + int64(r)*7919
		samples, _, err := mc.RunContext(ctx, int(maxEpoch), 1)
		if err != nil {
			return nil, err
		}
		byEpoch := make(map[types.Epoch]BouncePoint, len(samples))
		for _, s := range samples {
			byEpoch[s.Epoch] = s
		}
		for i, e := range epochs {
			if s, ok := byEpoch[e]; ok {
				sums[i] += s.FracBelowA
			}
		}
	}
	out := make([]float64, len(epochs))
	for i, s := range sums {
		out[i] = s / float64(runs)
	}
	return out, nil
}
