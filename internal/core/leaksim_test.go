package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/analytic"
	"repro/internal/types"
)

func TestLeakSimRejectsBadParams(t *testing.T) {
	cases := []LeakSim{
		{N: 0, P0: 0.5},
		{N: 100, P0: -0.1},
		{N: 100, P0: 1.5},
		{N: 100, P0: 0.5, Beta0: -0.2, Mode: ByzDoubleVote},
		{N: 100, P0: 0.5, Beta0: 1.0, Mode: ByzDoubleVote},
		{N: 100, P0: 0.5, Beta0: 0.2, Mode: ByzAbsent},
	}
	for i, c := range cases {
		if _, err := c.Run(10, 0); !errors.Is(err, ErrBadParams) {
			t.Errorf("case %d: want ErrBadParams, got %v", i, err)
		}
	}
}

// TestLeakSimTable2 reproduces Table 2 with the exact integer engine. The
// beta0 = 0 row lands on the endogenous ejection epoch 4661 (the paper
// anchors its tables at 4685; see DESIGN.md); the Byzantine rows match the
// paper to within one epoch of discretization.
func TestLeakSimTable2(t *testing.T) {
	rows := []struct {
		beta0 float64
		mode  ByzMode
		want  types.Epoch
		tol   types.Epoch
	}{
		{0, ByzAbsent, 4661, 1},
		{0.1, ByzDoubleVote, 4066, 1},
		{0.15, ByzDoubleVote, 3622, 1},
		{0.2, ByzDoubleVote, 3107, 1},
		{0.33, ByzDoubleVote, 502, 1},
	}
	for _, row := range rows {
		sim := LeakSim{N: 10000, P0: 0.5, Beta0: row.beta0, Mode: row.mode}
		res, err := sim.Run(9000, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := res.B.ThresholdEpoch
		if got < row.want-row.tol || got > row.want+row.tol {
			t.Errorf("Table 2 beta0=%v: threshold epoch = %d, want %d +/- %d",
				row.beta0, got, row.want, row.tol)
		}
		if res.ConflictEpoch != 0 && res.ConflictEpoch != got+1 {
			// Branch B is the slower one in a symmetric split only
			// up to ties; the conflict epoch must be slower+1.
			slower := res.A.ThresholdEpoch
			if res.B.ThresholdEpoch > slower {
				slower = res.B.ThresholdEpoch
			}
			if res.ConflictEpoch != slower+1 {
				t.Errorf("beta0=%v: conflict epoch %d != slower threshold %d + 1",
					row.beta0, res.ConflictEpoch, slower)
			}
		}
	}
}

// TestLeakSimTable3 checks the semi-active rows against the numeric
// solution of Equation 10.
func TestLeakSimTable3(t *testing.T) {
	params := analytic.PaperParams()
	for _, beta0 := range []float64{0.1, 0.15, 0.2, 0.33} {
		want, err := params.ConflictEpochSemiActive(0.5, beta0)
		if err != nil {
			t.Fatal(err)
		}
		sim := LeakSim{N: 10000, P0: 0.5, Beta0: beta0, Mode: ByzSemiActive}
		res, err := sim.Run(9000, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(res.B.ThresholdEpoch)
		if math.Abs(got-want) > 3 {
			t.Errorf("Table 3 beta0=%v: integer sim %v vs Equation 10 root %v", beta0, got, want)
		}
	}
}

// TestLeakSimSymmetricSplitTie: with p0=0.5 both branches regain the quorum
// at the same epoch.
func TestLeakSimSymmetricSplitTie(t *testing.T) {
	sim := LeakSim{N: 10000, P0: 0.5, Mode: ByzAbsent}
	res, err := sim.Run(5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.A.ThresholdEpoch != res.B.ThresholdEpoch {
		t.Errorf("symmetric split thresholds differ: %d vs %d",
			res.A.ThresholdEpoch, res.B.ThresholdEpoch)
	}
}

// TestLeakSimAsymmetricSplit reproduces Figure 3's p0=0.6 curve: the
// majority branch regains its quorum around epoch 3107 (before ejection),
// the minority branch only at ejection.
func TestLeakSimAsymmetricSplit(t *testing.T) {
	sim := LeakSim{N: 10000, P0: 0.6, Mode: ByzAbsent}
	res, err := sim.Run(5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.A.ThresholdEpoch; got < 3106 || got > 3109 {
		t.Errorf("p0=0.6 branch threshold = %d, want ~3107 (Equation 6)", got)
	}
	if res.B.ThresholdEpoch != res.B.EjectionEpoch {
		t.Errorf("minority branch must regain quorum via ejection: threshold %d, ejection %d",
			res.B.ThresholdEpoch, res.B.EjectionEpoch)
	}
}

// TestLeakSimRatioTraceMatchesEquation5 compares the sampled active-stake
// ratio with the continuous model of Equation 5 (Figure 3).
func TestLeakSimRatioTraceMatchesEquation5(t *testing.T) {
	p0 := 0.3
	sim := LeakSim{N: 10000, P0: p0, Mode: ByzAbsent}
	res, err := sim.Run(4000, 500)
	if err != nil {
		t.Fatal(err)
	}
	params := analytic.ContinuousParams()
	for _, tr := range res.A.Trace {
		want := params.ActiveRatioHonest(float64(tr.Epoch), p0)
		if math.Abs(tr.ActiveRatio-want) > 0.005 {
			t.Errorf("epoch %d: simulated ratio %v vs Equation 5 %v", tr.Epoch, tr.ActiveRatio, want)
		}
	}
	if len(res.A.Trace) != 8 {
		t.Errorf("trace samples = %d, want 8", len(res.A.Trace))
	}
}

// TestLeakSimScenario523Threshold reproduces the Figure 7 threshold with
// the integer engine: beta0 = 0.25 (above 0.2421) crosses 1/3 on both
// branches at the ejection epoch; beta0 = 0.23 does not.
func TestLeakSimScenario523Threshold(t *testing.T) {
	above := LeakSim{N: 10000, P0: 0.5, Beta0: 0.25, Mode: ByzSemiActive, DelayFinalization: true}
	res, err := above.Run(9000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CrossedOneThird {
		t.Errorf("beta0=0.25 must cross 1/3 (peak %v)", res.A.PeakByzProportion)
	}
	if res.A.PeakByzEpoch != res.A.EjectionEpoch {
		t.Errorf("peak at epoch %d, want the ejection epoch %d", res.A.PeakByzEpoch, res.A.EjectionEpoch)
	}
	// The peak value matches Equation 13 evaluated at the endogenous
	// ejection epoch.
	params := analytic.ContinuousParams()
	want := params.BetaMax(0.5, 0.25)
	if math.Abs(res.A.PeakByzProportion-want) > 0.005 {
		t.Errorf("peak proportion %v vs Equation 13 %v", res.A.PeakByzProportion, want)
	}

	below := LeakSim{N: 10000, P0: 0.5, Beta0: 0.23, Mode: ByzSemiActive, DelayFinalization: true}
	res, err = below.Run(9000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossedOneThird {
		t.Errorf("beta0=0.23 must not cross 1/3 (peak %v)", res.A.PeakByzProportion)
	}
}

// TestLeakSimDoubleVoteFasterThanSemiActive (Figure 6 ordering).
func TestLeakSimDoubleVoteFasterThanSemiActive(t *testing.T) {
	for _, beta0 := range []float64{0.1, 0.2, 0.3} {
		dv := LeakSim{N: 10000, P0: 0.5, Beta0: beta0, Mode: ByzDoubleVote}
		sa := LeakSim{N: 10000, P0: 0.5, Beta0: beta0, Mode: ByzSemiActive}
		rd, err := dv.Run(9000, 0)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := sa.Run(9000, 0)
		if err != nil {
			t.Fatal(err)
		}
		if rd.B.ThresholdEpoch >= rs.B.ThresholdEpoch {
			t.Errorf("beta0=%v: double vote (%d) must beat semi-active (%d)",
				beta0, rd.B.ThresholdEpoch, rs.B.ThresholdEpoch)
		}
	}
}

func TestLeakSimHorizonTooShort(t *testing.T) {
	sim := LeakSim{N: 1000, P0: 0.5, Mode: ByzAbsent}
	res, err := sim.Run(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConflictEpoch != 0 || res.A.ThresholdEpoch != 0 {
		t.Error("100-epoch horizon must not reach any threshold")
	}
}

// TestLeakSimThresholdMonotoneInBeta0Property: more Byzantine stake never
// delays the quorum's return, for either behavior (the integer engine's
// counterpart of the analytic monotonicity property).
func TestLeakSimThresholdMonotoneInBeta0Property(t *testing.T) {
	f := func(rawA, rawB uint8, modeBit bool) bool {
		b1 := 0.32 * float64(rawA) / 255
		b2 := 0.32 * float64(rawB) / 255
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		mode := ByzDoubleVote
		if modeBit {
			mode = ByzSemiActive
		}
		run := func(beta0 float64) types.Epoch {
			sim := LeakSim{N: 1000, P0: 0.5, Beta0: beta0, Mode: mode}
			res, err := sim.Run(5000, 0)
			if err != nil {
				return 0
			}
			if res.B.ThresholdEpoch == 0 {
				return 5001
			}
			return res.B.ThresholdEpoch
		}
		return run(b2) <= run(b1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestLeakSimTraceStakesConserveOrdering: at every sampled epoch, active
// stake >= byz stake ordering via the trace is internally consistent:
// ratios and proportions derive from the same aggregates.
func TestLeakSimTraceInternalConsistency(t *testing.T) {
	sim := LeakSim{N: 5000, P0: 0.5, Beta0: 0.25, Mode: ByzSemiActive, DelayFinalization: true}
	res, err := sim.Run(5000, 250)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.A.Trace {
		total := tr.ActiveStake + tr.InactiveStake + tr.ByzStake
		if total == 0 {
			t.Fatalf("epoch %d: zero total", tr.Epoch)
		}
		wantRatio := float64(tr.ActiveStake+tr.ByzStake) / float64(total)
		if diff := tr.ActiveRatio - wantRatio; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("epoch %d: ratio %v vs derived %v", tr.Epoch, tr.ActiveRatio, wantRatio)
		}
		wantByz := float64(tr.ByzStake) / float64(total)
		if diff := tr.ByzProportion - wantByz; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("epoch %d: byz proportion %v vs derived %v", tr.Epoch, tr.ByzProportion, wantByz)
		}
	}
}

func TestByzModeString(t *testing.T) {
	for _, m := range []ByzMode{ByzAbsent, ByzDoubleVote, ByzSemiActive, ByzMode(9)} {
		if m.String() == "" {
			t.Errorf("mode %d renders empty", m)
		}
	}
}
