package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/analytic"
	"repro/internal/types"
)

func TestBounceMCRejectsBadParams(t *testing.T) {
	cases := []BounceMC{
		{NHonest: 0, P0: 0.5},
		{NHonest: 10, P0: -1},
		{NHonest: 10, P0: 0.5, Beta0: 1.0},
	}
	for i, c := range cases {
		if _, _, err := c.Run(10, 0); !errors.Is(err, ErrBadParams) {
			t.Errorf("case %d: want ErrBadParams, got %v", i, err)
		}
	}
	if _, err := (BounceMC{NHonest: 10, P0: 0.5}).ExceedProbability(nil, 5); !errors.Is(err, ErrBadParams) {
		t.Error("empty epoch list must be rejected")
	}
}

// TestBounceMCOneThirdGivesHalf pins the paper's key observation: at
// beta0 = 1/3 the Equation 24 probability is exactly 0.5 at every epoch,
// and the Monte-Carlo agrees.
func TestBounceMCOneThirdGivesHalf(t *testing.T) {
	mc := BounceMC{NHonest: 400, Beta0: 1.0 / 3.0, P0: 0.5, Seed: 11}
	probs, err := mc.ExceedProbability([]types.Epoch{1000, 2500, 4000}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range probs {
		if math.Abs(p-0.5) > 0.05 {
			t.Errorf("epoch index %d: P = %v, want ~0.5", i, p)
		}
	}
}

// TestBounceMCSmallBetaStaysZero: beta0 = 0.3 gives a negligible crossing
// probability through mid-leak, matching Figure 10's flat curve.
func TestBounceMCSmallBetaStaysZero(t *testing.T) {
	mc := BounceMC{NHonest: 300, Beta0: 0.3, P0: 0.5, Seed: 23}
	probs, err := mc.ExceedProbability([]types.Epoch{1000, 3000, 5000}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range probs {
		if p > 0.01 {
			t.Errorf("epoch index %d: P = %v, want ~0 for beta0 = 0.3", i, p)
		}
	}
}

// TestBounceMCMatchesEquation24Shape: for beta0 = 0.33 the Monte-Carlo
// probability rises with time and stays within the analytic model's
// neighborhood (the paper's CLT model is an approximation; we require
// qualitative agreement plus the late-epoch ordering).
func TestBounceMCMatchesEquation24Shape(t *testing.T) {
	mc := BounceMC{NHonest: 1000, Beta0: 0.33, P0: 0.5, Seed: 31}
	epochs := []types.Epoch{2000, 4000, 5500, 6500}
	probs, err := mc.ExceedProbability(epochs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(probs); i++ {
		if probs[i] < probs[i-1]-0.02 {
			t.Errorf("probability must rise over the leak: %v", probs)
		}
	}
	model := analytic.BounceModel{P0: 0.5}
	params := analytic.PaperParams()
	for i, e := range epochs {
		want := model.ExceedProbability(float64(e), 0.33, params)
		if math.Abs(probs[i]-want) > 0.15 {
			t.Errorf("epoch %d: MC %v vs Equation 24 %v (|diff| > 0.15)", e, probs[i], want)
		}
	}
	// By epoch 6500 the probability is substantial in both models.
	if probs[len(probs)-1] < 0.1 {
		t.Errorf("late-epoch probability %v, want > 0.1", probs[len(probs)-1])
	}
}

// TestBounceMCByzantineEjection: semi-active Byzantine validators are
// ejected at the law's crossing (~7611 endogenous; the paper quotes 7652
// from its 4685 anchor).
func TestBounceMCByzantineEjection(t *testing.T) {
	mc := BounceMC{NHonest: 100, Beta0: 0.25, P0: 0.5, Seed: 5}
	samples, _, err := mc.Run(7700, 100)
	if err != nil {
		t.Fatal(err)
	}
	var ejectedAt types.Epoch
	for _, s := range samples {
		if s.ByzEjected {
			ejectedAt = s.Epoch
			break
		}
	}
	if ejectedAt == 0 {
		t.Fatal("Byzantine validators never ejected")
	}
	want := analytic.SemiActiveEjectionCrossing()
	if math.Abs(float64(ejectedAt)-want) > 110 { // 100-epoch sampling + discretization
		t.Errorf("Byzantine ejection at %d, want ~%.0f", ejectedAt, want)
	}
}

// TestBounceMCFloorAblation: the real score floor (bounded at zero) makes
// honest validators leak at least as much as the paper's unbounded model,
// so the bounded crossing probability dominates the unbounded one — the
// direction the paper calls "conservatively estimating the loss of stake".
func TestBounceMCFloorAblation(t *testing.T) {
	epochs := []types.Epoch{3000, 5000}
	bounded := BounceMC{NHonest: 500, Beta0: 0.33, P0: 0.5, Seed: 7}
	unbounded := bounded
	unbounded.UnboundedScores = true
	pb, err := bounded.ExceedProbability(epochs, 4)
	if err != nil {
		t.Fatal(err)
	}
	pu, err := unbounded.ExceedProbability(epochs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range epochs {
		if pb[i] < pu[i]-0.02 {
			t.Errorf("epoch %d: bounded %v must not be below unbounded %v", epochs[i], pb[i], pu[i])
		}
	}
}

// TestBounceMCMeanTracksSemiActiveLaw: with p0=0.5 the mean honest stake
// follows the same decay as the Byzantine semi-active stake (both drift at
// +3/2 score per epoch).
func TestBounceMCMeanTracksSemiActiveLaw(t *testing.T) {
	mc := BounceMC{NHonest: 300, Beta0: 0.2, P0: 0.5, Seed: 13}
	samples, _, err := mc.Run(4000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		law := analytic.StakeSemiActive(float64(s.Epoch))
		if rel := math.Abs(s.MeanHonestStakeA-law) / law; rel > 0.01 {
			t.Errorf("epoch %d: mean honest stake %v vs semi-active law %v", s.Epoch, s.MeanHonestStakeA, law)
		}
	}
}

func TestBounceMCDeterministicPerSeed(t *testing.T) {
	a := BounceMC{NHonest: 100, Beta0: 0.3, P0: 0.5, Seed: 42}
	b := BounceMC{NHonest: 100, Beta0: 0.3, P0: 0.5, Seed: 42}
	sa, _, err := a.Run(500, 100)
	if err != nil {
		t.Fatal(err)
	}
	sb, _, err := b.Run(500, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sa) != len(sb) {
		t.Fatal("sample counts differ")
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, sa[i], sb[i])
		}
	}
}

func TestScenarioSummaries(t *testing.T) {
	s1, err := Scenario51(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s1.AnalyticEpoch != 4686 {
		t.Errorf("scenario 5.1 analytic epoch = %v, want 4686", s1.AnalyticEpoch)
	}
	if s1.SimEpoch != 4662 {
		t.Errorf("scenario 5.1 sim epoch = %v, want 4662 (endogenous ejection + 1)", s1.SimEpoch)
	}

	s21, err := Scenario521(0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if got := int(s21.SimEpoch); got < 3105 || got > 3110 {
		t.Errorf("scenario 5.2.1 sim epoch = %d, want ~3108", got)
	}

	s22, err := Scenario522(0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if s22.SimEpoch <= s21.SimEpoch {
		t.Error("semi-active conflict must be slower than double-vote conflict")
	}

	s23, err := Scenario523(0.5, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !s23.CrossedOneThird || s23.PeakByzProportion <= 1.0/3.0 {
		t.Errorf("scenario 5.2.3 must cross 1/3: %+v", s23)
	}

	s3, err := Scenario53(0.5, 1.0/3.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s3.PeakByzProportion-0.5) > 0.1 {
		t.Errorf("scenario 5.3 MC probability = %v, want ~0.5 at beta0=1/3", s3.PeakByzProportion)
	}
	if s1.String() == "" || s3.String() == "" {
		t.Error("summaries must render")
	}
}

// TestScenario523Corner pins the footnote 12 corner case: under the
// production-spec residual-penalty rule, Byzantine validators can finalize
// well before the ejection epoch and the honest inactive validators are
// ejected anyway — with the Byzantine peak proportion ABOVE the plain
// 5.2.3 value, because the Byzantine scores recover while the inactive
// scores keep draining. Under the paper's simplified model (penalties only
// during leaks) the same early finalization prevents the ejection
// entirely.
func TestScenario523Corner(t *testing.T) {
	plain, err := Scenario523(0.5, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, lead := range []types.Epoch{50, 500} {
		s, err := Scenario523Corner(0.5, 0.25, lead)
		if err != nil {
			t.Fatal(err)
		}
		if !s.CrossedOneThird {
			t.Errorf("lead %d: corner case must still cross 1/3 (peak %v)", lead, s.PeakByzProportion)
		}
		if s.PeakByzProportion < plain.PeakByzProportion-1e-9 {
			t.Errorf("lead %d: corner peak %v must not fall below plain 5.2.3 peak %v",
				lead, s.PeakByzProportion, plain.PeakByzProportion)
		}
	}

	// Control: with the paper's simplified penalty rule, ending the leak
	// 200 epochs early prevents ejection.
	sim := LeakSim{N: 10000, P0: 0.5, Beta0: 0.25, Mode: ByzSemiActive,
		DelayFinalization: true, EndLeakAtEpoch: 4461}
	res, err := sim.Run(9000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.A.EjectionEpoch != 0 {
		t.Errorf("paper-model early finalization must prevent ejection, got epoch %d", res.A.EjectionEpoch)
	}
	if res.CrossedOneThird {
		t.Error("paper-model early finalization must keep beta below 1/3")
	}

	// Degenerate lead rejected.
	if _, err := Scenario523Corner(0.5, 0.25, 99999); err == nil {
		t.Error("lead beyond the ejection epoch must error")
	}
}

// TestResidualPenaltiesSpec: the flag changes nothing while a leak runs and
// keeps draining scored validators after it ends.
func TestResidualPenaltiesSpec(t *testing.T) {
	spec := types.DefaultSpec()
	spec.ResidualPenalties = true
	withRes := LeakSim{Spec: spec, N: 1000, P0: 0.5, Mode: ByzAbsent}
	plain := LeakSim{N: 1000, P0: 0.5, Mode: ByzAbsent}
	a, err := withRes.Run(4000, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plain.Run(4000, 0)
	if err != nil {
		t.Fatal(err)
	}
	// During an uninterrupted leak the two rules coincide.
	if a.A.ThresholdEpoch != b.A.ThresholdEpoch {
		t.Errorf("residual penalties changed in-leak behavior: %d vs %d",
			a.A.ThresholdEpoch, b.A.ThresholdEpoch)
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Table 1 rows = %d, want 5", len(rows))
	}
	wantIDs := []string{"5.1", "5.2.1", "5.2.2", "5.2.3", "5.3"}
	for i, r := range rows {
		if r.ID != wantIDs[i] {
			t.Errorf("row %d: ID = %s, want %s", i, r.ID, wantIDs[i])
		}
		if r.Outcome == "" {
			t.Errorf("row %d: empty outcome", i)
		}
	}
}
