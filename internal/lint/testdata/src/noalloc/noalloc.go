// Package noalloc is a gasperlint test fixture. Each want
// expectation comment asserts a diagnostic substring on that line; unannotated
// functions are never checked.
package noalloc

import "fmt"

//gasper:noalloc
func Hot(dst []uint64, n int) []uint64 {
	m := make([]uint64, n) // want "make allocates"
	_ = m
	s := []uint64{1, 2} // want "slice literal allocates"
	_ = s
	_ = fmt.Sprintf("%d", n) // want "fmt.Sprintf boxes its operands"
	dst = append(dst, 1)     // caller-owned destination: amortized zero
	var other []uint64
	other = append(other, 2) // want "append to a non-caller-owned slice"
	return append(dst, other...)
}

//gasper:noalloc
func Str(a, b string) int {
	c := a + b      // want "string concatenation allocates"
	bs := []byte(a) // want "string conversion copies its payload"
	return len(c) + len(bs)
}

type pair struct{ a, b int }

//gasper:noalloc
func Escapes() *pair {
	m := map[int]int{} // want "map literal allocates"
	_ = m
	return &pair{1, 2} // want "&composite literal escapes to the heap"
}

//gasper:noalloc
func Spawn(ch chan int) {
	go func() { ch <- 1 }() // want "go statement allocates a goroutine" "closure may capture and escape"
}

//gasper:noalloc
func Waived() *int {
	return new(int) //gasper:alloc fixture: documented cold path
}

// cold is unannotated: allocations here are fine.
func cold() map[int]int { return map[int]int{} }
