// Package detsource is a gasperlint test fixture. Each want
// expectation comment asserts a diagnostic substring on that line.
package detsource

import (
	"math/rand"
	"time"
)

func clock() time.Duration {
	start := time.Now()      // want "time.Now reads the wall clock"
	return time.Since(start) // want "time.Since reads the wall clock"
}

func waivedClock() time.Time {
	return time.Now() //gasper:nondet fixture: provenance metadata only
}

func globalRand() int {
	return rand.Intn(6) // want "global rand.Intn draws from the process-wide source"
}

func seededRand(r *rand.Rand) int {
	return r.Intn(6) // a method on a seeded source is deterministic
}

func seededConstructor(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // constructors build seeded sources
}

func fanIn(a, b chan int) int {
	select { // want "select with 2 communication cases fires in runtime-randomized order"
	case x := <-a:
		return x
	case x := <-b:
		return x
	}
}

func waivedFanIn(done chan struct{}, v chan int) int {
	//gasper:nondet fixture: cancellation only; the value path is deterministic
	select {
	case x := <-v:
		return x
	case <-done:
		return 0
	}
}

//gasper:bogus unknown verbs are diagnostics too // want "unknown directive"
func typo() {}
