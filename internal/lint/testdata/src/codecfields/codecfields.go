// Package codecfields is a gasperlint test fixture. Writer and Reader are
// in-package stand-ins for internal/codec; the analyzer accepts them so
// fixtures stay self-contained. Each want expectation comment asserts a
// diagnostic substring on that line.
package codecfields

type Writer struct{ buf []byte }

func (w *Writer) U64(v uint64) {}

type Reader struct{ buf []byte }

func (r *Reader) U64() uint64 { return 0 }

// Thing has a field the encoder forgot and a derived cache field with
// documented waivers.
type Thing struct {
	A uint64
	B uint64 // want "field Thing.B is not referenced by encode EncodeTo"
	//gasper:nocodec fixture: derived, rebuilt on decode
	//gasper:shallow fixture: derived, rebuilt lazily by the clone
	cache map[uint64]uint64
}

func (t *Thing) EncodeTo(w *Writer) {
	w.U64(t.A) // B is missing: the seeded violation
}

func DecodeThing(r *Reader) *Thing {
	t := &Thing{}
	t.A = r.U64()
	t.B = r.U64()
	return t
}

func (t *Thing) Clone() *Thing {
	return &Thing{A: t.A, B: t.B}
}

// Flat is fully covered: every field on both codec sides, whole-struct
// copy in Clone, all fields value-typed. No diagnostics.
type Flat struct {
	X uint64
	Y [4]uint64
}

func (f *Flat) EncodeTo(w *Writer) {
	w.U64(f.X)
	for _, y := range f.Y {
		w.U64(y)
	}
}

func DecodeFlat(r *Reader) Flat {
	var f Flat
	f.X = r.U64()
	for i := range f.Y {
		f.Y[i] = r.U64()
	}
	return f
}

func (f *Flat) Clone() Flat { return *f }

// Holder's whole-struct copy covers n but aliases data.
type Holder struct {
	data []uint64 // want "reference-typed field Holder.data is shallow-aliased by the whole-struct copy in Clone"
	n    uint64
}

func (h *Holder) Clone() *Holder {
	out := *h
	return &out
}
