// Package detrange is a gasperlint test fixture. Each want
// expectation comment asserts a diagnostic substring on that line; lines without one
// must stay clean — they pin the prover's accepted patterns.
package detrange

import "sort"

// bad folds map values with a non-commutative polynomial hash: iteration
// order changes the result, and nothing waives it.
func bad(m map[string]int) int {
	out := 0
	for _, v := range m { // want "map iteration order is nondeterministic"
		out = out*31 + v
	}
	return out
}

// accumOK is commutative integer accumulation: provably order-insensitive.
func accumOK(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// floatBad accumulates floats: addition is not associative, so the sum
// drifts with iteration order.
func floatBad(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "map iteration order is nondeterministic"
		sum += v
	}
	return sum
}

// perKeyOK writes each key's slot in another map: independent per key.
func perKeyOK(m, dst map[string]int) {
	for k, v := range m {
		dst[k] = v * 2
	}
}

// maskOK is the comma-ok + commutative OR pattern.
func maskOK(m map[string]bool, keys map[string]int) int {
	mask := 0
	for k := range m {
		if v, ok := keys[k]; ok {
			mask |= v
		}
	}
	return mask
}

// freshOK writes only through per-iteration fresh memory.
func freshOK(m map[string][]int, out map[string][]int) {
	for k, vs := range m {
		cp := make([]int, 0, len(vs))
		cp = append(cp, vs...)
		out[k] = cp
	}
}

// copyOK is the append-to-nil-base copy idiom.
func copyOK(m map[string][]int, out map[string][]int) {
	for k, vs := range m {
		out[k] = append([]int(nil), vs...)
	}
}

// searchOK is a pure existential search: whichever key matches first, the
// answer is the same.
func searchOK(m map[string]int, want int) bool {
	for _, v := range m {
		if v == want {
			return true
		}
	}
	return false
}

// pruneOK deletes entries from the ranged map itself: well-defined and
// per-key independent.
func pruneOK(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// collectOK appends keys and sorts them in the very next statement.
func collectOK(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectBad appends keys but never sorts: the slice order is the map's.
func collectBad(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order is nondeterministic"
		keys = append(keys, k)
	}
	return keys
}

// waived is collectBad with an explicit waiver.
func waived(m map[string]int) []string {
	var keys []string
	//gasper:ordered fixture: caller treats the result as a set
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
