package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc checks functions annotated //gasper:noalloc — the CI-gated
// hot paths (steady-state Head, ProcessEpoch, the epoch-transition
// sweep) — for syntactically allocating constructs:
//
//   - make, new, and map/slice composite literals (array and plain
//     struct literals live on the stack);
//   - taking the address of a composite literal (&T{} escapes);
//   - append whose destination is a fresh local slice (appending a
//     caller-owned scratch parameter or a receiver field back onto
//     itself is the amortized-zero pattern and is allowed);
//   - fmt.* calls (interface boxing plus formatting state);
//   - function literals (closures capture by reference and escape);
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - go statements (new goroutine = new stack).
//
// The check is syntactic on purpose: it cannot see escape analysis, so
// the runtime -benchmem CI gates remain the ground truth — but it fails
// at build time for the whole tree, not at bench time for the paths a
// benchmark happens to drive. A deliberate allocation on a cold path
// inside a hot function (error exits, one-time growth) is waived line
// by line with //gasper:alloc <reason>.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc: "flag syntactically allocating constructs inside functions " +
		"annotated //gasper:noalloc; waive cold paths with //gasper:alloc",
	Run: runNoAlloc,
}

func runNoAlloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcAnnotated(fd, dirNoAlloc) {
				continue
			}
			pass.checkNoAlloc(fd)
		}
	}
}

func (p *Pass) checkNoAlloc(fd *ast.FuncDecl) {
	report := func(pos token.Pos, format string, args ...any) {
		if p.waived(pos, dirAlloc) {
			return
		}
		p.Reportf(pos, format, args...)
	}
	// Parameters and receiver are caller-owned: appending back onto them
	// is amortized-zero when the caller preallocates.
	callerOwned := map[types.Object]bool{}
	if fd.Recv != nil {
		for _, r := range fd.Recv.List {
			for _, name := range r.Names {
				if o := p.Info.Defs[name]; o != nil {
					callerOwned[o] = true
				}
			}
		}
	}
	if fd.Type.Params != nil {
		for _, par := range fd.Type.Params.List {
			for _, name := range par.Names {
				if o := p.Info.Defs[name]; o != nil {
					callerOwned[o] = true
				}
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CompositeLit:
			tv, ok := p.Info.Types[node]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				report(node.Pos(), "map literal allocates in //gasper:noalloc function %s", fd.Name.Name)
			case *types.Slice:
				report(node.Pos(), "slice literal allocates in //gasper:noalloc function %s", fd.Name.Name)
			}
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, isLit := node.X.(*ast.CompositeLit); isLit {
					report(node.Pos(), "&composite literal escapes to the heap in //gasper:noalloc function %s", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			p.checkNoAllocCall(fd, node, callerOwned, report)
		case *ast.FuncLit:
			report(node.Pos(), "closure may capture and escape in //gasper:noalloc function %s", fd.Name.Name)
			return false // don't descend: the closure body is not the hot path's frame
		case *ast.BinaryExpr:
			if node.Op == token.ADD && p.isStringExpr(node.X) {
				report(node.Pos(), "string concatenation allocates in //gasper:noalloc function %s", fd.Name.Name)
			}
		case *ast.GoStmt:
			report(node.Pos(), "go statement allocates a goroutine in //gasper:noalloc function %s", fd.Name.Name)
		}
		return true
	})
}

func (p *Pass) checkNoAllocCall(fd *ast.FuncDecl, call *ast.CallExpr, callerOwned map[types.Object]bool,
	report func(token.Pos, string, ...any)) {
	// Conversions: string <-> []byte / []rune copy their payload.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		from, okFrom := p.Info.Types[call.Args[0]]
		if okFrom {
			_, toSlice := to.(*types.Slice)
			_, fromSlice := from.Type.Underlying().(*types.Slice)
			toStr := isString(to)
			fromStr := isString(from.Type.Underlying())
			if (toSlice && fromStr) || (toStr && fromSlice) {
				report(call.Pos(), "string conversion copies its payload in //gasper:noalloc function %s", fd.Name.Name)
			}
		}
		return
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := p.Info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates in //gasper:noalloc function %s", fd.Name.Name)
			case "new":
				report(call.Pos(), "new allocates in //gasper:noalloc function %s", fd.Name.Name)
			case "append":
				if len(call.Args) > 0 {
					if dst := p.rootObj(call.Args[0]); dst != nil && callerOwned[dst] {
						return // caller-owned scratch: amortized zero
					}
					if sel, isSel := call.Args[0].(*ast.SelectorExpr); isSel {
						if root := p.rootObj(sel.X); root != nil && callerOwned[root] {
							return // receiver-field scratch: amortized zero
						}
					}
				}
				report(call.Pos(), "append to a non-caller-owned slice may grow in //gasper:noalloc function %s", fd.Name.Name)
			}
		}
	case *ast.SelectorExpr:
		if obj, ok := p.Info.Uses[fun.Sel]; ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			report(call.Pos(), "fmt.%s boxes its operands in //gasper:noalloc function %s", fun.Sel.Name, fd.Name.Name)
		}
	}
}

func (p *Pass) isStringExpr(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Type != nil && isString(tv.Type.Underlying())
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
