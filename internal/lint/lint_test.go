package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE matches `// want "substr"` expectation comments, with one or
// more quoted substrings — the analysistest convention, restricted to
// substring matching.
var wantRE = regexp.MustCompile(`// want ((?:"[^"]*"\s*)+)`)

// quotedRE extracts the individual quoted substrings of a want comment.
var quotedRE = regexp.MustCompile(`"([^"]*)"`)

// TestFixtures runs the full analyzer suite over each fixture package and
// checks the reported diagnostics against the fixtures' `// want`
// comments: every want must be matched by a diagnostic on its line, and
// every diagnostic must be claimed by a want. Clean lines in the fixtures
// double as regression tests for the prover's accepted patterns and for
// waiver handling.
func TestFixtures(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Fatal("no fixture packages under testdata/src")
	}
	for _, dir := range fixtures {
		t.Run(filepath.Base(dir), func(t *testing.T) {
			runFixture(t, dir)
		})
	}
}

// lineKey identifies one source line.
type lineKey struct {
	file string
	line int
}

func runFixture(t *testing.T, dir string) {
	t.Helper()
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := Run([]*Package{pkg}, Analyzers())

	wants := map[lineKey][]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			k := lineKey{e.Name(), i + 1}
			for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
				wants[k] = append(wants[k], q[1])
				total++
			}
		}
	}
	if total == 0 {
		t.Fatalf("fixture %s has no // want comments", dir)
	}

	for _, d := range diags {
		k := lineKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		claimed := false
		for i, substr := range wants[k] {
			if strings.Contains(d.Message, substr) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic at %s:%d: %s: %s", k.file, k.line, d.Analyzer, d.Message)
		}
	}
	for k, remaining := range wants {
		for _, substr := range remaining {
			t.Errorf("%s:%d: expected a diagnostic containing %q, got none", k.file, k.line, substr)
		}
	}
}
