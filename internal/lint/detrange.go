package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetRange flags `range` over a map inside the deterministic packages.
// Go randomizes map iteration order per run, so any map range on a
// result-producing path is a seed-determinism bug waiting for a hash-seed
// change. A range is allowed without a waiver only when the analyzer can
// prove the iteration order-insensitive; anything else needs an explicit
// //gasper:ordered <reason> waiver or a sorted-keys rewrite.
var DetRange = &Analyzer{
	Name: "detrange",
	Doc: "flag map iteration in deterministic packages unless provably " +
		"order-insensitive or waived with //gasper:ordered",
	Run: runDetRange,
}

func runDetRange(pass *Pass) {
	if !deterministic(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		// Map every statement to its next sibling, so a range can be
		// checked against the statement that follows it (the
		// collect-then-sort proof).
		next := map[ast.Stmt]ast.Stmt{}
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				list = b.List
			case *ast.CaseClause:
				list = b.Body
			case *ast.CommClause:
				list = b.Body
			default:
				return true
			}
			for i := 0; i+1 < len(list); i++ {
				next[list[i]] = list[i+1]
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.waived(rs.Pos(), dirOrdered) {
				return true
			}
			if pass.orderInsensitive(rs, next[rs]) {
				return true
			}
			pass.Reportf(rs.Pos(), "map iteration order is nondeterministic; "+
				"sort the keys, prove the body order-insensitive, or waive with //gasper:ordered <reason>")
			return true
		})
	}
}

// rangeProof carries one order-insensitivity proof attempt.
type rangeProof struct {
	pass *Pass
	rs   *ast.RangeStmt
	// keyObj/valObj are the per-iteration variables — always clean.
	keyObj, valObj types.Object
	rangedObj      types.Object
	// dirty is every object declared OUTSIDE the range body that the body
	// writes (directly or by taking its address): reading one of these is
	// reading order-dependent intermediate state.
	dirty map[types.Object]bool
	// fresh is the body-locals that provably hold per-iteration memory
	// (declared from a composite literal, make, or new, and only ever
	// re-bound by appending to or re-slicing themselves): writing through
	// them cannot alias state shared across iterations.
	fresh map[types.Object]bool
	// collect, when non-nil, is the one outer slice the body may grow via
	// s = append(s, ...) — valid only when the statement after the loop
	// sorts s (set up by orderInsensitive before walking).
	collect types.Object
	// collected reports whether the collect slice was actually appended.
	collected bool
}

// orderInsensitive reports whether the range body provably produces the
// same observable result for every iteration order. The proof is
// deliberately narrow; what it cannot prove needs a waiver:
//
//   - expressions may only read per-iteration state (the key/value
//     variables, body-locals, fresh memory) and loop-invariant outer
//     state — never anything the body writes — and may not call
//     functions (unknown side effects) other than len/cap/min/max and
//     conversions;
//   - writes are restricted to: body-locals; fresh per-iteration memory;
//     commutative integer accumulation (acc++/--/+=/-=/|=/&=/^= — floats
//     are rejected: float addition is not associative, so summation
//     order drifts the last ulps); per-key map writes dst[k] = v on a
//     map other than the one ranged; and delete(m, k) on any map
//     including the ranged one;
//   - control flow: if (including comma-ok inits), nested for/range,
//     and bare continue; return/break only when the body writes nothing
//     outer (a pure existential search returns the same answer whichever
//     key matches first);
//   - collect-then-sort: the body's only outer write is s = append(s, x)
//     and the statement immediately after the loop sorts s.
func (p *Pass) orderInsensitive(rs *ast.RangeStmt, nextStmt ast.Stmt) bool {
	pr := &rangeProof{
		pass:      p,
		rs:        rs,
		keyObj:    p.rangeVarObj(rs.Key),
		valObj:    p.rangeVarObj(rs.Value),
		rangedObj: p.rootObj(rs.X),
		dirty:     map[types.Object]bool{},
		fresh:     map[types.Object]bool{},
	}
	pr.scanWrites()
	if pr.keyObj != nil && pr.dirty[pr.keyObj] || pr.valObj != nil && pr.dirty[pr.valObj] {
		return false // body reassigns the iteration variables; give up
	}
	pr.scanFresh()

	// First try the strict proof; if the only obstacle is appending one
	// outer slice, retry in collect mode and demand a sort right after.
	if pr.stmtOK(rs.Body) {
		return true
	}
	pr.collect = pr.findCollectTarget()
	if pr.collect == nil {
		return false
	}
	pr.collected = false
	if !pr.stmtOK(rs.Body) || !pr.collected {
		return false
	}
	return pr.sortsCollected(nextStmt)
}

// scanWrites fills pr.dirty with every outer object the body assigns,
// increments, or takes the address of.
func (pr *rangeProof) scanWrites() {
	body := pr.rs.Body
	mark := func(e ast.Expr) {
		o := pr.pass.rootObj(e)
		if o == nil || pr.local(o) {
			return
		}
		pr.dirty[o] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(s.X)
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				mark(s.X)
			}
		}
		return true
	})
}

// local reports whether obj is declared inside the range body (a fresh
// binding every iteration).
func (pr *rangeProof) local(obj types.Object) bool {
	return obj.Pos() >= pr.rs.Body.Pos() && obj.Pos() <= pr.rs.Body.End()
}

// scanFresh finds body-locals bound once to fresh memory (composite
// literal, &composite, make, new) and only ever re-bound by growing or
// re-slicing themselves.
func (pr *rangeProof) scanFresh() {
	demote := map[types.Object]bool{}
	ast.Inspect(pr.rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, isIdent := lhs.(*ast.Ident)
			if !isIdent {
				continue
			}
			obj := pr.pass.Info.Defs[id]
			defining := obj != nil
			if !defining {
				obj = pr.pass.Info.Uses[id]
			}
			if obj == nil || !pr.local(obj) {
				continue
			}
			var rhs ast.Expr
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			}
			switch {
			case defining && as.Tok == token.DEFINE && rhs != nil && freshExpr(rhs):
				pr.fresh[obj] = true
			case rhs != nil && pr.selfGrow(obj, rhs):
				// append(x, ...) or x[a:b] re-binding keeps freshness.
			default:
				demote[obj] = true
			}
		}
		return true
	})
	for o := range demote {
		delete(pr.fresh, o)
	}
}

// nilBase reports whether e is a provably fresh append base: nil, a
// conversion of nil like []T(nil), or a fresh composite/make.
func nilBase(e ast.Expr) bool {
	if id, ok := e.(*ast.Ident); ok && id.Name == "nil" {
		return true
	}
	if c, ok := e.(*ast.CallExpr); ok && len(c.Args) == 1 {
		if id, ok := c.Args[0].(*ast.Ident); ok && id.Name == "nil" {
			return true
		}
	}
	return freshExpr(e)
}

// freshExpr reports whether e evaluates to brand-new memory.
func freshExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, isLit := x.X.(*ast.CompositeLit)
		return x.Op == token.AND && isLit
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && (id.Name == "make" || id.Name == "new") {
			return true
		}
	}
	return false
}

// selfGrow reports whether rhs is append(obj, ...) or a re-slice of obj.
func (pr *rangeProof) selfGrow(obj types.Object, rhs ast.Expr) bool {
	switch x := rhs.(type) {
	case *ast.CallExpr:
		id, ok := x.Fun.(*ast.Ident)
		if !ok || id.Name != "append" || len(x.Args) == 0 {
			return false
		}
		return pr.pass.identObj(x.Args[0]) == obj
	case *ast.SliceExpr:
		return pr.pass.identObj(x.X) == obj
	}
	return false
}

// exprClean reports whether e reads only order-independent state:
// iteration variables, body-locals, and loop-invariant outer state. An
// exception set permits the accumulator on the left of its own compound
// assignment (except) and reads of dst[k] for the per-key write form
// (allowedMap).
func (pr *rangeProof) exprClean(e ast.Expr, allowedMap, except types.Object) bool {
	if e == nil {
		return true
	}
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch x := n.(type) {
		case *ast.IndexExpr:
			if allowedMap != nil && pr.pass.rootObj(x.X) == allowedMap &&
				pr.pass.identObj(x.Index) == pr.keyObj && pr.keyObj != nil {
				return false // dst[k] reads its own key's slot: independent per key
			}
		case *ast.CallExpr:
			if tv, isType := pr.pass.Info.Types[x.Fun]; isType && tv.IsType() {
				return true // conversion: check operands
			}
			if id, isIdent := x.Fun.(*ast.Ident); isIdent {
				if b, isB := pr.pass.Info.Uses[id].(*types.Builtin); isB {
					switch b.Name() {
					case "len", "cap", "min", "max":
						return true
					}
				}
			}
			ok = false // unknown callee: unknown side effects and inputs
			return false
		case *ast.FuncLit:
			ok = false
			return false
		case *ast.Ident:
			o := pr.pass.Info.Uses[x]
			if o != nil && pr.dirty[o] && o != pr.keyObj && o != pr.valObj && o != except {
				ok = false
			}
		}
		return true
	})
	return ok
}

// stmtOK is the statement grammar of the proof.
func (pr *rangeProof) stmtOK(s ast.Stmt) bool {
	p := pr.pass
	switch st := s.(type) {
	case *ast.BlockStmt:
		for _, c := range st.List {
			if !pr.stmtOK(c) {
				return false
			}
		}
		return true
	case *ast.BranchStmt:
		if st.Label != nil {
			return false
		}
		// continue decides one key; break ends a loop that (given no
		// outer writes) has no order-visible effect beyond its returns.
		return st.Tok == token.CONTINUE || (st.Tok == token.BREAK && pr.pureSearch())
	case *ast.ReturnStmt:
		if !pr.pureSearch() {
			return false
		}
		for _, r := range st.Results {
			if !pr.exprClean(r, nil, nil) {
				return false
			}
		}
		return true
	case *ast.IfStmt:
		if st.Init != nil && !pr.stmtOK(st.Init) {
			return false
		}
		if !pr.exprClean(st.Cond, nil, nil) {
			return false
		}
		if !pr.stmtOK(st.Body) {
			return false
		}
		return st.Else == nil || pr.stmtOK(st.Else)
	case *ast.ForStmt:
		if st.Init != nil && !pr.stmtOK(st.Init) {
			return false
		}
		if st.Cond != nil && !pr.exprClean(st.Cond, nil, nil) {
			return false
		}
		if st.Post != nil && !pr.stmtOK(st.Post) {
			return false
		}
		return pr.stmtOK(st.Body)
	case *ast.RangeStmt:
		// A nested map range gets its own diagnostic from the outer walk;
		// here only the data flow matters.
		return pr.exprClean(st.X, nil, nil) && pr.stmtOK(st.Body)
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return false
			}
			for _, v := range vs.Values {
				if !pr.exprClean(v, nil, nil) {
					return false
				}
			}
		}
		return true
	case *ast.IncDecStmt:
		root := p.rootObj(st.X)
		if root != nil && pr.local(root) {
			return pr.exprClean(st.X, nil, root)
		}
		return p.isIntegerExpr(st.X) && pr.exprClean(st.X, nil, root)
	case *ast.AssignStmt:
		return pr.assignOK(st)
	case *ast.ExprStmt:
		// delete(m, k): always the key being visited, so the set of
		// deletions is iteration-order independent — even on the ranged
		// map itself (a deleted entry is simply not produced later).
		call, isCall := st.X.(*ast.CallExpr)
		if !isCall || len(call.Args) != 2 || pr.keyObj == nil {
			return false
		}
		fn, isIdent := call.Fun.(*ast.Ident)
		if !isIdent || fn.Name != "delete" {
			return false
		}
		if b, isBuiltin := p.Info.Uses[fn].(*types.Builtin); !isBuiltin || b.Name() != "delete" {
			return false
		}
		return p.rootObj(call.Args[0]) != nil && p.identObj(call.Args[1]) == pr.keyObj
	}
	return false
}

// assignOK validates one assignment under the proof grammar.
func (pr *rangeProof) assignOK(st *ast.AssignStmt) bool {
	p := pr.pass
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return false
		}
		lhs, rhs := st.Lhs[0], st.Rhs[0]
		root := p.rootObj(lhs)
		if root != nil && pr.local(root) {
			// Body-local accumulation is per-iteration state: any type.
			return pr.exprClean(rhs, nil, nil) && pr.exprClean(lhs, nil, root)
		}
		// Outer accumulation must be commutative and associative:
		// integers only.
		return p.isIntegerExpr(lhs) && pr.exprClean(rhs, nil, nil) && pr.exprClean(lhs, nil, root)
	case token.DEFINE, token.ASSIGN:
		// All-bare-body-local assignment (x := ..., x = ..., x, ok := ...).
		allLocal := true
		for _, lhs := range st.Lhs {
			id, isIdent := lhs.(*ast.Ident)
			if !isIdent {
				allLocal = false
				break
			}
			if id.Name == "_" {
				continue
			}
			obj := p.Info.Defs[id]
			if obj == nil {
				obj = p.Info.Uses[id]
			}
			if obj == nil || !pr.local(obj) {
				allLocal = false
				break
			}
		}
		if allLocal {
			for _, rhs := range st.Rhs {
				if !pr.rhsClean(rhs) {
					return false
				}
			}
			return true
		}
		if st.Tok == token.DEFINE || len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return false
		}
		lhs, rhs := st.Lhs[0], st.Rhs[0]
		// Write through provably fresh per-iteration memory.
		if root := p.rootObj(lhs); root != nil && pr.fresh[root] {
			return pr.lvalueIndicesClean(lhs) && pr.rhsClean(rhs)
		}
		// Collect mode: s = append(s, clean...).
		if pr.collect != nil && p.identObj(lhs) == pr.collect {
			call, isCall := rhs.(*ast.CallExpr)
			if !isCall || len(call.Args) == 0 {
				return false
			}
			id, isIdent := call.Fun.(*ast.Ident)
			if !isIdent || id.Name != "append" || p.identObj(call.Args[0]) != pr.collect {
				return false
			}
			for _, a := range call.Args[1:] {
				if !pr.exprClean(a, nil, nil) {
					return false
				}
			}
			pr.collected = true
			return true
		}
		// Per-key map write dst[k] = clean.
		ix, isIndex := lhs.(*ast.IndexExpr)
		if !isIndex || pr.keyObj == nil || p.identObj(ix.Index) != pr.keyObj {
			return false
		}
		dst := p.rootObj(ix.X)
		if dst == nil || dst == pr.rangedObj {
			return false
		}
		if _, isMap := p.Info.Types[ix.X].Type.Underlying().(*types.Map); !isMap {
			return false
		}
		// The value may read its own key's slot (dst[k] accumulation) or
		// build fresh memory (the append([]T(nil), xs...) copy idiom).
		return pr.exprClean(ix.X, nil, dst) && (pr.exprClean(rhs, dst, nil) || pr.rhsClean(rhs))
	}
	return false
}

// rhsClean is exprClean plus the fresh-memory producers (composite
// literals, make, new, append-to-local) allowed on the right of a
// body-local binding.
func (pr *rangeProof) rhsClean(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if !pr.rhsClean(kv.Value) {
					return false
				}
				continue
			}
			if !pr.rhsClean(el) {
				return false
			}
		}
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return pr.rhsClean(x.X)
		}
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "make", "new":
				for _, a := range x.Args {
					if !pr.exprClean(a, nil, nil) {
						return false
					}
				}
				return true
			case "append":
				if len(x.Args) == 0 {
					return false
				}
				// The destination must be per-iteration memory: a
				// body-local, or a provably fresh base (nil, a
				// []T(nil) conversion, a composite literal) — the
				// append([]T(nil), xs...) copy idiom. Appending to a
				// shared outer slice could write its spare capacity
				// in iteration order.
				first := pr.pass.identObj(x.Args[0])
				if (first == nil || !pr.local(first)) && !nilBase(x.Args[0]) {
					return false
				}
				for _, a := range x.Args[1:] {
					if !pr.exprClean(a, nil, nil) {
						return false
					}
				}
				return true
			}
		}
	}
	return pr.exprClean(e, nil, nil)
}

// lvalueIndicesClean checks that every index/selector step of an lvalue
// reads clean state (the root's freshness is checked by the caller).
func (pr *rangeProof) lvalueIndicesClean(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			if !pr.exprClean(x.Index, nil, nil) {
				return false
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// pureSearch reports whether the body writes nothing outside itself (so
// an early return/break cannot leave partially-accumulated state).
func (pr *rangeProof) pureSearch() bool {
	return len(pr.dirty) == 0 && pr.collect == nil
}

// findCollectTarget looks for the single outer slice the body grows via
// s = append(s, ...): the candidate for the collect-then-sort proof.
func (pr *rangeProof) findCollectTarget() types.Object {
	var target types.Object
	ok := true
	ast.Inspect(pr.rs.Body, func(n ast.Node) bool {
		as, isAssign := n.(*ast.AssignStmt)
		if !isAssign || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		obj := pr.pass.identObj(as.Lhs[0])
		if obj == nil || pr.local(obj) || !pr.dirty[obj] {
			return true
		}
		if !pr.selfGrow(obj, as.Rhs[0]) {
			return true
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
			return true
		}
		if target != nil && target != obj {
			ok = false
		}
		target = obj
		return true
	})
	if !ok || target == nil {
		return nil
	}
	// The collect slice must be the ONLY dirty outer object.
	for o := range pr.dirty {
		if o != target {
			return nil
		}
	}
	return target
}

// sortsCollected reports whether stmt sorts the collect slice: the
// canonical `sort.X(s, ...)` / `slices.Sort*(s, ...)` call immediately
// after the loop.
func (pr *rangeProof) sortsCollected(stmt ast.Stmt) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pr.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort", "slices":
	default:
		return false
	}
	arg := call.Args[0]
	// Unwrap a sort.Sort(byX(s)) conversion.
	if c, isCall := arg.(*ast.CallExpr); isCall && len(c.Args) == 1 {
		if tv, isType := pr.pass.Info.Types[c.Fun]; isType && tv.IsType() {
			arg = c.Args[0]
		}
	}
	return pr.pass.rootObj(arg) == pr.collect
}

// rangeVarObj resolves a range key/value expression to its variable.
func (p *Pass) rangeVarObj(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return p.Info.Uses[id]
}

// identObj resolves a plain identifier use.
func (p *Pass) identObj(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	return p.Info.Defs[id]
}

// rootObj walks to the base identifier of an lvalue-ish expression
// (x, x.f, x[i], *x, (x)) and returns its object.
func (p *Pass) rootObj(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if o := p.Info.Uses[x]; o != nil {
				return o
			}
			return p.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isIntegerExpr reports whether e has an integer type (floats and
// strings accumulate order-sensitively).
func (p *Pass) isIntegerExpr(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
