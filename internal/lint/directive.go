package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive verbs. Waivers (`ordered`, `nondet`, `alloc`, `nocodec`,
// `shallow`) require a reason after the verb; `noalloc` is an annotation
// that turns the noalloc analyzer on for the function it documents.
const (
	dirOrdered = "ordered" // detrange: iteration order is harmless here
	dirNondet  = "nondet"  // detsource: nondeterminism source is off the result path
	dirAlloc   = "alloc"   // noalloc: this construct may allocate (cold path)
	dirNoCodec = "nocodec" // codecfields: field is derived, rebuilt on decode
	dirShallow = "shallow" // codecfields: Clone may alias this field
	dirNoAlloc = "noalloc" // annotation: function must not allocate
)

var waiverVerbs = map[string]bool{
	dirOrdered: true,
	dirNondet:  true,
	dirAlloc:   true,
	dirNoCodec: true,
	dirShallow: true,
}

// directive is one parsed //gasper:<verb> <reason> comment.
type directive struct {
	verb   string
	reason string
	pos    token.Position
}

// directiveIndex maps (file, line) to the directives written on that
// line. A waiver applies to a flagged construct when it sits on the same
// line as the construct or on the line directly above it — the two
// places a human writes an inline or leading comment.
type directiveIndex struct {
	byLine   map[string]map[int][]directive
	problems []Diagnostic
}

const directivePrefix = "//gasper:"

// indexDirectives scans every comment in the package for gasper
// directives. Malformed ones (unknown verb, waiver without a reason) are
// recorded as diagnostics so a typo cannot silently disable a check.
func indexDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{byLine: make(map[string]map[int][]directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				body := strings.TrimPrefix(c.Text, directivePrefix)
				verb, reason, _ := strings.Cut(body, " ")
				reason = strings.TrimSpace(reason)
				pos := fset.Position(c.Pos())
				switch {
				case verb == dirNoAlloc:
					// Annotation; reason optional.
				case waiverVerbs[verb]:
					if reason == "" {
						idx.problems = append(idx.problems, Diagnostic{
							Analyzer: "gasperdirective",
							Pos:      pos,
							Message:  "//gasper:" + verb + " waiver needs a reason",
						})
						continue
					}
				default:
					idx.problems = append(idx.problems, Diagnostic{
						Analyzer: "gasperdirective",
						Pos:      pos,
						Message:  "unknown directive //gasper:" + verb,
					})
					continue
				}
				m := idx.byLine[pos.Filename]
				if m == nil {
					m = make(map[int][]directive)
					idx.byLine[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], directive{verb: verb, reason: reason, pos: pos})
			}
		}
	}
	return idx
}

// waived reports whether a construct at pos carries a verb waiver on its
// own line or the line directly above.
func (p *Pass) waived(pos token.Pos, verb string) bool {
	position := p.Fset.Position(pos)
	m := p.dirs.byLine[position.Filename]
	if m == nil {
		return false
	}
	for _, line := range [2]int{position.Line, position.Line - 1} {
		for _, d := range m[line] {
			if d.verb == verb {
				return true
			}
		}
	}
	return false
}

// fieldWaived reports whether a struct field declaration carries a verb
// waiver in its doc or trailing comment.
func fieldWaived(field *ast.Field, verb string) bool {
	for _, cg := range [2]*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, directivePrefix+verb) {
				rest := strings.TrimPrefix(c.Text, directivePrefix+verb)
				if rest == "" || strings.HasPrefix(rest, " ") {
					return true
				}
			}
		}
	}
	return false
}

// funcAnnotated reports whether fn's doc comment carries the given
// annotation verb (e.g. //gasper:noalloc).
func funcAnnotated(fn *ast.FuncDecl, verb string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == directivePrefix+verb || strings.HasPrefix(c.Text, directivePrefix+verb+" ") {
			return true
		}
	}
	return false
}
