package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load parses and type-checks the packages matching patterns (relative to
// dir), resolving imports from `go list -export` compiler export data —
// a standard-library-only stand-in for go/packages that works offline.
// Test files are excluded on purpose: tests may legitimately use wall
// clocks, global randomness, and unordered iteration.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if e.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", e.ImportPath, e.Error.Err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly && !e.Standard {
			targets = append(targets, e)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportDataImporter(fset, exports)
	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, gf := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, gf)
		}
		pkg, err := checkFiles(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir type-checks a single directory of Go files outside the module
// (analyzer test fixtures). Imports still resolve through export data,
// discovered by listing the standard library packages the files import.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(files)

	// Parse once without type information to discover the import set.
	probe := token.NewFileSet()
	importSet := make(map[string]bool)
	for _, f := range files {
		pf, err := parser.ParseFile(probe, f, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, im := range pf.Imports {
			path := im.Path.Value
			importSet[path[1:len(path)-1]] = true
		}
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		args := append([]string{
			"list", "-e", "-export", "-deps",
			"-json=ImportPath,Export,Error",
		}, sortedKeys(importSet)...)
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list fixture imports: %v", err)
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var e listEntry
			if err := dec.Decode(&e); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if e.Export != "" {
				exports[e.ImportPath] = e.Export
			}
		}
	}

	fset := token.NewFileSet()
	imp := exportDataImporter(fset, exports)
	return checkFiles(fset, imp, filepath.Base(dir), dir, files)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// exportDataImporter resolves imports from compiler export-data files.
func exportDataImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// checkFiles parses and type-checks one package's files.
func checkFiles(fset *token.FileSet, imp types.Importer, importPath, dir string, filenames []string) (*Package, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
