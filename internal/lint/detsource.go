package lint

import (
	"go/ast"
	"go/types"
)

// DetSource flags sources of nondeterminism inside the deterministic
// packages — the static twin of the runtime 2×2 (view layout ×
// fork-choice engine) equivalence matrix:
//
//   - time.Now / time.Since / time.Until: wall clocks on a result path
//     make payloads machine-dependent;
//   - the global math/rand (and math/rand/v2) top-level functions, which
//     draw from a process-wide source instead of a per-cell seeded
//     *rand.Rand — constructors (New, NewSource, NewPCG, ...) are fine;
//   - select statements with two or more communication cases, whose
//     firing order the runtime randomizes — the canonical way sweep
//     results get reordered across runs.
//
// A finding on a path that provably never reaches a result payload
// (wall-clock provenance, cancellation plumbing whose output is merged
// deterministically) is waived with //gasper:nondet <reason>.
var DetSource = &Analyzer{
	Name: "detsource",
	Doc: "flag wall clocks, global randomness, and select fan-in in " +
		"deterministic packages unless waived with //gasper:nondet",
	Run: runDetSource,
}

// randConstructors are the math/rand names that build seeded sources
// rather than drawing from the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runDetSource(pass *Pass) {
	if !deterministic(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.SelectorExpr:
				fn, ok := pass.Info.Uses[node.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				// Only package-level functions: methods on *rand.Rand or
				// a time.Time value are deterministic given their receiver.
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					switch fn.Name() {
					case "Now", "Since", "Until":
						if !pass.waived(node.Pos(), dirNondet) {
							pass.Reportf(node.Pos(), "time.%s reads the wall clock on a deterministic path; "+
								"derive timing from the simulated clock or waive with //gasper:nondet <reason>", fn.Name())
						}
					}
				case "math/rand", "math/rand/v2":
					if randConstructors[fn.Name()] {
						return true
					}
					if !pass.waived(node.Pos(), dirNondet) {
						pass.Reportf(node.Pos(), "global %s.%s draws from the process-wide source; "+
							"use a per-cell seeded *rand.Rand or waive with //gasper:nondet <reason>",
							fn.Pkg().Name(), fn.Name())
					}
				}
			case *ast.SelectStmt:
				comm := 0
				for _, c := range node.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						comm++
					}
				}
				if comm >= 2 && !pass.waived(node.Pos(), dirNondet) {
					pass.Reportf(node.Pos(), "select with %d communication cases fires in runtime-randomized order; "+
						"merge results deterministically and waive with //gasper:nondet <reason>", comm)
				}
			}
			return true
		})
	}
}
