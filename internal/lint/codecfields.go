package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CodecFields cross-checks every snapshot codec and Clone method against
// its struct definition, turning "new field silently dropped from
// checkpoints" from a runtime-corruption bug into a build break — the
// static twin of the server's reflection-derived cache-key test.
//
// Codec shape (the PR 5/9 convention): an encode side is a method named
// EncodeTo/encodeTo taking a *codec.Writer, or a function Encode*/encode*
// taking a *codec.Writer plus the subject value; a decode side is a
// function Decode*/decode* taking a *codec.Reader and returning the
// subject. For every subject type defined in the package with both sides
// present, every struct field must be referenced by BOTH sides, unless
// the field declaration carries //gasper:nocodec <reason> (derived state
// the decoder rebuilds).
//
// Clone methods (Clone*/clone* on the subject) must reference every
// field too; a whole-struct copy (`out := *t`) covers value-typed fields
// but NOT reference-typed ones (slice/map/pointer/chan/func/interface),
// which alias the original unless explicitly deep-copied or waived with
// //gasper:shallow <reason>.
var CodecFields = &Analyzer{
	Name: "codecfields",
	Doc: "require every struct field to be covered by both codec sides " +
		"and deep-copied by Clone, unless waived with //gasper:nocodec / //gasper:shallow",
	Run: runCodecFields,
}

// codecFunc is one side of a codec (or a Clone) for one subject type.
type codecFunc struct {
	decl *ast.FuncDecl
	kind string // "encode", "decode", "clone"
}

func runCodecFields(pass *Pass) {
	subjects := map[*types.TypeName][]codecFunc{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			switch {
			case fd.Recv != nil && (name == "EncodeTo" || name == "encodeTo"):
				if pass.hasCodecParam(fd, "Writer") {
					if s := pass.receiverSubject(fd); s != nil {
						subjects[s] = append(subjects[s], codecFunc{fd, "encode"})
					}
				}
			case fd.Recv == nil && (strings.HasPrefix(name, "Encode") || strings.HasPrefix(name, "encode")):
				if pass.hasCodecParam(fd, "Writer") {
					if s := pass.paramSubject(fd); s != nil {
						subjects[s] = append(subjects[s], codecFunc{fd, "encode"})
					}
				}
			case fd.Recv == nil && (strings.HasPrefix(name, "Decode") || strings.HasPrefix(name, "decode")):
				if pass.hasCodecParam(fd, "Reader") {
					if s := pass.resultSubject(fd); s != nil {
						subjects[s] = append(subjects[s], codecFunc{fd, "decode"})
					}
				}
			case fd.Recv != nil && (strings.HasPrefix(name, "Clone") || strings.HasPrefix(name, "clone")):
				if s := pass.receiverSubject(fd); s != nil {
					subjects[s] = append(subjects[s], codecFunc{fd, "clone"})
				}
			}
		}
	}

	names := make([]*types.TypeName, 0, len(subjects))
	for s := range subjects {
		names = append(names, s)
	}
	sort.Slice(names, func(i, j int) bool { return names[i].Name() < names[j].Name() })

	for _, subj := range names {
		if subj.Pkg() != pass.Pkg {
			continue // cross-package subjects have no local field comments to waive with
		}
		st, ok := subj.Type().Underlying().(*types.Struct)
		if !ok || st.NumFields() == 0 {
			continue
		}
		fns := subjects[subj]
		var enc, dec, clones []codecFunc
		for _, fn := range fns {
			switch fn.kind {
			case "encode":
				enc = append(enc, fn)
			case "decode":
				dec = append(dec, fn)
			case "clone":
				clones = append(clones, fn)
			}
		}
		astFields := pass.structASTFields(subj, st)

		// Codec coverage needs both sides present (write-only or read-only
		// helpers are not a durable codec).
		if len(enc) > 0 && len(dec) > 0 {
			for _, side := range [2][]codecFunc{enc, dec} {
				for _, fn := range side {
					refs, all := pass.fieldRefs(fn.decl, subj)
					if all {
						continue
					}
					for i := 0; i < st.NumFields(); i++ {
						field := st.Field(i)
						if field.Name() == "_" || refs[field.Name()] {
							continue
						}
						if af := astFields[i]; af != nil && fieldWaived(af, dirNoCodec) {
							continue
						}
						pass.Reportf(fieldPos(astFields[i], subj), "field %s.%s is not referenced by %s %s; "+
							"snapshots will silently drop it — encode/decode it or waive with //gasper:nocodec <reason>",
							subj.Name(), field.Name(), fn.kind, fn.decl.Name.Name)
					}
				}
			}
		}

		for _, fn := range clones {
			refs, all := pass.fieldRefs(fn.decl, subj)
			wholeCopy := all || pass.hasWholeCopy(fn.decl, subj)
			for i := 0; i < st.NumFields(); i++ {
				field := st.Field(i)
				if field.Name() == "_" || refs[field.Name()] {
					continue
				}
				if wholeCopy && shallowSafe(field.Type()) {
					continue
				}
				if af := astFields[i]; af != nil && fieldWaived(af, dirShallow) {
					continue
				}
				if wholeCopy {
					pass.Reportf(fieldPos(astFields[i], subj), "reference-typed field %s.%s is shallow-aliased by the "+
						"whole-struct copy in %s; deep-copy it or waive with //gasper:shallow <reason>",
						subj.Name(), field.Name(), fn.decl.Name.Name)
				} else {
					pass.Reportf(fieldPos(astFields[i], subj), "field %s.%s is not referenced by %s; "+
						"clones will drop it — copy it or waive with //gasper:shallow <reason>",
						subj.Name(), field.Name(), fn.decl.Name.Name)
				}
			}
		}
	}
}

// hasCodecParam reports whether fd has a parameter of type *P where P is
// a named type called typeName ("Writer"/"Reader") living in a package
// named "codec" — or in the current package, so analyzer fixtures can
// define their own stand-ins.
func (p *Pass) hasCodecParam(fd *ast.FuncDecl, typeName string) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, f := range fd.Type.Params.List {
		tv, ok := p.Info.Types[f.Type]
		if !ok {
			continue
		}
		t := tv.Type
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		named, isNamed := t.(*types.Named)
		if !isNamed {
			continue
		}
		obj := named.Obj()
		if obj.Name() != typeName || obj.Pkg() == nil {
			continue
		}
		if obj.Pkg().Name() == "codec" || obj.Pkg() == p.Pkg {
			return true
		}
	}
	return false
}

// receiverSubject resolves a method's receiver to its named type.
func (p *Pass) receiverSubject(fd *ast.FuncDecl) *types.TypeName {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	tv, ok := p.Info.Types[fd.Recv.List[0].Type]
	if !ok {
		return nil
	}
	return namedTypeName(tv.Type)
}

// paramSubject finds the subject value parameter of a free encode
// function: the first non-Writer parameter with a named struct type.
func (p *Pass) paramSubject(fd *ast.FuncDecl) *types.TypeName {
	for _, f := range fd.Type.Params.List {
		tv, ok := p.Info.Types[f.Type]
		if !ok {
			continue
		}
		if tn := namedTypeName(tv.Type); tn != nil && tn.Name() != "Writer" {
			if _, isStruct := tn.Type().Underlying().(*types.Struct); isStruct {
				return tn
			}
		}
	}
	return nil
}

// resultSubject finds the subject of a decode function: the first named
// struct type among its results.
func (p *Pass) resultSubject(fd *ast.FuncDecl) *types.TypeName {
	if fd.Type.Results == nil {
		return nil
	}
	for _, f := range fd.Type.Results.List {
		tv, ok := p.Info.Types[f.Type]
		if !ok {
			continue
		}
		if tn := namedTypeName(tv.Type); tn != nil {
			if _, isStruct := tn.Type().Underlying().(*types.Struct); isStruct {
				return tn
			}
		}
	}
	return nil
}

// namedTypeName unwraps pointers and generic instantiations down to the
// declaring *types.TypeName.
func namedTypeName(t types.Type) *types.TypeName {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Origin().Obj()
		default:
			return nil
		}
	}
}

// fieldRefs walks fn's body and returns the set of subject field names it
// references — via selector expressions, keyed composite literals of the
// subject type, or (all=true) an unkeyed composite literal covering every
// field positionally.
func (p *Pass) fieldRefs(fn *ast.FuncDecl, subj *types.TypeName) (refs map[string]bool, all bool) {
	refs = map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.SelectorExpr:
			sel, ok := p.Info.Selections[node]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			if namedTypeName(sel.Recv()) == subj {
				refs[node.Sel.Name] = true
			}
		case *ast.CompositeLit:
			tv, ok := p.Info.Types[node]
			if !ok || namedTypeName(tv.Type) != subj {
				return true
			}
			if len(node.Elts) == 0 {
				return true
			}
			for _, e := range node.Elts {
				kv, isKV := e.(*ast.KeyValueExpr)
				if !isKV {
					all = true // positional literal: compiler enforces all fields
					return true
				}
				if id, isIdent := kv.Key.(*ast.Ident); isIdent {
					refs[id.Name] = true
				}
			}
		}
		return true
	})
	return refs, all
}

// hasWholeCopy reports whether fn's body copies a whole subject value
// (`out := *t`, `*out = *t`, passing *t to a helper, returning *t) —
// which covers every value-typed field at once.
func (p *Pass) hasWholeCopy(fn *ast.FuncDecl, subj *types.TypeName) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n.(type) {
		case *ast.StarExpr, *ast.Ident, *ast.CallExpr:
			e := n.(ast.Expr)
			tv, ok := p.Info.Types[e]
			if ok && tv.Value == nil && tv.IsValue() {
				if namedTypeName(tv.Type) == subj {
					if _, isPtr := tv.Type.(*types.Pointer); !isPtr {
						found = true
					}
				}
			}
		}
		return true
	})
	return found
}

// structASTFields pairs the flattened AST field declarations of subj's
// struct type with the type-checker's field order, so field waivers and
// report positions resolve to source. Index i corresponds to
// st.Field(i); entries may be nil if the declaration is not found.
func (p *Pass) structASTFields(subj *types.TypeName, st *types.Struct) []*ast.Field {
	out := make([]*ast.Field, st.NumFields())
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != subj.Name() {
				return true
			}
			if p.Info.Defs[ts.Name] != subj {
				return true
			}
			stAST, ok := ts.Type.(*ast.StructType)
			if !ok {
				return false
			}
			i := 0
			for _, field := range stAST.Fields.List {
				n := len(field.Names)
				if n == 0 {
					n = 1 // embedded
				}
				for k := 0; k < n && i < len(out); k++ {
					out[i] = field
					i++
				}
			}
			return false
		})
	}
	return out
}

// fieldPos returns the best position to report a field finding at.
func fieldPos(af *ast.Field, subj *types.TypeName) token.Pos {
	if af != nil {
		return af.Pos()
	}
	return subj.Pos()
}

// shallowSafe reports whether a field type is safe to share via a
// whole-struct copy: values all the way down. Slices, maps, pointers,
// channels, functions, interfaces, and type parameters alias.
func shallowSafe(t types.Type) bool {
	switch tt := t.Underlying().(type) {
	case *types.Basic:
		return true
	case *types.Array:
		return shallowSafe(tt.Elem())
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if !shallowSafe(tt.Field(i).Type()) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
