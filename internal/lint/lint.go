// Package lint is gasperlint: a suite of project-specific static
// analyzers that enforce, at build time, the invariants every headline
// result of this reproduction rests on — seed-determinism, snapshot-codec
// completeness, and allocation-free hot paths.
//
// The runtime test suite checks these invariants after an expensive sim
// run and only on the code paths a test happens to exercise; the analyzers
// here fail `gasperlint ./...`-time instead, for every path in the tree:
//
//   - detrange    — flags `range` over a map inside the deterministic
//     packages unless the loop body is provably order-insensitive or the
//     statement carries a //gasper:ordered waiver.
//   - detsource   — flags nondeterminism sources on result-producing
//     paths: time.Now/Since, the global math/rand top-level functions
//     (a seeded *rand.Rand is fine), and select fan-in that can reorder
//     results; waived with //gasper:nondet.
//   - codecfields — cross-checks every snapshot codec (EncodeTo/Decode
//     pairs over *codec.Writer / *codec.Reader) and every Clone method
//     against its struct definition: a field missing from either side of
//     the codec, or a reference-typed field shallow-copied by Clone, is a
//     diagnostic unless the field carries //gasper:nocodec or
//     //gasper:shallow.
//   - noalloc     — checks functions annotated //gasper:noalloc for
//     syntactically allocating constructs (map/slice literals, make, new,
//     append growth, fmt calls, closures, string concatenation); a cold
//     path inside one is waived line-by-line with //gasper:alloc.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Diagnostic) but is built on the standard
// library only — go/ast + go/types, with type information for imports
// loaded from `go list -export` compiler export data — so the module
// stays dependency-free.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check, in the shape of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters.
	Name string
	// Doc is the one-paragraph description printed by `gasperlint -help`.
	Doc string
	// Run reports diagnostics for one package via pass.Report.
	Run func(pass *Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// dirs is the per-line waiver/annotation index for the package.
	dirs *directiveIndex
	// report collects diagnostics.
	report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: p.Fset.Position(pos), Message: fmt.Sprintf(format, args...)})
}

// Analyzers returns the full gasperlint suite in deterministic order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetRange, DetSource, CodecFields, NoAlloc}
}

// DeterministicPackages lists the import-path suffixes (relative to the
// module root) whose results must be bit-identical for a given seed: the
// simulation kernel and everything a sweep cell's payload is computed
// from. detrange and detsource only fire inside these packages (and their
// subpackages); codecfields and noalloc apply wherever their annotations
// or codec shapes appear.
var DeterministicPackages = []string{
	"internal/sim",
	"internal/engine",
	"internal/forkchoice",
	"internal/beacon",
	"internal/ffg",
	"internal/attestation",
	"internal/behavior",
	"internal/network",
	"internal/blocktree",
	"internal/slashing",
	"internal/validator",
}

// deterministic reports whether pkgPath is one of the deterministic
// packages or a subpackage of one. Fixture packages (used by the
// analyzer tests) opt in by naming themselves after an analyzer.
func deterministic(pkgPath string) bool {
	for _, p := range DeterministicPackages {
		if pkgPath == p || strings.HasSuffix(pkgPath, "/"+p) || strings.HasPrefix(pkgPath, p+"/") ||
			strings.Contains(pkgPath, "/"+p+"/") {
			return true
		}
	}
	// Test fixtures under internal/lint/testdata declare intent by path.
	return strings.Contains(pkgPath, "lint/testdata/") || strings.HasPrefix(pkgPath, "detrange") ||
		strings.HasPrefix(pkgPath, "detsource")
}

// Run applies every analyzer to every package and returns the combined
// diagnostics sorted by file position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		dirs := indexDirectives(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Fset:  pkg.Fset,
				Files: pkg.Files,
				Pkg:   pkg.Types,
				Info:  pkg.Info,
				dirs:  dirs,
			}
			name := a.Name
			pass.report = func(d Diagnostic) {
				d.Analyzer = name
				out = append(out, d)
			}
			a.Run(pass)
		}
		// Unused or malformed waivers are themselves diagnostics: a waiver
		// that no longer waives anything is stale documentation.
		for _, d := range dirs.problems {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return out
}
