package store

import (
	"os"
	"sync/atomic"
)

// checkpointKeyPrefix namespaces checkpoint entries away from result
// entries inside one shared store directory: the content address is the
// SHA-256 of the full key, so a cell's checkpoint and its result can
// never collide even though both are keyed by the same canonical cell
// key. One entry per cell — Save overwrites, which IS the retention
// policy (only the newest epoch survives), and a completed cell's Delete
// leaves nothing behind, so the checkpoint tier cannot grow beyond one
// in-flight entry per running cell.
const checkpointKeyPrefix = "checkpoint\x00"

// CheckpointStats is a point-in-time summary of the checkpoint tier's
// lifetime counters since Open.
type CheckpointStats struct {
	// Written counts checkpoint saves; Bytes their cumulative payload
	// size.
	Written uint64 `json:"written"`
	Bytes   uint64 `json:"bytes"`
	// Loaded counts successful checkpoint probes (a starting cell found a
	// valid checkpoint); Missed counts probes that found nothing valid.
	Loaded uint64 `json:"loaded"`
	Missed uint64 `json:"missed"`
	// GCDeleted counts checkpoints removed after their cell completed.
	GCDeleted uint64 `json:"gc_deleted"`
}

// Checkpoints is the durable mid-cell checkpoint tier: an opaque-payload
// namespace inside a Store, keyed by canonical cell key. It inherits the
// store's whole durability contract — temp+rename atomic writes, torn/
// truncated/bit-flipped entries read as silent misses with the damaged
// file removed, orphaned temp files swept at Open — so a crash at any
// instant costs at most one recomputed checkpoint interval, never an
// error. It implements engine.CheckpointStore.
type Checkpoints struct {
	s *Store

	written, bytes, loaded, missed, gcDeleted atomic.Uint64
}

// NewCheckpoints layers a checkpoint tier over an open store. Result and
// checkpoint tiers share the directory and the write path; only the key
// namespace and counters differ.
func NewCheckpoints(s *Store) *Checkpoints { return &Checkpoints{s: s} }

// OpenCheckpoints opens (creating if needed) a checkpoint store rooted at
// dir, sweeping any orphaned temp files left by a crashed writer.
func OpenCheckpoints(dir string) (*Checkpoints, error) {
	s, err := Open(dir)
	if err != nil {
		return nil, err
	}
	return NewCheckpoints(s), nil
}

// Checkpoints returns the checkpoint tier sharing this result store's
// directory and underlying store — the serve fabric's layout, where a
// worker's -store holds both its results and its in-flight checkpoints.
func (r *Results) Checkpoints() *Checkpoints { return NewCheckpoints(r.s) }

// SaveCheckpoint atomically persists the cell's current checkpoint,
// replacing any older one (newest-epoch retention by construction).
func (c *Checkpoints) SaveCheckpoint(cellKey string, payload []byte) error {
	err := c.s.Put(checkpointKeyPrefix+cellKey, payload)
	if err == nil {
		c.written.Add(1)
		c.bytes.Add(uint64(len(payload)))
	}
	return err
}

// LoadCheckpoint returns the newest valid checkpoint for the cell. Any
// damage — a missing entry, a torn or truncated file, a checksum
// mismatch — reads as a miss; the engine then starts the cell cold.
func (c *Checkpoints) LoadCheckpoint(cellKey string) ([]byte, bool) {
	payload, ok := c.s.Get(checkpointKeyPrefix + cellKey)
	if ok {
		c.loaded.Add(1)
	} else {
		c.missed.Add(1)
	}
	return payload, ok
}

// DeleteCheckpoint removes the cell's checkpoint; the engine calls it
// when the cell completes (and when a decoded payload proves invalid, so
// the next writer starts clean).
func (c *Checkpoints) DeleteCheckpoint(cellKey string) {
	if c.s.Delete(checkpointKeyPrefix + cellKey) {
		c.gcDeleted.Add(1)
	}
}

// Stats reports the checkpoint tier's lifetime counters.
func (c *Checkpoints) Stats() CheckpointStats {
	return CheckpointStats{
		Written:   c.written.Load(),
		Bytes:     c.bytes.Load(),
		Loaded:    c.loaded.Load(),
		Missed:    c.missed.Load(),
		GCDeleted: c.gcDeleted.Load(),
	}
}

// Contains reports whether a valid checkpoint exists for the cell,
// without counting a hit or miss.
func (c *Checkpoints) Contains(cellKey string) bool {
	return c.s.Contains(checkpointKeyPrefix + cellKey)
}

// CorruptCheckpointForTest truncates the on-disk checkpoint entry for a
// cell mid-payload, simulating a torn write; it reports whether an entry
// existed to damage.
func CorruptCheckpointForTest(c *Checkpoints, cellKey string) (bool, error) {
	path := c.s.path(checkpointKeyPrefix + cellKey)
	info, err := os.Stat(path)
	if err != nil {
		return false, nil
	}
	return true, os.Truncate(path, info.Size()/2)
}
