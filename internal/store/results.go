package store

import (
	"encoding/json"
	"os"

	"repro/internal/engine"
)

// Results is the typed view of a Store holding engine.Result payloads —
// the layer the server's tiered cache and the client's read-through use.
// Keys are canonical cell keys (engine.CellKey); payloads are JSON-encoded
// results with execution metadata stripped, so a stored entry is exactly
// the deterministic payload and warm/cold/sharded producers write
// bit-identical bytes for the same cell.
type Results struct {
	s *Store
}

// OpenResults opens (creating if needed) a result store rooted at dir.
func OpenResults(dir string) (*Results, error) {
	s, err := Open(dir)
	if err != nil {
		return nil, err
	}
	return &Results{s: s}, nil
}

// Get returns the stored result for the canonical key. A payload that
// passes the integrity header but no longer decodes (a result-schema
// change across versions) is treated exactly like corruption: the entry is
// dropped and the caller recomputes and rewrites it.
func (r *Results) Get(key string) (engine.Result, bool) {
	payload, ok := r.s.Get(key)
	if !ok {
		return engine.Result{}, false
	}
	var res engine.Result
	if err := json.Unmarshal(payload, &res); err != nil {
		r.s.corrupt.Add(1)
		r.s.hits.Add(^uint64(0)) // the raw read counted a hit; it wasn't
		r.s.misses.Add(1)
		r.s.removeEntry(r.s.path(key), entrySize(key, payload))
		return engine.Result{}, false
	}
	return res, true
}

// entrySize reconstructs the on-disk size of an entry from its parts.
func entrySize(key string, payload []byte) int64 {
	return int64(headerSize + len(key) + len(payload))
}

// Put stores the result under the canonical key, stripped of execution
// metadata (timings and cache/warm provenance are per-process facts; the
// store holds only the deterministic payload).
func (r *Results) Put(key string, res engine.Result) error {
	payload, err := json.Marshal(res.WithoutMeta())
	if err != nil {
		return err
	}
	return r.s.Put(key, payload)
}

// PutRaw stores a pre-encoded payload; tests use it to plant undecodable
// entries.
func (r *Results) PutRaw(key string, payload []byte) error {
	return r.s.Put(key, payload)
}

// Stats reports the underlying store's footprint and counters.
func (r *Results) Stats() Stats { return r.s.Stats() }

// Dir returns the store's root directory.
func (r *Results) Dir() string { return r.s.Dir() }

// Close flushes and closes the underlying store.
func (r *Results) Close() error { return r.s.Close() }

// CorruptForTest damages the on-disk entry for key by truncating it
// mid-payload, simulating a torn write; it reports whether an entry
// existed to damage. Exposed for the durability suites that live outside
// this package (internal/server's restart and corruption tests).
func CorruptForTest(r *Results, key string) (bool, error) {
	path := r.s.path(key)
	info, err := os.Stat(path)
	if err != nil {
		return false, nil
	}
	return true, os.Truncate(path, info.Size()/2)
}
