package store_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/store"
)

// benchGrid is the persistence acceptance workload, the same 30-cell
// sim/gst grid at 10,000 validators the warm-start benchmark sweeps: 15
// horizons x 2 gst values. Cold computes every cell through the engine;
// store re-serves the whole grid from a populated result store, which is
// what a restarted serve process (or a fresh client over WithResultStore)
// does for a repeated grid.
func benchGrid() []engine.Cell {
	horizons := make([]int, 0, 15)
	for h := 8; h <= 22; h++ {
		horizons = append(horizons, h)
	}
	return engine.Grid{
		Scenario: "sim/gst",
		P0:       []float64{0.5},
		GSTs:     []int{30, 40},
		Horizons: horizons,
		N:        10000,
	}.Cells()
}

// cellKeys resolves every cell's canonical store key.
func cellKeys(b *testing.B, cells []engine.Cell) []string {
	b.Helper()
	keys := make([]string, len(cells))
	for i, c := range cells {
		key, ok := engine.CanonicalCellKey(nil, c)
		if !ok {
			b.Fatalf("cell %d: unknown scenario %q", i, c.Scenario)
		}
		keys[i] = key
	}
	return keys
}

// BenchmarkSweepStoreWarm measures the persistent tier's payoff: "cold"
// computes the grid through the engine; "store" re-serves the identical
// grid from a freshly reopened result store over the same directory — the
// restarted-process path, including reopen, disk reads, integrity checks,
// and JSON decoding. CI gates store >= 20x cold cells/sec, and the
// store-served payload is asserted bit-identical to the computed one —
// the speedup is only admissible because the bytes are the same.
func BenchmarkSweepStoreWarm(b *testing.B) {
	cells := benchGrid()
	keys := cellKeys(b, cells)
	dir := b.TempDir()

	var cold []engine.Result
	b.Run("cold", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cold = engine.SweepContext(context.Background(), cells, engine.Options{Workers: 1})
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N*len(cells))/secs, "cells/sec")
		}
		for i, r := range cold {
			if r.Err != "" {
				b.Fatalf("cell %d failed: %s", i, r.Err)
			}
		}
	})
	if cold == nil {
		b.Skip("cold sweep did not run")
	}

	// Populate the store outside any timer, then reopen per iteration so
	// the measured path includes everything a fresh process pays.
	populate, err := store.OpenResults(dir)
	if err != nil {
		b.Fatal(err)
	}
	for i, r := range cold {
		if err := populate.Put(keys[i], r); err != nil {
			b.Fatal(err)
		}
	}
	if err := populate.Close(); err != nil {
		b.Fatal(err)
	}

	var served []engine.Result
	b.Run("store", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, err := store.OpenResults(dir)
			if err != nil {
				b.Fatal(err)
			}
			served = make([]engine.Result, len(cells))
			for j, key := range keys {
				res, ok := r.Get(key)
				if !ok {
					b.Fatalf("cell %d missing from the store", j)
				}
				served[j] = res
			}
			if err := r.Close(); err != nil {
				b.Fatal(err)
			}
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N*len(cells))/secs, "cells/sec")
		}
	})
	if served != nil {
		for i := range cold {
			if !reflect.DeepEqual(cold[i].WithoutMeta(), served[i].WithoutMeta()) {
				b.Fatalf("cell %d: store-served result diverges from computed", i)
			}
		}
	}
}
