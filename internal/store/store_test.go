package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/engine"
)

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "leaksim|P0=0.5|N=10000"
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store must miss")
	}
	payload := []byte(`{"scenario":"leaksim"}`)
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want the stored payload", got, ok)
	}
	if !s.Contains(key) {
		t.Error("Contains must see the entry")
	}
	st := s.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %+v", st)
	}
	if want := int64(headerSize + len(key) + len(payload)); st.Bytes != want {
		t.Errorf("bytes = %d, want %d", st.Bytes, want)
	}

	// Overwrite adjusts bytes without duplicating the entry.
	bigger := append(payload, []byte(` `)...)
	if err := s.Put(key, bigger); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Entries != 1 || st.Bytes != int64(headerSize+len(key)+len(bigger)) {
		t.Errorf("after overwrite: stats = %+v", st)
	}
}

// entryPath exposes the content address for damage tests.
func entryPath(t *testing.T, s *Store, key string) string {
	t.Helper()
	path := s.path(key)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no entry on disk for %q: %v", key, err)
	}
	return path
}

// TestStoreDamageReadsAsMiss covers the torn-write contract: every way an
// entry can be damaged on disk — truncation mid-payload, truncation into
// the header, a flipped payload byte, garbage content, an empty file —
// must read as a miss (never an error), remove the bad entry, and let a
// subsequent Put repair it.
func TestStoreDamageReadsAsMiss(t *testing.T) {
	key := "leaksim|P0=0.5"
	payload := []byte(`{"scenario":"leaksim","metrics":[{"name":"m","value":1}]}`)
	for _, tc := range []struct {
		name   string
		damage func(path string, size int64) error
	}{
		{"truncated payload", func(p string, n int64) error { return os.Truncate(p, n-5) }},
		{"truncated header", func(p string, n int64) error { return os.Truncate(p, headerSize-3) }},
		{"empty file", func(p string, n int64) error { return os.Truncate(p, 0) }},
		{"flipped payload byte", func(p string, n int64) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			data[len(data)-3] ^= 0x40
			return os.WriteFile(p, data, 0o644)
		}},
		{"garbage content", func(p string, n int64) error {
			return os.WriteFile(p, []byte("not an entry at all"), 0o644)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			path := entryPath(t, s, key)
			info, _ := os.Stat(path)
			if err := tc.damage(path, info.Size()); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); ok {
				t.Fatalf("damaged entry served as a hit: %q", got)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("damaged entry must be removed")
			}
			if st := s.Stats(); st.Corrupt != 1 || st.Entries != 0 {
				t.Errorf("stats after damage = %+v, want 1 corrupt / 0 entries", st)
			}
			// The next write repairs the address.
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); !ok || !bytes.Equal(got, payload) {
				t.Errorf("rewrite not served: %q, %v", got, ok)
			}
		})
	}
}

// TestStoreKeyMismatchReadsAsMiss plants another key's (valid) entry at
// this key's content address: the embedded full key disagrees, so the read
// must miss rather than serve a different cell's payload.
func TestStoreKeyMismatchReadsAsMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("other", []byte("other payload")); err != nil {
		t.Fatal(err)
	}
	src := entryPath(t, s, "other")
	dst := s.path("victim")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(src)
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("victim"); ok {
		t.Fatalf("foreign entry served as a hit: %q", got)
	}
}

func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	want := s.Stats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("late", nil); err != ErrClosed {
		t.Errorf("Put after Close = %v, want ErrClosed", err)
	}

	// A leftover temp file from an interrupted write is swept on reopen.
	tmp := filepath.Join(dir, "ab")
	os.MkdirAll(tmp, 0o755)
	tmpFile := filepath.Join(tmp, ".put-12345")
	os.WriteFile(tmpFile, []byte("half an entr"), 0o644)

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := re.Stats(); st.Entries != want.Entries || st.Bytes != want.Bytes {
		t.Errorf("reopened stats = %+v, want %d entries / %d bytes", st, want.Entries, want.Bytes)
	}
	if _, err := os.Stat(tmpFile); !os.IsNotExist(err) {
		t.Error("interrupted temp file must be swept on reopen")
	}
	for i := 0; i < 5; i++ {
		got, ok := re.Get(fmt.Sprintf("key-%d", i))
		if !ok || string(got) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("key-%d not served after reopen: %q, %v", i, got, ok)
		}
	}
}

// TestStoreConcurrentAccess hammers one store from many goroutines mixing
// puts, gets, and overwrites of shared and distinct keys; the race
// detector (CI runs this package under -race) plus payload integrity are
// the assertions.
func TestStoreConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const rounds = 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			own := fmt.Sprintf("own-%d", g)
			for i := 0; i < rounds; i++ {
				if err := s.Put("shared", []byte("shared payload")); err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Get("shared"); ok && string(got) != "shared payload" {
					t.Errorf("shared read tore: %q", got)
					return
				}
				payload := []byte(fmt.Sprintf("payload-%d-%d", g, i))
				if err := s.Put(own, payload); err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Get(own); !ok || !bytes.Equal(got, payload) {
					t.Errorf("own read = %q, %v; want %q", got, ok, payload)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Corrupt != 0 || st.Entries != goroutines+1 {
		t.Errorf("stats = %+v, want 0 corrupt / %d entries", st, goroutines+1)
	}
}

func TestResultsRoundTripStripsMeta(t *testing.T) {
	r, err := OpenResults(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := engine.Result{
		Scenario: "leaksim",
		Params:   engine.Params{P0: 0.5, N: 100}.WithDefaults(engine.Params{}),
		Metrics:  []engine.Metric{{Name: "conflict_epoch", Value: 4668}},
		Meta:     &engine.RunMeta{DurationMS: 123, Cached: true},
	}
	key := engine.CellKey(res.Scenario, res.Params)
	if err := r.Put(key, res); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Get(key)
	if !ok {
		t.Fatal("stored result must hit")
	}
	if got.Meta != nil {
		t.Errorf("stored entry carries execution metadata: %+v", got.Meta)
	}
	if !reflect.DeepEqual(got, res.WithoutMeta()) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, res.WithoutMeta())
	}
}

// TestResultsUndecodablePayloadReadsAsMiss: an entry that passes the
// integrity header but does not decode as a Result (schema drift) is
// dropped and missed, never an error.
func TestResultsUndecodablePayloadReadsAsMiss(t *testing.T) {
	r, err := OpenResults(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.PutRaw("k", []byte(`{"scenario": 42}`)); err != nil {
		t.Fatal(err)
	}
	if got, ok := r.Get("k"); ok {
		t.Fatalf("undecodable payload served as a hit: %+v", got)
	}
	st := r.Stats()
	if st.Corrupt != 1 || st.Entries != 0 || st.Hits != 0 || st.Misses != 1 {
		t.Errorf("stats = %+v, want the bad entry dropped and recounted as a miss", st)
	}
	// CorruptForTest is the torn-write hook the cross-package suites use;
	// pin its behavior here.
	if err := r.Put("k2", engine.Result{Scenario: "s"}); err != nil {
		t.Fatal(err)
	}
	if ok, err := CorruptForTest(r, "k2"); !ok || err != nil {
		t.Fatalf("CorruptForTest = %v, %v", ok, err)
	}
	if _, ok := r.Get("k2"); ok {
		t.Error("truncated entry served as a hit")
	}
}
