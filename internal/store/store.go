// Package store is the persistent tier of the sweep fabric: a
// content-addressed on-disk result store keyed by the canonical cell key
// (engine.CellKey — scenario plus fully-defaulted params, the same string
// the server's in-memory LRU keys by). Every cell of the reproduction is
// seed-deterministic, so a stored payload is as good as a recomputation:
// repeated grids survive process restarts at disk speed, and warm, cold,
// and sharded sweeps all share one store.
//
// Durability model: entries are written to a temp file in the target
// directory and renamed into place, so a reader never observes a
// half-written entry under its final name. Every entry carries a
// magic/version/length/checksum header plus the full key, so a torn write,
// a truncation, a flipped bit, or a hash collision is detected on read and
// treated as a miss (the bad file is removed so the next write repairs it)
// — corruption can cost a recomputation, never an error.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// Entry file layout (little-endian):
//
//	magic   [4]byte  "GLS1"
//	keyLen  uint32
//	payLen  uint32
//	sum     uint64   FNV-64a over key bytes then payload bytes
//	key     [keyLen]byte
//	payload [payLen]byte
const (
	magic      = "GLS1"
	headerSize = 4 + 4 + 4 + 8
	// entryExt marks finished entries; temp files use a dot prefix and are
	// ignored (and swept) by Open's scan.
	entryExt = ".res"
)

// Stats is a point-in-time summary of a store: resident entries/bytes and
// the lifetime operation counters since Open.
type Stats struct {
	Entries int64  `json:"entries"`
	Bytes   int64  `json:"bytes"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Puts    uint64 `json:"puts"`
	// Corrupt counts reads that found a damaged entry (torn write,
	// truncation, checksum or key mismatch) and degraded to a miss.
	Corrupt uint64 `json:"corrupt,omitempty"`
}

// Store is a thread-safe content-addressed byte store. The zero value is
// not usable; construct with Open.
type Store struct {
	dir string

	hits, misses, puts, corrupt atomic.Uint64
	entries, bytes              atomic.Int64

	mu     sync.Mutex // serializes writes and close
	closed bool
}

// Open creates dir if needed, scans any existing entries into the
// entry/byte counters (a restarted process resumes serving its
// predecessor's results), and returns the store. Leftover temp files from
// interrupted writes are swept.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.HasPrefix(d.Name(), ".") {
			os.Remove(path) // interrupted write; its rename never happened
			return nil
		}
		if !strings.HasSuffix(d.Name(), entryExt) {
			return nil
		}
		if info, err := d.Info(); err == nil {
			s.entries.Add(1)
			s.bytes.Add(info.Size())
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", dir, err)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key to its content address: SHA-256 of the key, hex, split
// into a 2-character shard directory plus file name.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, h[:2], h[2:]+entryExt)
}

// checksum is the entry integrity hash: FNV-64a over key then payload.
func checksum(key string, payload []byte) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write(payload)
	return h.Sum64()
}

// Get returns the payload stored under key. Any damage — missing file,
// torn or truncated write, checksum mismatch, or a different key at the
// same address — reads as a miss, and damaged files are removed so the
// next Put repairs them; Get never returns an error.
func (s *Store) Get(key string) ([]byte, bool) {
	path := s.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, ok := decode(key, data)
	if !ok {
		s.corrupt.Add(1)
		s.misses.Add(1)
		s.removeEntry(path, int64(len(data)))
		return nil, false
	}
	s.hits.Add(1)
	return payload, true
}

// decode validates an entry read from disk and extracts its payload.
func decode(key string, data []byte) ([]byte, bool) {
	if len(data) < headerSize || string(data[:4]) != magic {
		return nil, false
	}
	keyLen := binary.LittleEndian.Uint32(data[4:])
	payLen := binary.LittleEndian.Uint32(data[8:])
	sum := binary.LittleEndian.Uint64(data[12:])
	if uint64(len(data)) != headerSize+uint64(keyLen)+uint64(payLen) {
		return nil, false
	}
	gotKey := data[headerSize : headerSize+keyLen]
	payload := data[headerSize+keyLen:]
	if string(gotKey) != key || checksum(key, payload) != sum {
		return nil, false
	}
	return payload, true
}

// Contains reports whether a valid entry for key is on disk, without
// counting a hit or a miss.
func (s *Store) Contains(key string) bool {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return false
	}
	_, ok := decode(key, data)
	return ok
}

// ErrClosed is returned by Put after Close.
var ErrClosed = errors.New("store: closed")

// Put stores payload under key, atomically: the entry is assembled in a
// temp file in the target shard directory and renamed into place, so
// concurrent readers see either the old entry or the new one, never a
// partial write. Re-putting a key overwrites its entry.
func (s *Store) Put(key string, payload []byte) error {
	buf := make([]byte, headerSize+len(key)+len(payload))
	copy(buf, magic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(key)))
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[12:], checksum(key, payload))
	copy(buf[headerSize:], key)
	copy(buf[headerSize+len(key):], payload)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(buf); err == nil {
		err = tmp.Sync()
	} else {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	var prior int64 = -1
	if info, err := os.Stat(path); err == nil {
		prior = info.Size()
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if prior < 0 {
		s.entries.Add(1)
		s.bytes.Add(int64(len(buf)))
	} else {
		s.bytes.Add(int64(len(buf)) - prior)
	}
	s.puts.Add(1)
	return nil
}

// Delete removes the entry stored under key, if present, and reports
// whether an entry was removed. Deleting a missing key is a no-op. The
// checkpoint tier uses it to garbage-collect a completed cell's
// checkpoint; result entries are never deleted in normal operation.
func (s *Store) Delete(key string) bool {
	path := s.path(key)
	info, err := os.Stat(path)
	if err != nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Remove(path); err != nil {
		return false
	}
	s.entries.Add(-1)
	s.bytes.Add(-info.Size())
	return true
}

// removeEntry deletes a damaged entry and adjusts the counters.
func (s *Store) removeEntry(path string, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Remove(path); err == nil {
		s.entries.Add(-1)
		s.bytes.Add(-size)
	}
}

// Stats reports the store's resident footprint and lifetime counters.
func (s *Store) Stats() Stats {
	return Stats{
		Entries: s.entries.Load(),
		Bytes:   s.bytes.Load(),
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Puts:    s.puts.Load(),
		Corrupt: s.corrupt.Load(),
	}
}

// Close flushes the store directory (the rename-per-Put protocol keeps
// entries durable on their own; the directory sync pins the names) and
// rejects further writes. Reads keep working — a draining server can still
// serve hits while shutting down.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if d, err := os.Open(s.dir); err == nil {
		err = d.Sync()
		d.Close()
		if err != nil && !errors.Is(err, errors.ErrUnsupported) {
			return fmt.Errorf("store: syncing %s: %w", s.dir, err)
		}
	}
	return nil
}
