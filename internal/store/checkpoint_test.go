package store

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openCheckpoints(t *testing.T) *Checkpoints {
	t.Helper()
	c, err := OpenCheckpoints(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCheckpointsRoundTrip(t *testing.T) {
	c := openCheckpoints(t)
	const key = "sim/leak|p0=0.5;n=10000"
	payload := bytes.Repeat([]byte("epoch-state"), 100)

	if _, ok := c.LoadCheckpoint(key); ok {
		t.Fatal("empty store answered a checkpoint")
	}
	if err := c.SaveCheckpoint(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.LoadCheckpoint(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("LoadCheckpoint = (%d bytes, %t), want the saved payload", len(got), ok)
	}
	st := c.Stats()
	if st.Written != 1 || st.Loaded != 1 || st.Missed != 1 {
		t.Fatalf("stats %+v, want written=1 loaded=1 missed=1", st)
	}
	if st.Bytes != uint64(len(payload)) {
		t.Fatalf("stats bytes = %d, want %d", st.Bytes, len(payload))
	}
}

// TestCheckpointsNewestEpochRetention: one entry per cell — a later save
// replaces the earlier checkpoint, so the tier never accumulates stale
// epochs for a cell.
func TestCheckpointsNewestEpochRetention(t *testing.T) {
	c := openCheckpoints(t)
	const key = "cell"
	for i, payload := range []string{"epoch-500", "epoch-1000", "epoch-1500"} {
		if err := c.SaveCheckpoint(key, []byte(payload)); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	got, ok := c.LoadCheckpoint(key)
	if !ok || string(got) != "epoch-1500" {
		t.Fatalf("LoadCheckpoint = (%q, %t), want newest epoch only", got, ok)
	}
	if st := c.s.Stats(); st.Entries != 1 {
		t.Fatalf("store holds %d entries, want 1 (overwrite retention)", st.Entries)
	}
}

// TestCheckpointsDeleteOnCompletion: a completed cell's delete removes the
// entry (counted as GC) and is idempotent.
func TestCheckpointsDeleteOnCompletion(t *testing.T) {
	c := openCheckpoints(t)
	const key = "cell"
	if err := c.SaveCheckpoint(key, []byte("state")); err != nil {
		t.Fatal(err)
	}
	c.DeleteCheckpoint(key)
	if _, ok := c.LoadCheckpoint(key); ok {
		t.Fatal("deleted checkpoint still loads")
	}
	c.DeleteCheckpoint(key) // idempotent
	if st := c.Stats(); st.GCDeleted != 1 {
		t.Fatalf("gc_deleted = %d, want 1 (second delete is a no-op)", st.GCDeleted)
	}
	if st := c.s.Stats(); st.Entries != 0 {
		t.Fatalf("store holds %d entries after delete, want 0", st.Entries)
	}
}

// TestCheckpointsDamageReadsAsSilentMiss is the durability verdict table:
// a torn write, a truncation, a flipped payload bit, a flipped checksum,
// and a header version/magic skew all read as a silent miss — never an
// error — and the engine's next probe sees a clean cold start.
func TestCheckpointsDamageReadsAsSilentMiss(t *testing.T) {
	const key = "cell"
	payload := bytes.Repeat([]byte{0xAB, 0xCD}, 512)
	cases := []struct {
		name string
		mut  func(t *testing.T, path string)
	}{
		{"torn-write", func(t *testing.T, path string) {
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, info.Size()/2); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated-to-header", func(t *testing.T, path string) {
			if err := os.Truncate(path, headerSize-3); err != nil {
				t.Fatal(err)
			}
		}},
		{"payload-bit-flip", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-7] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"checksum-flip", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			sum := binary.LittleEndian.Uint64(data[12:])
			binary.LittleEndian.PutUint64(data[12:], sum^1)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"version-skew", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			copy(data[:4], "GLS9")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := openCheckpoints(t)
			if err := c.SaveCheckpoint(key, payload); err != nil {
				t.Fatal(err)
			}
			tc.mut(t, c.s.path(checkpointKeyPrefix+key))

			if got, ok := c.LoadCheckpoint(key); ok {
				t.Fatalf("damaged checkpoint loaded (%d bytes)", len(got))
			}
			// The damaged file is cleared, so the next probe is a clean
			// cold start and the next save repairs the entry.
			if c.Contains(key) {
				t.Fatal("damaged entry still on disk after the miss")
			}
			if err := c.SaveCheckpoint(key, payload); err != nil {
				t.Fatalf("re-save after damage: %v", err)
			}
			if got, ok := c.LoadCheckpoint(key); !ok || !bytes.Equal(got, payload) {
				t.Fatal("repaired checkpoint does not load")
			}
		})
	}
}

// TestCheckpointsSweepOrphanedTemp: a temp file left by a crashed writer
// is swept at Open and never surfaces as a checkpoint.
func TestCheckpointsSweepOrphanedTemp(t *testing.T) {
	dir := t.TempDir()
	shard := filepath.Join(dir, "ab")
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(shard, ".put-crashed")
	if err := os.WriteFile(orphan, []byte("half-written checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphaned temp file survived Open (stat err %v)", err)
	}
	if st := c.s.Stats(); st.Entries != 0 {
		t.Fatalf("orphan counted as an entry: %+v", st)
	}
}

// TestCheckpointsShareStoreWithResults: a result entry and a checkpoint
// under the same canonical cell key coexist in one store directory — the
// namespace prefix keeps their content addresses apart — and deleting the
// checkpoint leaves the result untouched.
func TestCheckpointsShareStoreWithResults(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key = "sim/leak|cell"
	if err := s.Put(key, []byte("result-payload")); err != nil {
		t.Fatal(err)
	}
	c := NewCheckpoints(s)
	if err := c.SaveCheckpoint(key, []byte("checkpoint-payload")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); !ok || string(got) != "result-payload" {
		t.Fatalf("result entry disturbed: (%q, %t)", got, ok)
	}
	if got, ok := c.LoadCheckpoint(key); !ok || string(got) != "checkpoint-payload" {
		t.Fatalf("checkpoint entry disturbed: (%q, %t)", got, ok)
	}
	c.DeleteCheckpoint(key)
	if got, ok := s.Get(key); !ok || string(got) != "result-payload" {
		t.Fatalf("checkpoint GC deleted the result entry: (%q, %t)", got, ok)
	}
}

// TestCorruptCheckpointForTest pins the test helper the fabric crash suite
// leans on: it reports entry presence and leaves a torn file behind.
func TestCorruptCheckpointForTest(t *testing.T) {
	c := openCheckpoints(t)
	if ok, err := CorruptCheckpointForTest(c, "absent"); ok || err != nil {
		t.Fatalf("CorruptCheckpointForTest(absent) = (%t, %v), want (false, nil)", ok, err)
	}
	if err := c.SaveCheckpoint("cell", bytes.Repeat([]byte("x"), 256)); err != nil {
		t.Fatal(err)
	}
	if ok, err := CorruptCheckpointForTest(c, "cell"); !ok || err != nil {
		t.Fatalf("CorruptCheckpointForTest(cell) = (%t, %v), want (true, nil)", ok, err)
	}
	if _, ok := c.LoadCheckpoint("cell"); ok {
		t.Fatal("torn checkpoint loaded")
	}
}

// TestCheckpointKeyPrefixUnprintable documents why the namespace prefix
// can never collide with a canonical cell key: cell keys are printable
// scenario/param strings, the prefix embeds a NUL.
func TestCheckpointKeyPrefixUnprintable(t *testing.T) {
	if !strings.ContainsRune(checkpointKeyPrefix, 0) {
		t.Fatal("checkpoint namespace prefix lost its NUL separator")
	}
}
