// Package slashing implements the detector for the two slashable attestation
// offenses of Casper FFG (paper Sections 3.3 and 5.2.1):
//
//   - double vote: two distinct attestations by the same validator with the
//     same target epoch;
//   - surround vote: an attestation whose source/target span strictly
//     surrounds (or is surrounded by) an earlier one from the same validator
//     (s1 < s2 < t2 < t1).
//
// The detector is what turns the paper's "with slashing" scenario (5.2.1)
// into consequences: Byzantine validators voting on both branches of a fork
// during a partition are detected only once honest validators see both
// attestations, i.e. after GST, when evidence can be included in a block.
package slashing

import (
	"fmt"

	"repro/internal/attestation"
	"repro/internal/types"
)

// Kind labels the detected offense.
type Kind int

// Offense kinds.
const (
	None Kind = iota
	DoubleVote
	SurroundVote
)

// String names the offense kind.
func (k Kind) String() string {
	switch k {
	case DoubleVote:
		return "double vote"
	case SurroundVote:
		return "surround vote"
	default:
		return "none"
	}
}

// Evidence is a provable offense: the pair of conflicting votes.
type Evidence struct {
	Validator types.ValidatorIndex
	Kind      Kind
	First     attestation.Data
	Second    attestation.Data
}

// String renders the evidence for logs.
func (e Evidence) String() string {
	return fmt.Sprintf("slashing(%s v=%d t1=%d t2=%d)",
		e.Kind, e.Validator, e.First.Target.Epoch, e.Second.Target.Epoch)
}

// Detector accumulates every attestation it observes and reports offenses.
// One Detector instance corresponds to one observer's knowledge: feed it
// only the attestations that observer has actually received, and it will
// find exactly the offenses that observer can prove. Storage is columnar
// (history and slashed flags indexed by validator), so the per-attestation
// observation on the batch fan-out path is array indexing plus value
// compares — no maps, no hashing. The zero value is not usable; construct
// with NewDetector.
type Detector struct {
	// history[v] holds all distinct attestation data seen from v; the
	// outer slice grows to the highest validator index observed.
	history [][]attestation.Data
	// slashed[v] marks validators with already-reported evidence so each
	// offender is reported once.
	slashed []bool
}

// NewDetector returns an empty detector.
func NewDetector() *Detector {
	return &Detector{}
}

// Observe records an attestation and returns evidence if it completes an
// offense by a not-yet-reported validator, or nil.
func (d *Detector) Observe(a attestation.Attestation) *Evidence {
	v := int(a.Validator)
	for len(d.history) <= v {
		d.history = append(d.history, nil)
		d.slashed = append(d.slashed, false)
	}
	for _, prev := range d.history[v] {
		if prev == a.Data {
			return nil // exact duplicate, not an offense
		}
	}
	var found *Evidence
	if !d.slashed[v] {
		for _, prev := range d.history[v] {
			if kind := Conflict(prev, a.Data); kind != None {
				found = &Evidence{Validator: a.Validator, Kind: kind, First: prev, Second: a.Data}
				d.slashed[v] = true
				break
			}
		}
	}
	d.history[v] = append(d.history[v], a.Data)
	return found
}

// Clone deep-copies the detector, so a snapshotted view can evolve apart
// from its restore points.
func (d *Detector) Clone() *Detector {
	out := &Detector{
		history: make([][]attestation.Data, len(d.history)),
		slashed: append([]bool(nil), d.slashed...),
	}
	// One backing array for the whole history rather than one allocation
	// per validator (allocation count, not bytes, dominates a paper-scale
	// clone). Sub-slices are capped at their length, so appending to
	// either copy's history reallocates instead of clobbering a neighbor.
	total := 0
	for _, datas := range d.history {
		total += len(datas)
	}
	arena := make([]attestation.Data, 0, total)
	for v, datas := range d.history {
		if len(datas) > 0 {
			start := len(arena)
			arena = append(arena, datas...)
			out.history[v] = arena[start:len(arena):len(arena)]
		}
	}
	return out
}

// Prune drops recorded votes with target epoch strictly below e, bounding
// detector memory over long simulations. Already-reported offenders stay
// marked. Pruning narrows the detection window to votes the observer still
// retains — the same weak-subjectivity trade-off real clients make; the
// paper's scenarios surface their evidence within a few epochs of the
// conflicting votes, so the simulator's 8-epoch retention (matching the
// attestation pool's) never loses an offense.
func (d *Detector) Prune(e types.Epoch) {
	for v, datas := range d.history {
		kept := datas[:0]
		for _, data := range datas {
			if data.Target.Epoch >= e {
				kept = append(kept, data)
			}
		}
		if len(kept) == 0 {
			d.history[v] = nil
		} else {
			d.history[v] = kept
		}
	}
}

// Slashed reports whether evidence against v has been produced.
func (d *Detector) Slashed(v types.ValidatorIndex) bool {
	return int(v) < len(d.slashed) && d.slashed[v]
}

// HistoryLen returns the number of distinct votes recorded for v (for tests
// and metrics).
func (d *Detector) HistoryLen(v types.ValidatorIndex) int {
	if int(v) >= len(d.history) {
		return 0
	}
	return len(d.history[v])
}

// Conflict classifies the offense formed by two distinct attestation data
// values from the same validator, or None.
func Conflict(a, b attestation.Data) Kind {
	if a == b {
		return None
	}
	// Double vote: same target epoch, different votes.
	if a.Target.Epoch == b.Target.Epoch {
		return DoubleVote
	}
	// Surround vote: one span strictly inside the other.
	if surrounds(a, b) || surrounds(b, a) {
		return SurroundVote
	}
	return None
}

// surrounds reports whether outer strictly surrounds inner:
// outer.source < inner.source and inner.target < outer.target.
func surrounds(outer, inner attestation.Data) bool {
	return outer.Source.Epoch < inner.Source.Epoch &&
		inner.Target.Epoch < outer.Target.Epoch
}
