package slashing

import (
	"testing"
	"testing/quick"

	"repro/internal/attestation"
	"repro/internal/types"
)

func data(slot, head, srcEpoch, srcRoot, tgtEpoch, tgtRoot uint64) attestation.Data {
	return attestation.Data{
		Slot:   types.Slot(slot),
		Head:   types.RootFromUint64(head),
		Source: types.Checkpoint{Epoch: types.Epoch(srcEpoch), Root: types.RootFromUint64(srcRoot)},
		Target: types.Checkpoint{Epoch: types.Epoch(tgtEpoch), Root: types.RootFromUint64(tgtRoot)},
	}
}

func TestConflictDoubleVote(t *testing.T) {
	a := data(33, 1, 0, 0, 1, 10)
	b := data(33, 2, 0, 0, 1, 20) // same target epoch, different target root
	if got := Conflict(a, b); got != DoubleVote {
		t.Errorf("Conflict = %v, want DoubleVote", got)
	}
}

func TestConflictSurroundVote(t *testing.T) {
	outer := data(200, 1, 0, 0, 6, 10) // source epoch 0, target epoch 6
	inner := data(150, 2, 2, 5, 4, 20) // source epoch 2, target epoch 4
	if got := Conflict(outer, inner); got != SurroundVote {
		t.Errorf("Conflict(outer, inner) = %v, want SurroundVote", got)
	}
	if got := Conflict(inner, outer); got != SurroundVote {
		t.Errorf("Conflict(inner, outer) = %v, want SurroundVote", got)
	}
}

func TestConflictNoneForHonestSequence(t *testing.T) {
	// Consecutive honest votes: source = previous target, increasing
	// epochs. Never slashable.
	a := data(33, 1, 0, 0, 1, 10)
	b := data(65, 2, 1, 10, 2, 20)
	if got := Conflict(a, b); got != None {
		t.Errorf("Conflict = %v, want None", got)
	}
}

func TestConflictNoneForIdentical(t *testing.T) {
	a := data(33, 1, 0, 0, 1, 10)
	if got := Conflict(a, a); got != None {
		t.Errorf("identical data is not an offense, got %v", got)
	}
}

func TestConflictTouchingSpansNotSurround(t *testing.T) {
	// s1 == s2: spans share a source; not a surround.
	a := data(100, 1, 1, 5, 4, 10)
	b := data(120, 2, 1, 5, 3, 20)
	if got := Conflict(a, b); got != None {
		t.Errorf("shared source must not be surround, got %v", got)
	}
	// t2 == t1 with different epochs is impossible; t1 == s2 (adjacent)
	// is fine too:
	c := data(140, 3, 4, 10, 6, 30)
	if got := Conflict(a, c); got != None {
		t.Errorf("adjacent spans must not conflict, got %v", got)
	}
}

func TestDetectorReportsDoubleVoteOnce(t *testing.T) {
	d := NewDetector()
	v := types.ValidatorIndex(5)
	if ev := d.Observe(attestation.Attestation{Validator: v, Data: data(33, 1, 0, 0, 1, 10)}); ev != nil {
		t.Fatalf("first vote produced evidence: %v", ev)
	}
	ev := d.Observe(attestation.Attestation{Validator: v, Data: data(33, 2, 0, 0, 1, 20)})
	if ev == nil || ev.Kind != DoubleVote || ev.Validator != v {
		t.Fatalf("double vote not detected: %v", ev)
	}
	if !d.Slashed(v) {
		t.Error("validator should be marked slashed")
	}
	// Further offenses by the same validator are not re-reported.
	if ev := d.Observe(attestation.Attestation{Validator: v, Data: data(33, 3, 0, 0, 1, 30)}); ev != nil {
		t.Errorf("already-slashed validator re-reported: %v", ev)
	}
}

func TestDetectorIgnoresDuplicates(t *testing.T) {
	d := NewDetector()
	a := attestation.Attestation{Validator: 1, Data: data(33, 1, 0, 0, 1, 10)}
	d.Observe(a)
	if ev := d.Observe(a); ev != nil {
		t.Errorf("duplicate observation produced evidence: %v", ev)
	}
	if d.HistoryLen(1) != 1 {
		t.Errorf("history len = %d, want 1", d.HistoryLen(1))
	}
}

func TestDetectorSeparatesValidators(t *testing.T) {
	d := NewDetector()
	d.Observe(attestation.Attestation{Validator: 1, Data: data(33, 1, 0, 0, 1, 10)})
	if ev := d.Observe(attestation.Attestation{Validator: 2, Data: data(33, 2, 0, 0, 1, 20)}); ev != nil {
		t.Errorf("votes by different validators must not conflict: %v", ev)
	}
}

func TestDetectorSurround(t *testing.T) {
	d := NewDetector()
	v := types.ValidatorIndex(9)
	d.Observe(attestation.Attestation{Validator: v, Data: data(150, 2, 2, 5, 4, 20)})
	ev := d.Observe(attestation.Attestation{Validator: v, Data: data(200, 1, 0, 0, 6, 10)})
	if ev == nil || ev.Kind != SurroundVote {
		t.Fatalf("surround vote not detected: %v", ev)
	}
}

func TestDetectorHonestStreamNeverSlashed(t *testing.T) {
	// Property: an honest vote stream (source = previous target,
	// strictly increasing target epochs, one vote per epoch) never
	// triggers the detector.
	f := func(seed uint8) bool {
		d := NewDetector()
		v := types.ValidatorIndex(1)
		prevRoot := uint64(0)
		for e := uint64(1); e < uint64(8)+uint64(seed%8); e++ {
			root := e*100 + uint64(seed)
			ev := d.Observe(attestation.Attestation{
				Validator: v,
				Data:      data(e*32+1, root, e-1, prevRoot, e, root),
			})
			if ev != nil {
				return false
			}
			prevRoot = root
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	if None.String() != "none" || DoubleVote.String() != "double vote" || SurroundVote.String() != "surround vote" {
		t.Error("Kind.String mismatch")
	}
	ev := Evidence{Validator: 3, Kind: DoubleVote, First: data(33, 1, 0, 0, 1, 10), Second: data(33, 2, 0, 0, 1, 20)}
	if ev.String() == "" {
		t.Error("Evidence.String should be non-empty")
	}
}

// TestDetectorPruneBoundsHistory pins the long-horizon memory contract:
// pruning drops votes below the retention epoch, keeps newer ones (still
// matching offenses against them), and never forgets reported offenders.
func TestDetectorPruneBoundsHistory(t *testing.T) {
	d := NewDetector()
	att := func(v types.ValidatorIndex, tgt types.Epoch, root uint64) attestation.Attestation {
		return attestation.Attestation{Validator: v, Data: attestation.Data{
			Slot:   tgt.StartSlot(),
			Head:   types.RootFromUint64(root),
			Source: types.Checkpoint{Epoch: 0, Root: types.RootFromUint64(0)},
			Target: types.Checkpoint{Epoch: tgt, Root: types.RootFromUint64(root)},
		}}
	}
	for e := types.Epoch(1); e <= 20; e++ {
		if ev := d.Observe(att(1, e, uint64(e))); ev != nil {
			t.Fatalf("honest history produced evidence at epoch %d", e)
		}
	}
	d.Prune(13)
	if got := d.HistoryLen(1); got != 8 {
		t.Fatalf("history after prune = %d votes, want 8 (epochs 13-20)", got)
	}
	// A double vote against a RETAINED epoch is still caught...
	if ev := d.Observe(att(1, 18, 999)); ev == nil || ev.Kind != DoubleVote {
		t.Fatalf("double vote against retained epoch 18 not detected: %v", ev)
	}
	// ...and the offender stays marked through further pruning.
	d.Prune(30)
	if !d.Slashed(1) {
		t.Error("prune forgot a reported offender")
	}
}
