package slashing

import (
	"repro/internal/attestation"
	"repro/internal/codec"
	"repro/internal/types"
)

// EncodeTo serializes the detector for the durable snapshot codec: the
// per-validator attestation history (slice order preserved — Observe
// dedups by linear scan) and the already-reported marks.
func (d *Detector) EncodeTo(w *codec.Writer) {
	w.Len(len(d.history))
	for _, hs := range d.history {
		w.Len(len(hs))
		for _, a := range hs {
			attestation.EncodeData(w, a)
		}
	}
	w.Len(len(d.slashed))
	for _, s := range d.slashed {
		w.Bool(s)
	}
}

// DecodeDetector reconstructs a detector serialized by EncodeTo.
func DecodeDetector(r *codec.Reader) *Detector {
	d := NewDetector()
	nv := r.Len()
	if r.Err() != nil {
		return nil
	}
	d.history = make([][]attestation.Data, nv)
	for v := 0; v < nv; v++ {
		nh := r.Len()
		if r.Err() != nil {
			return nil
		}
		if nh == 0 {
			continue
		}
		hs := make([]attestation.Data, nh)
		for i := 0; i < nh; i++ {
			hs[i] = attestation.DecodeData(r)
		}
		d.history[v] = hs
	}
	ns := r.Len()
	if r.Err() != nil {
		return nil
	}
	d.slashed = make([]bool, ns)
	for i := 0; i < ns; i++ {
		d.slashed[i] = r.Bool()
	}
	if r.Err() != nil {
		return nil
	}
	return d
}

// EncodeEvidence serializes one piece of slashing evidence.
func EncodeEvidence(w *codec.Writer, e Evidence) {
	w.U64(uint64(e.Validator))
	w.Int(int(e.Kind))
	attestation.EncodeData(w, e.First)
	attestation.EncodeData(w, e.Second)
}

// DecodeEvidence reads one piece of slashing evidence.
func DecodeEvidence(r *codec.Reader) Evidence {
	var e Evidence
	e.Validator = types.ValidatorIndex(r.U64())
	e.Kind = Kind(r.Int())
	e.First = attestation.DecodeData(r)
	e.Second = attestation.DecodeData(r)
	return e
}
