// Package validator maintains the validator registry: per-validator stake,
// inactivity score, and life-cycle status (active, slashed, ejected).
//
// A registry is the balance sheet of one branch. During a fork each branch
// evaluates activity — and therefore penalties, scores, and ejections — on
// its own, so branch simulations clone one registry per branch (paper
// Section 4.1: "if there are multiple branches, a validator's inactivity
// score depends on the selected branch").
//
// The registry is stored column-wise (struct of arrays): flat stake, score,
// status, and exit-epoch slices. Epoch-boundary incentive processing is a
// linear sweep over these columns with no per-validator allocation, which
// is what lets one materialized view serve a paper-scale cohort (see
// internal/sim). The row-oriented API (Get, ForEach) is preserved on top of
// the columns.
package validator

import (
	"errors"
	"fmt"

	"repro/internal/types"
)

// ErrUnknownValidator is returned for out-of-range indices.
var ErrUnknownValidator = errors.New("validator: unknown validator index")

// Status is the life-cycle state of a validator.
type Status int

// Life-cycle states.
const (
	// Active validators attest and their stake counts toward quorums.
	Active Status = iota
	// Slashed validators were ejected for a provable offense.
	Slashed
	// Ejected validators dropped below the ejection balance during a
	// leak and left the validator set.
	Ejected
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Slashed:
		return "slashed"
	case Ejected:
		return "ejected"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Validator is one registry row, assembled from the columns on demand.
type Validator struct {
	Index           types.ValidatorIndex
	Stake           types.Gwei
	InactivityScore uint64
	Status          Status
	// ExitEpoch records when the validator left the set;
	// types.FarFutureEpoch while in the set.
	ExitEpoch types.Epoch
}

// InSet reports whether the validator still belongs to the validator set.
func (v Validator) InSet() bool { return v.Status == Active }

// Registry is the mutable validator set of one branch view, stored as
// columns. The zero value is an empty registry; construct populated ones
// with NewRegistry.
type Registry struct {
	stakes []types.Gwei
	scores []uint64
	status []Status
	exit   []types.Epoch
}

// Columns is a writable view of the registry's storage, handed to the
// incentives engine for allocation-free epoch sweeps. The slices alias the
// registry; mutating them mutates the registry. All four have equal length.
type Columns struct {
	Stakes []types.Gwei
	Scores []uint64
	Status []Status
	Exit   []types.Epoch
}

// NewRegistry creates n validators, each with the given initial stake, all
// active with zero inactivity score.
func NewRegistry(n int, stake types.Gwei) *Registry {
	r := &Registry{
		stakes: make([]types.Gwei, n),
		scores: make([]uint64, n),
		status: make([]Status, n),
		exit:   make([]types.Epoch, n),
	}
	for i := 0; i < n; i++ {
		r.stakes[i] = stake
		r.exit[i] = types.FarFutureEpoch
	}
	return r
}

// Clone returns a deep copy; branch simulations fork the registry at the
// partition point.
func (r *Registry) Clone() *Registry {
	out := &Registry{
		stakes: make([]types.Gwei, len(r.stakes)),
		scores: make([]uint64, len(r.scores)),
		status: make([]Status, len(r.status)),
		exit:   make([]types.Epoch, len(r.exit)),
	}
	copy(out.stakes, r.stakes)
	copy(out.scores, r.scores)
	copy(out.status, r.status)
	copy(out.exit, r.exit)
	return out
}

// Len returns the number of validators ever registered (including exited).
func (r *Registry) Len() int { return len(r.stakes) }

// Columns exposes the registry's columnar storage. The incentive engine's
// epoch sweep iterates these slices directly; other callers should prefer
// the row API.
func (r *Registry) Columns() Columns {
	return Columns{Stakes: r.stakes, Scores: r.scores, Status: r.status, Exit: r.exit}
}

// Get returns a copy of the validator at index v.
func (r *Registry) Get(v types.ValidatorIndex) (Validator, error) {
	if int(v) >= len(r.stakes) {
		return Validator{}, fmt.Errorf("%w: %d", ErrUnknownValidator, v)
	}
	return Validator{
		Index:           v,
		Stake:           r.stakes[v],
		InactivityScore: r.scores[v],
		Status:          r.status[v],
		ExitEpoch:       r.exit[v],
	}, nil
}

// Stake returns the stake of v, or zero if v is unknown or out of the set.
// Fork choice and FFG quorums weigh only in-set validators.
func (r *Registry) Stake(v types.ValidatorIndex) types.Gwei {
	if int(v) >= len(r.stakes) || r.status[v] != Active {
		return 0
	}
	return r.stakes[v]
}

// RawStake returns the stake of v regardless of status (slashed validators
// retain their remaining balance until withdrawal; it no longer counts
// toward quorums).
func (r *Registry) RawStake(v types.ValidatorIndex) types.Gwei {
	if int(v) >= len(r.stakes) {
		return 0
	}
	return r.stakes[v]
}

// Score returns the inactivity score of v (zero for unknown indices).
func (r *Registry) Score(v types.ValidatorIndex) uint64 {
	if int(v) >= len(r.scores) {
		return 0
	}
	return r.scores[v]
}

// SetScore sets the inactivity score of v.
func (r *Registry) SetScore(v types.ValidatorIndex, score uint64) {
	if int(v) < len(r.scores) {
		r.scores[v] = score
	}
}

// SetStake overwrites the stake of v (used by tests and by scenario setup).
func (r *Registry) SetStake(v types.ValidatorIndex, s types.Gwei) {
	if int(v) < len(r.stakes) {
		r.stakes[v] = s
	}
}

// Penalize reduces the stake of v by amount, saturating at zero, and
// returns the amount actually removed.
func (r *Registry) Penalize(v types.ValidatorIndex, amount types.Gwei) types.Gwei {
	if int(v) >= len(r.stakes) {
		return 0
	}
	before := r.stakes[v]
	r.stakes[v] = before.SaturatingSub(amount)
	return before - r.stakes[v]
}

// Slash marks v slashed at epoch e, applies the immediate slashing penalty
// (stake / WhistleblowerQuotient), and removes v from the set.
func (r *Registry) Slash(v types.ValidatorIndex, e types.Epoch) error {
	if int(v) >= len(r.stakes) {
		return fmt.Errorf("%w: %d", ErrUnknownValidator, v)
	}
	if r.status[v] == Slashed {
		return nil // idempotent
	}
	r.stakes[v] = r.stakes[v].SaturatingSub(r.stakes[v] / types.WhistleblowerQuotient)
	r.status[v] = Slashed
	r.exit[v] = e
	return nil
}

// Eject removes v from the set at epoch e for falling below the ejection
// balance.
func (r *Registry) Eject(v types.ValidatorIndex, e types.Epoch) error {
	if int(v) >= len(r.stakes) {
		return fmt.Errorf("%w: %d", ErrUnknownValidator, v)
	}
	if r.status[v] != Active {
		return nil // idempotent
	}
	r.status[v] = Ejected
	r.exit[v] = e
	return nil
}

// InSet reports whether v is currently in the validator set.
func (r *Registry) InSet(v types.ValidatorIndex) bool {
	return int(v) < len(r.status) && r.status[v] == Active
}

// TotalStake sums the stake of all in-set validators.
func (r *Registry) TotalStake() types.Gwei {
	var total types.Gwei
	for i, st := range r.status {
		if st == Active {
			total += r.stakes[i]
		}
	}
	return total
}

// StakeOf sums the stake of the given in-set validators.
func (r *Registry) StakeOf(indices []types.ValidatorIndex) types.Gwei {
	var total types.Gwei
	for _, v := range indices {
		total += r.Stake(v)
	}
	return total
}

// InSetIndices returns the indices of all in-set validators in ascending
// order.
func (r *Registry) InSetIndices() []types.ValidatorIndex {
	out := make([]types.ValidatorIndex, 0, len(r.status))
	for i, st := range r.status {
		if st == Active {
			out = append(out, types.ValidatorIndex(i))
		}
	}
	return out
}

// ForEach calls fn for every validator (in index order), passing a pointer
// to a row assembled from the columns; mutations fn makes are written back.
// Columnar sweeps (incentives) use Columns directly; ForEach remains for
// callers that want row semantics.
func (r *Registry) ForEach(fn func(*Validator)) {
	for i := range r.stakes {
		row := Validator{
			Index:           types.ValidatorIndex(i),
			Stake:           r.stakes[i],
			InactivityScore: r.scores[i],
			Status:          r.status[i],
			ExitEpoch:       r.exit[i],
		}
		fn(&row)
		r.stakes[i] = row.Stake
		r.scores[i] = row.InactivityScore
		r.status[i] = row.Status
		r.exit[i] = row.ExitEpoch
	}
}

// Proportion returns the fraction of total in-set stake held by the given
// validators. Returns zero when the registry is empty.
func (r *Registry) Proportion(indices []types.ValidatorIndex) float64 {
	total := r.TotalStake()
	if total == 0 {
		return 0
	}
	return float64(r.StakeOf(indices)) / float64(total)
}
