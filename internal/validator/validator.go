// Package validator maintains the validator registry: per-validator stake,
// inactivity score, and life-cycle status (active, slashed, ejected).
//
// A registry is the balance sheet of one branch. During a fork each branch
// evaluates activity — and therefore penalties, scores, and ejections — on
// its own, so branch simulations clone one registry per branch (paper
// Section 4.1: "if there are multiple branches, a validator's inactivity
// score depends on the selected branch").
package validator

import (
	"errors"
	"fmt"

	"repro/internal/types"
)

// ErrUnknownValidator is returned for out-of-range indices.
var ErrUnknownValidator = errors.New("validator: unknown validator index")

// Status is the life-cycle state of a validator.
type Status int

// Life-cycle states.
const (
	// Active validators attest and their stake counts toward quorums.
	Active Status = iota
	// Slashed validators were ejected for a provable offense.
	Slashed
	// Ejected validators dropped below the ejection balance during a
	// leak and left the validator set.
	Ejected
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Slashed:
		return "slashed"
	case Ejected:
		return "ejected"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Validator is one registry entry.
type Validator struct {
	Index           types.ValidatorIndex
	Stake           types.Gwei
	InactivityScore uint64
	Status          Status
	// ExitEpoch records when the validator left the set;
	// types.FarFutureEpoch while in the set.
	ExitEpoch types.Epoch
}

// InSet reports whether the validator still belongs to the validator set.
func (v Validator) InSet() bool { return v.Status == Active }

// Registry is the mutable validator set of one branch view. The zero value
// is an empty registry; construct populated ones with NewRegistry.
type Registry struct {
	vals []Validator
}

// NewRegistry creates n validators, each with the given initial stake, all
// active with zero inactivity score.
func NewRegistry(n int, stake types.Gwei) *Registry {
	r := &Registry{vals: make([]Validator, n)}
	for i := range r.vals {
		r.vals[i] = Validator{
			Index:     types.ValidatorIndex(i),
			Stake:     stake,
			ExitEpoch: types.FarFutureEpoch,
		}
	}
	return r
}

// Clone returns a deep copy; branch simulations fork the registry at the
// partition point.
func (r *Registry) Clone() *Registry {
	out := &Registry{vals: make([]Validator, len(r.vals))}
	copy(out.vals, r.vals)
	return out
}

// Len returns the number of validators ever registered (including exited).
func (r *Registry) Len() int { return len(r.vals) }

// Get returns a copy of the validator at index v.
func (r *Registry) Get(v types.ValidatorIndex) (Validator, error) {
	if int(v) >= len(r.vals) {
		return Validator{}, fmt.Errorf("%w: %d", ErrUnknownValidator, v)
	}
	return r.vals[v], nil
}

// Stake returns the stake of v, or zero if v is unknown or out of the set.
// Fork choice and FFG quorums weigh only in-set validators.
func (r *Registry) Stake(v types.ValidatorIndex) types.Gwei {
	if int(v) >= len(r.vals) {
		return 0
	}
	val := r.vals[v]
	if !val.InSet() {
		return 0
	}
	return val.Stake
}

// RawStake returns the stake of v regardless of status (slashed validators
// retain their remaining balance until withdrawal; it no longer counts
// toward quorums).
func (r *Registry) RawStake(v types.ValidatorIndex) types.Gwei {
	if int(v) >= len(r.vals) {
		return 0
	}
	return r.vals[v].Stake
}

// Score returns the inactivity score of v (zero for unknown indices).
func (r *Registry) Score(v types.ValidatorIndex) uint64 {
	if int(v) >= len(r.vals) {
		return 0
	}
	return r.vals[v].InactivityScore
}

// SetScore sets the inactivity score of v.
func (r *Registry) SetScore(v types.ValidatorIndex, score uint64) {
	if int(v) < len(r.vals) {
		r.vals[v].InactivityScore = score
	}
}

// SetStake overwrites the stake of v (used by tests and by scenario setup).
func (r *Registry) SetStake(v types.ValidatorIndex, s types.Gwei) {
	if int(v) < len(r.vals) {
		r.vals[v].Stake = s
	}
}

// Penalize reduces the stake of v by amount, saturating at zero, and
// returns the amount actually removed.
func (r *Registry) Penalize(v types.ValidatorIndex, amount types.Gwei) types.Gwei {
	if int(v) >= len(r.vals) {
		return 0
	}
	before := r.vals[v].Stake
	r.vals[v].Stake = before.SaturatingSub(amount)
	return before - r.vals[v].Stake
}

// Slash marks v slashed at epoch e, applies the immediate slashing penalty
// (stake / WhistleblowerQuotient), and removes v from the set.
func (r *Registry) Slash(v types.ValidatorIndex, e types.Epoch) error {
	if int(v) >= len(r.vals) {
		return fmt.Errorf("%w: %d", ErrUnknownValidator, v)
	}
	val := &r.vals[v]
	if val.Status == Slashed {
		return nil // idempotent
	}
	val.Stake = val.Stake.SaturatingSub(val.Stake / types.WhistleblowerQuotient)
	val.Status = Slashed
	val.ExitEpoch = e
	return nil
}

// Eject removes v from the set at epoch e for falling below the ejection
// balance.
func (r *Registry) Eject(v types.ValidatorIndex, e types.Epoch) error {
	if int(v) >= len(r.vals) {
		return fmt.Errorf("%w: %d", ErrUnknownValidator, v)
	}
	val := &r.vals[v]
	if val.Status != Active {
		return nil // idempotent
	}
	val.Status = Ejected
	val.ExitEpoch = e
	return nil
}

// InSet reports whether v is currently in the validator set.
func (r *Registry) InSet(v types.ValidatorIndex) bool {
	if int(v) >= len(r.vals) {
		return false
	}
	return r.vals[v].InSet()
}

// TotalStake sums the stake of all in-set validators.
func (r *Registry) TotalStake() types.Gwei {
	var total types.Gwei
	for i := range r.vals {
		if r.vals[i].InSet() {
			total += r.vals[i].Stake
		}
	}
	return total
}

// StakeOf sums the stake of the given in-set validators.
func (r *Registry) StakeOf(indices []types.ValidatorIndex) types.Gwei {
	var total types.Gwei
	for _, v := range indices {
		total += r.Stake(v)
	}
	return total
}

// InSetIndices returns the indices of all in-set validators in ascending
// order.
func (r *Registry) InSetIndices() []types.ValidatorIndex {
	out := make([]types.ValidatorIndex, 0, len(r.vals))
	for i := range r.vals {
		if r.vals[i].InSet() {
			out = append(out, types.ValidatorIndex(i))
		}
	}
	return out
}

// ForEach calls fn for every validator (in index order), passing a pointer
// so fn may mutate the entry. It is the bulk-update primitive the
// incentives engine uses.
func (r *Registry) ForEach(fn func(*Validator)) {
	for i := range r.vals {
		fn(&r.vals[i])
	}
}

// Proportion returns the fraction of total in-set stake held by the given
// validators. Returns zero when the registry is empty.
func (r *Registry) Proportion(indices []types.ValidatorIndex) float64 {
	total := r.TotalStake()
	if total == 0 {
		return 0
	}
	return float64(r.StakeOf(indices)) / float64(total)
}
