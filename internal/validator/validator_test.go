package validator

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestNewRegistry(t *testing.T) {
	r := NewRegistry(10, types.MaxEffectiveBalanceGwei)
	if r.Len() != 10 {
		t.Fatalf("Len = %d, want 10", r.Len())
	}
	if got := r.TotalStake(); got != 10*types.MaxEffectiveBalanceGwei {
		t.Errorf("TotalStake = %d, want %d", got, 10*types.MaxEffectiveBalanceGwei)
	}
	v, err := r.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if v.Index != 3 || v.Stake != types.MaxEffectiveBalanceGwei || v.Status != Active {
		t.Errorf("unexpected validator: %+v", v)
	}
	if v.ExitEpoch != types.FarFutureEpoch {
		t.Error("fresh validator must have far-future exit epoch")
	}
}

func TestGetUnknown(t *testing.T) {
	r := NewRegistry(2, 32)
	if _, err := r.Get(5); !errors.Is(err, ErrUnknownValidator) {
		t.Errorf("want ErrUnknownValidator, got %v", err)
	}
}

func TestPenalizeSaturates(t *testing.T) {
	r := NewRegistry(1, 100)
	removed := r.Penalize(0, 30)
	if removed != 30 || r.Stake(0) != 70 {
		t.Errorf("Penalize(30): removed=%d stake=%d", removed, r.Stake(0))
	}
	removed = r.Penalize(0, 1000)
	if removed != 70 || r.Stake(0) != 0 {
		t.Errorf("over-penalize: removed=%d stake=%d", removed, r.Stake(0))
	}
	if got := r.Penalize(99, 5); got != 0 {
		t.Errorf("penalizing unknown index removed %d", got)
	}
}

func TestSlash(t *testing.T) {
	r := NewRegistry(2, 3200)
	if err := r.Slash(0, 7); err != nil {
		t.Fatal(err)
	}
	v, _ := r.Get(0)
	if v.Status != Slashed || v.ExitEpoch != 7 {
		t.Errorf("after slash: %+v", v)
	}
	// Immediate penalty is stake/32.
	if v.Stake != 3200-100 {
		t.Errorf("slashed stake = %d, want 3100", v.Stake)
	}
	// Slashed validators no longer count toward quorums.
	if r.Stake(0) != 0 {
		t.Errorf("Stake of slashed = %d, want 0", r.Stake(0))
	}
	if r.RawStake(0) != 3100 {
		t.Errorf("RawStake of slashed = %d, want 3100", r.RawStake(0))
	}
	// Idempotent.
	if err := r.Slash(0, 9); err != nil {
		t.Fatal(err)
	}
	v, _ = r.Get(0)
	if v.ExitEpoch != 7 || v.Stake != 3100 {
		t.Errorf("second slash must be a no-op: %+v", v)
	}
	if err := r.Slash(9, 1); !errors.Is(err, ErrUnknownValidator) {
		t.Errorf("want ErrUnknownValidator, got %v", err)
	}
}

func TestEject(t *testing.T) {
	r := NewRegistry(2, 32)
	if err := r.Eject(1, 100); err != nil {
		t.Fatal(err)
	}
	if r.InSet(1) {
		t.Error("ejected validator still in set")
	}
	if r.Stake(1) != 0 {
		t.Error("ejected stake must not count")
	}
	v, _ := r.Get(1)
	if v.Status != Ejected || v.ExitEpoch != 100 {
		t.Errorf("after eject: %+v", v)
	}
	// Ejecting a slashed validator is a no-op.
	r2 := NewRegistry(1, 32)
	r2.Slash(0, 5)
	r2.Eject(0, 6)
	v, _ = r2.Get(0)
	if v.Status != Slashed {
		t.Error("eject must not override slashed status")
	}
	if err := r.Eject(9, 1); !errors.Is(err, ErrUnknownValidator) {
		t.Errorf("want ErrUnknownValidator, got %v", err)
	}
}

func TestTotalStakeExcludesExited(t *testing.T) {
	r := NewRegistry(4, 100)
	r.Slash(0, 1)
	r.Eject(1, 1)
	if got := r.TotalStake(); got != 200 {
		t.Errorf("TotalStake = %d, want 200", got)
	}
	in := r.InSetIndices()
	if len(in) != 2 || in[0] != 2 || in[1] != 3 {
		t.Errorf("InSetIndices = %v", in)
	}
}

func TestStakeOfAndProportion(t *testing.T) {
	r := NewRegistry(4, 100)
	subset := []types.ValidatorIndex{0, 1}
	if got := r.StakeOf(subset); got != 200 {
		t.Errorf("StakeOf = %d, want 200", got)
	}
	if got := r.Proportion(subset); got != 0.5 {
		t.Errorf("Proportion = %v, want 0.5", got)
	}
	empty := &Registry{}
	if got := empty.Proportion(subset); got != 0 {
		t.Errorf("empty registry proportion = %v, want 0", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := NewRegistry(2, 100)
	c := r.Clone()
	c.Penalize(0, 50)
	c.SetScore(1, 42)
	if r.Stake(0) != 100 {
		t.Error("clone mutation leaked into original stake")
	}
	if r.Score(1) != 0 {
		t.Error("clone mutation leaked into original score")
	}
}

func TestScores(t *testing.T) {
	r := NewRegistry(2, 32)
	r.SetScore(0, 12)
	if r.Score(0) != 12 {
		t.Errorf("Score = %d, want 12", r.Score(0))
	}
	if r.Score(99) != 0 {
		t.Error("unknown index score must be 0")
	}
	r.SetScore(99, 5) // must not panic
}

func TestForEach(t *testing.T) {
	r := NewRegistry(3, 10)
	r.ForEach(func(v *Validator) { v.Stake += types.Gwei(v.Index) })
	if r.Stake(0) != 10 || r.Stake(1) != 11 || r.Stake(2) != 12 {
		t.Error("ForEach mutation not applied")
	}
}

func TestSetStake(t *testing.T) {
	r := NewRegistry(1, 10)
	r.SetStake(0, 77)
	if r.Stake(0) != 77 {
		t.Errorf("SetStake not applied: %d", r.Stake(0))
	}
	r.SetStake(9, 1) // out of range: no panic
}

func TestStatusString(t *testing.T) {
	if Active.String() != "active" || Slashed.String() != "slashed" || Ejected.String() != "ejected" {
		t.Error("Status.String mismatch")
	}
	if Status(99).String() == "" {
		t.Error("unknown status should still render")
	}
}

func TestTotalStakeInvariantUnderPenalties(t *testing.T) {
	// Property: total stake never increases under any penalty sequence.
	f := func(amounts []uint32) bool {
		r := NewRegistry(4, 1000)
		prev := r.TotalStake()
		for i, a := range amounts {
			r.Penalize(types.ValidatorIndex(i%4), types.Gwei(a%500))
			cur := r.TotalStake()
			if cur > prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- columnar (struct-of-arrays) storage tests ---

// TestColumnsAliasRegistry: Columns exposes the live storage — writes
// through the column view are visible to the row API and vice versa.
func TestColumnsAliasRegistry(t *testing.T) {
	r := NewRegistry(4, 100)
	cols := r.Columns()
	if len(cols.Stakes) != 4 || len(cols.Scores) != 4 || len(cols.Status) != 4 || len(cols.Exit) != 4 {
		t.Fatalf("column lengths = %d/%d/%d/%d, want 4 each",
			len(cols.Stakes), len(cols.Scores), len(cols.Status), len(cols.Exit))
	}
	cols.Stakes[2] = 55
	cols.Scores[2] = 7
	if got := r.RawStake(2); got != 55 {
		t.Errorf("column write invisible to row API: stake = %d", got)
	}
	if got := r.Score(2); got != 7 {
		t.Errorf("column write invisible to row API: score = %d", got)
	}
	r.SetStake(1, 42)
	if cols.Stakes[1] != 42 {
		t.Errorf("row write invisible to column view: %d", cols.Stakes[1])
	}
	cols.Status[3] = Ejected
	if r.InSet(3) {
		t.Error("status column write must remove the validator from the set")
	}
}

// TestCloneDetachesColumns: a clone's columns are independent storage.
func TestCloneDetachesColumns(t *testing.T) {
	r := NewRegistry(3, 100)
	c := r.Clone()
	c.Columns().Stakes[0] = 1
	c.Columns().Scores[1] = 9
	if err := c.Slash(2, 5); err != nil {
		t.Fatal(err)
	}
	if r.RawStake(0) != 100 || r.Score(1) != 0 || !r.InSet(2) {
		t.Error("mutating a clone leaked into the original")
	}
}

// TestForEachWritesBack: the row iterator reassembles rows from columns
// and persists mutations.
func TestForEachWritesBack(t *testing.T) {
	r := NewRegistry(3, 100)
	r.ForEach(func(v *Validator) {
		v.Stake = types.Gwei(10 * (uint64(v.Index) + 1))
		v.InactivityScore = uint64(v.Index)
		if v.Index == 2 {
			v.Status = Ejected
			v.ExitEpoch = 7
		}
	})
	if r.RawStake(0) != 10 || r.RawStake(1) != 20 || r.RawStake(2) != 30 {
		t.Errorf("stakes not written back: %d %d %d", r.RawStake(0), r.RawStake(1), r.RawStake(2))
	}
	if r.Score(2) != 2 {
		t.Errorf("score not written back: %d", r.Score(2))
	}
	if r.InSet(2) {
		t.Error("status not written back")
	}
	got, err := r.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	if got.ExitEpoch != 7 {
		t.Errorf("exit epoch not written back: %d", got.ExitEpoch)
	}
}

// TestColumnsRowRoundTrip: rows assembled by Get agree with the columns
// for every field, under a quick-check of mutations.
func TestColumnsRowRoundTrip(t *testing.T) {
	r := NewRegistry(8, 64)
	r.SetScore(3, 12)
	_ = r.Slash(4, 9)
	_ = r.Eject(5, 11)
	cols := r.Columns()
	for i := 0; i < r.Len(); i++ {
		v, err := r.Get(types.ValidatorIndex(i))
		if err != nil {
			t.Fatal(err)
		}
		if v.Stake != cols.Stakes[i] || v.InactivityScore != cols.Scores[i] ||
			v.Status != cols.Status[i] || v.ExitEpoch != cols.Exit[i] {
			t.Errorf("row %d disagrees with columns: %+v", i, v)
		}
	}
}
