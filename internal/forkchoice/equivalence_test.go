package forkchoice

import (
	"math/rand"
	"testing"

	"repro/internal/blocktree"
	"repro/internal/types"
)

// TestProtoArrayMatchesOracleRandomized is the engine-equivalence contract:
// over arbitrary trees, vote streams, stake decays, visibility filters, and
// finalization prunes, the incremental proto-array engine returns
// bit-identical Head / HeadFiltered / SubtreeWeight results to the
// map-based recompute-everything oracle.
func TestProtoArrayMatchesOracleRandomized(t *testing.T) {
	const (
		seeds      = 25
		steps      = 400
		validators = 48
	)
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tree := blocktree.New(types.RootFromUint64(0))

		// Pre-plan a block schedule so votes can target blocks that have
		// not arrived yet (the cross-partition / in-flight case): planned
		// roots beyond nextBlock are known to voters but absent from the
		// tree until the schedule catches up.
		type planned struct {
			root   types.Root
			parent int // index into plan (parent always planned earlier)
		}
		plan := []planned{{root: types.RootFromUint64(0)}}
		for i := 1; i <= steps/2; i++ {
			plan = append(plan, planned{
				root:   types.RootFromUint64(uint64(i)),
				parent: rng.Intn(i),
			})
		}
		nextBlock := 1
		addBlock := func() {
			if nextBlock >= len(plan) {
				return
			}
			p := plan[nextBlock]
			parent := plan[p.parent].root
			if !tree.Has(parent) {
				// Parent fell to a prune; skip the whole stale branch.
				nextBlock++
				return
			}
			ps, err := tree.Slot(parent)
			if err != nil {
				t.Fatal(err)
			}
			b := blocktree.Block{
				Slot:   ps + 1 + types.Slot(rng.Intn(3)),
				Root:   p.root,
				Parent: parent,
			}
			if err := tree.Add(b); err != nil {
				t.Fatalf("seed %d: add: %v", seed, err)
			}
			nextBlock++
		}

		proto := NewProtoArray()
		oracle := NewOracle()
		engines := []Engine{proto, oracle}

		stakes := make([]types.Gwei, validators)
		for i := range stakes {
			stakes[i] = 32_000_000_000
		}
		pushStakes := func() {
			for _, e := range engines {
				e.UpdateStakes(validators, func(v types.ValidatorIndex) types.Gwei { return stakes[v] })
			}
		}
		pushStakes()

		treeRoots := func() []types.Root {
			var out []types.Root
			for _, pl := range plan[:nextBlock] {
				if tree.Has(pl.root) {
					out = append(out, pl.root)
				}
			}
			return out
		}

		check := func(step int) {
			roots := treeRoots()
			start := roots[rng.Intn(len(roots))]

			ph, perr := proto.Head(tree, start)
			oh, oerr := oracle.Head(tree, start)
			if (perr == nil) != (oerr == nil) || ph != oh {
				t.Fatalf("seed %d step %d: Head(%s) diverges: proto %v (%v), oracle %v (%v)",
					seed, step, start, ph, perr, oh, oerr)
			}

			// Visibility filter hiding a random subset of blocks.
			hidden := map[types.Root]bool{}
			for i := 0; i < rng.Intn(3); i++ {
				hidden[roots[rng.Intn(len(roots))]] = true
			}
			visible := func(r types.Root) bool { return !hidden[r] }
			ph, perr = proto.HeadFiltered(tree, start, visible)
			oh, oerr = oracle.HeadFiltered(tree, start, visible)
			if (perr == nil) != (oerr == nil) || ph != oh {
				t.Fatalf("seed %d step %d: HeadFiltered diverges: proto %v (%v), oracle %v (%v)",
					seed, step, ph, perr, oh, oerr)
			}

			probe := roots[rng.Intn(len(roots))]
			pw, perr := proto.SubtreeWeight(tree, probe)
			ow, oerr := oracle.SubtreeWeight(tree, probe)
			if perr != nil || oerr != nil || pw != ow {
				t.Fatalf("seed %d step %d: SubtreeWeight(%s) diverges: proto %d (%v), oracle %d (%v)",
					seed, step, probe, pw, perr, ow, oerr)
			}
		}

		slot := types.Slot(1)
		for step := 0; step < steps; step++ {
			switch op := rng.Intn(11); {
			case op < 3: // grow the tree
				addBlock()
			case op < 8: // vote, possibly for a block not yet in the tree
				v := types.ValidatorIndex(rng.Intn(validators))
				hi := nextBlock + 5
				if hi > len(plan) {
					hi = len(plan)
				}
				target := plan[rng.Intn(hi)].root
				slot += types.Slot(rng.Intn(2))
				pc := proto.Process(v, target, slot)
				oc := oracle.Process(v, target, slot)
				if pc != oc {
					t.Fatalf("seed %d step %d: Process changed-report diverges: proto %v, oracle %v", seed, step, pc, oc)
				}
			case op < 9: // stake decay / ejection
				v := rng.Intn(validators)
				switch rng.Intn(3) {
				case 0:
					stakes[v] = 0 // ejected
				case 1:
					stakes[v] = stakes[v] - stakes[v]/4 // leak penalty
				default:
					stakes[v] = 32_000_000_000 // restored
				}
				pushStakes()
			case op < 10: // finalization prune
				roots := treeRoots()
				keep := roots[rng.Intn(len(roots))]
				if _, err := tree.PruneBelow(keep); err != nil {
					t.Fatal(err)
				}
			default: // spine compaction pinning live vote targets
				roots := treeRoots()
				wm, err := tree.Slot(roots[rng.Intn(len(roots))])
				if err != nil {
					t.Fatal(err)
				}
				pinned := map[types.Root]bool{}
				for v := types.ValidatorIndex(0); v < validators; v++ {
					if m, ok := proto.Latest(v); ok {
						pinned[m.Root] = true
					}
				}
				tree.Compact(wm, func(r types.Root) bool { return pinned[r] })
			}
			check(step)
		}

		if proto.Len() != oracle.Len() {
			t.Fatalf("seed %d: Len diverges: proto %d, oracle %d", seed, proto.Len(), oracle.Len())
		}
		for v := types.ValidatorIndex(0); v < validators; v++ {
			pm, pok := proto.Latest(v)
			om, ook := oracle.Latest(v)
			if pok != ook || pm != om {
				t.Fatalf("seed %d: Latest(%d) diverges: proto %v/%v, oracle %v/%v", seed, v, pm, pok, om, ook)
			}
		}
	}
}

// TestProtoArrayUnresolvedVoteResolvesOnArrival: a vote for a block the
// view has not received is ignored (matching the oracle) and starts
// counting the instant the block arrives.
func TestProtoArrayUnresolvedVoteResolvesOnArrival(t *testing.T) {
	tree := blocktree.New(root(0))
	if err := tree.Add(blocktree.Block{Slot: 1, Root: root(10), Parent: root(0)}); err != nil {
		t.Fatal(err)
	}
	p := NewProtoArray()
	p.UpdateStakes(4, flatStake)
	p.Process(1, root(20), 2) // block 20 still in flight
	head, err := p.Head(tree, root(0))
	if err != nil {
		t.Fatal(err)
	}
	if head != root(10) {
		t.Fatalf("head = %v, want %v (vote for missing block ignored)", head, root(10))
	}
	if err := tree.Add(blocktree.Block{Slot: 1, Root: root(20), Parent: root(0)}); err != nil {
		t.Fatal(err)
	}
	head, err = p.Head(tree, root(0))
	if err != nil {
		t.Fatal(err)
	}
	if head != root(20) {
		t.Fatalf("head = %v, want %v (parked vote must apply when its block arrives)", head, root(20))
	}
}

// TestProtoArrayCloneIndependence: a cloned engine diverges from its
// original without sharing vote or weight state.
func TestProtoArrayCloneIndependence(t *testing.T) {
	tree := blocktree.New(root(0))
	for _, b := range []blocktree.Block{
		{Slot: 1, Root: root(10), Parent: root(0)},
		{Slot: 1, Root: root(20), Parent: root(0)},
	} {
		if err := tree.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	p := NewProtoArray()
	p.UpdateStakes(4, flatStake)
	p.Process(1, root(10), 1)
	if _, err := p.Head(tree, root(0)); err != nil {
		t.Fatal(err)
	}
	c := p.CloneEngine()
	c.Process(1, root(20), 2)
	c.Process(2, root(20), 2)
	ch, err := c.Head(tree, root(0))
	if err != nil {
		t.Fatal(err)
	}
	if ch != root(20) {
		t.Fatalf("clone head = %v, want %v", ch, root(20))
	}
	ph, err := p.Head(tree, root(0))
	if err != nil {
		t.Fatal(err)
	}
	if ph != root(10) {
		t.Fatalf("original head = %v after clone mutation, want %v", ph, root(10))
	}
	if m, _ := p.Latest(1); m.Root != root(10) {
		t.Error("clone mutation leaked into original's latest messages")
	}
}

// TestProtoArraySteadyStateHeadDoesNotAllocate pins the hot-path contract
// the CI bench gate enforces: once votes are applied, a head query is a
// pointer chase with zero allocations.
func TestProtoArraySteadyStateHeadDoesNotAllocate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tree, roots := randomTree(rng, 300)
	p := NewProtoArray()
	p.UpdateStakes(1024, flatStake)
	for v := 0; v < 1024; v++ {
		p.Process(types.ValidatorIndex(v), roots[rng.Intn(len(roots))], types.Slot(v+1))
	}
	if _, err := p.Head(tree, tree.Genesis()); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := p.Head(tree, tree.Genesis()); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Head allocates %.1f times per call, want 0", allocs)
	}
}

// TestProtoArrayCompactRebuildDeepChainWithParkedVotes covers the
// Compact -> Version-bump -> engine-rebuild path at leak depth: a
// 2000-block spine folds down to its recent suffix while parked
// (unresolved) votes survive the rebuild and resolve the instant their
// block arrives, bit-identically to the oracle throughout.
func TestProtoArrayCompactRebuildDeepChainWithParkedVotes(t *testing.T) {
	const depth = 2000
	tree := blocktree.New(root(0))
	for i := 1; i <= depth; i++ {
		b := blocktree.Block{Slot: types.Slot(i), Root: root(uint64(i)), Parent: root(uint64(i - 1))}
		if err := tree.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	proto := NewProtoArray()
	oracle := NewOracle()
	engines := []Engine{proto, oracle}
	for _, e := range engines {
		e.UpdateStakes(8, flatStake)
	}
	inFlight := root(999999) // voted for before it exists in any view
	for _, e := range engines {
		e.Process(0, root(depth), 1)
		e.Process(1, root(depth), 1)
		e.Process(2, root(1990), 1)
		e.Process(3, inFlight, 1)
		e.Process(4, inFlight, 1)
		e.Process(5, inFlight, 1)
	}
	heads := func(label string, want types.Root) {
		t.Helper()
		ph, perr := proto.Head(tree, root(0))
		oh, oerr := oracle.Head(tree, root(0))
		if perr != nil || oerr != nil || ph != oh {
			t.Fatalf("%s: heads diverge: proto %v (%v), oracle %v (%v)", label, ph, perr, oh, oerr)
		}
		if ph != want {
			t.Fatalf("%s: head = %v, want %v", label, ph, want)
		}
	}
	heads("pre-compaction", root(depth))

	v0 := tree.Version()
	pinned := map[types.Root]bool{}
	for v := types.ValidatorIndex(0); v < 8; v++ {
		if m, ok := proto.Latest(v); ok {
			pinned[m.Root] = true
		}
	}
	removed := tree.Compact(1900, func(r types.Root) bool { return pinned[r] })
	if removed != 1899 {
		t.Fatalf("removed = %d, want 1899", removed)
	}
	if tree.Version() == v0 {
		t.Fatal("Compact must bump Version to force engine rebuilds")
	}
	heads("post-compaction rebuild", root(depth))

	// The in-flight block lands on a surviving branch point: the parked
	// votes (3 x flat stake vs 2 on the old tip) flip the head at once.
	if err := tree.Add(blocktree.Block{Slot: 1991, Root: inFlight, Parent: root(1990)}); err != nil {
		t.Fatal(err)
	}
	heads("parked votes resolved", inFlight)
}
