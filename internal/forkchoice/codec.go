package forkchoice

import (
	"sort"

	"repro/internal/codec"
	"repro/internal/types"
)

// Engine type tags for the durable snapshot codec.
const (
	engineTagProtoArray byte = 1
	engineTagOracle     byte = 2
)

// EncodeEngine serializes a fork-choice engine behind a type tag, so a
// decoded snapshot reconstructs the same engine kind the run used.
// Unknown engine implementations surface through the writer's sticky
// error path as a tag of 0 — the sim scenarios only ever construct the
// two built-in engines.
func EncodeEngine(w *codec.Writer, e Engine) {
	switch eng := e.(type) {
	case *ProtoArray:
		w.Byte(engineTagProtoArray)
		eng.encodeTo(w)
	case *Oracle:
		w.Byte(engineTagOracle)
		eng.encodeTo(w)
	default:
		w.Byte(0)
	}
}

// DecodeEngine reconstructs an engine serialized by EncodeEngine.
func DecodeEngine(r *codec.Reader) Engine {
	switch tag := r.Byte(); tag {
	case engineTagProtoArray:
		return decodeProtoArray(r)
	case engineTagOracle:
		return decodeOracle(r)
	default:
		r.Corrupt("forkchoice: unknown engine tag %d", tag)
		return nil
	}
}

// encodeTo writes only the proto-array's durable state: the per-validator
// vote and stake columns. Every per-node column (weights, best pointers,
// canonical cache), the worklists, and the applied-vote state are caches
// over the block tree that the decoded engine's first sync rebuilds — the
// decoded array carries a nil tree identity, so the first head query
// triggers a full rebuild from the vote columns, exactly as a cloned
// engine does against a cloned tree.
func (p *ProtoArray) encodeTo(w *codec.Writer) {
	w.Len(len(p.voteRoot))
	for i := range p.voteRoot {
		w.Raw(p.voteRoot[i][:])
		w.U64(uint64(p.voteSlot[i]))
		w.Bool(p.hasVote[i])
		w.U64(uint64(p.stakes[i]))
	}
	w.Int(p.voted)
}

func decodeProtoArray(r *codec.Reader) *ProtoArray {
	p := NewProtoArray()
	n := r.Len()
	if r.Err() != nil {
		return nil
	}
	p.ensureValidators(n)
	for i := 0; i < n; i++ {
		r.Raw(p.voteRoot[i][:])
		p.voteSlot[i] = types.Slot(r.U64())
		p.hasVote[i] = r.Bool()
		p.stakes[i] = types.Gwei(r.U64())
	}
	p.voted = r.Int()
	if r.Err() != nil {
		return nil
	}
	return p
}

// encodeTo writes the oracle's latest-message store (sorted by validator
// for deterministic bytes) and its stake column.
func (o *Oracle) encodeTo(w *codec.Writer) {
	vals := make([]types.ValidatorIndex, 0, len(o.store.latest))
	for v := range o.store.latest {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	w.Len(len(vals))
	for _, v := range vals {
		m := o.store.latest[v]
		w.U64(uint64(v))
		w.Raw(m.Root[:])
		w.U64(uint64(m.Slot))
	}
	w.Len(len(o.stakes))
	for _, s := range o.stakes {
		w.U64(uint64(s))
	}
}

func decodeOracle(r *codec.Reader) *Oracle {
	o := NewOracle()
	n := r.Len()
	if r.Err() != nil {
		return nil
	}
	for i := 0; i < n; i++ {
		v := types.ValidatorIndex(r.U64())
		var m Message
		r.Raw(m.Root[:])
		m.Slot = types.Slot(r.U64())
		if r.Err() != nil {
			return nil
		}
		o.store.latest[v] = m
	}
	ns := r.Len()
	if r.Err() != nil {
		return nil
	}
	o.stakes = make([]types.Gwei, ns)
	for i := 0; i < ns; i++ {
		o.stakes[i] = types.Gwei(r.U64())
	}
	if r.Err() != nil {
		return nil
	}
	return o
}
