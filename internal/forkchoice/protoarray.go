package forkchoice

import (
	"fmt"

	"repro/internal/blocktree"
	"repro/internal/types"
)

// ProtoArray is the incremental LMD-GHOST engine. It mirrors the block
// tree's flat index space (blocktree.Tree stores insertion-ordered nodes
// with parent/first-child/next-sibling links) and keeps, per node, the
// subtree weight plus cached best-child/best-descendant pointers.
//
// Latest messages live in columnar per-validator slices. When a
// validator's vote moves from block A to B — or its stake changes with a
// justified-state advance — nothing is walked: the stake is queued as a
// negative delta on A and a positive delta on B, and the next head query
// propagates all pending deltas leaf-to-root in one O(tree) pass (the
// array order is topological, so a single reverse sweep both settles every
// subtree weight and refreshes the best-child/best-descendant caches).
// A head query with no pending work is a pointer read: O(1), zero
// allocations, independent of validator count.
//
// Votes targeting blocks the view has not received yet are parked in an
// unresolved list and re-queued when the tree grows, exactly matching the
// oracle's "ignore votes for missing blocks" semantics. PruneBelow bumps
// the tree's Version, which voids the index space; the engine detects it
// and rebuilds from the retained votes (an O(validators + tree) event that
// happens only when finality advances).
type ProtoArray struct {
	// Per-validator columns (latest messages and applied weight state).
	voteRoot     []types.Root
	voteSlot     []types.Slot
	hasVote      []bool
	stakes       []types.Gwei
	appliedIdx   []int32 // node currently credited with the vote; NoIndex if none
	appliedStake []types.Gwei
	voted        int

	// Worklists. changed holds validators whose vote or stake moved since
	// the last apply; unresolved holds validators whose current vote
	// target is not in the tree (re-queued when blocks arrive).
	changed      []int32
	inChanged    []bool
	unresolved   []int32
	inUnresolved []bool

	// Per-node columns, mirroring the cached tree's index space.
	tree        *blocktree.Tree
	treeVersion uint64
	weights     []types.Gwei
	deltas      []int64
	bestChild   []int32
	bestDesc    []int32
	dirty       bool
}

// NewProtoArray returns an empty incremental engine.
func NewProtoArray() *ProtoArray {
	return &ProtoArray{}
}

// ensureValidators grows the per-validator columns to hold n validators.
func (p *ProtoArray) ensureValidators(n int) {
	for len(p.voteRoot) < n {
		p.voteRoot = append(p.voteRoot, types.Root{})
		p.voteSlot = append(p.voteSlot, 0)
		p.hasVote = append(p.hasVote, false)
		p.stakes = append(p.stakes, 0)
		p.appliedIdx = append(p.appliedIdx, blocktree.NoIndex)
		p.appliedStake = append(p.appliedStake, 0)
		p.inChanged = append(p.inChanged, false)
		p.inUnresolved = append(p.inUnresolved, false)
	}
}

func (p *ProtoArray) markChanged(v int32) {
	if !p.inChanged[v] {
		p.inChanged[v] = true
		p.changed = append(p.changed, v)
	}
}

// Process implements Engine.
func (p *ProtoArray) Process(v types.ValidatorIndex, root types.Root, slot types.Slot) bool {
	p.ensureValidators(int(v) + 1)
	if p.hasVote[v] && p.voteSlot[v] >= slot {
		return false
	}
	if !p.hasVote[v] {
		p.hasVote[v] = true
		p.voted++
	}
	p.voteRoot[v] = root
	p.voteSlot[v] = slot
	p.markChanged(int32(v))
	return true
}

// Latest implements Engine.
func (p *ProtoArray) Latest(v types.ValidatorIndex) (Message, bool) {
	if int(v) >= len(p.hasVote) || !p.hasVote[v] {
		return Message{}, false
	}
	return Message{Root: p.voteRoot[v], Slot: p.voteSlot[v]}, true
}

// Len implements Engine.
func (p *ProtoArray) Len() int { return p.voted }

// UpdateStakes implements Engine. Only validators whose stake actually
// moved are re-queued, so a justified-state advance costs one column scan
// plus deltas proportional to the number of balances that changed.
func (p *ProtoArray) UpdateStakes(n int, stake func(types.ValidatorIndex) types.Gwei) {
	p.ensureValidators(n)
	for i := 0; i < n; i++ {
		s := stake(types.ValidatorIndex(i))
		if s == p.stakes[i] {
			continue
		}
		p.stakes[i] = s
		if p.hasVote[i] {
			p.markChanged(int32(i))
		}
	}
}

// sync brings the node columns up to date with tree: rebuild on identity or
// version change, extend on growth, then apply queued vote deltas and — if
// anything moved — run the one-pass weight/best-pointer recompute.
func (p *ProtoArray) sync(tree *blocktree.Tree) {
	if tree != p.tree || tree.Version() != p.treeVersion {
		p.rebuild(tree)
		return
	}
	if n := tree.Len(); n > len(p.weights) {
		for len(p.weights) < n {
			p.weights = append(p.weights, 0)
			p.deltas = append(p.deltas, 0)
			p.bestChild = append(p.bestChild, blocktree.NoIndex)
			p.bestDesc = append(p.bestDesc, blocktree.NoIndex)
		}
		// New blocks arrived: even with no votes, a fresh leaf can win a
		// tie-break, and parked votes may now resolve.
		p.dirty = true
		for _, v := range p.unresolved {
			p.inUnresolved[v] = false
			p.markChanged(v)
		}
		p.unresolved = p.unresolved[:0]
	}
	p.applyChanged(tree)
	if p.dirty {
		p.recompute(tree)
	}
}

// applyChanged drains the changed worklist into per-node deltas.
func (p *ProtoArray) applyChanged(tree *blocktree.Tree) {
	if len(p.changed) == 0 {
		return
	}
	for _, v := range p.changed {
		p.inChanged[v] = false
		newIdx := blocktree.NoIndex
		if p.hasVote[v] {
			if i, ok := tree.IndexOf(p.voteRoot[v]); ok {
				newIdx = i
			}
		}
		newStake := p.stakes[v]
		if newIdx == p.appliedIdx[v] && (newIdx == blocktree.NoIndex || newStake == p.appliedStake[v]) {
			p.parkUnresolved(v, newIdx)
			continue
		}
		if p.appliedIdx[v] != blocktree.NoIndex && p.appliedStake[v] != 0 {
			p.deltas[p.appliedIdx[v]] -= int64(p.appliedStake[v])
			p.dirty = true
		}
		if newIdx != blocktree.NoIndex {
			if newStake != 0 {
				p.deltas[newIdx] += int64(newStake)
				p.dirty = true
			}
			p.appliedIdx[v] = newIdx
			p.appliedStake[v] = newStake
		} else {
			p.appliedIdx[v] = blocktree.NoIndex
			p.appliedStake[v] = 0
			p.parkUnresolved(v, newIdx)
		}
	}
	p.changed = p.changed[:0]
}

// parkUnresolved records that v's current vote target is missing from the
// tree, so tree growth re-queues it.
func (p *ProtoArray) parkUnresolved(v int32, resolvedIdx int32) {
	if resolvedIdx == blocktree.NoIndex && p.hasVote[v] && !p.inUnresolved[v] {
		p.inUnresolved[v] = true
		p.unresolved = append(p.unresolved, v)
	}
}

// rebuild reconstructs the node columns and applied-vote state from scratch
// against a new tree identity or index space (post-prune).
func (p *ProtoArray) rebuild(tree *blocktree.Tree) {
	p.tree = tree
	p.treeVersion = tree.Version()
	n := tree.Len()
	if cap(p.weights) < n {
		p.weights = make([]types.Gwei, n)
		p.deltas = make([]int64, n)
		p.bestChild = make([]int32, n)
		p.bestDesc = make([]int32, n)
	} else {
		p.weights = p.weights[:n]
		p.deltas = p.deltas[:n]
		p.bestChild = p.bestChild[:n]
		p.bestDesc = p.bestDesc[:n]
	}
	for i := range p.weights {
		p.weights[i] = 0
		p.deltas[i] = 0
	}
	for _, v := range p.changed {
		p.inChanged[v] = false
	}
	p.changed = p.changed[:0]
	for _, v := range p.unresolved {
		p.inUnresolved[v] = false
	}
	p.unresolved = p.unresolved[:0]
	for v := range p.voteRoot {
		p.appliedIdx[v] = blocktree.NoIndex
		p.appliedStake[v] = 0
		if !p.hasVote[v] {
			continue
		}
		if i, ok := tree.IndexOf(p.voteRoot[v]); ok {
			st := p.stakes[v]
			p.appliedIdx[v] = i
			p.appliedStake[v] = st
			p.deltas[i] += int64(st)
		} else {
			p.inUnresolved[v] = true
			p.unresolved = append(p.unresolved, int32(v))
		}
	}
	p.dirty = true
	p.recompute(tree)
}

// recompute settles pending deltas into subtree weights and refreshes the
// best-child/best-descendant caches in one reverse (leaf-to-root) pass.
// The array is topological, so by the time a node is visited every child's
// weight and best descendant are final.
func (p *ProtoArray) recompute(tree *blocktree.Tree) {
	for i := int32(len(p.weights)) - 1; i >= 0; i-- {
		if d := p.deltas[i]; d != 0 {
			p.weights[i] = types.Gwei(int64(p.weights[i]) + d)
			if pi := tree.ParentIndex(i); pi != blocktree.NoIndex {
				p.deltas[pi] += d
			}
			p.deltas[i] = 0
		}
		bc := blocktree.NoIndex
		for c := tree.FirstChild(i); c != blocktree.NoIndex; c = tree.NextSibling(c) {
			if bc == blocktree.NoIndex || p.weights[c] > p.weights[bc] ||
				(p.weights[c] == p.weights[bc] && lessRoot(tree.BlockAt(c).Root, tree.BlockAt(bc).Root)) {
				bc = c
			}
		}
		p.bestChild[i] = bc
		if bc == blocktree.NoIndex {
			p.bestDesc[i] = i
		} else {
			p.bestDesc[i] = p.bestDesc[bc]
		}
	}
	p.dirty = false
}

// Head implements Engine: sync, then chase the cached best-descendant
// pointer from start.
func (p *ProtoArray) Head(tree *blocktree.Tree, start types.Root) (types.Root, error) {
	p.sync(tree)
	si, ok := tree.IndexOf(start)
	if !ok {
		return types.Root{}, fmt.Errorf("%w: %s", ErrUnknownStart, start)
	}
	return tree.BlockAt(p.bestDesc[si]).Root, nil
}

// HeadFiltered implements Engine. With a visibility filter the cached best
// pointers may reference hidden blocks, so the descent excludes them on the
// fly: at each node the best visible child is picked directly from the
// settled weights — still O(depth · branching) over an already-synced
// array, with no per-call weight rebuild.
func (p *ProtoArray) HeadFiltered(tree *blocktree.Tree, start types.Root, visible func(types.Root) bool) (types.Root, error) {
	if visible == nil {
		return p.Head(tree, start)
	}
	p.sync(tree)
	i, ok := tree.IndexOf(start)
	if !ok {
		return types.Root{}, fmt.Errorf("%w: %s", ErrUnknownStart, start)
	}
	for {
		bc := blocktree.NoIndex
		for c := tree.FirstChild(i); c != blocktree.NoIndex; c = tree.NextSibling(c) {
			if !visible(tree.BlockAt(c).Root) {
				continue
			}
			if bc == blocktree.NoIndex || p.weights[c] > p.weights[bc] ||
				(p.weights[c] == p.weights[bc] && lessRoot(tree.BlockAt(c).Root, tree.BlockAt(bc).Root)) {
				bc = c
			}
		}
		if bc == blocktree.NoIndex {
			return tree.BlockAt(i).Root, nil
		}
		i = bc
	}
}

// SubtreeWeight implements Engine.
func (p *ProtoArray) SubtreeWeight(tree *blocktree.Tree, root types.Root) (types.Gwei, error) {
	p.sync(tree)
	i, ok := tree.IndexOf(root)
	if !ok {
		return 0, nil
	}
	return p.weights[i], nil
}

// CloneEngine implements Engine: every column is a flat copy (no maps to
// rehash), so forking a paper-scale view is a handful of memcpys. The
// cached tree identity is retained — a clone queried against the same tree
// stays incremental; against a cloned tree it detects the new identity and
// rebuilds once.
func (p *ProtoArray) CloneEngine() Engine {
	out := &ProtoArray{
		voteRoot:     append([]types.Root(nil), p.voteRoot...),
		voteSlot:     append([]types.Slot(nil), p.voteSlot...),
		hasVote:      append([]bool(nil), p.hasVote...),
		stakes:       append([]types.Gwei(nil), p.stakes...),
		appliedIdx:   append([]int32(nil), p.appliedIdx...),
		appliedStake: append([]types.Gwei(nil), p.appliedStake...),
		voted:        p.voted,
		changed:      append([]int32(nil), p.changed...),
		inChanged:    append([]bool(nil), p.inChanged...),
		unresolved:   append([]int32(nil), p.unresolved...),
		inUnresolved: append([]bool(nil), p.inUnresolved...),
		tree:         p.tree,
		treeVersion:  p.treeVersion,
		weights:      append([]types.Gwei(nil), p.weights...),
		deltas:       append([]int64(nil), p.deltas...),
		bestChild:    append([]int32(nil), p.bestChild...),
		bestDesc:     append([]int32(nil), p.bestDesc...),
		dirty:        p.dirty,
	}
	return out
}
