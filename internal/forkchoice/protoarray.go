package forkchoice

import (
	"fmt"
	"unsafe"

	"repro/internal/blocktree"
	"repro/internal/types"
)

// ProtoArray is the incremental LMD-GHOST engine. It mirrors the block
// tree's flat index space (blocktree.Tree stores insertion-ordered nodes
// with parent/first-child/next-sibling links) and keeps, per node, the
// subtree weight plus cached best-child/best-descendant pointers.
//
// Latest messages live in columnar per-validator slices. When a
// validator's vote moves from block A to B — or its stake changes with a
// justified-state advance — nothing is walked: the stake is queued as a
// negative delta on A and a positive delta on B, and the touched nodes
// join a frontier worklist. The next head query settles only the paths
// from touched nodes to the root: a max-index heap pops nodes children
// first (the array order is topological, so a child's index always
// exceeds its parent's), each pop folds the node's delta into its weight,
// pushes the delta to its parent, and re-scans its children for the
// best-child/best-descendant caches — O(changed paths), independent of
// tree size. A head query with no pending work is a pointer read: O(1),
// zero allocations, independent of validator count.
//
// The canonical chain (the best-child path from the array root) is cached
// and maintained incrementally: settling records the shallowest canonical
// position whose best-child pointer flipped and re-descends only from
// there, so filtered head queries walk cached positions instead of
// re-scanning siblings level by level.
//
// Votes targeting blocks the view has not received yet are parked in an
// unresolved list and re-queued when the tree grows, exactly matching the
// oracle's "ignore votes for missing blocks" semantics. PruneBelow and
// Compact bump the tree's Version, which voids the index space; the
// engine detects it and rebuilds from the retained votes (an
// O(validators + tree) event that happens only when finality advances or
// the tree folds its cold spine).
type ProtoArray struct {
	// Per-validator columns (latest messages and applied weight state).
	voteRoot []types.Root
	voteSlot []types.Slot
	hasVote  []bool
	stakes   []types.Gwei
	//gasper:nocodec applied-vote cache; the first sync after decode re-applies every vote
	appliedIdx []int32 // node currently credited with the vote; NoIndex if none
	//gasper:nocodec applied-vote cache; the first sync after decode re-applies every vote
	appliedStake []types.Gwei
	voted        int

	// Worklists. changed holds validators whose vote or stake moved since
	// the last apply; unresolved holds validators whose current vote
	// target is not in the tree (re-queued when blocks arrive).
	changed      []int32 //gasper:nocodec worklist; decode marks every vote changed, repopulating it
	inChanged    []bool  //gasper:nocodec worklist membership; repopulated with changed
	unresolved   []int32 //gasper:nocodec worklist; re-derived when the first sync re-applies votes
	inUnresolved []bool  //gasper:nocodec worklist membership; repopulated with unresolved

	// Per-node columns, mirroring the cached tree's index space.
	tree        *blocktree.Tree //gasper:nocodec borrowed tree handle; the owner re-syncs after decode
	treeVersion uint64          //gasper:nocodec cache version; zero forces the first sync to rebuild
	weights     []types.Gwei    //gasper:nocodec per-node cache over the tree; rebuilt by the first sync
	deltas      []int64         //gasper:nocodec per-node cache over the tree; rebuilt by the first sync
	bestChild   []int32         //gasper:nocodec per-node cache over the tree; rebuilt by the first sync
	bestDesc    []int32         //gasper:nocodec per-node cache over the tree; rebuilt by the first sync

	// Settle frontier: node indices with a pending delta or a child whose
	// weight/best pointers moved, kept as a max-index heap so children
	// always pop before their parents.
	touched   []int32 //gasper:nocodec settle frontier; re-derived by the first sync
	inTouched []bool  //gasper:nocodec settle frontier membership; re-derived by the first sync

	// Canonical-chain cache: canon is the best-child path from the array
	// root; canonPos[i] is i's position on that path, -1 when off-chain.
	canon    []int32 //gasper:nocodec canonical-chain cache; rebuilt by the first sync
	canonPos []int32 //gasper:nocodec canonical-chain cache; rebuilt by the first sync
}

// NewProtoArray returns an empty incremental engine.
func NewProtoArray() *ProtoArray {
	return &ProtoArray{}
}

// ensureValidators grows the per-validator columns to hold n validators.
func (p *ProtoArray) ensureValidators(n int) {
	have := len(p.voteRoot)
	if have >= n {
		return
	}
	// Grow each column in one step: element-at-a-time appends re-copy all
	// eight columns on every size-class doubling, which at paper scale
	// makes first-touch (UpdateStakes over the whole set) a hot spot.
	p.voteRoot = append(p.voteRoot, make([]types.Root, n-have)...)
	p.voteSlot = append(p.voteSlot, make([]types.Slot, n-have)...)
	p.hasVote = append(p.hasVote, make([]bool, n-have)...)
	p.stakes = append(p.stakes, make([]types.Gwei, n-have)...)
	p.appliedStake = append(p.appliedStake, make([]types.Gwei, n-have)...)
	p.inChanged = append(p.inChanged, make([]bool, n-have)...)
	p.inUnresolved = append(p.inUnresolved, make([]bool, n-have)...)
	p.appliedIdx = append(p.appliedIdx, make([]int32, n-have)...)
	for i := have; i < n; i++ {
		p.appliedIdx[i] = blocktree.NoIndex
	}
}

func (p *ProtoArray) markChanged(v int32) {
	if !p.inChanged[v] {
		p.inChanged[v] = true
		p.changed = append(p.changed, v)
	}
}

// Process implements Engine.
func (p *ProtoArray) Process(v types.ValidatorIndex, root types.Root, slot types.Slot) bool {
	p.ensureValidators(int(v) + 1)
	if p.hasVote[v] && p.voteSlot[v] >= slot {
		return false
	}
	if !p.hasVote[v] {
		p.hasVote[v] = true
		p.voted++
	}
	p.voteRoot[v] = root
	p.voteSlot[v] = slot
	p.markChanged(int32(v))
	return true
}

// Latest implements Engine.
func (p *ProtoArray) Latest(v types.ValidatorIndex) (Message, bool) {
	if int(v) >= len(p.hasVote) || !p.hasVote[v] {
		return Message{}, false
	}
	return Message{Root: p.voteRoot[v], Slot: p.voteSlot[v]}, true
}

// Len implements Engine.
func (p *ProtoArray) Len() int { return p.voted }

// UpdateStakes implements Engine. Only validators whose stake actually
// moved are re-queued, so a justified-state advance costs one column scan
// plus deltas proportional to the number of balances that changed.
func (p *ProtoArray) UpdateStakes(n int, stake func(types.ValidatorIndex) types.Gwei) {
	p.ensureValidators(n)
	for i := 0; i < n; i++ {
		s := stake(types.ValidatorIndex(i))
		if s == p.stakes[i] {
			continue
		}
		p.stakes[i] = s
		if p.hasVote[i] {
			p.markChanged(int32(i))
		}
	}
}

// sync brings the node columns up to date with tree: rebuild on identity or
// version change, extend on growth, then apply queued vote deltas and — if
// anything moved — settle the touched frontier up to the root.
func (p *ProtoArray) sync(tree *blocktree.Tree) {
	if tree != p.tree || tree.Version() != p.treeVersion {
		p.rebuild(tree)
		return
	}
	if n := tree.Len(); n > len(p.weights) {
		for len(p.weights) < n {
			i := int32(len(p.weights))
			p.weights = append(p.weights, 0)
			p.deltas = append(p.deltas, 0)
			p.bestChild = append(p.bestChild, blocktree.NoIndex)
			p.bestDesc = append(p.bestDesc, i)
			p.inTouched = append(p.inTouched, false)
			p.canonPos = append(p.canonPos, -1)
			// Even with no votes, a fresh leaf can win its parent's
			// tie-break, so the parent must re-scan its children.
			p.touch(tree.ParentIndex(i))
		}
		// Parked votes may now resolve against the new blocks.
		for _, v := range p.unresolved {
			p.inUnresolved[v] = false
			p.markChanged(v)
		}
		p.unresolved = p.unresolved[:0]
	}
	p.applyChanged(tree)
	if len(p.touched) > 0 {
		p.settle(tree)
	}
}

// applyChanged drains the changed worklist into per-node deltas.
func (p *ProtoArray) applyChanged(tree *blocktree.Tree) {
	if len(p.changed) == 0 {
		return
	}
	for _, v := range p.changed {
		p.inChanged[v] = false
		newIdx := blocktree.NoIndex
		if p.hasVote[v] {
			if i, ok := tree.IndexOf(p.voteRoot[v]); ok {
				newIdx = i
			}
		}
		newStake := p.stakes[v]
		if newIdx == p.appliedIdx[v] && (newIdx == blocktree.NoIndex || newStake == p.appliedStake[v]) {
			p.parkUnresolved(v, newIdx)
			continue
		}
		if p.appliedIdx[v] != blocktree.NoIndex && p.appliedStake[v] != 0 {
			p.deltas[p.appliedIdx[v]] -= int64(p.appliedStake[v])
			p.touch(p.appliedIdx[v])
		}
		if newIdx != blocktree.NoIndex {
			if newStake != 0 {
				p.deltas[newIdx] += int64(newStake)
				p.touch(newIdx)
			}
			p.appliedIdx[v] = newIdx
			p.appliedStake[v] = newStake
		} else {
			p.appliedIdx[v] = blocktree.NoIndex
			p.appliedStake[v] = 0
			p.parkUnresolved(v, newIdx)
		}
	}
	p.changed = p.changed[:0]
}

// parkUnresolved records that v's current vote target is missing from the
// tree, so tree growth re-queues it.
func (p *ProtoArray) parkUnresolved(v int32, resolvedIdx int32) {
	if resolvedIdx == blocktree.NoIndex && p.hasVote[v] && !p.inUnresolved[v] {
		p.inUnresolved[v] = true
		p.unresolved = append(p.unresolved, v)
	}
}

// touch enqueues node i on the settle frontier (deduped max-index heap).
func (p *ProtoArray) touch(i int32) {
	if i == blocktree.NoIndex || p.inTouched[i] {
		return
	}
	p.inTouched[i] = true
	p.touched = append(p.touched, i)
	k := len(p.touched) - 1
	for k > 0 {
		up := (k - 1) / 2
		if p.touched[up] >= p.touched[k] {
			break
		}
		p.touched[up], p.touched[k] = p.touched[k], p.touched[up]
		k = up
	}
}

// popTouched removes and returns the highest node index on the frontier.
func (p *ProtoArray) popTouched() int32 {
	top := p.touched[0]
	p.inTouched[top] = false
	n := len(p.touched) - 1
	p.touched[0] = p.touched[n]
	p.touched = p.touched[:n]
	k := 0
	for {
		c := 2*k + 1
		if c >= n {
			break
		}
		if c+1 < n && p.touched[c+1] > p.touched[c] {
			c++
		}
		if p.touched[k] >= p.touched[c] {
			break
		}
		p.touched[k], p.touched[c] = p.touched[c], p.touched[k]
		k = c
	}
	return top
}

// settle drains the frontier children-first: each pop folds the node's
// pending delta into its weight, refreshes its best-child/best-descendant
// cache from its (already settled) children, and propagates the delta to
// its parent — re-touching the parent only when something it can observe
// actually moved. The array is topological (a child's index always exceeds
// its parent's) and the heap pops by descending index, so every touched
// node is processed exactly once and cost is proportional to the paths
// from changed nodes to the root, not to tree size. When a best-child
// pointer on the canonical chain flips, the chain is re-descended from the
// shallowest flip only.
func (p *ProtoArray) settle(tree *blocktree.Tree) {
	minFlip := int32(-1)
	for len(p.touched) > 0 {
		i := p.popTouched()
		d := p.deltas[i]
		if d != 0 {
			p.weights[i] = types.Gwei(int64(p.weights[i]) + d)
			p.deltas[i] = 0
		}
		oldBC, oldBD := p.bestChild[i], p.bestDesc[i]
		bc := blocktree.NoIndex
		for c := tree.FirstChild(i); c != blocktree.NoIndex; c = tree.NextSibling(c) {
			if bc == blocktree.NoIndex || p.weights[c] > p.weights[bc] ||
				(p.weights[c] == p.weights[bc] && lessRoot(tree.BlockAt(c).Root, tree.BlockAt(bc).Root)) {
				bc = c
			}
		}
		p.bestChild[i] = bc
		bd := i
		if bc != blocktree.NoIndex {
			bd = p.bestDesc[bc]
		}
		p.bestDesc[i] = bd
		if bc != oldBC {
			if pos := p.canonPos[i]; pos >= 0 && (minFlip < 0 || pos < minFlip) {
				minFlip = pos
			}
		}
		if pi := tree.ParentIndex(i); pi != blocktree.NoIndex {
			if d != 0 {
				p.deltas[pi] += d
				p.touch(pi)
			} else if bd != oldBD {
				p.touch(pi)
			}
		}
	}
	if minFlip >= 0 {
		p.extendCanon(minFlip)
	}
}

// extendCanon truncates the canonical chain at position from and re-follows
// best-child pointers down to the new tip.
func (p *ProtoArray) extendCanon(from int32) {
	for _, i := range p.canon[from+1:] {
		p.canonPos[i] = -1
	}
	p.canon = p.canon[:from+1]
	i := p.canon[from]
	for p.bestChild[i] != blocktree.NoIndex {
		i = p.bestChild[i]
		p.canonPos[i] = int32(len(p.canon))
		p.canon = append(p.canon, i)
	}
}

// rebuild reconstructs the node columns and applied-vote state from scratch
// against a new tree identity or index space (post-prune).
func (p *ProtoArray) rebuild(tree *blocktree.Tree) {
	p.tree = tree
	p.treeVersion = tree.Version()
	n := tree.Len()
	// The four columns are appended in lockstep but their capacities can
	// still diverge: CloneEngine's append(nil, ...) rounds each column to
	// its own allocation size class, so a 4-byte column may hold exactly n
	// entries while its 8-byte sibling was rounded up past n. Check every
	// column before taking the reslice fast path.
	if cap(p.weights) < n || cap(p.deltas) < n || cap(p.bestChild) < n || cap(p.bestDesc) < n {
		p.weights = make([]types.Gwei, n)
		p.deltas = make([]int64, n)
		p.bestChild = make([]int32, n)
		p.bestDesc = make([]int32, n)
	} else {
		p.weights = p.weights[:n]
		p.deltas = p.deltas[:n]
		p.bestChild = p.bestChild[:n]
		p.bestDesc = p.bestDesc[:n]
	}
	for i := range p.weights {
		p.weights[i] = 0
		p.deltas[i] = 0
	}
	p.touched = p.touched[:0]
	if cap(p.inTouched) < n {
		p.inTouched = make([]bool, n)
	} else {
		p.inTouched = p.inTouched[:n]
		for i := range p.inTouched {
			p.inTouched[i] = false
		}
	}
	if cap(p.canonPos) < n {
		p.canonPos = make([]int32, n)
	} else {
		p.canonPos = p.canonPos[:n]
	}
	for i := range p.canonPos {
		p.canonPos[i] = -1
	}
	p.canon = p.canon[:0]
	for _, v := range p.changed {
		p.inChanged[v] = false
	}
	p.changed = p.changed[:0]
	for _, v := range p.unresolved {
		p.inUnresolved[v] = false
	}
	p.unresolved = p.unresolved[:0]
	for v := range p.voteRoot {
		p.appliedIdx[v] = blocktree.NoIndex
		p.appliedStake[v] = 0
		if !p.hasVote[v] {
			continue
		}
		if i, ok := tree.IndexOf(p.voteRoot[v]); ok {
			st := p.stakes[v]
			p.appliedIdx[v] = i
			p.appliedStake[v] = st
			p.deltas[i] += int64(st)
		} else {
			p.inUnresolved[v] = true
			p.unresolved = append(p.unresolved, int32(v))
		}
	}
	p.recompute(tree)
	p.canon = append(p.canon, 0)
	p.canonPos[0] = 0
	p.extendCanon(0)
}

// recompute settles pending deltas into subtree weights and refreshes the
// best-child/best-descendant caches in one reverse (leaf-to-root) pass —
// the full-array sweep, used only by rebuild; incremental updates go
// through settle. The array is topological, so by the time a node is
// visited every child's weight and best descendant are final.
func (p *ProtoArray) recompute(tree *blocktree.Tree) {
	for i := int32(len(p.weights)) - 1; i >= 0; i-- {
		if d := p.deltas[i]; d != 0 {
			p.weights[i] = types.Gwei(int64(p.weights[i]) + d)
			if pi := tree.ParentIndex(i); pi != blocktree.NoIndex {
				p.deltas[pi] += d
			}
			p.deltas[i] = 0
		}
		bc := blocktree.NoIndex
		for c := tree.FirstChild(i); c != blocktree.NoIndex; c = tree.NextSibling(c) {
			if bc == blocktree.NoIndex || p.weights[c] > p.weights[bc] ||
				(p.weights[c] == p.weights[bc] && lessRoot(tree.BlockAt(c).Root, tree.BlockAt(bc).Root)) {
				bc = c
			}
		}
		p.bestChild[i] = bc
		if bc == blocktree.NoIndex {
			p.bestDesc[i] = i
		} else {
			p.bestDesc[i] = p.bestDesc[bc]
		}
	}
}

// Head implements Engine: sync, then chase the cached best-descendant
// pointer from start.
//
//gasper:noalloc
func (p *ProtoArray) Head(tree *blocktree.Tree, start types.Root) (types.Root, error) {
	p.sync(tree)
	si, ok := tree.IndexOf(start)
	if !ok {
		return types.Root{}, fmt.Errorf("%w: %s", ErrUnknownStart, start) //gasper:alloc error exit: unknown start root aborts the query
	}
	return tree.BlockAt(p.bestDesc[si]).Root, nil
}

// HeadFiltered implements Engine. With a visibility filter the cached best
// pointers may reference hidden blocks, so the descent excludes them on the
// fly. While the walk is on the canonical chain it follows the cached path
// directly — the overall best child, when visible, is by definition the
// best visible child, so each level costs one visibility check instead of
// a sibling scan. Only when the canonical child is hidden (or the walk
// starts off-chain) does it fall back to picking the best visible child
// from the settled weights, exactly matching the oracle's descent.
//
//gasper:noalloc
func (p *ProtoArray) HeadFiltered(tree *blocktree.Tree, start types.Root, visible func(types.Root) bool) (types.Root, error) {
	if visible == nil {
		return p.Head(tree, start)
	}
	p.sync(tree)
	i, ok := tree.IndexOf(start)
	if !ok {
		return types.Root{}, fmt.Errorf("%w: %s", ErrUnknownStart, start) //gasper:alloc error exit: unknown start root aborts the query
	}
	if pos := p.canonPos[i]; pos >= 0 {
		for int(pos)+1 < len(p.canon) {
			c := p.canon[pos+1]
			if !visible(tree.BlockAt(c).Root) {
				break
			}
			pos++
			i = c
		}
	}
	for {
		bc := blocktree.NoIndex
		for c := tree.FirstChild(i); c != blocktree.NoIndex; c = tree.NextSibling(c) {
			if !visible(tree.BlockAt(c).Root) {
				continue
			}
			if bc == blocktree.NoIndex || p.weights[c] > p.weights[bc] ||
				(p.weights[c] == p.weights[bc] && lessRoot(tree.BlockAt(c).Root, tree.BlockAt(bc).Root)) {
				bc = c
			}
		}
		if bc == blocktree.NoIndex {
			return tree.BlockAt(i).Root, nil
		}
		i = bc
	}
}

// SubtreeWeight implements Engine.
func (p *ProtoArray) SubtreeWeight(tree *blocktree.Tree, root types.Root) (types.Gwei, error) {
	p.sync(tree)
	i, ok := tree.IndexOf(root)
	if !ok {
		return 0, nil
	}
	return p.weights[i], nil
}

// CloneEngine implements Engine: every column is a flat copy (no maps to
// rehash), so forking a paper-scale view is a handful of memcpys. The
// cached tree identity is retained — a clone queried against the same tree
// stays incremental; against a cloned tree it detects the new identity and
// rebuilds once.
func (p *ProtoArray) CloneEngine() Engine {
	out := &ProtoArray{
		voteRoot:     append([]types.Root(nil), p.voteRoot...),
		voteSlot:     append([]types.Slot(nil), p.voteSlot...),
		hasVote:      append([]bool(nil), p.hasVote...),
		stakes:       append([]types.Gwei(nil), p.stakes...),
		appliedIdx:   append([]int32(nil), p.appliedIdx...),
		appliedStake: append([]types.Gwei(nil), p.appliedStake...),
		voted:        p.voted,
		changed:      append([]int32(nil), p.changed...),
		inChanged:    append([]bool(nil), p.inChanged...),
		unresolved:   append([]int32(nil), p.unresolved...),
		inUnresolved: append([]bool(nil), p.inUnresolved...),
		tree:         p.tree,
		treeVersion:  p.treeVersion,
		weights:      append([]types.Gwei(nil), p.weights...),
		deltas:       append([]int64(nil), p.deltas...),
		bestChild:    append([]int32(nil), p.bestChild...),
		bestDesc:     append([]int32(nil), p.bestDesc...),
		touched:      append([]int32(nil), p.touched...),
		inTouched:    append([]bool(nil), p.inTouched...),
		canon:        append([]int32(nil), p.canon...),
		canonPos:     append([]int32(nil), p.canonPos...),
	}
	return out
}

// Stats reports the sizes of the engine's retained columns: the memory
// half of the leak-depth story. Bytes is an estimate from slice capacities
// and element sizes (map overhead in the mirrored tree is reported by
// blocktree.Tree.Stats, not here).
type Stats struct {
	Nodes      int // node-column height (mirrored tree nodes)
	Validators int // validator-column height
	Bytes      int // approximate retained bytes across all columns
}

// Stats returns the engine's current column sizes.
func (p *ProtoArray) Stats() Stats {
	rootSz := int(unsafe.Sizeof(types.Root{}))
	bytes := cap(p.voteRoot)*rootSz +
		cap(p.voteSlot)*8 + cap(p.hasVote) + cap(p.stakes)*8 +
		cap(p.appliedIdx)*4 + cap(p.appliedStake)*8 +
		cap(p.changed)*4 + cap(p.inChanged) +
		cap(p.unresolved)*4 + cap(p.inUnresolved) +
		cap(p.weights)*8 + cap(p.deltas)*8 +
		cap(p.bestChild)*4 + cap(p.bestDesc)*4 +
		cap(p.touched)*4 + cap(p.inTouched) +
		cap(p.canon)*4 + cap(p.canonPos)*4
	return Stats{Nodes: len(p.weights), Validators: len(p.voteRoot), Bytes: bytes}
}
