package forkchoice

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/blocktree"
	"repro/internal/types"
)

// protoFixture builds a 256-block random tree with n validators voting on
// recent blocks and all deltas applied, leaving the engine in steady state.
func protoFixture(b *testing.B, n int) (*ProtoArray, *blocktree.Tree) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	tree, roots := randomTree(rng, 256)
	p := NewProtoArray()
	p.UpdateStakes(n, func(types.ValidatorIndex) types.Gwei { return 32_000_000_000 })
	// Latest messages concentrate on recent blocks, as in a live run.
	recent := roots[len(roots)-8:]
	for v := 0; v < n; v++ {
		p.Process(types.ValidatorIndex(v), recent[v%len(recent)], types.Slot(v+1))
	}
	if _, err := p.Head(tree, tree.Genesis()); err != nil {
		b.Fatal(err)
	}
	return p, tree
}

// BenchmarkHead measures the steady-state proto-array head query — the
// per-slot hot path — at 1k, 100k, and 1M validators. The cost must be
// near-flat in validator count (a cached-pointer chase) and allocation-free;
// the CI bench-smoke job fails if allocs/op is nonzero.
func BenchmarkHead(b *testing.B) {
	for _, n := range []int{1_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("steady-%d", n), func(b *testing.B) {
			p, tree := protoFixture(b, n)
			genesis := tree.Genesis()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Head(tree, genesis); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHeadVoteChurn measures a head query absorbing a slot's worth of
// moved votes (one cohort batch re-targeting), the incremental-delta path.
func BenchmarkHeadVoteChurn(b *testing.B) {
	for _, n := range []int{100_000} {
		b.Run(fmt.Sprintf("churn-%d", n), func(b *testing.B) {
			p, tree := protoFixture(b, n)
			rng := rand.New(rand.NewSource(2))
			var leaves []types.Root
			for _, l := range tree.Leaves() {
				leaves = append(leaves, l.Root)
			}
			genesis := tree.Genesis()
			const batch = 3_000 // ~n/32 attesters per slot
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				target := leaves[rng.Intn(len(leaves))]
				base := types.ValidatorIndex((i * batch) % n)
				for v := types.ValidatorIndex(0); v < batch; v++ {
					p.Process((base+v)%types.ValidatorIndex(n), target, types.Slot(n+i+2))
				}
				if _, err := p.Head(tree, genesis); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHeadOracle is the map-based oracle on the same fixture shape,
// for the BENCH.md before/after comparison (it rebuilds every weight map
// per call, so its cost scales with validator count).
func BenchmarkHeadOracle(b *testing.B) {
	for _, n := range []int{1_000, 100_000} {
		b.Run(fmt.Sprintf("steady-%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			tree, roots := randomTree(rng, 256)
			o := NewOracle()
			o.UpdateStakes(n, func(types.ValidatorIndex) types.Gwei { return 32_000_000_000 })
			recent := roots[len(roots)-8:]
			for v := 0; v < n; v++ {
				o.Process(types.ValidatorIndex(v), recent[v%len(recent)], types.Slot(v+1))
			}
			genesis := tree.Genesis()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := o.Head(tree, genesis); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProcess measures latest-message ingestion into the proto-array's
// columnar store.
func BenchmarkProcess(b *testing.B) {
	p := NewProtoArray()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Process(types.ValidatorIndex(i%256), types.RootFromUint64(uint64(i)), types.Slot(i))
	}
}

// BenchmarkClone measures forking a paper-scale engine for a partitioned
// view — flat column copies, no map rehash.
func BenchmarkClone(b *testing.B) {
	p, _ := protoFixture(b, 1_000_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.CloneEngine().Len() != 1_000_000 {
			b.Fatal("clone lost votes")
		}
	}
}
