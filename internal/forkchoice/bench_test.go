package forkchoice

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

// BenchmarkHead measures LMD-GHOST head computation over a 200-block random
// tree with 128 latest messages.
func BenchmarkHead(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tree, roots := randomTree(rng, 200)
	s := NewStore()
	for v := 0; v < 128; v++ {
		s.Process(types.ValidatorIndex(v), roots[rng.Intn(len(roots))], types.Slot(v+1))
	}
	stake := func(types.ValidatorIndex) types.Gwei { return 32_000_000_000 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Head(tree, tree.Genesis(), stake); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcess measures latest-message ingestion.
func BenchmarkProcess(b *testing.B) {
	s := NewStore()
	for i := 0; i < b.N; i++ {
		s.Process(types.ValidatorIndex(i%256), types.RootFromUint64(uint64(i)), types.Slot(i))
	}
}
