package forkchoice

import (
	"errors"
	"testing"

	"repro/internal/blocktree"
	"repro/internal/types"
)

func root(v uint64) types.Root { return types.RootFromUint64(v) }

func flatStake(types.ValidatorIndex) types.Gwei { return 32 }

// forkTree builds:
//
//	genesis -> a1(1) -> a2(2)
//	        -> b1(1)
func forkTree(t *testing.T) *blocktree.Tree {
	t.Helper()
	tree := blocktree.New(root(0))
	for _, b := range []blocktree.Block{
		{Slot: 1, Root: root(10), Parent: root(0)},
		{Slot: 2, Root: root(11), Parent: root(10)},
		{Slot: 1, Root: root(20), Parent: root(0)},
	} {
		if err := tree.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	return tree
}

func TestHeadNoVotesPicksDeterministicLeaf(t *testing.T) {
	tree := forkTree(t)
	s := NewStore()
	head, err := s.Head(tree, root(0), flatStake)
	if err != nil {
		t.Fatal(err)
	}
	// With zero weights everywhere, ties break to the lexicographically
	// smallest root at each level. root(10) < root(20) big-endian.
	if head != root(11) {
		t.Errorf("head = %v, want deterministic tie-break to %v", head, root(11))
	}
}

func TestHeadFollowsMajority(t *testing.T) {
	tree := forkTree(t)
	s := NewStore()
	s.Process(1, root(20), 1)
	s.Process(2, root(20), 1)
	s.Process(3, root(11), 2)
	head, err := s.Head(tree, root(0), flatStake)
	if err != nil {
		t.Fatal(err)
	}
	if head != root(20) {
		t.Errorf("head = %v, want majority branch %v", head, root(20))
	}
}

func TestHeadWeighsByStake(t *testing.T) {
	tree := forkTree(t)
	s := NewStore()
	s.Process(1, root(20), 1)
	s.Process(2, root(20), 1)
	s.Process(3, root(11), 2)
	// Validator 3 alone outweighs 1+2.
	stake := func(v types.ValidatorIndex) types.Gwei {
		if v == 3 {
			return 100
		}
		return 32
	}
	head, err := s.Head(tree, root(0), stake)
	if err != nil {
		t.Fatal(err)
	}
	if head != root(11) {
		t.Errorf("head = %v, want heavy-stake branch %v", head, root(11))
	}
}

func TestHeadFromJustifiedRoot(t *testing.T) {
	tree := forkTree(t)
	s := NewStore()
	// All votes on branch B, but fork choice constrained to start at a1:
	// must stay within a's subtree.
	s.Process(1, root(20), 1)
	s.Process(2, root(20), 1)
	head, err := s.Head(tree, root(10), flatStake)
	if err != nil {
		t.Fatal(err)
	}
	if head != root(11) {
		t.Errorf("head = %v, want %v (descend within start subtree)", head, root(11))
	}
}

func TestHeadUnknownStart(t *testing.T) {
	tree := forkTree(t)
	s := NewStore()
	if _, err := s.Head(tree, root(99), flatStake); !errors.Is(err, ErrUnknownStart) {
		t.Errorf("want ErrUnknownStart, got %v", err)
	}
}

func TestProcessKeepsNewestOnly(t *testing.T) {
	s := NewStore()
	if !s.Process(1, root(10), 5) {
		t.Error("first message should be recorded")
	}
	if s.Process(1, root(20), 4) {
		t.Error("older message must not replace newer")
	}
	if s.Process(1, root(20), 5) {
		t.Error("same-slot message must not replace existing")
	}
	if !s.Process(1, root(20), 6) {
		t.Error("newer message must replace")
	}
	m, ok := s.Latest(1)
	if !ok || m.Root != root(20) || m.Slot != 6 {
		t.Errorf("latest = %+v", m)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestVotesForMissingBlocksIgnored(t *testing.T) {
	tree := forkTree(t)
	s := NewStore()
	s.Process(1, root(77), 3) // block not in tree (other partition)
	s.Process(2, root(20), 1)
	head, err := s.Head(tree, root(0), flatStake)
	if err != nil {
		t.Fatal(err)
	}
	if head != root(20) {
		t.Errorf("head = %v, want %v (unknown-block vote ignored)", head, root(20))
	}
}

func TestZeroStakeVotesIgnored(t *testing.T) {
	tree := forkTree(t)
	s := NewStore()
	s.Process(1, root(20), 1) // will have zero stake (e.g. ejected)
	s.Process(2, root(11), 2)
	stake := func(v types.ValidatorIndex) types.Gwei {
		if v == 1 {
			return 0
		}
		return 32
	}
	head, err := s.Head(tree, root(0), stake)
	if err != nil {
		t.Fatal(err)
	}
	if head != root(11) {
		t.Errorf("head = %v, want %v", head, root(11))
	}
}

func TestWeightOf(t *testing.T) {
	tree := forkTree(t)
	s := NewStore()
	s.Process(1, root(11), 2)
	s.Process(2, root(10), 1)
	if got, err := s.WeightOf(tree, root(10), flatStake); err != nil || got != 64 {
		t.Errorf("weight(a1) = %d (%v), want 64 (both a-branch votes)", got, err)
	}
	if got, err := s.WeightOf(tree, root(11), flatStake); err != nil || got != 32 {
		t.Errorf("weight(a2) = %d (%v), want 32", got, err)
	}
	if got, err := s.WeightOf(tree, root(20), flatStake); err != nil || got != 0 {
		t.Errorf("weight(b1) = %d (%v), want 0", got, err)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewStore()
	s.Process(1, root(10), 1)
	c := s.Clone()
	c.Process(1, root(20), 2)
	m, _ := s.Latest(1)
	if m.Root != root(10) {
		t.Error("clone mutation leaked into original")
	}
}

func TestHeadDeterministicAcrossRuns(t *testing.T) {
	tree := forkTree(t)
	s := NewStore()
	for v := types.ValidatorIndex(0); v < 10; v++ {
		if v%2 == 0 {
			s.Process(v, root(11), 2)
		} else {
			s.Process(v, root(20), 1)
		}
	}
	first, err := s.Head(tree, root(0), flatStake)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		h, err := s.Head(tree, root(0), flatStake)
		if err != nil {
			t.Fatal(err)
		}
		if h != first {
			t.Fatalf("head changed between identical runs: %v vs %v", h, first)
		}
	}
}
