package forkchoice

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blocktree"
	"repro/internal/types"
)

// randomTree builds a deterministic random tree of n blocks over the given
// RNG, returning the tree and all roots.
func randomTree(rng *rand.Rand, n int) (*blocktree.Tree, []types.Root) {
	tree := blocktree.New(types.RootFromUint64(0))
	roots := []types.Root{types.RootFromUint64(0)}
	slots := map[types.Root]types.Slot{types.RootFromUint64(0): 0}
	for i := 1; i <= n; i++ {
		parent := roots[rng.Intn(len(roots))]
		r := types.RootFromUint64(uint64(i))
		b := blocktree.Block{Slot: slots[parent] + 1 + types.Slot(rng.Intn(3)), Root: r, Parent: parent}
		if err := tree.Add(b); err != nil {
			continue
		}
		slots[r] = b.Slot
		roots = append(roots, r)
	}
	return tree, roots
}

// TestHeadIsLeafInStartSubtreeProperty: for random trees and random vote
// assignments, the head is always a leaf and a descendant of the start
// block.
func TestHeadIsLeafInStartSubtreeProperty(t *testing.T) {
	f := func(seed int64, votes uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tree, roots := randomTree(rng, 30)
		s := NewStore()
		for v := 0; v < int(votes%40); v++ {
			target := roots[rng.Intn(len(roots))]
			s.Process(types.ValidatorIndex(v), target, types.Slot(v+1))
		}
		head, err := s.Head(tree, tree.Genesis(), func(types.ValidatorIndex) types.Gwei { return 32 })
		if err != nil {
			return false
		}
		if !tree.IsAncestor(tree.Genesis(), head) {
			return false
		}
		return len(tree.Children(head)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSubtreeWeightConservationProperty: the genesis subtree weight equals
// the total stake of validators whose vote targets a known block.
func TestSubtreeWeightConservationProperty(t *testing.T) {
	f := func(seed int64, votes uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tree, roots := randomTree(rng, 25)
		s := NewStore()
		counted := types.Gwei(0)
		for v := 0; v < int(votes%30); v++ {
			target := roots[rng.Intn(len(roots))]
			s.Process(types.ValidatorIndex(v), target, types.Slot(v+1))
			counted += 32
		}
		got, err := s.WeightOf(tree, tree.Genesis(), func(types.ValidatorIndex) types.Gwei { return 32 })
		// The inconsistency branch must never fire on a well-formed tree.
		return err == nil && got == counted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestHeadStableUnderVoteOrderProperty: processing the same votes in a
// different order yields the same head (latest-message semantics are
// order-independent for distinct slots).
func TestHeadStableUnderVoteOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree, roots := randomTree(rng, 20)
		type vote struct {
			v    types.ValidatorIndex
			root types.Root
			slot types.Slot
		}
		var votes []vote
		for v := 0; v < 12; v++ {
			votes = append(votes, vote{
				v:    types.ValidatorIndex(v),
				root: roots[rng.Intn(len(roots))],
				slot: types.Slot(rng.Intn(50) + 1),
			})
		}
		stake := func(types.ValidatorIndex) types.Gwei { return 32 }
		a := NewStore()
		for _, vt := range votes {
			a.Process(vt.v, vt.root, vt.slot)
		}
		b := NewStore()
		for i := len(votes) - 1; i >= 0; i-- {
			b.Process(votes[i].v, votes[i].root, votes[i].slot)
		}
		ha, err1 := a.Head(tree, tree.Genesis(), stake)
		hb, err2 := b.Head(tree, tree.Genesis(), stake)
		return err1 == nil && err2 == nil && ha == hb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestEngineEquivalenceUnderCompactionProperty: compacting the block tree
// mid-stream (pinning live vote targets, as beacon nodes do) never
// diverges the incremental proto-array from the recompute-everything
// oracle — neither right after the forced rebuild nor after further votes
// land on the compacted tree — and the head stays a leaf in the genesis
// subtree.
func TestEngineEquivalenceUnderCompactionProperty(t *testing.T) {
	f := func(seed int64, votes, wmSel uint8) bool {
		const n = 24
		rng := rand.New(rand.NewSource(seed))
		tree, roots := randomTree(rng, 40)
		proto := NewProtoArray()
		oracle := NewOracle()
		stake := func(types.ValidatorIndex) types.Gwei { return 32 }
		proto.UpdateStakes(n, stake)
		oracle.UpdateStakes(n, stake)
		vote := func(v int) {
			target := roots[rng.Intn(len(roots))]
			proto.Process(types.ValidatorIndex(v), target, types.Slot(v+1))
			oracle.Process(types.ValidatorIndex(v), target, types.Slot(v+1))
		}
		for v := 0; v < int(votes%n); v++ {
			vote(v)
		}
		if _, err := proto.Head(tree, tree.Genesis()); err != nil {
			return false
		}
		wm, err := tree.Slot(roots[int(wmSel)%len(roots)])
		if err != nil {
			return false
		}
		pinned := map[types.Root]bool{}
		for v := types.ValidatorIndex(0); v < n; v++ {
			if m, ok := proto.Latest(v); ok {
				pinned[m.Root] = true
			}
		}
		tree.Compact(wm, func(r types.Root) bool { return pinned[r] })
		agree := func() bool {
			ph, err1 := proto.Head(tree, tree.Genesis())
			oh, err2 := oracle.Head(tree, tree.Genesis())
			if err1 != nil || err2 != nil || ph != oh {
				return false
			}
			return tree.IsAncestor(tree.Genesis(), ph) && len(tree.Children(ph)) == 0
		}
		if !agree() {
			return false
		}
		// Keep voting on the compacted tree: survivors stay addressable,
		// folded targets park identically in both engines.
		for v := 0; v < 8; v++ {
			vote(v)
		}
		return agree()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
