// Package forkchoice implements the LMD-GHOST fork-choice rule: starting
// from the latest justified checkpoint, repeatedly descend into the child
// subtree carrying the greatest attesting stake, where each validator
// contributes only its latest block vote (paper Section 3.2: "The block
// vote is used in the fork choice rule which determines the chain to vote
// and build upon").
//
// Two engines implement the rule:
//
//   - ProtoArray (protoarray.go) is the production engine: columnar latest
//     messages, incrementally applied vote deltas over the block tree's
//     flat index space, and cached best-child/best-descendant pointers, so
//     a steady-state head query is an O(1) pointer read with zero
//     allocations regardless of validator count.
//   - Store (this file) is the original recompute-everything map engine,
//     retained behind NewStore/NewOracle as the correctness oracle: the
//     randomized equivalence suite asserts the two return bit-identical
//     heads, filtered heads, and subtree weights.
//
// Ties are broken by lexicographically smallest root in both engines so
// that every correct validator with the same view computes the same head.
package forkchoice

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/blocktree"
	"repro/internal/types"
)

// ErrUnknownStart is returned when the starting block for head computation
// is not in the tree.
var ErrUnknownStart = errors.New("forkchoice: unknown start block")

// ErrInconsistentTree is returned when a vote's ancestor walk hits a block
// whose parent is missing from the tree — impossible for the append-only,
// subtree-closed blocktree.Tree, so seeing it means the tree was corrupted
// and any weight computed from it would silently drop stake.
var ErrInconsistentTree = errors.New("forkchoice: inconsistent tree: ancestor walk hit a missing block")

// Message is a validator's latest block vote.
type Message struct {
	Root types.Root
	Slot types.Slot
}

// Engine is the fork-choice contract beacon nodes program against. Vote
// weights are pushed via UpdateStakes whenever the balances the rule weighs
// with change (the justified-state snapshot advancing), instead of being
// re-read through a callback on every head computation.
type Engine interface {
	// Process records a block vote; only votes newer (by slot) than the
	// current latest message replace it. Reports whether the store changed.
	Process(v types.ValidatorIndex, root types.Root, slot types.Slot) bool
	// Latest returns the latest message for v, if any.
	Latest(v types.ValidatorIndex) (Message, bool)
	// Len returns the number of validators with a recorded message.
	Len() int
	// UpdateStakes replaces the per-validator weights for validators
	// [0, n). The callback is consumed synchronously and not retained.
	UpdateStakes(n int, stake func(types.ValidatorIndex) types.Gwei)
	// Head runs LMD-GHOST on tree from start. Messages pointing at blocks
	// missing from the tree (e.g. not yet received across a partition) are
	// ignored.
	Head(tree *blocktree.Tree, start types.Root) (types.Root, error)
	// HeadFiltered is Head restricted to the visible portion of the tree:
	// descent skips children for which visible returns false (nil =
	// everything is visible).
	HeadFiltered(tree *blocktree.Tree, start types.Root, visible func(types.Root) bool) (types.Root, error)
	// SubtreeWeight returns the attesting stake in root's subtree.
	SubtreeWeight(tree *blocktree.Tree, root types.Root) (types.Gwei, error)
	// CloneEngine deep-copies the engine, so partitioned views can
	// diverge.
	CloneEngine() Engine
}

// Store holds the latest messages of the map-based oracle engine. The zero
// value is not usable; construct with NewStore.
type Store struct {
	latest map[types.ValidatorIndex]Message
}

// NewStore returns an empty latest-message store.
func NewStore() *Store {
	return &Store{latest: make(map[types.ValidatorIndex]Message)}
}

// Clone deep-copies the store, so partitioned views can diverge.
func (s *Store) Clone() *Store {
	out := NewStore()
	for v, m := range s.latest {
		out.latest[v] = m
	}
	return out
}

// Process records a block vote; only votes newer (by slot) than the current
// latest message replace it. It reports whether the store changed.
func (s *Store) Process(v types.ValidatorIndex, root types.Root, slot types.Slot) bool {
	cur, ok := s.latest[v]
	if ok && cur.Slot >= slot {
		return false
	}
	s.latest[v] = Message{Root: root, Slot: slot}
	return true
}

// Latest returns the latest message for v, if any.
func (s *Store) Latest(v types.ValidatorIndex) (Message, bool) {
	m, ok := s.latest[v]
	return m, ok
}

// Len returns the number of validators with a recorded message.
func (s *Store) Len() int { return len(s.latest) }

// Head runs LMD-GHOST on tree from start, weighing votes with stake.
// Messages pointing at blocks missing from the tree (e.g. not yet received
// across a partition) are ignored.
func (s *Store) Head(tree *blocktree.Tree, start types.Root, stake func(types.ValidatorIndex) types.Gwei) (types.Root, error) {
	return s.HeadFiltered(tree, start, stake, nil)
}

// HeadFiltered is Head restricted to the visible portion of the tree:
// descent skips children for which visible returns false (nil = everything
// is visible). The view-cohort simulator uses it to compute a member's head
// while blocks another member produced this slot are still in flight — a
// per-validator difference the shared tree would otherwise erase.
func (s *Store) HeadFiltered(tree *blocktree.Tree, start types.Root, stake func(types.ValidatorIndex) types.Gwei, visible func(types.Root) bool) (types.Root, error) {
	if !tree.Has(start) {
		return types.Root{}, fmt.Errorf("%w: %s", ErrUnknownStart, start)
	}
	weights, err := s.subtreeWeights(tree, stake)
	if err != nil {
		return types.Root{}, err
	}
	head := start
	for {
		children := tree.Children(head)
		var best types.Root
		var bestW types.Gwei
		found := false
		for _, c := range children {
			if visible != nil && !visible(c) {
				continue
			}
			w := weights[c]
			if !found || w > bestW || (w == bestW && lessRoot(c, best)) {
				best, bestW, found = c, w, true
			}
		}
		if !found {
			return head, nil
		}
		head = best
	}
}

// subtreeWeights computes, for every block, the total stake of validators
// whose latest message is in that block's subtree. Votes are first grouped
// by target block, then each distinct target's ancestor path is walked
// once: with paper-scale validator counts the latest messages concentrate
// on a handful of recent blocks, so the walk cost is distinct-roots x
// depth, not validators x depth.
//
// The walk hitting a block whose parent is gone means the tree violated its
// subtree-closure invariant; that would silently truncate the vote's
// remaining ancestor weight, so it is surfaced as ErrInconsistentTree
// instead of being dropped.
func (s *Store) subtreeWeights(tree *blocktree.Tree, stake func(types.ValidatorIndex) types.Gwei) (map[types.Root]types.Gwei, error) {
	byRoot := make(map[types.Root]types.Gwei, 16)
	//gasper:ordered commutative uint64 stake accumulation per target root; stake() is a pure column lookup
	for v, m := range s.latest {
		w := stake(v)
		if w == 0 || !tree.Has(m.Root) {
			continue
		}
		byRoot[m.Root] += w
	}
	weights := make(map[types.Root]types.Gwei, tree.Len())
	genesis := tree.Genesis()
	//gasper:ordered each target adds its weight along its own ancestor path; per-block sums commute
	for root, w := range byRoot {
		cur := root
		for {
			weights[cur] += w
			if cur == genesis {
				break
			}
			b, err := tree.Block(cur)
			if err != nil {
				return nil, fmt.Errorf("%w: block %s on the ancestor path of vote target %s", ErrInconsistentTree, cur, root)
			}
			cur = b.Parent
		}
	}
	return weights, nil
}

// WeightOf returns the attesting stake in root's subtree, for tests and
// diagnostics.
func (s *Store) WeightOf(tree *blocktree.Tree, root types.Root, stake func(types.ValidatorIndex) types.Gwei) (types.Gwei, error) {
	weights, err := s.subtreeWeights(tree, stake)
	if err != nil {
		return 0, err
	}
	return weights[root], nil
}

// Oracle adapts the map-based Store to the Engine interface by carrying the
// pushed stake column the interface expects. It exists so the equivalence
// suites can run whole simulations on the reference engine; production
// views use ProtoArray.
type Oracle struct {
	store  *Store
	stakes []types.Gwei
}

// NewOracle returns the map-based reference engine.
func NewOracle() *Oracle {
	return &Oracle{store: NewStore()}
}

// Process implements Engine.
func (o *Oracle) Process(v types.ValidatorIndex, root types.Root, slot types.Slot) bool {
	return o.store.Process(v, root, slot)
}

// Latest implements Engine.
func (o *Oracle) Latest(v types.ValidatorIndex) (Message, bool) { return o.store.Latest(v) }

// Len implements Engine.
func (o *Oracle) Len() int { return o.store.Len() }

// UpdateStakes implements Engine.
func (o *Oracle) UpdateStakes(n int, stake func(types.ValidatorIndex) types.Gwei) {
	if n > len(o.stakes) {
		o.stakes = append(o.stakes, make([]types.Gwei, n-len(o.stakes))...)
	}
	for i := 0; i < n; i++ {
		o.stakes[i] = stake(types.ValidatorIndex(i))
	}
}

func (o *Oracle) stake(v types.ValidatorIndex) types.Gwei {
	if int(v) >= len(o.stakes) {
		return 0
	}
	return o.stakes[v]
}

// Head implements Engine.
func (o *Oracle) Head(tree *blocktree.Tree, start types.Root) (types.Root, error) {
	return o.store.HeadFiltered(tree, start, o.stake, nil)
}

// HeadFiltered implements Engine.
func (o *Oracle) HeadFiltered(tree *blocktree.Tree, start types.Root, visible func(types.Root) bool) (types.Root, error) {
	return o.store.HeadFiltered(tree, start, o.stake, visible)
}

// SubtreeWeight implements Engine.
func (o *Oracle) SubtreeWeight(tree *blocktree.Tree, root types.Root) (types.Gwei, error) {
	return o.store.WeightOf(tree, root, o.stake)
}

// CloneEngine implements Engine.
func (o *Oracle) CloneEngine() Engine {
	out := &Oracle{store: o.store.Clone(), stakes: make([]types.Gwei, len(o.stakes))}
	copy(out.stakes, o.stakes)
	return out
}

// lessRoot orders roots lexicographically; both engines break weight ties
// with it so they pick identical heads.
func lessRoot(a, b types.Root) bool {
	return bytes.Compare(a[:], b[:]) < 0
}
