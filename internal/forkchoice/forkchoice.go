// Package forkchoice implements the LMD-GHOST fork-choice rule: starting
// from the latest justified checkpoint, repeatedly descend into the child
// subtree carrying the greatest attesting stake, where each validator
// contributes only its latest block vote (paper Section 3.2: "The block
// vote is used in the fork choice rule which determines the chain to vote
// and build upon").
//
// The store keeps one latest message per validator. Ties are broken by
// lexicographically smallest root so that every correct validator with the
// same view computes the same head.
package forkchoice

import (
	"errors"
	"fmt"

	"repro/internal/blocktree"
	"repro/internal/types"
)

// ErrUnknownStart is returned when the starting block for head computation
// is not in the tree.
var ErrUnknownStart = errors.New("forkchoice: unknown start block")

// Message is a validator's latest block vote.
type Message struct {
	Root types.Root
	Slot types.Slot
}

// Store holds the latest messages. The zero value is not usable; construct
// with NewStore.
type Store struct {
	latest map[types.ValidatorIndex]Message
}

// NewStore returns an empty latest-message store.
func NewStore() *Store {
	return &Store{latest: make(map[types.ValidatorIndex]Message)}
}

// Clone deep-copies the store, so partitioned views can diverge.
func (s *Store) Clone() *Store {
	out := NewStore()
	for v, m := range s.latest {
		out.latest[v] = m
	}
	return out
}

// Process records a block vote; only votes newer (by slot) than the current
// latest message replace it. It reports whether the store changed.
func (s *Store) Process(v types.ValidatorIndex, root types.Root, slot types.Slot) bool {
	cur, ok := s.latest[v]
	if ok && cur.Slot >= slot {
		return false
	}
	s.latest[v] = Message{Root: root, Slot: slot}
	return true
}

// Latest returns the latest message for v, if any.
func (s *Store) Latest(v types.ValidatorIndex) (Message, bool) {
	m, ok := s.latest[v]
	return m, ok
}

// Len returns the number of validators with a recorded message.
func (s *Store) Len() int { return len(s.latest) }

// Head runs LMD-GHOST on tree from start, weighing votes with stake.
// Messages pointing at blocks missing from the tree (e.g. not yet received
// across a partition) are ignored.
func (s *Store) Head(tree *blocktree.Tree, start types.Root, stake func(types.ValidatorIndex) types.Gwei) (types.Root, error) {
	return s.HeadFiltered(tree, start, stake, nil)
}

// HeadFiltered is Head restricted to the visible portion of the tree:
// descent skips children for which visible returns false (nil = everything
// is visible). The view-cohort simulator uses it to compute a member's head
// while blocks another member produced this slot are still in flight — a
// per-validator difference the shared tree would otherwise erase.
func (s *Store) HeadFiltered(tree *blocktree.Tree, start types.Root, stake func(types.ValidatorIndex) types.Gwei, visible func(types.Root) bool) (types.Root, error) {
	if !tree.Has(start) {
		return types.Root{}, fmt.Errorf("%w: %s", ErrUnknownStart, start)
	}
	weights := s.subtreeWeights(tree, stake)
	head := start
	for {
		children := tree.Children(head)
		var best types.Root
		var bestW types.Gwei
		found := false
		for _, c := range children {
			if visible != nil && !visible(c) {
				continue
			}
			w := weights[c]
			if !found || w > bestW || (w == bestW && lessRoot(c, best)) {
				best, bestW, found = c, w, true
			}
		}
		if !found {
			return head, nil
		}
		head = best
	}
}

// subtreeWeights computes, for every block, the total stake of validators
// whose latest message is in that block's subtree. Votes are first grouped
// by target block, then each distinct target's ancestor path is walked
// once: with paper-scale validator counts the latest messages concentrate
// on a handful of recent blocks, so the walk cost is distinct-roots x
// depth, not validators x depth.
func (s *Store) subtreeWeights(tree *blocktree.Tree, stake func(types.ValidatorIndex) types.Gwei) map[types.Root]types.Gwei {
	byRoot := make(map[types.Root]types.Gwei, 16)
	for v, m := range s.latest {
		w := stake(v)
		if w == 0 || !tree.Has(m.Root) {
			continue
		}
		byRoot[m.Root] += w
	}
	weights := make(map[types.Root]types.Gwei, tree.Len())
	genesis := tree.Genesis()
	for root, w := range byRoot {
		cur := root
		for {
			weights[cur] += w
			if cur == genesis {
				break
			}
			b, err := tree.Block(cur)
			if err != nil {
				break
			}
			cur = b.Parent
		}
	}
	return weights
}

// WeightOf returns the attesting stake in root's subtree, for tests and
// diagnostics.
func (s *Store) WeightOf(tree *blocktree.Tree, root types.Root, stake func(types.ValidatorIndex) types.Gwei) types.Gwei {
	return s.subtreeWeights(tree, stake)[root]
}

func lessRoot(a, b types.Root) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
