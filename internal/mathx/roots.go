// Package mathx provides the numerical routines the analytic models need:
// root finding (bisection and Brent's method), numerical integration
// (adaptive Simpson), Gaussian and log-normal distribution helpers, and
// discrete random-walk statistics.
//
// Everything is deterministic and allocation-light; the analytic engine in
// internal/analytic is a thin layer over these primitives.
package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoBracket is returned by the root finders when f(a) and f(b) do not
// bracket a sign change.
var ErrNoBracket = errors.New("mathx: root not bracketed")

// ErrNoConvergence is returned when an iterative method exhausts its
// iteration budget without reaching the requested tolerance.
var ErrNoConvergence = errors.New("mathx: no convergence")

const defaultMaxIter = 200

// Bisect finds a root of f in [a, b] to within tol using bisection.
// f(a) and f(b) must have opposite signs.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	for i := 0; i < 2000; i++ {
		m := 0.5 * (a + b)
		fm := f(m)
		if fm == 0 || (b-a)/2 < tol {
			return m, nil
		}
		if fa*fm < 0 {
			b, fb = m, fm
		} else {
			a, fa = m, fm
		}
	}
	_ = fb
	return 0.5 * (a + b), nil
}

// Brent finds a root of f in [a, b] using Brent's method (inverse quadratic
// interpolation with bisection fallback). It converges superlinearly for
// smooth functions and is the workhorse for the paper's threshold solvers.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	var d float64
	mflag := true
	for i := 0; i < defaultMaxIter; i++ {
		if fb == 0 || math.Abs(b-a) < tol {
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant step.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = 0.5 * (a + b)
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d = c
		c, fc = b, fb
		if fa*fs < 0 {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return b, ErrNoConvergence
}

// FindBracketUp scans forward from x0 in steps of width step (doubling each
// time) until f changes sign, returning a bracketing interval. It is used to
// seed Brent when the root location is unknown a priori.
func FindBracketUp(f func(float64) float64, x0, step, xMax float64) (a, b float64, err error) {
	fa := f(x0)
	if fa == 0 {
		return x0, x0, nil
	}
	a = x0
	for x := x0 + step; x <= xMax; x += step {
		fx := f(x)
		if fa*fx <= 0 {
			return a, x, nil
		}
		a, fa = x, fx
		step *= 2
	}
	return 0, 0, fmt.Errorf("%w in [%g, %g]", ErrNoBracket, x0, xMax)
}
