package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	tests := []struct {
		x, mu, sigma, want float64
	}{
		{0, 0, 1, 0.5},
		{1.96, 0, 1, 0.9750021},
		{-1.96, 0, 1, 0.0249979},
		{5, 5, 2, 0.5},
	}
	for _, tt := range tests {
		if got := NormalCDF(tt.x, tt.mu, tt.sigma); math.Abs(got-tt.want) > 1e-6 {
			t.Errorf("NormalCDF(%v,%v,%v) = %v, want %v", tt.x, tt.mu, tt.sigma, got, tt.want)
		}
	}
}

func TestNormalPDFIntegratesToOne(t *testing.T) {
	total := Simpson(func(x float64) float64 { return NormalPDF(x, 1, 2) }, -20, 22, 2000)
	if math.Abs(total-1) > 1e-8 {
		t.Errorf("normal pdf integrates to %v, want 1", total)
	}
}

func TestNormalPDFCDFConsistency(t *testing.T) {
	// CDF(b)-CDF(a) must equal the integral of the PDF over [a,b].
	a, b := -1.3, 2.1
	byCDF := NormalCDF(b, 0, 1) - NormalCDF(a, 0, 1)
	byPDF := Simpson(func(x float64) float64 { return NormalPDF(x, 0, 1) }, a, b, 2000)
	if math.Abs(byCDF-byPDF) > 1e-9 {
		t.Errorf("CDF/PDF mismatch: %v vs %v", byCDF, byPDF)
	}
}

func TestDegenerateSigma(t *testing.T) {
	if got := NormalCDF(1, 0, 0); got != 1 {
		t.Errorf("degenerate NormalCDF above mean = %v, want 1", got)
	}
	if got := NormalCDF(-1, 0, 0); got != 0 {
		t.Errorf("degenerate NormalCDF below mean = %v, want 0", got)
	}
	if got := NormalPDF(1, 0, 0); got != 0 {
		t.Errorf("degenerate NormalPDF = %v, want 0", got)
	}
	if got := LogNormalCDF(2, 0, 0); got != 1 {
		t.Errorf("degenerate LogNormalCDF above median = %v, want 1", got)
	}
}

func TestLogNormalCDFMedian(t *testing.T) {
	// Median of exp(N(mu, sigma^2)) is exp(mu).
	for _, mu := range []float64{-1, 0, 2} {
		if got := LogNormalCDF(math.Exp(mu), mu, 1.5); math.Abs(got-0.5) > 1e-12 {
			t.Errorf("LogNormalCDF at median (mu=%v) = %v, want 0.5", mu, got)
		}
	}
}

func TestLogNormalPDFIntegratesToOne(t *testing.T) {
	total := AdaptiveSimpson(func(x float64) float64 { return LogNormalPDF(x, 0, 0.5) }, 1e-9, 50, 1e-10)
	if math.Abs(total-1) > 1e-6 {
		t.Errorf("lognormal pdf integrates to %v, want 1", total)
	}
}

func TestLogNormalZeroBelowZero(t *testing.T) {
	if LogNormalPDF(-1, 0, 1) != 0 || LogNormalCDF(-1, 0, 1) != 0 || LogNormalCDF(0, 0, 1) != 0 {
		t.Error("lognormal must have no mass at x <= 0")
	}
}

func TestCensoredCDFAtoms(t *testing.T) {
	base := func(x float64) float64 { return NormalCDF(x, 10, 3) }
	g := CensoredCDF(base, 5, 15)
	// Below the lower censor point: only the atom's mass, but the CDF is
	// still F(a) everywhere below a per Equation 22's H(x-a) convention
	// evaluated with the atom at the boundary.
	if got, want := g(5), base(5); math.Abs(got-want) > 1e-12 {
		t.Errorf("g(a) = %v, want F(a) = %v", got, want)
	}
	if got := g(15); math.Abs(got-1) > 1e-12 {
		t.Errorf("g(b) = %v, want 1", got)
	}
	mid := g(10)
	if mid <= g(5.0) || mid >= g(15) {
		t.Error("censored CDF must be strictly increasing in the interior")
	}
}

func TestCensoredCDFMonotoneProperty(t *testing.T) {
	base := func(x float64) float64 { return NormalCDF(x, 20, 6) }
	g := CensoredCDF(base, 10, 32)
	f := func(a, b uint16) bool {
		x := float64(a) / 65535 * 40
		y := float64(b) / 65535 * 40
		if x > y {
			x, y = y, x
		}
		gx, gy := g(x), g(y)
		return gx <= gy+1e-12 && gx >= 0 && gy <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTwoBranchWalkMoments(t *testing.T) {
	w := TwoBranchWalk{P: 0.5, Unbounded: true}
	rng := rand.New(rand.NewSource(42))
	const trials = 20000
	const steps = 100
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		final, _ := w.SimulateScorePath(rng, steps)
		sum += final
		sumSq += final * final
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean-w.Mean(steps)) > 1.0 {
		t.Errorf("empirical mean %v, want %v", mean, w.Mean(steps))
	}
	if math.Abs(variance-w.Variance(steps))/w.Variance(steps) > 0.05 {
		t.Errorf("empirical variance %v, want %v", variance, w.Variance(steps))
	}
}

func TestTwoBranchWalkBounded(t *testing.T) {
	w := TwoBranchWalk{P: 0.9} // mostly active: floor at zero should bind
	rng := rand.New(rand.NewSource(7))
	score := 0.0
	for i := 0; i < 1000; i++ {
		score = w.Step(rng, score)
		if score < 0 {
			t.Fatal("bounded walk went negative")
		}
	}
}

func TestConvolvedDiffusion(t *testing.T) {
	if got := ConvolvedDiffusion(0.5); got != 6.25 {
		t.Errorf("D(0.5) = %v, want 6.25", got)
	}
	if ConvolvedDrift != 1.5 {
		t.Errorf("drift = %v, want 1.5", ConvolvedDrift)
	}
}

func TestErfArg(t *testing.T) {
	if got := ErfArg(0); got != 0.5 {
		t.Errorf("ErfArg(0) = %v, want 0.5", got)
	}
	if got := ErfArg(10); math.Abs(got-1) > 1e-12 {
		t.Errorf("ErfArg(10) = %v, want ~1", got)
	}
}
