package mathx

import "math"

// NormalPDF evaluates the Gaussian density with mean mu and standard
// deviation sigma at x.
func NormalPDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		return 0
	}
	z := (x - mu) / sigma
	return math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
}

// NormalCDF evaluates the Gaussian cumulative distribution with mean mu and
// standard deviation sigma at x.
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x < mu {
			return 0
		}
		return 1
	}
	return 0.5 * (1 + math.Erf((x-mu)/(sigma*math.Sqrt2)))
}

// LogNormalPDF evaluates the density of exp(N(mu, sigma^2)) at x > 0.
func LogNormalPDF(x, mu, sigma float64) float64 {
	if x <= 0 || sigma <= 0 {
		return 0
	}
	z := (math.Log(x) - mu) / sigma
	return math.Exp(-0.5*z*z) / (x * sigma * math.Sqrt(2*math.Pi))
}

// LogNormalCDF evaluates the cumulative distribution of exp(N(mu, sigma^2))
// at x.
func LogNormalCDF(x, mu, sigma float64) float64 {
	if x <= 0 {
		return 0
	}
	if sigma <= 0 {
		if math.Log(x) < mu {
			return 0
		}
		return 1
	}
	return 0.5 * (1 + math.Erf((math.Log(x)-mu)/(sigma*math.Sqrt2)))
}

// CensoredCDF evaluates the cumulative distribution of a random variable
// with continuous CDF cdf, censored to the interval [a, b]: all mass below a
// collapses to an atom at a (interpreted by the paper as ejection to stake
// zero) and all mass above b collapses to an atom at b (stake capped at 32).
//
// The returned function G satisfies G(x)=cdf(a) for a <= x < ... , exactly
// Equation 22 of the paper:
//
//	G(x) = F(a) + H(x-a)[F(x)-F(a)] + H(x-b)[1-F(x)]
func CensoredCDF(cdf func(float64) float64, a, b float64) func(float64) float64 {
	fa := cdf(a)
	return func(x float64) float64 {
		g := fa
		if x >= a {
			g += cdf(x) - fa
		}
		if x >= b {
			g += 1 - cdf(x)
		}
		return Clamp(g, 0, 1)
	}
}

// ErfArg is a convenience wrapper: 0.5*(1+erf(z)), the standard normal CDF
// evaluated at sqrt(2)*z. The paper writes its stake CDF in this form
// (Equation 19).
func ErfArg(z float64) float64 { return 0.5 * (1 + math.Erf(z)) }
