package mathx

import (
	"math"
	"testing"
)

func TestSimpsonPolynomial(t *testing.T) {
	// Simpson is exact for cubics.
	f := func(x float64) float64 { return x*x*x - 2*x + 1 }
	got := Simpson(f, 0, 2, 2)
	want := 4.0 - 4.0 + 2.0 // x^4/4 - x^2 + x over [0,2]
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Simpson cubic = %v, want %v", got, want)
	}
}

func TestSimpsonOddN(t *testing.T) {
	f := func(x float64) float64 { return x }
	if got := Simpson(f, 0, 1, 3); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Simpson with odd n = %v, want 0.5", got)
	}
}

func TestSimpsonEmptyInterval(t *testing.T) {
	if got := Simpson(math.Sin, 3, 3, 100); got != 0 {
		t.Errorf("Simpson over empty interval = %v, want 0", got)
	}
}

func TestAdaptiveSimpsonSin(t *testing.T) {
	got := AdaptiveSimpson(math.Sin, 0, math.Pi, 1e-12)
	if math.Abs(got-2) > 1e-10 {
		t.Errorf("adaptive Simpson sin over [0,pi] = %v, want 2", got)
	}
}

func TestAdaptiveSimpsonSharpPeak(t *testing.T) {
	// Narrow Gaussian: naive fixed grids miss it; adaptive must not.
	f := func(x float64) float64 { return NormalPDF(x, 0.37, 0.001) }
	got := AdaptiveSimpson(f, 0, 1, 1e-10)
	if math.Abs(got-1) > 1e-6 {
		t.Errorf("adaptive Simpson sharp peak = %v, want 1", got)
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(xs) != len(want) {
		t.Fatalf("len = %d, want %d", len(xs), len(want))
	}
	for i := range xs {
		if math.Abs(xs[i]-want[i]) > 1e-12 {
			t.Errorf("Linspace[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("Linspace n=1 = %v, want [3]", got)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
	}
	for _, tt := range tests {
		if got := Clamp(tt.x, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}
