package mathx

import "math"

// Simpson integrates f over [a, b] using composite Simpson's rule with n
// subintervals (n is rounded up to the next even number, minimum 2).
func Simpson(f func(float64) float64, a, b float64, n int) float64 {
	if a == b {
		return 0
	}
	if n < 2 {
		n = 2
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// AdaptiveSimpson integrates f over [a, b] to absolute tolerance tol using
// recursive adaptive Simpson quadrature with a bounded recursion depth. The
// interval is pre-split into 64 panels so that narrow features (sharp peaks
// well inside a panel) are not missed by the error estimator.
func AdaptiveSimpson(f func(float64) float64, a, b, tol float64) float64 {
	const panels = 64
	h := (b - a) / panels
	total := 0.0
	for i := 0; i < panels; i++ {
		pa := a + float64(i)*h
		pb := pa + h
		fa, fb := f(pa), f(pb)
		m, fm, whole := simpsonStep(f, pa, pb, fa, fb)
		total += adaptiveAux(f, pa, pb, fa, fb, m, fm, whole, tol/panels, 50)
	}
	return total
}

func simpsonStep(f func(float64) float64, a, b, fa, fb float64) (m, fm, s float64) {
	m = 0.5 * (a + b)
	fm = f(m)
	s = (b - a) / 6 * (fa + 4*fm + fb)
	return m, fm, s
}

func adaptiveAux(f func(float64) float64, a, b, fa, fb, m, fm, whole, tol float64, depth int) float64 {
	lm, flm, left := simpsonStep(f, a, m, fa, fm)
	rm, frm, right := simpsonStep(f, m, b, fm, fb)
	delta := left + right - whole
	if depth <= 0 || math.Abs(delta) <= 15*tol {
		return left + right + delta/15
	}
	return adaptiveAux(f, a, m, fa, fm, lm, flm, left, tol/2, depth-1) +
		adaptiveAux(f, m, b, fm, fb, rm, frm, right, tol/2, depth-1)
}

// Linspace returns n evenly spaced values from a to b inclusive. n must be
// at least 2 for a meaningful range; n <= 1 returns []float64{a}.
func Linspace(a, b float64, n int) []float64 {
	if n <= 1 {
		return []float64{a}
	}
	out := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*step
	}
	out[n-1] = b
	return out
}

// Clamp limits x to the interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
