package mathx

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBisectSimpleRoot(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	root, err := Bisect(f, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Errorf("Bisect sqrt(2) = %v, want %v", root, math.Sqrt2)
	}
}

func TestBisectEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x }
	root, err := Bisect(f, 0, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if root != 0 {
		t.Errorf("Bisect with root at endpoint a = %v, want 0", root)
	}
	root, err = Bisect(f, -1, 0, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if root != 0 {
		t.Errorf("Bisect with root at endpoint b = %v, want 0", root)
	}
}

func TestBisectNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, -1, 1, 1e-9); !errors.Is(err, ErrNoBracket) {
		t.Errorf("expected ErrNoBracket, got %v", err)
	}
}

func TestBrentPolynomial(t *testing.T) {
	f := func(x float64) float64 { return (x + 3) * (x - 1) * (x - 1) * (x - 4) }
	root, err := Brent(f, 2, 5, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-4) > 1e-9 {
		t.Errorf("Brent root = %v, want 4", root)
	}
}

func TestBrentTranscendental(t *testing.T) {
	f := func(x float64) float64 { return math.Cos(x) - x }
	root, err := Brent(f, 0, 1, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	// Dottie number.
	if math.Abs(root-0.7390851332151607) > 1e-10 {
		t.Errorf("Brent cos fixpoint = %v", root)
	}
}

func TestBrentNoBracket(t *testing.T) {
	f := func(x float64) float64 { return 1 + x*x }
	if _, err := Brent(f, 0, 1, 1e-9); !errors.Is(err, ErrNoBracket) {
		t.Errorf("expected ErrNoBracket, got %v", err)
	}
}

func TestBrentAgreesWithBisect(t *testing.T) {
	f := func(k float64) func(float64) float64 {
		return func(x float64) float64 { return math.Exp(-x) - k }
	}
	for _, k := range []float64{0.9, 0.5, 0.1, 0.01} {
		want := -math.Log(k)
		a, err := Bisect(f(k), 0, 10, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Brent(f(k), 0, 10, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-want) > 1e-9 || math.Abs(b-want) > 1e-9 {
			t.Errorf("k=%v: bisect=%v brent=%v want=%v", k, a, b, want)
		}
	}
}

func TestFindBracketUp(t *testing.T) {
	f := func(x float64) float64 { return x - 100 }
	a, b, err := FindBracketUp(f, 0, 1, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if !(f(a)*f(b) <= 0) {
		t.Errorf("FindBracketUp returned non-bracketing interval [%v, %v]", a, b)
	}
}

func TestFindBracketUpFailure(t *testing.T) {
	f := func(x float64) float64 { return 1.0 }
	if _, _, err := FindBracketUp(f, 0, 1, 100); !errors.Is(err, ErrNoBracket) {
		t.Errorf("expected ErrNoBracket, got %v", err)
	}
}

func TestBrentRandomizedMonotone(t *testing.T) {
	// Property: for any c in (0,1), the root of x^3 - c in [0,1] is cbrt(c).
	f := func(raw uint16) bool {
		c := (float64(raw) + 1) / 65537.0
		root, err := Brent(func(x float64) float64 { return x*x*x - c }, 0, 1, 1e-13)
		if err != nil {
			return false
		}
		return math.Abs(root-math.Cbrt(c)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
