package mathx

import "math/rand"

// TwoBranchWalk models the inactivity-score dynamics of an honest validator
// during the probabilistic bouncing attack (paper Section 5.3). Every epoch
// the validator lands on branch A with probability p and on branch B with
// probability 1-p; from the point of view of one branch its inactivity score
// moves +4 when it was on the other branch and -1 (floored at zero unless
// unbounded) when it was on this branch.
type TwoBranchWalk struct {
	// P is the per-epoch probability of being active on the observed
	// branch.
	P float64
	// Unbounded disables the score floor at zero. The paper's analytic
	// treatment "disregards the fact that the actual inactivity score is
	// bounded by zero for analytical tractability"; setting Unbounded
	// reproduces that choice, while leaving it false models the real
	// protocol.
	Unbounded bool
}

// Step advances the score by one epoch using rng and returns the new score.
func (w TwoBranchWalk) Step(rng *rand.Rand, score float64) float64 {
	if rng.Float64() < w.P {
		score--
	} else {
		score += 4
	}
	if !w.Unbounded && score < 0 {
		score = 0
	}
	return score
}

// Mean returns the expected inactivity score after t epochs for the
// unbounded walk: the drift is +4(1-p) - p = 4 - 5p per epoch; averaged over
// the two branches of the attack (p and 1-p) it is V = 3/2 per epoch.
func (w TwoBranchWalk) Mean(t float64) float64 {
	return (4 - 5*w.P) * t
}

// Variance returns the variance of the unbounded walk after t epochs. A
// single step takes values {+4, -1} whose spread is 5, so the per-step
// variance is 25p(1-p).
func (w TwoBranchWalk) Variance(t float64) float64 {
	return 25 * w.P * (1 - w.P) * t
}

// ConvolvedDrift is the drift V of the paper's convolution of the two
// opposite random walks (one per branch): +3 every two epochs, i.e. 3/2 per
// epoch, independent of p (Equation 15 and the following discussion).
const ConvolvedDrift = 1.5

// ConvolvedDiffusion returns the paper's diffusion coefficient
// D = 25 p (1-p) used in Equation 16.
func ConvolvedDiffusion(p float64) float64 { return 25 * p * (1 - p) }

// SimulateScorePath simulates t epochs of the walk and returns the final
// score. The integral of the score path (sum over epochs) is returned as
// well, since the stake depends on the integrated score.
func (w TwoBranchWalk) SimulateScorePath(rng *rand.Rand, t int) (final, integral float64) {
	score := 0.0
	for i := 0; i < t; i++ {
		score = w.Step(rng, score)
		integral += score
	}
	return score, integral
}
