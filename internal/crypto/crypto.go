// Package crypto supplies the signing substrate for the simulator:
// deterministic ed25519 keypairs per validator, message digests, and signed
// envelopes used by attestations and blocks.
//
// The paper assumes unforgeable digital signatures and identification of
// validators by public key (Section 2); mainnet uses BLS12-381 aggregation,
// which we substitute with stdlib ed25519. The attacks under study depend
// only on who can be observed voting where, never on signature aggregation,
// so the substitution preserves behavior (see DESIGN.md).
package crypto

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/types"
)

// ErrBadSignature is returned when signature verification fails.
var ErrBadSignature = errors.New("crypto: signature verification failed")

// KeyPair holds a validator's signing keys.
type KeyPair struct {
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// DeterministicKeyPair derives a keypair from a validator index and a domain
// seed. The derivation is stable across runs, which keeps every simulation
// reproducible.
func DeterministicKeyPair(index types.ValidatorIndex, seed uint64) KeyPair {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(index))
	binary.BigEndian.PutUint64(buf[8:], seed)
	h := sha256.Sum256(buf[:])
	priv := ed25519.NewKeyFromSeed(h[:])
	return KeyPair{Public: priv.Public().(ed25519.PublicKey), private: priv}
}

// Sign signs the digest of msg.
func (k KeyPair) Sign(msg []byte) []byte {
	d := Digest(msg)
	return ed25519.Sign(k.private, d[:])
}

// Verify checks sig over msg against pub.
func Verify(pub ed25519.PublicKey, msg, sig []byte) error {
	d := Digest(msg)
	if !ed25519.Verify(pub, d[:], sig) {
		return ErrBadSignature
	}
	return nil
}

// Digest hashes arbitrary bytes to a 32-byte root.
func Digest(data []byte) types.Root {
	return sha256.Sum256(data)
}

// HashItems produces a root from a sequence of integer fields; the
// simulator uses it to mint deterministic block roots from (slot, proposer,
// parent) triples.
func HashItems(items ...uint64) types.Root {
	buf := make([]byte, 8*len(items))
	for i, v := range items {
		binary.BigEndian.PutUint64(buf[i*8:], v)
	}
	return sha256.Sum256(buf)
}

// HashRoots produces a root binding a sequence of roots together with a
// leading tag, used for vote digests.
func HashRoots(tag uint64, roots ...types.Root) types.Root {
	buf := make([]byte, 8+32*len(roots))
	binary.BigEndian.PutUint64(buf[:8], tag)
	for i, r := range roots {
		copy(buf[8+32*i:], r[:])
	}
	return sha256.Sum256(buf)
}

// Envelope is a signed message attributed to a validator.
type Envelope struct {
	Author    types.ValidatorIndex
	Payload   []byte
	Signature []byte
}

// NewEnvelope signs payload with k on behalf of author.
func NewEnvelope(author types.ValidatorIndex, k KeyPair, payload []byte) Envelope {
	return Envelope{Author: author, Payload: payload, Signature: k.Sign(payload)}
}

// Check verifies the envelope against the author's public key.
func (e Envelope) Check(pub ed25519.PublicKey) error {
	if err := Verify(pub, e.Payload, e.Signature); err != nil {
		return fmt.Errorf("envelope from validator %d: %w", e.Author, err)
	}
	return nil
}
