package crypto

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestDeterministicKeyPairStable(t *testing.T) {
	a := DeterministicKeyPair(7, 99)
	b := DeterministicKeyPair(7, 99)
	if !bytes.Equal(a.Public, b.Public) {
		t.Error("same (index, seed) must derive the same key")
	}
}

func TestDeterministicKeyPairDistinct(t *testing.T) {
	a := DeterministicKeyPair(1, 0)
	b := DeterministicKeyPair(2, 0)
	c := DeterministicKeyPair(1, 1)
	if bytes.Equal(a.Public, b.Public) {
		t.Error("different indices must derive different keys")
	}
	if bytes.Equal(a.Public, c.Public) {
		t.Error("different seeds must derive different keys")
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	k := DeterministicKeyPair(3, 0)
	msg := []byte("attestation data")
	sig := k.Sign(msg)
	if err := Verify(k.Public, msg, sig); err != nil {
		t.Fatalf("verification of valid signature failed: %v", err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	k := DeterministicKeyPair(3, 0)
	sig := k.Sign([]byte("original"))
	if err := Verify(k.Public, []byte("forged"), sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("expected ErrBadSignature, got %v", err)
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	k1 := DeterministicKeyPair(1, 0)
	k2 := DeterministicKeyPair(2, 0)
	sig := k1.Sign([]byte("msg"))
	if err := Verify(k2.Public, []byte("msg"), sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("expected ErrBadSignature, got %v", err)
	}
}

func TestHashItemsInjectiveOnSamples(t *testing.T) {
	seen := map[types.Root][3]uint64{}
	for s := uint64(0); s < 10; s++ {
		for p := uint64(0); p < 10; p++ {
			r := HashItems(s, p, s+p)
			if prev, ok := seen[r]; ok {
				t.Fatalf("collision between %v and [%d %d %d]", prev, s, p, s+p)
			}
			seen[r] = [3]uint64{s, p, s + p}
		}
	}
}

func TestHashItemsOrderSensitive(t *testing.T) {
	if HashItems(1, 2) == HashItems(2, 1) {
		t.Error("HashItems must be order sensitive")
	}
}

func TestHashRoots(t *testing.T) {
	a := types.RootFromUint64(1)
	b := types.RootFromUint64(2)
	if HashRoots(0, a, b) == HashRoots(0, b, a) {
		t.Error("HashRoots must be order sensitive")
	}
	if HashRoots(0, a) == HashRoots(1, a) {
		t.Error("HashRoots must be tag sensitive")
	}
}

func TestEnvelopeCheck(t *testing.T) {
	k := DeterministicKeyPair(11, 5)
	env := NewEnvelope(11, k, []byte("checkpoint vote"))
	if err := env.Check(k.Public); err != nil {
		t.Fatalf("valid envelope rejected: %v", err)
	}
	env.Payload = []byte("altered")
	if err := env.Check(k.Public); err == nil {
		t.Error("altered envelope accepted")
	}
}

func TestSignaturePropertyRandomPayloads(t *testing.T) {
	k := DeterministicKeyPair(21, 9)
	f := func(payload []byte) bool {
		sig := k.Sign(payload)
		return Verify(k.Public, payload, sig) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
