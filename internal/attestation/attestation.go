// Package attestation defines the vote messages of the protocol and the
// pools that collect them.
//
// An attestation carries two votes (paper Section 3.2): a block vote (the
// head of the chain according to the attester, consumed by the fork-choice
// rule) and a checkpoint vote (a source->target pair of checkpoints,
// consumed by the FFG justification machinery). Each validator attests once
// per epoch.
package attestation

import (
	"bytes"
	"fmt"

	"repro/internal/crypto"
	"repro/internal/types"
)

// Data is the signed content of an attestation.
type Data struct {
	// Slot in which the attestation was produced.
	Slot types.Slot
	// Head is the block vote: the attester's view of the chain head.
	Head types.Root
	// Source is the checkpoint-vote source: the latest justified
	// checkpoint in the attester's view.
	Source types.Checkpoint
	// Target is the checkpoint-vote target: the checkpoint of the
	// current epoch on the attester's candidate chain.
	Target types.Checkpoint
}

// Digest returns a stable hash of the data for signing and equivocation
// detection.
func (d Data) Digest() types.Root {
	return crypto.HashRoots(
		uint64(d.Slot)<<32|uint64(d.Source.Epoch)<<16|uint64(d.Target.Epoch),
		d.Head, d.Source.Root, d.Target.Root,
	)
}

// Attestation is a vote attributed to one validator. The simulator treats
// the attribution as authenticated (signatures are exercised separately in
// internal/crypto envelopes; carrying them on every simulated message would
// only slow the large sweeps down without changing any behavior).
type Attestation struct {
	Validator types.ValidatorIndex
	Data      Data
}

// String renders a compact description for logs.
func (a Attestation) String() string {
	return fmt.Sprintf("att(v=%d slot=%d head=%s tgt=%d/%s src=%d)",
		a.Validator, a.Data.Slot, a.Data.Head,
		a.Data.Target.Epoch, a.Data.Target.Root, a.Data.Source.Epoch)
}

// Pool accumulates attestations indexed by target epoch and validator. It
// retains every distinct vote (an equivocating validator contributes
// several), which is what both the FFG engine and the slashing detector
// need. Per-epoch storage is columnar — one votes-by-validator-index slice
// per epoch — so the hot paths (Add during batch fan-out, the boundary
// TargetWeights rescan) are array indexing, not nested map probes. The
// zero value is not usable; construct with NewPool.
type Pool struct {
	byEpoch map[types.Epoch]*epochVotes
}

// epochVotes holds one target epoch's votes, indexed by validator.
type epochVotes struct {
	// votes[v] lists the distinct attestation data values validator v
	// signed with this target epoch (nil = none). The slice grows to the
	// highest validator index seen.
	votes [][]Data
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{byEpoch: make(map[types.Epoch]*epochVotes)}
}

// Add records an attestation. Duplicate (validator, data) pairs are
// ignored. It reports whether the attestation was new.
//
// Dedup compares Data values directly: Data is a comparable struct, and
// value equality is both exact (Digest truncates epochs to 16 bits) and
// hash-free, which matters when a paper-scale batch fans out to thousands
// of per-validator Adds.
func (p *Pool) Add(a Attestation) bool {
	epoch := a.Data.Target.Epoch
	ev, ok := p.byEpoch[epoch]
	if !ok {
		ev = &epochVotes{}
		p.byEpoch[epoch] = ev
	}
	v := int(a.Validator)
	for len(ev.votes) <= v {
		ev.votes = append(ev.votes, nil)
	}
	for _, existing := range ev.votes[v] {
		if existing == a.Data {
			return false
		}
	}
	ev.votes[v] = append(ev.votes[v], a.Data)
	return true
}

// VotesForEpoch returns the distinct attestation data with the given
// target epoch, indexed by validator (validators beyond the highest index
// seen are absent). The slices are shared; callers must not mutate them.
func (p *Pool) VotesForEpoch(e types.Epoch) [][]Data {
	ev := p.byEpoch[e]
	if ev == nil {
		return nil
	}
	return ev.votes
}

// Voted reports whether the validator cast any attestation with target
// epoch e.
func (p *Pool) Voted(e types.Epoch, v types.ValidatorIndex) bool {
	ev := p.byEpoch[e]
	return ev != nil && int(v) < len(ev.votes) && len(ev.votes[v]) > 0
}

// VotedForTarget reports whether the validator cast an attestation with
// target epoch e whose target root matches root. The paper's activity
// criterion: a validator is active on a branch for an epoch iff it sent an
// attestation whose checkpoint vote is correct for that branch.
func (p *Pool) VotedForTarget(e types.Epoch, v types.ValidatorIndex, root types.Root) bool {
	return VotedForTargetIn(p.VotesForEpoch(e), v, root)
}

// VotedForTargetIn is VotedForTarget over an already-fetched epoch column
// (VotesForEpoch): the epoch-boundary incentive sweep hoists the column
// lookup out of its per-validator loop and consults this instead, so the
// activity criterion has one definition on both the map-probe and the
// columnar path.
func VotedForTargetIn(votes [][]Data, v types.ValidatorIndex, root types.Root) bool {
	if int(v) >= len(votes) {
		return false
	}
	for _, d := range votes[v] {
		if d.Target.Root == root {
			return true
		}
	}
	return false
}

// LinkWeight is one row of a columnar per-epoch tally: a distinct
// source->target link and the total stake behind it.
type LinkWeight struct {
	Link   Link
	Weight types.Gwei
}

// AppendLinkTally appends the per-link stake tally of target epoch e to
// dst and returns it. It is the allocation-free boundary-path counterpart
// of TargetWeights: the epoch's votes are already stored as a
// validator-indexed column, the distinct links of one epoch are few (one
// or two per branch), so the tally is a single O(validators) sweep with a
// short linear probe per vote — when dst has capacity, the sweep does not
// allocate. Equivocating validators count toward every distinct link they
// voted for, exactly as on-chain inclusion would credit them on each
// branch.
//
//gasper:noalloc
func (p *Pool) AppendLinkTally(dst []LinkWeight, e types.Epoch, stake func(types.ValidatorIndex) types.Gwei) []LinkWeight {
	ev := p.byEpoch[e]
	if ev == nil {
		return dst
	}
	base := len(dst)
	for v, datas := range ev.votes {
		if len(datas) == 0 {
			continue
		}
		w := stake(types.ValidatorIndex(v))
		if w == 0 {
			continue
		}
		if len(datas) == 1 {
			// The hot path: one vote per validator per epoch.
			dst = accumulateLink(dst, base, Link{Source: datas[0].Source, Target: datas[0].Target}, w)
			continue
		}
		// An equivocator's distinct data values may still share a link
		// (same source/target, different head or slot); count each link
		// once by checking the validator's own earlier votes.
		for i, d := range datas {
			l := Link{Source: d.Source, Target: d.Target}
			dup := false
			for _, prev := range datas[:i] {
				if (Link{Source: prev.Source, Target: prev.Target}) == l {
					dup = true
					break
				}
			}
			if !dup {
				dst = accumulateLink(dst, base, l, w)
			}
		}
	}
	return dst
}

// accumulateLink adds w to l's row in dst[base:], appending a new row for
// a first-seen link.
func accumulateLink(dst []LinkWeight, base int, l Link, w types.Gwei) []LinkWeight {
	for i := base; i < len(dst); i++ {
		if dst[i].Link == l {
			dst[i].Weight += w
			return dst
		}
	}
	return append(dst, LinkWeight{Link: l, Weight: w})
}

// TargetWeights sums stake per (source, target) pair for the given target
// epoch, using the provided stake lookup. Equivocating validators count
// toward every distinct pair they voted for, exactly as on-chain inclusion
// would credit them on each branch.
func (p *Pool) TargetWeights(e types.Epoch, stake func(types.ValidatorIndex) types.Gwei) map[Link]types.Gwei {
	out := make(map[Link]types.Gwei)
	ev := p.byEpoch[e]
	if ev == nil {
		return out
	}
	for v, datas := range ev.votes {
		// Nearly every validator holds exactly one vote per epoch; skip
		// the dedup map on that hot path so the boundary rescan stays
		// allocation-light at paper-scale validator counts.
		if len(datas) == 0 {
			continue
		}
		if len(datas) == 1 {
			out[Link{Source: datas[0].Source, Target: datas[0].Target}] += stake(types.ValidatorIndex(v))
			continue
		}
		seen := make(map[Link]bool, len(datas))
		for _, d := range datas {
			l := Link{Source: d.Source, Target: d.Target}
			if seen[l] {
				continue
			}
			seen[l] = true
			out[l] += stake(types.ValidatorIndex(v))
		}
	}
	return out
}

// Clone deep-copies the pool, so a snapshotted view can evolve apart from
// its restore points.
func (p *Pool) Clone() *Pool {
	out := &Pool{byEpoch: make(map[types.Epoch]*epochVotes, len(p.byEpoch))}
	for e, ev := range p.byEpoch {
		cp := &epochVotes{votes: make([][]Data, len(ev.votes))}
		// One backing array per epoch instead of one allocation per
		// validator: at paper scale a clone is tens of thousands of
		// 1-element slices, and the per-allocation overhead — not the
		// bytes — dominates snapshot cost. The arena is append-safe: each
		// sub-slice is sliced to full capacity zero, so a later Add on
		// either copy grows its own slice without touching a neighbor.
		total := 0
		for _, datas := range ev.votes {
			total += len(datas)
		}
		arena := make([]Data, 0, total)
		for v, datas := range ev.votes {
			if len(datas) > 0 {
				start := len(arena)
				arena = append(arena, datas...)
				cp.votes[v] = arena[start:len(arena):len(arena)]
			}
		}
		out.byEpoch[e] = cp
	}
	return out
}

// Prune drops all attestations with target epoch strictly below e, bounding
// pool memory in long simulations.
func (p *Pool) Prune(e types.Epoch) {
	for epoch := range p.byEpoch {
		if epoch < e {
			delete(p.byEpoch, epoch)
		}
	}
}

// Epochs returns the number of epochs currently retained (for tests and
// metrics).
func (p *Pool) Epochs() int { return len(p.byEpoch) }

// Link is a source->target checkpoint pair: the FFG vote proper.
type Link struct {
	Source types.Checkpoint
	Target types.Checkpoint
}

// String renders the link for logs.
func (l Link) String() string {
	return fmt.Sprintf("%d/%s -> %d/%s",
		l.Source.Epoch, l.Source.Root, l.Target.Epoch, l.Target.Root)
}

// Less orders links by (source epoch, source root, target epoch, target
// root): the canonical order used wherever a map-derived set of links must
// be processed deterministically.
func (l Link) Less(o Link) bool {
	if l.Source.Epoch != o.Source.Epoch {
		return l.Source.Epoch < o.Source.Epoch
	}
	if c := bytes.Compare(l.Source.Root[:], o.Source.Root[:]); c != 0 {
		return c < 0
	}
	if l.Target.Epoch != o.Target.Epoch {
		return l.Target.Epoch < o.Target.Epoch
	}
	return bytes.Compare(l.Target.Root[:], o.Target.Root[:]) < 0
}
