// Package attestation defines the vote messages of the protocol and the
// pools that collect them.
//
// An attestation carries two votes (paper Section 3.2): a block vote (the
// head of the chain according to the attester, consumed by the fork-choice
// rule) and a checkpoint vote (a source->target pair of checkpoints,
// consumed by the FFG justification machinery). Each validator attests once
// per epoch.
package attestation

import (
	"fmt"

	"repro/internal/crypto"
	"repro/internal/types"
)

// Data is the signed content of an attestation.
type Data struct {
	// Slot in which the attestation was produced.
	Slot types.Slot
	// Head is the block vote: the attester's view of the chain head.
	Head types.Root
	// Source is the checkpoint-vote source: the latest justified
	// checkpoint in the attester's view.
	Source types.Checkpoint
	// Target is the checkpoint-vote target: the checkpoint of the
	// current epoch on the attester's candidate chain.
	Target types.Checkpoint
}

// Digest returns a stable hash of the data for signing and equivocation
// detection.
func (d Data) Digest() types.Root {
	return crypto.HashRoots(
		uint64(d.Slot)<<32|uint64(d.Source.Epoch)<<16|uint64(d.Target.Epoch),
		d.Head, d.Source.Root, d.Target.Root,
	)
}

// Attestation is a vote attributed to one validator. The simulator treats
// the attribution as authenticated (signatures are exercised separately in
// internal/crypto envelopes; carrying them on every simulated message would
// only slow the large sweeps down without changing any behavior).
type Attestation struct {
	Validator types.ValidatorIndex
	Data      Data
}

// String renders a compact description for logs.
func (a Attestation) String() string {
	return fmt.Sprintf("att(v=%d slot=%d head=%s tgt=%d/%s src=%d)",
		a.Validator, a.Data.Slot, a.Data.Head,
		a.Data.Target.Epoch, a.Data.Target.Root, a.Data.Source.Epoch)
}

// Pool accumulates attestations indexed by target epoch and validator. It
// retains every distinct vote (an equivocating validator contributes
// several), which is what both the FFG engine and the slashing detector
// need. The zero value is not usable; construct with NewPool.
type Pool struct {
	// byEpoch[epoch][validator] lists the distinct attestation data
	// values the validator signed with that target epoch.
	byEpoch map[types.Epoch]map[types.ValidatorIndex][]Data
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{byEpoch: make(map[types.Epoch]map[types.ValidatorIndex][]Data)}
}

// Add records an attestation. Duplicate (validator, data) pairs are
// ignored. It reports whether the attestation was new.
func (p *Pool) Add(a Attestation) bool {
	epoch := a.Data.Target.Epoch
	m, ok := p.byEpoch[epoch]
	if !ok {
		m = make(map[types.ValidatorIndex][]Data)
		p.byEpoch[epoch] = m
	}
	digest := a.Data.Digest()
	for _, existing := range m[a.Validator] {
		if existing.Digest() == digest {
			return false
		}
	}
	m[a.Validator] = append(m[a.Validator], a.Data)
	return true
}

// VotesForEpoch returns, for each validator, the distinct attestation data
// with the given target epoch. The inner slices are shared; callers must
// not mutate them.
func (p *Pool) VotesForEpoch(e types.Epoch) map[types.ValidatorIndex][]Data {
	return p.byEpoch[e]
}

// Voted reports whether the validator cast any attestation with target
// epoch e.
func (p *Pool) Voted(e types.Epoch, v types.ValidatorIndex) bool {
	return len(p.byEpoch[e][v]) > 0
}

// VotedForTarget reports whether the validator cast an attestation with
// target epoch e whose target root matches root. The paper's activity
// criterion: a validator is active on a branch for an epoch iff it sent an
// attestation whose checkpoint vote is correct for that branch.
func (p *Pool) VotedForTarget(e types.Epoch, v types.ValidatorIndex, root types.Root) bool {
	for _, d := range p.byEpoch[e][v] {
		if d.Target.Root == root {
			return true
		}
	}
	return false
}

// TargetWeights sums stake per (source, target) pair for the given target
// epoch, using the provided stake lookup. Equivocating validators count
// toward every distinct pair they voted for, exactly as on-chain inclusion
// would credit them on each branch.
func (p *Pool) TargetWeights(e types.Epoch, stake func(types.ValidatorIndex) types.Gwei) map[Link]types.Gwei {
	out := make(map[Link]types.Gwei)
	for v, datas := range p.byEpoch[e] {
		// Nearly every validator holds exactly one vote per epoch; skip
		// the dedup map on that hot path so the boundary rescan stays
		// allocation-light at paper-scale validator counts.
		if len(datas) == 1 {
			out[Link{Source: datas[0].Source, Target: datas[0].Target}] += stake(v)
			continue
		}
		seen := make(map[Link]bool, len(datas))
		for _, d := range datas {
			l := Link{Source: d.Source, Target: d.Target}
			if seen[l] {
				continue
			}
			seen[l] = true
			out[l] += stake(v)
		}
	}
	return out
}

// Prune drops all attestations with target epoch strictly below e, bounding
// pool memory in long simulations.
func (p *Pool) Prune(e types.Epoch) {
	for epoch := range p.byEpoch {
		if epoch < e {
			delete(p.byEpoch, epoch)
		}
	}
}

// Epochs returns the number of epochs currently retained (for tests and
// metrics).
func (p *Pool) Epochs() int { return len(p.byEpoch) }

// Link is a source->target checkpoint pair: the FFG vote proper.
type Link struct {
	Source types.Checkpoint
	Target types.Checkpoint
}

// String renders the link for logs.
func (l Link) String() string {
	return fmt.Sprintf("%d/%s -> %d/%s",
		l.Source.Epoch, l.Source.Root, l.Target.Epoch, l.Target.Root)
}
