package attestation

import (
	"sort"

	"repro/internal/codec"
	"repro/internal/types"
)

// EncodeData serializes one attestation data value.
func EncodeData(w *codec.Writer, d Data) {
	w.U64(uint64(d.Slot))
	w.Raw(d.Head[:])
	w.U64(uint64(d.Source.Epoch))
	w.Raw(d.Source.Root[:])
	w.U64(uint64(d.Target.Epoch))
	w.Raw(d.Target.Root[:])
}

// DecodeData reads one attestation data value.
func DecodeData(r *codec.Reader) Data {
	var d Data
	d.Slot = types.Slot(r.U64())
	r.Raw(d.Head[:])
	d.Source.Epoch = types.Epoch(r.U64())
	r.Raw(d.Source.Root[:])
	d.Target.Epoch = types.Epoch(r.U64())
	r.Raw(d.Target.Root[:])
	return d
}

// EncodeTo serializes the pool for the durable snapshot codec: target
// epochs in sorted order, then each epoch's per-validator vote columns
// with the vote slices in their original order (Add dedups by linear
// scan, so slice order is observable state, not presentation).
func (p *Pool) EncodeTo(w *codec.Writer) {
	epochs := make([]types.Epoch, 0, len(p.byEpoch))
	for e := range p.byEpoch {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	w.Len(len(epochs))
	for _, e := range epochs {
		w.U64(uint64(e))
		votes := p.byEpoch[e].votes
		w.Len(len(votes))
		for _, vs := range votes {
			w.Len(len(vs))
			for _, d := range vs {
				EncodeData(w, d)
			}
		}
	}
}

// DecodePool reconstructs a pool serialized by EncodeTo.
func DecodePool(r *codec.Reader) *Pool {
	p := NewPool()
	ne := r.Len()
	if r.Err() != nil {
		return nil
	}
	for i := 0; i < ne; i++ {
		e := types.Epoch(r.U64())
		nv := r.Len()
		if r.Err() != nil {
			return nil
		}
		ev := &epochVotes{votes: make([][]Data, nv)}
		for v := 0; v < nv; v++ {
			nd := r.Len()
			if r.Err() != nil {
				return nil
			}
			if nd == 0 {
				continue
			}
			vs := make([]Data, nd)
			for k := 0; k < nd; k++ {
				vs[k] = DecodeData(r)
			}
			ev.votes[v] = vs
		}
		p.byEpoch[e] = ev
	}
	if r.Err() != nil {
		return nil
	}
	return p
}
