package attestation

import (
	"testing"

	"repro/internal/types"
)

func cp(epoch uint64, root uint64) types.Checkpoint {
	return types.Checkpoint{Epoch: types.Epoch(epoch), Root: types.RootFromUint64(root)}
}

func att(v uint64, slot uint64, head uint64, src, tgt types.Checkpoint) Attestation {
	return Attestation{
		Validator: types.ValidatorIndex(v),
		Data: Data{
			Slot:   types.Slot(slot),
			Head:   types.RootFromUint64(head),
			Source: src,
			Target: tgt,
		},
	}
}

func TestDataDigestDistinguishes(t *testing.T) {
	base := Data{Slot: 5, Head: types.RootFromUint64(1), Source: cp(0, 0), Target: cp(1, 2)}
	variants := []Data{
		{Slot: 6, Head: base.Head, Source: base.Source, Target: base.Target},
		{Slot: 5, Head: types.RootFromUint64(9), Source: base.Source, Target: base.Target},
		{Slot: 5, Head: base.Head, Source: cp(0, 7), Target: base.Target},
		{Slot: 5, Head: base.Head, Source: base.Source, Target: cp(1, 7)},
	}
	for i, v := range variants {
		if v.Digest() == base.Digest() {
			t.Errorf("variant %d has same digest as base", i)
		}
	}
	if base.Digest() != base.Digest() {
		t.Error("digest must be deterministic")
	}
}

func TestPoolAddDeduplicates(t *testing.T) {
	p := NewPool()
	a := att(1, 33, 5, cp(0, 0), cp(1, 5))
	if !p.Add(a) {
		t.Error("first add should be new")
	}
	if p.Add(a) {
		t.Error("second add of identical attestation should be ignored")
	}
	if got := len(p.VotesForEpoch(1)[1]); got != 1 {
		t.Errorf("stored votes = %d, want 1", got)
	}
}

func TestPoolKeepsEquivocations(t *testing.T) {
	p := NewPool()
	// Same validator, same target epoch, two different target roots: a
	// double vote. The pool must retain both.
	p.Add(att(1, 33, 5, cp(0, 0), cp(1, 5)))
	p.Add(att(1, 33, 6, cp(0, 0), cp(1, 6)))
	if got := len(p.VotesForEpoch(1)[1]); got != 2 {
		t.Errorf("stored votes = %d, want 2 (equivocation retained)", got)
	}
}

func TestVoted(t *testing.T) {
	p := NewPool()
	p.Add(att(3, 33, 5, cp(0, 0), cp(1, 5)))
	if !p.Voted(1, 3) {
		t.Error("validator 3 voted in epoch 1")
	}
	if p.Voted(1, 4) {
		t.Error("validator 4 did not vote")
	}
	if p.Voted(2, 3) {
		t.Error("validator 3 did not vote in epoch 2")
	}
}

func TestVotedForTarget(t *testing.T) {
	p := NewPool()
	p.Add(att(3, 33, 5, cp(0, 0), cp(1, 5)))
	if !p.VotedForTarget(1, 3, types.RootFromUint64(5)) {
		t.Error("vote for target 5 not found")
	}
	if p.VotedForTarget(1, 3, types.RootFromUint64(6)) {
		t.Error("vote for target 6 should not be found")
	}
}

func TestTargetWeights(t *testing.T) {
	p := NewPool()
	src := cp(0, 0)
	tgtA := cp(1, 10)
	tgtB := cp(1, 20)
	p.Add(att(1, 33, 10, src, tgtA))
	p.Add(att(2, 33, 10, src, tgtA))
	p.Add(att(3, 34, 20, src, tgtB))
	stake := func(v types.ValidatorIndex) types.Gwei { return types.Gwei(v) * 100 }
	w := p.TargetWeights(1, stake)
	if got := w[Link{Source: src, Target: tgtA}]; got != 300 {
		t.Errorf("weight A = %d, want 300", got)
	}
	if got := w[Link{Source: src, Target: tgtB}]; got != 300 {
		t.Errorf("weight B = %d, want 300", got)
	}
}

func TestTargetWeightsEquivocatorCountsOnBothBranches(t *testing.T) {
	p := NewPool()
	src := cp(0, 0)
	tgtA := cp(1, 10)
	tgtB := cp(1, 20)
	// Validator 1 double votes.
	p.Add(att(1, 33, 10, src, tgtA))
	p.Add(att(1, 33, 20, src, tgtB))
	stake := func(types.ValidatorIndex) types.Gwei { return 32 }
	w := p.TargetWeights(1, stake)
	if w[Link{Source: src, Target: tgtA}] != 32 || w[Link{Source: src, Target: tgtB}] != 32 {
		t.Errorf("equivocator must count on both branches: %v", w)
	}
}

func TestTargetWeightsDuplicateLinkCountsOnce(t *testing.T) {
	p := NewPool()
	src := cp(0, 0)
	tgt := cp(1, 10)
	// Same link with different heads/slots: one FFG vote only.
	p.Add(att(1, 33, 10, src, tgt))
	p.Add(att(1, 34, 11, src, tgt))
	stake := func(types.ValidatorIndex) types.Gwei { return 32 }
	w := p.TargetWeights(1, stake)
	if got := w[Link{Source: src, Target: tgt}]; got != 32 {
		t.Errorf("duplicate link weight = %d, want 32", got)
	}
}

func TestPrune(t *testing.T) {
	p := NewPool()
	p.Add(att(1, 33, 5, cp(0, 0), cp(1, 5)))
	p.Add(att(1, 65, 6, cp(1, 5), cp(2, 6)))
	p.Add(att(1, 97, 7, cp(2, 6), cp(3, 7)))
	p.Prune(2)
	if p.Epochs() != 2 {
		t.Errorf("epochs after prune = %d, want 2", p.Epochs())
	}
	if p.Voted(1, 1) {
		t.Error("epoch 1 should be pruned")
	}
	if !p.Voted(3, 1) {
		t.Error("epoch 3 must survive prune")
	}
}

func TestAttestationString(t *testing.T) {
	a := att(1, 33, 5, cp(0, 0), cp(1, 5))
	if a.String() == "" {
		t.Error("String should be non-empty")
	}
	l := Link{Source: cp(0, 0), Target: cp(1, 5)}
	if l.String() == "" {
		t.Error("Link.String should be non-empty")
	}
}

// TestAppendLinkTallyMatchesTargetWeights pins the columnar boundary path
// against the map tally: same links, same weights, equivocators counted
// once per distinct link, duplicate links of one validator deduplicated.
func TestAppendLinkTallyMatchesTargetWeights(t *testing.T) {
	p := NewPool()
	stake := func(v types.ValidatorIndex) types.Gwei { return types.Gwei(10 + v) }
	src := types.Checkpoint{Epoch: 0, Root: types.RootFromUint64(1)}
	tgtA := types.Checkpoint{Epoch: 1, Root: types.RootFromUint64(2)}
	tgtB := types.Checkpoint{Epoch: 1, Root: types.RootFromUint64(3)}
	add := func(v types.ValidatorIndex, slot types.Slot, tgt types.Checkpoint) {
		p.Add(Attestation{Validator: v, Data: Data{Slot: slot, Head: tgt.Root, Source: src, Target: tgt}})
	}
	add(0, 32, tgtA)
	add(1, 33, tgtA)
	add(2, 32, tgtB)
	// Equivocator: both branches, plus a second distinct data value on the
	// same link (different slot) that must NOT double its link weight.
	add(3, 32, tgtA)
	add(3, 32, tgtB)
	add(3, 40, tgtA)

	want := p.TargetWeights(1, stake)
	tally := p.AppendLinkTally(nil, 1, stake)
	if len(tally) != len(want) {
		t.Fatalf("tally has %d links, map has %d", len(tally), len(want))
	}
	for _, lw := range tally {
		if want[lw.Link] != lw.Weight {
			t.Errorf("link %s: tally %d, map %d", lw.Link, lw.Weight, want[lw.Link])
		}
	}
	// Scratch reuse: appending into recovered capacity must not grow.
	scratch := tally[:0]
	again := p.AppendLinkTally(scratch, 1, stake)
	if &again[0] != &tally[0] {
		t.Error("tally with sufficient capacity reallocated its scratch")
	}
	if p.AppendLinkTally(nil, 99, stake) != nil {
		t.Error("empty epoch must produce an empty tally")
	}
}
