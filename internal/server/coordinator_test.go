package server

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
)

// fabricWorker is one worker process of a test fabric, optionally rigged
// to crash: after serving killAfter sweep requests it aborts every further
// connection mid-request, which is what a killed process looks like to the
// coordinator.
type fabricWorker struct {
	ts        *httptest.Server
	killAfter int64 // sweep requests served before crashing; negative = reliable
	served    atomic.Int64
}

func newFabricWorker(t *testing.T, reg *engine.Registry, killAfter int64) *fabricWorker {
	t.Helper()
	s, err := New(Config{Registry: reg, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	fw := &fabricWorker{killAfter: killAfter}
	h := s.Handler()
	fw.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/sweep" {
			if n := fw.served.Add(1); fw.killAfter >= 0 && n > fw.killAfter {
				panic(http.ErrAbortHandler) // the "process" is gone mid-request
			}
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(fw.ts.Close)
	return fw
}

// fabricCells builds an n-cell grid of the counted scenario.
func fabricCells(n int) []engine.Cell {
	cells := make([]engine.Cell, n)
	for i := range cells {
		cells[i] = engine.Cell{Scenario: "counted", Params: engine.Params{Seed: int64(i + 1)}}
	}
	return cells
}

// checkFabricSweep posts the cells to the coordinator and asserts the
// acceptance criteria: no client-visible errors, deterministic cell-order
// stream, payload bit-identical to a single-process sweep.
func checkFabricSweep(t *testing.T, coordURL string, cells []engine.Cell, want []engine.Result) []engine.Update {
	t.Helper()
	updates := decodeNDJSON(t, postJSON(t, coordURL+"/sweep", map[string]any{"cells": cells}))
	if len(updates) != len(cells) {
		t.Fatalf("streamed %d updates, want %d", len(updates), len(cells))
	}
	got := make([]engine.Result, len(cells))
	for pos, u := range updates {
		if u.Index != pos {
			t.Errorf("update %d carries index %d; coordinator streams must be in cell order", pos, u.Index)
		}
		if u.Result.Err != "" {
			t.Errorf("cell %d surfaced an error to the client: %s", u.Index, u.Result.Err)
		}
		got[u.Index] = u.Result
	}
	if !reflect.DeepEqual(engine.StripMeta(got), engine.StripMeta(want)) {
		t.Error("sharded sweep payload diverges from single-process sweep")
	}
	return updates
}

// TestCoordinatorShardsSweep: the happy path — every cell computed by a
// remote worker, merged bit-identically in cell order.
func TestCoordinatorShardsSweep(t *testing.T) {
	var runs atomic.Int64
	reg := countedRegistry(&runs)
	cells := fabricCells(8)
	want := engine.Sweep(cells, engine.Options{Registry: reg})
	runs.Store(0)

	w1 := newFabricWorker(t, reg, -1)
	w2 := newFabricWorker(t, reg, -1)
	coord, ts := storeServer(t, Config{
		Registry:  reg,
		CacheSize: -1,
		Shards:    []string{w1.ts.URL, w2.ts.URL},
	})

	checkFabricSweep(t, ts.URL, cells, want)
	if got := runs.Load(); got != int64(len(cells)) {
		t.Errorf("fabric ran %d cells, want %d", got, len(cells))
	}
	if got := coord.metrics.cellsRemote.Load(); got != uint64(len(cells)) {
		t.Errorf("cells_remote = %d, want %d — every cell should be computed remotely", got, len(cells))
	}
	if w1.served.Load() == 0 || w2.served.Load() == 0 {
		t.Errorf("dispatch skipped a worker: served %d / %d", w1.served.Load(), w2.served.Load())
	}
	if lost := coord.metrics.workersLost.Load(); lost != 0 {
		t.Errorf("workers_lost = %d with reliable workers", lost)
	}
}

// TestCoordinatorFaultInjection is the randomized acceptance test: across
// trials with random worker counts, a random worker is killed after a
// random number of cells mid-sweep; the merged payload must stay
// bit-identical to a single-process sweep with zero client-visible errors,
// for every failure schedule (including the sole worker dying, which
// exercises the local fallback).
func TestCoordinatorFaultInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(0xfab41c))
	for trial := 0; trial < 6; trial++ {
		workers := 1 + rng.Intn(3)
		killIdx := rng.Intn(workers)
		killAfter := int64(rng.Intn(4))
		t.Logf("trial %d: %d workers, worker %d dies after %d cells", trial, workers, killIdx, killAfter)

		var runs atomic.Int64
		reg := countedRegistry(&runs)
		cells := fabricCells(10)
		want := engine.Sweep(cells, engine.Options{Registry: reg})

		shards := make([]string, workers)
		pool := make([]*fabricWorker, workers)
		for i := range pool {
			after := int64(-1)
			if i == killIdx {
				after = killAfter
			}
			pool[i] = newFabricWorker(t, reg, after)
			shards[i] = pool[i].ts.URL
		}
		coord, ts := storeServer(t, Config{Registry: reg, CacheSize: -1, Shards: shards})

		checkFabricSweep(t, ts.URL, cells, want)
		// The rigged worker crashes only if dispatch actually sent it more
		// than killAfter cells; when it did, the coordinator must have
		// retired it and requeued the lost cell.
		crashed := pool[killIdx].served.Load() > killAfter
		if lost := coord.metrics.workersLost.Load(); crashed && lost != 1 {
			t.Errorf("trial %d: workers_lost = %d, want exactly the rigged one", trial, lost)
		} else if !crashed && lost != 0 {
			t.Errorf("trial %d: workers_lost = %d with no crash", trial, lost)
		}
		if requeued := coord.metrics.cellsRequeued.Load(); crashed && requeued == 0 {
			t.Errorf("trial %d: no cell was requeued off the dead worker", trial)
		}
	}
}

// TestCoordinatorAllWorkersDeadFallsBackLocal: a total worker outage
// degrades throughput, not correctness — the coordinator finishes the grid
// in-process, and stays correct on the next sweep too (dead workers are
// remembered across requests).
func TestCoordinatorAllWorkersDeadFallsBackLocal(t *testing.T) {
	var runs atomic.Int64
	reg := countedRegistry(&runs)
	cells := fabricCells(6)
	want := engine.Sweep(cells, engine.Options{Registry: reg})

	dead := newFabricWorker(t, reg, 0) // crashes on its first cell
	coord, ts := storeServer(t, Config{Registry: reg, CacheSize: -1, Shards: []string{dead.ts.URL}})

	checkFabricSweep(t, ts.URL, cells, want)
	if lost := coord.metrics.workersLost.Load(); lost != 1 {
		t.Errorf("workers_lost = %d, want 1", lost)
	}
	// Second sweep: no alive workers from the start, straight to local.
	checkFabricSweep(t, ts.URL, cells, want)
	if remote := coord.metrics.cellsRemote.Load(); remote != 0 {
		t.Errorf("cells_remote = %d after a total outage, want 0", remote)
	}
}

// TestQueueFullRejects: a request that would exceed the admission bound is
// refused with 429 + Retry-After instead of queued without limit, and the
// slots are released when the admitted work finishes.
func TestQueueFullRejects(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	reg := engine.NewRegistry()
	reg.MustRegister(engine.NewContextScenario("gate", "blocks until released",
		engine.Params{P0: 0.5},
		func(ctx context.Context, p engine.Params) (engine.Result, error) {
			started <- struct{}{}
			select {
			case <-ctx.Done():
				return engine.Result{}, ctx.Err()
			case <-release:
				return engine.Result{}, nil
			}
		}))
	// Workers: 2 so both gate cells block concurrently even on one CPU.
	s, ts := storeServer(t, Config{Registry: reg, CacheSize: -1, QueueDepth: 2, Workers: 2})

	sweepDone := make(chan []engine.Update, 1)
	go func() {
		body := map[string]any{"cells": []engine.Cell{
			{Scenario: "gate", Params: engine.Params{Seed: 1}},
			{Scenario: "gate", Params: engine.Params{Seed: 2}},
		}}
		sweepDone <- decodeNDJSON(t, postJSON(t, ts.URL+"/sweep", body))
	}()
	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("gated sweep never started")
		}
	}

	resp := postJSON(t, ts.URL+"/run", map[string]any{"scenario": "gate", "params": engine.Params{Seed: 3}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 while the queue is full", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After header")
	}
	if got := s.metrics.rejected.Load(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}

	close(release)
	select {
	case updates := <-sweepDone:
		if len(updates) != 2 {
			t.Errorf("gated sweep streamed %d updates, want 2", len(updates))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("gated sweep never finished")
	}
	if depth := s.metrics.admitted.Load(); depth != 0 {
		t.Errorf("admitted = %d after the sweep drained, want 0", depth)
	}
}

// TestBodyLimitRejects: an oversized request body is refused with 413.
func TestBodyLimitRejects(t *testing.T) {
	_, ts := storeServer(t, Config{MaxBodyBytes: 128})

	big := map[string]any{"scenario": strings.Repeat("x", 256), "params": engine.Params{}}
	resp := postJSON(t, ts.URL+"/run", big)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 for an oversized body", resp.StatusCode)
	}

	small := map[string]any{"scenario": "nope"}
	resp2 := postJSON(t, ts.URL+"/run", small)
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want the limit to pass a small body through", resp2.StatusCode)
	}
}

// TestMetricsEndpoint: GET /metrics reports the tier counters, queue
// state, per-scenario timing, and (in coordinator mode) the worker ledger.
func TestMetricsEndpoint(t *testing.T) {
	var runs atomic.Int64
	reg := countedRegistry(&runs)
	w := newFabricWorker(t, reg, -1)
	_, ts := storeServer(t, Config{
		Registry: reg,
		StoreDir: t.TempDir(),
		Shards:   []string{w.ts.URL},
	})

	cells := fabricCells(3)
	decodeNDJSON(t, postJSON(t, ts.URL+"/sweep", map[string]any{"cells": cells}))
	decodeNDJSON(t, postJSON(t, ts.URL+"/sweep", map[string]any{"cells": cells})) // all cached now

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Cells.FromLRU != 3 {
		t.Errorf("cells.from_lru = %d, want the repeat sweep served from memory", m.Cells.FromLRU)
	}
	if m.Queue.Limit != DefaultQueueDepth || m.Queue.Depth != 0 {
		t.Errorf("queue = %+v, want default limit and a drained depth", m.Queue)
	}
	if m.Store == nil || m.Store.Puts != 3 {
		t.Errorf("store = %+v, want 3 persisted cells", m.Store)
	}
	if m.Coordinator == nil || m.Coordinator.Remote != 3 || len(m.Coordinator.Workers) != 1 {
		t.Errorf("coordinator = %+v, want 3 remote cells on 1 worker", m.Coordinator)
	}
	// The worker computed the cells, so the coordinator's own computed
	// counter stays zero while the scenario map stays empty.
	if m.Cells.Computed != 0 {
		t.Errorf("cells.computed = %d on the coordinator, want 0", m.Cells.Computed)
	}
}
