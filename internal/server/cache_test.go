package server

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine"
)

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	res := func(n int) engine.Result {
		return engine.Result{Scenario: fmt.Sprintf("s%d", n)}
	}
	c.add("a", res(1))
	c.add("b", res(2))
	if _, ok := c.get("a"); !ok { // promotes "a" over "b"
		t.Fatal("a must be cached")
	}
	c.add("c", res(3)) // evicts "b", the least recently used
	if _, ok := c.get("b"); ok {
		t.Error("b must have been evicted")
	}
	for _, key := range []string{"a", "c"} {
		if _, ok := c.get(key); !ok {
			t.Errorf("%s must survive eviction", key)
		}
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	hits, misses := c.stats()
	if hits != 3 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 3/1", hits, misses)
	}
}

func TestResultCacheUpdateInPlace(t *testing.T) {
	c := newResultCache(2)
	c.add("k", engine.Result{Scenario: "old"})
	c.add("k", engine.Result{Scenario: "new"})
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1 (update, not duplicate)", c.len())
	}
	if r, _ := c.get("k"); r.Scenario != "new" {
		t.Errorf("got %q, want the updated entry", r.Scenario)
	}
}

func TestCacheKeyCanonicalization(t *testing.T) {
	a := cacheKey("leaksim", engine.Params{P0: 0.5, N: 10000})
	b := cacheKey("leaksim", engine.Params{P0: 0.5, N: 10000})
	if a != b {
		t.Error("identical params must share a key")
	}
	if cacheKey("leaksim", engine.Params{P0: 0.6, N: 10000}) == a {
		t.Error("p0 must distinguish keys")
	}
	if cacheKey("bounce-mc", engine.Params{P0: 0.5, N: 10000}) == a {
		t.Error("scenario must distinguish keys")
	}
	// Every Params dimension must be part of the key: cells of a rate or
	// gst sweep differ only in those fields, and a collision would serve
	// one cell's result for every other cell.
	if cacheKey("leaksim", engine.Params{P0: 0.5, N: 10000, Rate: 0.2}) == a {
		t.Error("rate must distinguish keys")
	}
	if cacheKey("leaksim", engine.Params{P0: 0.5, N: 10000, GST: 8}) == a {
		t.Error("gst must distinguish keys")
	}
}

// TestCacheKeyCoversEveryParamsField fails the moment engine.Params gains
// a parameter field the cache key ignores: it perturbs each field via
// reflection and demands a different key. (The handwritten predecessor of
// cacheKey silently omitted new fields, so a sweep over a new dimension
// would have served the first cell's result for every other cell.) Fields
// tagged `json:"-"` are exempt: presence metadata, constant (FieldAll)
// across all fully-defaulted Params, so never run-distinguishing.
func TestCacheKeyCoversEveryParamsField(t *testing.T) {
	base := cacheKey("s", engine.Params{})
	rt := reflect.TypeOf(engine.Params{})
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if strings.HasPrefix(f.Tag.Get("json"), "-") {
			continue
		}
		var p engine.Params
		fv := reflect.ValueOf(&p).Elem().Field(i)
		switch f.Type.Kind() {
		case reflect.Float64:
			fv.SetFloat(0.123)
		case reflect.Int, reflect.Int64:
			fv.SetInt(123)
		case reflect.String:
			fv.SetString("x")
		default:
			t.Fatalf("field %s has kind %s: teach this test (and check cacheKey) about it", f.Name, f.Type.Kind())
		}
		if cacheKey("s", p) == base {
			t.Errorf("cache key ignores Params.%s", f.Name)
		}
	}
}

// TestNewResultCacheGuardsNonPositiveCapacity pins the max <= 0 guard: a
// clamped cache must still cache (not evict every entry immediately).
func TestNewResultCacheGuardsNonPositiveCapacity(t *testing.T) {
	for _, max := range []int{0, -5} {
		c := newResultCache(max)
		c.add("k", engine.Result{Scenario: "s"})
		if _, ok := c.get("k"); !ok {
			t.Errorf("newResultCache(%d) evicted its only entry", max)
		}
	}
}
