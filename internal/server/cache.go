package server

import (
	"container/list"
	"sync"

	"repro/internal/engine"
)

// cacheKey canonicalizes a scenario name and its fully-defaulted params
// into a cache key. It is the canonical cell key shared by every tier —
// the reflection-derived engine.CellKey the persistent store and the
// client-side read-through also use — so a result computed anywhere in
// the fabric is a hit everywhere. Params must already be defaulted
// (Registry semantics); see engine.CellKey for the covering-every-field
// contract (TestCellKeyCoversEveryParamsField pins it engine-side,
// TestCacheKeyCoversEveryParamsField keeps this alias honest).
func cacheKey(scenario string, p engine.Params) string {
	return engine.CellKey(scenario, p)
}

// resultCache is a thread-safe LRU of successful scenario results keyed by
// cacheKey. Results are stored without execution metadata; hits are served
// with a fresh Cached marker.
type resultCache struct {
	mu           sync.Mutex
	max          int
	ll           *list.List // front = most recently used
	items        map[string]*list.Element
	hits, misses uint64
}

type cacheEntry struct {
	key string
	res engine.Result
}

func newResultCache(max int) *resultCache {
	// A non-positive capacity would make every add evict immediately (or
	// grow without bound, depending on reading); callers wanting "no
	// cache" must not construct one, so clamp to the serving default.
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &resultCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached result and promotes the entry.
func (c *resultCache) get(key string) (engine.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return engine.Result{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// add stores a result, evicting the least recently used entry when full.
func (c *resultCache) add(key string, res engine.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *resultCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
