package server

import (
	"container/list"
	"fmt"
	"reflect"
	"strings"
	"sync"

	"repro/internal/engine"
)

// cacheKey canonicalizes a scenario name and its fully-defaulted params
// into a cache key. Params must already be defaulted (Registry semantics):
// two requests that resolve to the same effective run map to the same key
// even when one spells the defaults out and the other omits them.
//
// The key is derived by reflection over engine.Params rather than a
// handwritten format string, so a future Params field is part of the key
// the moment it exists — the handwritten predecessor silently omitted new
// fields, serving stale results for any sweep over the new dimension
// until someone remembered this file. Fields tagged `json:"-"` are
// skipped: they are presence metadata, not parameters — after defaulting
// every Params carries the same constant FieldAll mask, so the mask can
// never distinguish two effective runs. TestCacheKeyCoversEveryParamsField
// fails if a parameter field ever stops influencing the key.
func cacheKey(scenario string, p engine.Params) string {
	var b strings.Builder
	b.WriteString(scenario)
	rv := reflect.ValueOf(p)
	rt := rv.Type()
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if strings.HasPrefix(f.Tag.Get("json"), "-") {
			continue
		}
		fmt.Fprintf(&b, "|%s=%v", f.Name, rv.Field(i).Interface())
	}
	return b.String()
}

// resultCache is a thread-safe LRU of successful scenario results keyed by
// cacheKey. Results are stored without execution metadata; hits are served
// with a fresh Cached marker.
type resultCache struct {
	mu           sync.Mutex
	max          int
	ll           *list.List // front = most recently used
	items        map[string]*list.Element
	hits, misses uint64
}

type cacheEntry struct {
	key string
	res engine.Result
}

func newResultCache(max int) *resultCache {
	// A non-positive capacity would make every add evict immediately (or
	// grow without bound, depending on reading); callers wanting "no
	// cache" must not construct one, so clamp to the serving default.
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &resultCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached result and promotes the entry.
func (c *resultCache) get(key string) (engine.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return engine.Result{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// add stores a result, evicting the least recently used entry when full.
func (c *resultCache) add(key string, res engine.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *resultCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
