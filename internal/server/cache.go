package server

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/engine"
)

// cacheKey canonicalizes a scenario name and its fully-defaulted params
// into a cache key. Params must already be defaulted (Registry semantics):
// two requests that resolve to the same effective run map to the same key
// even when one spells the defaults out and the other omits them.
func cacheKey(scenario string, p engine.Params) string {
	return fmt.Sprintf("%s|p0=%v|beta0=%v|mode=%s|seed=%d|n=%d|horizon=%d|sample=%d|rate=%v|gst=%d",
		scenario, p.P0, p.Beta0, p.Mode, p.Seed, p.N, p.Horizon, p.Sample, p.Rate, p.GST)
}

// resultCache is a thread-safe LRU of successful scenario results keyed by
// cacheKey. Results are stored without execution metadata; hits are served
// with a fresh Cached marker.
type resultCache struct {
	mu           sync.Mutex
	max          int
	ll           *list.List // front = most recently used
	items        map[string]*list.Element
	hits, misses uint64
}

type cacheEntry struct {
	key string
	res engine.Result
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached result and promotes the entry.
func (c *resultCache) get(key string) (engine.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return engine.Result{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// add stores a result, evicting the least recently used entry when full.
func (c *resultCache) add(key string, res engine.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *resultCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
