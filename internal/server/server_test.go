package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
)

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeNDJSON parses a streamed sweep response into updates.
func decodeNDJSON(t *testing.T, resp *http.Response) []engine.Update {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var updates []engine.Update
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var u engine.Update
		if err := json.Unmarshal(sc.Bytes(), &u); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		updates = append(updates, u)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return updates
}

func TestNewRejectsNegativeWorkers(t *testing.T) {
	if _, err := New(Config{Workers: -2}); err == nil || !strings.Contains(err.Error(), "-2") {
		t.Fatalf("New(Workers:-2) err = %v, want a clear validation error", err)
	}
}

func TestScenariosEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []engine.Info
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(engine.Names()) {
		t.Fatalf("infos = %d, want %d", len(infos), len(engine.Names()))
	}
	byName := map[string]engine.Info{}
	for _, in := range infos {
		byName[in.Name] = in
	}
	if in := byName[engine.ScenarioLeakSim]; in.Description == "" || in.Defaults.N != 10000 || !in.Cancellable {
		t.Errorf("leaksim info incomplete over HTTP: %+v", in)
	}
}

func TestRunEndpointAndCache(t *testing.T) {
	ts := newTestServer(t, Config{})
	body := map[string]any{
		"scenario": engine.ScenarioAnalyticThreshold,
		"params":   engine.Params{P0: 0.5},
	}
	var first engine.Result
	resp := postJSON(t, ts.URL+"/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v, ok := first.Metric("threshold_both_branches"); !ok || v < 0.24 || v > 0.245 {
		t.Errorf("threshold = %v, want ~0.2421", v)
	}
	if first.Meta == nil || first.Meta.Cached {
		t.Errorf("first run meta = %+v, want fresh computation", first.Meta)
	}

	// Same effective parameters, defaults spelled out this time: a hit.
	var second engine.Result
	resp = postJSON(t, ts.URL+"/run", map[string]any{
		"scenario": engine.ScenarioAnalyticThreshold,
		"params":   engine.Params{P0: 0.5, Mode: "paper"},
	})
	if err := json.NewDecoder(resp.Body).Decode(&second); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if second.Meta == nil || !second.Meta.Cached {
		t.Errorf("second run meta = %+v, want cache hit", second.Meta)
	}
	if !reflect.DeepEqual(first.WithoutMeta(), second.WithoutMeta()) {
		t.Error("cached result diverges from computed result")
	}

	// Healthz reflects the traffic.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health struct {
		Status    string            `json:"status"`
		Scenarios int               `json:"scenarios"`
		Cache     map[string]uint64 `json:"cache"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Scenarios == 0 {
		t.Errorf("healthz = %+v", health)
	}
	if health.Cache["hits"] < 1 || health.Cache["entries"] < 1 {
		t.Errorf("cache stats = %v, want at least one hit and one entry", health.Cache)
	}
}

func TestRunEndpointErrors(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/run", map[string]any{"scenario": "no-such"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown scenario status = %d, want 404", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/run", map[string]any{
		"scenario": engine.ScenarioLeakSim,
		"params":   engine.Params{Mode: "warp", N: 100, Horizon: 10},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad mode status = %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "warp") {
		t.Errorf("error envelope = %+v (%v)", e, err)
	}
	resp.Body.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/run", nil)
	getResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run status = %d, want 405", getResp.StatusCode)
	}
}

// TestSweepNDJSONMatchesInProcess is the serving-layer acceptance check:
// the streamed cells of POST /sweep aggregate to exactly the result set of
// an in-process sweep over the same grid.
func TestSweepNDJSONMatchesInProcess(t *testing.T) {
	ts := newTestServer(t, Config{})
	const spec = "beta0=0.32,0.33; seed=1:2:1"
	updates := decodeNDJSON(t, postJSON(t, ts.URL+"/sweep", map[string]any{
		"scenario": engine.ScenarioBounceMC,
		"sweep":    spec,
		"params":   engine.Params{N: 60, Horizon: 200},
	}))

	grid, err := engine.ParseGrid(engine.ScenarioBounceMC, spec)
	if err != nil {
		t.Fatal(err)
	}
	cells := grid.FillFrom(engine.Params{N: 60, Horizon: 200}).Cells()
	if len(updates) != len(cells) {
		t.Fatalf("streamed %d updates, want %d", len(updates), len(cells))
	}
	streamed := make([]engine.Result, len(cells))
	for i, u := range updates {
		if u.Completed != i+1 || u.Total != len(cells) {
			t.Errorf("update %d: progress %d/%d, want %d/%d", i, u.Completed, u.Total, i+1, len(cells))
		}
		streamed[u.Index] = u.Result
	}
	local := engine.Sweep(cells, engine.Options{})
	if !reflect.DeepEqual(engine.StripMeta(streamed), engine.StripMeta(local)) {
		t.Error("streamed sweep diverges from in-process sweep")
	}
}

// TestSweepCacheSkipsRecomputation: repeated cells are served from the
// LRU without invoking the scenario again.
func TestSweepCacheSkipsRecomputation(t *testing.T) {
	var runs atomic.Int64
	reg := engine.NewRegistry()
	reg.MustRegister(engine.NewScenario("counted", "counts invocations",
		engine.Params{P0: 0.5},
		func(p engine.Params) (engine.Result, error) {
			runs.Add(1)
			return engine.Result{Metrics: []engine.Metric{{Name: "seed", Value: float64(p.Seed)}}}, nil
		}))
	ts := newTestServer(t, Config{Registry: reg})

	body := map[string]any{"cells": []engine.Cell{
		{Scenario: "counted", Params: engine.Params{Seed: 1}},
		{Scenario: "counted", Params: engine.Params{Seed: 2}},
		{Scenario: "counted", Params: engine.Params{Seed: 3}},
	}}
	first := decodeNDJSON(t, postJSON(t, ts.URL+"/sweep", body))
	if got := runs.Load(); got != 3 {
		t.Fatalf("first sweep ran %d cells, want 3", got)
	}
	for _, u := range first {
		if u.Result.Meta == nil || u.Result.Meta.Cached {
			t.Errorf("first sweep cell %d meta = %+v, want fresh", u.Index, u.Result.Meta)
		}
	}

	second := decodeNDJSON(t, postJSON(t, ts.URL+"/sweep", body))
	if got := runs.Load(); got != 3 {
		t.Errorf("repeat sweep recomputed: %d total runs, want still 3", got)
	}
	if len(second) != 3 {
		t.Fatalf("repeat sweep streamed %d updates, want 3", len(second))
	}
	for _, u := range second {
		if u.Result.Meta == nil || !u.Result.Meta.Cached {
			t.Errorf("repeat sweep cell %d meta = %+v, want cached", u.Index, u.Result.Meta)
		}
	}
	firstRes := make([]engine.Result, 3)
	secondRes := make([]engine.Result, 3)
	for i := range first {
		firstRes[first[i].Index] = first[i].Result
		secondRes[second[i].Index] = second[i].Result
	}
	if !reflect.DeepEqual(engine.StripMeta(firstRes), engine.StripMeta(secondRes)) {
		t.Error("cached sweep payload diverges from computed payload")
	}

	// A mixed sweep recomputes only the unseen cell.
	mixed := append(body["cells"].([]engine.Cell), engine.Cell{Scenario: "counted", Params: engine.Params{Seed: 4}})
	updates := decodeNDJSON(t, postJSON(t, ts.URL+"/sweep", map[string]any{"cells": mixed}))
	if got := runs.Load(); got != 4 {
		t.Errorf("mixed sweep ran %d cells total, want 4", got)
	}
	if len(updates) != 4 {
		t.Errorf("mixed sweep streamed %d updates, want 4", len(updates))
	}
}

func TestSweepRequestValidation(t *testing.T) {
	ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name string
		body any
		want int
	}{
		{"empty body", map[string]any{}, http.StatusBadRequest},
		{"negative workers", map[string]any{"scenario": "leaksim", "sweep": "p0=0.5", "workers": -1}, http.StatusBadRequest},
		{"unknown grid scenario", map[string]any{"scenario": "warp", "sweep": "p0=0.5"}, http.StatusNotFound},
		{"malformed spec", map[string]any{"scenario": "leaksim", "sweep": "p0=zap"}, http.StatusBadRequest},
	} {
		resp := postJSON(t, ts.URL+"/sweep", tc.body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// TestSweepPerCellErrorsStream: explicit cells with an unknown scenario
// stream an error result instead of failing the whole request.
func TestSweepPerCellErrorsStream(t *testing.T) {
	ts := newTestServer(t, Config{})
	updates := decodeNDJSON(t, postJSON(t, ts.URL+"/sweep", map[string]any{"cells": []engine.Cell{
		{Scenario: engine.ScenarioAnalyticThreshold, Params: engine.Params{P0: 0.5}},
		{Scenario: "no-such", Params: engine.Params{}},
	}}))
	if len(updates) != 2 {
		t.Fatalf("updates = %d, want 2", len(updates))
	}
	byIndex := map[int]engine.Result{}
	for _, u := range updates {
		byIndex[u.Index] = u.Result
	}
	if byIndex[0].Err != "" {
		t.Errorf("cell 0 failed: %s", byIndex[0].Err)
	}
	if !strings.Contains(byIndex[1].Err, "no-such") {
		t.Errorf("cell 1 err = %q, want unknown-scenario error", byIndex[1].Err)
	}
}

// TestSweepClientDisconnect: an abandoned request context aborts the sweep
// server-side instead of computing the full grid.
func TestSweepClientDisconnect(t *testing.T) {
	var runs atomic.Int64
	reg := engine.NewRegistry()
	reg.MustRegister(engine.NewContextScenario("slow", "cancellable",
		engine.Params{P0: 0.5},
		func(ctx context.Context, p engine.Params) (engine.Result, error) {
			runs.Add(1)
			select {
			case <-ctx.Done():
				return engine.Result{}, ctx.Err()
			case <-time.After(30 * time.Millisecond):
				return engine.Result{}, nil
			}
		}))
	ts := newTestServer(t, Config{Registry: reg, Workers: 1, CacheSize: -1})

	cells := make([]engine.Cell, 50)
	for i := range cells {
		cells[i] = engine.Cell{Scenario: "slow", Params: engine.Params{Seed: int64(i + 1)}}
	}
	b, _ := json.Marshal(map[string]any{"cells": cells})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/sweep", bytes.NewReader(b))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one line, then walk away.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no first update")
	}
	cancel()
	resp.Body.Close()

	// Wait until the server-side sweep settles (the invocation counter
	// stops growing), then assert it stopped short of the full grid. If
	// cancellation did not propagate, the single worker keeps computing
	// 30ms cells and the counter only stabilizes at all 50.
	last := runs.Load()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(150 * time.Millisecond)
		now := runs.Load()
		if now == last {
			break
		}
		last = now
	}
	if got := runs.Load(); got >= int64(len(cells)) {
		t.Errorf("server computed all %d cells despite disconnect", got)
	}
}

// TestRunEndpointKeepsExplicitZeroParams: a request whose document spells
// out a zero parameter ({"rate": 0}) runs with that zero, while omitting
// the key takes the scenario default — and the two land on distinct cache
// keys.
func TestRunEndpointKeepsExplicitZeroParams(t *testing.T) {
	reg := engine.NewRegistry()
	reg.MustRegister(engine.NewScenario("echo", "echoes the effective rate/gst",
		engine.Params{P0: 0.5, Rate: 0.4, GST: 7},
		func(p engine.Params) (engine.Result, error) {
			return engine.Result{Metrics: []engine.Metric{
				{Name: "rate", Value: p.Rate},
				{Name: "gst", Value: float64(p.GST)},
			}}, nil
		}))
	ts := newTestServer(t, Config{Registry: reg})

	run := func(body string) engine.Result {
		t.Helper()
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		var res engine.Result
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return res
	}

	defaulted := run(`{"scenario": "echo", "params": {}}`)
	if rate, _ := defaulted.Metric("rate"); rate != 0.4 {
		t.Fatalf("omitted rate ran as %v, want default 0.4", rate)
	}
	explicit := run(`{"scenario": "echo", "params": {"rate": 0, "gst": 0}}`)
	if rate, _ := explicit.Metric("rate"); rate != 0 {
		t.Fatalf("explicit rate=0 ran as %v, want 0", rate)
	}
	if gst, _ := explicit.Metric("gst"); gst != 0 {
		t.Fatalf("explicit gst=0 ran as %v, want 0", gst)
	}
	if explicit.Meta != nil && explicit.Meta.Cached {
		t.Fatal("explicit-zero run was served from the defaulted run's cache entry")
	}
}

// TestSweepWarmMatchesColdAndStampsMeta runs the same shared-prefix grid
// warm (per-request override) and cold (server default) on a cache-less
// server: warm cells must carry warm-start provenance in the stream, and
// the payloads must be bit-identical to the cold sweep's.
func TestSweepWarmMatchesColdAndStampsMeta(t *testing.T) {
	ts := newTestServer(t, Config{CacheSize: -1})
	grid := map[string]any{
		"scenario": "sim/gst",
		"sweep":    "horizon=4,6,8",
		"params":   map[string]any{"n": 24, "gst": 12},
	}

	warmBody := map[string]any{"warm": true}
	for k, v := range grid {
		warmBody[k] = v
	}
	warm := decodeNDJSON(t, postJSON(t, ts.URL+"/sweep", warmBody))
	if len(warm) != 3 {
		t.Fatalf("warm sweep streamed %d updates, want 3", len(warm))
	}
	hits := 0
	warmRes := make([]engine.Result, len(warm))
	for _, u := range warm {
		warmRes[u.Index] = u.Result
		if u.Result.Err != "" {
			t.Fatalf("warm cell %d failed: %s", u.Index, u.Result.Err)
		}
		wm := u.Result.Meta.Warm
		if wm == nil {
			t.Fatalf("warm cell %d meta = %+v, want warm-start provenance", u.Index, u.Result.Meta)
		}
		if wm.Hit {
			hits++
			if wm.EpochsSaved <= 0 {
				t.Errorf("warm hit %d saved %d epochs, want > 0", u.Index, wm.EpochsSaved)
			}
		}
	}
	if hits == 0 {
		t.Error("shared-prefix grid produced no warm hits")
	}

	cold := decodeNDJSON(t, postJSON(t, ts.URL+"/sweep", grid))
	coldRes := make([]engine.Result, len(cold))
	for _, u := range cold {
		coldRes[u.Index] = u.Result
		if u.Result.Meta != nil && u.Result.Meta.Warm != nil {
			t.Errorf("cold cell %d carries warm meta %+v", u.Index, u.Result.Meta.Warm)
		}
	}
	if !reflect.DeepEqual(engine.StripMeta(warmRes), engine.StripMeta(coldRes)) {
		t.Error("warm sweep payload diverges from cold sweep payload")
	}
}

// TestSweepWarmSharesRunCache boots a server with warm-start on by
// default and checks the cache interplay: a warm sweep's cells land in
// the LRU stripped of metadata, so a later /run of the same parameter
// point is served cached — same payload, no warm provenance leaking
// through — and a per-request "warm": false override still runs cold.
func TestSweepWarmSharesRunCache(t *testing.T) {
	ts := newTestServer(t, Config{WarmStart: true, CacheSize: 16})
	sweep := map[string]any{
		"scenario": "sim/gst",
		"sweep":    "horizon=4,6,8",
		"params":   map[string]any{"n": 24, "gst": 12},
	}
	updates := decodeNDJSON(t, postJSON(t, ts.URL+"/sweep", sweep))
	byHorizon := map[int]engine.Result{}
	warmed := false
	for _, u := range updates {
		if u.Result.Err != "" {
			t.Fatalf("sweep cell %d failed: %s", u.Index, u.Result.Err)
		}
		if u.Result.Meta == nil || u.Result.Meta.Warm == nil {
			t.Fatalf("server-default warm sweep cell %d has no warm meta", u.Index)
		}
		warmed = warmed || u.Result.Meta.Warm.Hit
		byHorizon[u.Result.Params.Horizon] = u.Result
	}
	if !warmed {
		t.Error("server-default warm sweep produced no warm hits")
	}

	resp := postJSON(t, ts.URL+"/run", map[string]any{
		"scenario": "sim/gst",
		"params":   map[string]any{"n": 24, "gst": 12, "horizon": 6},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status = %d", resp.StatusCode)
	}
	var res engine.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Meta == nil || !res.Meta.Cached {
		t.Fatalf("run meta = %+v, want served from the warm sweep's cache entry", res.Meta)
	}
	if res.Meta.Warm != nil {
		t.Errorf("cached run leaked warm provenance: %+v", res.Meta.Warm)
	}
	if !reflect.DeepEqual(res.WithoutMeta(), byHorizon[6].WithoutMeta()) {
		t.Error("cached run payload diverges from the warm sweep cell")
	}

	// The override works the other way too: "warm": false on a
	// warm-default server runs cold.
	coldBody := map[string]any{
		"scenario": "sim/gst",
		"sweep":    "horizon=10",
		"params":   map[string]any{"n": 24, "gst": 12},
		"warm":     false,
	}
	for _, u := range decodeNDJSON(t, postJSON(t, ts.URL+"/sweep", coldBody)) {
		if u.Result.Meta != nil && u.Result.Meta.Warm != nil {
			t.Errorf(`"warm": false cell %d carries warm meta %+v`, u.Index, u.Result.Meta.Warm)
		}
	}
}

// TestSweepCheckpointResumeAndMetrics: a server configured with a
// checkpoint store resumes a sweep cell from a planted mid-cell
// checkpoint — exactly what a crash-requeued worker leaves behind —
// streams a payload identical to the cold run, deletes the checkpoint on
// completion, and surfaces the resume in GET /metrics and /healthz.
func TestSweepCheckpointResumeAndMetrics(t *testing.T) {
	s, err := New(Config{StoreDir: t.TempDir(), CheckpointEvery: 8, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Plant the checkpoint a killed worker would have left at epoch 16.
	cell := engine.Cell{Scenario: engine.ScenarioSimLeak, Params: engine.Params{P0: 0.5, N: 16, Horizon: 40, Seed: 1}}
	sc, ok := engine.Default.Lookup(cell.Scenario)
	if !ok {
		t.Fatal("sim/leak not registered")
	}
	cs := sc.(engine.CheckpointableScenario)
	p := cell.Params.WithDefaults(sc.Defaults())
	pre, err := cs.RunTo(context.Background(), p, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if err := cs.EncodePrefix(&blob, pre); err != nil {
		t.Fatal(err)
	}
	key, ok := engine.CanonicalCellKey(nil, cell)
	if !ok {
		t.Fatal("no canonical key")
	}
	if err := s.Checkpoints().SaveCheckpoint(key, blob.Bytes()); err != nil {
		t.Fatal(err)
	}

	updates := decodeNDJSON(t, postJSON(t, ts.URL+"/sweep", map[string]any{"cells": []engine.Cell{cell}}))
	if len(updates) != 1 {
		t.Fatalf("streamed %d updates, want 1", len(updates))
	}
	got := updates[0].Result
	cold, err := engine.Default.RunContext(context.Background(), cell.Scenario, cell.Params)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.WithoutMeta(), cold.WithoutMeta()) {
		t.Errorf("resumed sweep payload diverges from cold run:\n  got:  %+v\n  cold: %+v", got.WithoutMeta(), cold.WithoutMeta())
	}
	if ck := got.Meta.Checkpoint; ck == nil || !ck.Resumed || ck.ResumeEpoch != 16 || ck.EpochsSaved != 16 {
		t.Fatalf("checkpoint meta = %+v, want a resume from epoch 16", got.Meta.Checkpoint)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Checkpoints == nil {
		t.Fatal("metrics omit the checkpoints block despite a checkpoint store")
	}
	if m.Checkpoints.Resumed != 1 || m.Checkpoints.EpochsSaved != 16 {
		t.Errorf("metrics resumed=%d epochs_saved=%d, want 1 and 16", m.Checkpoints.Resumed, m.Checkpoints.EpochsSaved)
	}
	if m.Checkpoints.Written == 0 || m.Checkpoints.Loaded != 1 {
		t.Errorf("metrics written=%d loaded=%d, want written>0 loaded=1", m.Checkpoints.Written, m.Checkpoints.Loaded)
	}
	if m.Checkpoints.GCDeleted == 0 {
		t.Error("completed cell did not GC its checkpoint")
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if _, ok := health["checkpoints"]; !ok {
		t.Error("healthz omits the checkpoints block despite a checkpoint store")
	}

	// The completed cell's checkpoint is gone from disk.
	if _, ok := s.Checkpoints().LoadCheckpoint(key); ok {
		t.Error("completed cell's checkpoint survived on disk")
	}
}

// TestServerCheckpointsDisabled: a negative CheckpointEvery opts the
// server out of the checkpoint tier even when a store is configured.
func TestServerCheckpointsDisabled(t *testing.T) {
	s, err := New(Config{StoreDir: t.TempDir(), CheckpointEvery: -1, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Checkpoints() != nil {
		t.Fatal("negative CheckpointEvery still opened a checkpoint tier")
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Checkpoints != nil {
		t.Fatalf("metrics advertise checkpoints while disabled: %+v", m.Checkpoints)
	}
}
