// Package server exposes the scenario registry over HTTP/JSON: listing,
// single runs, and streaming parameter sweeps, with an LRU result cache so
// repeated grid cells are served without recomputation.
//
// Endpoints:
//
//	GET  /scenarios  registry listing (name, description, defaults)
//	POST /run        one scenario run, JSON in / JSON out, cached
//	POST /sweep      parameter sweep, NDJSON stream of per-cell results
//	GET  /healthz    liveness plus registry and cache statistics
//
// Sweep responses stream one engine.Update JSON object per line in
// completion order; cancellation (client disconnect) propagates through
// the engine's context and aborts the remaining cells promptly.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/engine"
	// Install the snapshot-tree warm-start scheduler so warm sweeps work
	// (the engine package cannot import it; see engine.SetWarmStartScheduler).
	_ "repro/internal/engine/warmstart"
)

// DefaultCacheSize is the LRU capacity used when Config.CacheSize is 0.
const DefaultCacheSize = 512

// Config parameterizes a Server.
type Config struct {
	// Registry resolves scenario names; nil means the default registry.
	Registry *engine.Registry
	// Workers is the default sweep worker pool (0 = all CPUs). Negative
	// values are rejected by New.
	Workers int
	// CacheSize bounds the LRU result cache: 0 means DefaultCacheSize,
	// negative disables caching.
	CacheSize int
	// WarmStart turns the snapshot-tree warm-start scheduler on by
	// default for /sweep requests whose scenarios support it
	// (engine.ForkableScenario); per-request "warm" overrides it either
	// way. Results are bit-identical to cold sweeps, so warm and cold
	// cells share the LRU cache freely.
	WarmStart bool
	// WarmBudget bounds resident warm-start snapshot bytes
	// (engine.WarmStartOptions.MemoryBudget): 0 means the engine default,
	// negative unlimited.
	WarmBudget int64
}

// Server serves the scenario registry over HTTP.
type Server struct {
	reg        *engine.Registry
	workers    int
	cache      *resultCache
	warm       bool
	warmBudget int64
}

// New validates cfg and builds a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("server: workers = %d, want >= 0 (0 = all CPUs)", cfg.Workers)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = engine.Default
	}
	s := &Server{reg: reg, workers: cfg.Workers, warm: cfg.WarmStart, warmBudget: cfg.WarmBudget}
	if cfg.CacheSize >= 0 {
		size := cfg.CacheSize
		if size == 0 {
			size = DefaultCacheSize
		}
		s.cache = newResultCache(size)
	}
	return s, nil
}

// Handler returns the HTTP routing for the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /scenarios", s.handleScenarios)
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("POST /sweep", s.handleSweep)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// writeJSON emits v as JSON with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

// writeError emits a JSON error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleScenarios lists the registry.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Infos())
}

// runRequest is the POST /run body. engine.Params decodes presence-aware
// (its UnmarshalJSON marks every key present in the document), so an
// explicit zero like {"rate": 0} survives defaulting as-is.
type runRequest struct {
	Scenario string        `json:"scenario"`
	Params   engine.Params `json:"params"`
}

// handleRun executes one scenario, serving repeated parameter points from
// the cache.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	sc, ok := s.reg.Lookup(req.Scenario)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown scenario %q", req.Scenario)
		return
	}
	key := cacheKey(req.Scenario, req.Params.WithDefaults(sc.Defaults()))
	if s.cache != nil {
		if res, ok := s.cache.get(key); ok {
			res.Meta = engine.RunMeta{Cached: true}.Merged(res.Meta)
			writeJSON(w, http.StatusOK, res)
			return
		}
	}
	res, err := timedRun(r.Context(), s.reg, req.Scenario, req.Params)
	if err != nil {
		// A cancelled request context is a server-side abort (client
		// disconnect or graceful shutdown), not a bad request.
		status := http.StatusBadRequest
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "scenario %q: %v", req.Scenario, err)
		return
	}
	if s.cache != nil {
		s.cache.add(key, res.WithoutMeta())
	}
	writeJSON(w, http.StatusOK, res)
}

// sweepRequest is the POST /sweep body: either explicit cells, or a
// scenario plus a ParseGrid spec (with params pinning unlisted
// dimensions, mirroring the CLI flag fallback). Cell and fallback params
// decode presence-aware (engine.Params.UnmarshalJSON), so an explicit
// zero in the request is an explicit zero in the run.
type sweepRequest struct {
	Cells    []engine.Cell `json:"cells,omitempty"`
	Scenario string        `json:"scenario,omitempty"`
	Sweep    string        `json:"sweep,omitempty"`
	Params   engine.Params `json:"params,omitempty"`
	// Workers overrides the server's sweep pool for this request
	// (0 = server default, negative rejected).
	Workers int `json:"workers,omitempty"`
	// Warm overrides the server's warm-start default for this request
	// (absent = server default).
	Warm *bool `json:"warm,omitempty"`
}

// handleSweep expands the requested sweep and streams one NDJSON update
// per cell as it completes. Cells whose (scenario, canonical params) are
// cached are emitted immediately without recomputation.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Workers < 0 {
		writeError(w, http.StatusBadRequest, "workers = %d, want >= 0 (0 = server default)", req.Workers)
		return
	}
	cells := req.Cells
	if len(cells) == 0 {
		if req.Scenario == "" || req.Sweep == "" {
			writeError(w, http.StatusBadRequest, "body wants cells, or scenario plus sweep spec")
			return
		}
		if _, ok := s.reg.Lookup(req.Scenario); !ok {
			writeError(w, http.StatusNotFound, "unknown scenario %q", req.Scenario)
			return
		}
		grid, err := engine.ParseGrid(req.Scenario, req.Sweep)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		cells = grid.FillFrom(req.Params).Cells()
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.workers
	}
	warm := s.warm
	if req.Warm != nil {
		warm = *req.Warm
	}

	// Split the sweep: cached cells are answered without recomputation,
	// the rest go through the streaming engine.
	type pending struct {
		index int
		key   string
		ok    bool // key resolvable (known scenario)
	}
	var cached []engine.Update
	var todo []engine.Cell
	var meta []pending
	for i, cell := range cells {
		key, ok := s.cellKey(cell)
		if ok && s.cache != nil {
			if res, hit := s.cache.get(key); hit {
				res.Meta = engine.RunMeta{Cached: true}.Merged(res.Meta)
				cached = append(cached, engine.Update{Index: i, Result: res})
				continue
			}
		}
		todo = append(todo, cell)
		meta = append(meta, pending{index: i, key: key, ok: ok})
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	total := len(cells)
	completed := 0
	emit := func(u engine.Update) {
		completed++
		u.Completed = completed
		u.Total = total
		enc.Encode(u) //nolint:errcheck // disconnects surface via the request context
		if flusher != nil {
			flusher.Flush()
		}
	}
	for _, u := range cached {
		emit(u)
	}
	opt := engine.Options{Workers: workers, Registry: s.reg}
	if warm {
		opt.WarmStart = &engine.WarmStartOptions{MemoryBudget: s.warmBudget}
	}
	for u := range engine.SweepStream(r.Context(), todo, opt) {
		p := meta[u.Index]
		if s.cache != nil && p.ok && u.Result.Err == "" {
			s.cache.add(p.key, u.Result.WithoutMeta())
		}
		u.Index = p.index
		emit(u)
	}
}

// handleHealthz reports liveness plus registry and cache statistics.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":    "ok",
		"scenarios": len(s.reg.Names()),
	}
	if s.cache != nil {
		hits, misses := s.cache.stats()
		body["cache"] = map[string]uint64{
			"entries": uint64(s.cache.len()),
			"hits":    hits,
			"misses":  misses,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// timedRun executes a scenario and stamps the result with its wall-clock
// duration.
func timedRun(ctx context.Context, reg *engine.Registry, name string, p engine.Params) (engine.Result, error) {
	start := time.Now()
	res, err := reg.RunContext(ctx, name, p)
	if err != nil {
		return engine.Result{}, err
	}
	res.Meta = engine.RunMeta{DurationMS: float64(time.Since(start)) / float64(time.Millisecond)}.Merged(res.Meta)
	return res, nil
}

// cellKey resolves a cell's cache key (false for unknown scenarios, whose
// defaults cannot be applied).
func (s *Server) cellKey(c engine.Cell) (string, bool) {
	sc, ok := s.reg.Lookup(c.Scenario)
	if !ok {
		return "", false
	}
	return cacheKey(c.Scenario, c.Params.WithDefaults(sc.Defaults())), true
}
