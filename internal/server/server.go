// Package server exposes the scenario registry over HTTP/JSON: listing,
// single runs, and streaming parameter sweeps, backed by a tiered result
// cache (in-memory LRU → persistent content-addressed store → compute) and
// optionally scaled out over worker processes (coordinator mode).
//
// Endpoints:
//
//	GET  /scenarios  registry listing (name, description, defaults)
//	POST /run        one scenario run, JSON in / JSON out, cached
//	POST /sweep      parameter sweep, NDJSON stream of per-cell results
//	GET  /healthz    liveness plus registry and cache/store statistics
//	GET  /metrics    fabric observability: tier hit/miss counters, cells
//	                 computed vs served from store, queue depth, in-flight
//	                 dispatch, per-scenario timing sums, worker health
//
// Sweep responses stream one engine.Update JSON object per line —
// completion order in-process, deterministic cell order in coordinator
// mode; cancellation (client disconnect) propagates through the engine's
// context and aborts the remaining cells promptly. Admission control
// bounds the cells queued across requests: a request that would exceed
// the bound is refused with 429 and a Retry-After header rather than
// queued without limit.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/engine"
	// Install the snapshot-tree warm-start scheduler so warm sweeps work
	// (the engine package cannot import it; see engine.SetWarmStartScheduler).
	_ "repro/internal/engine/warmstart"
	"repro/internal/store"
)

// DefaultCacheSize is the LRU capacity used when Config.CacheSize is 0.
const DefaultCacheSize = 512

// DefaultQueueDepth bounds the cells admitted (queued or in flight)
// across all requests when Config.QueueDepth is 0.
const DefaultQueueDepth = 4096

// DefaultMaxBodyBytes bounds request bodies when Config.MaxBodyBytes is 0:
// 1 MiB, roomy for any realistic grid spec or explicit cell list.
const DefaultMaxBodyBytes int64 = 1 << 20

// Config parameterizes a Server.
type Config struct {
	// Registry resolves scenario names; nil means the default registry.
	Registry *engine.Registry
	// Workers is the default sweep worker pool (0 = all CPUs). Negative
	// values are rejected by New.
	Workers int
	// CacheSize bounds the LRU result cache: 0 means DefaultCacheSize,
	// negative disables caching.
	CacheSize int
	// StoreDir enables the persistent tier: a content-addressed result
	// store rooted at this directory (created if needed). Results are
	// keyed by the same canonical cell key as the LRU, written atomically
	// with a checksummed header, and survive process restarts — a
	// repeated grid is served from disk at cache speed by any later
	// process over the same directory. Empty disables the tier.
	StoreDir string
	// CheckpointEvery sets the durable mid-cell checkpoint interval in
	// simulated epochs for sweep cells of checkpointable scenarios
	// (engine.CheckpointableScenario). Checkpoints live in the StoreDir
	// store under their own namespace: a worker killed mid-cell resumes
	// its cell from the newest valid checkpoint instead of recomputing
	// from epoch 0, with results bit-identical to the uninterrupted run.
	// 0 means engine.DefaultCheckpointEvery; negative disables
	// checkpointing. No effect without StoreDir.
	CheckpointEvery int
	// WarmStart turns the snapshot-tree warm-start scheduler on by
	// default for /sweep requests whose scenarios support it
	// (engine.ForkableScenario); per-request "warm" overrides it either
	// way. Results are bit-identical to cold sweeps, so warm and cold
	// cells share the cache tiers freely.
	WarmStart bool
	// WarmBudget bounds resident warm-start snapshot bytes
	// (engine.WarmStartOptions.MemoryBudget): 0 means the engine default,
	// negative unlimited.
	WarmBudget int64
	// Shards lists worker base URLs (e.g. http://w1:8791). Non-empty puts
	// the server in coordinator mode: sweep cells are dispatched to the
	// workers over the NDJSON /sweep protocol, requeued from failed or
	// slow workers onto the survivors, and merged in deterministic cell
	// order. A plain serve instance is a valid worker.
	Shards []string
	// ShardInflight bounds concurrently dispatched cells per worker
	// (0 = DefaultShardInflight).
	ShardInflight int
	// ShardCellTimeout bounds one remote cell's wall clock; an overrun
	// condemns the worker and requeues the cell (0 = unbounded).
	ShardCellTimeout time.Duration
	// QueueDepth bounds the cells admitted (queued or in flight) across
	// all requests; a request that would exceed it is refused with 429 +
	// Retry-After. 0 means DefaultQueueDepth, negative unlimited.
	QueueDepth int
	// MaxBodyBytes bounds request bodies (http.MaxBytesReader); an
	// oversized body is refused with 413. 0 means DefaultMaxBodyBytes,
	// negative unlimited.
	MaxBodyBytes int64
}

// Server serves the scenario registry over HTTP.
type Server struct {
	reg        *engine.Registry
	workers    int
	cache      *resultCache
	store      *store.Results
	ckpts      *store.Checkpoints
	ckptEvery  int
	warm       bool
	warmBudget int64
	coord      *coordinator
	queueDepth int
	maxBody    int64
	metrics    *metrics
}

// New validates cfg and builds a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("server: workers = %d, want >= 0 (0 = all CPUs)", cfg.Workers)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = engine.Default
	}
	s := &Server{
		reg:        reg,
		workers:    cfg.Workers,
		warm:       cfg.WarmStart,
		warmBudget: cfg.WarmBudget,
		metrics:    newMetrics(),
	}
	if cfg.CacheSize >= 0 {
		size := cfg.CacheSize
		if size == 0 {
			size = DefaultCacheSize
		}
		s.cache = newResultCache(size)
	}
	if cfg.StoreDir != "" {
		st, err := store.OpenResults(cfg.StoreDir)
		if err != nil {
			return nil, fmt.Errorf("server: opening result store: %w", err)
		}
		s.store = st
		if cfg.CheckpointEvery >= 0 {
			// The checkpoint tier shares the result store's directory:
			// a worker's -store holds its results and its in-flight
			// checkpoints, so crash resume needs no extra configuration.
			s.ckpts = st.Checkpoints()
			s.ckptEvery = cfg.CheckpointEvery
		}
	}
	if len(cfg.Shards) > 0 {
		coord, err := newCoordinator(cfg.Shards, cfg.ShardInflight, cfg.ShardCellTimeout, s.metrics)
		if err != nil {
			return nil, err
		}
		s.coord = coord
	}
	s.queueDepth = cfg.QueueDepth
	if s.queueDepth == 0 {
		s.queueDepth = DefaultQueueDepth
	}
	s.maxBody = cfg.MaxBodyBytes
	if s.maxBody == 0 {
		s.maxBody = DefaultMaxBodyBytes
	}
	return s, nil
}

// Close flushes and closes the persistent store tier (graceful shutdown
// calls it after draining in-flight requests). The in-memory tiers need
// no teardown.
func (s *Server) Close() error {
	if s.store != nil {
		return s.store.Close()
	}
	return nil
}

// Store exposes the persistent tier (nil when disabled); tests use it to
// inspect and damage entries.
func (s *Server) Store() *store.Results { return s.store }

// Checkpoints exposes the durable checkpoint tier (nil when disabled);
// tests use it to plant, inspect, and damage mid-cell checkpoints.
func (s *Server) Checkpoints() *store.Checkpoints { return s.ckpts }

// Handler returns the HTTP routing for the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /scenarios", s.handleScenarios)
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("POST /sweep", s.handleSweep)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// decodeBody decodes a JSON request body under the configured size bound.
// It reports (handled=true) after writing the error response itself, so
// handlers can simply return.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) (handled bool) {
	if s.maxBody > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body over %d bytes", tooBig.Limit)
			return true
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return true
	}
	return false
}

// admit reserves queue slots for n cells, or refuses with 429 +
// Retry-After when the bound would be exceeded. The returned release frees
// the slots (call it exactly once; it is nil-safe to call on refusal).
func (s *Server) admit(w http.ResponseWriter, n int) (release func(), ok bool) {
	if n == 0 {
		return func() {}, true
	}
	if s.queueDepth > 0 {
		if queued := s.metrics.admitted.Add(int64(n)); queued > int64(s.queueDepth) {
			s.metrics.admitted.Add(int64(-n))
			s.metrics.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests,
				"queue full: %d cells admitted of %d; retry shortly", queued-int64(n), s.queueDepth)
			return nil, false
		}
	} else {
		s.metrics.admitted.Add(int64(n))
	}
	return func() { s.metrics.admitted.Add(int64(-n)) }, true
}

// writeJSON emits v as JSON with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

// writeError emits a JSON error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleScenarios lists the registry.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Infos())
}

// lookup consults the cache tiers in order — LRU, then the persistent
// store. A store hit is promoted into the LRU so the next lookup stays in
// memory. tier is "lru", "store", or "" on a miss.
func (s *Server) lookup(key string) (engine.Result, string, bool) {
	if s.cache != nil {
		if res, ok := s.cache.get(key); ok {
			s.metrics.cellsFromLRU.Add(1)
			return res, "lru", true
		}
	}
	if s.store != nil {
		if res, ok := s.store.Get(key); ok {
			if s.cache != nil {
				s.cache.add(key, res)
			}
			s.metrics.cellsFromStore.Add(1)
			return res, "store", true
		}
	}
	return engine.Result{}, "", false
}

// save writes a computed result through every cache tier (metadata
// stripped: the tiers hold only the deterministic payload).
func (s *Server) save(key string, res engine.Result) {
	payload := res.WithoutMeta()
	if s.cache != nil {
		s.cache.add(key, payload)
	}
	if s.store != nil {
		s.store.Put(key, payload) //nolint:errcheck // a failed persist only costs a future recomputation
	}
}

// caching reports whether any cache tier is active.
func (s *Server) caching() bool { return s.cache != nil || s.store != nil }

// runRequest is the POST /run body. engine.Params decodes presence-aware
// (its UnmarshalJSON marks every key present in the document), so an
// explicit zero like {"rate": 0} survives defaulting as-is.
type runRequest struct {
	Scenario string        `json:"scenario"`
	Params   engine.Params `json:"params"`
}

// handleRun executes one scenario, serving repeated parameter points from
// the cache tiers (LRU, then disk). Coordinators compute /run in-process
// too: a coordinator is a complete serve instance, and a single cell does
// not fan out.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if s.decodeBody(w, r, &req) {
		return
	}
	sc, ok := s.reg.Lookup(req.Scenario)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown scenario %q", req.Scenario)
		return
	}
	key := cacheKey(req.Scenario, req.Params.WithDefaults(sc.Defaults()))
	if res, _, ok := s.lookup(key); ok {
		res.Meta = engine.RunMeta{Cached: true}.Merged(res.Meta)
		writeJSON(w, http.StatusOK, res)
		return
	}
	release, ok := s.admit(w, 1)
	if !ok {
		return
	}
	defer release()
	res, err := timedRun(r.Context(), s.reg, req.Scenario, req.Params)
	if err != nil {
		// A cancelled request context is a server-side abort (client
		// disconnect or graceful shutdown), not a bad request.
		status := http.StatusBadRequest
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "scenario %q: %v", req.Scenario, err)
		return
	}
	if res.Meta != nil {
		s.metrics.recordComputed(req.Scenario, res.Meta.DurationMS)
	}
	s.save(key, res)
	writeJSON(w, http.StatusOK, res)
}

// sweepRequest is the POST /sweep body: either explicit cells, or a
// scenario plus a ParseGrid spec (with params pinning unlisted
// dimensions, mirroring the CLI flag fallback). Cell and fallback params
// decode presence-aware (engine.Params.UnmarshalJSON), so an explicit
// zero in the request is an explicit zero in the run.
type sweepRequest struct {
	Cells    []engine.Cell `json:"cells,omitempty"`
	Scenario string        `json:"scenario,omitempty"`
	Sweep    string        `json:"sweep,omitempty"`
	Params   engine.Params `json:"params,omitempty"`
	// Workers overrides the server's sweep pool for this request
	// (0 = server default, negative rejected).
	Workers int `json:"workers,omitempty"`
	// Warm overrides the server's warm-start default for this request
	// (absent = server default).
	Warm *bool `json:"warm,omitempty"`
}

// handleSweep expands the requested sweep and streams one NDJSON update
// per cell. Cells whose (scenario, canonical params) are cached — in the
// LRU or the persistent store — are emitted immediately without
// recomputation; the rest are computed in-process (completion order) or,
// in coordinator mode, dispatched over the workers and streamed in
// deterministic cell order.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if s.decodeBody(w, r, &req) {
		return
	}
	if req.Workers < 0 {
		writeError(w, http.StatusBadRequest, "workers = %d, want >= 0 (0 = server default)", req.Workers)
		return
	}
	cells := req.Cells
	if len(cells) == 0 {
		if req.Scenario == "" || req.Sweep == "" {
			writeError(w, http.StatusBadRequest, "body wants cells, or scenario plus sweep spec")
			return
		}
		if _, ok := s.reg.Lookup(req.Scenario); !ok {
			writeError(w, http.StatusNotFound, "unknown scenario %q", req.Scenario)
			return
		}
		grid, err := engine.ParseGrid(req.Scenario, req.Sweep)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		cells = grid.FillFrom(req.Params).Cells()
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.workers
	}
	warm := s.warm
	if req.Warm != nil {
		warm = *req.Warm
	}

	// Split the sweep: cells cached in any tier are answered without
	// recomputation, the rest go through the streaming engine (or the
	// coordinator's dispatch).
	type pending struct {
		index int
		key   string
		ok    bool // key resolvable (known scenario)
	}
	var cached []engine.Update
	var todo []engine.Cell
	var meta []pending
	for i, cell := range cells {
		key, ok := s.cellKey(cell)
		if ok && s.caching() {
			if res, _, hit := s.lookup(key); hit {
				res.Meta = engine.RunMeta{Cached: true}.Merged(res.Meta)
				cached = append(cached, engine.Update{Index: i, Result: res})
				continue
			}
		}
		todo = append(todo, cell)
		meta = append(meta, pending{index: i, key: key, ok: ok})
	}
	release, ok := s.admit(w, len(todo))
	if !ok {
		return
	}
	defer release()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	total := len(cells)
	completed := 0
	emit := func(u engine.Update) {
		completed++
		u.Completed = completed
		u.Total = total
		enc.Encode(u) //nolint:errcheck // disconnects surface via the request context
		if flusher != nil {
			flusher.Flush()
		}
	}
	for _, u := range cached {
		emit(u)
	}
	opt := engine.Options{Workers: workers, Registry: s.reg}
	if warm {
		opt.WarmStart = &engine.WarmStartOptions{MemoryBudget: s.warmBudget}
	}
	if s.ckpts != nil {
		opt.Checkpoint = &engine.CheckpointOptions{Every: s.ckptEvery, Store: s.ckpts}
	}
	if s.coord != nil {
		opt.Dispatch = s.coord.dispatch
	}
	for u := range engine.SweepStream(r.Context(), todo, opt) {
		p := meta[u.Index]
		if u.Result.Err == "" {
			if p.ok {
				s.save(p.key, u.Result)
			}
			// Resume provenance rides RunMeta whether the cell ran here
			// or on a remote worker; either way this server streamed it.
			if u.Result.Meta != nil && u.Result.Meta.Checkpoint != nil && u.Result.Meta.Checkpoint.Resumed {
				s.metrics.cellsResumed.Add(1)
				s.metrics.checkpointEpochsSaved.Add(uint64(u.Result.Meta.Checkpoint.EpochsSaved))
			}
			// In coordinator mode the cells were computed elsewhere (the
			// metrics ledger tracks them as remote; the local-fallback path
			// records its own compute); only count in-process work here.
			if u.Result.Meta != nil && s.coord == nil {
				s.metrics.recordComputed(u.Result.Scenario, u.Result.Meta.DurationMS)
			}
		}
		u.Index = p.index
		emit(u)
	}
}

// handleHealthz reports liveness plus registry, cache, and store
// statistics.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":    "ok",
		"scenarios": len(s.reg.Names()),
	}
	if s.cache != nil {
		hits, misses := s.cache.stats()
		body["cache"] = map[string]uint64{
			"entries": uint64(s.cache.len()),
			"hits":    hits,
			"misses":  misses,
		}
	}
	if s.store != nil {
		body["store"] = s.store.Stats()
	}
	if s.ckpts != nil {
		body["checkpoints"] = checkpointMetrics{
			CheckpointStats: s.ckpts.Stats(),
			Resumed:         s.metrics.cellsResumed.Load(),
			EpochsSaved:     s.metrics.checkpointEpochsSaved.Load(),
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// metricsResponse is the GET /metrics document.
type metricsResponse struct {
	// Cells accounts where every answered cell came from.
	Cells struct {
		Computed  uint64 `json:"computed"`
		FromLRU   uint64 `json:"from_lru"`
		FromStore uint64 `json:"from_store"`
	} `json:"cells"`
	// Queue is the admission-control state.
	Queue struct {
		Depth    int64  `json:"depth"`
		Limit    int    `json:"limit"`
		Rejected uint64 `json:"rejected"`
	} `json:"queue"`
	Cache *struct {
		Entries int    `json:"entries"`
		Hits    uint64 `json:"hits"`
		Misses  uint64 `json:"misses"`
	} `json:"cache,omitempty"`
	Store *store.Stats `json:"store,omitempty"`
	// Checkpoints is present only when a checkpoint store is configured:
	// the store-side ledger (written/bytes/loaded/missed/gc_deleted) plus
	// the sweep-side resume wins.
	Checkpoints *checkpointMetrics `json:"checkpoints,omitempty"`
	// Coordinator is present only in coordinator mode.
	Coordinator *struct {
		Workers  []workerStats `json:"workers"`
		Remote   uint64        `json:"cells_remote"`
		Requeued uint64        `json:"cells_requeued"`
		Lost     uint64        `json:"workers_lost"`
		Inflight int64         `json:"inflight"`
	} `json:"coordinator,omitempty"`
	// Scenarios sums computed-cell wall clock per scenario, sorted by
	// name so the rendered order is fixed by construction.
	Scenarios []namedScenarioTiming `json:"scenarios"`
}

// checkpointMetrics is the /metrics checkpoints block: the checkpoint
// store's own counters plus the cells this server streamed that resumed
// from a durable checkpoint (and the epochs those resumes skipped),
// whether the cell ran locally or on a remote worker.
type checkpointMetrics struct {
	store.CheckpointStats
	Resumed     uint64 `json:"resumed"`
	EpochsSaved uint64 `json:"epochs_saved"`
}

// handleMetrics serves the fabric's observability counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var resp metricsResponse
	resp.Cells.Computed = s.metrics.cellsComputed.Load()
	resp.Cells.FromLRU = s.metrics.cellsFromLRU.Load()
	resp.Cells.FromStore = s.metrics.cellsFromStore.Load()
	resp.Queue.Depth = s.metrics.admitted.Load()
	resp.Queue.Limit = s.queueDepth
	resp.Queue.Rejected = s.metrics.rejected.Load()
	if s.cache != nil {
		hits, misses := s.cache.stats()
		resp.Cache = &struct {
			Entries int    `json:"entries"`
			Hits    uint64 `json:"hits"`
			Misses  uint64 `json:"misses"`
		}{Entries: s.cache.len(), Hits: hits, Misses: misses}
	}
	if s.store != nil {
		st := s.store.Stats()
		resp.Store = &st
	}
	if s.ckpts != nil {
		resp.Checkpoints = &checkpointMetrics{
			CheckpointStats: s.ckpts.Stats(),
			Resumed:         s.metrics.cellsResumed.Load(),
			EpochsSaved:     s.metrics.checkpointEpochsSaved.Load(),
		}
	}
	if s.coord != nil {
		resp.Coordinator = &struct {
			Workers  []workerStats `json:"workers"`
			Remote   uint64        `json:"cells_remote"`
			Requeued uint64        `json:"cells_requeued"`
			Lost     uint64        `json:"workers_lost"`
			Inflight int64         `json:"inflight"`
		}{
			Workers:  s.coord.stats(),
			Remote:   s.metrics.cellsRemote.Load(),
			Requeued: s.metrics.cellsRequeued.Load(),
			Lost:     s.metrics.workersLost.Load(),
			Inflight: s.metrics.remoteInflight.Load(),
		}
	}
	resp.Scenarios = s.metrics.snapshotScenarios()
	writeJSON(w, http.StatusOK, resp)
}

// timedRun executes a scenario and stamps the result with its wall-clock
// duration.
func timedRun(ctx context.Context, reg *engine.Registry, name string, p engine.Params) (engine.Result, error) {
	start := time.Now()
	res, err := reg.RunContext(ctx, name, p)
	if err != nil {
		return engine.Result{}, err
	}
	res.Meta = engine.RunMeta{DurationMS: float64(time.Since(start)) / float64(time.Millisecond)}.Merged(res.Meta)
	return res, nil
}

// cellKey resolves a cell's cache key (false for unknown scenarios, whose
// defaults cannot be applied).
func (s *Server) cellKey(c engine.Cell) (string, bool) {
	return engine.CanonicalCellKey(s.reg, c)
}
