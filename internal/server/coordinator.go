package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
)

// DefaultShardInflight bounds concurrently dispatched cells per worker
// when Config.ShardInflight is 0.
const DefaultShardInflight = 2

// worker is one remote serve process the coordinator dispatches to.
type worker struct {
	url  string
	dead atomic.Bool
	// served/failed count this worker's dispatch outcomes.
	served atomic.Uint64
	failed atomic.Uint64
}

// coordinator is the scale-out half of the sweep fabric: with
// Config.Shards set, the server stops computing sweep cells in-process and
// instead dispatches them — cell by cell, over the same NDJSON POST /sweep
// wire protocol every serve instance already speaks — to a set of worker
// processes (a plain `serve` instance is a valid worker). Cells are
// independent and seed-deterministic, so the scheduling policy is free:
// bounded in-flight cells per worker, dead or slow workers requeue their
// cells onto the survivors, and when every worker is gone the coordinator
// computes the remainder itself. Results are merged in deterministic cell
// order, so the client-visible stream is bit-identical (Meta aside) to a
// single-process run for any worker set and any failure/requeue schedule.
type coordinator struct {
	workers     []*worker
	inflight    int           // per-worker concurrent cells
	cellTimeout time.Duration // 0 = unbounded
	client      *http.Client
	metrics     *metrics
}

// newCoordinator validates the worker URLs and builds the dispatcher.
func newCoordinator(shards []string, inflight int, cellTimeout time.Duration, m *metrics) (*coordinator, error) {
	if inflight <= 0 {
		inflight = DefaultShardInflight
	}
	c := &coordinator{
		inflight:    inflight,
		cellTimeout: cellTimeout,
		client:      &http.Client{},
		metrics:     m,
	}
	for _, raw := range shards {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("server: shard worker %q is not an absolute URL", raw)
		}
		c.workers = append(c.workers, &worker{url: strings.TrimRight(raw, "/")})
	}
	if len(c.workers) == 0 {
		return nil, fmt.Errorf("server: coordinator mode wants at least one worker URL")
	}
	return c, nil
}

// workerStats is the per-worker slice of GET /metrics.
type workerStats struct {
	URL    string `json:"url"`
	Dead   bool   `json:"dead"`
	Served uint64 `json:"served"`
	Failed uint64 `json:"failed"`
}

func (c *coordinator) stats() []workerStats {
	out := make([]workerStats, len(c.workers))
	for i, w := range c.workers {
		out[i] = workerStats{URL: w.url, Dead: w.dead.Load(), Served: w.served.Load(), Failed: w.failed.Load()}
	}
	return out
}

// dispatch implements engine.DispatchFunc: it streams one Update per cell
// in CELL ORDER (index-ascending), buffering out-of-order completions —
// the ordering is what makes the coordinator's output deterministic for
// any worker set and any failure/requeue schedule.
func (c *coordinator) dispatch(ctx context.Context, cells []engine.Cell, opt engine.Options) <-chan engine.Update {
	out := make(chan engine.Update)
	go func() {
		defer close(out)
		c.run(ctx, cells, opt, out)
	}()
	return out
}

type indexedResult struct {
	i   int
	res engine.Result
}

func (c *coordinator) run(ctx context.Context, cells []engine.Cell, opt engine.Options, out chan<- engine.Update) {
	n := len(cells)
	if n == 0 {
		return
	}
	results := make([]*engine.Result, n)
	emitted := 0
	emitInOrder := func() {
		for emitted < n && results[emitted] != nil {
			out <- engine.Update{Index: emitted, Result: *results[emitted], Completed: emitted + 1, Total: n}
			emitted++
		}
	}

	// Remote phase. jobs holds every not-yet-served cell index; a failed
	// worker's goroutines push their cells back before exiting, so the
	// channel never holds more than n indices. finished is buffered so a
	// worker is never blocked on the collector.
	jobs := make(chan int, n)
	for i := range cells {
		jobs <- i
	}
	finished := make(chan indexedResult, n)
	quit := make(chan struct{})
	var quitOnce sync.Once
	stop := func() { quitOnce.Do(func() { close(quit) }) }

	alive := int64(0)
	for _, w := range c.workers {
		if !w.dead.Load() {
			alive++
		}
	}
	aliveCount := atomic.Int64{}
	aliveCount.Store(alive)
	if alive == 0 {
		stop()
	}

	var wg sync.WaitGroup
	for _, w := range c.workers {
		if w.dead.Load() {
			continue
		}
		for k := 0; k < c.inflight; k++ {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				for {
					select {
					case <-quit:
						return
					case <-ctx.Done():
						return
					case i := <-jobs:
						if w.dead.Load() {
							jobs <- i
							return
						}
						c.metrics.remoteInflight.Add(1)
						res, err := c.runCell(ctx, w, cells[i], opt)
						c.metrics.remoteInflight.Add(-1)
						if err != nil {
							// The worker failed or stalled: requeue the
							// cell for the survivors and retire the
							// worker. Retrying is always safe — cells are
							// seed-deterministic, so a survivor (or the
							// local fallback) recomputes the identical
							// payload.
							w.failed.Add(1)
							c.metrics.cellsRequeued.Add(1)
							jobs <- i
							if w.dead.CompareAndSwap(false, true) {
								c.metrics.workersLost.Add(1)
								if aliveCount.Add(-1) == 0 {
									stop()
								}
							}
							return
						}
						w.served.Add(1)
						c.metrics.cellsRemote.Add(1)
						finished <- indexedResult{i, res}
					}
				}
			}(w)
		}
	}

	remaining := n
collect:
	for remaining > 0 {
		select {
		case r := <-finished:
			results[r.i] = &r.res
			remaining--
			emitInOrder()
		case <-quit: // every worker died; fall through to the local phase
			break collect
		case <-ctx.Done():
			break collect
		}
	}
	stop()
	wg.Wait()

	// Drain stragglers a worker finished after the collector left the
	// loop, then gather the cells nobody served.
	for {
		select {
		case r := <-finished:
			if results[r.i] == nil {
				results[r.i] = &r.res
				remaining--
			}
			continue
		default:
		}
		break
	}
	var leftover []int
	for {
		select {
		case i := <-jobs:
			leftover = append(leftover, i)
			continue
		default:
		}
		break
	}

	// Local fallback: with no workers left, the coordinator is still a
	// complete serve process — finish the grid in-process so a total
	// worker outage degrades throughput, not correctness.
	if len(leftover) > 0 && ctx.Err() == nil {
		local := make([]engine.Cell, len(leftover))
		for k, i := range leftover {
			local[k] = cells[i]
		}
		for u := range engine.SweepStream(ctx, local, opt) {
			res := u.Result
			if res.Err == "" && res.Meta != nil {
				c.metrics.recordComputed(res.Scenario, res.Meta.DurationMS)
			}
			results[leftover[u.Index]] = &res
			emitInOrder()
		}
	}

	// Whatever is still unserved (cancellation) is marked with the
	// context error, exactly as the in-process sweep marks unstarted
	// cells.
	if err := ctx.Err(); err != nil {
		for i := range results {
			if results[i] == nil {
				res := failedDispatch(opt.Registry, cells[i], err.Error())
				results[i] = &res
			}
		}
	}
	emitInOrder()
}

// failedDispatch mirrors the engine's failedCell: record the error on the
// defaulted params when the scenario is known.
func failedDispatch(reg *engine.Registry, cell engine.Cell, errText string) engine.Result {
	if reg == nil {
		reg = engine.Default
	}
	p := cell.Params
	if s, ok := reg.Lookup(cell.Scenario); ok {
		p = p.WithDefaults(s.Defaults())
	}
	return engine.Result{Scenario: cell.Scenario, Params: p, Err: errText}
}

// runCell executes one cell on a remote worker over the standard NDJSON
// /sweep protocol (a single-cell sweep). Transport-level trouble — refused
// connection, non-200 status, a stream that ends without the cell's
// update, undecodable NDJSON, or an overrun of the per-cell timeout —
// returns an error and condemns the worker; a result whose own Err is set
// (an invalid cell) is a legitimate payload and passes through, identical
// to what a local run would produce.
func (c *coordinator) runCell(ctx context.Context, w *worker, cell engine.Cell, opt engine.Options) (engine.Result, error) {
	if c.cellTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cellTimeout)
		defer cancel()
	}
	body, err := json.Marshal(sweepRequest{
		Cells: []engine.Cell{cell},
		Warm:  boolPtr(opt.WarmStart != nil),
	})
	if err != nil {
		return engine.Result{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/sweep", bytes.NewReader(body))
	if err != nil {
		return engine.Result{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return engine.Result{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return engine.Result{}, fmt.Errorf("worker %s: status %d", w.url, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return engine.Result{}, fmt.Errorf("worker %s: %w", w.url, err)
		}
		return engine.Result{}, fmt.Errorf("worker %s: empty sweep stream", w.url)
	}
	var u engine.Update
	if err := json.Unmarshal(sc.Bytes(), &u); err != nil {
		return engine.Result{}, fmt.Errorf("worker %s: bad NDJSON: %w", w.url, err)
	}
	return u.Result, nil
}

func boolPtr(b bool) *bool { return &b }
