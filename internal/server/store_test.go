package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/store"
)

// countedRegistry builds a registry with one deterministic scenario that
// counts its invocations — the probe for "served without recomputation".
func countedRegistry(runs *atomic.Int64) *engine.Registry {
	reg := engine.NewRegistry()
	reg.MustRegister(engine.NewScenario("counted", "counts invocations",
		engine.Params{P0: 0.5, N: 10},
		func(p engine.Params) (engine.Result, error) {
			runs.Add(1)
			return engine.Result{
				Outcome: fmt.Sprintf("seed %d", p.Seed),
				Metrics: []engine.Metric{{Name: "value", Value: float64(p.Seed)*10 + p.P0}},
			}, nil
		}))
	return reg
}

// storeServer builds a Server (not just its handler) so tests can reach
// the persistent tier, plus an httptest front end.
func storeServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Close() })
	return s, ts
}

func getResult(t *testing.T, url string, body any) engine.Result {
	t.Helper()
	resp := postJSON(t, url+"/run", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var res engine.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunReadThroughStore pins the tier order LRU → store → compute: with
// the LRU disabled, a repeated /run is served from disk; with the LRU
// enabled, a store hit is promoted so the next lookup never touches disk.
func TestRunReadThroughStore(t *testing.T) {
	var runs atomic.Int64
	reg := countedRegistry(&runs)
	dir := t.TempDir()
	s, ts := storeServer(t, Config{Registry: reg, StoreDir: dir, CacheSize: -1})

	body := map[string]any{"scenario": "counted", "params": engine.Params{Seed: 7}}
	first := getResult(t, ts.URL, body)
	if runs.Load() != 1 || (first.Meta != nil && first.Meta.Cached) {
		t.Fatalf("first run: %d invocations, meta %+v; want one fresh compute", runs.Load(), first.Meta)
	}
	if st := s.Store().Stats(); st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("store after compute: %+v, want the result persisted", st)
	}

	second := getResult(t, ts.URL, body)
	if runs.Load() != 1 {
		t.Errorf("repeat run recomputed (%d invocations)", runs.Load())
	}
	if second.Meta == nil || !second.Meta.Cached {
		t.Errorf("repeat run meta = %+v, want served from the store", second.Meta)
	}
	if !reflect.DeepEqual(first.WithoutMeta(), second.WithoutMeta()) {
		t.Error("store-served payload diverges from computed payload")
	}

	// With an LRU in front, a store hit is promoted: the second lookup is
	// an LRU hit, not another disk read.
	s2, ts2 := storeServer(t, Config{Registry: reg, StoreDir: dir, CacheSize: 8})
	getResult(t, ts2.URL, body)
	fromStore := s2.metrics.cellsFromStore.Load()
	getResult(t, ts2.URL, body)
	if runs.Load() != 1 {
		t.Errorf("tiered server recomputed (%d invocations)", runs.Load())
	}
	if got := s2.metrics.cellsFromStore.Load(); got != fromStore {
		t.Errorf("second lookup read disk again (%d store hits, was %d); want LRU promotion", got, fromStore)
	}
	if got := s2.metrics.cellsFromLRU.Load(); got != 1 {
		t.Errorf("LRU hits = %d, want 1", got)
	}
}

// TestSweepSurvivesRestartFromStore is the restart acceptance test: a
// second server process (fresh LRU, same store directory) serves the first
// process's whole sweep from disk, bit-identically, without invoking a
// scenario once.
func TestSweepSurvivesRestartFromStore(t *testing.T) {
	var runs atomic.Int64
	reg := countedRegistry(&runs)
	dir := t.TempDir()

	_, tsA := storeServer(t, Config{Registry: reg, StoreDir: dir})
	body := map[string]any{"cells": []engine.Cell{
		{Scenario: "counted", Params: engine.Params{Seed: 1}},
		{Scenario: "counted", Params: engine.Params{Seed: 2}},
		{Scenario: "counted", Params: engine.Params{Seed: 3}},
	}}
	first := decodeNDJSON(t, postJSON(t, tsA.URL+"/sweep", body))
	if runs.Load() != 3 {
		t.Fatalf("first sweep ran %d cells, want 3", runs.Load())
	}

	// "Restart": a brand-new Server over the same directory, cold LRU.
	sB, tsB := storeServer(t, Config{Registry: reg, StoreDir: dir})
	second := decodeNDJSON(t, postJSON(t, tsB.URL+"/sweep", body))
	if runs.Load() != 3 {
		t.Errorf("restarted server recomputed: %d total invocations, want still 3", runs.Load())
	}
	if len(second) != 3 {
		t.Fatalf("restarted sweep streamed %d updates, want 3", len(second))
	}
	firstRes := make([]engine.Result, 3)
	secondRes := make([]engine.Result, 3)
	for i := range first {
		firstRes[first[i].Index] = first[i].Result
		secondRes[second[i].Index] = second[i].Result
	}
	for i, r := range secondRes {
		if r.Meta == nil || !r.Meta.Cached {
			t.Errorf("restarted cell %d meta = %+v, want served from disk", i, r.Meta)
		}
	}
	if !reflect.DeepEqual(engine.StripMeta(firstRes), engine.StripMeta(secondRes)) {
		t.Error("restarted sweep payload diverges from the original")
	}
	if st := sB.Store().Stats(); st.Hits < 3 {
		t.Errorf("restarted store stats = %+v, want >= 3 hits", st)
	}
}

// TestStoreCorruptionRecomputesAndRewrites: a damaged entry (torn write)
// must never surface as an error — the server silently recomputes and
// rewrites it.
func TestStoreCorruptionRecomputesAndRewrites(t *testing.T) {
	var runs atomic.Int64
	reg := countedRegistry(&runs)
	s, ts := storeServer(t, Config{Registry: reg, StoreDir: t.TempDir(), CacheSize: -1})

	body := map[string]any{"scenario": "counted", "params": engine.Params{Seed: 9}}
	first := getResult(t, ts.URL, body)

	key := engine.CellKey("counted", engine.Params{Seed: 9}.WithDefaults(engine.Params{P0: 0.5, N: 10}))
	if ok, err := store.CorruptForTest(s.Store(), key); !ok || err != nil {
		t.Fatalf("CorruptForTest = %v, %v; is the cache key still canonical?", ok, err)
	}

	second := getResult(t, ts.URL, body) // 200, recomputed, never a 500
	if runs.Load() != 2 {
		t.Errorf("after corruption: %d invocations, want a recomputation (2)", runs.Load())
	}
	if second.Meta != nil && second.Meta.Cached {
		t.Error("corrupted entry was served as a cache hit")
	}
	if !reflect.DeepEqual(first.WithoutMeta(), second.WithoutMeta()) {
		t.Error("recomputed payload diverges")
	}
	st := s.Store().Stats()
	if st.Corrupt != 1 {
		t.Errorf("store stats = %+v, want the damage counted", st)
	}
	// The recomputation rewrote the entry: a third request is a disk hit.
	third := getResult(t, ts.URL, body)
	if runs.Load() != 2 || third.Meta == nil || !third.Meta.Cached {
		t.Errorf("rewrite not served: %d invocations, meta %+v", runs.Load(), third.Meta)
	}
}

// TestConcurrentStoreReadThrough hammers one parameter point from many
// goroutines through the full tier stack; every response must be a valid,
// identical payload (the race detector guards the rest in CI).
func TestConcurrentStoreReadThrough(t *testing.T) {
	var runs atomic.Int64
	reg := countedRegistry(&runs)
	s, ts := storeServer(t, Config{Registry: reg, StoreDir: t.TempDir(), CacheSize: 4})

	const goroutines = 12
	payloads := make([]engine.Result, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			body := map[string]any{"scenario": "counted", "params": engine.Params{Seed: 5}}
			payloads[g] = getResult(t, ts.URL, body).WithoutMeta()
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if !reflect.DeepEqual(payloads[0], payloads[g]) {
			t.Fatalf("goroutine %d saw a different payload", g)
		}
	}
	if st := s.Store().Stats(); st.Entries != 1 {
		t.Errorf("store holds %d entries for one parameter point", st.Entries)
	}
	if n := runs.Load(); n < 1 || n > goroutines {
		t.Errorf("invocations = %d, want within [1, %d]", n, goroutines)
	}
}

// TestHealthzReportsStoreStats: the store tier is visible in /healthz
// alongside the LRU stats.
func TestHealthzReportsStoreStats(t *testing.T) {
	var runs atomic.Int64
	reg := countedRegistry(&runs)
	_, ts := storeServer(t, Config{Registry: reg, StoreDir: t.TempDir()})
	getResult(t, ts.URL, map[string]any{"scenario": "counted", "params": engine.Params{Seed: 1}})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status string            `json:"status"`
		Cache  map[string]uint64 `json:"cache"`
		Store  *store.Stats      `json:"store"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Store == nil {
		t.Fatalf("healthz = %+v, want store statistics", health)
	}
	if health.Store.Entries != 1 || health.Store.Puts != 1 {
		t.Errorf("store stats = %+v, want 1 entry / 1 put", health.Store)
	}
	if health.Cache == nil {
		t.Error("LRU stats must stay present alongside the store's")
	}
}
