package server

import (
	"sort"
	"sync"
	"sync/atomic"
)

// metrics aggregates the fabric's observability counters, served by
// GET /metrics: where cells were answered from (computed vs cache tiers),
// admission-control pressure (queue depth, in-flight, rejections), the
// coordinator's dispatch ledger, and per-scenario compute-time sums.
type metrics struct {
	// Cells answered by each tier, across /run and /sweep.
	cellsComputed  atomic.Uint64
	cellsFromLRU   atomic.Uint64
	cellsFromStore atomic.Uint64

	// Admission control: cells currently admitted (queued or in flight)
	// and requests refused with 429.
	admitted atomic.Int64
	rejected atomic.Uint64

	// Coordinator ledger (zero when the server is a plain worker).
	cellsRemote    atomic.Uint64 // cells computed by a remote worker
	cellsRequeued  atomic.Uint64 // cells requeued off a failed/slow worker
	workersLost    atomic.Uint64 // workers marked dead
	remoteInflight atomic.Int64  // cells currently dispatched to workers

	// Durable-checkpoint ledger (zero without a checkpoint store).
	cellsResumed          atomic.Uint64 // cells resumed from an on-disk checkpoint
	checkpointEpochsSaved atomic.Uint64 // epochs those resumes did not re-simulate

	mu       sync.Mutex
	scenario map[string]*scenarioTiming // per-scenario compute sums
}

// scenarioTiming sums computed-cell wall clock per scenario.
type scenarioTiming struct {
	Cells   uint64  `json:"cells"`
	TotalMS float64 `json:"total_ms"`
}

// namedScenarioTiming is one row of the /metrics scenarios block: a
// scenario's timing sums tagged with its name. Rows render as a
// name-sorted array rather than a JSON object, so the byte order of the
// response is fixed by construction instead of by the JSON encoder's
// map-key handling.
type namedScenarioTiming struct {
	Name string `json:"name"`
	scenarioTiming
}

func newMetrics() *metrics {
	return &metrics{scenario: make(map[string]*scenarioTiming)}
}

// recordComputed accounts one freshly computed cell and its wall clock.
func (m *metrics) recordComputed(scenario string, ms float64) {
	m.cellsComputed.Add(1)
	m.mu.Lock()
	st := m.scenario[scenario]
	if st == nil {
		st = &scenarioTiming{}
		m.scenario[scenario] = st
	}
	st.Cells++
	st.TotalMS += ms
	m.mu.Unlock()
}

// snapshotScenarios copies the per-scenario sums as a name-sorted slice.
func (m *metrics) snapshotScenarios() []namedScenarioTiming {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.scenario))
	for name := range m.scenario {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]namedScenarioTiming, 0, len(names))
	for _, name := range names {
		out = append(out, namedScenarioTiming{Name: name, scenarioTiming: *m.scenario[name]})
	}
	return out
}
