package report

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
)

func sweepFixture() []engine.Result {
	return []engine.Result{
		{
			Scenario: "5.2.1",
			Params:   engine.Params{P0: 0.5, Beta0: 0.2},
			Outcome:  "2 finalized branches",
			Metrics: []engine.Metric{
				{Name: "analytic_epoch", Value: 3108},
				{Name: "sim_epoch", Value: 3108},
			},
		},
		{
			Scenario: "5.3",
			Params:   engine.Params{P0: 0.5, Beta0: 0.33, Seed: 7},
			Metrics: []engine.Metric{
				{Name: "sim_epoch", Value: 4000},
				{Name: "mc_probability", Value: 0.42},
			},
		},
		{
			Scenario: "leaksim",
			Params:   engine.Params{P0: 0.5, Mode: "warp"},
			Err:      "unknown mode",
		},
	}
}

func TestSweepTableColumns(t *testing.T) {
	tbl := SweepTable("demo sweep", sweepFixture())
	head := strings.Join(tbl.Headers, " ")
	for _, want := range []string{"scenario", "p0", "beta0", "seed", "mode", "outcome", "analytic_epoch", "sim_epoch", "mc_probability", "error"} {
		if !strings.Contains(head, want) {
			t.Errorf("headers %v missing %q", tbl.Headers, want)
		}
	}
	// No n/horizon columns: zero throughout the fixture.
	if strings.Contains(head, "horizon") || tbl.Headers[4] == "n" {
		t.Errorf("zero-valued param columns must be omitted: %v", tbl.Headers)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "3108") || !strings.Contains(b.String(), "unknown mode") {
		t.Errorf("render lost data:\n%s", b.String())
	}
}

func TestWriteSweepCSV(t *testing.T) {
	var b strings.Builder
	if err := WriteSweepCSV(&b, "demo sweep", sweepFixture()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // comment + header + 3 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "# demo sweep") {
		t.Errorf("missing title comment: %q", lines[0])
	}
	if !strings.Contains(lines[1], "scenario,p0,beta0") {
		t.Errorf("header = %q", lines[1])
	}
	// The outcome contains no comma here, but quoting must trigger on one.
	if !strings.Contains(out, "2 finalized branches") {
		t.Error("outcome column lost")
	}
}

func TestWriteSweepCSVQuotesCommas(t *testing.T) {
	results := []engine.Result{{
		Scenario: "x",
		Params:   engine.Params{P0: 0.5},
		Outcome:  `a,b "quoted"`,
	}}
	var b strings.Builder
	if err := WriteSweepCSV(&b, "", results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"a,b ""quoted"""`) {
		t.Errorf("comma cell not quoted: %s", b.String())
	}
	// Newlines inside a cell must stay inside one quoted field.
	b.Reset()
	if err := WriteSweepCSV(&b, "", []engine.Result{{
		Scenario: "x", Params: engine.Params{P0: 0.5}, Err: "line one\nline two",
	}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "\"line one\nline two\"") {
		t.Errorf("newline cell not quoted: %q", b.String())
	}
}

func TestWriteSweepJSONRoundTrips(t *testing.T) {
	var b strings.Builder
	if err := WriteSweepJSON(&b, sweepFixture()); err != nil {
		t.Fatal(err)
	}
	var back []engine.Result
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || back[0].Scenario != "5.2.1" || back[2].Err != "unknown mode" {
		t.Errorf("round trip lost data: %+v", back)
	}
	if v, ok := back[1].Metric("mc_probability"); !ok || v != 0.42 {
		t.Errorf("metric lost: %v %v", v, ok)
	}
}

func TestFigureWriteJSON(t *testing.T) {
	f := &Figure{Title: "demo", XName: "x", X: []float64{1, 2}}
	if err := f.Add("y", []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := f.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back Figure
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Title != "demo" || len(back.Series) != 1 || back.Series[0].Values[1] != 4 {
		t.Errorf("round trip lost data: %+v", back)
	}
}

// TestSweepDurationColumn: results carrying execution metadata gain an
// "ms" column (cache hits say so), results without stay metadata-free.
func TestSweepDurationColumn(t *testing.T) {
	plain := sweepFixture()
	if tbl := SweepTable("no meta", plain); strings.Contains(strings.Join(tbl.Headers, " "), "ms") {
		t.Errorf("meta-free sweep must not grow an ms column: %v", tbl.Headers)
	}

	timed := sweepFixture()
	timed[0].Meta = &engine.RunMeta{DurationMS: 12.5}
	timed[1].Meta = &engine.RunMeta{Cached: true}
	tbl := SweepTable("timed", timed)
	if !strings.Contains(strings.Join(tbl.Headers, " "), "ms") {
		t.Fatalf("timed sweep missing ms column: %v", tbl.Headers)
	}
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "12.5") || !strings.Contains(b.String(), "cached") {
		t.Errorf("duration cells lost:\n%s", b.String())
	}
	b.Reset()
	if err := WriteSweepCSV(&b, "", timed); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), ",ms") || !strings.Contains(b.String(), "12.5") {
		t.Errorf("CSV duration column lost:\n%s", b.String())
	}
}

func TestSweepThroughput(t *testing.T) {
	results := sweepFixture()
	results[0].Meta = &engine.RunMeta{DurationMS: 300}
	results[1].Meta = &engine.RunMeta{DurationMS: 500}
	results[2].Meta = &engine.RunMeta{Cached: true} // excluded from compute time
	line := SweepThroughput(results, 400*time.Millisecond)
	for _, want := range []string{"3 cells", "cells/sec", "800ms compute"} {
		if !strings.Contains(line, want) {
			t.Errorf("throughput line %q missing %q", line, want)
		}
	}
	if got := SweepThroughput(nil, time.Second); got != "" {
		t.Errorf("empty sweep throughput = %q, want empty", got)
	}
	if got := SweepThroughput(results, 0); got != "" {
		t.Errorf("zero wall throughput = %q, want empty", got)
	}
}

// TestTableCellsRouteThroughRegistry pins the engine wiring of Tables 2-3:
// every cell names the generic leaksim scenario with the paper's scale.
func TestTableCellsRouteThroughRegistry(t *testing.T) {
	for name, cells := range map[string][]engine.Cell{"t2": Table2Cells(), "t3": Table3Cells()} {
		if len(cells) != 5 {
			t.Fatalf("%s: cells = %d, want 5", name, len(cells))
		}
		for _, c := range cells {
			if c.Scenario != engine.ScenarioLeakSim {
				t.Errorf("%s: cell scenario = %q", name, c.Scenario)
			}
			if _, ok := engine.Lookup(c.Scenario); !ok {
				t.Errorf("%s: scenario %q not in registry", name, c.Scenario)
			}
		}
		if cells[0].Params.Mode != "absent" {
			t.Errorf("%s: beta0=0 row must run mode absent, got %q", name, cells[0].Params.Mode)
		}
	}
}
