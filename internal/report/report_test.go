package report

import (
	"context"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/sim"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "T", Headers: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "333") {
		t.Errorf("render output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestFigureCSV(t *testing.T) {
	f := &Figure{Title: "demo", XName: "x", X: []float64{1, 2}}
	if err := f.Add("y", []float64{10, 20}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("bad", []float64{1}); err == nil {
		t.Error("length mismatch must be rejected")
	}
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "# demo\nx,y\n1,10\n2,20\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
}

func TestFormatEpoch(t *testing.T) {
	if got := FormatEpoch(4685); !strings.Contains(got, "days") {
		t.Errorf("4685 epochs should render in days: %s", got)
	}
	if got := FormatEpoch(50); !strings.Contains(got, "hours") {
		t.Errorf("50 epochs should render in hours: %s", got)
	}
	if got := FormatEpoch(5); !strings.Contains(got, "minutes") {
		t.Errorf("5 epochs should render in minutes: %s", got)
	}
}

func TestFigure2Content(t *testing.T) {
	f := Figure2()
	if len(f.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(f.Series))
	}
	// Active stays 32; inactive hits zero (ejection) before the end.
	active := f.Series[0].Values
	inactive := f.Series[2].Values
	if active[0] != 32 || active[len(active)-1] != 32 {
		t.Error("active trajectory must stay at 32")
	}
	if inactive[0] != 32 || inactive[len(inactive)-1] != 0 {
		t.Error("inactive trajectory must start at 32 and end ejected")
	}
}

func TestFigure3Content(t *testing.T) {
	f := Figure3()
	if len(f.Series) != 5 {
		t.Fatalf("series = %d, want 5", len(f.Series))
	}
	for _, s := range f.Series {
		if s.Values[len(s.Values)-1] != 1 {
			t.Errorf("series %s must end at ratio 1 after ejection", s.Name)
		}
	}
}

func TestFigure6Content(t *testing.T) {
	f, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	slash := f.Series[0].Values
	semi := f.Series[1].Values
	for i := range slash {
		if slash[i] > semi[i]+1e-9 {
			t.Fatalf("x=%v: slashing curve above semi-active curve", f.X[i])
		}
	}
}

func TestFigure7Content(t *testing.T) {
	f := Figure7()
	// Symmetric corner: threshold_both at p0=0.5 is 0.2421.
	mid := len(f.X) / 2
	both := f.Series[2].Values
	if got := both[mid]; got < 0.24 || got > 0.245 {
		t.Errorf("threshold at p0=0.5 = %v, want ~0.2421", got)
	}
}

func TestFigure9Content(t *testing.T) {
	f := Figure9(4024)
	if len(f.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(f.Series))
	}
	cdf := f.Series[1].Values
	if cdf[0] != 0 || cdf[len(cdf)-1] != 1 {
		t.Errorf("censored CDF must go 0 -> 1, got %v -> %v", cdf[0], cdf[len(cdf)-1])
	}
}

func TestFigure10Content(t *testing.T) {
	f := Figure10()
	if len(f.Series) != 6 {
		t.Fatalf("series = %d, want 6", len(f.Series))
	}
	// The beta0=1/3 curve sits at 0.5 mid-leak.
	oneThird := f.Series[0].Values
	mid := len(oneThird) / 2
	if got := oneThird[mid]; got < 0.49 || got > 0.51 {
		t.Errorf("beta0=1/3 curve at mid-leak = %v, want ~0.5", got)
	}
}

func TestTables(t *testing.T) {
	t2, err := Table2(context.Background(), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 5 {
		t.Errorf("Table 2 rows = %d, want 5", len(t2.Rows))
	}
	t3, err := Table3(context.Background(), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 5 {
		t.Errorf("Table 3 rows = %d, want 5", len(t3.Rows))
	}
	var b strings.Builder
	if err := t2.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "4685") {
		t.Error("Table 2 must contain the paper's 4685 row")
	}
}

// TestFigure7SimMatchesAnalytic: the integer-simulation threshold boundary
// agrees with Equation 13's closed form wherever the threshold is below
// 1/3, and caps at 1/3 where the closed form exceeds it (an initial
// proportion of 1/3 crosses trivially).
func TestFigure7SimMatchesAnalytic(t *testing.T) {
	f, err := Figure7Sim(context.Background(), 5, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim := f.Series[0].Values
	an := f.Series[1].Values
	for i := range f.X {
		want := an[i]
		if want > 1.0/3.0 {
			want = 1.0 / 3.0
		}
		if d := sim[i] - want; d > 0.002 || d < -0.002 {
			t.Errorf("p0=%v: sim threshold %v vs expected %v", f.X[i], sim[i], want)
		}
	}
}

// TestFigure3SimTracksAnalytic: the integer-simulation ratio traces agree
// with Equation 5 before ejection and reach 1 after it.
func TestFigure3SimTracksAnalytic(t *testing.T) {
	f, err := Figure3Sim(context.Background(), 1000, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 5 {
		t.Fatalf("series = %d, want 5", len(f.Series))
	}
	for _, s := range f.Series {
		if got := s.Values[len(s.Values)-1]; got != 1 {
			t.Errorf("series %s final ratio = %v, want 1 after ejection", s.Name, got)
		}
	}
}

func TestTimeline(t *testing.T) {
	history := []sim.EpochMetrics{
		{Epoch: 1, MinFinalized: 0, MaxFinalized: 0, MaxJustified: 0, InLeak: 0, MinTotalStake: 512_000_000_000, MaxByzProportion: 0.25},
		{Epoch: 2, MinFinalized: 0, MaxFinalized: 1, MaxJustified: 1, InLeak: 2, MinTotalStake: 511_000_000_000, MaxByzProportion: 0.26},
	}
	f := Timeline(history)
	if len(f.Series) != 6 {
		t.Fatalf("series = %d, want 6", len(f.Series))
	}
	if f.X[1] != 2 {
		t.Errorf("x = %v", f.X)
	}
	if f.Series[1].Values[1] != 1 {
		t.Errorf("max_finalized[1] = %v, want 1", f.Series[1].Values[1])
	}
	if f.Series[4].Values[0] != 512 {
		t.Errorf("stake[0] = %v ETH, want 512", f.Series[4].Values[0])
	}
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "views_in_leak") {
		t.Error("timeline CSV header incomplete")
	}
}

func TestFigure10MonteCarlo(t *testing.T) {
	f, err := Figure10MonteCarlo(context.Background(), 1.0/3.0, 200, 2, 5, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mc := f.Series[0].Values
	eq := f.Series[1].Values
	for i := range mc {
		if diff := mc[i] - eq[i]; diff > 0.15 || diff < -0.15 {
			t.Errorf("x=%v: MC %v vs Eq24 %v", f.X[i], mc[i], eq[i])
		}
	}
}
