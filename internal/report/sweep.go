package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/engine"
)

// sweepColumns derives the column layout of a result set: which parameter
// columns are populated, and the ordered union of metric names (first
// appearance wins, so a homogeneous sweep keeps its scenario's order).
type sweepColumns struct {
	hasBeta0, hasMode, hasSeed, hasN, hasHorizon, hasOutcome, hasErr bool
	hasRate, hasGST                                                  bool
	hasDuration, hasEps, hasWarm                                     bool
	metrics                                                          []string
}

func columnsOf(results []engine.Result) sweepColumns {
	var c sweepColumns
	seen := map[string]bool{}
	for _, r := range results {
		p := r.Params
		c.hasBeta0 = c.hasBeta0 || p.Beta0 != 0
		c.hasMode = c.hasMode || p.Mode != ""
		c.hasSeed = c.hasSeed || p.Seed != 0
		c.hasN = c.hasN || p.N != 0
		c.hasHorizon = c.hasHorizon || p.Horizon != 0
		c.hasRate = c.hasRate || p.Rate != 0
		c.hasGST = c.hasGST || p.GST != 0
		c.hasOutcome = c.hasOutcome || r.Outcome != ""
		c.hasErr = c.hasErr || r.Err != ""
		c.hasDuration = c.hasDuration || (r.Meta != nil && (r.Meta.DurationMS != 0 || r.Meta.Cached))
		c.hasEps = c.hasEps || (r.Meta != nil && r.Meta.EpochsPerSec != 0)
		c.hasWarm = c.hasWarm || (r.Meta != nil && r.Meta.Warm != nil)
		for _, m := range r.Metrics {
			if !seen[m.Name] {
				seen[m.Name] = true
				c.metrics = append(c.metrics, m.Name)
			}
		}
	}
	return c
}

func (c sweepColumns) headers() []string {
	h := []string{"scenario", "p0"}
	if c.hasBeta0 {
		h = append(h, "beta0")
	}
	if c.hasMode {
		h = append(h, "mode")
	}
	if c.hasSeed {
		h = append(h, "seed")
	}
	if c.hasN {
		h = append(h, "n")
	}
	if c.hasHorizon {
		h = append(h, "horizon")
	}
	if c.hasRate {
		h = append(h, "rate")
	}
	if c.hasGST {
		h = append(h, "gst")
	}
	if c.hasOutcome {
		h = append(h, "outcome")
	}
	h = append(h, c.metrics...)
	if c.hasDuration {
		h = append(h, "ms")
	}
	if c.hasEps {
		h = append(h, "ep/s")
	}
	if c.hasWarm {
		h = append(h, "warm")
	}
	if c.hasErr {
		h = append(h, "error")
	}
	return h
}

func (c sweepColumns) row(r engine.Result, format func(float64) string) []string {
	p := r.Params
	row := []string{r.Scenario, fmt.Sprintf("%.4g", p.P0)}
	if c.hasBeta0 {
		row = append(row, fmt.Sprintf("%.4g", p.Beta0))
	}
	if c.hasMode {
		row = append(row, p.Mode)
	}
	if c.hasSeed {
		row = append(row, fmt.Sprintf("%d", p.Seed))
	}
	if c.hasN {
		row = append(row, fmt.Sprintf("%d", p.N))
	}
	if c.hasHorizon {
		row = append(row, fmt.Sprintf("%d", p.Horizon))
	}
	if c.hasRate {
		row = append(row, fmt.Sprintf("%.4g", p.Rate))
	}
	if c.hasGST {
		row = append(row, fmt.Sprintf("%d", p.GST))
	}
	if c.hasOutcome {
		row = append(row, r.Outcome)
	}
	for _, name := range c.metrics {
		if v, ok := r.Metric(name); ok {
			row = append(row, format(v))
		} else {
			row = append(row, "")
		}
	}
	if c.hasDuration {
		cell := ""
		if r.Meta != nil {
			switch {
			case r.Meta.Cached:
				cell = "cached"
			case r.Meta.DurationMS != 0:
				cell = fmt.Sprintf("%.3g", r.Meta.DurationMS)
			}
		}
		row = append(row, cell)
	}
	if c.hasEps {
		cell := ""
		if r.Meta != nil && r.Meta.EpochsPerSec != 0 {
			cell = fmt.Sprintf("%.4g", r.Meta.EpochsPerSec)
		}
		row = append(row, cell)
	}
	if c.hasWarm {
		cell := ""
		if r.Meta != nil && r.Meta.Warm != nil {
			if wm := r.Meta.Warm; wm.Hit {
				cell = fmt.Sprintf("+%dep", wm.EpochsSaved)
			} else {
				cell = "cold"
			}
		}
		row = append(row, cell)
	}
	if c.hasErr {
		row = append(row, r.Err)
	}
	return row
}

// SweepTable renders sweep results as a fixed-width ASCII table. Parameter
// columns that are zero throughout the sweep are omitted; metric columns
// are the ordered union across all results.
func SweepTable(title string, results []engine.Result) *Table {
	c := columnsOf(results)
	t := &Table{Title: title, Headers: c.headers()}
	for _, r := range results {
		t.AddRow(c.row(r, func(v float64) string { return fmt.Sprintf("%.6g", v) })...)
	}
	return t
}

// WriteSweepCSV emits sweep results as CSV with the same column layout as
// SweepTable.
func WriteSweepCSV(w io.Writer, title string, results []engine.Result) error {
	c := columnsOf(results)
	if title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", title); err != nil {
			return err
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(c.headers()); err != nil {
		return err
	}
	for _, r := range results {
		row := c.row(r, func(v float64) string { return fmt.Sprintf("%g", v) })
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSweepJSON emits sweep results as an indented JSON array of the
// engine's structured Result records (curves included).
func WriteSweepJSON(w io.Writer, results []engine.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// SweepThroughput summarizes a sweep's pacing: cell count, wall-clock
// time, cells/sec, and the cumulative per-cell compute time (which exceeds
// the wall clock on a parallel sweep). Cells without duration metadata
// (cache hits, unfinished cells) count toward the total but not the
// compute time. It returns "" for an empty result set or a non-positive
// wall clock.
func SweepThroughput(results []engine.Result, wall time.Duration) string {
	if len(results) == 0 || wall <= 0 {
		return ""
	}
	var computeMS float64
	for _, r := range results {
		if r.Meta != nil && !r.Meta.Cached {
			computeMS += r.Meta.DurationMS
		}
	}
	rate := float64(len(results)) / wall.Seconds()
	return fmt.Sprintf("%d cells in %s (%.1f cells/sec, %s compute)",
		len(results), wall.Round(time.Millisecond),
		rate, (time.Duration(computeMS * float64(time.Millisecond))).Round(time.Millisecond))
}
