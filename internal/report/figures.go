package report

import (
	"context"
	"fmt"

	"repro/internal/analytic"
	"repro/internal/engine"
	"repro/internal/mathx"
	"repro/internal/sim"
)

// Figure2 regenerates the paper's Figure 2: the three stake trajectories
// (active, semi-active, inactive) over the leak, with ejection applied at
// each law's crossing of 16.75 ETH.
func Figure2() *Figure {
	x := mathx.Linspace(0, 8000, 801)
	f := &Figure{Title: "Figure 2: stake trajectories during an inactivity leak", XName: "epoch", X: x}
	active := make([]float64, len(x))
	semi := make([]float64, len(x))
	inactive := make([]float64, len(x))
	semiEject := analytic.SemiActiveEjectionCrossing()
	inactiveEject := analytic.InactiveEjectionCrossing()
	for i, t := range x {
		active[i] = analytic.StakeActive(t)
		if t < semiEject {
			semi[i] = analytic.StakeSemiActive(t)
		}
		if t < inactiveEject {
			inactive[i] = analytic.StakeInactive(t)
		}
	}
	mustAdd(f, "active", active)
	mustAdd(f, "semi_active", semi)
	mustAdd(f, "inactive", inactive)
	return f
}

// Figure3 regenerates Figure 3: the active-stake ratio during a leak for
// p0 in {0.2, 0.3, 0.4, 0.5, 0.6}, paper-anchored ejection at 4685.
func Figure3() *Figure {
	x := mathx.Linspace(0, 8000, 801)
	f := &Figure{Title: "Figure 3: ratio of active validators vs p0", XName: "epoch", X: x}
	params := analytic.PaperParams()
	for _, p0 := range []float64{0.6, 0.5, 0.4, 0.3, 0.2} {
		ys := make([]float64, len(x))
		for i, t := range x {
			ys[i] = params.ActiveRatioHonest(t, p0)
		}
		mustAdd(f, fmt.Sprintf("p0_%.1f", p0), ys)
	}
	return f
}

// Figure3Sim overlays the exact integer simulation on Figure 3's grid: for
// each p0, the per-epoch active-stake ratio of the branch, sampled every
// `every` epochs. The p0 cells run per opt.Workers
// (<= 0 = all CPUs).
func Figure3Sim(ctx context.Context, every int, opt engine.Options) (*Figure, error) {
	if every <= 0 {
		every = 10
	}
	const horizon = 8000
	nSamples := horizon / every
	x := make([]float64, nSamples)
	for i := range x {
		x[i] = float64((i + 1) * every)
	}
	f := &Figure{Title: "Figure 3 (integer simulation): ratio of active validators", XName: "epoch", X: x}
	p0s := []float64{0.6, 0.5, 0.4, 0.3, 0.2}
	cells := make([]engine.Cell, 0, len(p0s))
	for _, p0 := range p0s {
		cells = append(cells, engine.Cell{Scenario: engine.ScenarioLeakSim, Params: engine.Params{
			P0: p0, Mode: "absent-delay", N: 10000, Horizon: horizon, Sample: every,
		}})
	}
	results := engine.SweepContext(ctx, cells, opt)
	if err := engine.FirstError(results); err != nil {
		return nil, fmt.Errorf("report: figure 3 sim: %w", err)
	}
	for i, p0 := range p0s {
		ys := make([]float64, nSamples)
		for j := range ys {
			if j < len(results[i].Curve) {
				ys[j] = results[i].Curve[j].Y
			} else {
				ys[j] = 1
			}
		}
		if err := f.Add(fmt.Sprintf("p0_%.1f", p0), ys); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Figure7Sim overlays the integer simulation on Figure 7: for each p0 on
// the grid, the minimal beta0 (found by bisection over full scenario runs)
// whose Byzantine proportion crosses 1/3 on both branches. The per-p0
// bisections run per opt.Workers (<= 0 = all CPUs).
func Figure7Sim(ctx context.Context, points int, opt engine.Options) (*Figure, error) {
	if points <= 0 {
		points = 9
	}
	x := mathx.Linspace(0.1, 0.9, points)
	f := &Figure{Title: "Figure 7 (integer simulation): minimal beta0 crossing 1/3 on both branches", XName: "p0", X: x}
	cells := make([]engine.Cell, 0, len(x))
	for _, p0 := range x {
		cells = append(cells, engine.Cell{Scenario: engine.ScenarioFig7Search, Params: engine.Params{
			P0: p0, N: 10000, Horizon: 9000,
		}})
	}
	results := engine.SweepContext(ctx, cells, opt)
	if err := engine.FirstError(results); err != nil {
		return nil, fmt.Errorf("report: figure 7 sim: %w", err)
	}
	ys := make([]float64, len(x))
	analyticYs := make([]float64, len(x))
	for i, r := range results {
		ys[i], _ = r.Metric("sim_threshold")
		analyticYs[i], _ = r.Metric("analytic_threshold")
	}
	if err := f.Add("sim_threshold_both_branches", ys); err != nil {
		return nil, err
	}
	if err := f.Add("analytic_threshold_both_branches", analyticYs); err != nil {
		return nil, err
	}
	return f, nil
}

// Figure6 regenerates Figure 6: the conflicting-finalization epoch vs beta0
// for the slashing and non-slashing behaviors (p0 = 0.5).
func Figure6() (*Figure, error) {
	x := mathx.Linspace(0, 0.33, 100)
	f := &Figure{Title: "Figure 6: time to conflicting finalization vs beta0", XName: "beta0", X: x}
	params := analytic.PaperParams()
	slash := make([]float64, len(x))
	semi := make([]float64, len(x))
	for i, b := range x {
		if b == 0 {
			slash[i] = params.ConflictEpochHonest(0.5)
			semi[i] = slash[i]
			continue
		}
		slash[i] = params.ConflictEpochSlashing(0.5, b)
		s, err := params.ConflictEpochSemiActive(0.5, b)
		if err != nil {
			return nil, fmt.Errorf("report: figure 6 at beta0=%v: %w", b, err)
		}
		semi[i] = s
	}
	mustAdd(f, "with_slashing", slash)
	mustAdd(f, "without_slashing", semi)
	return f, nil
}

// Figure7 regenerates Figure 7: for each p0, the minimal beta0 whose
// maximum proportion reaches 1/3 on the p0 branch and on the 1-p0 branch;
// the region above both curves is where Byzantine validators can exceed
// 1/3 on both branches simultaneously.
func Figure7() *Figure {
	x := mathx.Linspace(0.01, 0.99, 99)
	f := &Figure{Title: "Figure 7: (p0, beta0) pairs with beta_max >= 1/3", XName: "p0", X: x}
	params := analytic.PaperParams()
	own := make([]float64, len(x))
	other := make([]float64, len(x))
	both := make([]float64, len(x))
	for i, p0 := range x {
		own[i] = params.ThresholdBeta0(p0)
		other[i] = params.ThresholdBeta0(1 - p0)
		both[i] = own[i]
		if other[i] > both[i] {
			both[i] = other[i]
		}
	}
	mustAdd(f, "threshold_branch_p0", own)
	mustAdd(f, "threshold_branch_1_minus_p0", other)
	mustAdd(f, "threshold_both_branches", both)
	return f
}

// Figure9 regenerates Figure 9: the censored stake distribution of an
// honest validator under the bouncing attack at the given epoch
// (the paper uses t = 4024).
func Figure9(t float64) *Figure {
	m := analytic.BounceModel{P0: 0.5}
	d := m.Distribution(t)
	x := mathx.Linspace(0, 33, 331)
	f := &Figure{Title: fmt.Sprintf("Figure 9: stake distribution at t=%g", t), XName: "stake_eth", X: x}
	density := make([]float64, len(x))
	cdf := make([]float64, len(x))
	for i, s := range x {
		density[i] = d.Interior(s)
		cdf[i] = m.CensoredStakeCDF(s, t)
	}
	mustAdd(f, "interior_density", density)
	mustAdd(f, "censored_cdf", cdf)
	atoms := make([]float64, len(x))
	for i, s := range x {
		switch {
		case s == 0:
			atoms[i] = d.AtomEjected
		case s >= 32 && (i == 0 || x[i-1] < 32):
			atoms[i] = d.AtomCapped
		}
	}
	mustAdd(f, "atom_mass", atoms)
	return f
}

// Figure10 regenerates Figure 10: the Equation 24 probability of the
// Byzantine proportion exceeding 1/3 over time for several beta0.
func Figure10() *Figure {
	x := mathx.Linspace(0, 8000, 801)
	f := &Figure{Title: "Figure 10: P[beta > 1/3] during the bouncing attack", XName: "epoch", X: x}
	m := analytic.BounceModel{P0: 0.5}
	params := analytic.PaperParams()
	for _, beta0 := range []float64{1.0 / 3.0, 0.3333, 0.333, 0.33, 0.329, 0.3} {
		ys := make([]float64, len(x))
		for i, t := range x {
			if t == 0 {
				continue
			}
			ys[i] = m.ExceedProbability(t, beta0, params)
		}
		mustAdd(f, fmt.Sprintf("beta0_%.4f", beta0), ys)
	}
	return f
}

// BounceMCSweep runs `runs` independent bouncing-attack trajectories (one
// bounce-mc engine cell per derived seed, fanned out per opt.Workers) and
// returns the engine results plus the run-averaged exceed-probability
// curve on the epoch grid sample, 2*sample, ..., horizon.
func BounceMCSweep(ctx context.Context, p0, beta0 float64, n, runs int, seed int64, sample, horizon int, opt engine.Options) ([]engine.Result, []float64, error) {
	if runs <= 0 || sample <= 0 || horizon < sample {
		return nil, nil, fmt.Errorf("report: bounce mc sweep: runs=%d sample=%d horizon=%d", runs, sample, horizon)
	}
	// Zero would silently resolve to the scenario default inside the
	// engine while the analytic overlay uses the raw value.
	if p0 <= 0 || p0 >= 1 || beta0 <= 0 || beta0 >= 1 {
		return nil, nil, fmt.Errorf("report: bounce mc sweep: p0=%v beta0=%v, want in (0, 1)", p0, beta0)
	}
	g := engine.BounceMCGrid(p0, beta0, n, runs, seed, sample, horizon)
	results := engine.SweepGridContext(ctx, g, opt)
	if err := engine.FirstError(results); err != nil {
		return nil, nil, err
	}
	nPoints := horizon / sample
	avg := make([]float64, nPoints)
	for _, r := range results {
		for _, pt := range r.Curve {
			if i := int(pt.X)/sample - 1; i >= 0 && i < nPoints {
				avg[i] += pt.Y / float64(runs)
			}
		}
	}
	return results, avg, nil
}

// Figure10MonteCarlo overlays the exact integer Monte-Carlo estimate on
// Figure 10's grid for one beta0: `runs` independent trajectories (one
// sweep cell each, seeds derived per cell) averaged pointwise, run
// per opt.Workers (<= 0 = all CPUs).
func Figure10MonteCarlo(ctx context.Context, beta0 float64, nHonest, runs int, seed int64, opt engine.Options) (*Figure, error) {
	const sample, horizon = 1000, 7000
	_, probs, err := BounceMCSweep(ctx, 0.5, beta0, nHonest, runs, seed, sample, horizon, opt)
	if err != nil {
		return nil, fmt.Errorf("report: figure 10 monte carlo: %w", err)
	}
	nPoints := horizon / sample
	x := make([]float64, nPoints)
	for i := range x {
		x[i] = float64((i + 1) * sample)
	}
	analyticYs := make([]float64, nPoints)
	m := analytic.BounceModel{P0: 0.5}
	params := analytic.PaperParams()
	for i, e := range x {
		analyticYs[i] = m.ExceedProbability(e, beta0, params)
	}
	f := &Figure{
		Title: fmt.Sprintf("Figure 10 (Monte-Carlo vs Equation 24) beta0=%g", beta0),
		XName: "epoch", X: x,
	}
	mustAdd(f, "monte_carlo", probs)
	mustAdd(f, "equation_24", analyticYs)
	return f, nil
}

// Table1 renders the scenario overview (paper Table 1) with both analytic
// and simulated outcomes, running the five scenario cells per opt.Workers
// (<= 0 = all CPUs).
func Table1(ctx context.Context, seed int64, opt engine.Options) (*Table, error) {
	results := engine.SweepContext(ctx, engine.Table1Cells(seed), opt)
	if err := engine.FirstError(results); err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Table 1: scenarios and outcomes",
		Headers: []string{"scenario", "name", "p0", "beta0", "outcome", "analytic", "simulated"},
	}
	for _, r := range results {
		name := ""
		if s, ok := engine.Lookup(r.Scenario); ok {
			name = s.Description()
		}
		an, _ := r.Metric("analytic_epoch")
		simEpoch, _ := r.Metric("sim_epoch")
		t.AddRow(r.Scenario, name,
			fmt.Sprintf("%.2f", r.Params.P0),
			fmt.Sprintf("%.4f", r.Params.Beta0),
			r.Outcome,
			fmt.Sprintf("%.1f", an),
			fmt.Sprintf("%d", int(simEpoch)),
		)
	}
	return t, nil
}

// tableBetas are the beta0 rows of the paper's Tables 2-3.
var tableBetas = []float64{0, 0.1, 0.15, 0.2, 0.33}

// tableCells builds the Tables 2-3 sweep: one full-scale leaksim cell per
// beta0 row, Byzantine strategy `mode` (absent at beta0 = 0).
func tableCells(mode string) []engine.Cell {
	cells := make([]engine.Cell, 0, len(tableBetas))
	for _, b := range tableBetas {
		m := mode
		if b == 0 {
			m = "absent"
		}
		cells = append(cells, engine.Cell{Scenario: engine.ScenarioLeakSim, Params: engine.Params{
			P0: 0.5, Beta0: b, Mode: m, N: 10000, Horizon: 9000,
		}})
	}
	return cells
}

// Table2Cells lists the engine sweep behind Table 2 (double voting).
func Table2Cells() []engine.Cell { return tableCells("double") }

// Table3Cells lists the engine sweep behind Table 3 (semi-active).
func Table3Cells() []engine.Cell { return tableCells("semi") }

// Table2 renders the paper's Table 2 (slashing behavior): paper value,
// continuous model, and exact integer simulation per beta0. The beta0
// cells run per opt.Workers (<= 0 = all CPUs).
func Table2(ctx context.Context, opt engine.Options) (*Table, error) {
	results := engine.SweepContext(ctx, Table2Cells(), opt)
	if err := engine.FirstError(results); err != nil {
		return nil, fmt.Errorf("report: table 2: %w", err)
	}
	params := analytic.PaperParams()
	paper := map[float64]int{0: 4685, 0.1: 4066, 0.15: 3622, 0.2: 3107, 0.33: 502}
	t := &Table{
		Title:   "Table 2: epochs to conflicting finalization, double-voting Byzantine (p0=0.5)",
		Headers: []string{"beta0", "paper", "analytic (Eq 9)", "integer sim"},
	}
	for i, b := range tableBetas {
		var an float64
		if b == 0 {
			an = params.ConflictEpochHonest(0.5)
		} else {
			an = params.ConflictEpochSlashing(0.5, b)
		}
		simEpoch, _ := results[i].Metric("threshold_epoch_b")
		t.AddRow(
			fmt.Sprintf("%.2f", b),
			fmt.Sprintf("%d", paper[b]),
			fmt.Sprintf("%d", analytic.PaperTableEpoch(an)),
			fmt.Sprintf("%d", int(simEpoch)),
		)
	}
	return t, nil
}

// Table3 renders the paper's Table 3 (semi-active behavior), with the
// beta0 cells run per opt.Workers (<= 0 = all CPUs).
func Table3(ctx context.Context, opt engine.Options) (*Table, error) {
	results := engine.SweepContext(ctx, Table3Cells(), opt)
	if err := engine.FirstError(results); err != nil {
		return nil, fmt.Errorf("report: table 3: %w", err)
	}
	params := analytic.PaperParams()
	paper := map[float64]int{0: 4685, 0.1: 4221, 0.15: 3819, 0.2: 3328, 0.33: 556}
	t := &Table{
		Title:   "Table 3: epochs to conflicting finalization, semi-active Byzantine (p0=0.5)",
		Headers: []string{"beta0", "paper", "analytic (Eq 10)", "integer sim"},
	}
	for i, b := range tableBetas {
		var an float64
		var err error
		if b == 0 {
			an = params.ConflictEpochHonest(0.5)
		} else {
			an, err = params.ConflictEpochSemiActive(0.5, b)
			if err != nil {
				return nil, fmt.Errorf("report: table 3 at beta0=%v: %w", b, err)
			}
		}
		simEpoch, _ := results[i].Metric("threshold_epoch_b")
		t.AddRow(
			fmt.Sprintf("%.2f", b),
			fmt.Sprintf("%d", paper[b]),
			fmt.Sprintf("%d", analytic.PaperTableEpoch(an)),
			fmt.Sprintf("%d", int(simEpoch)),
		)
	}
	return t, nil
}

// Timeline renders a protocol-simulation metrics history (as collected by
// sim.Recorder) as a figure: finality bounds, justification, leak spread,
// and stake drain per epoch.
func Timeline(history []sim.EpochMetrics) *Figure {
	x := make([]float64, len(history))
	minFin := make([]float64, len(history))
	maxFin := make([]float64, len(history))
	maxJust := make([]float64, len(history))
	inLeak := make([]float64, len(history))
	minStake := make([]float64, len(history))
	byzProp := make([]float64, len(history))
	for i, m := range history {
		x[i] = float64(m.Epoch)
		minFin[i] = float64(m.MinFinalized)
		maxFin[i] = float64(m.MaxFinalized)
		maxJust[i] = float64(m.MaxJustified)
		inLeak[i] = float64(m.InLeak)
		minStake[i] = m.MinTotalStake.ETH()
		byzProp[i] = m.MaxByzProportion
	}
	f := &Figure{Title: "protocol simulation timeline", XName: "epoch", X: x}
	mustAdd(f, "min_finalized", minFin)
	mustAdd(f, "max_finalized", maxFin)
	mustAdd(f, "max_justified", maxJust)
	mustAdd(f, "views_in_leak", inLeak)
	mustAdd(f, "min_total_stake_eth", minStake)
	mustAdd(f, "max_byz_proportion", byzProp)
	return f
}

func mustAdd(f *Figure, name string, values []float64) {
	if err := f.Add(name, values); err != nil {
		// Series lengths are fixed by construction in this package; a
		// mismatch is a programming error.
		panic(err)
	}
}
