// Package report renders the reproduction's tables and figure data series:
// fixed-width ASCII tables for terminal output, CSV series matching each
// figure of the paper (so that any plotting tool regenerates the visuals),
// JSON for machine consumption, and tabular/CSV/JSON views of engine sweep
// results (sweep.go).
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a simple fixed-width table renderer.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series is one named column of figure data.
type Series struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// Figure is a set of series over a shared X column, rendered as CSV or
// JSON.
type Figure struct {
	Title  string    `json:"title"`
	XName  string    `json:"x_name"`
	X      []float64 `json:"x"`
	Series []Series  `json:"series"`
}

// Add appends a series; its length must match X.
func (f *Figure) Add(name string, values []float64) error {
	if len(values) != len(f.X) {
		return fmt.Errorf("report: series %q has %d values for %d x points",
			name, len(values), len(f.X))
	}
	f.Series = append(f.Series, Series{Name: name, Values: values})
	return nil
}

// WriteCSV emits the figure as CSV with a comment header line.
func (f *Figure) WriteCSV(w io.Writer) error {
	var b strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&b, "# %s\n", f.Title)
	}
	b.WriteString(f.XName)
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	for i, x := range f.X {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			fmt.Fprintf(&b, ",%g", s.Values[i])
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON emits the figure as an indented JSON object (title, x name,
// x values, and named series).
func (f *Figure) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// FormatEpoch renders an epoch count with its rough wall-clock duration
// (an epoch is 6.4 minutes), as the paper does ("about 3 weeks").
func FormatEpoch(epochs float64) string {
	minutes := epochs * 6.4
	switch {
	case minutes >= 2*24*60:
		return fmt.Sprintf("%.0f epochs (~%.1f days)", epochs, minutes/(24*60))
	case minutes >= 2*60:
		return fmt.Sprintf("%.0f epochs (~%.1f hours)", epochs, minutes/60)
	default:
		return fmt.Sprintf("%.0f epochs (~%.0f minutes)", epochs, minutes)
	}
}
