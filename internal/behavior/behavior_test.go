package behavior

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/types"
)

// byzConfig builds the standard two-branch attack configuration: honest
// validators 0..23 split 12/12 across partitions, Byzantine validators
// 24..31 (beta0 = 0.25), compressed spec (quotient 2^10).
func byzConfig(seed int64, adversary sim.Adversary) sim.Config {
	return sim.Config{
		Validators: 32,
		Spec:       types.CompressedSpec(1 << 16),
		GST:        1 << 30,
		Delay:      1,
		Seed:       seed,
		Byzantine:  []types.ValidatorIndex{24, 25, 26, 27, 28, 29, 30, 31},
		PartitionOf: func(v types.ValidatorIndex) int {
			if v < 12 {
				return 0
			}
			return 1
		},
		Adversary: adversary,
	}
}

// runUntilConflict steps epoch by epoch until conflicting finalization or
// the limit, returning the epoch of the violation (0 = none).
func runUntilConflict(t *testing.T, s *sim.Simulation, limit int) types.Epoch {
	t.Helper()
	for epoch := 1; epoch <= limit; epoch++ {
		if err := s.RunEpochs(1); err != nil {
			t.Fatal(err)
		}
		if v := s.CheckFinalitySafety(); v != nil {
			return types.Epoch(epoch)
		}
	}
	return 0
}

// honestBaselineConflictEpoch measures Scenario 5.1 (no Byzantine) with the
// same honest population for comparison.
func honestBaselineConflictEpoch(t *testing.T) types.Epoch {
	t.Helper()
	cfg := sim.Config{
		Validators: 24,
		Spec:       types.CompressedSpec(1 << 16),
		GST:        1 << 30,
		Delay:      1,
		Seed:       7,
		PartitionOf: func(v types.ValidatorIndex) int {
			if v < 12 {
				return 0
			}
			return 1
		},
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := runUntilConflict(t, s, 45)
	if e == 0 {
		t.Fatal("honest baseline never produced conflicting finalization")
	}
	return e
}

// TestScenario521DoubleVoterAcceleratesConflict reproduces Scenario 5.2.1:
// Byzantine validators double-voting on both branches make conflicting
// finalization happen substantially earlier than the honest-only baseline,
// and they remain undetected while the partition lasts.
func TestScenario521DoubleVoterAcceleratesConflict(t *testing.T) {
	adv := &DoubleVoter{Reps: [2]types.ValidatorIndex{0, 12}}
	s, err := sim.New(byzConfig(7, adv))
	if err != nil {
		t.Fatal(err)
	}
	conflictEpoch := runUntilConflict(t, s, 45)
	if conflictEpoch == 0 {
		t.Fatal("double-voting adversary never produced conflicting finalization")
	}
	baseline := honestBaselineConflictEpoch(t)
	if conflictEpoch >= baseline {
		t.Errorf("double voting must accelerate the safety loss: byz %d vs honest %d",
			conflictEpoch, baseline)
	}
	t.Logf("conflicting finalization: with double-voting %d, honest baseline %d", conflictEpoch, baseline)

	// Before GST no honest view can prove the equivocation: each
	// partition saw only one face.
	for _, h := range s.HonestIndices() {
		if len(s.View(h).SlashingEvidence()) != 0 {
			t.Fatalf("view of validator %d detected slashing before GST", h)
		}
		for _, b := range s.Cfg.Byzantine {
			if !s.View(h).Registry.InSet(b) {
				t.Fatalf("Byzantine %d slashed before GST in validator %d's view", b, h)
			}
		}
	}
}

// TestScenario521UnderMessageLoss: the attack tolerates a lossy network —
// retransmissions preserve the vote flow and the conflicting finalization
// still occurs.
func TestScenario521UnderMessageLoss(t *testing.T) {
	adv := &DoubleVoter{Reps: [2]types.ValidatorIndex{0, 12}}
	cfg := byzConfig(7, adv)
	cfg.DropRate = 0.1
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	conflictEpoch := runUntilConflict(t, s, 45)
	if conflictEpoch == 0 {
		t.Fatal("10% message loss must not defeat the attack")
	}
	t.Logf("conflicting finalization under 10%% loss at epoch %d", conflictEpoch)
}

// TestScenario521WithShuffledDuties: per-epoch committee shuffling changes
// nothing about the attack's viability.
func TestScenario521WithShuffledDuties(t *testing.T) {
	adv := &DoubleVoter{Reps: [2]types.ValidatorIndex{0, 12}}
	cfg := byzConfig(7, adv)
	cfg.ShuffledDuties = true
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	conflictEpoch := runUntilConflict(t, s, 45)
	if conflictEpoch == 0 {
		t.Fatal("shuffled duties must not defeat the attack")
	}
}

// TestScenario521SlashingAfterGST: once the partition heals, the withheld
// faces cross over, honest views assemble double-vote evidence, and the
// Byzantine validators are slashed — but the conflicting finalization has
// already happened ("the harm is already done").
func TestScenario521SlashingAfterGST(t *testing.T) {
	adv := &DoubleVoter{Reps: [2]types.ValidatorIndex{0, 12}}
	cfg := byzConfig(11, adv)
	cfg.GST = 20 * 32 // heal at epoch 20
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunEpochs(23); err != nil {
		t.Fatal(err)
	}
	for _, h := range s.HonestIndices() {
		if len(s.View(h).SlashingEvidence()) == 0 {
			t.Errorf("view of validator %d has no slashing evidence after GST", h)
		}
		for _, b := range s.Cfg.Byzantine {
			if s.View(h).Registry.InSet(b) {
				t.Errorf("Byzantine %d still in set after GST in validator %d's view", b, h)
			}
		}
	}
}

// TestAdversaryCohortOracleEquivalence extends the kernel's equivalence
// contract to adversarial runs, across BOTH oracle axes: the batched
// cohort adversaries produce bit-identical EpochMetrics histories in the
// default view-cohort mode and the per-validator oracle mode, and on both
// the proto-array fork-choice engine and the map-based oracle engine.
func TestAdversaryCohortOracleEquivalence(t *testing.T) {
	build := map[string]func() sim.Adversary{
		"double-voter": func() sim.Adversary { return &DoubleVoter{Reps: [2]types.ValidatorIndex{0, 12}} },
		"semi-active":  func() sim.Adversary { return &SemiActive{Reps: [2]types.ValidatorIndex{0, 12}} },
		"semi-active finalizing": func() sim.Adversary {
			return &SemiActive{Reps: [2]types.ValidatorIndex{0, 12}, StayFrom: 22}
		},
	}
	modes := []struct {
		name                           string
		perValidator, oracleForkChoice bool
	}{
		{"cohort+proto-array", false, false},
		{"cohort+map-oracle", false, true},
		{"per-validator+proto-array", true, false},
		{"per-validator+map-oracle", true, true},
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			histories := make([][]sim.EpochMetrics, len(modes))
			for i, mode := range modes {
				rec := &sim.Recorder{}
				cfg := byzConfig(13, mk())
				cfg.PerValidatorViews = mode.perValidator
				cfg.OracleForkChoice = mode.oracleForkChoice
				cfg.OnEpoch = rec.Hook
				s, err := sim.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := s.RunEpochs(26); err != nil {
					t.Fatal(err)
				}
				histories[i] = rec.History
			}
			for i := 1; i < len(modes); i++ {
				if reflect.DeepEqual(histories[0], histories[i]) {
					continue
				}
				for e := range histories[0] {
					if !reflect.DeepEqual(histories[0][e], histories[i][e]) {
						t.Fatalf("epoch %d diverges:\n  %s: %+v\n  %s: %+v",
							histories[0][e].Epoch, modes[0].name, histories[0][e], modes[i].name, histories[i][e])
					}
				}
				t.Fatalf("%s and %s histories diverge in length", modes[0].name, modes[i].name)
			}
		})
	}
}

// TestScenario523SemiActiveCrossesOneThird reproduces Scenario 5.2.3:
// semi-active Byzantine validators (beta0 = 0.25 > the 0.2421 threshold)
// delay finalization and wait for the honest inactive validators to be
// ejected, at which point their stake proportion jumps above one-third on
// BOTH branch views — without ever committing a slashable offense. The
// test tracks the proportion per epoch and stops at the peak (the paper's
// beta_max moment, Equation 13); past it the decayed Byzantine stake lets
// honest actives reach a 2/3 quorum on their own.
func TestScenario523SemiActiveCrossesOneThird(t *testing.T) {
	adv := &SemiActive{Reps: [2]types.ValidatorIndex{0, 12}} // StayFrom 0: never finalize
	s, err := sim.New(byzConfig(13, adv))
	if err != nil {
		t.Fatal(err)
	}
	maxProp := [2]float64{}
	crossedEpoch := types.Epoch(0)
	for epoch := 1; epoch <= 32; epoch++ {
		if err := s.RunEpochs(1); err != nil {
			t.Fatal(err)
		}
		a := s.ByzantineProportionOn(0)
		b := s.ByzantineProportionOn(12)
		if a > maxProp[0] {
			maxProp[0] = a
		}
		if b > maxProp[1] {
			maxProp[1] = b
		}
		if a > 1.0/3.0 && b > 1.0/3.0 {
			crossedEpoch = types.Epoch(epoch)
			break
		}
	}
	if crossedEpoch == 0 {
		t.Fatalf("Byzantine proportion never crossed 1/3 on both branches: max = %v", maxProp)
	}
	t.Logf("Byzantine proportion crossed 1/3 on both branches at epoch %d (%.4f / %.4f)",
		crossedEpoch, s.ByzantineProportionOn(0), s.ByzantineProportionOn(12))

	// Up to the crossing: no conflicting finalization, no slashable
	// offense ever observable.
	if v := s.CheckFinalitySafety(); v != nil {
		t.Fatalf("scenario 5.2.3 crossed 1/3 without finalizing, but found: %v", v)
	}
	for _, h := range s.HonestIndices() {
		if len(s.View(h).SlashingEvidence()) != 0 {
			t.Fatalf("semi-active behavior produced slashing evidence in validator %d's view", h)
		}
	}
	// The crossing coincides with the ejection of the opposite side's
	// honest validators on each view.
	for _, pair := range [][2]types.ValidatorIndex{{0, 12}, {12, 0}} {
		observer := pair[0]
		reg := s.View(observer).Registry
		ejected := 0
		for v := types.ValidatorIndex(0); v < 24; v++ {
			if !reg.InSet(v) {
				ejected++
			}
		}
		if ejected < 12 {
			t.Errorf("view of validator %d: only %d honest validators ejected at the crossing, want >= 12",
				observer, ejected)
		}
	}

	// Sub-threshold control: beta0 = 0.125 (4 of 32, well under 0.2421)
	// must NOT cross 1/3 on either branch.
	advLow := &SemiActive{Reps: [2]types.ValidatorIndex{0, 12}}
	cfgLow := byzConfig(29, advLow)
	cfgLow.Byzantine = []types.ValidatorIndex{28, 29, 30, 31}
	low, err := sim.New(cfgLow)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 1; epoch <= 32; epoch++ {
		if err := low.RunEpochs(1); err != nil {
			t.Fatal(err)
		}
		if p := low.ByzantineProportionOn(0); p > 1.0/3.0 {
			t.Fatalf("beta0=0.125 crossed 1/3 at epoch %d (%.4f); threshold behavior broken", epoch, p)
		}
	}
}

// TestScenario522SemiActiveFinalizesConflictingBranches reproduces Scenario
// 5.2.2: same non-slashable gait, but once both branch quorums are within
// reach the Byzantine validators stay two consecutive epochs per branch,
// finalizing both — a Safety violation with zero slashing risk.
func TestScenario522SemiActiveFinalizesConflictingBranches(t *testing.T) {
	adv := &SemiActive{Reps: [2]types.ValidatorIndex{0, 12}, StayFrom: 22}
	s, err := sim.New(byzConfig(17, adv))
	if err != nil {
		t.Fatal(err)
	}
	conflictEpoch := runUntilConflict(t, s, 32)
	if conflictEpoch == 0 {
		t.Fatal("scenario 5.2.2 never finalized conflicting branches")
	}
	for _, h := range s.HonestIndices() {
		if len(s.View(h).SlashingEvidence()) != 0 {
			t.Fatalf("scenario 5.2.2 must stay non-slashable; validator %d's view has evidence", h)
		}
	}
	t.Logf("non-slashable conflicting finalization at epoch %d", conflictEpoch)
}

// TestScenario53BouncerStallsFinality reproduces the mechanism of Scenario
// 5.3: after a setup fork, the bouncing adversary keeps justification
// alternating between the branches — finality never advances, the leak
// runs, honest validators bounce per-epoch, and no slashable offense
// occurs. When the adversary stops, finality recovers (the attack is a
// liveness attack whose leak side-effects threaten the 1/3 threshold).
func TestScenario53BouncerStallsFinality(t *testing.T) {
	adv := NewBouncer(0.6, 99, [2]types.ValidatorIndex{0, 12})
	cfg := byzConfig(19, adv)
	cfg.GST = 3 * 32 // short setup partition: epochs 0-2
	adv.Stop = 16
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Run the attack phase.
	if err := s.RunEpochs(16); err != nil {
		t.Fatal(err)
	}
	if adv.Releases < 10 {
		t.Fatalf("adversary performed only %d releases; attack never engaged", adv.Releases)
	}
	// Finality must not have advanced past the setup era during the
	// attack.
	for _, h := range s.HonestIndices() {
		if got := s.View(h).Finalized().Epoch; got > 3 {
			t.Errorf("validator %d's view finalized epoch %d during the bouncing attack", h, got)
		}
	}
	// The leak is running: honest stake is draining on honest views.
	drained := 0
	for _, h := range s.HonestIndices() {
		if s.View(h).Registry.TotalStake() < types.Gwei(32)*types.MaxEffectiveBalanceGwei {
			drained++
		}
	}
	if drained == 0 {
		t.Error("no view shows stake drain; the leak never engaged")
	}
	// Placement randomness: both bounce and stay outcomes occurred.
	honest := len(s.HonestIndices())
	total := adv.Releases * honest
	if adv.Bounces == 0 || adv.Bounces == total {
		t.Errorf("placement coin degenerate: %d bounces of %d", adv.Bounces, total)
	}
	// Non-slashable throughout.
	for _, h := range s.HonestIndices() {
		if len(s.View(h).SlashingEvidence()) != 0 {
			t.Fatalf("bouncing produced slashing evidence in validator %d's view", h)
		}
	}
	// No conflicting finalization either (synchronous period!).
	if v := s.CheckFinalitySafety(); v != nil {
		t.Fatalf("bouncing must not fork finality: %v", v)
	}

	// Liveness recovery: stop the adversary and run on.
	if err := s.RunEpochs(8); err != nil {
		t.Fatal(err)
	}
	recovered := 0
	for _, h := range s.HonestIndices() {
		if s.View(h).Finalized().Epoch >= 16 {
			recovered++
		}
	}
	if recovered < len(s.HonestIndices())/2 {
		t.Errorf("only %d honest validators recovered finality after the attack stopped", recovered)
	}
	if v := s.CheckFinalitySafety(); v != nil {
		t.Fatalf("post-attack safety violation: %v", v)
	}
}

// TestBouncerUnderMessageLoss pins the cross-view proposer rule: a bounced
// proposer acts on a foreign duty view, whose broadcast delivery may be
// delayed by a link outage — the kernel must not apply such a block to the
// foreign view early. The attack still engages under loss and, once the
// adversary stops, finality eventually recovers; with correlated link
// outages the post-attack duty-view split persists until the leak drains
// the minority crowd, so recovery takes several extra epochs and reaches
// one branch view first.
func TestBouncerUnderMessageLoss(t *testing.T) {
	adv := NewBouncer(0.6, 99, [2]types.ValidatorIndex{0, 12})
	cfg := byzConfig(19, adv)
	cfg.GST = 3 * 32
	cfg.DropRate = 0.3
	adv.Stop = 14
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunEpochs(28); err != nil {
		t.Fatal(err)
	}
	if adv.Releases < 8 {
		t.Fatalf("only %d releases under loss; attack never engaged", adv.Releases)
	}
	if v := s.CheckFinalitySafety(); v != nil {
		t.Fatalf("bouncing under loss must not fork finality: %v", v)
	}
	recovered := false
	for _, h := range s.HonestIndices() {
		if s.View(h).Finalized().Epoch >= 14 {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Error("no honest view recovered finality after the adversary stopped")
	}
}

// TestSemiActiveAutoFinalizeRespectsStayFromFloor pins the documented
// contract: with both knobs set, AutoFinalize may not start the
// finalization gait before the StayFrom floor, and the gait it does start
// must finalize post-fork checkpoints (a stale pre-gait finalization
// cannot satisfy the camping phases).
func TestSemiActiveAutoFinalizeRespectsStayFromFloor(t *testing.T) {
	// Without a floor, AutoFinalize triggers as soon as both branches
	// justify (the Table 3 timing).
	free := &SemiActive{Reps: [2]types.ValidatorIndex{0, 12}, AutoFinalize: true}
	s, err := sim.New(byzConfig(17, free))
	if err != nil {
		t.Fatal(err)
	}
	if conflict := runUntilConflict(t, s, 40); conflict == 0 {
		t.Fatal("AutoFinalize never finalized conflicting branches")
	}
	unfloored := free.GaitFrom()
	if unfloored == 0 {
		t.Fatal("AutoFinalize never started its gait")
	}

	// With a floor beyond that trigger epoch, the gait must wait for it.
	floor := unfloored + 4
	floored := &SemiActive{Reps: [2]types.ValidatorIndex{0, 12}, AutoFinalize: true, StayFrom: floor}
	s, err = sim.New(byzConfig(17, floored))
	if err != nil {
		t.Fatal(err)
	}
	conflict := runUntilConflict(t, s, 48)
	if got := floored.GaitFrom(); got < floor {
		t.Fatalf("AutoFinalize started the gait at epoch %d, before the StayFrom floor %d", got, floor)
	}
	if conflict == 0 {
		t.Fatal("floored AutoFinalize never finalized conflicting branches")
	}
	// The conflict is produced BY the gait, not by stale finality: it
	// cannot precede the floor.
	if conflict < floor {
		t.Fatalf("conflicting finalization at epoch %d precedes the gait floor %d", conflict, floor)
	}
}
