// Package behavior implements the adversary strategies of the paper's five
// scenarios as sim.Adversary values:
//
//   - DoubleVoter (Scenario 5.2.1): Byzantine validators attest on both
//     branches of a partition every epoch — a slashable offense that stays
//     hidden until GST because each partition only sees one face;
//   - SemiActive (Scenarios 5.2.2 / 5.2.3): Byzantine validators alternate
//     branches every epoch — non-slashable — optionally staying two
//     consecutive epochs per branch when they decide to finalize;
//   - Bouncer (Scenario 5.3): after GST, Byzantine validators withhold
//     their checkpoint votes and release them at epoch boundaries to
//     alternately justify the two branches of a fork, bouncing honest
//     validators between them and stalling finality indefinitely.
//
// The adversaries are cohort-aware: identical votes from many Byzantine
// validators travel as one sim.AttBatch, and the Bouncer's per-validator
// placement step uses sim.SetDutyView instead of touching per-validator
// nodes, so every strategy runs at paper-scale validator counts.
package behavior

import (
	"math/rand"

	"repro/internal/attestation"
	"repro/internal/beacon"
	"repro/internal/sim"
	"repro/internal/types"
)

// dutyByzantine returns the Byzantine validators whose attestation duty
// falls on slot, in Config order.
func dutyByzantine(s *sim.Simulation, slot types.Slot) []types.ValidatorIndex {
	epoch := slot.Epoch()
	var out []types.ValidatorIndex
	for _, v := range s.Cfg.Byzantine {
		if s.AttestationSlot(v, epoch) == slot {
			out = append(out, v)
		}
	}
	return out
}

// DoubleVoter is the Scenario 5.2.1 adversary. Each Byzantine validator
// attests once per epoch on each branch, showing each partition only the
// matching face (BroadcastAs), so the equivocation is undetectable before
// GST. The identical votes of a slot travel as one batch per branch.
type DoubleVoter struct {
	// Reps holds one honest representative validator per partition; the
	// adversary copies their cohorts' views.
	Reps [2]types.ValidatorIndex
}

// OnSlot implements sim.Adversary.
func (d *DoubleVoter) OnSlot(s *sim.Simulation, slot types.Slot) {
	members := dutyByzantine(s, slot)
	if len(members) == 0 {
		return
	}
	for p := 0; p < 2; p++ {
		data, err := s.View(d.Reps[p]).AttestationData(slot)
		if err != nil {
			continue
		}
		s.BroadcastAs(members[0], p, slot, sim.Message{Batch: &sim.AttBatch{Data: data, Validators: members}})
	}
}

// SemiActive is the Scenario 5.2.2 / 5.2.3 adversary: Byzantine validators
// are active on branch (epoch mod 2) each epoch — never equivocating within
// an epoch, hence non-slashable. To finalize, the adversary switches to the
// finalization gait: it camps on branch 0 until that view finalizes a
// post-fork checkpoint (two consecutive justifications), then camps on
// branch 1 until it finalizes too — conflicting finalization — and resumes
// alternation. Camping (rather than staying a fixed two epochs) makes the
// gait robust at the exact quorum boundary, where a marginal link can miss
// the supermajority by a hair and only clear it an epoch or two later as
// the leak keeps draining the denominators.
//
// The gait starts at StayFrom when set; with AutoFinalize the adversary
// picks the moment itself, as soon as alternation has justified recent
// checkpoints on both branches — the earliest epoch at which conflicting
// finalization is in reach, the Scenario 5.2.2 / Table 3 timing. With
// neither, it alternates forever (the Scenario 5.2.3 "delay finalization
// to cross 1/3" mode).
type SemiActive struct {
	Reps [2]types.ValidatorIndex
	// StayFrom, when nonzero, is the epoch at which the adversary stops
	// delaying and finalizes both branches. Zero means never, unless
	// AutoFinalize picks a moment.
	StayFrom types.Epoch
	// AutoFinalize lets the adversary trigger its own finalization gait
	// (see above). StayFrom, when also set, acts as a floor.
	AutoFinalize bool

	// gaitFrom is the epoch the gait actually started; gaitPhase tracks
	// its progress (0 = alternating, 1 = camping on branch 0, 2 = camping
	// on branch 1, 3 = done, back to alternating).
	gaitFrom  types.Epoch
	gaitPhase int
}

// GaitFrom reports the epoch at which the adversary began its finalization
// gait; zero means not (yet) started.
func (a *SemiActive) GaitFrom() types.Epoch { return a.gaitFrom }

// Clone returns an independent copy of the adversary, gait state machine
// included. sim.Snapshot deliberately leaves adversary state outside the
// snapshot, so a warm-start prefix pairs each snapshot with a Clone taken
// at the same epoch boundary: every continuation resumes from its own
// copy of the gait exactly where the prefix left it.
func (a *SemiActive) Clone() *SemiActive {
	cp := *a
	return &cp
}

// branchFor returns which branch the Byzantine validators act on during an
// epoch.
func (a *SemiActive) branchFor(epoch types.Epoch) int {
	switch a.gaitPhase {
	case 1:
		return 0
	case 2:
		return 1
	default:
		return int(epoch % 2)
	}
}

// advanceGait runs the finalization state machine at an epoch boundary
// (after the views processed theirs, so justification/finalization state
// is current for the ended epoch).
func (a *SemiActive) advanceGait(s *sim.Simulation, epoch types.Epoch) {
	// A camped branch counts as finalized only for checkpoints the gait
	// itself produced: epoch >= gaitFrom, minus one for a justification
	// that landed late (a target justifying an epoch after the votes were
	// cast, completing a consecutive pair one epoch behind the camp). A
	// stale pre-gait finalization must NOT satisfy the camp, or the gait
	// would declare victory without finalizing anything post-fork.
	finalized := func(branch int) bool {
		fin := s.View(a.Reps[branch]).FFG.Finalized()
		return fin.Epoch != 0 && a.gaitFrom != 0 && fin.Epoch+1 >= a.gaitFrom
	}
	switch a.gaitPhase {
	case 0: // alternating; decide whether to start the gait
		var start bool
		if a.AutoFinalize {
			// AutoFinalize owns the trigger: both branches must have
			// justified recently, and StayFrom — when also set — is
			// only a floor below which the trigger is not consulted.
			start = epoch >= 2 && (a.StayFrom == 0 || epoch >= a.StayFrom)
			for i := 0; start && i < 2; i++ {
				just := s.View(a.Reps[i]).FFG.LatestJustified()
				if just.Epoch+2 < epoch || just.Epoch == 0 {
					start = false
				}
			}
		} else {
			// Manual mode: the caller picked the moment outright.
			start = a.StayFrom != 0 && epoch >= a.StayFrom
		}
		if start {
			a.gaitFrom = epoch
			a.gaitPhase = 1
		}
	case 1: // camping on branch 0 until it finalizes
		if finalized(0) {
			a.gaitPhase = 2
		}
	case 2: // camping on branch 1 until it finalizes too
		if finalized(1) {
			a.gaitPhase = 3
		}
	}
}

// OnSlot implements sim.Adversary.
func (a *SemiActive) OnSlot(s *sim.Simulation, slot types.Slot) {
	if slot.IsEpochStart() {
		a.advanceGait(s, slot.Epoch())
	}
	members := dutyByzantine(s, slot)
	if len(members) == 0 {
		return
	}
	branch := a.branchFor(slot.Epoch())
	data, err := s.View(a.Reps[branch]).AttestationData(slot)
	if err != nil {
		return
	}
	s.BroadcastAs(members[0], branch, slot, sim.Message{Batch: &sim.AttBatch{Data: data, Validators: members}})
}

// Bouncer is the Scenario 5.3 adversary (probabilistic bouncing attack with
// the inactivity leak). It assumes a fork was established during a pre-GST
// partition — the paper's "favorable setup", step (1) of the attack, which
// the paper takes from its citation of the original bouncing-attack
// analysis rather than re-deriving.
//
// After GST the adversary alternates branches. At the boundary of each
// epoch it releases its withheld Byzantine checkpoint votes completing the
// previous epoch's two-epoch justification link on one branch (one batch),
// and uses its within-delta message-timing power to decide, per honest
// validator, whether the release lands before or after that validator's
// attestation duty. With shared cohort views the placement is exactly a
// duty-view assignment: the fresh branch's view is force-justified to the
// released target, and each honest validator performs this epoch's duty
// from the fresh view with probability 1-P0 (bouncing there) or from the
// stale view with probability P0 (staying, becoming part of the coherent
// link the adversary completes next boundary) — the i.i.d. placement of
// the paper's Figure 8 Markov chain. Justification alternates branches,
// links are never between consecutive epochs, and finality never advances;
// after two warm-up epochs the released links genuinely carry more than
// two-thirds of stake (Equation 14(b)) and justify through the regular FFG
// rule as well.
type Bouncer struct {
	// P0 is the per-epoch probability that an honest validator stays on
	// the branch whose justification the adversary completes next — the
	// paper's p0, constrained by Equation 14.
	P0 float64
	// Rng drives the per-validator placement coin.
	Rng *rand.Rand
	// Stop, when nonzero, is the epoch at which the adversary ceases the
	// attack (used to demonstrate liveness recovery).
	Stop types.Epoch

	// views[i] is the materialized view of branch i, captured at GST
	// from the partition representatives (stable across duty-view
	// reassignments).
	views [2]*beacon.Node
	// anchors[i] is the first post-fork block root of branch i.
	anchors [2]types.Root
	// lastJust[i] tracks the latest checkpoint the adversary justified
	// on branch i.
	lastJust [2]types.Checkpoint
	// prevTarget is the previous release's checkpoint: released votes
	// reach every validator within delta, so by the next boundary every
	// view has justified it (the catch-up step that keeps honest sources
	// two-valued and the completed links above the quorum).
	prevTarget types.Checkpoint
	armed      bool
	observer   *beacon.Node // the Byzantine cohort's omniscient view
	setupReps  [2]types.ValidatorIndex

	// Bounces counts bounce placements per honest validator (metrics).
	Bounces int
	// Releases counts boundary releases performed.
	Releases int
}

// NewBouncer builds a Bouncer with partition representatives (one honest
// validator per partition, used to locate the fork's branches at GST).
func NewBouncer(p0 float64, seed int64, reps [2]types.ValidatorIndex) *Bouncer {
	return &Bouncer{
		P0:        p0,
		Rng:       rand.New(rand.NewSource(seed)),
		setupReps: reps,
	}
}

// arm captures the fork anchors at GST.
func (b *Bouncer) arm(s *sim.Simulation) {
	b.observer = s.View(s.Cfg.Byzantine[0])
	for i := 0; i < 2; i++ {
		rep := s.View(b.setupReps[i])
		head, err := rep.Head()
		if err != nil {
			return
		}
		b.views[i] = rep
		b.anchors[i] = head
		b.lastJust[i] = rep.FFG.LatestJustified()
	}
	if b.anchors[0] == b.anchors[1] {
		return // no fork yet
	}
	b.armed = true
}

// branchTip finds the highest block descending from the branch anchor in
// the omniscient Byzantine view.
func (b *Bouncer) branchTip(branch int) (types.Root, bool) {
	tree := b.observer.Tree
	anchor := b.anchors[branch]
	if !tree.Has(anchor) {
		return types.Root{}, false
	}
	best := anchor
	bestSlot, _ := tree.Slot(anchor)
	for _, leaf := range tree.Leaves() {
		if leaf.Slot > bestSlot && tree.IsAncestor(anchor, leaf.Root) {
			best, bestSlot = leaf.Root, leaf.Slot
		}
	}
	return best, true
}

// OnSlot implements sim.Adversary.
func (b *Bouncer) OnSlot(s *sim.Simulation, slot types.Slot) {
	if slot < s.Cfg.GST {
		return
	}
	if !b.armed {
		b.arm(s)
		if !b.armed {
			return
		}
	}
	if !slot.IsEpochStart() || slot.Epoch() == 0 {
		return
	}
	epoch := slot.Epoch()
	if b.Stop != 0 && epoch >= b.Stop {
		return
	}
	ended := epoch - 1
	branch := int(ended % 2)

	tip, ok := b.branchTip(branch)
	if !ok {
		return
	}
	target, err := b.observer.Tree.CheckpointFor(tip, ended)
	if err != nil || target.Root == b.lastJust[branch].Root {
		return
	}
	source := b.lastJust[branch]
	b.Releases++

	// Release the withheld Byzantine votes completing the two-epoch link
	// (source -> target) on this branch, as one batch. One vote per
	// Byzantine validator per epoch: semi-active per branch, never
	// slashable.
	release := sim.AttBatch{
		Data: attestation.Data{
			Slot:   ended.EndSlot(),
			Head:   tip,
			Source: source,
			Target: target,
		},
		Validators: s.Cfg.Byzantine,
	}
	s.Broadcast(s.Cfg.Byzantine[0], slot, sim.Message{Batch: &release})

	// Catch-up: the previous release reached every validator within
	// delta, so by this boundary every view has processed it.
	if !b.prevTarget.IsZero() {
		b.views[0].FFG.ForceJustify(b.prevTarget)
		b.views[1].FFG.ForceJustify(b.prevTarget)
	}
	// The fresh branch's view sees the release (and the resulting
	// justification) immediately; the stale view stays on the previous
	// target until next boundary.
	b.views[branch].FFG.ForceJustify(target)
	// Per-validator timing: with probability 1-P0 the validator's duty
	// this epoch runs on the fresh view (it bounces to this branch); with
	// probability P0 it acts on the stale view and stays put.
	fresh, stale := b.setupReps[branch], b.setupReps[1-branch]
	for _, h := range s.HonestIndices() {
		if b.Rng.Float64() >= b.P0 {
			s.SetDutyView(h, fresh)
			b.Bounces++
		} else {
			s.SetDutyView(h, stale)
		}
	}
	// The omniscient Byzantine view tracks every justification.
	b.observer.FFG.ForceJustify(target)
	b.lastJust[branch] = target
	b.prevTarget = target
}
