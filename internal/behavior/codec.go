package behavior

import (
	"repro/internal/codec"
	"repro/internal/types"
)

// EncodeTo serializes the semi-active adversary's full state — the public
// configuration plus the private gait state machine — for the durable
// snapshot codec. sim.Snapshot deliberately leaves adversary state to the
// caller, so checkpoints of sim/semiactive pair the snapshot with this.
func (s *SemiActive) EncodeTo(w *codec.Writer) {
	w.U64(uint64(s.Reps[0]))
	w.U64(uint64(s.Reps[1]))
	w.U64(uint64(s.StayFrom))
	w.Bool(s.AutoFinalize)
	w.U64(uint64(s.gaitFrom))
	w.Int(s.gaitPhase)
}

// DecodeSemiActive reconstructs an adversary serialized by EncodeTo.
func DecodeSemiActive(r *codec.Reader) *SemiActive {
	s := &SemiActive{}
	s.Reps[0] = types.ValidatorIndex(r.U64())
	s.Reps[1] = types.ValidatorIndex(r.U64())
	s.StayFrom = types.Epoch(r.U64())
	s.AutoFinalize = r.Bool()
	s.gaitFrom = types.Epoch(r.U64())
	s.gaitPhase = r.Int()
	if r.Err() != nil {
		return nil
	}
	return s
}
