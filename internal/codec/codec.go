// Package codec provides the little-endian binary reader/writer the
// durable snapshot codec is built on. Both halves are sticky-error: a
// caller strings together field writes (or reads) without checking each
// one and asks Err once at the end, which keeps the per-package snapshot
// codecs (blocktree, forkchoice, ffg, attestation, slashing, network,
// beacon, sim) declarative — the field list IS the wire format.
//
// The format is deliberately dumb: fixed-width little-endian scalars,
// u32-prefixed byte strings, no varints, no alignment, no reflection.
// Integrity and versioning are the container's job (sim.Snapshot.WriteTo
// frames the payload with a magic, a format version, and a checksum; the
// store layer adds its own checksummed framing on disk), so a Reader can
// trust its input to be well-formed and treat any structural surprise as
// plain corruption.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrCorrupt is the sticky error a Reader records when the input is
// structurally impossible (a length prefix past the remaining input, an
// out-of-range enum). Decoders bubble it up; durable-checkpoint callers
// treat it as a silent miss.
var ErrCorrupt = errors.New("codec: corrupt input")

// maxSliceLen bounds any single length prefix, so a corrupt length cannot
// drive a multi-gigabyte allocation before the checksum verdict is in.
const maxSliceLen = 1 << 28

// Writer encodes fixed-width little-endian values with a sticky error.
type Writer struct {
	w   io.Writer
	err error
	buf [8]byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err reports the first write error, if any.
func (w *Writer) Err() error { return w.err }

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

// U64 writes a uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.write(w.buf[:8])
}

// U32 writes a uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.write(w.buf[:4])
}

// I64 writes an int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// I32 writes an int32.
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// Int writes an int as 64 bits.
func (w *Writer) Int(v int) { w.U64(uint64(v)) }

// F64 writes a float64 by bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool writes a bool as one byte.
func (w *Writer) Bool(v bool) {
	w.buf[0] = 0
	if v {
		w.buf[0] = 1
	}
	w.write(w.buf[:1])
}

// Byte writes one raw byte (type tags).
func (w *Writer) Byte(v byte) {
	w.buf[0] = v
	w.write(w.buf[:1])
}

// Raw writes b with no length prefix (fixed-size arrays like roots).
func (w *Writer) Raw(b []byte) { w.write(b) }

// Bytes writes a u32 length prefix followed by b.
func (w *Writer) Bytes(b []byte) {
	w.U32(uint32(len(b)))
	w.write(b)
}

// String writes a u32 length prefix followed by the string bytes.
func (w *Writer) String(s string) { w.Bytes([]byte(s)) }

// Len writes a slice or map length as a u32 prefix.
func (w *Writer) Len(n int) { w.U32(uint32(n)) }

// Reader decodes the Writer's format with a sticky error.
type Reader struct {
	r   io.Reader
	err error
	buf [8]byte
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Err reports the first read error, if any.
func (r *Reader) Err() error { return r.err }

// Corrupt records a decoder-level structural error (bad tag, impossible
// index) as the sticky error.
func (r *Reader) Corrupt(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

func (r *Reader) read(b []byte) {
	if r.err != nil {
		return
	}
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
}

// U64 reads a uint64.
func (r *Reader) U64() uint64 {
	r.read(r.buf[:8])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(r.buf[:8])
}

// U32 reads a uint32.
func (r *Reader) U32() uint32 {
	r.read(r.buf[:4])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(r.buf[:4])
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// I32 reads an int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.U64()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a bool.
func (r *Reader) Bool() bool {
	r.read(r.buf[:1])
	return r.err == nil && r.buf[0] != 0
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	r.read(r.buf[:1])
	if r.err != nil {
		return 0
	}
	return r.buf[0]
}

// Raw fills b with no length prefix.
func (r *Reader) Raw(b []byte) { r.read(b) }

// Bytes reads a u32-length-prefixed byte string.
func (r *Reader) Bytes() []byte {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	b := make([]byte, n)
	r.read(b)
	if r.err != nil {
		return nil
	}
	return b
}

// String reads a u32-length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Len reads a u32 length prefix, rejecting absurd values so a corrupt
// prefix cannot drive a huge allocation.
func (r *Reader) Len() int {
	n := r.U32()
	if r.err != nil {
		return 0
	}
	if n > maxSliceLen {
		r.Corrupt("length prefix %d exceeds limit", n)
		return 0
	}
	return int(n)
}
