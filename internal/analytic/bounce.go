package analytic

import (
	"math"

	"repro/internal/mathx"
)

// BounceWindow is Equation 14: the interval of honest-split proportions p0
// for which the probabilistic bouncing attack can continue indefinitely —
// (a) honest validators alone cannot justify (p0(1-beta0) < 2/3) and
// (b) honest plus withheld Byzantine votes can (p0(1-beta0)+beta0 > 2/3).
func BounceWindow(beta0 float64) (lo, hi float64) {
	lo = (2 - 3*beta0) / (3 * (1 - beta0))
	hi = 2 / (3 * (1 - beta0))
	return lo, hi
}

// BounceWindowValid reports whether a given p0 lies inside the attack
// window for beta0.
func BounceWindowValid(p0, beta0 float64) bool {
	lo, hi := BounceWindow(beta0)
	return lo < p0 && p0 < hi
}

// BounceContinuationProbability is the paper's continuation estimate from
// Section 5.3: the attack proceeds for k epochs with probability
// (1 - (1-beta0)^j)^k, where j is the number of first slots of each epoch
// in which a Byzantine proposer must appear (the protocol parameter of the
// original probabilistic bouncing attack).
func BounceContinuationProbability(beta0 float64, j, k int) float64 {
	perEpoch := 1 - math.Pow(1-beta0, float64(j))
	return math.Pow(perEpoch, float64(k))
}

// TwoEpochScoreOutcome is one row of the paper's Equation 15: the change of
// an honest validator's inactivity score over two epochs of the bouncing
// attack, with its probability.
type TwoEpochScoreOutcome struct {
	Delta       int
	Probability float64
}

// TwoEpochScoreDistribution is Equation 15: over two epochs a validator's
// score moves +8 (inactive twice, on the other branch both epochs), +3
// (active once), or -2 (active twice), with probabilities p0(1-p0),
// p0^2+(1-p0)^2, and p0(1-p0) respectively.
func TwoEpochScoreDistribution(p0 float64) [3]TwoEpochScoreOutcome {
	cross := p0 * (1 - p0)
	same := p0*p0 + (1-p0)*(1-p0)
	return [3]TwoEpochScoreOutcome{
		{Delta: +8, Probability: cross},
		{Delta: +3, Probability: same},
		{Delta: -2, Probability: cross},
	}
}

// BounceModel evaluates the stochastic stake model of Section 5.3 for an
// honest validator randomly re-assigned to one of the two branches each
// epoch with probability p0 / 1-p0.
type BounceModel struct {
	// P0 is the per-epoch probability of being on the observed branch.
	P0 float64
}

// Drift is V = 3/2: the mean inactivity-score increase per epoch of the
// convolved two-walk process (Equation 15 and following).
func (BounceModel) Drift() float64 { return mathx.ConvolvedDrift }

// Diffusion is D = 25 p0 (1-p0) (Equation 16).
func (m BounceModel) Diffusion() float64 { return mathx.ConvolvedDiffusion(m.P0) }

// ScorePDF is Equation 16: the Gaussian density of the inactivity score I
// at epoch t, phi(I, t) = exp(-(I - Vt)^2 / 4Dt) / sqrt(4 pi D t).
func (m BounceModel) ScorePDF(score, t float64) float64 {
	if t <= 0 {
		if score == 0 {
			return math.Inf(1)
		}
		return 0
	}
	d := m.Diffusion()
	v := m.Drift()
	return math.Exp(-(score-v*t)*(score-v*t)/(4*d*t)) / math.Sqrt(4*math.Pi*d*t)
}

// StakePDF is Equation 18: the density of the stake s at epoch t,
//
//	P(s,t) = (2^26 / s) sqrt(1 / (4/3 pi D t^3)) exp(-(2^26 ln(s/32) + V t^2/2)^2 / (4/3 D t^3)).
func (m BounceModel) StakePDF(s, t float64) float64 {
	if s <= 0 || t <= 0 {
		return 0
	}
	d := m.Diffusion()
	v := m.Drift()
	varTerm := 4.0 / 3.0 * d * t * t * t
	arg := Quotient*math.Log(s/InitialStakeETH) + v*t*t/2
	return Quotient / s * math.Sqrt(1/(math.Pi*varTerm)) * math.Exp(-arg*arg/varTerm)
}

// StakeCDF is Equation 19: the log-normal cumulative distribution of the
// stake at epoch t,
//
//	F(s,t) = 1/2 + 1/2 erf( (2^26 ln(s/32) + V t^2/2) / sqrt(4/3 D t^3) ).
func (m BounceModel) StakeCDF(s, t float64) float64 {
	if s <= 0 {
		return 0
	}
	if t <= 0 {
		if s < InitialStakeETH {
			return 0
		}
		return 1
	}
	d := m.Diffusion()
	v := m.Drift()
	z := (Quotient*math.Log(s/InitialStakeETH) + v*t*t/2) / math.Sqrt(4.0/3.0*d*t*t*t)
	return mathx.ErfArg(z)
}

// CensoredStakeCDF is Equation 22: the cumulative distribution of the stake
// accounting for ejection below 16.75 ETH (mass collapsed to an atom,
// "stake becomes 0") and the 32 ETH cap (atom at 32):
//
//	F(x,t) = F(a,t) + H(x-a)[F(x,t)-F(a,t)] + H(x-b)[1-F(x,t)]
func (m BounceModel) CensoredStakeCDF(x, t float64) float64 {
	fa := m.StakeCDF(EjectionStakeETH, t)
	g := fa
	if x >= EjectionStakeETH {
		g += m.StakeCDF(x, t) - fa
	}
	if x >= InitialStakeETH {
		g += 1 - m.StakeCDF(x, t)
	}
	return mathx.Clamp(g, 0, 1)
}

// DistributionPoint samples the censored distribution for Figure 9
// rendering: the continuous interior density plus the two atom masses.
type DistributionPoint struct {
	// AtomEjected is the probability mass collapsed at ejection
	// (stake <= 16.75 at ejection time).
	AtomEjected float64
	// AtomCapped is the mass at the 32 ETH cap.
	AtomCapped float64
	// Interior evaluates the continuous density on (16.75, 32).
	Interior func(s float64) float64
}

// Distribution returns the censored stake distribution at epoch t
// (Equation 21): Dirac atoms at the censor points and the truncated
// log-normal density between them.
func (m BounceModel) Distribution(t float64) DistributionPoint {
	return DistributionPoint{
		AtomEjected: m.StakeCDF(EjectionStakeETH, t),
		AtomCapped:  1 - m.StakeCDF(InitialStakeETH, t),
		Interior: func(s float64) float64 {
			if s <= EjectionStakeETH || s >= InitialStakeETH {
				return 0
			}
			return m.StakePDF(s, t)
		},
	}
}

// ExceedProbability is Equation 24: the probability that the Byzantine
// stake proportion exceeds 1/3 at epoch t of the bouncing attack, i.e. the
// probability that an honest validator's stake has fallen below
// 2 beta0/(1-beta0) * sB(t), where sB follows the semi-active law. Byzantine
// validators are ejected at the semi-active ejection epoch, after which
// their proportion is zero.
func (m BounceModel) ExceedProbability(t, beta0 float64, params Params) float64 {
	if t >= params.SemiActiveEjectionEpoch {
		return 0
	}
	threshold := 2 * beta0 / (1 - beta0) * StakeSemiActive(t)
	return m.CensoredStakeCDF(threshold, t)
}
