package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

// TestConflictEpochMonotoneInBeta0: more Byzantine stake never slows the
// loss of Safety, for either behavior.
func TestConflictEpochMonotoneInBeta0(t *testing.T) {
	p := PaperParams()
	f := func(rawA, rawB uint8) bool {
		b1 := 0.33 * float64(rawA) / 255
		b2 := 0.33 * float64(rawB) / 255
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		slash1 := p.ConflictEpochSlashing(0.5, b1)
		slash2 := p.ConflictEpochSlashing(0.5, b2)
		if slash2 > slash1+1e-9 {
			return false
		}
		s1, err1 := p.ConflictEpochSemiActive(0.5, b1)
		s2, err2 := p.ConflictEpochSemiActive(0.5, b2)
		if err1 != nil || err2 != nil {
			return false
		}
		return s2 <= s1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestConflictEpochMonotoneInP0: a branch with more honest active
// validators regains its quorum no later.
func TestConflictEpochMonotoneInP0(t *testing.T) {
	p := PaperParams()
	f := func(rawA, rawB uint8) bool {
		p1 := 0.05 + 0.55*float64(rawA)/255
		p2 := 0.05 + 0.55*float64(rawB)/255
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return p.ConflictEpochHonest(p2) <= p.ConflictEpochHonest(p1)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRatiosAlwaysInUnitInterval for all three ratio models.
func TestRatiosAlwaysInUnitInterval(t *testing.T) {
	p := PaperParams()
	f := func(rawT uint16, rawP, rawB uint8) bool {
		tt := float64(rawT % 8000)
		p0 := float64(rawP) / 255
		b0 := 0.33 * float64(rawB) / 255
		for _, r := range []float64{
			p.ActiveRatioHonest(tt, p0),
			p.ActiveRatioSlashing(tt, p0, b0),
			p.ActiveRatioSemiActive(tt, p0, b0),
			p.BetaProportion(tt, p0, b0),
			p.BetaProportionWithEjection(tt, p0, b0),
			p.BetaMax(p0+1e-9, b0),
		} {
			if r < -1e-12 || r > 1+1e-12 || math.IsNaN(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestThresholdBeta0MonotoneInP0: a more honest-active branch needs more
// Byzantine stake to cross 1/3.
func TestThresholdBeta0MonotoneInP0(t *testing.T) {
	p := PaperParams()
	f := func(rawA, rawB uint8) bool {
		p1 := 0.05 + 0.9*float64(rawA)/255
		p2 := 0.05 + 0.9*float64(rawB)/255
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return p.ThresholdBeta0(p1) <= p.ThresholdBeta0(p2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestExceedProbabilityMonotoneInBeta0 at fixed epochs.
func TestExceedProbabilityMonotoneInBeta0(t *testing.T) {
	m := BounceModel{P0: 0.5}
	params := PaperParams()
	f := func(rawA, rawB uint8, rawT uint8) bool {
		b1 := 0.30 + (1.0/3.0-0.30)*float64(rawA)/255
		b2 := 0.30 + (1.0/3.0-0.30)*float64(rawB)/255
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		tt := 500 + float64(rawT)*25
		return m.ExceedProbability(tt, b1, params) <= m.ExceedProbability(tt, b2, params)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestBounceWindowNonEmptyForPositiveBeta: the Equation 14 window is a
// proper interval for every beta0 in (0, 1/3].
func TestBounceWindowNonEmptyForPositiveBeta(t *testing.T) {
	f := func(raw uint8) bool {
		b := 0.001 + (1.0/3.0-0.001)*float64(raw)/255
		lo, hi := BounceWindow(b)
		return lo < hi && lo > 0 && hi <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
