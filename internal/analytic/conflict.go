package analytic

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// ConflictEpochHonest is Equation 6: the epoch at which a branch with
// honest-active proportion p0 regains a 2/3 active-stake quorum during a
// leak with no Byzantine validators, capped by the ejection epoch. Valid
// for 0 < p0 < 2/3.
func (p Params) ConflictEpochHonest(p0 float64) float64 {
	if p0 <= 0 {
		return math.NaN()
	}
	if p0 >= SupermajorityThreshold {
		// The branch holds a quorum from the start; no leak needed.
		return 0
	}
	t := math.Sqrt(math.Exp2(25) * (math.Log(2*(1-p0)) - math.Log(p0)))
	return math.Min(t, p.EjectionEpoch)
}

// ConflictEpochSlashing is Equation 9: the epoch at which a branch regains
// a 2/3 quorum when Byzantine validators (proportion beta0) double-vote and
// are active on the branch alongside the honest-active proportion p0.
func (p Params) ConflictEpochSlashing(p0, beta0 float64) float64 {
	effective := p0 + beta0/(1-beta0)
	arg := math.Log(2*(1-p0)) - math.Log(effective)
	if arg <= 0 {
		// Quorum already held at t=0.
		return 0
	}
	t := math.Sqrt(math.Exp2(25) * arg)
	return math.Min(t, p.EjectionEpoch)
}

// ConflictEpochSemiActive numerically solves Equation 10 = 2/3: the epoch
// at which a branch regains a 2/3 quorum when Byzantine validators are
// semi-active (non-slashable). There is no closed form; the paper reports
// 555.65 for p0=0.5, beta0=0.33. The result is capped by the ejection
// epoch.
func (p Params) ConflictEpochSemiActive(p0, beta0 float64) (float64, error) {
	f := func(t float64) float64 {
		return p.ActiveRatioSemiActive(t, p0, beta0) - SupermajorityThreshold
	}
	if f(0) >= 0 {
		return 0, nil
	}
	if f(p.EjectionEpoch-1e-9) < 0 {
		// Quorum only returns via ejection.
		return p.EjectionEpoch, nil
	}
	root, err := mathx.Brent(f, 0, p.EjectionEpoch-1e-9, 1e-9)
	if err != nil {
		return 0, fmt.Errorf("analytic: solving Equation 10 for p0=%g beta0=%g: %w", p0, beta0, err)
	}
	return root, nil
}

// BranchConflict describes when each branch of a two-branch fork regains
// finality and when conflicting finalization is reached.
type BranchConflict struct {
	// ThresholdA and ThresholdB are the epochs at which branches with
	// honest-active proportions p0 and 1-p0 regain a 2/3 quorum.
	ThresholdA, ThresholdB float64
	// ConflictEpoch is the epoch of conflicting finalization: one epoch
	// after the slower branch regains its quorum (the extra epoch
	// finalizes the justified checkpoint, Section 5.1).
	ConflictEpoch float64
}

// Behavior selects the Byzantine strategy for conflict computations.
type Behavior int

// Byzantine behaviors for the conflicting-finalization scenarios.
const (
	// HonestOnly is Scenario 5.1: no Byzantine validators.
	HonestOnly Behavior = iota
	// WithSlashing is Scenario 5.2.1: double-voting on both branches.
	WithSlashing
	// WithoutSlashing is Scenario 5.2.2: semi-active on both branches.
	WithoutSlashing
)

// String names the behavior.
func (b Behavior) String() string {
	switch b {
	case HonestOnly:
		return "honest only"
	case WithSlashing:
		return "with slashing"
	case WithoutSlashing:
		return "without slashing"
	default:
		return fmt.Sprintf("behavior(%d)", int(b))
	}
}

// ConflictingFinalization computes when both branches of a fork finalize
// conflicting checkpoints, for honest split p0 / 1-p0 and Byzantine
// proportion beta0 following the given behavior.
func (p Params) ConflictingFinalization(behavior Behavior, p0, beta0 float64) (BranchConflict, error) {
	var ta, tb float64
	var err error
	switch behavior {
	case HonestOnly:
		ta = p.ConflictEpochHonest(p0)
		tb = p.ConflictEpochHonest(1 - p0)
	case WithSlashing:
		ta = p.ConflictEpochSlashing(p0, beta0)
		tb = p.ConflictEpochSlashing(1-p0, beta0)
	case WithoutSlashing:
		ta, err = p.ConflictEpochSemiActive(p0, beta0)
		if err != nil {
			return BranchConflict{}, err
		}
		tb, err = p.ConflictEpochSemiActive(1-p0, beta0)
		if err != nil {
			return BranchConflict{}, err
		}
	default:
		return BranchConflict{}, fmt.Errorf("analytic: unknown behavior %d", behavior)
	}
	slowest := math.Max(ta, tb)
	return BranchConflict{
		ThresholdA:    ta,
		ThresholdB:    tb,
		ConflictEpoch: math.Ceil(slowest) + 1,
	}, nil
}

// PaperTableEpoch rounds a threshold epoch the way the paper's Tables 2-3
// report it: the first whole epoch at which the quorum holds.
func PaperTableEpoch(t float64) int { return int(math.Ceil(t)) }
