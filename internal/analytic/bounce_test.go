package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestBounceWindowEquation14(t *testing.T) {
	// beta0 = 1/3: window is (0.5, 1).
	lo, hi := BounceWindow(1.0 / 3.0)
	if math.Abs(lo-0.5) > 1e-12 || math.Abs(hi-1.0) > 1e-12 {
		t.Errorf("window(1/3) = (%v, %v), want (0.5, 1)", lo, hi)
	}
	// beta0 -> 0: window collapses toward p0 = 2/3 (paper: "the closer
	// beta0 is to 0, the closer p0 has to be from 2/3").
	lo, hi = BounceWindow(0.01)
	if math.Abs(lo-2.0/3.0) > 0.01 || math.Abs(hi-2.0/3.0) > 0.01 {
		t.Errorf("window(0.01) = (%v, %v), want both near 2/3", lo, hi)
	}
}

func TestBounceWindowConditions(t *testing.T) {
	// Inside the window both defining conditions hold; outside at least
	// one fails.
	f := func(rawP, rawB uint8) bool {
		p0 := float64(rawP) / 255
		beta0 := 0.05 + 0.28*float64(rawB)/255
		inWindow := BounceWindowValid(p0, beta0)
		condA := p0*(1-beta0) < 2.0/3.0
		condB := p0*(1-beta0)+beta0 > 2.0/3.0
		return inWindow == (condA && condB)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPaperContinuationProbability pins Section 5.3's estimate: reaching
// epoch 7000 with j=8, beta0=1/3 has probability 1.01e-121.
func TestPaperContinuationProbability(t *testing.T) {
	got := BounceContinuationProbability(1.0/3.0, 8, 7000)
	if got < 0.9e-121 || got > 1.1e-121 {
		t.Errorf("continuation probability = %e, want ~1.01e-121", got)
	}
}

func TestContinuationProbabilityShape(t *testing.T) {
	// More epochs: less likely. More Byzantine: more likely. j larger:
	// more likely.
	if !(BounceContinuationProbability(0.3, 8, 10) > BounceContinuationProbability(0.3, 8, 20)) {
		t.Error("longer attacks must be less likely")
	}
	if !(BounceContinuationProbability(0.33, 8, 10) > BounceContinuationProbability(0.2, 8, 10)) {
		t.Error("more Byzantine stake must make continuation more likely")
	}
	if !(BounceContinuationProbability(0.3, 16, 10) > BounceContinuationProbability(0.3, 8, 10)) {
		t.Error("larger j must make continuation more likely")
	}
}

// TestEquation15 pins the two-epoch score distribution: probabilities sum
// to 1, and the mean is +3 per two epochs regardless of p0 (the origin of
// the drift V = 3/2).
func TestEquation15(t *testing.T) {
	for _, p0 := range []float64{0.1, 0.5, 0.66} {
		d := TwoEpochScoreDistribution(p0)
		var total, mean float64
		for _, o := range d {
			total += o.Probability
			mean += float64(o.Delta) * o.Probability
		}
		if math.Abs(total-1) > 1e-12 {
			t.Errorf("p0=%v: probabilities sum to %v", p0, total)
		}
		if math.Abs(mean-3) > 1e-12 {
			t.Errorf("p0=%v: two-epoch mean = %v, want +3", p0, mean)
		}
	}
	// The specific deltas of Equation 15.
	d := TwoEpochScoreDistribution(0.5)
	if d[0].Delta != 8 || d[1].Delta != 3 || d[2].Delta != -2 {
		t.Errorf("deltas = %v, want +8/+3/-2", d)
	}
	if d[0].Probability != 0.25 || d[1].Probability != 0.5 {
		t.Errorf("p0=0.5 probabilities = %v, want 0.25/0.5/0.25", d)
	}
}

func TestBounceModelMoments(t *testing.T) {
	m := BounceModel{P0: 0.5}
	if m.Drift() != 1.5 {
		t.Errorf("drift = %v, want 3/2", m.Drift())
	}
	if m.Diffusion() != 6.25 {
		t.Errorf("diffusion = %v, want 25*0.25", m.Diffusion())
	}
}

func TestScorePDFNormalization(t *testing.T) {
	m := BounceModel{P0: 0.5}
	tt := 500.0
	total := mathx.Simpson(func(s float64) float64 { return m.ScorePDF(s, tt) }, -2000, 4000, 8000)
	if math.Abs(total-1) > 1e-6 {
		t.Errorf("score pdf integrates to %v, want 1", total)
	}
	// Mean at V*t.
	mean := mathx.Simpson(func(s float64) float64 { return s * m.ScorePDF(s, tt) }, -2000, 4000, 8000)
	if math.Abs(mean-1.5*tt) > 1e-3 {
		t.Errorf("score mean = %v, want %v", mean, 1.5*tt)
	}
}

func TestStakeCDFIsLogNormalForm(t *testing.T) {
	// Equation 19 written via mathx.LogNormalCDF: ln s ~ N(ln 32 - Vt^2/2^27,
	// (4/3 D t^3)/2 / 2^52). Cross-check the two forms.
	m := BounceModel{P0: 0.5}
	tt := 2000.0
	mu := math.Log(InitialStakeETH) - m.Drift()*tt*tt/2/Quotient
	sigma := math.Sqrt(2.0/3.0*m.Diffusion()*tt*tt*tt) / Quotient
	for _, s := range []float64{10, 20, 28, 31} {
		a := m.StakeCDF(s, tt)
		b := mathx.LogNormalCDF(s/1, mu, sigma)
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("s=%v: Equation 19 form %v != lognormal form %v", s, a, b)
		}
	}
}

func TestStakePDFMatchesCDFDerivative(t *testing.T) {
	// The distribution at t=3000 is a narrow log-normal spike around the
	// mean stake 32 e^{-V t^2 / 2^27} ~ 28.9 ETH (sigma ~ 0.14 ETH);
	// sample the derivative within the spike where both quantities are
	// well conditioned.
	m := BounceModel{P0: 0.5}
	tt := 3000.0
	mean := InitialStakeETH * math.Exp(-m.Drift()*tt*tt/2/Quotient)
	const h = 1e-6
	for _, s := range []float64{mean - 0.2, mean, mean + 0.2} {
		numeric := (m.StakeCDF(s+h, tt) - m.StakeCDF(s-h, tt)) / (2 * h)
		pdf := m.StakePDF(s, tt)
		if rel := math.Abs(numeric-pdf) / pdf; rel > 1e-3 {
			t.Errorf("s=%v: pdf %v vs cdf derivative %v (rel %v)", s, pdf, numeric, rel)
		}
	}
}

func TestStakeCDFBoundaries(t *testing.T) {
	m := BounceModel{P0: 0.5}
	if m.StakeCDF(-1, 100) != 0 || m.StakeCDF(0, 100) != 0 {
		t.Error("no mass at non-positive stake")
	}
	if m.StakeCDF(31.999, 0) != 0 || m.StakeCDF(32.001, 0) != 1 {
		t.Error("t=0 distribution must be a point mass at 32")
	}
	if got := m.StakeCDF(1e9, 4000); math.Abs(got-1) > 1e-9 {
		t.Errorf("CDF at +inf = %v, want 1", got)
	}
}

func TestCensoredStakeCDFStructure(t *testing.T) {
	m := BounceModel{P0: 0.5}
	tt := 4024.0 // the epoch of Figure 9
	// Below the ejection point the CDF equals the atom mass.
	atom := m.StakeCDF(EjectionStakeETH, tt)
	if got := m.CensoredStakeCDF(10, tt); math.Abs(got-atom) > 1e-12 {
		t.Errorf("below-ejection CDF = %v, want atom mass %v", got, atom)
	}
	// At the cap the CDF is exactly 1.
	if got := m.CensoredStakeCDF(32, tt); got != 1 {
		t.Errorf("CDF at cap = %v, want 1", got)
	}
	// Strictly monotone between.
	if !(m.CensoredStakeCDF(25, tt) < m.CensoredStakeCDF(30, tt)) {
		t.Error("CDF must increase in the interior")
	}
}

func TestCensoredStakeCDFMonotoneProperty(t *testing.T) {
	m := BounceModel{P0: 0.4}
	f := func(rawX, rawY uint16, rawT uint8) bool {
		x := float64(rawX) / 65535 * 40
		y := float64(rawY) / 65535 * 40
		tt := 100 + float64(rawT)*20
		if x > y {
			x, y = y, x
		}
		gx := m.CensoredStakeCDF(x, tt)
		gy := m.CensoredStakeCDF(y, tt)
		return gx <= gy+1e-12 && gx >= 0 && gy <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFigure9Distribution pins the structure of Figure 9. At the figure's
// epoch t = 4024 the true distribution is a narrow spike well inside
// (16.75, 32) — the paper drew the figure "with exaggerated standard
// deviation", so the atoms are visually prominent there but analytically
// negligible. Late in the attack (t = 7400) the ejection atom carries real
// mass. In both regimes total mass must be 1 and the interior density must
// vanish outside the censor interval.
func TestFigure9Distribution(t *testing.T) {
	m := BounceModel{P0: 0.5}

	d := m.Distribution(4024)
	interior := mathx.AdaptiveSimpson(d.Interior, EjectionStakeETH, InitialStakeETH, 1e-10)
	total := d.AtomEjected + d.AtomCapped + interior
	if math.Abs(total-1) > 1e-6 {
		t.Errorf("t=4024: total mass = %v, want 1", total)
	}
	if d.AtomEjected > 1e-6 {
		t.Errorf("t=4024: ejection atom = %v, want ~0 (spike far from censors)", d.AtomEjected)
	}
	if d.Interior(10) != 0 || d.Interior(33) != 0 {
		t.Error("interior density must vanish outside (16.75, 32)")
	}

	late := m.Distribution(7400)
	lateInterior := mathx.AdaptiveSimpson(late.Interior, EjectionStakeETH, InitialStakeETH, 1e-10)
	lateTotal := late.AtomEjected + late.AtomCapped + lateInterior
	if math.Abs(lateTotal-1) > 1e-6 {
		t.Errorf("t=7400: total mass = %v, want 1", lateTotal)
	}
	if late.AtomEjected < 0.01 {
		t.Errorf("t=7400: ejection atom = %v, want > 1%% (mass reaching the censor)", late.AtomEjected)
	}
}

// TestEquation24AtOneThird pins the paper's observation that beta0 = 1/3
// makes Equation 24 evaluate to exactly F(sB(t), t) = 0.5 for all t.
func TestEquation24AtOneThird(t *testing.T) {
	m := BounceModel{P0: 0.5}
	params := PaperParams()
	for _, tt := range []float64{500, 2000, 5000} {
		got := m.ExceedProbability(tt, 1.0/3.0, params)
		if math.Abs(got-0.5) > 1e-9 {
			t.Errorf("t=%v: P(beta > 1/3) = %v, want 0.5", tt, got)
		}
	}
}

// TestFigure10Shape pins Figure 10: curves are ordered by beta0, small
// beta0 stays near zero until late in the leak, probabilities jump near the
// Byzantine ejection epoch and drop to zero after it.
func TestFigure10Shape(t *testing.T) {
	m := BounceModel{P0: 0.5}
	params := PaperParams()
	// Ordering in beta0 at a fixed epoch.
	betas := []float64{0.3, 0.329, 0.33, 0.333, 0.3333, 1.0 / 3.0}
	tt := 4000.0
	prev := -1.0
	for _, b := range betas {
		got := m.ExceedProbability(tt, b, params)
		if got < prev-1e-12 {
			t.Errorf("probability must increase with beta0: beta0=%v gives %v after %v", b, got, prev)
		}
		prev = got
	}
	// beta0 = 0.3 is negligible mid-leak.
	if got := m.ExceedProbability(3000, 0.3, params); got > 1e-6 {
		t.Errorf("beta0=0.3 at t=3000 = %v, want ~0", got)
	}
	// Probability rises sharply right before Byzantine ejection...
	nearEject := m.ExceedProbability(7600, 0.3, params)
	if nearEject < 0.2 {
		t.Errorf("beta0=0.3 near ejection = %v, want sharp rise (paper: 'rises abruptly')", nearEject)
	}
	// ...and is zero after the Byzantine validators are ejected.
	if got := m.ExceedProbability(7652, 0.3, params); got != 0 {
		t.Errorf("after Byzantine ejection = %v, want 0", got)
	}
}

// TestFigure10DoublingRemark checks the paper's remark that the probability
// can effectively be doubled because the attack runs on two branches: we
// expose that as simply 2*ExceedProbability capped at 1 downstream; here we
// verify the one-branch probability stays <= 0.5 for beta0 <= 1/3 so the
// doubling never exceeds 1 before ejection.
func TestFigure10DoublingRemark(t *testing.T) {
	m := BounceModel{P0: 0.5}
	params := PaperParams()
	for _, b := range []float64{0.3, 0.32, 1.0 / 3.0} {
		for _, tt := range []float64{100, 1000, 4000, 7000} {
			if got := m.ExceedProbability(tt, b, params); got > 0.5+1e-9 {
				t.Errorf("one-branch probability %v at (t=%v, b=%v) exceeds 0.5", got, tt, b)
			}
		}
	}
}
