package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStakeLawsAtZero(t *testing.T) {
	if StakeActive(0) != 32 || StakeInactive(0) != 32 || StakeSemiActive(0) != 32 {
		t.Error("all stake laws must start at 32 ETH")
	}
	if StakeActive(5000) != 32 {
		t.Error("active validators never lose stake during a leak")
	}
}

func TestStakeLawsOrdering(t *testing.T) {
	// At any positive epoch: active > semi-active > inactive.
	for _, tt := range []float64{1, 100, 1000, 4000, 7000} {
		a, s, i := StakeActive(tt), StakeSemiActive(tt), StakeInactive(tt)
		if !(a > s && s > i) {
			t.Errorf("t=%v: ordering violated: active=%v semi=%v inactive=%v", tt, a, s, i)
		}
	}
}

func TestStakeLawsMonotoneDecreasing(t *testing.T) {
	f := func(raw uint16) bool {
		t1 := float64(raw) / 8
		t2 := t1 + 1
		return StakeInactive(t2) < StakeInactive(t1) &&
			StakeSemiActive(t2) < StakeSemiActive(t1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPaperFigure2KeyPoints pins the Figure 2 trajectories at the ejection
// crossings derived from the stake laws themselves.
func TestPaperFigure2KeyPoints(t *testing.T) {
	inactiveCross := InactiveEjectionCrossing()
	if math.Abs(inactiveCross-4660.58) > 0.5 {
		t.Errorf("inactive ejection crossing = %v, want ~4660.6", inactiveCross)
	}
	semiCross := SemiActiveEjectionCrossing()
	if math.Abs(semiCross-7610.70) > 0.5 {
		t.Errorf("semi-active ejection crossing = %v, want ~7610.7", semiCross)
	}
	// The crossings satisfy the defining equations.
	if math.Abs(StakeInactive(inactiveCross)-EjectionStakeETH) > 1e-9 {
		t.Error("inactive crossing does not satisfy its stake law")
	}
	if math.Abs(StakeSemiActive(semiCross)-EjectionStakeETH) > 1e-9 {
		t.Error("semi-active crossing does not satisfy its stake law")
	}
}

// TestPaperEjectionRatioSqrt83 checks the internal consistency of the
// paper's reported ejection epochs: 7652 / 4685 = sqrt(8/3), the exact
// ratio implied by the two stake laws.
func TestPaperEjectionRatioSqrt83(t *testing.T) {
	ratioPaper := PaperSemiActiveEjectionEpoch / PaperEjectionEpoch
	ratioLaws := SemiActiveEjectionCrossing() / InactiveEjectionCrossing()
	want := math.Sqrt(8.0 / 3.0)
	if math.Abs(ratioPaper-want) > 1e-3 {
		t.Errorf("paper ejection ratio = %v, want sqrt(8/3) = %v", ratioPaper, want)
	}
	if math.Abs(ratioLaws-want) > 1e-9 {
		t.Errorf("law ejection ratio = %v, want sqrt(8/3) = %v", ratioLaws, want)
	}
}

func TestScoreModels(t *testing.T) {
	if InactivityScoreInactive(100) != 400 {
		t.Error("inactive score must be 4t")
	}
	if InactivityScoreSemiActive(100) != 150 {
		t.Error("semi-active score must be 3t/2")
	}
}

func TestParamsConstructors(t *testing.T) {
	p := PaperParams()
	if p.EjectionEpoch != 4685 || p.SemiActiveEjectionEpoch != 7652 {
		t.Errorf("PaperParams = %+v", p)
	}
	c := ContinuousParams()
	if math.Abs(c.EjectionEpoch-4660.58) > 0.5 {
		t.Errorf("ContinuousParams ejection = %v", c.EjectionEpoch)
	}
	// Documented discrepancy: the paper's anchor exceeds the endogenous
	// crossing by ~24 epochs.
	if d := p.EjectionEpoch - c.EjectionEpoch; d < 20 || d > 30 {
		t.Errorf("paper-vs-continuous ejection gap = %v, want ~24", d)
	}
}

// TestStakeDecayExponentsMatchScores verifies that each stake law is the
// solution of s' = -I(t) s / 2^26 (Equation 3) for its score model, by
// comparing the log-derivative against -I(t)/2^26 numerically.
func TestStakeDecayExponentsMatchScores(t *testing.T) {
	const h = 1e-3
	for _, tt := range []float64{10, 500, 3000} {
		// Inactive: d/dt ln s = -4t/2^26.
		got := (math.Log(StakeInactive(tt+h)) - math.Log(StakeInactive(tt-h))) / (2 * h)
		want := -InactivityScoreInactive(tt) / Quotient
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("inactive log-derivative at %v = %v, want %v", tt, got, want)
		}
		// Semi-active: d/dt ln s = -(3t/2)/2^26.
		got = (math.Log(StakeSemiActive(tt+h)) - math.Log(StakeSemiActive(tt-h))) / (2 * h)
		want = -InactivityScoreSemiActive(tt) / Quotient
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("semi-active log-derivative at %v = %v, want %v", tt, got, want)
		}
	}
}
