// Package analytic implements every closed-form and numeric model in the
// paper "Byzantine Attacks Exploiting Penalties in Ethereum PoS" (DSN 2024):
// the continuous stake laws of Section 4.3, the active-stake ratio curves
// and conflicting-finalization solvers of Sections 5.1-5.2 (Equations 5-13),
// and the probabilistic bouncing-attack distribution of Section 5.3
// (Equations 14-24).
//
// Two parameterizations are provided. PaperParams anchors the ejection
// epoch at 4685 (the value the paper reports and builds Tables 2-3, the
// 0.2421 threshold, and Figure 7 on). ContinuousParams derives the ejection
// epoch endogenously from the stake law, which crosses 16.75 ETH at
// t ~ 4660.7; the ~24-epoch gap is a documented discrepancy internal to the
// paper (see DESIGN.md).
//
// # Equation-to-function map
//
// Section 4 (inactivity leak):
//
//	Eq 1  score update (+4 inactive / -1 active) ... types.Spec constants,
//	      exercised by incentives.Engine.ProcessEpoch
//	Eq 2  s(t) = s(t-1) - I(t-1) s(t-1)/2^26 ..... incentives.Engine (integer),
//	      core.cohort.step (aggregate integer)
//	Eq 3  s' = -I s / 2^26 ...................... StakeInactive, StakeSemiActive,
//	      StakeActive (closed-form solutions per behavior)
//
// Section 5.1 (honest-only conflicting finalization):
//
//	Eq 4/5  active-stake ratio .................. Params.ActiveRatioHonest
//	Eq 6    threshold epoch ..................... Params.ConflictEpochHonest
//
// Section 5.2 (Byzantine acceleration and the 1/3 threshold):
//
//	Eq 7/8  ratio with double-voting Byzantine .. Params.ActiveRatioSlashing
//	Eq 9    threshold epoch (closed form) ....... Params.ConflictEpochSlashing
//	Eq 10   ratio with semi-active Byzantine .... Params.ActiveRatioSemiActive,
//	        root solved by Params.ConflictEpochSemiActive (Brent)
//	Eq 11   Byzantine proportion over time ...... Params.BetaProportion,
//	        Params.BetaProportionWithEjection
//	Eq 12   beta >= 1/3 condition ............... Params.ExceedsOnBothBranches
//	Eq 13   beta_max at ejection ................ Params.BetaMax,
//	        boundary in closed form: Params.ThresholdBeta0
//
// Section 5.3 (probabilistic bouncing attack):
//
//	Eq 14   attack window ....................... BounceWindow, BounceWindowValid
//	Eq 15   two-epoch score distribution ........ TwoEpochScoreDistribution
//	Eq 16   score density phi(I, t) ............. BounceModel.ScorePDF
//	Eq 17   ds/dt = -I s / 2^26 ................. (same as Eq 3; integrated in
//	        BounceModel.StakeCDF's exponent)
//	Eq 18   stake density P(s, t) ............... BounceModel.StakePDF
//	Eq 19   stake CDF F(s, t) ................... BounceModel.StakeCDF
//	Eq 20-21 censored law (atoms at 16.75/32) ... BounceModel.Distribution
//	Eq 22   censored CDF ........................ BounceModel.CensoredStakeCDF
//	        (generic form: mathx.CensoredCDF)
//	Eq 23/24 P[beta > 1/3] ...................... BounceModel.ExceedProbability;
//	        Monte-Carlo counterpart: core.BounceMC.ExceedProbability
//	(1-(1-beta0)^j)^k continuation .............. BounceContinuationProbability
package analytic
