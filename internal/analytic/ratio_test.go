package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestActiveRatioHonestInitial(t *testing.T) {
	p := PaperParams()
	for _, p0 := range []float64{0.2, 0.3, 0.4, 0.5, 0.6} {
		if got := p.ActiveRatioHonest(0, p0); math.Abs(got-p0) > 1e-12 {
			t.Errorf("ratio at t=0 = %v, want p0 = %v", got, p0)
		}
	}
}

func TestActiveRatioHonestJumpsToOneAtEjection(t *testing.T) {
	p := PaperParams()
	if got := p.ActiveRatioHonest(PaperEjectionEpoch, 0.3); got != 1 {
		t.Errorf("ratio at ejection = %v, want 1 (Figure 3 jump)", got)
	}
	if got := p.ActiveRatioHonest(PaperEjectionEpoch-1, 0.3); got >= SupermajorityThreshold {
		t.Errorf("p0=0.3 must not reach 2/3 before ejection, got %v", got)
	}
}

// TestFigure3Shape pins the qualitative content of Figure 3: p0=0.6 crosses
// 2/3 around epoch 3107 well before ejection; p0 <= 0.5 only regains the
// quorum via ejection at 4685.
func TestFigure3Shape(t *testing.T) {
	p := PaperParams()
	if got := p.ActiveRatioHonest(3106, 0.6); got >= SupermajorityThreshold {
		t.Errorf("p0=0.6 ratio at 3106 = %v, want < 2/3", got)
	}
	if got := p.ActiveRatioHonest(3108, 0.6); got <= SupermajorityThreshold {
		t.Errorf("p0=0.6 ratio at 3108 = %v, want > 2/3", got)
	}
	for _, p0 := range []float64{0.2, 0.3, 0.4, 0.5} {
		if got := p.ActiveRatioHonest(4684, p0); got >= SupermajorityThreshold {
			t.Errorf("p0=%v must not reach 2/3 before ejection, got %v", p0, got)
		}
	}
}

func TestActiveRatioHonestMonotoneInTime(t *testing.T) {
	p := PaperParams()
	f := func(rawT uint16, rawP uint8) bool {
		t1 := float64(rawT % 4600)
		p0 := 0.1 + 0.5*float64(rawP)/255
		return p.ActiveRatioHonest(t1+1, p0) >= p.ActiveRatioHonest(t1, p0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestActiveRatioSlashingInitial(t *testing.T) {
	p := PaperParams()
	p0, beta0 := 0.5, 0.2
	want := p0*(1-beta0) + beta0 // 0.6
	if got := p.ActiveRatioSlashing(0, p0, beta0); math.Abs(got-want) > 1e-12 {
		t.Errorf("slashing ratio at t=0 = %v, want %v", got, want)
	}
	// Reduces to the honest ratio at beta0 = 0.
	for _, tt := range []float64{0, 100, 2000} {
		a := p.ActiveRatioSlashing(tt, 0.4, 0)
		b := p.ActiveRatioHonest(tt, 0.4)
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("slashing ratio with beta0=0 diverges from honest: %v vs %v", a, b)
		}
	}
	if got := p.ActiveRatioSlashing(PaperEjectionEpoch, 0.2, 0.1); got != 1 {
		t.Errorf("slashing ratio at ejection = %v, want 1", got)
	}
}

func TestActiveRatioSlashingDominatesHonest(t *testing.T) {
	// Byzantine double-voters add active stake: the ratio must always be
	// at least the honest-only ratio.
	p := PaperParams()
	f := func(rawT uint16, rawB uint8) bool {
		tt := float64(rawT % 4600)
		beta0 := 0.33 * float64(rawB) / 255
		return p.ActiveRatioSlashing(tt, 0.5, beta0) >= p.ActiveRatioHonest(tt, 0.5)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestActiveRatioSemiActiveBetweenHonestAndSlashing(t *testing.T) {
	// Semi-active Byzantine stake decays, so the ratio sits between the
	// honest-only curve and the full double-voting curve.
	p := PaperParams()
	for _, tt := range []float64{0, 200, 1000, 3000, 4500} {
		h := p.ActiveRatioHonest(tt, 0.5)
		s := p.ActiveRatioSemiActive(tt, 0.5, 0.25)
		d := p.ActiveRatioSlashing(tt, 0.5, 0.25)
		if !(h-1e-12 <= s && s <= d+1e-12) {
			t.Errorf("t=%v: want honest(%v) <= semi(%v) <= slashing(%v)", tt, h, s, d)
		}
	}
}

func TestBetaProportionInitial(t *testing.T) {
	p := PaperParams()
	for _, beta0 := range []float64{0.1, 0.2421, 0.33} {
		if got := p.BetaProportion(0, 0.5, beta0); math.Abs(got-beta0) > 1e-12 {
			t.Errorf("beta(0) = %v, want beta0 = %v", got, beta0)
		}
	}
}

// TestPaperThresholdBeta0 pins the paper's headline number: for p0 = 0.5
// the minimum initial Byzantine proportion that can cross 1/3 on both
// branches is 1/(1+4 e^{-3*4685^2/2^28}) = 0.2421.
func TestPaperThresholdBeta0(t *testing.T) {
	p := PaperParams()
	got := p.ThresholdBeta0(0.5)
	if math.Abs(got-0.2421) > 5e-4 {
		t.Errorf("ThresholdBeta0(0.5) = %v, want 0.2421", got)
	}
	// The closed form against the direct definition.
	direct := 1 / (1 + 4*math.Exp(-3*PaperEjectionEpoch*PaperEjectionEpoch/math.Exp2(28)))
	if math.Abs(got-direct) > 1e-12 {
		t.Errorf("closed form %v != direct %v", got, direct)
	}
}

func TestThresholdBeta0IsBetaMaxBoundary(t *testing.T) {
	p := PaperParams()
	for _, p0 := range []float64{0.3, 0.5, 0.6} {
		beta := p.ThresholdBeta0(p0)
		if got := p.BetaMax(p0, beta); math.Abs(got-1.0/3.0) > 1e-9 {
			t.Errorf("BetaMax(p0=%v, threshold) = %v, want 1/3", p0, got)
		}
		if p.BetaMax(p0, beta-0.01) >= 1.0/3.0 {
			t.Errorf("below threshold must stay under 1/3 (p0=%v)", p0)
		}
		if p.BetaMax(p0, beta+0.01) <= 1.0/3.0 {
			t.Errorf("above threshold must exceed 1/3 (p0=%v)", p0)
		}
	}
}

// TestFigure7Region pins Figure 7's content: the symmetric corner is at
// (p0, beta0) = (0.5, 0.2421); above it both branches can be pushed past
// 1/3, below not; asymmetric splits raise the requirement.
func TestFigure7Region(t *testing.T) {
	p := PaperParams()
	if !p.ExceedsOnBothBranches(0.5, 0.25) {
		t.Error("(0.5, 0.25) must exceed on both branches")
	}
	if p.ExceedsOnBothBranches(0.5, 0.23) {
		t.Error("(0.5, 0.23) must not exceed on both branches")
	}
	// Asymmetric split: the branch with more honest actives needs a
	// larger beta0; (0.7, 0.25) fails on the p0=0.7 branch.
	if p.ExceedsOnBothBranches(0.7, 0.25) {
		t.Error("(0.7, 0.25) must fail on the honest-heavy branch")
	}
	// beta0 = 0.33 exceeds for a wide p0 range.
	if !p.ExceedsOnBothBranches(0.6, 0.33) {
		t.Error("(0.6, 0.33) must exceed on both branches")
	}
}

func TestBetaMaxMonotoneInBeta0(t *testing.T) {
	p := PaperParams()
	f := func(rawB uint8) bool {
		b := 0.01 + 0.3*float64(rawB)/255
		return p.BetaMax(0.5, b+0.01) > p.BetaMax(0.5, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBetaProportionPeaksAtEjection(t *testing.T) {
	// The Byzantine proportion grows during the leak and JUMPS to the
	// Equation 13 maximum at the moment honest inactive validators are
	// ejected — the paper's Figure 2 intuition: "the biggest gap between
	// semi-active Byzantine stake and honest inactive stake is at the
	// moment of expulsion".
	p := PaperParams()
	beta := func(tt float64) float64 { return p.BetaProportion(tt, 0.5, 0.25) }
	if !(beta(4000) > beta(1000) && beta(1000) > beta(0)) {
		t.Error("beta proportion must grow during the leak")
	}
	// Just before ejection the inactive validators still hold ~16.6 ETH
	// each, so the proportion is well below the post-ejection maximum.
	before := p.BetaProportionWithEjection(PaperEjectionEpoch-1, 0.5, 0.25)
	after := p.BetaProportionWithEjection(PaperEjectionEpoch, 0.5, 0.25)
	bm := p.BetaMax(0.5, 0.25)
	if math.Abs(after-bm) > 1e-9 {
		t.Errorf("post-ejection proportion %v != BetaMax %v", after, bm)
	}
	if after-before < 0.05 {
		t.Errorf("ejection jump = %v -> %v, want a pronounced jump", before, after)
	}
	// With beta0 = 0.25 > 0.2421 the jump crosses the 1/3 threshold.
	if before >= 1.0/3.0 || after <= 1.0/3.0 {
		t.Errorf("threshold crossing at ejection expected: before=%v after=%v", before, after)
	}
}
