package analytic

import "math"

// ActiveRatioHonest is Equation 5: the fraction of a branch's stake held by
// active validators at epoch t of a leak, when a proportion p0 of all
// validators is active on the branch and the rest are inactive (honest-only
// setting, Section 5.1). Once inactive validators are ejected the ratio
// snaps to 1 (the jump visible in Figure 3 for p0 <= 0.5).
func (p Params) ActiveRatioHonest(t, p0 float64) float64 {
	if t >= p.EjectionEpoch {
		return 1
	}
	inactive := (1 - p0) * math.Exp(-t*t/math.Exp2(25))
	return p0 / (p0 + inactive)
}

// ActiveRatioSlashing is Equation 8: the active-stake ratio on a branch
// when Byzantine validators (initial proportion beta0) double-vote on both
// branches, staying fully active on each (Section 5.2.1). p0 is the
// proportion of honest validators active on this branch.
func (p Params) ActiveRatioSlashing(t, p0, beta0 float64) float64 {
	if t >= p.EjectionEpoch {
		return 1
	}
	active := p0*(1-beta0) + beta0
	inactive := (1 - p0) * (1 - beta0) * math.Exp(-t*t/math.Exp2(25))
	return active / (active + inactive)
}

// ActiveRatioSemiActive is Equation 10: the active-stake ratio on a branch
// when Byzantine validators alternate between branches (semi-active,
// non-slashable, Section 5.2.2). The Byzantine stake itself decays as
// StakeSemiActive.
func (p Params) ActiveRatioSemiActive(t, p0, beta0 float64) float64 {
	if t >= p.EjectionEpoch {
		return 1
	}
	byz := beta0 * math.Exp(-3*t*t/math.Exp2(28))
	honestActive := p0 * (1 - beta0)
	inactive := (1 - p0) * (1 - beta0) * math.Exp(-t*t/math.Exp2(25))
	return (honestActive + byz) / (honestActive + byz + inactive)
}

// BetaProportion is Equation 11: the proportion of Byzantine stake on a
// branch over time when Byzantine validators are semi-active and honest
// inactive validators keep leaking (Section 5.2.3).
func (p Params) BetaProportion(t, p0, beta0 float64) float64 {
	byz := beta0 * math.Exp(-3*t*t/math.Exp2(28))
	honestActive := p0 * (1 - beta0)
	honestInactive := (1 - p0) * (1 - beta0) * math.Exp(-t*t/math.Exp2(25))
	return byz / (honestActive + honestInactive + byz)
}

// BetaProportionWithEjection is Equation 11 with the ejection of honest
// inactive validators applied: at the ejection epoch the inactive term
// drops out and the proportion jumps to the Equation 13 value — the moment
// the paper identifies as the Byzantine maximum.
func (p Params) BetaProportionWithEjection(t, p0, beta0 float64) float64 {
	if t >= p.EjectionEpoch {
		byz := beta0 * math.Exp(-3*t*t/math.Exp2(28))
		return byz / (p0*(1-beta0) + byz)
	}
	return p.BetaProportion(t, p0, beta0)
}

// BetaMax is Equation 13: the Byzantine stake proportion at the moment the
// honest inactive validators are ejected — the maximum the proportion
// reaches for a given (p0, beta0).
func (p Params) BetaMax(p0, beta0 float64) float64 {
	e := math.Exp(-3 * p.EjectionEpoch * p.EjectionEpoch / math.Exp2(28))
	byz := beta0 * e
	return byz / (p0*(1-beta0) + byz)
}

// ThresholdBeta0 solves BetaMax(p0, beta0) = 1/3 for beta0 in closed form:
// the minimum initial Byzantine proportion that can exceed the 1/3 Safety
// threshold on a branch with honest-active proportion p0. For p0 = 0.5 this
// is the paper's 1/(1+4e^{-3*4685^2/2^28}) = 0.2421.
func (p Params) ThresholdBeta0(p0 float64) float64 {
	e := math.Exp(-3 * p.EjectionEpoch * p.EjectionEpoch / math.Exp2(28))
	// beta/(1-beta) = p0 / (2e)  =>  beta = p0 / (p0 + 2e).
	return p0 / (p0 + 2*e)
}

// ExceedsOnBothBranches reports whether the pair (p0, beta0) lets the
// Byzantine proportion exceed 1/3 on both branches simultaneously
// (Figure 7): BetaMax must reach 1/3 with honest-active proportion p0 on
// one branch and 1-p0 on the other.
func (p Params) ExceedsOnBothBranches(p0, beta0 float64) bool {
	return p.BetaMax(p0, beta0) >= 1.0/3.0 && p.BetaMax(1-p0, beta0) >= 1.0/3.0
}
