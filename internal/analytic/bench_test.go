package analytic

import "testing"

// BenchmarkConflictEpochSlashing measures the Equation 9 closed form.
func BenchmarkConflictEpochSlashing(b *testing.B) {
	p := PaperParams()
	for i := 0; i < b.N; i++ {
		_ = p.ConflictEpochSlashing(0.5, 0.2)
	}
}

// BenchmarkConflictEpochSemiActive measures the Equation 10 Brent solve.
func BenchmarkConflictEpochSemiActive(b *testing.B) {
	p := PaperParams()
	for i := 0; i < b.N; i++ {
		if _, err := p.ConflictEpochSemiActive(0.5, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExceedProbability measures one Equation 24 evaluation.
func BenchmarkExceedProbability(b *testing.B) {
	m := BounceModel{P0: 0.5}
	params := PaperParams()
	for i := 0; i < b.N; i++ {
		_ = m.ExceedProbability(4000, 0.33, params)
	}
}
