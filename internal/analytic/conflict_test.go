package analytic

import (
	"math"
	"testing"
)

// TestPaperTable2 reproduces Table 2 exactly: the epoch of finalization on
// conflicting branches for p0 = 0.5 with slashing (double-voting) Byzantine
// behavior.
func TestPaperTable2(t *testing.T) {
	p := PaperParams()
	rows := []struct {
		beta0 float64
		want  int
	}{
		{0, 4685},
		{0.1, 4066},
		{0.15, 3622},
		{0.2, 3107},
		{0.33, 502},
	}
	for _, row := range rows {
		var got int
		if row.beta0 == 0 {
			got = PaperTableEpoch(p.ConflictEpochHonest(0.5))
		} else {
			got = PaperTableEpoch(p.ConflictEpochSlashing(0.5, row.beta0))
		}
		if got != row.want {
			t.Errorf("Table 2 beta0=%v: epoch = %d, want %d", row.beta0, got, row.want)
		}
	}
}

// TestPaperTable3 reproduces Table 3 (no slashing, semi-active Byzantine
// behavior). The paper's own quoted root for beta0=0.33 is 555.65, which we
// match to two decimals; intermediate rows in the printed table differ from
// the continuous solution of Equation 10 by up to ~0.6% (see EXPERIMENTS.md),
// so they are pinned with that tolerance.
func TestPaperTable3(t *testing.T) {
	p := PaperParams()

	// The anchor row the paper quotes in prose: t = 555.65 -> 556 epochs.
	got, err := p.ConflictEpochSemiActive(0.5, 0.33)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-555.65) > 0.01 {
		t.Errorf("Equation 10 root for beta0=0.33 = %v, want 555.65", got)
	}
	if PaperTableEpoch(got) != 556 {
		t.Errorf("Table 3 beta0=0.33: epoch = %d, want 556", PaperTableEpoch(got))
	}

	rows := []struct {
		beta0 float64
		paper float64
	}{
		{0, 4685},
		{0.1, 4221},
		{0.15, 3819},
		{0.2, 3328},
	}
	for _, row := range rows {
		got, err := p.ConflictEpochSemiActive(0.5, row.beta0)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got-row.paper) / row.paper; rel > 0.006 {
			t.Errorf("Table 3 beta0=%v: epoch = %v, paper %v (rel err %.4f > 0.006)",
				row.beta0, got, row.paper, rel)
		}
	}
}

// TestPaperScenario51Headline pins Section 5.1's headline numbers: with
// only honest validators, whatever the split, the slower branch reaches its
// quorum at 4685 and conflicting finalization lands at 4686.
func TestPaperScenario51Headline(t *testing.T) {
	p := PaperParams()
	for _, p0 := range []float64{0.2, 0.35, 0.5} {
		bc, err := p.ConflictingFinalization(HonestOnly, p0, 0)
		if err != nil {
			t.Fatal(err)
		}
		slow := math.Max(bc.ThresholdA, bc.ThresholdB)
		if slow != 4685 {
			t.Errorf("p0=%v: slower branch threshold = %v, want 4685", p0, slow)
		}
		if bc.ConflictEpoch != 4686 {
			t.Errorf("p0=%v: conflicting finalization = %v, want 4686", p0, bc.ConflictEpoch)
		}
	}
	// p0=0.6: the fast branch finalizes at ~3107, ending its leak; the
	// minority branch still needs ejection.
	bc, err := p.ConflictingFinalization(HonestOnly, 0.6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bc.ThresholdA-3106.93) > 0.01 {
		t.Errorf("p0=0.6 fast branch = %v, want 3106.93", bc.ThresholdA)
	}
	if bc.ThresholdB != 4685 {
		t.Errorf("p0=0.6 slow branch = %v, want 4685", bc.ThresholdB)
	}
}

// TestByzantineSpeedupFactors pins the paper's "ten times faster" (with
// slashing) and "eight times faster" (without slashing) claims for
// beta0 = 0.33 relative to the honest-only 4685.
func TestByzantineSpeedupFactors(t *testing.T) {
	p := PaperParams()
	slashing := p.ConflictEpochSlashing(0.5, 0.33)
	if factor := 4685 / slashing; factor < 9 || factor > 10.5 {
		t.Errorf("slashing speedup factor = %v, want ~10x (paper: 'ten times faster')", factor)
	}
	semi, err := p.ConflictEpochSemiActive(0.5, 0.33)
	if err != nil {
		t.Fatal(err)
	}
	if factor := 4685 / semi; factor < 8 || factor > 9 {
		t.Errorf("semi-active speedup factor = %v, want ~8x (paper: 'eight times faster')", factor)
	}
	// Slashable behavior is strictly faster than non-slashable.
	if !(slashing < semi) {
		t.Errorf("slashing (%v) must beat semi-active (%v)", slashing, semi)
	}
}

// TestFigure6Curves pins Figure 6's shape: both curves decrease in beta0,
// the slashing curve lies below the non-slashing curve, and both approach
// zero as beta0 -> 1/3.
func TestFigure6Curves(t *testing.T) {
	p := PaperParams()
	prevSlash, prevSemi := math.Inf(1), math.Inf(1)
	for _, beta0 := range []float64{0.01, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.33} {
		slash := p.ConflictEpochSlashing(0.5, beta0)
		semi, err := p.ConflictEpochSemiActive(0.5, beta0)
		if err != nil {
			t.Fatal(err)
		}
		if slash > prevSlash || semi > prevSemi {
			t.Errorf("beta0=%v: curves must decrease (slash %v->%v, semi %v->%v)",
				beta0, prevSlash, slash, prevSemi, semi)
		}
		if slash > semi {
			t.Errorf("beta0=%v: slashing curve (%v) must lie below semi-active (%v)", beta0, slash, semi)
		}
		prevSlash, prevSemi = slash, semi
	}
	// As beta0 -> 1/3 with p0 = 0.5, both times collapse toward zero.
	nearLimit := p.ConflictEpochSlashing(0.5, 0.3333)
	if nearLimit > 100 {
		t.Errorf("near-1/3 slashing epoch = %v, want < 100", nearLimit)
	}
}

func TestConflictEpochHonestDomain(t *testing.T) {
	p := PaperParams()
	if !math.IsNaN(p.ConflictEpochHonest(0)) {
		t.Error("p0=0 is out of domain")
	}
	if got := p.ConflictEpochHonest(0.7); got != 0 {
		t.Errorf("p0 >= 2/3 holds the quorum immediately, got %v", got)
	}
}

func TestConflictEpochSlashingAlreadyQuorate(t *testing.T) {
	p := PaperParams()
	// p0(1-b)+b >= 2/3 at t=0: threshold time must be 0.
	if got := p.ConflictEpochSlashing(0.6, 0.2); got != 0 {
		t.Errorf("already-quorate branch time = %v, want 0", got)
	}
}

func TestConflictEpochSemiActiveAlreadyQuorate(t *testing.T) {
	p := PaperParams()
	got, err := p.ConflictEpochSemiActive(0.8, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("already-quorate branch time = %v, want 0", got)
	}
}

func TestConflictEpochSemiActiveEjectionFallback(t *testing.T) {
	p := PaperParams()
	// Tiny honest-active proportion and tiny Byzantine stake: the quorum
	// only returns via ejection.
	got, err := p.ConflictEpochSemiActive(0.05, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if got != p.EjectionEpoch {
		t.Errorf("quorum-via-ejection time = %v, want %v", got, p.EjectionEpoch)
	}
}

func TestConflictingFinalizationSymmetry(t *testing.T) {
	p := PaperParams()
	a, err := p.ConflictingFinalization(WithSlashing, 0.3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.ConflictingFinalization(WithSlashing, 0.7, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if a.ThresholdA != b.ThresholdB || a.ThresholdB != b.ThresholdA {
		t.Errorf("branch swap must mirror thresholds: %+v vs %+v", a, b)
	}
	if a.ConflictEpoch != b.ConflictEpoch {
		t.Error("conflict epoch must be split-symmetric")
	}
}

func TestConflictingFinalizationUnknownBehavior(t *testing.T) {
	p := PaperParams()
	if _, err := p.ConflictingFinalization(Behavior(99), 0.5, 0.2); err == nil {
		t.Error("unknown behavior must error")
	}
}

func TestBehaviorString(t *testing.T) {
	if HonestOnly.String() == "" || WithSlashing.String() == "" || WithoutSlashing.String() == "" {
		t.Error("behavior names must be non-empty")
	}
	if Behavior(42).String() == "" {
		t.Error("unknown behavior must still render")
	}
}
