package analytic

import "math"

// Paper constants (Sections 3-4).
const (
	// InitialStakeETH is the per-validator starting stake.
	InitialStakeETH = 32.0
	// EjectionStakeETH is the ejection threshold.
	EjectionStakeETH = 16.75
	// Quotient is the inactivity penalty quotient 2^26.
	Quotient = 1 << 26
	// PaperEjectionEpoch is the epoch at which the paper reports fully
	// inactive validators are ejected.
	PaperEjectionEpoch = 4685.0
	// PaperSemiActiveEjectionEpoch is the epoch at which the paper
	// reports semi-active validators are ejected (7652; the paper's
	// Section 5.3 also quotes "a total of 7653 epochs" for the
	// finalization-inclusive count).
	PaperSemiActiveEjectionEpoch = 7652.0
	// SupermajorityThreshold is the 2/3 quorum fraction.
	SupermajorityThreshold = 2.0 / 3.0
)

// StakeActive is the stake of an always-active validator (behavior (a)):
// constant 32 ETH during a leak.
func StakeActive(t float64) float64 {
	_ = t
	return InitialStakeETH
}

// StakeInactive is the stake law of an always-inactive validator
// (behavior (c)): s(t) = 32 e^{-t^2 / 2^25}.
func StakeInactive(t float64) float64 {
	return InitialStakeETH * math.Exp(-t*t/math.Exp2(25))
}

// StakeSemiActive is the stake law of a validator active every other epoch
// (behavior (b)): s(t) = 32 e^{-3 t^2 / 2^28}.
func StakeSemiActive(t float64) float64 {
	return InitialStakeETH * math.Exp(-3*t*t/math.Exp2(28))
}

// InactiveEjectionCrossing solves StakeInactive(t) = EjectionStakeETH:
// the endogenous ejection epoch of a fully inactive validator (~4660.7).
func InactiveEjectionCrossing() float64 {
	return math.Sqrt(math.Exp2(25) * math.Log(InitialStakeETH/EjectionStakeETH))
}

// SemiActiveEjectionCrossing solves StakeSemiActive(t) = EjectionStakeETH
// (~7610.9).
func SemiActiveEjectionCrossing() float64 {
	return math.Sqrt(math.Exp2(28) / 3 * math.Log(InitialStakeETH/EjectionStakeETH))
}

// InactivityScoreInactive is the paper's continuous score model for a fully
// inactive validator: I(t) = 4t.
func InactivityScoreInactive(t float64) float64 { return 4 * t }

// InactivityScoreSemiActive is the average score of a semi-active
// validator: +3 every two epochs, I(t) = 3t/2.
func InactivityScoreSemiActive(t float64) float64 { return 1.5 * t }

// Params selects the ejection anchoring for the ratio and conflict models.
type Params struct {
	// EjectionEpoch is the epoch at which fully inactive validators
	// leave the set, which snaps the active-stake ratio to 1.
	EjectionEpoch float64
	// SemiActiveEjectionEpoch is the epoch at which semi-active
	// validators leave the set.
	SemiActiveEjectionEpoch float64
}

// PaperParams returns the anchoring the paper reports (4685 / 7652); use it
// to regenerate the paper's tables and figures exactly.
func PaperParams() Params {
	return Params{
		EjectionEpoch:           PaperEjectionEpoch,
		SemiActiveEjectionEpoch: PaperSemiActiveEjectionEpoch,
	}
}

// ContinuousParams returns the endogenous anchoring derived from the stake
// laws themselves (~4660.7 / ~7610.9).
func ContinuousParams() Params {
	return Params{
		EjectionEpoch:           InactiveEjectionCrossing(),
		SemiActiveEjectionEpoch: SemiActiveEjectionCrossing(),
	}
}
