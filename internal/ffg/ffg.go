// Package ffg implements the Casper-FFG finality gadget as the paper uses
// it (Section 3.2): a checkpoint is *justified* when validators controlling
// more than two-thirds of the stake cast the same checkpoint vote from an
// already-justified source, and a checkpoint is *finalized* when two
// consecutive checkpoints (epochs e and e+1) are justified by a
// supermajority link between them.
//
// One Engine instance tracks the FFG state of one view (one branch, one
// observer). Views diverge during partitions; each side justifies and
// finalizes on its own — exactly the mechanism behind the paper's
// conflicting-finalization scenarios.
package ffg

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/attestation"
	"repro/internal/types"
)

// ErrConflictingFinality is returned by CheckConflict when two engines have
// finalized checkpoints on incompatible branches.
var ErrConflictingFinality = errors.New("ffg: conflicting finalized checkpoints")

// Engine is the per-view finality state machine. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	// justified lists the justified checkpoints in justification order.
	// The set is columnar rather than a map: during a leak it stays a
	// handful of entries (nothing justifies — that is what a leak is) and
	// during healthy stretches finalization prunes it, so membership is a
	// short backward scan over recent entries and Clone is one flat copy
	// instead of a map rehash — the properties the long-horizon epoch
	// transition needs.
	justified []types.Checkpoint
	// latestJustified is the justified checkpoint with the greatest
	// epoch; it seeds honest validators' source votes and the
	// fork-choice starting point.
	latestJustified types.Checkpoint
	// finalized is the finalized checkpoint with the greatest epoch.
	finalized types.Checkpoint
	// lastFinalizedAt is the epoch at which finalization last advanced
	// (for leak-trigger bookkeeping).
	lastFinalizedAt types.Epoch
	genesis         types.Checkpoint
}

// NewEngine starts a view with the genesis checkpoint justified and
// finalized, as the beacon spec does.
func NewEngine(genesis types.Root) *Engine {
	g := types.Checkpoint{Epoch: 0, Root: genesis}
	return &Engine{
		justified:       []types.Checkpoint{g},
		latestJustified: g,
		finalized:       g,
		genesis:         g,
	}
}

// Clone deep-copies the engine, so partitioned views can evolve apart.
func (e *Engine) Clone() *Engine {
	out := &Engine{
		justified:       append([]types.Checkpoint(nil), e.justified...),
		latestJustified: e.latestJustified,
		finalized:       e.finalized,
		lastFinalizedAt: e.lastFinalizedAt,
		genesis:         e.genesis,
	}
	return out
}

// Justified reports whether checkpoint c is justified in this view.
// Recent checkpoints sit at the end of the column, so the backward scan
// answers the boundary re-scan's queries in a handful of compares.
func (e *Engine) Justified(c types.Checkpoint) bool {
	for i := len(e.justified) - 1; i >= 0; i-- {
		if e.justified[i] == c {
			return true
		}
	}
	return false
}

// markJustified records a justified checkpoint (caller guarantees it is
// not yet present) and maintains latestJustified.
func (e *Engine) markJustified(c types.Checkpoint) {
	e.justified = append(e.justified, c)
	if c.Epoch > e.latestJustified.Epoch {
		e.latestJustified = c
	}
}

// pruneJustified drops justified checkpoints older than the finalized
// epoch. Supermajority links always originate from a justified source at
// or after the finalized checkpoint, so the dropped entries can never be
// consulted again; pruning is what keeps the column a handful of entries
// over thousands of healthy epochs.
func (e *Engine) pruneJustified() {
	kept := e.justified[:0]
	for _, c := range e.justified {
		if c.Epoch >= e.finalized.Epoch {
			kept = append(kept, c)
		}
	}
	e.justified = kept
}

// LatestJustified returns the highest-epoch justified checkpoint.
func (e *Engine) LatestJustified() types.Checkpoint { return e.latestJustified }

// Justifieds returns the retained justified checkpoints in justification
// order. The returned slice is the engine's own backing store — callers
// must treat it as read-only (it exists so block-tree compaction can pin
// every checkpoint root without copying).
func (e *Engine) Justifieds() []types.Checkpoint { return e.justified }

// Finalized returns the highest-epoch finalized checkpoint.
func (e *Engine) Finalized() types.Checkpoint { return e.finalized }

// LastFinalizedAt returns the epoch at which finalization last advanced.
func (e *Engine) LastFinalizedAt() types.Epoch { return e.lastFinalizedAt }

// Result reports what a ProcessEpoch call changed.
type Result struct {
	NewlyJustified []types.Checkpoint
	NewlyFinalized []types.Checkpoint
}

// Advanced reports whether anything was justified or finalized.
func (r Result) Advanced() bool {
	return len(r.NewlyJustified) > 0 || len(r.NewlyFinalized) > 0
}

// ProcessEpoch ingests the per-link vote weights for target epoch `epoch`
// (as produced by attestation.Pool.TargetWeights), the total in-set stake
// of this view, and the current epoch number `now` (used to timestamp
// finalization advances). It is a thin adapter over ProcessTally for
// callers that already hold a map tally; the boundary hot path feeds
// ProcessTally directly from attestation.Pool.AppendLinkTally.
func (e *Engine) ProcessEpoch(epoch types.Epoch, weights map[attestation.Link]types.Gwei, total types.Gwei, now types.Epoch) Result {
	tally := make([]attestation.LinkWeight, 0, len(weights))
	for link, w := range weights {
		tally = append(tally, attestation.LinkWeight{Link: link, Weight: w})
	}
	sort.Slice(tally, func(i, j int) bool { return tally[i].Link.Less(tally[j].Link) })
	return e.ProcessTally(epoch, tally, total, now)
}

// ProcessTally ingests a columnar per-link tally for target epoch `epoch`
// (as produced by attestation.Pool.AppendLinkTally), the total in-set
// stake of this view, and the current epoch number `now` (used to
// timestamp finalization advances). It applies the two FFG rules:
//
//  1. justify target if its source is justified and the link weight
//     exceeds 2/3 of total stake;
//  2. finalize source if source and target are consecutive epochs and the
//     justifying link connects them.
//
// A boundary call that advances nothing — the steady state of a leak —
// performs no allocation.
//
//gasper:noalloc
func (e *Engine) ProcessTally(epoch types.Epoch, tally []attestation.LinkWeight, total types.Gwei, now types.Epoch) Result {
	var res Result
	if total == 0 {
		return res
	}
	for _, lw := range tally {
		link := lw.Link
		if link.Target.Epoch != epoch {
			continue
		}
		if !e.Justified(link.Source) {
			continue
		}
		if !Supermajority(lw.Weight, total) {
			continue
		}
		if !e.Justified(link.Target) {
			e.markJustified(link.Target)
			res.NewlyJustified = append(res.NewlyJustified, link.Target) //gasper:alloc justification advance only; the steady-state leak boundary never reaches this
		}
		// Finalization: consecutive justified checkpoints joined by a
		// supermajority link finalize the source.
		if link.Target.Epoch == link.Source.Epoch+1 {
			if link.Source.Epoch > e.finalized.Epoch || (e.finalized == e.genesis && link.Source == e.genesis) {
				e.finalized = link.Source
				e.lastFinalizedAt = now
				res.NewlyFinalized = append(res.NewlyFinalized, link.Source) //gasper:alloc finalization advance only; the steady-state leak boundary never reaches this
				e.pruneJustified()
			}
		}
	}
	return res
}

// ForceJustify marks a checkpoint justified in this view without a
// supermajority-link check. It models the message-timing capability the
// probabilistic bouncing attack assumes (paper Section 5.3, citing the
// attack's original description): the adversary releases withheld votes to
// a validator at exactly the moment that makes the target checkpoint
// justified in that validator's view before its attestation duty. The
// actual votes still flow through the pool, so after the warm-up epochs the
// same checkpoints justify through ProcessEpoch as well; ForceJustify only
// pins the per-validator timing that a slot-granular simulator cannot
// express. It must not be used outside bouncing scenarios.
func (e *Engine) ForceJustify(c types.Checkpoint) {
	if e.Justified(c) {
		return
	}
	e.markJustified(c)
}

// EpochsSinceFinality returns how many epochs have elapsed at `now` since
// finalization last advanced; the inactivity leak starts when this exceeds
// the spec's MinEpochsToInactivityLeak.
func (e *Engine) EpochsSinceFinality(now types.Epoch) uint64 {
	if now <= e.lastFinalizedAt {
		return 0
	}
	return uint64(now - e.lastFinalizedAt)
}

// InLeak reports whether the view is in an inactivity leak at epoch now
// under spec.
func (e *Engine) InLeak(now types.Epoch, spec types.Spec) bool {
	return e.EpochsSinceFinality(now) > spec.MinEpochsToInactivityLeak
}

// Supermajority reports whether w is strictly greater than 2/3 of total,
// using overflow-safe integer arithmetic.
func Supermajority(w, total types.Gwei) bool {
	// w > 2/3 total  <=>  3w > 2total. Gwei totals in the simulator stay
	// far below 2^63, so the products cannot overflow uint64.
	return 3*uint64(w) > 2*uint64(total)
}

// CheckConflict inspects two views and returns ErrConflictingFinality if
// their finalized checkpoints are on provably different branches, i.e.
// neither finalized checkpoint is an ancestor-or-equal of the other
// according to isAncestor. This is the paper's Safety violation (1).
func CheckConflict(a, b types.Checkpoint, isAncestor func(anc, dec types.Root) bool) error {
	if a.Root == b.Root {
		return nil
	}
	if isAncestor(a.Root, b.Root) || isAncestor(b.Root, a.Root) {
		return nil
	}
	return fmt.Errorf("%w: %s vs %s", ErrConflictingFinality, a, b)
}
