package ffg

import (
	"repro/internal/codec"
	"repro/internal/types"
)

func encodeCheckpoint(w *codec.Writer, c types.Checkpoint) {
	w.U64(uint64(c.Epoch))
	w.Raw(c.Root[:])
}

func decodeCheckpoint(r *codec.Reader) types.Checkpoint {
	var c types.Checkpoint
	c.Epoch = types.Epoch(r.U64())
	r.Raw(c.Root[:])
	return c
}

// EncodeTo serializes the full FFG state for the durable snapshot codec:
// the justified set in justification order, the latest-justified and
// finalized checkpoints, the last finalization epoch, and the genesis
// checkpoint the engine was seeded with.
func (e *Engine) EncodeTo(w *codec.Writer) {
	w.Len(len(e.justified))
	for _, c := range e.justified {
		encodeCheckpoint(w, c)
	}
	encodeCheckpoint(w, e.latestJustified)
	encodeCheckpoint(w, e.finalized)
	w.U64(uint64(e.lastFinalizedAt))
	encodeCheckpoint(w, e.genesis)
}

// DecodeEngine reconstructs an engine serialized by EncodeTo.
func DecodeEngine(r *codec.Reader) *Engine {
	n := r.Len()
	if r.Err() != nil {
		return nil
	}
	e := &Engine{justified: make([]types.Checkpoint, n)}
	for i := 0; i < n; i++ {
		e.justified[i] = decodeCheckpoint(r)
	}
	e.latestJustified = decodeCheckpoint(r)
	e.finalized = decodeCheckpoint(r)
	e.lastFinalizedAt = types.Epoch(r.U64())
	e.genesis = decodeCheckpoint(r)
	if r.Err() != nil {
		return nil
	}
	return e
}
