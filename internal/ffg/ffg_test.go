package ffg

import (
	"errors"
	"testing"

	"repro/internal/attestation"
	"repro/internal/types"
)

func cp(epoch, root uint64) types.Checkpoint {
	return types.Checkpoint{Epoch: types.Epoch(epoch), Root: types.RootFromUint64(root)}
}

func link(src, tgt types.Checkpoint) attestation.Link {
	return attestation.Link{Source: src, Target: tgt}
}

func TestNewEngineGenesisJustifiedFinalized(t *testing.T) {
	e := NewEngine(types.RootFromUint64(0))
	g := cp(0, 0)
	if !e.Justified(g) {
		t.Error("genesis must start justified")
	}
	if e.Finalized() != g || e.LatestJustified() != g {
		t.Error("genesis must start finalized and latest-justified")
	}
}

func TestSupermajority(t *testing.T) {
	tests := []struct {
		w, total types.Gwei
		want     bool
	}{
		{67, 100, true},
		{66, 100, false}, // 66 is not strictly > 2/3*100
		{2, 3, false},    // exactly 2/3
		{3, 4, true},
		{0, 100, false},
		{100, 100, true},
	}
	for _, tt := range tests {
		if got := Supermajority(tt.w, tt.total); got != tt.want {
			t.Errorf("Supermajority(%d, %d) = %v, want %v", tt.w, tt.total, got, tt.want)
		}
	}
}

func TestJustificationRequiresSupermajority(t *testing.T) {
	e := NewEngine(types.RootFromUint64(0))
	tgt := cp(1, 10)
	w := map[attestation.Link]types.Gwei{link(cp(0, 0), tgt): 66}
	res := e.ProcessEpoch(1, w, 100, 1)
	if res.Advanced() {
		t.Errorf("2/3 not exceeded but advanced: %+v", res)
	}
	w[link(cp(0, 0), tgt)] = 67
	res = e.ProcessEpoch(1, w, 100, 1)
	if len(res.NewlyJustified) != 1 || res.NewlyJustified[0] != tgt {
		t.Errorf("justification missing: %+v", res)
	}
	if e.LatestJustified() != tgt {
		t.Errorf("latest justified = %v, want %v", e.LatestJustified(), tgt)
	}
}

func TestJustificationRequiresJustifiedSource(t *testing.T) {
	e := NewEngine(types.RootFromUint64(0))
	// Source cp(1,10) was never justified.
	w := map[attestation.Link]types.Gwei{link(cp(1, 10), cp(2, 20)): 100}
	res := e.ProcessEpoch(2, w, 100, 2)
	if res.Advanced() {
		t.Errorf("unjustified source must not justify target: %+v", res)
	}
}

func TestConsecutiveJustificationFinalizes(t *testing.T) {
	e := NewEngine(types.RootFromUint64(0))
	g := cp(0, 0)
	c1 := cp(1, 10)
	// Link 0 -> 1: justifies c1 AND finalizes genesis (consecutive).
	res := e.ProcessEpoch(1, map[attestation.Link]types.Gwei{link(g, c1): 80}, 100, 1)
	if len(res.NewlyFinalized) != 1 || res.NewlyFinalized[0] != g {
		t.Fatalf("genesis not finalized: %+v", res)
	}
	c2 := cp(2, 20)
	res = e.ProcessEpoch(2, map[attestation.Link]types.Gwei{link(c1, c2): 80}, 100, 2)
	if len(res.NewlyFinalized) != 1 || res.NewlyFinalized[0] != c1 {
		t.Fatalf("c1 not finalized: %+v", res)
	}
	if e.Finalized() != c1 {
		t.Errorf("finalized = %v, want %v", e.Finalized(), c1)
	}
	if e.LastFinalizedAt() != 2 {
		t.Errorf("lastFinalizedAt = %d, want 2", e.LastFinalizedAt())
	}
}

func TestSkippedEpochJustifiesButDoesNotFinalize(t *testing.T) {
	e := NewEngine(types.RootFromUint64(0))
	g := cp(0, 0)
	c2 := cp(2, 20)
	// Link 0 -> 2 (skipping epoch 1): justified, not finalized.
	res := e.ProcessEpoch(2, map[attestation.Link]types.Gwei{link(g, c2): 80}, 100, 2)
	if len(res.NewlyJustified) != 1 {
		t.Fatalf("c2 should be justified: %+v", res)
	}
	if len(res.NewlyFinalized) != 0 {
		t.Fatalf("non-consecutive link must not finalize: %+v", res)
	}
	if e.Finalized() != g {
		t.Errorf("finalized = %v, want genesis", e.Finalized())
	}
}

func TestAlternatingJustificationNeverFinalizes(t *testing.T) {
	// Paper Section 3.2: "if justification occurs only every other epoch,
	// finalization is not possible". This is the semi-active Byzantine
	// stalling pattern.
	e := NewEngine(types.RootFromUint64(0))
	prev := cp(0, 0)
	for epoch := uint64(2); epoch <= 10; epoch += 2 {
		tgt := cp(epoch, epoch*10)
		res := e.ProcessEpoch(types.Epoch(epoch),
			map[attestation.Link]types.Gwei{link(prev, tgt): 80}, 100, types.Epoch(epoch))
		if len(res.NewlyJustified) != 1 {
			t.Fatalf("epoch %d not justified", epoch)
		}
		if len(res.NewlyFinalized) != 0 {
			t.Fatalf("every-other-epoch justification must not finalize (epoch %d)", epoch)
		}
		prev = tgt
	}
	if e.Finalized() != cp(0, 0) {
		t.Errorf("finalized advanced to %v", e.Finalized())
	}
}

func TestProcessEpochIgnoresOtherTargetEpochs(t *testing.T) {
	e := NewEngine(types.RootFromUint64(0))
	w := map[attestation.Link]types.Gwei{link(cp(0, 0), cp(1, 10)): 100}
	res := e.ProcessEpoch(2, w, 100, 2) // wrong epoch
	if res.Advanced() {
		t.Errorf("links for other epochs must be ignored: %+v", res)
	}
}

func TestProcessEpochZeroTotal(t *testing.T) {
	e := NewEngine(types.RootFromUint64(0))
	w := map[attestation.Link]types.Gwei{link(cp(0, 0), cp(1, 10)): 10}
	if res := e.ProcessEpoch(1, w, 0, 1); res.Advanced() {
		t.Error("zero total stake must not justify anything")
	}
}

func TestEpochsSinceFinalityAndLeak(t *testing.T) {
	e := NewEngine(types.RootFromUint64(0))
	spec := types.DefaultSpec()
	if e.EpochsSinceFinality(0) != 0 {
		t.Error("no gap at epoch 0")
	}
	if e.InLeak(4, spec) {
		t.Error("gap of 4 is not yet a leak")
	}
	if !e.InLeak(5, spec) {
		t.Error("gap of 5 must be a leak")
	}
	// Finalize at epoch 6: gap resets.
	e.ProcessEpoch(1, map[attestation.Link]types.Gwei{link(cp(0, 0), cp(1, 10)): 80}, 100, 6)
	if e.EpochsSinceFinality(6) != 0 {
		t.Errorf("gap after finalization = %d, want 0", e.EpochsSinceFinality(6))
	}
	if e.InLeak(10, spec) {
		t.Error("gap of 4 after refinalization is not a leak")
	}
	if !e.InLeak(11, spec) {
		t.Error("gap of 5 after refinalization must be a leak")
	}
}

func TestCloneIndependence(t *testing.T) {
	e := NewEngine(types.RootFromUint64(0))
	c := e.Clone()
	c.ProcessEpoch(1, map[attestation.Link]types.Gwei{link(cp(0, 0), cp(1, 10)): 80}, 100, 1)
	if e.Justified(cp(1, 10)) {
		t.Error("clone mutation leaked into original")
	}
	if e.LatestJustified() != cp(0, 0) {
		t.Error("original latest justified must be unchanged")
	}
}

func TestCheckConflict(t *testing.T) {
	// Ancestry oracle: root(1) is ancestor of root(2); root(3) is on
	// another branch.
	isAncestor := func(a, d types.Root) bool {
		type pair struct{ a, d types.Root }
		rel := map[pair]bool{
			{types.RootFromUint64(1), types.RootFromUint64(2)}: true,
		}
		return a == d || rel[pair{a, d}]
	}
	a := cp(5, 1)
	b := cp(6, 2)
	if err := CheckConflict(a, b, isAncestor); err != nil {
		t.Errorf("compatible checkpoints flagged: %v", err)
	}
	if err := CheckConflict(a, a, isAncestor); err != nil {
		t.Errorf("identical checkpoints flagged: %v", err)
	}
	c := cp(6, 3)
	if err := CheckConflict(a, c, isAncestor); !errors.Is(err, ErrConflictingFinality) {
		t.Errorf("conflicting checkpoints not flagged: %v", err)
	}
}

func TestTwoViewsConflictingFinalization(t *testing.T) {
	// Integration-flavored: two partitioned views finalize different
	// branches; CheckConflict detects the Safety violation.
	viewA := NewEngine(types.RootFromUint64(0))
	viewB := viewA.Clone()
	g := cp(0, 0)
	a1, a2 := cp(1, 11), cp(2, 12)
	b1, b2 := cp(1, 21), cp(2, 22)
	viewA.ProcessEpoch(1, map[attestation.Link]types.Gwei{link(g, a1): 80}, 100, 1)
	viewA.ProcessEpoch(2, map[attestation.Link]types.Gwei{link(a1, a2): 80}, 100, 2)
	viewB.ProcessEpoch(1, map[attestation.Link]types.Gwei{link(g, b1): 80}, 100, 1)
	viewB.ProcessEpoch(2, map[attestation.Link]types.Gwei{link(b1, b2): 80}, 100, 2)
	if viewA.Finalized() != a1 || viewB.Finalized() != b1 {
		t.Fatalf("finalization did not advance: %v / %v", viewA.Finalized(), viewB.Finalized())
	}
	isAncestor := func(a, d types.Root) bool { return a == d }
	if err := CheckConflict(viewA.Finalized(), viewB.Finalized(), isAncestor); !errors.Is(err, ErrConflictingFinality) {
		t.Errorf("conflicting finalization not detected: %v", err)
	}
}
