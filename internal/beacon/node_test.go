package beacon

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/attestation"
	"repro/internal/blocktree"
	"repro/internal/types"
)

func genesis() types.Root { return types.RootFromUint64(0) }

func newTestNode(t *testing.T, id types.ValidatorIndex, n int) *Node {
	t.Helper()
	return NewNode(id, n, types.DefaultSpec(), genesis())
}

func TestReceiveBlockBuffersOutOfOrder(t *testing.T) {
	n := newTestNode(t, 0, 4)
	parent := blocktree.Block{Slot: 1, Root: types.RootFromUint64(1), Parent: genesis()}
	child := blocktree.Block{Slot: 2, Root: types.RootFromUint64(2), Parent: parent.Root}
	grandchild := blocktree.Block{Slot: 3, Root: types.RootFromUint64(3), Parent: child.Root}

	n.ReceiveBlock(grandchild)
	n.ReceiveBlock(child)
	if n.Tree.Has(child.Root) || n.Tree.Has(grandchild.Root) {
		t.Fatal("orphans must stay buffered until the parent arrives")
	}
	n.ReceiveBlock(parent)
	if !n.Tree.Has(parent.Root) || !n.Tree.Has(child.Root) || !n.Tree.Has(grandchild.Root) {
		t.Error("pending chain must flush recursively once the parent arrives")
	}
}

func TestReceiveBlockIgnoresDuplicates(t *testing.T) {
	n := newTestNode(t, 0, 4)
	b := blocktree.Block{Slot: 1, Root: types.RootFromUint64(1), Parent: genesis()}
	n.ReceiveBlock(b)
	n.ReceiveBlock(b)
	if n.Tree.Len() != 2 {
		t.Errorf("tree len = %d, want 2", n.Tree.Len())
	}
}

func TestProduceBlockExtendsHead(t *testing.T) {
	n := newTestNode(t, 3, 4)
	b1, err := n.ProduceBlock(1)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Parent != genesis() || b1.Proposer != 3 {
		t.Errorf("block = %+v", b1)
	}
	if !n.Tree.Has(b1.Root) {
		t.Error("proposer must ingest its own block")
	}
	b2, err := n.ProduceBlock(2)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Parent != b1.Root {
		t.Errorf("second block parent = %v, want %v", b2.Parent, b1.Root)
	}
}

func TestProduceBlockDeterministicRoot(t *testing.T) {
	a := newTestNode(t, 3, 4)
	b := newTestNode(t, 3, 4)
	ba, _ := a.ProduceBlock(5)
	bb, _ := b.ProduceBlock(5)
	if ba.Root != bb.Root {
		t.Error("same (slot, proposer, parent) must mint the same root on all views")
	}
}

func TestProduceAttestationFields(t *testing.T) {
	n := newTestNode(t, 2, 4)
	b, _ := n.ProduceBlock(1)
	att, err := n.ProduceAttestation(5)
	if err != nil {
		t.Fatal(err)
	}
	if att.Validator != 2 {
		t.Errorf("validator = %d", att.Validator)
	}
	if att.Data.Head != b.Root {
		t.Errorf("head vote = %v, want %v", att.Data.Head, b.Root)
	}
	if att.Data.Source != (types.Checkpoint{Epoch: 0, Root: genesis()}) {
		t.Errorf("source = %v, want genesis checkpoint", att.Data.Source)
	}
	// Slot 5 is epoch 0: target is the epoch-0 checkpoint, i.e. genesis.
	if att.Data.Target.Epoch != 0 || att.Data.Target.Root != genesis() {
		t.Errorf("target = %v", att.Data.Target)
	}
}

func TestHeadFollowsVotes(t *testing.T) {
	n := newTestNode(t, 0, 4)
	a := blocktree.Block{Slot: 1, Root: types.RootFromUint64(10), Parent: genesis()}
	b := blocktree.Block{Slot: 1, Root: types.RootFromUint64(20), Parent: genesis()}
	n.ReceiveBlock(a)
	n.ReceiveBlock(b)
	for v := types.ValidatorIndex(0); v < 3; v++ {
		n.ReceiveAttestation(attestation.Attestation{
			Validator: v,
			Data:      attestation.Data{Slot: 1, Head: b.Root, Target: types.Checkpoint{Epoch: 0, Root: genesis()}},
		})
	}
	head, err := n.Head()
	if err != nil {
		t.Fatal(err)
	}
	if head != b.Root {
		t.Errorf("head = %v, want majority block %v", head, b.Root)
	}
}

// fullEpochOfAttestations makes every validator attest to the canonical
// chain for the given epoch on node n, voting source -> target correctly.
func fullEpochOfAttestations(t *testing.T, n *Node, epoch types.Epoch) {
	t.Helper()
	head, err := n.Head()
	if err != nil {
		t.Fatal(err)
	}
	target, err := n.Tree.CheckpointFor(head, epoch)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n.Registry.Len(); v++ {
		n.ReceiveAttestation(attestation.Attestation{
			Validator: types.ValidatorIndex(v),
			Data: attestation.Data{
				Slot:   epoch.StartSlot() + types.Slot(v),
				Head:   head,
				Source: n.FFG.LatestJustified(),
				Target: target,
			},
		})
	}
}

func TestEpochBoundaryJustifiesAndFinalizes(t *testing.T) {
	n := newTestNode(t, 0, 8)
	// Build one block per epoch start for epochs 1..3.
	var parent types.Root = genesis()
	for e := types.Epoch(1); e <= 3; e++ {
		b := blocktree.Block{Slot: e.StartSlot(), Root: types.RootFromUint64(uint64(e) * 100), Parent: parent}
		n.ReceiveBlock(b)
		parent = b.Root
	}
	// Epoch 1 votes, processed at boundary of epoch 2.
	fullEpochOfAttestations(t, n, 1)
	rep, err := n.ProcessEpochBoundary(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.FFG.NewlyJustified) != 1 {
		t.Fatalf("epoch 1 not justified: %+v", rep.FFG)
	}
	// Epoch 2 votes: source is now the epoch-1 checkpoint; consecutive
	// justification finalizes epoch 1.
	fullEpochOfAttestations(t, n, 2)
	rep, err = n.ProcessEpochBoundary(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.FFG.NewlyFinalized) == 0 {
		t.Fatalf("epoch 1 not finalized: %+v", rep.FFG)
	}
	if n.Finalized().Epoch != 1 {
		t.Errorf("finalized = %v, want epoch 1", n.Finalized())
	}
}

func TestEpochBoundaryWindowCatchesLateVotes(t *testing.T) {
	n := newTestNode(t, 0, 8)
	b := blocktree.Block{Slot: 32, Root: types.RootFromUint64(100), Parent: genesis()}
	n.ReceiveBlock(b)
	// Boundary of epoch 2 passes with no votes at all.
	if _, err := n.ProcessEpochBoundary(2); err != nil {
		t.Fatal(err)
	}
	if n.FFG.LatestJustified().Epoch != 0 {
		t.Fatal("nothing should be justified yet")
	}
	// Epoch-1 votes arrive late (e.g. released across a healed
	// partition); the window re-scan at the next boundary must pick them
	// up.
	fullEpochOfAttestations(t, n, 1)
	if _, err := n.ProcessEpochBoundary(3); err != nil {
		t.Fatal(err)
	}
	if n.FFG.LatestJustified().Epoch != 1 {
		t.Errorf("late votes not justified: %v", n.FFG.LatestJustified())
	}
}

func TestLeakStartsAfterFinalityGap(t *testing.T) {
	n := newTestNode(t, 0, 4)
	// No votes at all: process boundaries 1..6.
	var sawLeak bool
	for e := types.Epoch(1); e <= 6; e++ {
		rep, err := n.ProcessEpochBoundary(e)
		if err != nil {
			t.Fatal(err)
		}
		if rep.InLeak {
			if e < 5 {
				t.Errorf("leak started too early at boundary %d", e)
			}
			sawLeak = true
		}
	}
	if !sawLeak {
		t.Error("leak never started despite 6 epochs without finality")
	}
	// All validators inactive: scores grew by 4 per leak epoch.
	if n.Registry.Score(0) == 0 {
		t.Error("inactive validators must accrue score during the leak")
	}
}

func TestIncentivesProcessedOncePerEpoch(t *testing.T) {
	n := newTestNode(t, 0, 4)
	if _, err := n.ProcessEpochBoundary(6); err != nil {
		t.Fatal(err)
	}
	score := n.Registry.Score(0)
	// Reprocessing the same boundary must not double-apply.
	if _, err := n.ProcessEpochBoundary(6); err != nil {
		t.Fatal(err)
	}
	if n.Registry.Score(0) != score {
		t.Error("incentives applied twice for one epoch")
	}
}

func TestSlashingEnforcement(t *testing.T) {
	n := newTestNode(t, 0, 4)
	n.EnforceSlashing = true
	tgtA := types.Checkpoint{Epoch: 1, Root: types.RootFromUint64(1)}
	tgtB := types.Checkpoint{Epoch: 1, Root: types.RootFromUint64(2)}
	src := types.Checkpoint{Epoch: 0, Root: genesis()}
	n.ReceiveAttestation(attestation.Attestation{Validator: 2, Data: attestation.Data{Slot: 33, Head: tgtA.Root, Source: src, Target: tgtA}})
	n.ReceiveAttestation(attestation.Attestation{Validator: 2, Data: attestation.Data{Slot: 33, Head: tgtB.Root, Source: src, Target: tgtB}})
	if len(n.SlashingEvidence()) != 1 {
		t.Fatalf("evidence = %d, want 1", len(n.SlashingEvidence()))
	}
	if n.Registry.InSet(2) {
		t.Error("double voter must be slashed out of the set")
	}
	// Without enforcement the registry is untouched.
	m := newTestNode(t, 0, 4)
	m.ReceiveAttestation(attestation.Attestation{Validator: 2, Data: attestation.Data{Slot: 33, Head: tgtA.Root, Source: src, Target: tgtA}})
	m.ReceiveAttestation(attestation.Attestation{Validator: 2, Data: attestation.Data{Slot: 33, Head: tgtB.Root, Source: src, Target: tgtB}})
	if !m.Registry.InSet(2) {
		t.Error("non-enforcing node must not slash")
	}
}

func TestProcessEpochBoundaryZero(t *testing.T) {
	n := newTestNode(t, 0, 4)
	rep, err := n.ProcessEpochBoundary(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.InLeak || rep.FFG.Advanced() {
		t.Error("boundary 0 must be a no-op")
	}
}

// TestForkChoiceUsesJustifiedStateBalances: fork-choice weights come from
// the balances snapshotted at the latest justified checkpoint, not the
// current drifted registry — two views that agree on the justified
// checkpoint therefore compute the same head even when their current
// ledgers disagree (the property that lets healed partitions reconcile).
func TestForkChoiceUsesJustifiedStateBalances(t *testing.T) {
	n := newTestNode(t, 0, 4)
	a := blocktree.Block{Slot: 1, Root: types.RootFromUint64(10), Parent: genesis()}
	c := blocktree.Block{Slot: 1, Root: types.RootFromUint64(20), Parent: genesis()}
	n.ReceiveBlock(a)
	n.ReceiveBlock(c)
	// Validator 1 votes block a, validators 2+3 vote block c.
	n.ReceiveAttestation(attestation.Attestation{Validator: 1,
		Data: attestation.Data{Slot: 2, Head: a.Root, Target: types.Checkpoint{Epoch: 0, Root: genesis()}}})
	n.ReceiveAttestation(attestation.Attestation{Validator: 2,
		Data: attestation.Data{Slot: 2, Head: c.Root, Target: types.Checkpoint{Epoch: 0, Root: genesis()}}})
	n.ReceiveAttestation(attestation.Attestation{Validator: 3,
		Data: attestation.Data{Slot: 2, Head: c.Root, Target: types.Checkpoint{Epoch: 0, Root: genesis()}}})
	// Drain validators 2 and 3 in the CURRENT registry; the justified
	// snapshot (taken at genesis) still weighs them fully.
	n.Registry.SetStake(2, 1)
	n.Registry.SetStake(3, 1)
	head, err := n.Head()
	if err != nil {
		t.Fatal(err)
	}
	if head != c.Root {
		t.Errorf("head = %v, want %v (justified-state balances, not current)", head, c.Root)
	}
}

// TestNodeRobustUnderRandomTraffic: arbitrary (possibly malformed) message
// streams never panic the node, the finalized epoch never decreases, and
// every finalized checkpoint remains justified.
func TestNodeRobustUnderRandomTraffic(t *testing.T) {
	f := func(seed int64, ops []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		n := newTestNode(t, 0, 8)
		n.EnforceSlashing = true
		roots := []types.Root{genesis()}
		prevFinalized := n.Finalized().Epoch
		for i, op := range ops {
			switch op % 4 {
			case 0: // random (often orphaned or malformed) block
				parent := roots[rng.Intn(len(roots))]
				b := blocktree.Block{
					Slot:   types.Slot(rng.Intn(200)),
					Root:   types.RootFromUint64(uint64(seed)<<20 | uint64(i)<<8 | uint64(op)),
					Parent: parent,
				}
				n.ReceiveBlock(b)
				if n.Tree.Has(b.Root) {
					roots = append(roots, b.Root)
				}
			case 1: // random attestation
				n.ReceiveAttestation(attestation.Attestation{
					Validator: types.ValidatorIndex(rng.Intn(8)),
					Data: attestation.Data{
						Slot:   types.Slot(rng.Intn(200)),
						Head:   roots[rng.Intn(len(roots))],
						Source: types.Checkpoint{Epoch: types.Epoch(rng.Intn(4)), Root: roots[rng.Intn(len(roots))]},
						Target: types.Checkpoint{Epoch: types.Epoch(rng.Intn(6)), Root: roots[rng.Intn(len(roots))]},
					},
				})
			case 2: // epoch boundary
				if _, err := n.ProcessEpochBoundary(types.Epoch(rng.Intn(8))); err != nil {
					return false
				}
			case 3: // duties
				if _, err := n.ProduceAttestation(types.Slot(rng.Intn(200))); err != nil {
					return false
				}
			}
			fin := n.Finalized().Epoch
			if fin < prevFinalized {
				return false // finality went backwards
			}
			prevFinalized = fin
			if !n.FFG.Justified(n.Finalized()) {
				return false // finalized but not justified
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFinalizedConflictsWith(t *testing.T) {
	n := newTestNode(t, 0, 4)
	// Same checkpoint: no conflict.
	if err := n.FinalizedConflictsWith(n.Finalized()); err != nil {
		t.Errorf("self-conflict: %v", err)
	}
}
