package beacon

import (
	"bytes"
	"sort"

	"repro/internal/attestation"
	"repro/internal/blocktree"
	"repro/internal/codec"
	"repro/internal/ffg"
	"repro/internal/forkchoice"
	"repro/internal/incentives"
	"repro/internal/slashing"
	"repro/internal/types"
	"repro/internal/validator"
)

func encodeSpec(w *codec.Writer, s types.Spec) {
	w.U64(s.SlotsPerEpoch)
	w.U64(s.InactivityPenaltyQuotient)
	w.U64(s.InactivityScoreBias)
	w.U64(s.InactivityScoreRecovery)
	w.U64(s.InactivityScoreFlatRecovery)
	w.U64(s.MinEpochsToInactivityLeak)
	w.U64(uint64(s.EjectionBalance))
	w.U64(uint64(s.MaxEffectiveBalance))
	w.Bool(s.ResidualPenalties)
}

func decodeSpec(r *codec.Reader) types.Spec {
	var s types.Spec
	s.SlotsPerEpoch = r.U64()
	s.InactivityPenaltyQuotient = r.U64()
	s.InactivityScoreBias = r.U64()
	s.InactivityScoreRecovery = r.U64()
	s.InactivityScoreFlatRecovery = r.U64()
	s.MinEpochsToInactivityLeak = r.U64()
	s.EjectionBalance = types.Gwei(r.U64())
	s.MaxEffectiveBalance = types.Gwei(r.U64())
	s.ResidualPenalties = r.Bool()
	return s
}

func encodeRegistry(w *codec.Writer, reg *validator.Registry) {
	cols := reg.Columns()
	w.Len(len(cols.Stakes))
	for i := range cols.Stakes {
		w.U64(uint64(cols.Stakes[i]))
		w.U64(cols.Scores[i])
		w.Int(int(cols.Status[i]))
		w.U64(uint64(cols.Exit[i]))
	}
}

func decodeRegistry(r *codec.Reader) *validator.Registry {
	n := r.Len()
	if r.Err() != nil {
		return nil
	}
	reg := validator.NewRegistry(n, 0)
	cols := reg.Columns()
	for i := 0; i < n; i++ {
		cols.Stakes[i] = types.Gwei(r.U64())
		cols.Scores[i] = r.U64()
		cols.Status[i] = validator.Status(r.Int())
		cols.Exit[i] = types.Epoch(r.U64())
	}
	if r.Err() != nil {
		return nil
	}
	return reg
}

// EncodeTo serializes the node's full protocol state for the durable
// snapshot codec. The field list mirrors Clone exactly: everything Clone
// deep-copies is written; everything Clone rebuilds or deliberately drops
// (the visibility filter, the bound stake/activity closures, the tally
// scratch) is rebuilt or dropped on decode too.
func (n *Node) EncodeTo(w *codec.Writer) {
	w.U64(uint64(n.ID))
	encodeSpec(w, n.Spec)
	w.Bool(n.EnforceSlashing)
	encodeSpec(w, n.Leak.Spec)
	w.U64(uint64(n.Leak.AttestationPenalty))
	n.Tree.EncodeTo(w)
	forkchoice.EncodeEngine(w, n.Votes)
	n.FFG.EncodeTo(w)
	n.Pool.EncodeTo(w)
	n.Detector.EncodeTo(w)
	encodeRegistry(w, n.Registry)
	encodeRegistry(w, n.justifiedState)
	// Pending blocks, sorted by missing-parent root for deterministic
	// bytes; each waiter list keeps its arrival order.
	parents := make([]types.Root, 0, len(n.pending))
	for p := range n.pending {
		parents = append(parents, p)
	}
	sort.Slice(parents, func(i, j int) bool { return bytes.Compare(parents[i][:], parents[j][:]) < 0 })
	w.Len(len(parents))
	for _, p := range parents {
		w.Raw(p[:])
		blocks := n.pending[p]
		w.Len(len(blocks))
		for _, b := range blocks {
			encodeBlock(w, b)
		}
	}
	w.U64(uint64(n.incentivesNext))
	w.Len(len(n.slashEvidence))
	for _, ev := range n.slashEvidence {
		slashing.EncodeEvidence(w, ev)
	}
}

func encodeBlock(w *codec.Writer, b blocktree.Block) {
	w.U64(uint64(b.Slot))
	w.Raw(b.Root[:])
	w.Raw(b.Parent[:])
	w.U64(uint64(b.Proposer))
}

func decodeBlock(r *codec.Reader) blocktree.Block {
	var b blocktree.Block
	b.Slot = types.Slot(r.U64())
	r.Raw(b.Root[:])
	r.Raw(b.Parent[:])
	b.Proposer = types.ValidatorIndex(r.U64())
	return b
}

// DecodeNode reconstructs a node serialized by EncodeTo, rebinding the
// stake and activity closures exactly as Clone does. The decoded
// fork-choice engine carries no cached tree identity, so its first head
// query rebuilds against the decoded tree — the same one-time O(tree +
// validators) event a cloned engine pays.
func DecodeNode(r *codec.Reader) *Node {
	n := &Node{}
	n.ID = types.ValidatorIndex(r.U64())
	n.Spec = decodeSpec(r)
	n.EnforceSlashing = r.Bool()
	n.Leak = incentives.Engine{Spec: decodeSpec(r), AttestationPenalty: types.Gwei(r.U64())}
	n.Tree = blocktree.DecodeTree(r)
	n.Votes = forkchoice.DecodeEngine(r)
	n.FFG = ffg.DecodeEngine(r)
	n.Pool = attestation.DecodePool(r)
	n.Detector = slashing.DecodeDetector(r)
	n.Registry = decodeRegistry(r)
	n.justifiedState = decodeRegistry(r)
	np := r.Len()
	if r.Err() != nil {
		return nil
	}
	n.pending = make(map[types.Root][]blocktree.Block, np)
	for i := 0; i < np; i++ {
		var parent types.Root
		r.Raw(parent[:])
		nb := r.Len()
		if r.Err() != nil {
			return nil
		}
		blocks := make([]blocktree.Block, nb)
		for j := 0; j < nb; j++ {
			blocks[j] = decodeBlock(r)
		}
		n.pending[parent] = blocks
	}
	n.incentivesNext = types.Epoch(r.U64())
	ne := r.Len()
	if r.Err() != nil {
		return nil
	}
	if ne > 0 {
		n.slashEvidence = make([]slashing.Evidence, ne)
		for i := 0; i < ne; i++ {
			n.slashEvidence[i] = slashing.DecodeEvidence(r)
		}
	}
	if r.Err() != nil {
		return nil
	}
	n.stakeFn = n.Registry.Stake
	n.activeFn = func(v types.ValidatorIndex) bool {
		return attestation.VotedForTargetIn(n.activityVotes, v, n.activityRoot)
	}
	return n
}
