package beacon

import (
	"testing"

	"repro/internal/attestation"
	"repro/internal/types"
)

// BenchmarkEpochTransition measures the FULL per-epoch boundary at paper
// scale (10k validators) in the sim/leak steady state: the columnar FFG
// link tally over the four-epoch re-scan window
// (attestation.Pool.AppendLinkTally + ffg.Engine.ProcessTally), the
// incentive sweep with its column-backed activity predicate, and the
// pool/detector pruning. Participation is half the stake, so — exactly
// like the thousands of epochs of a leak run — nothing justifies and the
// view is leaking. Every timed iteration advances one real epoch; vote
// ingestion (the slot path, not the transition) happens off the clock.
// The steady-state transition must not allocate; the CI bench gate
// enforces the 0 allocs/op.
func BenchmarkEpochTransition(b *testing.B) {
	const n = 10000
	spec := types.DefaultSpec()
	genesis := types.RootFromUint64(0)
	node := NewNode(0, n, spec, genesis)

	// ingest casts epoch e's attestations: half the validators vote, all
	// for the genesis branch — below the supermajority, so the leak never
	// ends and the boundary stays on its steady-state path.
	ingest := func(e types.Epoch) {
		data := attestation.Data{
			Slot:   e.StartSlot() + 1,
			Head:   genesis,
			Source: types.Checkpoint{Epoch: 0, Root: genesis},
			Target: types.Checkpoint{Epoch: e, Root: genesis},
		}
		for v := 0; v < n/2; v++ {
			node.ReceiveAttestation(attestation.Attestation{Validator: types.ValidatorIndex(v), Data: data})
		}
	}

	// Warm up past the leak trigger so the timed region is pure steady
	// state (scratches sized, leak active, prunes running).
	epoch := types.Epoch(1)
	for ; epoch <= 10; epoch++ {
		ingest(epoch)
		if _, err := node.ProcessEpochBoundary(epoch + 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ingest(epoch) // slot-path work, off the clock
		b.StartTimer()
		if _, err := node.ProcessEpochBoundary(epoch + 1); err != nil {
			b.Fatal(err)
		}
		epoch++
	}
}
