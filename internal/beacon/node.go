// Package beacon assembles the substrates into a full protocol node: one
// validator's view of the chain. A node owns a block tree, an LMD-GHOST
// vote store, a Casper-FFG finality engine, an attestation pool, a slashing
// detector, and a validator registry (its branch-local balance sheet).
//
// Nodes are deliberately view-local: during a partition, nodes in different
// partitions receive different messages, justify and finalize different
// checkpoints, evaluate activity differently, and therefore apply different
// penalties — which is precisely the mechanism the paper exploits.
package beacon

import (
	"errors"
	"fmt"

	"repro/internal/attestation"
	"repro/internal/blocktree"
	"repro/internal/crypto"
	"repro/internal/ffg"
	"repro/internal/forkchoice"
	"repro/internal/incentives"
	"repro/internal/slashing"
	"repro/internal/types"
	"repro/internal/validator"
)

// ErrNotProposer is returned when a node is asked to propose in a slot it
// does not own.
var ErrNotProposer = errors.New("beacon: not the proposer for this slot")

// Node is one validator's protocol view. Construct with NewNode.
type Node struct {
	// ID is the validator this node belongs to.
	ID   types.ValidatorIndex
	Spec types.Spec

	Tree     *blocktree.Tree
	Votes    forkchoice.Engine
	FFG      *ffg.Engine
	Pool     *attestation.Pool
	Detector *slashing.Detector
	Registry *validator.Registry
	Leak     incentives.Engine

	// EnforceSlashing makes the node apply slashing evidence it detects
	// to its own registry (honest behavior). Byzantine nodes leave it
	// off.
	EnforceSlashing bool

	// justifiedState snapshots the registry as of the latest justified
	// checkpoint. The fork-choice rule weighs votes with these balances
	// (as the spec's get_weight does with the justified state), which
	// keeps weight computations identical across views that agree on the
	// justified checkpoint — the property that lets partitions reconcile
	// after healing.
	justifiedState *validator.Registry

	// visible, when non-nil, restricts head computation to blocks for
	// which it returns true. The view-cohort simulator installs it while
	// a block one cohort member produced this slot is still in flight to
	// the rest, the only within-cohort view difference the protocol
	// creates (see internal/sim).
	//gasper:nocodec per-slot filter the simulator installs; snapshots restore unfiltered
	//gasper:shallow Clone deliberately drops it; the simulator reinstalls it each slot
	visible func(types.Root) bool

	// pending buffers blocks whose parent has not arrived yet,
	// keyed by the missing parent.
	pending map[types.Root][]blocktree.Block
	// incentivesNext is the next epoch whose penalties are still to be
	// applied. Boundary processing advances strictly forward, so a single
	// watermark replaces the per-epoch map the pre-long-horizon node kept
	// (which grew one entry per epoch for the whole run).
	incentivesNext types.Epoch
	// tallyScratch is the reusable boundary buffer for the columnar FFG
	// link tally, and stakeFn the pre-bound Registry.Stake method value,
	// so a steady-state epoch transition performs no allocation (a method
	// value materialized at the call site would allocate its receiver
	// binding on every boundary).
	//gasper:nocodec scratch buffer; each node re-grows its own
	//gasper:shallow scratch buffer; clones re-grow their own
	tallyScratch []attestation.LinkWeight
	stakeFn      func(types.ValidatorIndex) types.Gwei //gasper:nocodec rebound to the decoded Registry by DecodeNode
	// activityVotes/activityRoot parameterize activeFn, the reusable
	// activity predicate handed to the incentive sweep — constructed once
	// so the boundary does not allocate a fresh closure per epoch.
	activityVotes [][]attestation.Data            //gasper:nocodec per-boundary working set; the next boundary repopulates it
	activityRoot  types.Root                      //gasper:nocodec per-boundary working set; the next boundary repopulates it
	activeFn      func(types.ValidatorIndex) bool //gasper:nocodec closure rebound by DecodeNode over the decoded state
	// slashEvidence collects offenses observed and (if enforcing)
	// applied.
	slashEvidence []slashing.Evidence
}

// NewNode builds a node for validator id over a fresh view with nValidators
// at the spec's maximum balance, running the incremental proto-array
// fork-choice engine.
func NewNode(id types.ValidatorIndex, nValidators int, spec types.Spec, genesis types.Root) *Node {
	return NewNodeWithForkChoice(id, nValidators, spec, genesis, forkchoice.NewProtoArray())
}

// NewNodeWithForkChoice is NewNode with an explicit fork-choice engine; the
// equivalence suites use it to run whole simulations on the map-based
// oracle (forkchoice.NewOracle) against the proto-array default.
func NewNodeWithForkChoice(id types.ValidatorIndex, nValidators int, spec types.Spec, genesis types.Root, votes forkchoice.Engine) *Node {
	reg := validator.NewRegistry(nValidators, spec.MaxEffectiveBalance)
	n := &Node{
		ID:             id,
		Spec:           spec,
		Tree:           blocktree.New(genesis),
		Votes:          votes,
		FFG:            ffg.NewEngine(genesis),
		Pool:           attestation.NewPool(),
		Detector:       slashing.NewDetector(),
		Registry:       reg,
		Leak:           incentives.Engine{Spec: spec},
		justifiedState: reg.Clone(),
		pending:        make(map[types.Root][]blocktree.Block),
	}
	n.stakeFn = n.Registry.Stake
	n.activeFn = func(v types.ValidatorIndex) bool {
		return attestation.VotedForTargetIn(n.activityVotes, v, n.activityRoot)
	}
	n.Votes.UpdateStakes(nValidators, n.justifiedState.Stake)
	return n
}

// Clone deep-copies the node's full protocol state. The clone's fork-choice
// engine retains its cached identity of the ORIGINAL tree, so its first
// head query against the cloned tree detects the new identity and rebuilds
// once — an O(validators + tree) event, after which it is incremental
// again. A visibility filter (SetVisibility) is NOT carried over: filters
// are transient per-computation state, installed and removed around a
// single head query; clone between queries, when no filter is installed
// (as the simulator's Snapshot does). Clones power the simulator's
// Snapshot/Restore (long runs resumed, sweeps warm-started from a shared
// prefix).
func (n *Node) Clone() *Node {
	out := &Node{
		ID:              n.ID,
		Spec:            n.Spec,
		Tree:            n.Tree.Clone(),
		Votes:           n.Votes.CloneEngine(),
		FFG:             n.FFG.Clone(),
		Pool:            n.Pool.Clone(),
		Detector:        n.Detector.Clone(),
		Registry:        n.Registry.Clone(),
		Leak:            n.Leak,
		EnforceSlashing: n.EnforceSlashing,
		justifiedState:  n.justifiedState.Clone(),
		pending:         make(map[types.Root][]blocktree.Block, len(n.pending)),
		incentivesNext:  n.incentivesNext,
		slashEvidence:   append([]slashing.Evidence(nil), n.slashEvidence...),
	}
	for parent, blocks := range n.pending {
		out.pending[parent] = append([]blocktree.Block(nil), blocks...)
	}
	out.stakeFn = out.Registry.Stake
	out.activeFn = func(v types.ValidatorIndex) bool {
		return attestation.VotedForTargetIn(out.activityVotes, v, out.activityRoot)
	}
	return out
}

// ReceiveBlock ingests a block, buffering it if its parent is unknown and
// flushing any descendants that were waiting on it.
func (n *Node) ReceiveBlock(b blocktree.Block) {
	if n.Tree.Has(b.Root) {
		return
	}
	if !n.Tree.Has(b.Parent) {
		n.pending[b.Parent] = append(n.pending[b.Parent], b)
		return
	}
	if err := n.Tree.Add(b); err != nil {
		return // duplicate or malformed; ignore like a real node would
	}
	// Flush children that were waiting for this block.
	waiting := n.pending[b.Root]
	delete(n.pending, b.Root)
	for _, w := range waiting {
		n.ReceiveBlock(w)
	}
}

// ReceiveAttestation ingests an attestation: records the block vote for
// fork choice, the checkpoint vote in the pool, and feeds the slashing
// detector. Detected offenses are applied to the registry when
// EnforceSlashing is set.
func (n *Node) ReceiveAttestation(a attestation.Attestation) {
	if added := n.Pool.Add(a); !added {
		return
	}
	n.Votes.Process(a.Validator, a.Data.Head, a.Data.Slot)
	if ev := n.Detector.Observe(a); ev != nil {
		n.slashEvidence = append(n.slashEvidence, *ev)
		if n.EnforceSlashing {
			_ = n.Registry.Slash(ev.Validator, a.Data.Slot.Epoch())
		}
	}
}

// SlashingEvidence returns all offenses this node has detected.
func (n *Node) SlashingEvidence() []slashing.Evidence {
	out := make([]slashing.Evidence, len(n.slashEvidence))
	copy(out, n.slashEvidence)
	return out
}

// SetVisibility installs (or, with nil, removes) a view filter: head
// computations skip blocks for which visible returns false. The simulator
// toggles it around per-validator computations; it does not affect block
// or attestation ingestion.
func (n *Node) SetVisibility(visible func(types.Root) bool) { n.visible = visible }

// Head computes the node's candidate-chain head: LMD-GHOST from the block
// of the latest justified checkpoint, weighing votes with the balances of
// the justified state (not the current view's balances), as the consensus
// spec does. Those balances are pushed into the fork-choice engine whenever
// the justified snapshot advances, so the engine applies them as vote
// deltas instead of re-reading every validator's stake per call. An
// installed visibility filter restricts the descent.
func (n *Node) Head() (types.Root, error) {
	start := n.FFG.LatestJustified().Root
	if !n.Tree.Has(start) {
		start = n.Tree.Genesis()
	}
	return n.Votes.HeadFiltered(n.Tree, start, n.visible)
}

// ProduceBlockFor builds the block validator `proposer` would propose at
// slot from this view, extending the current head. The block root is a
// deterministic hash of (slot, proposer, parent) so that all views mint
// identical identifiers. The block is NOT applied to the view; the caller
// decides when the view receives it (the view-cohort simulator applies it
// immediately for the proposer and embargoes it for everyone else).
func (n *Node) ProduceBlockFor(slot types.Slot, proposer types.ValidatorIndex) (blocktree.Block, error) {
	head, err := n.Head()
	if err != nil {
		return blocktree.Block{}, fmt.Errorf("beacon: produce block: %w", err)
	}
	return blocktree.Block{
		Slot:     slot,
		Root:     crypto.HashRoots(uint64(slot)<<20|uint64(proposer), head),
		Parent:   head,
		Proposer: proposer,
	}, nil
}

// ProduceBlock builds and immediately applies the block this node's own
// validator proposes at slot.
func (n *Node) ProduceBlock(slot types.Slot) (blocktree.Block, error) {
	b, err := n.ProduceBlockFor(slot, n.ID)
	if err != nil {
		return blocktree.Block{}, err
	}
	n.ReceiveBlock(b)
	return b, nil
}

// AttestationData builds the attestation content any validator sharing
// this view casts at the given slot: block vote = current head, source =
// latest justified checkpoint, target = current epoch's checkpoint on the
// head branch. The view-cohort simulator computes it once per cohort and
// fans it out to every duty member.
func (n *Node) AttestationData(slot types.Slot) (attestation.Data, error) {
	head, err := n.Head()
	if err != nil {
		return attestation.Data{}, fmt.Errorf("beacon: attest: %w", err)
	}
	target, err := n.Tree.CheckpointFor(head, slot.Epoch())
	if err != nil {
		return attestation.Data{}, fmt.Errorf("beacon: attest: %w", err)
	}
	return attestation.Data{
		Slot:   slot,
		Head:   head,
		Source: n.FFG.LatestJustified(),
		Target: target,
	}, nil
}

// ProduceAttestation builds this node's own attestation for the given
// slot.
func (n *Node) ProduceAttestation(slot types.Slot) (attestation.Attestation, error) {
	d, err := n.AttestationData(slot)
	if err != nil {
		return attestation.Attestation{}, err
	}
	return attestation.Attestation{Validator: n.ID, Data: d}, nil
}

// EpochReport summarizes one ProcessEpochBoundary call.
type EpochReport struct {
	Epoch          types.Epoch
	InLeak         bool
	FFG            ffg.Result
	Leak           incentives.Summary
	CanonicalCheck types.Checkpoint
}

// ProcessEpochBoundary runs at the first slot of `newEpoch`. It
//
//  1. re-scans the FFG justification window (the last four target epochs)
//     against the pool, so late-arriving votes still justify — idempotent;
//  2. applies inactivity-leak incentive processing exactly once for the
//     epoch that just ended, using this view's canonical checkpoint as the
//     activity criterion;
//  3. prunes old pool entries.
func (n *Node) ProcessEpochBoundary(newEpoch types.Epoch) (EpochReport, error) {
	if newEpoch == 0 {
		return EpochReport{}, nil
	}
	ended := newEpoch - 1

	// FFG window re-scan, on the columnar path: the pool's
	// validator-indexed vote columns are tallied into a reusable
	// link-weight scratch and fed to the FFG engine's slice sweep, so a
	// steady-state boundary (the whole of a leak) allocates nothing.
	var ffgRes ffg.Result
	justifiedBefore := n.FFG.LatestJustified()
	lo := types.Epoch(0)
	if newEpoch > 4 {
		lo = newEpoch - 4
	}
	total := n.Registry.TotalStake()
	for e := lo; e <= ended; e++ {
		n.tallyScratch = n.Pool.AppendLinkTally(n.tallyScratch[:0], e, n.stakeFn)
		res := n.FFG.ProcessTally(e, n.tallyScratch, total, newEpoch)
		ffgRes.NewlyJustified = append(ffgRes.NewlyJustified, res.NewlyJustified...)
		ffgRes.NewlyFinalized = append(ffgRes.NewlyFinalized, res.NewlyFinalized...)
	}
	// The justified checkpoint advanced: snapshot the balances that the
	// fork-choice rule will weigh votes with, and push them into the
	// engine as stake deltas.
	if n.FFG.LatestJustified() != justifiedBefore {
		n.justifiedState = n.Registry.Clone()
		n.Votes.UpdateStakes(n.justifiedState.Len(), n.justifiedState.Stake)
	}

	// Finality advanced: blocks conflicting with the finalized checkpoint
	// can never return to the canonical chain, so reclaim their memory.
	if len(ffgRes.NewlyFinalized) > 0 {
		if fin := n.FFG.Finalized(); n.Tree.Has(fin.Root) && fin.Root != n.Tree.Genesis() {
			_, _ = n.Tree.PruneBelow(fin.Root)
		}
	}

	report := EpochReport{Epoch: ended, FFG: ffgRes}

	// Incentives: once per ended epoch (the watermark advances with the
	// boundary; replays of an already-processed boundary re-scan FFG —
	// idempotent — but never re-apply penalties).
	if ended >= n.incentivesNext {
		n.incentivesNext = ended + 1
		head, err := n.Head()
		if err != nil {
			return report, fmt.Errorf("beacon: epoch boundary: %w", err)
		}
		canonical, err := n.Tree.CheckpointFor(head, ended)
		if err != nil {
			return report, fmt.Errorf("beacon: epoch boundary: %w", err)
		}
		report.CanonicalCheck = canonical
		inLeak := n.FFG.InLeak(newEpoch, n.Spec)
		report.InLeak = inLeak
		// Activity is read straight off the ended epoch's vote column —
		// one slice index per validator inside the incentive sweep, no
		// per-validator map probe and no per-epoch closure allocation
		// (activeFn is built once at construction).
		n.activityVotes = n.Pool.VotesForEpoch(ended)
		n.activityRoot = canonical.Root
		report.Leak = n.Leak.ProcessEpoch(n.Registry, n.activeFn, inLeak, ended)
		n.activityVotes = nil // do not pin the column past the sweep
	}

	// Bound pool and detector memory.
	if newEpoch > 8 {
		n.Pool.Prune(newEpoch - 8)
		n.Detector.Prune(newEpoch - 8)
	}
	return report, nil
}

// CompactTree folds the cold unbranched spine of the block tree into
// skip segments (blocktree.Compact) once finality has stalled long enough
// that PruneBelow cannot reclaim it. Every root the node can still
// observe is pinned exactly: the FFG checkpoint anchors (justified set,
// finalized, latest justified) and the latest vote target of every
// validator. Returns the number of folded blocks; the tree's Version bump
// makes the fork-choice engine rebuild against the compacted index space.
func (n *Node) CompactTree(olderThan types.Slot) int {
	pinned := make(map[types.Root]struct{}, n.Registry.Len()+8)
	for _, c := range n.FFG.Justifieds() {
		pinned[c.Root] = struct{}{}
	}
	pinned[n.FFG.Finalized().Root] = struct{}{}
	pinned[n.FFG.LatestJustified().Root] = struct{}{}
	for v := 0; v < n.Registry.Len(); v++ {
		if m, ok := n.Votes.Latest(types.ValidatorIndex(v)); ok {
			pinned[m.Root] = struct{}{}
		}
	}
	return n.Tree.Compact(olderThan, func(r types.Root) bool {
		_, ok := pinned[r]
		return ok
	})
}

// Finalized returns the node's finalized checkpoint.
func (n *Node) Finalized() types.Checkpoint { return n.FFG.Finalized() }

// FinalizedConflictsWith reports whether this node's finalized checkpoint
// conflicts with another checkpoint given this node's tree (the paper's
// Safety violation (1)). Checkpoints on unknown blocks are treated as
// conflicting only if provably on another branch, which requires the other
// view's tree; callers with global knowledge should use ffg.CheckConflict
// with a merged tree.
func (n *Node) FinalizedConflictsWith(other types.Checkpoint) error {
	return ffg.CheckConflict(n.Finalized(), other, n.Tree.IsAncestor)
}
