package types

import "testing"

func TestDefaultSpecValues(t *testing.T) {
	s := DefaultSpec()
	if s.SlotsPerEpoch != 32 ||
		s.InactivityPenaltyQuotient != 1<<26 ||
		s.InactivityScoreBias != 4 ||
		s.InactivityScoreRecovery != 1 ||
		s.InactivityScoreFlatRecovery != 16 ||
		s.MinEpochsToInactivityLeak != 4 ||
		s.EjectionBalance != EjectionBalanceGwei ||
		s.MaxEffectiveBalance != MaxEffectiveBalanceGwei {
		t.Errorf("DefaultSpec = %+v", s)
	}
	if s.ResidualPenalties {
		t.Error("paper model must default to leak-only penalties")
	}
}

func TestCompressedSpec(t *testing.T) {
	s := CompressedSpec(1 << 16)
	if s.InactivityPenaltyQuotient != 1<<10 {
		t.Errorf("quotient = %d, want 2^10", s.InactivityPenaltyQuotient)
	}
	// Everything else unchanged.
	if s.InactivityScoreBias != 4 || s.EjectionBalance != EjectionBalanceGwei {
		t.Error("compression must only change the quotient")
	}
	// Degenerate factors clamp sanely.
	if got := CompressedSpec(0).InactivityPenaltyQuotient; got != 1<<26 {
		t.Errorf("factor 0 quotient = %d, want unchanged", got)
	}
	if got := CompressedSpec(1 << 40).InactivityPenaltyQuotient; got != 1 {
		t.Errorf("over-compression quotient = %d, want floor at 1", got)
	}
}

func TestEpochSlotHelpers(t *testing.T) {
	if got := Epoch(3).EndSlot(); got != 127 {
		t.Errorf("Epoch(3).EndSlot() = %d, want 127", got)
	}
	if FarFutureEpoch <= 1<<62 {
		t.Error("FarFutureEpoch must be effectively infinite")
	}
}
