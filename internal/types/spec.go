package types

// Spec bundles the protocol parameters the penalty analysis depends on.
// DefaultSpec returns the paper's values; tests and fast integration runs
// may shrink InactivityPenaltyQuotient to compress leak time scales without
// changing any mechanism (every formula uses the quotient symbolically).
type Spec struct {
	// SlotsPerEpoch is the epoch length in slots.
	SlotsPerEpoch uint64
	// InactivityPenaltyQuotient divides score-weighted stake to yield the
	// per-epoch leak penalty.
	InactivityPenaltyQuotient uint64
	// InactivityScoreBias is the score increment for an inactive epoch.
	InactivityScoreBias uint64
	// InactivityScoreRecovery is the score decrement for an active epoch.
	InactivityScoreRecovery uint64
	// InactivityScoreFlatRecovery is the extra decrement applied to every
	// score each epoch outside a leak.
	InactivityScoreFlatRecovery uint64
	// MinEpochsToInactivityLeak is the finality gap that starts a leak.
	MinEpochsToInactivityLeak uint64
	// EjectionBalance is the stake at or below which a validator is
	// ejected.
	EjectionBalance Gwei
	// MaxEffectiveBalance is the initial per-validator stake.
	MaxEffectiveBalance Gwei
	// ResidualPenalties applies inactivity penalties whenever a
	// validator's score is positive, even outside a leak — the
	// production-spec behavior behind the paper's footnote 12 corner
	// case: Byzantine validators that finalize just before the ejection
	// of honest inactive validators end the leak, yet the accumulated
	// scores keep draining the inactive validators until ejection while
	// the semi-active Byzantine validators bleed far less. The paper's
	// own model (the default, false) applies penalties only during
	// leaks.
	ResidualPenalties bool
}

// DefaultSpec returns the constants as used in the paper.
func DefaultSpec() Spec {
	return Spec{
		SlotsPerEpoch:               SlotsPerEpoch,
		InactivityPenaltyQuotient:   InactivityPenaltyQuotient,
		InactivityScoreBias:         InactivityScoreBias,
		InactivityScoreRecovery:     InactivityScoreRecovery,
		InactivityScoreFlatRecovery: InactivityScoreFlatRecovery,
		MinEpochsToInactivityLeak:   MinEpochsToInactivityLeak,
		EjectionBalance:             EjectionBalanceGwei,
		MaxEffectiveBalance:         MaxEffectiveBalanceGwei,
	}
}

// CompressedSpec returns a spec with the inactivity penalty quotient scaled
// down by factor (minimum 1), compressing leak time scales by roughly
// sqrt(factor) while leaving every mechanism intact. Integration tests use
// it to exercise a full leak cycle in tens of epochs instead of thousands.
func CompressedSpec(factor uint64) Spec {
	s := DefaultSpec()
	if factor < 1 {
		factor = 1
	}
	q := s.InactivityPenaltyQuotient / factor
	if q < 1 {
		q = 1
	}
	s.InactivityPenaltyQuotient = q
	return s
}
