// Package types defines the primitive protocol types and constants shared by
// every subsystem of the reproduction: slots, epochs, validator indices,
// balances in Gwei, 32-byte roots, and checkpoints.
//
// The constants mirror the values used by the paper "Byzantine Attacks
// Exploiting Penalties in Ethereum PoS" (DSN 2024): an epoch is 32 slots of
// 12 seconds, the inactivity penalty quotient is 2^26, the inactivity score
// bias is +4 per inactive epoch, and validators are ejected once their stake
// falls to 16.75 ETH or below.
package types

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Protocol constants as stated in the paper (Sections 3 and 4).
const (
	// SlotsPerEpoch is the number of slots in one epoch.
	SlotsPerEpoch = 32

	// SecondsPerSlot is the wall-clock duration of a slot.
	SecondsPerSlot = 12

	// GweiPerETH converts ETH amounts to Gwei.
	GweiPerETH = 1_000_000_000

	// MaxEffectiveBalanceGwei is the initial (and maximum) stake of a
	// validator: 32 ETH.
	MaxEffectiveBalanceGwei Gwei = 32 * GweiPerETH

	// EjectionBalanceGwei is the stake threshold at which a validator is
	// ejected from the validator set. The paper uses "lower or equal than
	// 16.75" ETH (Section 4.3).
	EjectionBalanceGwei Gwei = 16_750_000_000

	// InactivityPenaltyQuotient divides the inactivity-score-weighted
	// stake to produce the per-epoch leak penalty (Equation 2): the
	// penalty at epoch t is I(t-1) * s(t-1) / 2^26.
	InactivityPenaltyQuotient = 1 << 26

	// InactivityScoreBias is added to the inactivity score of a validator
	// deemed inactive for an epoch (Equation 1).
	InactivityScoreBias = 4

	// InactivityScoreRecovery is subtracted from the inactivity score of
	// a validator deemed active for an epoch (Equation 1).
	InactivityScoreRecovery = 1

	// InactivityScoreFlatRecovery is the additional reduction applied to
	// all inactivity scores each epoch while the chain is NOT in an
	// inactivity leak (Section 4.1: "every epoch the inactivity scores
	// are decreased by 16").
	InactivityScoreFlatRecovery = 16

	// MinEpochsToInactivityLeak is the number of consecutive epochs
	// without finalization after which the inactivity leak begins
	// (Section 3.3).
	MinEpochsToInactivityLeak = 4

	// WhistleblowerQuotient scales the immediate slashing penalty: a
	// slashed validator immediately loses stake/32 (a simplification of
	// the spec's minimum slashing penalty, sufficient for the paper's
	// scenarios where slashing implies ejection).
	WhistleblowerQuotient = 32

	// FarFutureEpoch marks "no epoch": used for validators that have not
	// exited.
	FarFutureEpoch Epoch = 1<<64 - 1
)

// Slot is a 12-second protocol time unit. Slot 0 is the genesis slot.
type Slot uint64

// Epoch is a 32-slot protocol time unit. Epoch 0 contains slots 0..31.
type Epoch uint64

// ValidatorIndex identifies a validator within the registry.
type ValidatorIndex uint64

// Gwei is a stake amount in 10^-9 ETH.
type Gwei uint64

// Root is a 32-byte identifier for a block (or any hashed object).
type Root [32]byte

// Epoch returns the epoch containing s.
func (s Slot) Epoch() Epoch { return Epoch(uint64(s) / SlotsPerEpoch) }

// PositionInEpoch returns the index of s within its epoch, in [0, 31].
func (s Slot) PositionInEpoch() uint64 { return uint64(s) % SlotsPerEpoch }

// IsEpochStart reports whether s is the first slot of its epoch.
func (s Slot) IsEpochStart() bool { return uint64(s)%SlotsPerEpoch == 0 }

// StartSlot returns the first slot of epoch e.
func (e Epoch) StartSlot() Slot { return Slot(uint64(e) * SlotsPerEpoch) }

// EndSlot returns the last slot of epoch e.
func (e Epoch) EndSlot() Slot { return Slot(uint64(e)*SlotsPerEpoch + SlotsPerEpoch - 1) }

// Prev returns the previous epoch, saturating at zero.
func (e Epoch) Prev() Epoch {
	if e == 0 {
		return 0
	}
	return e - 1
}

// ETH returns the amount in ETH as a float64, for reporting and for
// comparison with the paper's continuous model.
func (g Gwei) ETH() float64 { return float64(g) / GweiPerETH }

// GweiFromETH converts a (possibly fractional) ETH amount to Gwei,
// truncating sub-Gwei precision.
func GweiFromETH(eth float64) Gwei { return Gwei(eth * GweiPerETH) }

// SaturatingSub returns g-d, saturating at zero rather than wrapping.
func (g Gwei) SaturatingSub(d Gwei) Gwei {
	if d >= g {
		return 0
	}
	return g - d
}

// String renders the root as an abbreviated hex string.
func (r Root) String() string {
	return "0x" + hex.EncodeToString(r[:4])
}

// IsZero reports whether the root is all zero bytes.
func (r Root) IsZero() bool { return r == Root{} }

// RootFromUint64 builds a deterministic root from an integer; used by tests
// and by the simulator's deterministic block identifiers.
func RootFromUint64(v uint64) Root {
	var r Root
	binary.BigEndian.PutUint64(r[:8], v)
	return r
}

// Checkpoint is a (block, epoch) pair: the block of the first slot of the
// epoch, as seen by a given chain (Section 3.1).
type Checkpoint struct {
	Epoch Epoch
	Root  Root
}

// String renders the checkpoint for logs and error messages.
func (c Checkpoint) String() string {
	return fmt.Sprintf("checkpoint(epoch=%d root=%s)", c.Epoch, c.Root)
}

// IsZero reports whether c is the zero checkpoint.
func (c Checkpoint) IsZero() bool { return c.Epoch == 0 && c.Root.IsZero() }
