package types

import (
	"testing"
	"testing/quick"
)

func TestSlotEpoch(t *testing.T) {
	tests := []struct {
		slot Slot
		want Epoch
	}{
		{0, 0},
		{1, 0},
		{31, 0},
		{32, 1},
		{63, 1},
		{64, 2},
		{320, 10},
	}
	for _, tt := range tests {
		if got := tt.slot.Epoch(); got != tt.want {
			t.Errorf("Slot(%d).Epoch() = %d, want %d", tt.slot, got, tt.want)
		}
	}
}

func TestEpochStartEndSlot(t *testing.T) {
	tests := []struct {
		epoch Epoch
		start Slot
		end   Slot
	}{
		{0, 0, 31},
		{1, 32, 63},
		{10, 320, 351},
	}
	for _, tt := range tests {
		if got := tt.epoch.StartSlot(); got != tt.start {
			t.Errorf("Epoch(%d).StartSlot() = %d, want %d", tt.epoch, got, tt.start)
		}
		if got := tt.epoch.EndSlot(); got != tt.end {
			t.Errorf("Epoch(%d).EndSlot() = %d, want %d", tt.epoch, got, tt.end)
		}
	}
}

func TestSlotEpochRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		s := Slot(raw)
		e := s.Epoch()
		return e.StartSlot() <= s && s <= e.EndSlot()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsEpochStart(t *testing.T) {
	if !Slot(0).IsEpochStart() {
		t.Error("slot 0 should be an epoch start")
	}
	if !Slot(32).IsEpochStart() {
		t.Error("slot 32 should be an epoch start")
	}
	if Slot(33).IsEpochStart() {
		t.Error("slot 33 should not be an epoch start")
	}
}

func TestPositionInEpoch(t *testing.T) {
	if got := Slot(0).PositionInEpoch(); got != 0 {
		t.Errorf("PositionInEpoch(0) = %d", got)
	}
	if got := Slot(63).PositionInEpoch(); got != 31 {
		t.Errorf("PositionInEpoch(63) = %d", got)
	}
}

func TestEpochPrev(t *testing.T) {
	if got := Epoch(0).Prev(); got != 0 {
		t.Errorf("Epoch(0).Prev() = %d, want saturation at 0", got)
	}
	if got := Epoch(5).Prev(); got != 4 {
		t.Errorf("Epoch(5).Prev() = %d, want 4", got)
	}
}

func TestGweiETHConversion(t *testing.T) {
	if got := MaxEffectiveBalanceGwei.ETH(); got != 32 {
		t.Errorf("MaxEffectiveBalance.ETH() = %v, want 32", got)
	}
	if got := EjectionBalanceGwei.ETH(); got != 16.75 {
		t.Errorf("EjectionBalance.ETH() = %v, want 16.75", got)
	}
	if got := GweiFromETH(32); got != MaxEffectiveBalanceGwei {
		t.Errorf("GweiFromETH(32) = %d, want %d", got, MaxEffectiveBalanceGwei)
	}
}

func TestGweiSaturatingSub(t *testing.T) {
	tests := []struct {
		g, d, want Gwei
	}{
		{10, 3, 7},
		{10, 10, 0},
		{10, 11, 0},
		{0, 1, 0},
	}
	for _, tt := range tests {
		if got := tt.g.SaturatingSub(tt.d); got != tt.want {
			t.Errorf("%d.SaturatingSub(%d) = %d, want %d", tt.g, tt.d, got, tt.want)
		}
	}
}

func TestSaturatingSubNeverWraps(t *testing.T) {
	f := func(a, b uint64) bool {
		got := Gwei(a).SaturatingSub(Gwei(b))
		if b >= a {
			return got == 0
		}
		return got == Gwei(a-b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRootFromUint64(t *testing.T) {
	a := RootFromUint64(1)
	b := RootFromUint64(2)
	if a == b {
		t.Error("distinct inputs must produce distinct roots")
	}
	if a.IsZero() {
		t.Error("RootFromUint64(1) should not be zero")
	}
	if !(Root{}).IsZero() {
		t.Error("zero root should report IsZero")
	}
}

func TestRootString(t *testing.T) {
	r := RootFromUint64(0xdeadbeef)
	if got := r.String(); got != "0x00000000" {
		t.Errorf("Root.String() = %q, want first 4 big-endian bytes", got)
	}
}

func TestCheckpointString(t *testing.T) {
	c := Checkpoint{Epoch: 3, Root: RootFromUint64(7)}
	if got := c.String(); got == "" {
		t.Error("Checkpoint.String() should be non-empty")
	}
	if !(Checkpoint{}).IsZero() {
		t.Error("zero checkpoint should report IsZero")
	}
	if c.IsZero() {
		t.Error("non-zero checkpoint should not report IsZero")
	}
}

func TestPaperConstants(t *testing.T) {
	// Pin the constants the paper's analysis depends on.
	if InactivityPenaltyQuotient != 67108864 {
		t.Errorf("InactivityPenaltyQuotient = %d, want 2^26", InactivityPenaltyQuotient)
	}
	if InactivityScoreBias != 4 || InactivityScoreRecovery != 1 {
		t.Error("inactivity score update rule must be +4 / -1 per the paper")
	}
	if MinEpochsToInactivityLeak != 4 {
		t.Error("leak must start after 4 epochs without finalization")
	}
	if SlotsPerEpoch != 32 || SecondsPerSlot != 12 {
		t.Error("epoch structure must be 32 slots of 12 seconds")
	}
}
