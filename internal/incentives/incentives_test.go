package incentives

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/types"
	"repro/internal/validator"
)

func always(bool) func(types.ValidatorIndex) bool {
	return func(types.ValidatorIndex) bool { return true }
}

func activeSet(m map[types.ValidatorIndex]bool) func(types.ValidatorIndex) bool {
	return func(v types.ValidatorIndex) bool { return m[v] }
}

func TestScoreDynamicsDuringLeak(t *testing.T) {
	e := NewEngine()
	reg := validator.NewRegistry(2, types.MaxEffectiveBalanceGwei)
	active := activeSet(map[types.ValidatorIndex]bool{0: true}) // v1 inactive
	for i := 0; i < 10; i++ {
		e.ProcessEpoch(reg, active, true, types.Epoch(i))
	}
	if got := reg.Score(0); got != 0 {
		t.Errorf("active validator score = %d, want 0", got)
	}
	if got := reg.Score(1); got != 40 {
		t.Errorf("inactive validator score = %d, want 4*10 = 40", got)
	}
}

func TestScoreRecoveryOutsideLeak(t *testing.T) {
	e := NewEngine()
	reg := validator.NewRegistry(1, types.MaxEffectiveBalanceGwei)
	reg.SetScore(0, 100)
	// Active outside leak: -1 (recovery) then -16 (flat) per epoch.
	e.ProcessEpoch(reg, always(true), false, 0)
	if got := reg.Score(0); got != 83 {
		t.Errorf("score after one non-leak active epoch = %d, want 83", got)
	}
	// Inactive outside leak: +4 then -16 = net -12.
	reg.SetScore(0, 100)
	e.ProcessEpoch(reg, func(types.ValidatorIndex) bool { return false }, false, 0)
	if got := reg.Score(0); got != 88 {
		t.Errorf("score after one non-leak inactive epoch = %d, want 88", got)
	}
	// Scores floor at zero.
	reg.SetScore(0, 5)
	e.ProcessEpoch(reg, always(true), false, 0)
	if got := reg.Score(0); got != 0 {
		t.Errorf("score must floor at zero, got %d", got)
	}
}

func TestNoPenaltyOutsideLeak(t *testing.T) {
	e := NewEngine()
	reg := validator.NewRegistry(1, types.MaxEffectiveBalanceGwei)
	reg.SetScore(0, 1000)
	sum := e.ProcessEpoch(reg, func(types.ValidatorIndex) bool { return false }, false, 0)
	if sum.TotalPenalty != 0 {
		t.Errorf("no inactivity penalty outside leak, got %d", sum.TotalPenalty)
	}
	if reg.Stake(0) != types.MaxEffectiveBalanceGwei {
		t.Errorf("stake changed outside leak: %d", reg.Stake(0))
	}
}

func TestAttestationPenaltyOutsideLeak(t *testing.T) {
	e := NewEngine()
	e.AttestationPenalty = 1000
	reg := validator.NewRegistry(2, types.MaxEffectiveBalanceGwei)
	active := activeSet(map[types.ValidatorIndex]bool{0: true})
	sum := e.ProcessEpoch(reg, active, false, 0)
	if sum.TotalPenalty != 1000 {
		t.Errorf("attestation penalty total = %d, want 1000", sum.TotalPenalty)
	}
	if reg.Stake(0) != types.MaxEffectiveBalanceGwei {
		t.Error("active validator must not pay attestation penalty")
	}
	if reg.Stake(1) != types.MaxEffectiveBalanceGwei-1000 {
		t.Error("inactive validator must pay attestation penalty")
	}
}

func TestPenaltyMatchesEquation2(t *testing.T) {
	e := NewEngine()
	reg := validator.NewRegistry(1, types.MaxEffectiveBalanceGwei)
	inactive := func(types.ValidatorIndex) bool { return false }

	// Epoch 0: score 0 -> no penalty; score becomes 4.
	e.ProcessEpoch(reg, inactive, true, 0)
	if reg.Stake(0) != types.MaxEffectiveBalanceGwei {
		t.Errorf("no penalty with zero score, stake = %d", reg.Stake(0))
	}
	// Epoch 1: penalty = 4 * s / 2^26.
	want := reg.Stake(0) - types.Gwei(4*uint64(reg.Stake(0))/types.InactivityPenaltyQuotient)
	e.ProcessEpoch(reg, inactive, true, 1)
	if reg.Stake(0) != want {
		t.Errorf("stake after first penalty = %d, want %d", reg.Stake(0), want)
	}
}

// TestInactiveStakeTracksContinuousModel verifies that the discrete integer
// engine stays within 0.5% of the paper's continuous law s(t) = 32 e^{-t^2 / 2^25}
// over the first 3000 epochs of a leak (Section 4.3, behavior (c)).
func TestInactiveStakeTracksContinuousModel(t *testing.T) {
	e := NewEngine()
	reg := validator.NewRegistry(1, types.MaxEffectiveBalanceGwei)
	inactive := func(types.ValidatorIndex) bool { return false }
	for epoch := 1; epoch <= 3000; epoch++ {
		e.ProcessEpoch(reg, inactive, true, types.Epoch(epoch))
		if epoch%1000 == 0 {
			tt := float64(epoch)
			want := 32 * math.Exp(-tt*tt/math.Pow(2, 25))
			got := reg.RawStake(0).ETH()
			if rel := math.Abs(got-want) / want; rel > 0.005 {
				t.Errorf("epoch %d: stake = %.4f ETH, continuous model %.4f (rel err %.4f)",
					epoch, got, want, rel)
			}
		}
	}
}

// TestSemiActiveStakeTracksContinuousModel does the same for the semi-active
// law s(t) = 32 e^{-3 t^2 / 2^28} (behavior (b)).
func TestSemiActiveStakeTracksContinuousModel(t *testing.T) {
	e := NewEngine()
	reg := validator.NewRegistry(1, types.MaxEffectiveBalanceGwei)
	for epoch := 1; epoch <= 4000; epoch++ {
		// Active every other epoch.
		isActive := epoch%2 == 0
		e.ProcessEpoch(reg, func(types.ValidatorIndex) bool { return isActive }, true, types.Epoch(epoch))
		if epoch%2000 == 0 {
			tt := float64(epoch)
			want := 32 * math.Exp(-3*tt*tt/math.Pow(2, 28))
			got := reg.RawStake(0).ETH()
			if rel := math.Abs(got-want) / want; rel > 0.005 {
				t.Errorf("epoch %d: stake = %.4f ETH, continuous model %.4f (rel err %.4f)",
					epoch, got, want, rel)
			}
		}
	}
}

// TestInactiveEjectionEpoch pins the ejection epoch of a fully inactive
// validator under exact integer arithmetic. The paper's continuous law
// crosses 16.75 ETH at t ~ 4661 (the paper reports 4685; see DESIGN.md on
// this discrepancy). The discrete engine must land within a few epochs of
// the continuous crossing.
func TestInactiveEjectionEpoch(t *testing.T) {
	e := NewEngine()
	reg := validator.NewRegistry(1, types.MaxEffectiveBalanceGwei)
	inactive := func(types.ValidatorIndex) bool { return false }
	ejectedAt := 0
	for epoch := 1; epoch <= 5000; epoch++ {
		sum := e.ProcessEpoch(reg, inactive, true, types.Epoch(epoch))
		if len(sum.Ejected) > 0 {
			ejectedAt = epoch
			break
		}
	}
	if ejectedAt == 0 {
		t.Fatal("inactive validator never ejected")
	}
	if ejectedAt < 4650 || ejectedAt > 4675 {
		t.Errorf("ejection epoch = %d, want ~4661 (continuous-model crossing)", ejectedAt)
	}
	if reg.InSet(0) {
		t.Error("validator still in set after ejection")
	}
}

// TestSemiActiveEjectionEpoch pins the semi-active ejection near the
// continuous crossing t ~ 7611 (paper reports 7652).
func TestSemiActiveEjectionEpoch(t *testing.T) {
	e := NewEngine()
	reg := validator.NewRegistry(1, types.MaxEffectiveBalanceGwei)
	ejectedAt := 0
	for epoch := 1; epoch <= 8000; epoch++ {
		isActive := epoch%2 == 0
		sum := e.ProcessEpoch(reg, func(types.ValidatorIndex) bool { return isActive }, true, types.Epoch(epoch))
		if len(sum.Ejected) > 0 {
			ejectedAt = epoch
			break
		}
	}
	if ejectedAt == 0 {
		t.Fatal("semi-active validator never ejected")
	}
	if ejectedAt < 7590 || ejectedAt > 7640 {
		t.Errorf("ejection epoch = %d, want ~7611 (continuous-model crossing)", ejectedAt)
	}
}

func TestActiveValidatorNeverPenalized(t *testing.T) {
	e := NewEngine()
	reg := validator.NewRegistry(1, types.MaxEffectiveBalanceGwei)
	for epoch := 1; epoch <= 1000; epoch++ {
		e.ProcessEpoch(reg, always(true), true, types.Epoch(epoch))
	}
	if reg.Stake(0) != types.MaxEffectiveBalanceGwei {
		t.Errorf("active validator lost stake: %d", reg.Stake(0))
	}
	if reg.Score(0) != 0 {
		t.Errorf("active validator score = %d, want 0", reg.Score(0))
	}
}

func TestExitedValidatorsSkipped(t *testing.T) {
	e := NewEngine()
	reg := validator.NewRegistry(2, types.MaxEffectiveBalanceGwei)
	reg.Slash(1, 0)
	before := reg.RawStake(1)
	sum := e.ProcessEpoch(reg, func(types.ValidatorIndex) bool { return false }, true, 1)
	if reg.RawStake(1) != before {
		t.Error("slashed validator must not receive leak penalties")
	}
	if reg.Score(1) != 0 {
		t.Error("slashed validator score must not change")
	}
	// Summary counts only in-set validators.
	if sum.TotalStake != reg.Stake(0) {
		t.Errorf("TotalStake = %d, want %d", sum.TotalStake, reg.Stake(0))
	}
}

func TestSummaryMeasurements(t *testing.T) {
	e := NewEngine()
	const stake = 100 * types.GweiPerETH
	reg := validator.NewRegistry(4, stake)
	active := activeSet(map[types.ValidatorIndex]bool{0: true, 1: true})
	sum := e.ProcessEpoch(reg, active, false, 0)
	if sum.TotalStake != 4*stake {
		t.Errorf("TotalStake = %d, want %d", sum.TotalStake, 4*stake)
	}
	if sum.ActiveStake != 2*stake {
		t.Errorf("ActiveStake = %d, want %d", sum.ActiveStake, 2*stake)
	}
}

func TestCompressedSpecLeaksFaster(t *testing.T) {
	fast := Engine{Spec: types.CompressedSpec(1 << 16)}
	reg := validator.NewRegistry(1, types.MaxEffectiveBalanceGwei)
	inactive := func(types.ValidatorIndex) bool { return false }
	ejectedAt := 0
	for epoch := 1; epoch <= 200; epoch++ {
		sum := fast.ProcessEpoch(reg, inactive, true, types.Epoch(epoch))
		if len(sum.Ejected) > 0 {
			ejectedAt = epoch
			break
		}
	}
	if ejectedAt == 0 {
		t.Fatal("compressed spec: validator never ejected within 200 epochs")
	}
	// sqrt(2^26 / 2^16) compression: ejection around 4661/sqrt(65536) ~ 18.
	if ejectedAt > 40 {
		t.Errorf("compressed ejection epoch = %d, want tens of epochs", ejectedAt)
	}
}

func TestResidualPenaltiesOutsideLeak(t *testing.T) {
	spec := types.DefaultSpec()
	spec.ResidualPenalties = true
	e := Engine{Spec: spec}
	reg := validator.NewRegistry(1, types.MaxEffectiveBalanceGwei)
	reg.SetScore(0, 10000)
	before := reg.Stake(0)
	// Outside a leak, a scored validator still pays I*s/2^26.
	sum := e.ProcessEpoch(reg, always(true), false, 0)
	wantPenalty := types.Gwei(10000 * uint64(before) / types.InactivityPenaltyQuotient)
	if got := before - reg.Stake(0); got != wantPenalty {
		t.Errorf("residual penalty = %d, want %d", got, wantPenalty)
	}
	if sum.TotalPenalty != wantPenalty {
		t.Errorf("summary penalty = %d, want %d", sum.TotalPenalty, wantPenalty)
	}
	// A zero-score validator pays nothing.
	reg2 := validator.NewRegistry(1, types.MaxEffectiveBalanceGwei)
	e.ProcessEpoch(reg2, always(true), false, 0)
	if reg2.Stake(0) != types.MaxEffectiveBalanceGwei {
		t.Error("zero-score validator must not pay residual penalties")
	}
}

// TestScoreNeverNegativeProperty: no activity pattern can drive the score
// negative (it is unsigned; the engine must floor, not wrap).
func TestScoreNeverNegativeProperty(t *testing.T) {
	e := NewEngine()
	f := func(pattern []bool, leakBits uint8) bool {
		reg := validator.NewRegistry(1, types.MaxEffectiveBalanceGwei)
		for i, active := range pattern {
			inLeak := leakBits&(1<<(i%8)) != 0
			e.ProcessEpoch(reg, func(types.ValidatorIndex) bool { return active }, inLeak, types.Epoch(i))
			if reg.Score(0) > 1<<40 {
				return false // wrapped around
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestStakeMonotoneNonIncreasingProperty: no activity pattern ever
// increases stake (the engine has no rewards).
func TestStakeMonotoneNonIncreasingProperty(t *testing.T) {
	e := NewEngine()
	f := func(pattern []bool) bool {
		reg := validator.NewRegistry(1, types.MaxEffectiveBalanceGwei)
		prev := reg.RawStake(0)
		for i, active := range pattern {
			e.ProcessEpoch(reg, func(types.ValidatorIndex) bool { return active }, true, types.Epoch(i))
			cur := reg.RawStake(0)
			if cur > prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIntPow2(t *testing.T) {
	if IntPow2(26) != types.InactivityPenaltyQuotient {
		t.Error("IntPow2(26) mismatch")
	}
}

// TestProcessEpochConsultsActivityOncePerValidator pins the fused sweep's
// contract: active(v) runs EXACTLY once per in-set validator per epoch.
// The pre-fusion sweep asked a second time during post-state measurement,
// which doubled the callback cost at long horizons and let an impure
// closure disagree with the penalty stage.
func TestProcessEpochConsultsActivityOncePerValidator(t *testing.T) {
	const n = 64
	e := Engine{Spec: types.CompressedSpec(1 << 16)}
	reg := validator.NewRegistry(n, e.Spec.MaxEffectiveBalance)
	if err := reg.Eject(7, 0); err != nil { // out-of-set validators are never consulted
		t.Fatal(err)
	}
	calls := make(map[types.ValidatorIndex]int)
	active := func(v types.ValidatorIndex) bool {
		calls[v]++
		return v%2 == 0
	}
	sum := e.ProcessEpoch(reg, active, true, 1)
	for v, c := range calls {
		if c != 1 {
			t.Errorf("active(%d) called %d times, want exactly 1", v, c)
		}
	}
	if len(calls) != n-1 {
		t.Errorf("active consulted for %d validators, want %d (out-of-set skipped)", len(calls), n-1)
	}
	if _, ok := calls[7]; ok {
		t.Error("active consulted for an ejected validator")
	}
	// The measurement must reuse the SAME answer the penalty stage saw:
	// an impure closure cannot split the two.
	if sum.ActiveStake == 0 || sum.ActiveStake >= sum.TotalStake {
		t.Errorf("post-state measurement inconsistent: active=%d total=%d", sum.ActiveStake, sum.TotalStake)
	}
}
