// Package incentives implements the inactivity-leak penalty engine of the
// paper's Section 4 in exact integer (Gwei) arithmetic:
//
//   - inactivity scores (Equation 1): +4 per inactive epoch, -1 per active
//     epoch (floored at zero), with an extra flat -16 per epoch outside a
//     leak;
//   - inactivity penalties (Equation 2): during a leak, every validator
//     loses I(t-1) * s(t-1) / 2^26 at epoch t;
//   - ejection: validators whose stake falls to the ejection balance
//     (16.75 ETH) or below leave the validator set.
//
// The engine operates on a validator.Registry, which represents one branch
// view. Activity is branch-relative: the same validator can be active on
// one branch and inactive on the other during a fork.
package incentives

import (
	"repro/internal/types"
	"repro/internal/validator"
)

// Engine applies per-epoch incentive processing under a given spec.
type Engine struct {
	Spec types.Spec
	// AttestationPenalty, if nonzero, is the flat per-epoch penalty for a
	// missed or incorrect attestation outside a leak. The paper notes
	// attestation penalties are dominated by inactivity penalties during
	// a leak, so the default is zero; the field exists for ablations.
	AttestationPenalty types.Gwei
}

// NewEngine returns an engine with the paper's default spec.
func NewEngine() Engine { return Engine{Spec: types.DefaultSpec()} }

// Summary reports what one epoch of processing did.
type Summary struct {
	// TotalPenalty is the stake burned from in-set validators this epoch.
	TotalPenalty types.Gwei
	// Ejected lists validators removed from the set this epoch.
	Ejected []types.ValidatorIndex
	// ActiveStake and TotalStake are measured after processing.
	ActiveStake types.Gwei
	TotalStake  types.Gwei
}

// ProcessEpoch advances the registry by one epoch.
//
// active(v) must report whether validator v was deemed active this epoch on
// this branch (attested with a correct target checkpoint). inLeak reports
// whether this view is currently in an inactivity leak. epoch is used to
// timestamp ejections.
//
// Per the paper's Equations 1-2, the penalty at epoch t uses the score and
// stake of epoch t-1, so penalties are applied before scores are updated.
//
// The sweep is one fused pass over the registry's columns — penalty,
// score update, ejection, and post-state measurement per validator — with
// no per-validator allocation. Per-validator processing is independent, so
// fusing is bit-identical to running the stages as separate sweeps; what
// fusing guarantees on top is that active(v) is consulted EXACTLY ONCE per
// validator per epoch. (The pre-fusion sweep asked again during post-state
// measurement, doubling the callback cost over a long horizon and giving
// impure closures a chance to disagree with the penalty stage.) The
// Ejected slice is the only allocation and only happens in epochs that
// actually eject.
//
//gasper:noalloc
func (e Engine) ProcessEpoch(reg *validator.Registry, active func(types.ValidatorIndex) bool, inLeak bool, epoch types.Epoch) Summary {
	var sum Summary
	spec := e.Spec
	cols := reg.Columns()

	for i := range cols.Stakes {
		if cols.Status[i] != validator.Active {
			continue
		}
		isActive := active(types.ValidatorIndex(i))

		// Penalty first: I(t-1) * s(t-1) / quotient — during leaks,
		// and with ResidualPenalties whenever the score is positive.
		if inLeak || (spec.ResidualPenalties && cols.Scores[i] > 0) {
			penalty := types.Gwei(cols.Scores[i] * uint64(cols.Stakes[i]) / spec.InactivityPenaltyQuotient)
			applied := cols.Stakes[i]
			cols.Stakes[i] = cols.Stakes[i].SaturatingSub(penalty)
			sum.TotalPenalty += applied - cols.Stakes[i]
		} else if !isActive && e.AttestationPenalty > 0 {
			applied := cols.Stakes[i]
			cols.Stakes[i] = cols.Stakes[i].SaturatingSub(e.AttestationPenalty)
			sum.TotalPenalty += applied - cols.Stakes[i]
		}

		// Score update (Equation 1).
		if isActive {
			if cols.Scores[i] >= spec.InactivityScoreRecovery {
				cols.Scores[i] -= spec.InactivityScoreRecovery
			} else {
				cols.Scores[i] = 0
			}
		} else {
			cols.Scores[i] += spec.InactivityScoreBias
		}
		// Flat recovery outside a leak.
		if !inLeak {
			if cols.Scores[i] >= spec.InactivityScoreFlatRecovery {
				cols.Scores[i] -= spec.InactivityScoreFlatRecovery
			} else {
				cols.Scores[i] = 0
			}
		}

		// Ejection after penalties.
		if cols.Stakes[i] <= spec.EjectionBalance {
			cols.Status[i] = validator.Ejected
			cols.Exit[i] = epoch
			sum.Ejected = append(sum.Ejected, types.ValidatorIndex(i)) //gasper:alloc only epochs that eject allocate; the steady-state sweep never appends
			continue
		}

		// Post-state measurement, reusing the activity already read.
		sum.TotalStake += cols.Stakes[i]
		if isActive {
			sum.ActiveStake += cols.Stakes[i]
		}
	}
	return sum
}

// IntPow2 is 2^k as a Gwei-compatible uint64 (helper for tests and
// ablations that sweep the quotient).
func IntPow2(k uint) uint64 { return 1 << k }
