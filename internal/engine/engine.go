// Package engine unifies the reproduction's scenario runners — the
// analytic solvers (internal/analytic), the paper-scale engines
// LeakSim/BounceMC (internal/core), and the full protocol simulator
// (internal/sim) — behind one Scenario interface with a named registry,
// and fans parameter grids out over a bounded worker pool (Sweep).
//
// Every runner consumes the same Params record and emits the same
// structured Result record, so one CLI, one renderer, and one sweep
// driver serve every artifact of the paper and any grid beyond it.
package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Field identifies one Params field for explicit-presence tracking; see
// Params.Explicit.
type Field uint16

// Field bits, one per Params field.
const (
	FieldP0 Field = 1 << iota
	FieldBeta0
	FieldMode
	FieldSeed
	FieldN
	FieldHorizon
	FieldSample
	FieldRate
	FieldGST
)

// fieldKeys maps the canonical parameter key (JSON key, sweep-grid key,
// CLI flag name — they agree) to its presence bit.
var fieldKeys = map[string]Field{
	"p0":      FieldP0,
	"beta0":   FieldBeta0,
	"mode":    FieldMode,
	"seed":    FieldSeed,
	"n":       FieldN,
	"horizon": FieldHorizon,
	"sample":  FieldSample,
	"rate":    FieldRate,
	"gst":     FieldGST,
}

// FieldAll marks every Params field explicit — the mask of a fully
// specified record, which is what WithDefaults produces.
const FieldAll = FieldP0 | FieldBeta0 | FieldMode | FieldSeed | FieldN |
	FieldHorizon | FieldSample | FieldRate | FieldGST

// FieldForKey resolves a canonical parameter key ("p0", "rate", "gst", …)
// to its presence bit. CLIs use it with flag.Visit to mark exactly the
// flags the user passed.
func FieldForKey(key string) (Field, bool) {
	f, ok := fieldKeys[key]
	return f, ok
}

// Params parameterizes one scenario run. An UNSET field means "use the
// scenario's default" (see Scenario.Defaults and WithDefaults). Presence
// is tracked explicitly in the Explicit mask: a field is taken as set when
// it is non-zero OR its bit is marked, so an explicit rate=0 (lossless
// baseline), gst=0 (heal immediately), p0=0, or beta0=0 survives
// defaulting instead of being silently rewritten to the scenario default —
// the bug that used to corrupt the baseline cell of any sweep whose
// scenario defaults that dimension to a non-zero value. DecodeParams marks
// keys present in a JSON document; Grid.Cells marks swept dimensions;
// CLIs mark visited flags.
type Params struct {
	// P0 is the honest split: the proportion of honest validators on
	// branch A (or the per-epoch placement probability in bouncing
	// scenarios).
	P0 float64 `json:"p0,omitempty"`
	// Beta0 is the initial Byzantine stake proportion.
	Beta0 float64 `json:"beta0,omitempty"`
	// Mode selects a scenario-specific variant (e.g. the Byzantine
	// strategy of the leaksim scenario).
	Mode string `json:"mode,omitempty"`
	// Seed drives every pseudo-random choice of stochastic scenarios.
	Seed int64 `json:"seed,omitempty"`
	// N scales the scenario (validator count).
	N int `json:"n,omitempty"`
	// Horizon bounds the run in epochs, or sets the evaluation epoch of
	// point estimates (bounce probabilities).
	Horizon int `json:"horizon,omitempty"`
	// Sample requests a trajectory sampled every Sample epochs in the
	// Result's Curve (0 = scalar metrics only).
	Sample int `json:"sample,omitempty"`
	// Rate is the network link-outage probability of protocol-simulator
	// scenarios (the sim/drops robustness dimension).
	Rate float64 `json:"rate,omitempty"`
	// GST is the epoch at which network partitions heal in
	// protocol-simulator scenarios (the sim/gst heal dimension).
	GST int `json:"gst,omitempty"`
	// Explicit marks fields the caller set on purpose, so WithDefaults
	// keeps an explicit zero instead of substituting the scenario
	// default. It is presence metadata, not a parameter, and it rides
	// the JSON key set rather than appearing as its own key: marshalling
	// emits exactly the fields that are non-zero or marked, and
	// unmarshalling marks exactly the keys present in the document. A
	// fully defaulted Params (WithDefaults) carries FieldAll, so a
	// result's parameter record serializes completely — an explicit
	// rate=0 survives a JSON round trip instead of vanishing into
	// omitempty and decoding back as "use the default".
	Explicit Field `json:"-"`
}

// MarshalJSON emits every field that is non-zero or marked explicit, so a
// sparse request stays sparse and a fully specified record stays
// complete.
func (p Params) MarshalJSON() ([]byte, error) {
	doc := make(map[string]any, 9)
	put := func(f Field, key string, zero bool, v any) {
		if !zero || p.IsExplicit(f) {
			doc[key] = v
		}
	}
	put(FieldP0, "p0", p.P0 == 0, p.P0)
	put(FieldBeta0, "beta0", p.Beta0 == 0, p.Beta0)
	put(FieldMode, "mode", p.Mode == "", p.Mode)
	put(FieldSeed, "seed", p.Seed == 0, p.Seed)
	put(FieldN, "n", p.N == 0, p.N)
	put(FieldHorizon, "horizon", p.Horizon == 0, p.Horizon)
	put(FieldSample, "sample", p.Sample == 0, p.Sample)
	put(FieldRate, "rate", p.Rate == 0, p.Rate)
	put(FieldGST, "gst", p.GST == 0, p.GST)
	return json.Marshal(doc)
}

// UnmarshalJSON decodes the document and marks every present key as
// explicitly set — the inverse of MarshalJSON, so round trips preserve
// presence.
func (p *Params) UnmarshalJSON(data []byte) error {
	type plain Params
	var v plain
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	var keys map[string]json.RawMessage
	if err := json.Unmarshal(data, &keys); err != nil {
		return err
	}
	*p = Params(v)
	p.Explicit = 0
	for key, f := range fieldKeys {
		if _, ok := keys[key]; ok {
			p.Explicit |= f
		}
	}
	return nil
}

// IsExplicit reports whether the field was marked explicitly set.
func (p Params) IsExplicit(f Field) bool { return p.Explicit&f != 0 }

// MarkExplicit returns p with the given fields marked explicitly set.
func (p Params) MarkExplicit(fields ...Field) Params {
	for _, f := range fields {
		p.Explicit |= f
	}
	return p
}

// DecodeParams unmarshals a JSON document into Params; key presence
// marks Explicit (see UnmarshalJSON), which is what lets {"rate": 0}
// mean "rate zero" rather than "scenario default".
func DecodeParams(data []byte) (Params, error) {
	var p Params
	if err := json.Unmarshal(data, &p); err != nil {
		return Params{}, err
	}
	return p, nil
}

// WithDefaults fills every unset field of p from d. A field is unset when
// it is zero-valued AND not marked in p.Explicit. The result is a fully
// specified record, so its mask is FieldAll: every field — explicit
// zeros included — survives serialization, and fully defaulted Params
// compare equal regardless of how their zeros were originally spelled.
func (p Params) WithDefaults(d Params) Params {
	if p.P0 == 0 && !p.IsExplicit(FieldP0) {
		p.P0 = d.P0
	}
	if p.Beta0 == 0 && !p.IsExplicit(FieldBeta0) {
		p.Beta0 = d.Beta0
	}
	if p.Mode == "" && !p.IsExplicit(FieldMode) {
		p.Mode = d.Mode
	}
	if p.Seed == 0 && !p.IsExplicit(FieldSeed) {
		p.Seed = d.Seed
	}
	if p.N == 0 && !p.IsExplicit(FieldN) {
		p.N = d.N
	}
	if p.Horizon == 0 && !p.IsExplicit(FieldHorizon) {
		p.Horizon = d.Horizon
	}
	if p.Sample == 0 && !p.IsExplicit(FieldSample) {
		p.Sample = d.Sample
	}
	if p.Rate == 0 && !p.IsExplicit(FieldRate) {
		p.Rate = d.Rate
	}
	if p.GST == 0 && !p.IsExplicit(FieldGST) {
		p.GST = d.GST
	}
	p.Explicit = FieldAll
	return p
}

// String renders the non-zero parameters compactly.
func (p Params) String() string {
	var b strings.Builder
	add := func(format string, args ...any) {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, format, args...)
	}
	add("p0=%.4g", p.P0)
	if p.Beta0 != 0 {
		add("beta0=%.4g", p.Beta0)
	}
	if p.Mode != "" {
		add("mode=%s", p.Mode)
	}
	if p.Seed != 0 {
		add("seed=%d", p.Seed)
	}
	if p.N != 0 {
		add("n=%d", p.N)
	}
	if p.Horizon != 0 {
		add("horizon=%d", p.Horizon)
	}
	if p.Rate != 0 {
		add("rate=%.4g", p.Rate)
	}
	if p.GST != 0 {
		add("gst=%d", p.GST)
	}
	return b.String()
}

// Metric is one named scalar output of a scenario run. Metrics are an
// ordered list (not a map) so that rendered columns are stable.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// CurvePoint is one sample of a scenario trajectory.
type CurvePoint struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Result is the structured record every scenario emits; internal/report
// renders slices of it as ASCII tables, CSV, and JSON.
type Result struct {
	// Scenario is the registry name that produced the result.
	Scenario string `json:"scenario"`
	// Params are the fully-defaulted parameters of the run.
	Params Params `json:"params"`
	// Outcome is the paper's qualitative outcome line, when one applies.
	Outcome string `json:"outcome,omitempty"`
	// Metrics are the scalar outputs, in a scenario-fixed order.
	Metrics []Metric `json:"metrics,omitempty"`
	// CurveName and Curve optionally carry a sampled trajectory
	// (Params.Sample > 0).
	CurveName string       `json:"curve_name,omitempty"`
	Curve     []CurvePoint `json:"curve,omitempty"`
	// Err records a per-cell failure inside a sweep (empty = success).
	Err string `json:"error,omitempty"`
	// Meta carries execution metadata (wall-clock duration, cache
	// provenance). It is nil for results that never went through a sweep
	// or a serving layer, and is deliberately excluded from determinism
	// comparisons: the payload above is bit-identical across worker
	// counts, the timing below is not.
	Meta *RunMeta `json:"meta,omitempty"`
}

// RunMeta is the non-deterministic execution metadata of a Result.
type RunMeta struct {
	// DurationMS is the wall-clock time of the cell's computation in
	// milliseconds.
	DurationMS float64 `json:"duration_ms,omitempty"`
	// EpochsPerSec is the sustained simulation throughput of the cell
	// (simulated epochs divided by wall-clock seconds). Zero for
	// non-simulation scenarios.
	EpochsPerSec float64 `json:"epochs_per_sec,omitempty"`
	// Sim carries end-of-run simulation retention statistics. Nil for
	// non-simulation scenarios.
	Sim *SimStats `json:"sim,omitempty"`
	// Cached marks a result served from a cache instead of recomputed.
	Cached bool `json:"cached,omitempty"`
	// Warm carries snapshot-tree warm-start provenance when the cell ran
	// through the warm-start sweep scheduler. Nil on cold runs.
	Warm *WarmMeta `json:"warm,omitempty"`
	// Checkpoint carries durable-checkpoint provenance when the cell ran
	// with a checkpoint store configured (Options.Checkpoint). Nil
	// otherwise.
	Checkpoint *CheckpointMeta `json:"checkpoint,omitempty"`
}

// SimStats summarizes what a simulation still held in memory when it
// finished: block-tree node columns across all materialized views (after
// any pruning/compaction), the skip-segment and folded-block counts spine
// compaction produced, and the fork-choice engines' column footprint.
type SimStats struct {
	TreeNodes    int `json:"tree_nodes,omitempty"`
	TreeSegments int `json:"tree_segments,omitempty"`
	TreeFolded   int `json:"tree_folded,omitempty"`
	TreeBytes    int `json:"tree_bytes,omitempty"`
	OracleNodes  int `json:"oracle_nodes,omitempty"`
	EngineBytes  int `json:"engine_bytes,omitempty"`
}

// Merged returns m with the non-deterministic fields of prior carried
// over where m itself has none — serving layers stamp their own
// duration/cache provenance without erasing the throughput a scenario
// measured.
func (m RunMeta) Merged(prior *RunMeta) *RunMeta {
	if prior != nil {
		if m.EpochsPerSec == 0 {
			m.EpochsPerSec = prior.EpochsPerSec
		}
		if m.Sim == nil {
			m.Sim = prior.Sim
		}
		if m.Warm == nil {
			m.Warm = prior.Warm
		}
		if m.Checkpoint == nil {
			m.Checkpoint = prior.Checkpoint
		}
	}
	return &m
}

// WithoutMeta returns a copy of r with execution metadata stripped, for
// comparing the deterministic payload of two runs.
func (r Result) WithoutMeta() Result {
	r.Meta = nil
	return r
}

// StripMeta returns a copy of the slice with every result's execution
// metadata stripped.
func StripMeta(results []Result) []Result {
	out := make([]Result, len(results))
	for i, r := range results {
		out[i] = r.WithoutMeta()
	}
	return out
}

// Metric returns the named metric value and whether it is present.
func (r Result) Metric(name string) (float64, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// String renders the result as one report line.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %s", r.Scenario, r.Params)
	if r.Outcome != "" {
		fmt.Fprintf(&b, " outcome=%q", r.Outcome)
	}
	for _, m := range r.Metrics {
		fmt.Fprintf(&b, " %s=%.6g", m.Name, m.Value)
	}
	if r.Err != "" {
		fmt.Fprintf(&b, " error=%q", r.Err)
	}
	return b.String()
}

// Scenario is one runnable analysis: an analytic solver, a paper-scale
// engine, or a protocol-simulator experiment.
type Scenario interface {
	// Name is the registry key (e.g. "5.2.1", "leaksim", "bounce-mc").
	Name() string
	// Description is a one-line human summary.
	Description() string
	// Defaults are the parameters of the canonical (paper) run.
	Defaults() Params
	// Run executes the scenario. Params arrive fully defaulted when the
	// call goes through a Registry.
	Run(p Params) (Result, error)
}

// ContextRunner is the optional context-aware extension of Scenario.
// Long-running scenarios implement it to observe cooperative cancellation
// inside their epoch loops; Registry.RunContext prefers it over Run when
// present.
type ContextRunner interface {
	RunContext(ctx context.Context, p Params) (Result, error)
}

// funcScenario adapts a plain function to the Scenario interface.
type funcScenario struct {
	name, desc string
	defaults   Params
	run        func(Params) (Result, error)
}

func (s funcScenario) Name() string                 { return s.name }
func (s funcScenario) Description() string          { return s.desc }
func (s funcScenario) Defaults() Params             { return s.defaults }
func (s funcScenario) Run(p Params) (Result, error) { return s.run(p) }

// NewScenario builds a Scenario from a function.
func NewScenario(name, desc string, defaults Params, run func(Params) (Result, error)) Scenario {
	return funcScenario{name: name, desc: desc, defaults: defaults, run: run}
}

// ctxFuncScenario adapts a context-aware function to Scenario and
// ContextRunner.
type ctxFuncScenario struct {
	name, desc string
	defaults   Params
	run        func(context.Context, Params) (Result, error)
}

func (s ctxFuncScenario) Name() string        { return s.name }
func (s ctxFuncScenario) Description() string { return s.desc }
func (s ctxFuncScenario) Defaults() Params    { return s.defaults }
func (s ctxFuncScenario) Run(p Params) (Result, error) {
	return s.run(context.Background(), p)
}
func (s ctxFuncScenario) RunContext(ctx context.Context, p Params) (Result, error) {
	return s.run(ctx, p)
}

// NewContextScenario builds a cancellable Scenario from a context-aware
// function.
func NewContextScenario(name, desc string, defaults Params, run func(context.Context, Params) (Result, error)) Scenario {
	return ctxFuncScenario{name: name, desc: desc, defaults: defaults, run: run}
}

// Registry is a named set of scenarios. The zero value is not usable;
// construct with NewRegistry.
type Registry struct {
	mu        sync.RWMutex
	scenarios map[string]Scenario
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{scenarios: make(map[string]Scenario)}
}

// Register adds a scenario; registering a duplicate name is an error.
func (r *Registry) Register(s Scenario) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.scenarios[s.Name()]; ok {
		return fmt.Errorf("engine: scenario %q already registered", s.Name())
	}
	r.scenarios[s.Name()] = s
	return nil
}

// MustRegister is Register, panicking on error (for init-time wiring).
func (r *Registry) MustRegister(s Scenario) {
	if err := r.Register(s); err != nil {
		panic(err)
	}
}

// Lookup returns the named scenario.
func (r *Registry) Lookup(name string) (Scenario, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.scenarios[name]
	return s, ok
}

// Names returns the registered names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.scenarios))
	for n := range r.scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run looks the scenario up, applies its defaults to p, executes it, and
// stamps the result with the scenario name and effective parameters.
func (r *Registry) Run(name string, p Params) (Result, error) {
	return r.RunContext(context.Background(), name, p)
}

// RunContext is Run with cooperative cancellation: a scenario implementing
// ContextRunner observes ctx inside its own loops, any other scenario is
// gated by a cancellation check before it starts.
func (r *Registry) RunContext(ctx context.Context, name string, p Params) (Result, error) {
	s, ok := r.Lookup(name)
	if !ok {
		return Result{}, fmt.Errorf("engine: unknown scenario %q (have: %s)",
			name, strings.Join(r.Names(), ", "))
	}
	p = p.WithDefaults(s.Defaults())
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	var res Result
	var err error
	if cr, ok := s.(ContextRunner); ok {
		res, err = cr.RunContext(ctx, p)
	} else {
		res, err = s.Run(p)
	}
	if err != nil {
		return Result{}, err
	}
	res.Scenario = s.Name()
	res.Params = p
	return res, nil
}

// Info is the serializable description of one registered scenario.
type Info struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Defaults    Params `json:"defaults"`
	// Cancellable reports whether the scenario observes context
	// cancellation inside its own loops (ContextRunner).
	Cancellable bool `json:"cancellable"`
}

// Infos describes every registered scenario, sorted by name.
func (r *Registry) Infos() []Info {
	names := r.Names()
	infos := make([]Info, 0, len(names))
	for _, n := range names {
		s, _ := r.Lookup(n)
		_, cancellable := s.(ContextRunner)
		infos = append(infos, Info{
			Name:        s.Name(),
			Description: s.Description(),
			Defaults:    s.Defaults(),
			Cancellable: cancellable,
		})
	}
	return infos
}

// Default is the package registry holding every built-in scenario.
var Default = NewRegistry()

// Run executes a scenario from the default registry.
func Run(name string, p Params) (Result, error) { return Default.Run(name, p) }

// RunContext executes a scenario from the default registry with
// cooperative cancellation.
func RunContext(ctx context.Context, name string, p Params) (Result, error) {
	return Default.RunContext(ctx, name, p)
}

// Lookup finds a scenario in the default registry.
func Lookup(name string) (Scenario, bool) { return Default.Lookup(name) }

// Names lists the default registry, sorted.
func Names() []string { return Default.Names() }

// Infos describes every scenario of the default registry, sorted by name.
func Infos() []Info { return Default.Infos() }
