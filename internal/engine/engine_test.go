package engine

import (
	"strings"
	"testing"
)

func TestRegistryRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	s := NewScenario("demo", "a demo", Params{P0: 0.5}, func(p Params) (Result, error) {
		return Result{Metrics: []Metric{{Name: "p0_echo", Value: p.P0}}}, nil
	})
	if err := r.Register(s); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(s); err == nil {
		t.Error("duplicate registration must error")
	}
	if _, ok := r.Lookup("demo"); !ok {
		t.Error("lookup failed")
	}
	if got := r.Names(); len(got) != 1 || got[0] != "demo" {
		t.Errorf("names = %v", got)
	}
}

func TestRegistryRunAppliesDefaults(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(NewScenario("demo", "a demo", Params{P0: 0.5, N: 100}, func(p Params) (Result, error) {
		return Result{Metrics: []Metric{
			{Name: "p0_echo", Value: p.P0},
			{Name: "n_echo", Value: float64(p.N)},
		}}, nil
	}))
	res, err := r.Run("demo", Params{N: 7})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Metric("p0_echo"); v != 0.5 {
		t.Errorf("default p0 not applied: %v", v)
	}
	if v, _ := res.Metric("n_echo"); v != 7 {
		t.Errorf("explicit n overridden: %v", v)
	}
	if res.Scenario != "demo" || res.Params.P0 != 0.5 || res.Params.N != 7 {
		t.Errorf("result not stamped: %+v", res)
	}
}

func TestRegistryRunUnknown(t *testing.T) {
	if _, err := NewRegistry().Run("nope", Params{}); err == nil {
		t.Error("unknown scenario must error")
	}
}

func TestDefaultRegistryHasAllBuiltins(t *testing.T) {
	for _, name := range []string{
		ScenarioPartition, ScenarioDoubleVote, ScenarioSemiActive,
		ScenarioDelay, ScenarioDelayCorner, ScenarioBounce,
		ScenarioLeakSim, ScenarioBounceMC, ScenarioFig7Search, ScenarioSimPartition,
		ScenarioAnalyticConflict, ScenarioAnalyticBounce, ScenarioAnalyticThreshold,
	} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("builtin scenario %q not registered", name)
		}
	}
}

func TestAnalyticScenarios(t *testing.T) {
	res, err := Run(ScenarioAnalyticConflict, Params{Mode: "slashing", Beta0: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 2: beta0=0.2 conflicts at ~3108.
	if v, ok := res.Metric("conflict_epoch"); !ok || v < 3100 || v > 3115 {
		t.Errorf("conflict_epoch = %v, want ~3108", v)
	}

	res, err = Run(ScenarioAnalyticThreshold, Params{P0: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 7's symmetric corner: 0.2421.
	if v, _ := res.Metric("threshold_both_branches"); v < 0.24 || v > 0.245 {
		t.Errorf("threshold = %v, want ~0.2421", v)
	}

	res, err = Run(ScenarioAnalyticBounce, Params{})
	if err != nil {
		t.Fatal(err)
	}
	// Equation 24 at beta0=1/3, epoch 4000 sits at 0.5.
	if v, _ := res.Metric("eq24_probability"); v < 0.49 || v > 0.51 {
		t.Errorf("eq24 probability = %v, want ~0.5", v)
	}
	// The Equation 14 window at beta0=1/3 is (0.5, 1).
	if lo, _ := res.Metric("window_lo"); lo < 0.499 || lo > 0.501 {
		t.Errorf("window_lo = %v, want 0.5", lo)
	}
	res, err = Run(ScenarioAnalyticBounce, Params{P0: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Metric("in_window"); v != 1 {
		t.Error("p0=0.6 must be inside the beta0=1/3 window")
	}
}

func TestLeakSimScenarioMatchesPaper(t *testing.T) {
	res, err := Run(ScenarioLeakSim, Params{Mode: "double", Beta0: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 2: 3107 for beta0=0.2 with slashing.
	if v, _ := res.Metric("threshold_epoch_b"); v < 3100 || v > 3115 {
		t.Errorf("threshold_epoch_b = %v, want ~3107", v)
	}
}

func TestLeakSimScenarioCurve(t *testing.T) {
	res, err := Run(ScenarioLeakSim, Params{Mode: "absent-delay", N: 1000, Horizon: 2000, Sample: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.CurveName != "active_ratio_a" || len(res.Curve) != 4 {
		t.Fatalf("curve = %q x %d, want active_ratio_a x 4", res.CurveName, len(res.Curve))
	}
	if res.Curve[0].X != 500 || res.Curve[0].Y <= 0 || res.Curve[0].Y >= 1 {
		t.Errorf("first sample = %+v", res.Curve[0])
	}
}

func TestLeakSimScenarioBadMode(t *testing.T) {
	if _, err := Run(ScenarioLeakSim, Params{Mode: "warp"}); err == nil {
		t.Error("unknown mode must error")
	}
}

func TestSimPartitionScenario(t *testing.T) {
	res, err := Run(ScenarioSimPartition, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Metric("violation_detected"); v != 1 {
		t.Errorf("compressed-spec partition must reach a finality-safety violation: %v", res)
	}
	if res.Outcome == "" {
		t.Error("detected violation must set the outcome")
	}
}

func TestSimPartitionScenarioNoViolation(t *testing.T) {
	// Three epochs are not enough for a safety violation; the outcome
	// must stay empty rather than claim two finalized branches.
	res, err := Run(ScenarioSimPartition, Params{N: 8, Horizon: 3})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Metric("violation_detected"); v != 0 {
		t.Fatalf("unexpected violation: %v", res)
	}
	if res.Outcome != "" {
		t.Errorf("no violation but outcome = %q", res.Outcome)
	}
}

func TestResultString(t *testing.T) {
	r := Result{
		Scenario: "demo",
		Params:   Params{P0: 0.5, Beta0: 0.2, Seed: 3},
		Outcome:  "2 finalized branches",
		Metrics:  []Metric{{Name: "conflict_epoch", Value: 3108}},
	}
	s := r.String()
	for _, want := range []string{"demo", "p0=0.5", "beta0=0.2", "seed=3", "conflict_epoch=3108", "2 finalized branches"} {
		if !strings.Contains(s, want) {
			t.Errorf("Result.String() = %q missing %q", s, want)
		}
	}
}
