package engine

import (
	"reflect"
	"strings"
	"testing"
)

func TestCellKeyCanonicalization(t *testing.T) {
	a := CellKey("leaksim", Params{P0: 0.5, N: 10000})
	if b := CellKey("leaksim", Params{P0: 0.5, N: 10000}); a != b {
		t.Error("identical params must share a key")
	}
	if CellKey("leaksim", Params{P0: 0.6, N: 10000}) == a {
		t.Error("p0 must distinguish keys")
	}
	if CellKey("bounce-mc", Params{P0: 0.5, N: 10000}) == a {
		t.Error("scenario must distinguish keys")
	}
	// The Explicit mask is presence metadata, not a parameter: two
	// fully-defaulted records that spell their zeros differently compare
	// equal and must share a key.
	masked := Params{P0: 0.5, N: 10000, Explicit: FieldAll}
	if CellKey("leaksim", masked) != a {
		t.Error("the Explicit mask must not distinguish keys")
	}
}

// TestCellKeyCoversEveryParamsField fails the moment Params gains a
// parameter field the canonical key ignores: it perturbs each field via
// reflection and demands a different key. Every caching tier (server LRU,
// persistent store, client read-through) keys by this string, so an
// ignored field would serve one cell's result for every other cell of a
// sweep over that dimension. Fields tagged `json:"-"` are exempt: presence
// metadata, constant (FieldAll) across all fully-defaulted Params, so
// never run-distinguishing.
func TestCellKeyCoversEveryParamsField(t *testing.T) {
	base := CellKey("s", Params{})
	rt := reflect.TypeOf(Params{})
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if strings.HasPrefix(f.Tag.Get("json"), "-") {
			continue
		}
		var p Params
		fv := reflect.ValueOf(&p).Elem().Field(i)
		switch f.Type.Kind() {
		case reflect.Float64:
			fv.SetFloat(0.123)
		case reflect.Int, reflect.Int64:
			fv.SetInt(123)
		case reflect.String:
			fv.SetString("x")
		default:
			t.Fatalf("field %s has kind %s: teach this test (and check CellKey) about it", f.Name, f.Type.Kind())
		}
		if CellKey("s", p) == base {
			t.Errorf("cell key ignores Params.%s", f.Name)
		}
	}
}

func TestCanonicalCellKey(t *testing.T) {
	// Defaults are applied before keying: a sparse cell and its fully
	// spelled-out equivalent share the canonical key.
	sc, ok := Default.Lookup(ScenarioLeakSim)
	if !ok {
		t.Fatal("leaksim not registered")
	}
	sparse, ok := CanonicalCellKey(nil, Cell{Scenario: ScenarioLeakSim, Params: Params{Beta0: 0.2}})
	if !ok {
		t.Fatal("known scenario must resolve")
	}
	full, _ := CanonicalCellKey(Default, Cell{Scenario: ScenarioLeakSim,
		Params: Params{Beta0: 0.2}.WithDefaults(sc.Defaults())})
	if sparse != full {
		t.Errorf("sparse key %q != defaulted key %q", sparse, full)
	}
	if _, ok := CanonicalCellKey(Default, Cell{Scenario: "no-such"}); ok {
		t.Error("unknown scenario must not resolve a key")
	}
}
