package engine

import (
	"fmt"
	"io"

	"repro/internal/behavior"
	"repro/internal/codec"
	"repro/internal/sim"
	"repro/internal/types"
)

// prefixCodecVersion stamps the engine-level checkpoint blob (scenario
// identity, trace, prefix position) ahead of the snapshot's own versioned
// frame. Bump it whenever the trace layout changes; a skewed blob decodes
// as an error, which the checkpoint runner maps to a cold start.
const prefixCodecVersion = uint32(1)

// errPrefixCodec wraps every DecodePrefix failure.
var errPrefixCodec = fmt.Errorf("engine: prefix codec")

// EncodePrefix serializes a warm-start prefix — position, accumulated
// trace, and the full durable snapshot — as one self-describing blob, the
// payload of a durable mid-cell checkpoint. Implements
// CheckpointableScenario.
func (s *simForkScenario) EncodePrefix(dst io.Writer, pre *Prefix) error {
	w := codec.NewWriter(dst)
	w.U32(prefixCodecVersion)
	w.String(s.name)
	w.Bool(s.variant.PerValidatorViews)
	w.Bool(s.variant.OracleForkChoice)
	w.Int(pre.Epoch)
	w.Bool(pre.Done)
	switch s.name {
	case ScenarioSimDrops:
		// No per-epoch trace.
	case ScenarioSimGST:
		tr, ok := pre.Trace.(gstTrace)
		if !ok {
			return fmt.Errorf("%w: prefix trace %T", errPrefixCodec, pre.Trace)
		}
		w.F64(tr.violation)
	case ScenarioSimLeak:
		tr, ok := pre.Trace.(leakTrace)
		if !ok {
			return fmt.Errorf("%w: prefix trace %T", errPrefixCodec, pre.Trace)
		}
		encodeLeakTrace(w, tr)
	case ScenarioSimSemiActive:
		tr, ok := pre.Trace.(semiTrace)
		if !ok {
			return fmt.Errorf("%w: prefix trace %T", errPrefixCodec, pre.Trace)
		}
		encodeLeakTrace(w, tr.leakTrace)
		tr.adv.EncodeTo(w)
	default:
		return fmt.Errorf("%w: scenario %q not checkpointable", errPrefixCodec, s.name)
	}
	if err := w.Err(); err != nil {
		return err
	}
	_, err := pre.Snap.WriteTo(dst)
	return err
}

// DecodePrefix reconstructs a prefix serialized by EncodePrefix. The
// result is Owned — the decoded snapshot has exactly one consumer, so the
// resume path may adopt it zero-copy. Any damage, version skew, or a blob
// written for a different scenario/variant returns an error; the
// checkpoint runner treats every error as "no checkpoint" and runs cold.
// Implements CheckpointableScenario.
func (s *simForkScenario) DecodePrefix(src io.Reader) (*Prefix, error) {
	r := codec.NewReader(src)
	if v := r.U32(); v != prefixCodecVersion {
		return nil, fmt.Errorf("%w: version %d, want %d (err=%v)", errPrefixCodec, v, prefixCodecVersion, r.Err())
	}
	if name := r.String(); name != s.name {
		return nil, fmt.Errorf("%w: blob for scenario %q, want %q (err=%v)", errPrefixCodec, name, s.name, r.Err())
	}
	if pv, oc := r.Bool(), r.Bool(); pv != s.variant.PerValidatorViews || oc != s.variant.OracleForkChoice {
		return nil, fmt.Errorf("%w: blob for variant views=%t oracle=%t", errPrefixCodec, pv, oc)
	}
	pre := &Prefix{Owned: true}
	pre.Epoch = r.Int()
	pre.Done = r.Bool()
	switch s.name {
	case ScenarioSimDrops:
		// Trace stays nil.
	case ScenarioSimGST:
		var tr gstTrace
		tr.violation = r.F64()
		pre.Trace = tr
	case ScenarioSimLeak:
		tr, err := decodeLeakTrace(r)
		if err != nil {
			return nil, err
		}
		pre.Trace = tr
	case ScenarioSimSemiActive:
		tr, err := decodeLeakTrace(r)
		if err != nil {
			return nil, err
		}
		adv := behavior.DecodeSemiActive(r)
		if adv == nil || r.Err() != nil {
			return nil, fmt.Errorf("%w: adversary: %v", errPrefixCodec, r.Err())
		}
		pre.Trace = semiTrace{leakTrace: tr, adv: adv}
	default:
		return nil, fmt.Errorf("%w: scenario %q not checkpointable", errPrefixCodec, s.name)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", errPrefixCodec, err)
	}
	snap, err := sim.ReadSnapshot(src)
	if err != nil {
		return nil, err
	}
	pre.Snap = snap
	return pre, nil
}

func encodeLeakTrace(w *codec.Writer, tr leakTrace) {
	w.Len(len(tr.curve))
	for _, pt := range tr.curve {
		w.F64(pt.X)
		w.F64(pt.Y)
	}
	w.F64(tr.minStakeRatio)
	w.U64(uint64(tr.conflict))
}

func decodeLeakTrace(r *codec.Reader) (leakTrace, error) {
	var tr leakTrace
	n := r.Len()
	if err := r.Err(); err != nil {
		return tr, fmt.Errorf("%w: curve: %v", errPrefixCodec, err)
	}
	if n > 0 {
		tr.curve = make([]CurvePoint, n)
		for i := range tr.curve {
			tr.curve[i].X = r.F64()
			tr.curve[i].Y = r.F64()
		}
	}
	tr.minStakeRatio = r.F64()
	tr.conflict = types.Epoch(r.U64())
	return tr, r.Err()
}
