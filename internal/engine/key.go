package engine

import (
	"fmt"
	"reflect"
	"strings"
)

// CellKey canonicalizes a scenario name and its fully-defaulted params into
// the canonical result key every caching tier shares: the server's
// in-memory LRU, the persistent content-addressed store (internal/store),
// and the client-side read-through all key by exactly this string, so a
// result computed anywhere is a hit everywhere. Params must already be
// defaulted (Registry semantics): two requests that resolve to the same
// effective run map to the same key even when one spells the defaults out
// and the other omits them.
//
// The key is derived by reflection over Params rather than a handwritten
// format string, so a future Params field is part of the key the moment it
// exists — the handwritten predecessor silently omitted new fields, serving
// stale results for any sweep over the new dimension until someone
// remembered this file. Fields tagged `json:"-"` are skipped: they are
// presence metadata, not parameters — after defaulting every Params carries
// the same constant FieldAll mask, so the mask can never distinguish two
// effective runs. TestCellKeyCoversEveryParamsField fails if a parameter
// field ever stops influencing the key.
func CellKey(scenario string, p Params) string {
	var b strings.Builder
	b.WriteString(scenario)
	rv := reflect.ValueOf(p)
	rt := rv.Type()
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if strings.HasPrefix(f.Tag.Get("json"), "-") {
			continue
		}
		fmt.Fprintf(&b, "|%s=%v", f.Name, rv.Field(i).Interface())
	}
	return b.String()
}

// CanonicalCellKey resolves a cell's canonical result key against a
// registry, defaulting the params from the scenario. ok = false means the
// scenario is unknown, so its defaults cannot be applied and no canonical
// key exists.
func CanonicalCellKey(reg *Registry, c Cell) (string, bool) {
	if reg == nil {
		reg = Default
	}
	sc, ok := reg.Lookup(c.Scenario)
	if !ok {
		return "", false
	}
	return CellKey(c.Scenario, c.Params.WithDefaults(sc.Defaults())), true
}
