package engine

import (
	"bytes"
	"context"
	"reflect"
	"testing"
)

// BenchmarkResumeVsCold measures the durable checkpoint's payoff on the
// long-horizon workload: "cold" computes a sim/leak cell 4,050 epochs
// deep from scratch; "resume" serves the same cell from a depth-4000
// checkpoint — decode, adopt, and simulate only the 50-epoch remainder.
// CI gates resume >= 5x cold cells/sec, and the resumed payload is
// asserted bit-identical to the cold one — the speedup is only
// admissible because the bytes are the same. This is the crash-recovery
// economics of ROADMAP item 3: a worker killed at depth 4000 loses one
// checkpoint interval, not 4,000 epochs.
func BenchmarkResumeVsCold(b *testing.B) {
	ctx := context.Background()
	cell := Cell{Scenario: ScenarioSimLeak, Params: Params{P0: 0.5, N: 1000, Horizon: 4050, Seed: 1}}
	sc, ok := Default.Lookup(cell.Scenario)
	if !ok {
		b.Fatal("sim/leak not registered")
	}
	cs := sc.(CheckpointableScenario)
	p := cell.Params.WithDefaults(sc.Defaults())
	key, ok := CanonicalCellKey(Default, cell)
	if !ok {
		b.Fatal("no canonical key")
	}

	// The depth-4000 checkpoint a killed worker would have left behind,
	// built once outside all timers.
	pre, err := cs.RunTo(ctx, p, nil, 4000)
	if err != nil {
		b.Fatal(err)
	}
	var blob bytes.Buffer
	if err := cs.EncodePrefix(&blob, pre); err != nil {
		b.Fatal(err)
	}

	var cold Result
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := Default.RunContext(ctx, cell.Scenario, cell.Params)
			if err != nil {
				b.Fatal(err)
			}
			cold = r
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N)/secs, "cells/sec")
		}
	})

	var resumed Result
	b.Run("resume", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			// Completion deletes the checkpoint; re-plant it so every
			// iteration resumes from depth 4000. Periodic saves are
			// disabled (Every < 0) — the measured path is probe, decode,
			// adopt, and the 50-epoch remainder.
			ms := newMemStore()
			ms.data[key] = append([]byte(nil), blob.Bytes()...)
			b.StartTimer()
			r, handled, err := runCellCheckpointed(ctx, Default, cell, &CheckpointOptions{Every: -1, Store: ms})
			if err != nil || !handled {
				b.Fatalf("checkpointed run: handled=%t err=%v", handled, err)
			}
			resumed = r
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N)/secs, "cells/sec")
		}
	})

	if cold.Scenario != "" && resumed.Scenario != "" {
		if !reflect.DeepEqual(resumed.WithoutMeta(), cold.WithoutMeta()) {
			b.Fatalf("resumed payload diverges from cold:\n  resumed: %+v\n  cold:    %+v", resumed.WithoutMeta(), cold.WithoutMeta())
		}
		if ck := resumed.Meta.Checkpoint; ck == nil || !ck.Resumed || ck.EpochsSaved != 4000 {
			b.Fatalf("resume meta %+v, want 4000 epochs saved", resumed.Meta.Checkpoint)
		}
	}
}
