package engine

import (
	"testing"
)

// TestRunMetaMergedCarriesWarm pins the satellite contract of PR 7: the
// serving layers stamp their own duration/cache provenance via Merged, and
// that must carry — not clobber — the warm-start provenance a sweep cell
// arrived with.
func TestRunMetaMergedCarriesWarm(t *testing.T) {
	warm := &WarmMeta{Hit: true, BranchEpoch: 8, EpochsSaved: 8}
	m := RunMeta{DurationMS: 5, Cached: true}.Merged(&RunMeta{EpochsPerSec: 2, Warm: warm})
	if m.Warm != warm {
		t.Fatalf("Merged dropped warm provenance: %+v", m.Warm)
	}
	if m.DurationMS != 5 || !m.Cached || m.EpochsPerSec != 2 {
		t.Fatalf("Merged lost serving-layer fields: %+v", m)
	}

	// A layer that sets its own Warm keeps it.
	own := &WarmMeta{Hit: false}
	m = RunMeta{Warm: own}.Merged(&RunMeta{Warm: warm})
	if m.Warm != own {
		t.Fatalf("Merged overwrote the layer's own warm meta")
	}
}

// TestDeriveSeedContract pins the seed derivation warm-start depends on:
// DeriveSeed deliberately excludes the post-branch dimensions (rate, gst),
// so grid cells differing only there share the pre-branch RNG stream and
// can fan out from one snapshot. A future field added to the derivation
// would silently break snapshot reuse — this test is the tripwire.
func TestDeriveSeedContract(t *testing.T) {
	g := Grid{
		Scenario: "sim/gst",
		P0:       []float64{0.4, 0.6},
		Seeds:    []int64{7},
		Horizons: []int{10, 12},
		Rates:    []float64{0, 0.1},
		GSTs:     []int{2, 4},
		N:        100,
	}
	cells := g.Cells()
	type preKey struct {
		p0      float64
		horizon int
	}
	seeds := make(map[preKey]int64)
	for _, c := range cells {
		k := preKey{c.Params.P0, c.Params.Horizon}
		if s, ok := seeds[k]; ok {
			// Same pre-branch coordinates, differing only in rate/gst:
			// the seed must be shared.
			if c.Params.Seed != s {
				t.Fatalf("cells at %+v differ in seed across rate/gst: %d vs %d", k, s, c.Params.Seed)
			}
		} else {
			seeds[k] = c.Params.Seed
		}
	}
	// Distinct pre-branch coordinates must not collide (independence).
	byCoord := make(map[int64]preKey)
	for k, s := range seeds {
		if prev, ok := byCoord[s]; ok {
			t.Fatalf("seed %d collides across coordinates %+v and %+v", s, prev, k)
		}
		byCoord[s] = k
	}
	// And the derivation itself: rate and gst are not inputs at all.
	if DeriveSeed(1, 0.5, 0.2, "m", 10) != DeriveSeed(1, 0.5, 0.2, "m", 10) {
		t.Fatal("DeriveSeed is not deterministic")
	}
	if DeriveSeed(1, 0.5, 0.2, "m", 10) == DeriveSeed(1, 0.5, 0.2, "m", 11) {
		t.Fatal("horizon should change the derived seed")
	}
}

// TestForkableScenarioRegistration: the four sim scenarios in the default
// registry implement ForkableScenario; sim/bounce deliberately does not.
func TestForkableScenarioRegistration(t *testing.T) {
	for _, name := range []string{ScenarioSimDrops, ScenarioSimGST, ScenarioSimLeak, ScenarioSimSemiActive} {
		s, ok := Default.Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if _, ok := s.(ForkableScenario); !ok {
			t.Errorf("%s does not implement ForkableScenario", name)
		}
	}
	s, _ := Default.Lookup(ScenarioSimBounce)
	if _, ok := s.(ForkableScenario); ok {
		t.Errorf("sim/bounce must not be forkable: the Bouncer carries unrewindable state")
	}
}

// TestForkKeys: prefix keys exclude exactly the post-branch dimensions.
func TestForkKeys(t *testing.T) {
	s, _ := Default.Lookup(ScenarioSimGST)
	fs := s.(ForkableScenario)
	base := Params{P0: 0.5, N: 100, Horizon: 16, Seed: 3, GST: 4}
	key1, branch1, ok := fs.Fork(base)
	if !ok || branch1 != 4 {
		t.Fatalf("Fork(%v) = %q, %d, %t", base, key1, branch1, ok)
	}
	// Different gst/horizon: same key, different branch.
	other := base
	other.GST, other.Horizon = 7, 20
	key2, branch2, ok := fs.Fork(other)
	if !ok || key2 != key1 {
		t.Errorf("gst/horizon leaked into the gst prefix key: %q vs %q", key2, key1)
	}
	if branch2 != 7 {
		t.Errorf("branch = %d, want 7", branch2)
	}
	// Different seed: different key.
	reseeded := base
	reseeded.Seed = 4
	key3, _, _ := fs.Fork(reseeded)
	if key3 == key1 {
		t.Errorf("seed missing from the prefix key")
	}
	// gst=0 (no partition) has no prefix to share.
	flat := base
	flat.GST = 0
	if _, _, ok := fs.Fork(flat); ok {
		t.Errorf("gst=0 should not be forkable")
	}
}
