package engine

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/analytic"
	"repro/internal/behavior"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/types"
)

// Registry names of the view-cohort protocol-simulator scenarios. They run
// the FULL protocol (block tree, LMD-GHOST, Casper FFG, attestation pool,
// slashing, inactivity leak) at paper-scale validator counts, which the
// cohort kernel makes affordable; registering here is all the plumbing
// they need — the HTTP server lists them, the client sweeps them, and the
// CLIs run them with no further wiring.
const (
	// ScenarioSimBounce is the node-level probabilistic bouncing attack
	// (paper Section 5.3) at paper scale: a pre-GST fork, then per-epoch
	// duty-view placement with stay-probability p0.
	ScenarioSimBounce = "sim/bounce"
	// ScenarioSimDrops is the message-loss robustness sweep: a
	// synchronous multi-partition population under link outages of the
	// given rate.
	ScenarioSimDrops = "sim/drops"
	// ScenarioSimGST is the partition-heal sweep: a 50/50 partition that
	// heals at the gst epoch, probing how late healing can come before
	// the leak finalizes conflicting branches.
	ScenarioSimGST = "sim/gst"
	// ScenarioSimLeak is the paper's Table 1 Scenario 5.1 at FULL
	// protocol and FULL spec: a lasting p0 partition of n validators,
	// run under the real inactivity-penalty quotient (2^26) until the
	// two branches finalize conflicting checkpoints — thousands of
	// epochs, the long-horizon run the columnar epoch transition exists
	// for. Reports the measured conflict epoch against the continuous
	// analytic anchor (Equation 6: 4662 at p0 = 0.5).
	ScenarioSimLeak = "sim/leak"
	// ScenarioSimSemiActive is Table 3 at full protocol: semi-active
	// Byzantine validators alternate branches each epoch (never
	// slashable), accelerating both branches' quorum recovery, and
	// finalize both branches as soon as alternation justifies on each —
	// the AutoFinalize gait.
	ScenarioSimSemiActive = "sim/semiactive"
)

func init() {
	Default.MustRegister(NewContextScenario(ScenarioSimBounce,
		"Full-protocol probabilistic bouncing attack at paper scale (p0 = stay probability, gst = setup epochs)",
		Params{P0: 0.7, Beta0: 0.25, N: 10000, Horizon: 24, Seed: 19, GST: 3},
		runSimBounce))
	// The other four sim scenarios register as ForkableScenarios (default
	// variant: cohort views, proto-array fork choice), so warm-started
	// sweeps can fan their cells out from shared prefixes.
	for _, name := range []string{ScenarioSimDrops, ScenarioSimGST, ScenarioSimLeak, ScenarioSimSemiActive} {
		s, _ := NewSimScenarioVariant(name, SimVariant{})
		Default.MustRegister(s)
	}
}

// simMeta stamps a simulation result with its sustained throughput —
// simulated epochs per wall-clock second — so sweep and server consumers
// see a cell's cost without running benchmarks. Serving layers merge
// their own duration/cache fields on top (RunMeta.Merged) rather than
// overwriting this. On a warm-started cell the epoch count spans the whole
// run (restored prefix included) while the elapsed time covers only the
// resumed tail, so the figure reads as effective throughput including the
// epochs the snapshot saved.
func simMeta(s *sim.Simulation, elapsed time.Duration) *RunMeta {
	st := s.Stats()
	meta := &RunMeta{
		Sim: &SimStats{
			TreeNodes:    st.Tree.Nodes,
			TreeSegments: st.Tree.Segments,
			TreeFolded:   st.Tree.Folded,
			TreeBytes:    st.Tree.Bytes,
			OracleNodes:  st.Oracle.Nodes,
			EngineBytes:  st.Engine.Bytes,
		},
	}
	epochs := float64(uint64(s.Slot()) / s.Cfg.Spec.SlotsPerEpoch)
	if secs := elapsed.Seconds(); secs > 0 && epochs > 0 {
		meta.EpochsPerSec = epochs / secs
	}
	return meta
}

// runEpochsContext advances the simulation one epoch at a time, checking
// cancellation between epochs (a protocol epoch is orders of magnitude
// heavier than an aggregate-engine epoch).
func runEpochsContext(ctx context.Context, s *sim.Simulation, epochs int, onEpoch func(epoch int) bool) error {
	return runEpochsRangeContext(ctx, s, 0, epochs, onEpoch)
}

// runEpochsRangeContext advances the simulation from epoch `from`
// (exclusive — the epochs already simulated, e.g. by a restored prefix) to
// epoch `to` (inclusive), numbering onEpoch calls with absolute epoch
// numbers so warm-started continuations observe exactly what a cold run
// would have.
func runEpochsRangeContext(ctx context.Context, s *sim.Simulation, from, to int, onEpoch func(epoch int) bool) error {
	for epoch := from + 1; epoch <= to; epoch++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := s.RunEpochs(1); err != nil {
			return err
		}
		if onEpoch != nil && !onEpoch(epoch) {
			return nil
		}
	}
	return nil
}

// runSimBounce stages the probabilistic bouncing attack on the cohort
// kernel: a setup partition forks the chain for p.GST epochs, then the
// Bouncer alternates branch justifications and places each honest
// validator's duty view per epoch (stay probability p0). The adversary
// stops 6 epochs before the horizon so the run also demonstrates liveness
// recovery. Not forkable: the Bouncer caches view pointers and carries its
// own RNG cursor, which a Snapshot/Restore pair does not rewind.
func runSimBounce(ctx context.Context, p Params) (Result, error) {
	if p.GST <= 0 || p.Horizon <= p.GST {
		return Result{}, fmt.Errorf("engine: sim/bounce wants 0 < gst < horizon, got gst=%d horizon=%d", p.GST, p.Horizon)
	}
	nByz := int(math.Round(float64(p.N) * p.Beta0))
	nHonest := p.N - nByz
	if nHonest < 4 || nByz < 1 {
		return Result{}, fmt.Errorf("engine: sim/bounce needs >= 4 honest and >= 1 byzantine validators, got %d/%d", nHonest, nByz)
	}
	byz := make([]types.ValidatorIndex, nByz)
	for i := range byz {
		byz[i] = types.ValidatorIndex(nHonest + i)
	}
	half := nHonest / 2
	stop := types.Epoch(0)
	if p.Horizon > 10 {
		stop = types.Epoch(p.Horizon - 6)
	}
	adv := behavior.NewBouncer(p.P0, p.Seed, [2]types.ValidatorIndex{0, types.ValidatorIndex(half)})
	adv.Stop = stop

	spec := types.CompressedSpec(1 << 16)
	s, err := sim.New(sim.Config{
		Validators: p.N,
		Spec:       spec,
		Byzantine:  byz,
		GST:        types.Slot(uint64(p.GST) * spec.SlotsPerEpoch),
		Delay:      1,
		Seed:       p.Seed,
		PartitionOf: func(v types.ValidatorIndex) int {
			if int(v) < half {
				return 0
			}
			return 1
		},
		Adversary: adv,
	})
	if err != nil {
		return Result{}, err
	}

	initialStake := types.Gwei(uint64(p.N)) * spec.MaxEffectiveBalance
	finalizedAtStop := types.Epoch(0)
	minStakeRatio := 1.0
	start := time.Now() //gasper:nondet wall-clock duration metadata only; never part of result identity
	err = runEpochsContext(ctx, s, p.Horizon, func(epoch int) bool {
		m := s.MetricsAt(types.Epoch(epoch))
		if r := float64(m.MinTotalStake) / float64(initialStake); r < minStakeRatio {
			minStakeRatio = r
		}
		if stop != 0 && types.Epoch(epoch) == stop {
			finalizedAtStop = m.MaxFinalized
		}
		return true
	})
	if err != nil {
		return Result{}, err
	}

	finalizedFinal := s.MetricsAt(types.Epoch(p.Horizon)).MaxFinalized
	recovered := stop != 0 && finalizedFinal >= stop
	out := Result{
		Metrics: []Metric{
			{Name: "releases", Value: float64(adv.Releases)},
			{Name: "bounces", Value: float64(adv.Bounces)},
			{Name: "finalized_at_stop", Value: float64(finalizedAtStop)},
			{Name: "finalized_final", Value: float64(finalizedFinal)},
			{Name: "recovered", Value: boolMetric(recovered)},
			{Name: "min_stake_ratio", Value: minStakeRatio},
		},
	}
	if stop != 0 && finalizedAtStop <= types.Epoch(p.GST) {
		out.Outcome = fmt.Sprintf("finality stalled for %d epochs", int64(stop)-int64(p.GST))
	}
	out.Meta = simMeta(s, time.Since(start)) //gasper:nondet wall-clock duration metadata only; never part of result identity
	return out, nil
}

// validateSimDrops rejects parameters the drops scenario cannot run.
func validateSimDrops(p Params) error {
	if p.Horizon < 4 {
		return fmt.Errorf("engine: sim/drops wants horizon >= 4 (finality needs a runway), got %d", p.Horizon)
	}
	if p.Rate < 0 || p.Rate >= 1 {
		return fmt.Errorf("engine: sim/drops wants 0 <= rate < 1, got %v", p.Rate)
	}
	return nil
}

// simDropsConfig describes the drops population: synchronous (GST zero),
// spread over eight partitions whose cross-partition links suffer outages
// at p.Rate.
func simDropsConfig(p Params, variant SimVariant) sim.Config {
	parts := 8
	if p.N < parts {
		parts = p.N
	}
	return sim.Config{
		Validators:        p.N,
		Spec:              types.DefaultSpec(),
		Delay:             1,
		Seed:              p.Seed,
		DropRate:          p.Rate,
		PerValidatorViews: variant.PerValidatorViews,
		OracleForkChoice:  variant.OracleForkChoice,
		PartitionOf:       func(v types.ValidatorIndex) int { return int(v) % parts },
	}
}

func newSimDrops(p Params, variant SimVariant) (*sim.Simulation, error) {
	return sim.New(simDropsConfig(p, variant))
}

// finishSimDrops reports how far finality lags the healthy two-epoch
// trail, from the end-of-horizon state.
func finishSimDrops(s *sim.Simulation, p Params, elapsed time.Duration) Result {
	final := s.MetricsAt(types.Epoch(p.Horizon))
	minFin, maxFin := final.MinFinalized, final.MaxFinalized
	// On a lossless run the last processed boundary (start of epoch h-1)
	// has finalized epoch h-3; anything lower is loss-induced lag.
	lag := 0.0
	if healthy := types.Epoch(p.Horizon - 3); minFin < healthy {
		lag = float64(healthy - minFin)
	}
	sent, delayed := s.Net.Stats()
	out := Result{
		Metrics: []Metric{
			{Name: "min_finalized", Value: float64(minFin)},
			{Name: "max_finalized", Value: float64(maxFin)},
			{Name: "finality_lag", Value: lag},
			{Name: "msgs_sent", Value: float64(sent)},
			{Name: "msgs_delayed", Value: float64(delayed)},
		},
	}
	if lag == 0 {
		out.Outcome = "finality unharmed"
	}
	out.Meta = simMeta(s, elapsed)
	return out
}

// runSimDrops runs a synchronous population spread over eight partitions
// whose cross-partition links suffer outages at p.Rate, and reports how far
// finality lags the healthy two-epoch trail.
func runSimDrops(ctx context.Context, p Params, variant SimVariant) (Result, error) {
	if err := validateSimDrops(p); err != nil {
		return Result{}, err
	}
	s, err := newSimDrops(p, variant)
	if err != nil {
		return Result{}, err
	}
	start := time.Now() //gasper:nondet wall-clock duration metadata only; never part of result identity
	if err := runEpochsContext(ctx, s, p.Horizon, nil); err != nil {
		return Result{}, err
	}
	return finishSimDrops(s, p, time.Since(start)), nil //gasper:nondet wall-clock duration metadata only; never part of result identity
}

// simGSTConfig describes the p0-weighted two-way partition population at
// the given heal slot: the real gst for a straight-through run, or
// network.FarFuture for a shareable prefix (held traffic retained, to be
// retargeted onto each cell's own heal slot at Restore).
func simGSTConfig(p Params, variant SimVariant, gst types.Slot) sim.Config {
	nA := int(math.Round(float64(p.N) * p.P0))
	return sim.Config{
		Validators:        p.N,
		Spec:              types.CompressedSpec(1 << 16),
		GST:               gst,
		Delay:             1,
		Seed:              p.Seed,
		PerValidatorViews: variant.PerValidatorViews,
		OracleForkChoice:  variant.OracleForkChoice,
		PartitionOf: func(v types.ValidatorIndex) int {
			if int(v) < nA {
				return 0
			}
			return 1
		},
	}
}

func newSimGST(p Params, variant SimVariant, gst types.Slot) (*sim.Simulation, error) {
	return sim.New(simGSTConfig(p, variant, gst))
}

// simGSTSlot converts the gst epoch parameter to its heal slot.
func simGSTSlot(p Params) types.Slot {
	return types.Slot(uint64(p.GST) * types.CompressedSpec(1<<16).SlotsPerEpoch)
}

// gstObserver watches for the first conflicting finalization; the run
// stops at the violation epoch.
func gstObserver(s *sim.Simulation, violation *float64) func(epoch int) bool {
	return func(epoch int) bool {
		if *violation == 0 {
			if v := s.CheckFinalitySafety(); v != nil {
				*violation = float64(epoch)
			}
		}
		return *violation == 0
	}
}

// finishSimGST reports whether safety survived and how finality recovered.
func finishSimGST(s *sim.Simulation, p Params, violation float64, elapsed time.Duration) Result {
	minFin := s.MetricsAt(types.Epoch(p.Horizon)).MinFinalized
	recovered := violation == 0 && minFin >= types.Epoch(p.GST)
	out := Result{
		Metrics: []Metric{
			{Name: "violation_epoch", Value: violation},
			{Name: "violation_detected", Value: boolMetric(violation != 0)},
			{Name: "min_finalized_final", Value: float64(minFin)},
			{Name: "recovered", Value: boolMetric(recovered)},
		},
	}
	switch {
	case violation != 0:
		out.Outcome = "2 finalized branches"
	case recovered:
		out.Outcome = "healed, finality recovered"
	}
	out.Meta = simMeta(s, elapsed)
	return out
}

// runSimGST heals a p0-weighted two-way partition at the p.GST epoch and
// reports whether safety survived and how finality recovered — the
// mechanism-level boundary between the paper's Scenario 5.1 (never heals,
// conflicting finalization) and a harmless outage.
func runSimGST(ctx context.Context, p Params, variant SimVariant) (Result, error) {
	if p.GST < 0 {
		return Result{}, fmt.Errorf("engine: sim/gst wants gst >= 0, got %d", p.GST)
	}
	s, err := newSimGST(p, variant, simGSTSlot(p))
	if err != nil {
		return Result{}, err
	}
	violation := 0.0
	start := time.Now() //gasper:nondet wall-clock duration metadata only; never part of result identity
	if err := runEpochsContext(ctx, s, p.Horizon, gstObserver(s, &violation)); err != nil {
		return Result{}, err
	}
	return finishSimGST(s, p, violation, time.Since(start)), nil //gasper:nondet wall-clock duration metadata only; never part of result identity
}

// leakPartitionConfig describes the lasting-partition full-protocol simulation
// shared by sim/leak and sim/semiactive: honest validators split p0/(1-p0)
// across a partition that NEVER heals (network.Never, so undeliverable
// cross-partition traffic is discarded instead of accumulating for
// thousands of epochs), under the FULL paper spec — the runs reproduce
// Table 1 / Table 3 headline epochs, so no compressed quotient.
func leakPartitionConfig(p Params, byz []types.ValidatorIndex, variant SimVariant) sim.Config {
	nHonest := p.N - len(byz)
	nA := int(math.Round(float64(nHonest) * p.P0))
	return sim.Config{
		Validators:        p.N,
		Spec:              types.DefaultSpec(),
		Byzantine:         byz,
		GST:               network.Never,
		Delay:             1,
		Seed:              p.Seed,
		PerValidatorViews: variant.PerValidatorViews,
		OracleForkChoice:  variant.OracleForkChoice,
		PartitionOf: func(v types.ValidatorIndex) int {
			if int(v) < nA {
				return 0
			}
			return 1
		},
	}
}

func leakPartitionSim(p Params, byz []types.ValidatorIndex, variant SimVariant) (*sim.Simulation, error) {
	return sim.New(leakPartitionConfig(p, byz, variant))
}

// leakTrace accumulates the per-epoch observations of the long-horizon
// conflicting-finalization runs: the sampled stake curve, the stake floor,
// and the conflict epoch (0 = none yet). It doubles as the warm-start
// prefix trace of sim/leak, so clone before appending from a shared
// prefix.
type leakTrace struct {
	curve         []CurvePoint
	minStakeRatio float64
	conflict      types.Epoch
}

// clone deep-copies the curve so two continuations of one prefix never
// share a backing array.
func (t leakTrace) clone() leakTrace {
	t.curve = append([]CurvePoint(nil), t.curve...)
	return t
}

// leakObserver samples the stake curve and stops the run at the first
// conflicting finalization, accumulating into tr.
func leakObserver(s *sim.Simulation, p Params, tr *leakTrace) func(epoch int) bool {
	initialStake := types.Gwei(uint64(p.N)) * s.Cfg.Spec.MaxEffectiveBalance
	return func(epoch int) bool {
		m := s.MetricsAt(types.Epoch(epoch))
		if r := float64(m.MinTotalStake) / float64(initialStake); r < tr.minStakeRatio {
			tr.minStakeRatio = r
		}
		if p.Sample > 0 && epoch%p.Sample == 0 {
			tr.curve = append(tr.curve, CurvePoint{
				X: float64(epoch),
				Y: float64(m.MinTotalStake) / float64(initialStake),
			})
		}
		if v := s.CheckFinalitySafety(); v != nil {
			tr.conflict = types.Epoch(epoch)
			return false
		}
		return true
	}
}

// validateSimLeak rejects parameters the leak scenario cannot run.
func validateSimLeak(p Params) error {
	if p.P0 <= 0 || p.P0 >= 1 {
		return fmt.Errorf("engine: sim/leak wants 0 < p0 < 1 (two non-empty branches), got %v", p.P0)
	}
	if p.N < 4 || p.Horizon < 8 {
		return fmt.Errorf("engine: sim/leak wants n >= 4 and horizon >= 8, got n=%d horizon=%d", p.N, p.Horizon)
	}
	// Rounding must leave both branches populated, or the single-view run
	// would burn the whole horizon unable to conflict by construction.
	if nA := int(math.Round(float64(p.N) * p.P0)); nA < 2 || p.N-nA < 2 {
		return fmt.Errorf("engine: sim/leak wants >= 2 validators per branch, got %d/%d (p0=%v n=%d)", nA, p.N-nA, p.P0, p.N)
	}
	return nil
}

// finishSimLeak assembles the Table 1 result against the continuous
// analytic anchor.
func finishSimLeak(p Params, s *sim.Simulation, tr leakTrace, elapsed time.Duration) (Result, error) {
	bc, err := analytic.ContinuousParams().ConflictingFinalization(analytic.HonestOnly, p.P0, 0)
	if err != nil {
		return Result{}, err
	}
	res := conflictResult(p, tr.conflict, "analytic_epoch", bc.ConflictEpoch, nil, tr.minStakeRatio, tr.curve)
	res.Meta = simMeta(s, elapsed)
	return res, nil
}

// runSimLeak is the paper's headline experiment — Table 1 Scenario 5.1 —
// at full protocol: the 50/50 (p0) lasting partition leaks for thousands
// of epochs under the real 2^26 penalty quotient until each branch's
// inactive half has drained enough for the branch to regain a
// supermajority, justify two consecutive epochs, and finalize — on both
// sides of the partition at once. The measured conflict epoch is reported
// against the continuous-model analytic anchor (Equation 6; 4662 at
// p0=0.5) and the aggregate integer engine's epoch (Table 1's own 4686 is
// the paper-parameter variant of the same quantity).
func runSimLeak(ctx context.Context, p Params, variant SimVariant) (Result, error) {
	if err := validateSimLeak(p); err != nil {
		return Result{}, err
	}
	s, err := leakPartitionSim(p, nil, variant)
	if err != nil {
		return Result{}, err
	}
	tr := leakTrace{minStakeRatio: 1}
	start := time.Now() //gasper:nondet wall-clock duration metadata only; never part of result identity
	if err := runEpochsContext(ctx, s, p.Horizon, leakObserver(s, p, &tr)); err != nil {
		return Result{}, err
	}
	return finishSimLeak(p, s, tr, time.Since(start)) //gasper:nondet wall-clock duration metadata only; never part of result identity
}

// conflictResult assembles the shared result shape of the long-horizon
// conflicting-finalization scenarios: the measured conflict epoch, the
// anchor it is compared against (under anchorName), the relative
// deviation, any scenario-specific extra metrics, the stake floor, and
// the optional sampled curve.
func conflictResult(p Params, conflict types.Epoch, anchorName string, anchor float64, extra []Metric, minStakeRatio float64, curve []CurvePoint) Result {
	deviation := 0.0
	if conflict != 0 && anchor > 0 {
		deviation = (float64(conflict) - anchor) / anchor
	}
	out := Result{
		Metrics: append([]Metric{
			{Name: "conflict_epoch", Value: float64(conflict)},
			{Name: anchorName, Value: anchor},
			{Name: "deviation", Value: deviation},
		}, append(extra, Metric{Name: "min_stake_ratio", Value: minStakeRatio})...),
	}
	if conflict != 0 {
		out.Outcome = "2 finalized branches"
	} else {
		out.Outcome = fmt.Sprintf("no conflicting finalization within %d epochs", p.Horizon)
	}
	if p.Sample > 0 {
		out.CurveName = "min_total_stake_ratio"
		out.Curve = curve
	}
	return out
}

// validateSimSemiActive rejects parameters the semi-active scenario cannot
// run.
func validateSimSemiActive(p Params) error {
	if p.P0 <= 0 || p.P0 >= 1 {
		return fmt.Errorf("engine: sim/semiactive wants 0 < p0 < 1, got %v", p.P0)
	}
	nByz := int(math.Round(float64(p.N) * p.Beta0))
	nHonest := p.N - nByz
	if nHonest < 4 || nByz < 1 {
		return fmt.Errorf("engine: sim/semiactive needs >= 4 honest and >= 1 byzantine validators, got %d/%d", nHonest, nByz)
	}
	nA := int(math.Round(float64(nHonest) * p.P0))
	if nA < 2 || nHonest-nA < 2 {
		return fmt.Errorf("engine: sim/semiactive wants >= 2 honest validators per branch, got %d/%d", nA, nHonest-nA)
	}
	return nil
}

// semiActiveSetup derives the Byzantine cohort and a fresh semi-active
// adversary from validated params.
func semiActiveSetup(p Params) ([]types.ValidatorIndex, *behavior.SemiActive) {
	nByz := int(math.Round(float64(p.N) * p.Beta0))
	nHonest := p.N - nByz
	byz := make([]types.ValidatorIndex, nByz)
	for i := range byz {
		byz[i] = types.ValidatorIndex(nHonest + i)
	}
	nA := int(math.Round(float64(nHonest) * p.P0))
	adv := &behavior.SemiActive{
		Reps:         [2]types.ValidatorIndex{0, types.ValidatorIndex(nA)},
		AutoFinalize: true,
	}
	return byz, adv
}

// finishSimSemiActive assembles the Table 3 result against the aggregate
// two-branch engine (Tables 2-3) on identical parameters: the
// mechanism-level anchor the full protocol should land next to.
func finishSimSemiActive(ctx context.Context, p Params, s *sim.Simulation, adv *behavior.SemiActive, tr leakTrace, elapsed time.Duration) (Result, error) {
	anchorRes, err := core.LeakSim{N: p.N, P0: p.P0, Beta0: p.Beta0, Mode: core.ByzSemiActive}.
		RunContext(ctx, p.Horizon, 0)
	if err != nil {
		return Result{}, err
	}
	res := conflictResult(p, tr.conflict, "aggregate_epoch", float64(anchorRes.ConflictEpoch),
		[]Metric{{Name: "gait_epoch", Value: float64(adv.GaitFrom())}}, tr.minStakeRatio, tr.curve)
	res.Meta = simMeta(s, elapsed)
	return res, nil
}

// runSimSemiActive is Table 3 at full protocol: beta0 of the stake is
// semi-active Byzantine — active on alternating branches every epoch,
// never equivocating within an epoch, hence never slashable — which keeps
// both branches' active ratios near the quorum from the start and makes
// the leak drain only the honest inactive half. The adversary watches
// both branch views (AutoFinalize) and, the moment alternation justifies
// recent checkpoints on both branches, stays two consecutive epochs per
// branch to finalize each: conflicting finalization at the Table 3 epoch.
// The aggregate integer engine's conflict epoch for the same parameters
// is reported as the mechanism anchor.
func runSimSemiActive(ctx context.Context, p Params, variant SimVariant) (Result, error) {
	if err := validateSimSemiActive(p); err != nil {
		return Result{}, err
	}
	byz, adv := semiActiveSetup(p)
	s, err := leakPartitionSim(p, byz, variant)
	if err != nil {
		return Result{}, err
	}
	s.Cfg.Adversary = adv
	tr := leakTrace{minStakeRatio: 1}
	start := time.Now() //gasper:nondet wall-clock duration metadata only; never part of result identity
	if err := runEpochsContext(ctx, s, p.Horizon, leakObserver(s, p, &tr)); err != nil {
		return Result{}, err
	}
	return finishSimSemiActive(ctx, p, s, adv, tr, time.Since(start)) //gasper:nondet wall-clock duration metadata only; never part of result identity
}
