package engine

import (
	"context"
	"fmt"
	"math"

	"repro/internal/behavior"
	"repro/internal/sim"
	"repro/internal/types"
)

// Registry names of the view-cohort protocol-simulator scenarios. They run
// the FULL protocol (block tree, LMD-GHOST, Casper FFG, attestation pool,
// slashing, inactivity leak) at paper-scale validator counts, which the
// cohort kernel makes affordable; registering here is all the plumbing
// they need — the HTTP server lists them, the client sweeps them, and the
// CLIs run them with no further wiring.
const (
	// ScenarioSimBounce is the node-level probabilistic bouncing attack
	// (paper Section 5.3) at paper scale: a pre-GST fork, then per-epoch
	// duty-view placement with stay-probability p0.
	ScenarioSimBounce = "sim/bounce"
	// ScenarioSimDrops is the message-loss robustness sweep: a
	// synchronous multi-partition population under link outages of the
	// given rate.
	ScenarioSimDrops = "sim/drops"
	// ScenarioSimGST is the partition-heal sweep: a 50/50 partition that
	// heals at the gst epoch, probing how late healing can come before
	// the leak finalizes conflicting branches.
	ScenarioSimGST = "sim/gst"
)

func init() {
	Default.MustRegister(NewContextScenario(ScenarioSimBounce,
		"Full-protocol probabilistic bouncing attack at paper scale (p0 = stay probability, gst = setup epochs)",
		Params{P0: 0.7, Beta0: 0.25, N: 10000, Horizon: 24, Seed: 19, GST: 3},
		runSimBounce))
	// sim/drops defaults rate to 0 on purpose: the engine's zero-value
	// convention folds an explicit 0 into the default, and rate=0 is the
	// lossless baseline every robustness sweep wants as its first cell.
	Default.MustRegister(NewContextScenario(ScenarioSimDrops,
		"Full-protocol link-outage robustness: synchronous 8-partition population under drop rate (rate=0 is the lossless baseline)",
		Params{P0: 0.5, N: 1000, Horizon: 10, Seed: 1},
		runSimDrops))
	// sim/gst defaults gst to 0 (heal immediately — the no-partition
	// baseline) for the same reason sim/drops defaults rate to 0: the
	// engine folds an explicit zero into the default, and a heal sweep
	// wants gst=0 as its first cell rather than a silent re-run of a
	// nonzero default.
	Default.MustRegister(NewContextScenario(ScenarioSimGST,
		"Full-protocol partition heal: 50/50 split healing at the gst epoch (gst=0 is the no-partition baseline)",
		Params{P0: 0.5, N: 1000, Horizon: 16, Seed: 3},
		runSimGST))
}

// runEpochsContext advances the simulation one epoch at a time, checking
// cancellation between epochs (a protocol epoch is orders of magnitude
// heavier than an aggregate-engine epoch).
func runEpochsContext(ctx context.Context, s *sim.Simulation, epochs int, onEpoch func(epoch int) bool) error {
	for epoch := 1; epoch <= epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := s.RunEpochs(1); err != nil {
			return err
		}
		if onEpoch != nil && !onEpoch(epoch) {
			return nil
		}
	}
	return nil
}

// runSimBounce stages the probabilistic bouncing attack on the cohort
// kernel: a setup partition forks the chain for p.GST epochs, then the
// Bouncer alternates branch justifications and places each honest
// validator's duty view per epoch (stay probability p0). The adversary
// stops 6 epochs before the horizon so the run also demonstrates liveness
// recovery.
func runSimBounce(ctx context.Context, p Params) (Result, error) {
	if p.GST <= 0 || p.Horizon <= p.GST {
		return Result{}, fmt.Errorf("engine: sim/bounce wants 0 < gst < horizon, got gst=%d horizon=%d", p.GST, p.Horizon)
	}
	nByz := int(math.Round(float64(p.N) * p.Beta0))
	nHonest := p.N - nByz
	if nHonest < 4 || nByz < 1 {
		return Result{}, fmt.Errorf("engine: sim/bounce needs >= 4 honest and >= 1 byzantine validators, got %d/%d", nHonest, nByz)
	}
	byz := make([]types.ValidatorIndex, nByz)
	for i := range byz {
		byz[i] = types.ValidatorIndex(nHonest + i)
	}
	half := nHonest / 2
	stop := types.Epoch(0)
	if p.Horizon > 10 {
		stop = types.Epoch(p.Horizon - 6)
	}
	adv := behavior.NewBouncer(p.P0, p.Seed, [2]types.ValidatorIndex{0, types.ValidatorIndex(half)})
	adv.Stop = stop

	spec := types.CompressedSpec(1 << 16)
	s, err := sim.New(sim.Config{
		Validators: p.N,
		Spec:       spec,
		Byzantine:  byz,
		GST:        types.Slot(uint64(p.GST) * spec.SlotsPerEpoch),
		Delay:      1,
		Seed:       p.Seed,
		PartitionOf: func(v types.ValidatorIndex) int {
			if int(v) < half {
				return 0
			}
			return 1
		},
		Adversary: adv,
	})
	if err != nil {
		return Result{}, err
	}

	initialStake := types.Gwei(uint64(p.N)) * spec.MaxEffectiveBalance
	finalizedAtStop := types.Epoch(0)
	minStakeRatio := 1.0
	err = runEpochsContext(ctx, s, p.Horizon, func(epoch int) bool {
		m := s.Snapshot(types.Epoch(epoch))
		if r := float64(m.MinTotalStake) / float64(initialStake); r < minStakeRatio {
			minStakeRatio = r
		}
		if stop != 0 && types.Epoch(epoch) == stop {
			finalizedAtStop = m.MaxFinalized
		}
		return true
	})
	if err != nil {
		return Result{}, err
	}

	finalizedFinal := s.Snapshot(types.Epoch(p.Horizon)).MaxFinalized
	recovered := stop != 0 && finalizedFinal >= stop
	out := Result{
		Metrics: []Metric{
			{Name: "releases", Value: float64(adv.Releases)},
			{Name: "bounces", Value: float64(adv.Bounces)},
			{Name: "finalized_at_stop", Value: float64(finalizedAtStop)},
			{Name: "finalized_final", Value: float64(finalizedFinal)},
			{Name: "recovered", Value: boolMetric(recovered)},
			{Name: "min_stake_ratio", Value: minStakeRatio},
		},
	}
	if stop != 0 && finalizedAtStop <= types.Epoch(p.GST) {
		out.Outcome = fmt.Sprintf("finality stalled for %d epochs", int64(stop)-int64(p.GST))
	}
	return out, nil
}

// runSimDrops runs a synchronous population spread over eight partitions
// whose cross-partition links suffer outages at p.Rate, and reports how far
// finality lags the healthy two-epoch trail.
func runSimDrops(ctx context.Context, p Params) (Result, error) {
	if p.Horizon < 4 {
		return Result{}, fmt.Errorf("engine: sim/drops wants horizon >= 4 (finality needs a runway), got %d", p.Horizon)
	}
	if p.Rate < 0 || p.Rate >= 1 {
		return Result{}, fmt.Errorf("engine: sim/drops wants 0 <= rate < 1, got %v", p.Rate)
	}
	parts := 8
	if p.N < parts {
		parts = p.N
	}
	s, err := sim.New(sim.Config{
		Validators:  p.N,
		Spec:        types.DefaultSpec(),
		Delay:       1,
		Seed:        p.Seed,
		DropRate:    p.Rate,
		PartitionOf: func(v types.ValidatorIndex) int { return int(v) % parts },
	})
	if err != nil {
		return Result{}, err
	}
	if err := runEpochsContext(ctx, s, p.Horizon, nil); err != nil {
		return Result{}, err
	}
	final := s.Snapshot(types.Epoch(p.Horizon))
	minFin, maxFin := final.MinFinalized, final.MaxFinalized
	// On a lossless run the last processed boundary (start of epoch h-1)
	// has finalized epoch h-3; anything lower is loss-induced lag.
	lag := 0.0
	if healthy := types.Epoch(p.Horizon - 3); minFin < healthy {
		lag = float64(healthy - minFin)
	}
	sent, delayed := s.Net.Stats()
	out := Result{
		Metrics: []Metric{
			{Name: "min_finalized", Value: float64(minFin)},
			{Name: "max_finalized", Value: float64(maxFin)},
			{Name: "finality_lag", Value: lag},
			{Name: "msgs_sent", Value: float64(sent)},
			{Name: "msgs_delayed", Value: float64(delayed)},
		},
	}
	if lag == 0 {
		out.Outcome = "finality unharmed"
	}
	return out, nil
}

// runSimGST heals a p0-weighted two-way partition at the p.GST epoch and
// reports whether safety survived and how finality recovered — the
// mechanism-level boundary between the paper's Scenario 5.1 (never heals,
// conflicting finalization) and a harmless outage.
func runSimGST(ctx context.Context, p Params) (Result, error) {
	if p.GST < 0 {
		return Result{}, fmt.Errorf("engine: sim/gst wants gst >= 0, got %d", p.GST)
	}
	nA := int(math.Round(float64(p.N) * p.P0))
	spec := types.CompressedSpec(1 << 16)
	s, err := sim.New(sim.Config{
		Validators: p.N,
		Spec:       spec,
		GST:        types.Slot(uint64(p.GST) * spec.SlotsPerEpoch),
		Delay:      1,
		Seed:       p.Seed,
		PartitionOf: func(v types.ValidatorIndex) int {
			if int(v) < nA {
				return 0
			}
			return 1
		},
	})
	if err != nil {
		return Result{}, err
	}
	violation := 0.0
	err = runEpochsContext(ctx, s, p.Horizon, func(epoch int) bool {
		if violation == 0 {
			if v := s.CheckFinalitySafety(); v != nil {
				violation = float64(epoch)
			}
		}
		return violation == 0
	})
	if err != nil {
		return Result{}, err
	}
	minFin := s.Snapshot(types.Epoch(p.Horizon)).MinFinalized
	recovered := violation == 0 && minFin >= types.Epoch(p.GST)
	out := Result{
		Metrics: []Metric{
			{Name: "violation_epoch", Value: violation},
			{Name: "violation_detected", Value: boolMetric(violation != 0)},
			{Name: "min_finalized_final", Value: float64(minFin)},
			{Name: "recovered", Value: boolMetric(recovered)},
		},
	}
	switch {
	case violation != 0:
		out.Outcome = "2 finalized branches"
	case recovered:
		out.Outcome = "healed, finality recovered"
	}
	return out, nil
}
