package engine

import (
	"math"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

func TestGridCellsOrderAndSeeds(t *testing.T) {
	g := Grid{
		Scenario: ScenarioLeakSim,
		P0:       []float64{0.4, 0.5},
		Beta0:    []float64{0.1, 0.2},
		Modes:    []string{"double", "semi"},
		Seeds:    []int64{1},
		N:        1000,
	}
	cells := g.Cells()
	if len(cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	// p0 is the outermost dimension.
	if cells[0].Params.P0 != 0.4 || cells[7].Params.P0 != 0.5 {
		t.Errorf("unexpected order: %+v ... %+v", cells[0].Params, cells[7].Params)
	}
	// Derived seeds differ across coordinates and are reproducible.
	seen := map[int64]bool{}
	for _, c := range cells {
		if c.Params.Seed == 0 {
			t.Fatalf("cell %+v got no derived seed", c.Params)
		}
		seen[c.Params.Seed] = true
	}
	if len(seen) != 8 {
		t.Errorf("derived seeds collide: %d distinct of 8", len(seen))
	}
	again := g.Cells()
	if !reflect.DeepEqual(cells, again) {
		t.Error("Cells() is not deterministic")
	}
}

func TestGridCellsDerivesExplicitZeroAndNegativeSeeds(t *testing.T) {
	g := Grid{Scenario: ScenarioBounceMC, Beta0: []float64{0.33}, Seeds: []int64{-1, 0, 1}}
	cells := g.Cells()
	seen := map[int64]bool{}
	for _, c := range cells {
		if c.Params.Seed <= 0 {
			t.Errorf("base seed list must always derive a positive cell seed, got %d", c.Params.Seed)
		}
		seen[c.Params.Seed] = true
	}
	if len(seen) != 3 {
		t.Errorf("derived seeds collide: %d distinct of 3", len(seen))
	}
	// Without a seed dimension, cells stay on the scenario default.
	if c := (Grid{Scenario: ScenarioBounceMC, Beta0: []float64{0.33}}).Cells(); c[0].Params.Seed != 0 {
		t.Errorf("unspecified seed dimension must stay zero, got %d", c[0].Params.Seed)
	}
}

func TestGridFillFrom(t *testing.T) {
	g := Grid{Scenario: ScenarioLeakSim, Beta0: []float64{0.1, 0.2}}
	filled := g.FillFrom(Params{P0: 0.4, Beta0: 0.3, Mode: "double", Seed: 7, Horizon: 500, N: 100, Sample: 50})
	if !reflect.DeepEqual(filled.P0, []float64{0.4}) {
		t.Errorf("p0 not filled: %v", filled.P0)
	}
	if !reflect.DeepEqual(filled.Beta0, []float64{0.1, 0.2}) {
		t.Errorf("specified beta0 overridden: %v", filled.Beta0)
	}
	if !reflect.DeepEqual(filled.Modes, []string{"double"}) || !reflect.DeepEqual(filled.Seeds, []int64{7}) ||
		!reflect.DeepEqual(filled.Horizons, []int{500}) || filled.N != 100 || filled.Sample != 50 {
		t.Errorf("fill incomplete: %+v", filled)
	}
}

func TestDeriveSeedProperties(t *testing.T) {
	a := DeriveSeed(1, 0.5, 0.2, "double", 9000)
	b := DeriveSeed(1, 0.5, 0.2, "double", 9000)
	if a != b {
		t.Error("same coordinates must derive the same seed")
	}
	if a <= 0 {
		t.Errorf("derived seed %d must be positive", a)
	}
	if DeriveSeed(2, 0.5, 0.2, "double", 9000) == a {
		t.Error("base seed must matter")
	}
	if DeriveSeed(1, 0.6, 0.2, "double", 9000) == a {
		t.Error("p0 must matter")
	}
	if DeriveSeed(1, 0.5, 0.2, "semi", 9000) == a {
		t.Error("mode must matter")
	}
}

func TestParseGrid(t *testing.T) {
	g, err := ParseGrid("leaksim", "p0=0.2:0.6:0.2; beta0=0.1,0.25; mode=double,semi; seed=1:3:1; horizon=9000; n=5000; sample=100")
	if err != nil {
		t.Fatal(err)
	}
	if g.Scenario != "leaksim" {
		t.Errorf("scenario = %q", g.Scenario)
	}
	wantP0 := []float64{0.2, 0.4, 0.6}
	if len(g.P0) != len(wantP0) {
		t.Fatalf("p0 = %v, want %v", g.P0, wantP0)
	}
	for i := range wantP0 {
		if math.Abs(g.P0[i]-wantP0[i]) > 1e-12 {
			t.Errorf("p0[%d] = %v, want %v", i, g.P0[i], wantP0[i])
		}
	}
	if !reflect.DeepEqual(g.Beta0, []float64{0.1, 0.25}) {
		t.Errorf("beta0 = %v", g.Beta0)
	}
	if !reflect.DeepEqual(g.Modes, []string{"double", "semi"}) {
		t.Errorf("modes = %v", g.Modes)
	}
	if !reflect.DeepEqual(g.Seeds, []int64{1, 2, 3}) {
		t.Errorf("seeds = %v", g.Seeds)
	}
	if !reflect.DeepEqual(g.Horizons, []int{9000}) {
		t.Errorf("horizons = %v", g.Horizons)
	}
	if g.N != 5000 || g.Sample != 100 {
		t.Errorf("n = %d sample = %d", g.N, g.Sample)
	}
	if n := len(g.Cells()); n != 3*2*2*3 {
		t.Errorf("cells = %d, want 36", n)
	}
}

// TestParseGridErrors: malformed specs fail with messages that name the
// offending dimension and token, so a mistyped 40-cell sweep spec is
// debuggable from the error alone.
func TestParseGridErrors(t *testing.T) {
	tests := []struct {
		name string
		spec string
		want []string // substrings the error must contain
	}{
		{"not key=value", "p0", []string{`"p0"`, "key=value"}},
		{"unknown key", "warp=1", []string{`"warp"`, "unknown sweep key"}},
		{"hi below lo", "p0=0.5:0.1:0.1", []string{`"p0"`, `"0.5:0.1:0.1"`, "lo <= hi"}},
		{"float token", "p0=0.2,zap", []string{`"p0"`, `"zap"`}},
		{"float range token", "p0=0.1:x:0.1", []string{`"p0"`, `"x"`}},
		{"range arity", "beta0=0.1:0.2", []string{`"beta0"`, `"0.1:0.2"`, "lo:hi:step"}},
		{"zero step", "seed=1:10:0", []string{`"seed"`, `"1:10:0"`, "step > 0"}},
		{"int token", "horizon=10,later", []string{`"horizon"`, `"later"`}},
		{"int range token", "seed=1:ten:1", []string{`"seed"`, `"ten"`}},
		{"n wants one value", "n=1,2", []string{`"n"`, "single value", `"1,2"`}},
		{"sample wants one value", "sample=5,10", []string{`"sample"`, "single value", `"5,10"`}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseGrid("leaksim", tc.spec)
			if err == nil {
				t.Fatalf("spec %q must error", tc.spec)
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("spec %q: error %q does not name %s", tc.spec, err, want)
				}
			}
		})
	}
}

func TestSweepRecordsCellErrors(t *testing.T) {
	cells := []Cell{
		{Scenario: ScenarioAnalyticThreshold, Params: Params{P0: 0.5}},
		{Scenario: "no-such-scenario", Params: Params{}},
		{Scenario: ScenarioLeakSim, Params: Params{Mode: "warp"}},
	}
	results := Sweep(cells, Options{Workers: 2})
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Err != "" {
		t.Errorf("cell 0 failed: %s", results[0].Err)
	}
	if results[1].Err == "" || results[2].Err == "" {
		t.Error("failing cells must record errors")
	}
	if FirstError(results) == nil {
		t.Error("FirstError must surface the failure")
	}
	if FirstError(results[:1]) != nil {
		t.Error("FirstError on clean results must be nil")
	}
	// A failed cell of a known scenario still records the defaulted
	// params of the attempted run.
	if p := results[2].Params; p.N == 0 || p.Horizon == 0 {
		t.Errorf("failed leaksim cell lost its defaulted params: %+v", p)
	}
}

// TestSweepDeterminism is the acceptance check of the sweep runner: the
// same grid, including Monte-Carlo cells, must produce bit-identical
// Result slices with 1 worker and with runtime.NumCPU() workers.
func TestSweepDeterminism(t *testing.T) {
	leak := Grid{
		Scenario: ScenarioLeakSim,
		P0:       []float64{0.4, 0.5},
		Beta0:    []float64{0.1, 0.2},
		Modes:    []string{"double", "semi"},
		Seeds:    []int64{1},
		Horizons: []int{1500},
		N:        2000,
		Sample:   500,
	}
	mc := Grid{
		Scenario: ScenarioBounceMC,
		P0:       []float64{0.5},
		Beta0:    []float64{0.33},
		Seeds:    []int64{1, 2, 3},
		Horizons: []int{400},
		N:        100,
	}
	cells := append(leak.Cells(), mc.Cells()...)

	sequential := Sweep(cells, Options{Workers: 1})
	parallel := Sweep(cells, Options{Workers: runtime.NumCPU()})
	// Meta carries wall-clock timing and is excluded from the
	// determinism contract.
	if !reflect.DeepEqual(StripMeta(sequential), StripMeta(parallel)) {
		t.Fatalf("sweep results differ between 1 and %d workers", runtime.NumCPU())
	}
	if err := FirstError(sequential); err != nil {
		t.Fatal(err)
	}
	// The Monte-Carlo cells must have actually exercised the RNG.
	var mcSeen bool
	for _, r := range sequential {
		if r.Scenario == ScenarioBounceMC {
			mcSeen = true
			if r.Params.Seed == 0 {
				t.Errorf("MC cell without derived seed: %+v", r.Params)
			}
		}
	}
	if !mcSeen {
		t.Fatal("no Monte-Carlo cells in the determinism grid")
	}
}

func TestSweepGridAndWorkerDefaults(t *testing.T) {
	g := Grid{Scenario: ScenarioAnalyticThreshold, P0: []float64{0.3, 0.5, 0.7}}
	results := SweepGrid(g, Options{})
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	// The symmetric corner again.
	if v, _ := results[1].Metric("threshold_both_branches"); v < 0.24 || v > 0.245 {
		t.Errorf("threshold(0.5) = %v", v)
	}
}

func TestTable1CellsMatchPaper(t *testing.T) {
	cells := Table1Cells(1)
	if len(cells) != 5 {
		t.Fatalf("cells = %d, want 5", len(cells))
	}
	results := Sweep(cells, Options{})
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	// Scenario 5.1 at p0=0.5: the paper-anchored analytic conflict is
	// 4686; the exact integer simulation lands a couple dozen epochs
	// earlier (endogenous ejection).
	if v, _ := results[0].Metric("analytic_epoch"); v < 4680 || v > 4690 {
		t.Errorf("5.1 analytic_epoch = %v, want ~4686", v)
	}
	if v, _ := results[0].Metric("sim_epoch"); v < 4650 || v > 4690 {
		t.Errorf("5.1 sim_epoch = %v, want ~4662", v)
	}
	// Scenario 5.2.3 crosses one third.
	if v, _ := results[3].Metric("crossed_one_third"); v != 1 {
		t.Error("5.2.3 must cross one third")
	}
}

func TestParseGridRateAndGST(t *testing.T) {
	g, err := ParseGrid("sim/drops", "rate=0.1:0.3:0.1; gst=4,8; seed=1; n=256")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rates) != 3 || g.Rates[0] != 0.1 {
		t.Errorf("rates = %v", g.Rates)
	}
	if len(g.GSTs) != 2 || g.GSTs[1] != 8 {
		t.Errorf("gsts = %v", g.GSTs)
	}
	cells := g.Cells()
	if len(cells) != 6 {
		t.Fatalf("cells = %d, want 3 rates x 2 gsts", len(cells))
	}
	// Cells differing only in rate/gst share their derived seed (common
	// random numbers): every cell of a robustness sweep faces the same
	// duty schedule.
	for _, c := range cells[1:] {
		if c.Params.Seed != cells[0].Params.Seed {
			t.Errorf("cell %v has different seed than %v", c.Params, cells[0].Params)
		}
	}
	// The rate/gst coordinates land in the cell params.
	if cells[0].Params.Rate != 0.1 || cells[0].Params.GST != 4 {
		t.Errorf("first cell params = %v", cells[0].Params)
	}
	if cells[5].Params.GST != 8 {
		t.Errorf("last cell params = %v", cells[5].Params)
	}
}

func TestGridFillFromRateAndGST(t *testing.T) {
	g := Grid{Scenario: "sim/gst"}
	g = g.FillFrom(Params{Rate: 0.25, GST: 6})
	if len(g.Rates) != 1 || g.Rates[0] != 0.25 {
		t.Errorf("rates = %v", g.Rates)
	}
	if len(g.GSTs) != 1 || g.GSTs[0] != 6 {
		t.Errorf("gsts = %v", g.GSTs)
	}
}

func TestParamsStringIncludesRateAndGST(t *testing.T) {
	s := Params{P0: 0.5, Rate: 0.2, GST: 8}.String()
	for _, want := range []string{"rate=0.2", "gst=8"} {
		if !strings.Contains(s, want) {
			t.Errorf("Params.String() = %q, missing %q", s, want)
		}
	}
}
