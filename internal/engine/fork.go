package engine

import (
	"context"

	"repro/internal/sim"
)

// Prefix is one checkpoint on a shared simulation prefix: the deep-copied
// protocol state at an epoch boundary plus whatever the scenario observed
// on the way there. Prefixes chain — RunTo extends one checkpoint to a
// deeper epoch without re-simulating the epochs before it — and fan out:
// any number of ResumeFrom continuations may consume the same Prefix,
// because sim.Restore clones the snapshot rather than consuming it.
//
// A Prefix is immutable once returned by RunTo. Scenario implementations
// must deep-copy the Trace when extending or resuming (a shared backing
// slice appended from two continuations is a correctness bug, not just a
// race).
type Prefix struct {
	// Snap is the simulation state at the checkpoint.
	Snap *sim.Snapshot
	// Epoch counts the simulated epochs in the prefix (the checkpoint sits
	// at the boundary ending epoch Epoch). It can fall short of the epoch
	// RunTo was asked for when the scenario concluded early (Done).
	Epoch int
	// Trace carries the scenario's accumulated per-epoch observations
	// (violation epochs, stake curves, adversary state) — everything a
	// cold run would have gathered over the prefix epochs, so a resumed
	// cell's Result is bit-identical to the cold run's.
	Trace any
	// Done marks a prefix on which the scenario already concluded (e.g. a
	// safety violation before the branch point). Extending a Done prefix
	// returns it unchanged; resuming from it skips further simulation.
	Done bool
	// Owned marks a prefix handed to its final consumer: the scheduler
	// guarantees (via refcounts) that nothing else — no sibling resume, no
	// pending spine hop, no rebuild — can reference this checkpoint again,
	// so ResumeFrom may destructively adopt Snap (sim.Simulation.Adopt)
	// instead of deep-copying it. Adoption yields state identical to a
	// Restore, so ownership can never change results, only skip a clone.
	Owned bool
	// cont optionally carries scenario-private continuation state — for
	// the sim scenarios, the spine's still-live simulation positioned at
	// this checkpoint — which exactly one later RunTo or ResumeFrom may
	// claim instead of restoring the snapshot. Claiming is atomic; losers
	// fall back to Snap. Struct-copying a Prefix shares the claim.
	cont any
}

// ForkableScenario is the optional Scenario extension that opts a
// simulation scenario into snapshot-tree warm-started sweeps: the
// scheduler (internal/engine/warmstart) groups a grid's cells by prefix
// key, simulates each shared prefix once via RunTo, and fans the cells out
// from the checkpoint via ResumeFrom.
//
// The contract every implementation must honor, and the warm-vs-cold
// equivalence suite pins: for any fully-defaulted params p with
// Fork(p) = (key, branch, true),
//
//	RunContext(ctx, p)  ==  ResumeFrom(ctx, RunTo(ctx, p, nil, branch), p)
//
// bit-identically (Result.Meta aside), and RunTo may be split at any
// intermediate epoch — RunTo(p, RunTo(p, nil, e1), e2) equals
// RunTo(p, nil, e2) — so the scheduler is free to checkpoint wherever the
// grid's branch epochs fall, rebuild evicted snapshots from any surviving
// ancestor, and run cells in any order on any number of workers.
type ForkableScenario interface {
	Scenario
	// Fork reports the cell's prefix key — a canonical encoding of every
	// parameter dimension that shapes the epochs BEFORE the branch point —
	// and its branch epoch. Two cells with equal keys are guaranteed to
	// simulate identical state through min(branch) epochs. ok = false
	// means the cell cannot warm-start (invalid params surface through the
	// cold path, degenerate branch at epoch 0); the scheduler then runs it
	// cold.
	Fork(p Params) (key string, branch int, ok bool)
	// RunTo extends a prefix (nil = from genesis) to the target epoch and
	// returns the new checkpoint. Implementations must derive everything
	// from the PRE-branch dimensions of p only (the ones Fork keys on):
	// the scheduler calls RunTo with one representative cell's params on
	// behalf of every cell in the group.
	RunTo(ctx context.Context, p Params, from *Prefix, epoch int) (*Prefix, error)
	// ResumeFrom completes one cell from the checkpoint: restore, simulate
	// the remaining epochs under the cell's own post-branch parameters,
	// assemble the Result exactly as a cold run would have.
	ResumeFrom(ctx context.Context, pre *Prefix, p Params) (Result, error)
}

// DefaultWarmStartBudget bounds resident snapshot bytes when
// WarmStartOptions.MemoryBudget is zero: 2 GiB, roomy for paper-scale
// grids (a 10k-validator full-spec snapshot is a few MiB) while keeping a
// runaway grid from swallowing the machine.
const DefaultWarmStartBudget int64 = 2 << 30

// WarmStartOptions configures the snapshot-tree sweep scheduler. A non-nil
// Options.WarmStart turns warm-starting on; scenarios that do not
// implement ForkableScenario fall back to the cold path cell by cell.
type WarmStartOptions struct {
	// MemoryBudget bounds the bytes of snapshots resident at once
	// (sim.Snapshot.Bytes). When publishing a checkpoint would exceed it,
	// the scheduler evicts the cheapest-to-rebuild resident snapshots;
	// cells that later need an evicted checkpoint rebuild it from the
	// nearest surviving ancestor (results stay bit-identical, only the
	// wall clock pays). 0 means DefaultWarmStartBudget; negative means
	// unlimited.
	MemoryBudget int64
}

// Budget resolves the effective byte budget (<= 0 only when unlimited).
func (o WarmStartOptions) Budget() int64 {
	if o.MemoryBudget == 0 {
		return DefaultWarmStartBudget
	}
	return o.MemoryBudget
}

// WarmMeta is the warm-start provenance of one sweep cell, carried in
// RunMeta. The per-cell fields say what this cell reused; the sweep-wide
// fields snapshot the scheduler's counters as of this cell's completion
// (the last-completed cell carries the sweep's totals). Like all of
// RunMeta it is excluded from determinism comparisons.
type WarmMeta struct {
	// Hit marks a cell resumed from a shared snapshot (false on a cell
	// the scheduler ran cold).
	Hit bool `json:"hit,omitempty"`
	// BranchEpoch is the epoch the cell forked from its prefix.
	BranchEpoch int `json:"branch_epoch,omitempty"`
	// EpochsSaved counts the prefix epochs this cell did not re-simulate.
	EpochsSaved int `json:"epochs_saved,omitempty"`
	// PrefixNodes is the snapshot-tree size: distinct (prefix key, branch
	// epoch) checkpoints the sweep planned.
	PrefixNodes int `json:"prefix_nodes,omitempty"`
	// SnapshotHits counts resumes served from a resident snapshot so far.
	SnapshotHits int `json:"snapshot_hits,omitempty"`
	// Rebuilt counts snapshots re-simulated after eviction so far.
	Rebuilt int `json:"rebuilt,omitempty"`
	// PeakResidentBytes is the high-water mark of resident snapshot bytes
	// so far.
	PeakResidentBytes int64 `json:"peak_resident_bytes,omitempty"`
}

// warmScheduler is the snapshot-tree sweep scheduler hook. The engine
// package cannot import internal/engine/warmstart (the scheduler imports
// the engine), so the scheduler installs itself here from its init;
// consumers activate it by importing the warmstart package (gasperleak
// and internal/server do). SweepStream dispatches to it when
// Options.WarmStart is set.
var warmScheduler func(ctx context.Context, cells []Cell, opt Options) <-chan Update

// SetWarmStartScheduler installs the warm-start sweep scheduler
// (internal/engine/warmstart's init calls this; tests may swap in fakes).
func SetWarmStartScheduler(f func(ctx context.Context, cells []Cell, opt Options) <-chan Update) {
	warmScheduler = f
}
