package engine

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Cell is one sweep unit: a named scenario plus its parameters.
type Cell struct {
	Scenario string `json:"scenario"`
	Params   Params `json:"params"`
}

// Grid is a rectangular parameter sweep for one scenario: the cross
// product of the listed dimensions (p0 x beta0 x mode x seed x horizon x
// rate x gst). An empty dimension contributes a single zero value, which
// Registry.Run resolves to the scenario's default.
type Grid struct {
	Scenario string
	P0       []float64
	Beta0    []float64
	Modes    []string
	Seeds    []int64
	Horizons []int
	// Rates sweeps the link-outage probability of protocol-simulator
	// scenarios; GSTs sweeps their partition-heal epoch. Cells differing
	// only in rate or gst share their derived seed (common random
	// numbers), which is the right comparison mode for a robustness
	// sweep: every cell faces the same duty schedule.
	Rates []float64
	GSTs  []int
	// N and Sample apply uniformly to every cell.
	N      int
	Sample int
}

// Cells expands the grid in deterministic order (p0 outermost, horizon
// innermost). When the seed dimension is listed, each cell's seed is
// derived from its base seed and its own coordinates (DeriveSeed), so
// stochastic cells are statistically independent across the grid and
// every cell is fully reproducible from its recorded Params alone —
// results are bit-identical regardless of worker count or grid shape.
// Omitting the seed dimension leaves every cell on the scenario's default
// seed instead: cells then share one random stream (common random
// numbers), which is the right comparison mode for deterministic engines
// and for contrasting parameter values under identical noise.
func (g Grid) Cells() []Cell {
	p0s := g.P0
	if len(p0s) == 0 {
		p0s = []float64{0}
	}
	beta0s := g.Beta0
	if len(beta0s) == 0 {
		beta0s = []float64{0}
	}
	modes := g.Modes
	if len(modes) == 0 {
		modes = []string{""}
	}
	seeds := g.Seeds
	seedSpecified := len(seeds) > 0
	if !seedSpecified {
		seeds = []int64{0}
	}
	horizons := g.Horizons
	if len(horizons) == 0 {
		horizons = []int{0}
	}
	rates := g.Rates
	if len(rates) == 0 {
		rates = []float64{0}
	}
	gsts := g.GSTs
	if len(gsts) == 0 {
		gsts = []int{0}
	}
	// Dimensions the grid actually lists are explicit: a listed value of
	// zero (rate=0 lossless baseline, gst=0 immediate heal, beta0=0
	// honest-only) is the cell's value, not a request for the scenario
	// default.
	var explicit Field
	for _, dim := range []struct {
		listed bool
		f      Field
	}{
		{len(g.P0) > 0, FieldP0},
		{len(g.Beta0) > 0, FieldBeta0},
		{len(g.Modes) > 0, FieldMode},
		{seedSpecified, FieldSeed},
		{len(g.Horizons) > 0, FieldHorizon},
		{len(g.Rates) > 0, FieldRate},
		{len(g.GSTs) > 0, FieldGST},
		{g.N != 0, FieldN},
		{g.Sample != 0, FieldSample},
	} {
		if dim.listed {
			explicit |= dim.f
		}
	}
	cells := make([]Cell, 0, len(p0s)*len(beta0s)*len(modes)*len(seeds)*len(horizons)*len(rates)*len(gsts))
	for _, p0 := range p0s {
		for _, b := range beta0s {
			for _, m := range modes {
				for _, s := range seeds {
					for _, h := range horizons {
						for _, rate := range rates {
							for _, gst := range gsts {
								p := Params{P0: p0, Beta0: b, Mode: m, N: g.N, Horizon: h, Sample: g.Sample, Rate: rate, GST: gst, Explicit: explicit}
								if seedSpecified {
									p.Seed = DeriveSeed(s, p0, b, m, h)
								}
								cells = append(cells, Cell{Scenario: g.Scenario, Params: p})
							}
						}
					}
				}
			}
		}
	}
	return cells
}

// FillFrom pins any unspecified grid dimension (and the uniform N/Sample
// knobs) from the given params, so CLI flags can cover dimensions a sweep
// spec leaves out. A param pins its dimension when it is non-zero or
// marked explicit (an explicit -rate=0 pins the lossless baseline); unset
// zero-valued params leave the dimension unspecified.
func (g Grid) FillFrom(p Params) Grid {
	if len(g.P0) == 0 && (p.P0 != 0 || p.IsExplicit(FieldP0)) {
		g.P0 = []float64{p.P0}
	}
	if len(g.Beta0) == 0 && (p.Beta0 != 0 || p.IsExplicit(FieldBeta0)) {
		g.Beta0 = []float64{p.Beta0}
	}
	if len(g.Modes) == 0 && p.Mode != "" {
		g.Modes = []string{p.Mode}
	}
	if len(g.Seeds) == 0 && p.Seed != 0 {
		g.Seeds = []int64{p.Seed}
	}
	if len(g.Horizons) == 0 && p.Horizon != 0 {
		g.Horizons = []int{p.Horizon}
	}
	if len(g.Rates) == 0 && (p.Rate != 0 || p.IsExplicit(FieldRate)) {
		g.Rates = []float64{p.Rate}
	}
	if len(g.GSTs) == 0 && (p.GST != 0 || p.IsExplicit(FieldGST)) {
		g.GSTs = []int{p.GST}
	}
	if g.N == 0 {
		g.N = p.N
	}
	if g.Sample == 0 {
		g.Sample = p.Sample
	}
	return g
}

// DeriveSeed maps a base seed and a cell's coordinates to the cell's own
// seed: an FNV-1a hash of the coordinates finalized with a splitmix64
// round. Identical coordinates always derive the identical seed, distinct
// coordinates derive (for all practical purposes) independent streams,
// and the result never depends on grid shape or traversal order.
//
// The derivation DELIBERATELY excludes the post-branch dimensions rate
// and gst: cells that differ only there share the pre-branch RNG stream
// (common random numbers — every cell faces the same duty schedule,
// Grid.Rates doc), and the warm-start scheduler
// (internal/engine/warmstart) depends on exactly that to fan such cells
// out from one shared snapshot. Adding rate or gst to this hash would
// silently break snapshot reuse — TestDeriveSeedContract pins the
// exclusion. Horizon IS included, so horizon sweeps share prefixes only
// when the grid leaves the seed dimension unlisted.
func DeriveSeed(base int64, p0, beta0 float64, mode string, horizon int) int64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(base))
	put(math.Float64bits(p0))
	put(math.Float64bits(beta0))
	h.Write([]byte(mode))
	put(uint64(horizon))

	// splitmix64 finalizer.
	z := h.Sum64()
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	seed := int64(z &^ (1 << 63)) // keep it positive for readable CLI output
	if seed == 0 {
		seed = 1
	}
	return seed
}

// ParseGrid parses a sweep spec into a Grid for the named scenario. The
// spec is semicolon-separated key=value items; values are comma lists or
// lo:hi:step ranges (inclusive). Keys: p0, beta0, mode, seed, horizon,
// rate, gst, n, sample.
//
//	p0=0.2:0.8:0.1; beta0=0.1,0.2,0.25; mode=double,semi; seed=1,2,3
func ParseGrid(scenario, spec string) (Grid, error) {
	g := Grid{Scenario: scenario}
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, value, ok := strings.Cut(item, "=")
		if !ok {
			return Grid{}, fmt.Errorf("engine: sweep item %q is not key=value", item)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		var err error
		switch key {
		case "p0":
			g.P0, err = parseFloatList(value)
		case "beta0":
			g.Beta0, err = parseFloatList(value)
		case "mode":
			g.Modes = strings.Split(value, ",")
			for i := range g.Modes {
				g.Modes[i] = strings.TrimSpace(g.Modes[i])
			}
		case "seed":
			g.Seeds, err = parseIntList(value)
		case "horizon":
			var hs []int64
			hs, err = parseIntList(value)
			for _, h := range hs {
				g.Horizons = append(g.Horizons, int(h))
			}
		case "rate":
			g.Rates, err = parseFloatList(value)
		case "gst":
			var gs []int64
			gs, err = parseIntList(value)
			for _, gst := range gs {
				g.GSTs = append(g.GSTs, int(gst))
			}
		case "n":
			var ns []int64
			ns, err = parseIntList(value)
			if err == nil {
				if len(ns) != 1 {
					err = fmt.Errorf("wants a single value, got %q", value)
				} else {
					g.N = int(ns[0])
				}
			}
		case "sample":
			var ss []int64
			ss, err = parseIntList(value)
			if err == nil {
				if len(ss) != 1 {
					err = fmt.Errorf("wants a single value, got %q", value)
				} else {
					g.Sample = int(ss[0])
				}
			}
		default:
			return Grid{}, fmt.Errorf("engine: unknown sweep key %q (want p0, beta0, mode, seed, horizon, rate, gst, n, sample)", key)
		}
		if err != nil {
			return Grid{}, fmt.Errorf("engine: sweep dimension %q: %w", key, err)
		}
	}
	return g, nil
}

// parseFloatList parses "a,b,c" or an inclusive "lo:hi:step" range.
func parseFloatList(value string) ([]float64, error) {
	if strings.Contains(value, ":") {
		parts := strings.Split(value, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("range %q wants lo:hi:step", value)
		}
		var lo, hi, step float64
		for i, dst := range []*float64{&lo, &hi, &step} {
			tok := strings.TrimSpace(parts[i])
			v, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return nil, fmt.Errorf("range %q: bad number %q", value, tok)
			}
			*dst = v
		}
		if step <= 0 || hi < lo {
			return nil, fmt.Errorf("range %q wants lo <= hi and step > 0", value)
		}
		var out []float64
		// The epsilon keeps the endpoint inclusive under float rounding.
		for i := 0; ; i++ {
			v := lo + float64(i)*step
			if v > hi+step*1e-9 {
				break
			}
			out = append(out, v)
		}
		return out, nil
	}
	var out []float64
	for _, s := range strings.Split(value, ",") {
		tok := strings.TrimSpace(s)
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q in %q", tok, value)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseIntList parses "a,b,c" or an inclusive "lo:hi:step" range.
func parseIntList(value string) ([]int64, error) {
	if strings.Contains(value, ":") {
		parts := strings.Split(value, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("range %q wants lo:hi:step", value)
		}
		var lo, hi, step int64
		for i, dst := range []*int64{&lo, &hi, &step} {
			tok := strings.TrimSpace(parts[i])
			v, err := strconv.ParseInt(tok, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("range %q: bad integer %q", value, tok)
			}
			*dst = v
		}
		if step <= 0 || hi < lo {
			return nil, fmt.Errorf("range %q wants lo <= hi and step > 0", value)
		}
		var out []int64
		for v := lo; v <= hi; v += step {
			out = append(out, v)
		}
		return out, nil
	}
	var out []int64
	for _, s := range strings.Split(value, ",") {
		tok := strings.TrimSpace(s)
		v, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q in %q", tok, value)
		}
		out = append(out, v)
	}
	return out, nil
}

// Options configures a sweep.
type Options struct {
	// Workers bounds concurrency; <= 0 means runtime.NumCPU().
	Workers int
	// Registry resolves scenario names; nil means the default registry.
	Registry *Registry
	// WarmStart, when non-nil, routes the sweep through the snapshot-tree
	// warm-start scheduler (if one is installed — import
	// internal/engine/warmstart): cells of ForkableScenario scenarios that
	// share a parameter prefix fan out from one shared simulated prefix
	// instead of each re-simulating epoch 0. Results are bit-identical to
	// the cold sweep; only wall clock and Result.Meta change.
	WarmStart *WarmStartOptions
	// Checkpoint, when non-nil (with a non-nil Store), runs checkpointable
	// cells under the durable-checkpoint policy: each cell probes the
	// store for its newest valid checkpoint and resumes from it, persists
	// a fresh checkpoint every interval while running, and deletes its
	// checkpoint on completion. Orthogonal to WarmStart: the in-memory
	// snapshot tree amortizes warm sweeps within a process, durable
	// checkpoints survive process death — a sweep routed through the
	// warm-start scheduler skips checkpointing (the scheduler owns cell
	// execution), so crash resume applies on the plain local-pool path.
	Checkpoint *CheckpointOptions
	// Dispatch, when non-nil, takes over cell execution entirely:
	// SweepStream hands it the cells and the remaining options (Dispatch
	// itself cleared, so a dispatcher may recurse into SweepStream for
	// local execution) and returns its stream. This is the scale-out hook —
	// the serving layer's coordinator routes cells to worker processes
	// through it — and it carries the same contract as SweepStream: one
	// Update per cell, payloads bit-identical to a local sweep, the
	// channel closed after the last cell, prompt close after cancellation.
	Dispatch DispatchFunc
}

// DispatchFunc executes a sweep's cells somewhere other than the local
// worker pool (see Options.Dispatch). Update.Index is the cell's position
// in the input slice, exactly as SweepStream reports it.
type DispatchFunc func(ctx context.Context, cells []Cell, opt Options) <-chan Update

// Update is one event of a streaming sweep: a finished cell's result plus
// progress counts.
type Update struct {
	// Index is the cell's position in the input slice.
	Index int `json:"index"`
	// Result is the cell's outcome. A failed or cancelled cell records
	// its error in Result.Err instead of aborting the sweep.
	Result Result `json:"result"`
	// Completed counts the cells finished so far, this one included.
	Completed int `json:"completed"`
	// Total is the sweep's cell count.
	Total int `json:"total"`
}

// SweepStream runs every cell through the registry over a bounded worker
// pool and yields one Update per cell as it completes (completion order,
// not cell order). Cancellation is cooperative: once ctx is cancelled,
// cells already running return early (ContextRunner scenarios observe ctx
// inside their loops) and cells not yet started are marked with the
// context error without being computed, so the stream closes promptly.
//
// The caller must drain the channel; it is closed after the last cell.
// Each computed cell's Result carries its wall-clock duration in
// Result.Meta. The result payloads (Meta aside) are bit-identical for any
// worker count.
func SweepStream(ctx context.Context, cells []Cell, opt Options) <-chan Update {
	if opt.Dispatch != nil {
		d := opt.Dispatch
		opt.Dispatch = nil
		return d(ctx, cells, opt)
	}
	if opt.WarmStart != nil && warmScheduler != nil {
		return warmScheduler(ctx, cells, opt)
	}
	reg := opt.Registry
	if reg == nil {
		reg = Default
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	out := make(chan Update)
	if len(cells) == 0 {
		close(out)
		return out
	}

	// Pre-filled job queue: no producer goroutine to leak, and workers
	// drain the remainder instantly after cancellation.
	jobs := make(chan int, len(cells))
	for i := range cells {
		jobs <- i
	}
	close(jobs)

	type indexed struct {
		i   int
		res Result
	}
	finished := make(chan indexed)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				cell := cells[i]
				var res Result
				if err := ctx.Err(); err != nil {
					// Cancelled before this cell started: mark it
					// without computing (no Meta — no work was done).
					res = failedCell(reg, cell, err)
				} else if r, handled, err := runCellCheckpointed(ctx, reg, cell, opt.Checkpoint); handled {
					// Durable-checkpoint path: r already carries its
					// duration and checkpoint provenance in Meta.
					if err != nil {
						r = failedCell(reg, cell, err)
					}
					res = r
				} else {
					start := time.Now() //gasper:nondet wall-clock duration metadata only; never part of result identity
					r, err := reg.RunContext(ctx, cell.Scenario, cell.Params)
					if err != nil {
						r = failedCell(reg, cell, err)
					}
					r.Meta = RunMeta{DurationMS: float64(time.Since(start)) / float64(time.Millisecond)}.Merged(r.Meta) //gasper:nondet wall-clock duration metadata only; never part of result identity
					res = r
				}
				finished <- indexed{i, res}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(finished)
	}()
	go func() {
		defer close(out)
		completed := 0
		for f := range finished {
			completed++
			out <- Update{Index: f.i, Result: f.res, Completed: completed, Total: len(cells)}
		}
	}()
	return out
}

// failedCell records a cell failure with the defaulted params when
// possible, so a failed cell still documents the run it attempted.
func failedCell(reg *Registry, cell Cell, err error) Result {
	p := cell.Params
	if s, ok := reg.Lookup(cell.Scenario); ok {
		p = p.WithDefaults(s.Defaults())
	}
	return Result{Scenario: cell.Scenario, Params: p, Err: err.Error()}
}

// SweepContext collects a SweepStream into one Result per cell, in cell
// order. After cancellation it returns promptly with every unfinished
// cell's Err set to the context error.
func SweepContext(ctx context.Context, cells []Cell, opt Options) []Result {
	results := make([]Result, len(cells))
	for u := range SweepStream(ctx, cells, opt) {
		results[u.Index] = u.Result
	}
	return results
}

// Sweep runs every cell through the registry over a bounded worker pool
// and returns one Result per cell, in cell order. Each cell is an
// independent deterministic computation with its own seed, so the output
// payload is bit-identical for any worker count (Result.Meta carries the
// non-deterministic timing). A failing cell records its error in
// Result.Err instead of aborting the sweep.
func Sweep(cells []Cell, opt Options) []Result {
	return SweepContext(context.Background(), cells, opt)
}

// SweepGrid expands the grid and runs it.
func SweepGrid(g Grid, opt Options) []Result {
	return Sweep(g.Cells(), opt)
}

// SweepGridContext expands the grid and runs it with cooperative
// cancellation.
func SweepGridContext(ctx context.Context, g Grid, opt Options) []Result {
	return SweepContext(ctx, g.Cells(), opt)
}

// FirstError returns the first per-cell error of a sweep, if any.
func FirstError(results []Result) error {
	for _, r := range results {
		if r.Err != "" {
			return fmt.Errorf("engine: scenario %s (%s): %s", r.Scenario, r.Params, r.Err)
		}
	}
	return nil
}

// BounceMCGrid builds the standard bouncing Monte-Carlo ensemble: one
// bounce-mc cell per run with consecutive base seeds (each cell's actual
// seed derived from its coordinates), sampled every `sample` epochs
// (sample = 0 evaluates the single epoch `horizon` instead).
func BounceMCGrid(p0, beta0 float64, n, runs int, seed int64, sample, horizon int) Grid {
	seeds := make([]int64, runs)
	for i := range seeds {
		seeds[i] = seed + int64(i)
	}
	return Grid{
		Scenario: ScenarioBounceMC,
		P0:       []float64{p0},
		Beta0:    []float64{beta0},
		Seeds:    seeds,
		Horizons: []int{horizon},
		N:        n,
		Sample:   sample,
	}
}

// Table1Cells lists the paper's Table 1: all five scenarios at their
// reference parameters, as sweep cells over the registry.
func Table1Cells(seed int64) []Cell {
	return []Cell{
		{Scenario: ScenarioPartition, Params: Params{P0: 0.5}},
		{Scenario: ScenarioDoubleVote, Params: Params{P0: 0.5, Beta0: 0.2}},
		{Scenario: ScenarioSemiActive, Params: Params{P0: 0.5, Beta0: 0.2}},
		{Scenario: ScenarioDelay, Params: Params{P0: 0.5, Beta0: 0.25}},
		{Scenario: ScenarioBounce, Params: Params{P0: 0.5, Beta0: 0.33, Seed: seed}},
	}
}
