package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"
)

// streamRegistry builds a registry with one cancellable scenario that
// takes perCell to complete unless its context is cancelled first.
func streamRegistry(perCell time.Duration) *Registry {
	reg := NewRegistry()
	reg.MustRegister(NewContextScenario("slow", "cancellable test scenario",
		Params{P0: 0.5},
		func(ctx context.Context, p Params) (Result, error) {
			select {
			case <-ctx.Done():
				return Result{}, ctx.Err()
			case <-time.After(perCell):
				return Result{Metrics: []Metric{{Name: "ok", Value: 1}}}, nil
			}
		}))
	return reg
}

// TestSweepStreamMatchesBatch is the acceptance check of the streaming
// redesign: for any worker count, collecting SweepStream yields exactly
// the batch Sweep result set (Meta timing aside), and the progress counts
// are a complete 1..Total sequence.
func TestSweepStreamMatchesBatch(t *testing.T) {
	leak := Grid{
		Scenario: ScenarioLeakSim,
		P0:       []float64{0.4, 0.5},
		Beta0:    []float64{0.1, 0.2},
		Modes:    []string{"double", "semi"},
		Seeds:    []int64{1},
		Horizons: []int{1200},
		N:        2000,
	}
	mc := Grid{
		Scenario: ScenarioBounceMC,
		P0:       []float64{0.5},
		Beta0:    []float64{0.33},
		Seeds:    []int64{1, 2},
		Horizons: []int{300},
		N:        100,
	}
	cells := append(leak.Cells(), mc.Cells()...)
	batch := StripMeta(Sweep(cells, Options{Workers: 1}))

	for _, workers := range []int{1, 3, runtime.NumCPU()} {
		collected := make([]Result, len(cells))
		seen := make([]bool, len(cells))
		wantCompleted := 1
		for u := range SweepStream(context.Background(), cells, Options{Workers: workers}) {
			if u.Total != len(cells) {
				t.Fatalf("workers=%d: Total = %d, want %d", workers, u.Total, len(cells))
			}
			if u.Completed != wantCompleted {
				t.Fatalf("workers=%d: Completed = %d, want %d", workers, u.Completed, wantCompleted)
			}
			wantCompleted++
			if u.Index < 0 || u.Index >= len(cells) || seen[u.Index] {
				t.Fatalf("workers=%d: bad or duplicate index %d", workers, u.Index)
			}
			seen[u.Index] = true
			if u.Result.Meta == nil || u.Result.Meta.DurationMS < 0 {
				t.Errorf("workers=%d: cell %d missing duration meta: %+v", workers, u.Index, u.Result.Meta)
			}
			collected[u.Index] = u.Result
		}
		if wantCompleted != len(cells)+1 {
			t.Fatalf("workers=%d: stream yielded %d updates, want %d", workers, wantCompleted-1, len(cells))
		}
		if !reflect.DeepEqual(StripMeta(collected), batch) {
			t.Errorf("workers=%d: streamed result set diverges from batch Sweep", workers)
		}
	}
}

// TestSweepContextCancellation: a sweep aborted mid-grid returns promptly,
// marks every unfinished cell with the context error, and leaks no
// goroutines.
func TestSweepContextCancellation(t *testing.T) {
	reg := streamRegistry(20 * time.Millisecond)
	cells := make([]Cell, 16)
	for i := range cells {
		cells[i] = Cell{Scenario: "slow", Params: Params{Seed: int64(i + 1)}}
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	stream := SweepStream(ctx, cells, Options{Workers: 2, Registry: reg})
	first, ok := <-stream
	if !ok || first.Result.Err != "" {
		t.Fatalf("first update = %+v, ok=%v, want one clean result", first, ok)
	}
	cancel()
	start := time.Now()
	finished, cancelled := 1, 0
	for u := range stream {
		finished++
		if u.Result.Err != "" {
			if !strings.Contains(u.Result.Err, context.Canceled.Error()) {
				t.Errorf("cell %d: Err = %q, want a context error", u.Index, u.Result.Err)
			}
			cancelled++
		}
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancelled sweep drained in %v, want prompt close", d)
	}
	if finished != len(cells) {
		t.Errorf("stream yielded %d updates, want %d (every cell reported)", finished, len(cells))
	}
	if cancelled == 0 {
		t.Error("no cell recorded the context error")
	}

	// The worker pool and collector must be gone once the stream closes.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines after drained cancel = %d, want <= %d", n, before)
	}
}

// TestSweepContextPreCancelled: with an already-cancelled context every
// cell is marked without computation and the batch wrapper still returns
// one result per cell, in cell order.
func TestSweepContextPreCancelled(t *testing.T) {
	reg := streamRegistry(time.Hour) // would time out if any cell actually ran
	cells := make([]Cell, 8)
	for i := range cells {
		cells[i] = Cell{Scenario: "slow", Params: Params{Seed: int64(i + 1)}}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	results := SweepContext(ctx, cells, Options{Workers: 4, Registry: reg})
	if d := time.Since(start); d > time.Second {
		t.Fatalf("pre-cancelled sweep took %v", d)
	}
	if len(results) != len(cells) {
		t.Fatalf("results = %d, want %d", len(results), len(cells))
	}
	for i, r := range results {
		if !strings.Contains(r.Err, context.Canceled.Error()) {
			t.Errorf("cell %d: Err = %q, want context error", i, r.Err)
		}
		if r.Params.Seed != int64(i+1) {
			t.Errorf("cell %d out of order: %+v", i, r.Params)
		}
	}
	if err := FirstError(results); err == nil {
		t.Error("FirstError must surface the context error")
	}
}

// TestRegistryRunContext: the registry prefers ContextRunner scenarios and
// gates plain ones with an upfront cancellation check.
func TestRegistryRunContext(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(NewScenario("plain", "no ctx", Params{},
		func(p Params) (Result, error) { return Result{Outcome: "ran"}, nil }))
	reg.MustRegister(NewContextScenario("aware", "ctx", Params{},
		func(ctx context.Context, p Params) (Result, error) {
			if err := ctx.Err(); err != nil {
				return Result{}, fmt.Errorf("observed: %w", err)
			}
			return Result{Outcome: "ran"}, nil
		}))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := reg.RunContext(ctx, "plain", Params{}); !errors.Is(err, context.Canceled) {
		t.Errorf("plain scenario under cancelled ctx: err = %v", err)
	}
	if _, err := reg.RunContext(ctx, "aware", Params{}); !errors.Is(err, context.Canceled) {
		t.Errorf("aware scenario under cancelled ctx: err = %v", err)
	}
	for _, name := range []string{"plain", "aware"} {
		res, err := reg.RunContext(context.Background(), name, Params{})
		if err != nil || res.Outcome != "ran" {
			t.Errorf("%s under live ctx: %+v, %v", name, res, err)
		}
	}
}

// TestRegistryInfos: the serializable listing names every scenario and
// flags the cancellable ones.
func TestRegistryInfos(t *testing.T) {
	infos := Infos()
	if len(infos) != len(Names()) {
		t.Fatalf("infos = %d, names = %d", len(infos), len(Names()))
	}
	byName := map[string]Info{}
	for _, in := range infos {
		byName[in.Name] = in
	}
	if in := byName[ScenarioLeakSim]; !in.Cancellable || in.Description == "" || in.Defaults.N == 0 {
		t.Errorf("leaksim info incomplete: %+v", in)
	}
	if in := byName[ScenarioDoubleVote]; in.Cancellable {
		t.Errorf("closed-form scenario flagged cancellable: %+v", in)
	}
}

// TestLongScenariosCancelInsideLoops: the paper-scale engines abort
// mid-run, not only between cells.
func TestLongScenariosCancelInsideLoops(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	for _, cell := range []Cell{
		{Scenario: ScenarioLeakSim, Params: Params{N: 10000, Horizon: 50_000_000}},
		{Scenario: ScenarioBounceMC, Params: Params{N: 2000, Horizon: 50_000_000, Sample: 1000}},
	} {
		start := time.Now()
		_, err := RunContext(ctx, cell.Scenario, cell.Params)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v, want deadline exceeded", cell.Scenario, err)
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Errorf("%s: cancelled run took %v, want prompt abort", cell.Scenario, d)
		}
	}
}
