package warmstart_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/engine"
	_ "repro/internal/engine/warmstart"
)

// benchGrid is the acceptance workload: a sim/gst shared-prefix grid of 30
// cells at 10,000 validators — 15 horizons x 2 gst values. Neither gst
// heals within any horizon here, so every cell simulates the same
// partitioned prefix under one seed (gst is excluded from the prefix key
// and rate/gst from seed derivation, so the gst dimension shares both
// prefixes and seeds) — cold re-runs the prefix per cell, warm runs it
// once to the deepest horizon and fans all 30 cells out from the 15
// intermediate checkpoints.
func benchGrid() []engine.Cell {
	horizons := make([]int, 0, 15)
	for h := 8; h <= 22; h++ {
		horizons = append(horizons, h)
	}
	return engine.Grid{
		Scenario: "sim/gst",
		P0:       []float64{0.5},
		GSTs:     []int{30, 40},
		Horizons: horizons,
		N:        10000,
	}.Cells()
}

func benchSweep(b *testing.B, warm *engine.WarmStartOptions) []engine.Result {
	b.Helper()
	var last []engine.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = engine.SweepContext(context.Background(), benchGrid(), engine.Options{
			Workers:   1,
			WarmStart: warm,
		})
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*len(last))/secs, "cells/sec")
	}
	for i, r := range last {
		if r.Err != "" {
			b.Fatalf("cell %d failed: %s", i, r.Err)
		}
	}
	return last
}

// BenchmarkSweepWarmStart measures the tentpole's payoff: cold sweeps the
// grid cell by cell, warm fans the cells out from the shared snapshot
// tree. Workers is pinned to 1 on both sides so the ratio isolates the
// epochs saved rather than scheduling luck; CI gates warm >= 3x cold
// cells/sec. The warm run is also asserted bit-identical to the cold one —
// the speedup is only admissible because the results are the same.
func BenchmarkSweepWarmStart(b *testing.B) {
	var cold, warm []engine.Result
	b.Run("cold", func(b *testing.B) {
		cold = benchSweep(b, nil)
	})
	b.Run("warm", func(b *testing.B) {
		warm = benchSweep(b, &engine.WarmStartOptions{})
	})
	if cold != nil && warm != nil {
		for i := range cold {
			if !reflect.DeepEqual(cold[i].WithoutMeta(), warm[i].WithoutMeta()) {
				b.Fatalf("cell %d: warm result diverges from cold", i)
			}
		}
	}
}
