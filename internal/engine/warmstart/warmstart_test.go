package warmstart_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/engine"
	_ "repro/internal/engine/warmstart"
)

// variantRegistry builds a registry holding the four forkable sim
// scenarios under the given simulator variant.
func variantRegistry(t *testing.T, v engine.SimVariant) *engine.Registry {
	t.Helper()
	reg := engine.NewRegistry()
	for _, name := range []string{"sim/drops", "sim/gst", "sim/leak", "sim/semiactive"} {
		s, ok := engine.NewSimScenarioVariant(name, v)
		if !ok {
			t.Fatalf("NewSimScenarioVariant(%q) not forkable", name)
		}
		reg.MustRegister(s)
	}
	return reg
}

// equivalenceGrids are the randomized-shape grids the warm-vs-cold suite
// sweeps: small populations, short horizons, every forkable scenario, and
// shapes that exercise multiple groups (two p0 values), multiple branch
// epochs per group, and cells sharing a single branch.
func equivalenceGrids() []engine.Grid {
	return []engine.Grid{
		{Scenario: "sim/gst", P0: []float64{0.4, 0.6}, GSTs: []int{2, 4, 5}, Horizons: []int{6, 8}, N: 24},
		{Scenario: "sim/leak", P0: []float64{0.5}, Horizons: []int{8, 10, 12}, N: 20, Sample: 2},
		{Scenario: "sim/semiactive", P0: []float64{0.5}, Beta0: []float64{0.2}, Horizons: []int{8, 11}, N: 20},
		{Scenario: "sim/drops", Rates: []float64{0.2}, Horizons: []int{4, 6}, N: 16},
	}
}

// TestWarmVsColdEquivalence is the determinism invariant of the snapshot
// tree: bit-identical results versus the cold sweep for any worker count,
// snapshot-reuse pattern, and eviction schedule — across the full 2x2
// (view layout x fork-choice engine) simulator matrix.
func TestWarmVsColdEquivalence(t *testing.T) {
	ctx := context.Background()
	variants := []engine.SimVariant{
		{},
		{OracleForkChoice: true},
		{PerValidatorViews: true},
		{PerValidatorViews: true, OracleForkChoice: true},
	}
	for _, v := range variants {
		v := v
		name := "cohort-protoarray"
		switch {
		case v.PerValidatorViews && v.OracleForkChoice:
			name = "pervalidator-oracle"
		case v.PerValidatorViews:
			name = "pervalidator-protoarray"
		case v.OracleForkChoice:
			name = "cohort-oracle"
		}
		t.Run(name, func(t *testing.T) {
			reg := variantRegistry(t, v)
			for _, g := range equivalenceGrids() {
				cells := g.Cells()
				cold := engine.SweepContext(ctx, cells, engine.Options{Workers: 2, Registry: reg})
				for _, workers := range []int{1, 3} {
					for _, budget := range []int64{-1, 1} {
						warm := engine.SweepContext(ctx, cells, engine.Options{
							Workers:   workers,
							Registry:  reg,
							WarmStart: &engine.WarmStartOptions{MemoryBudget: budget},
						})
						if len(warm) != len(cold) {
							t.Fatalf("%s workers=%d budget=%d: %d results, want %d", g.Scenario, workers, budget, len(warm), len(cold))
						}
						for i := range cold {
							if !reflect.DeepEqual(cold[i].WithoutMeta(), warm[i].WithoutMeta()) {
								t.Errorf("%s workers=%d budget=%d cell %d (%s): warm diverges from cold\ncold: %+v\nwarm: %+v",
									g.Scenario, workers, budget, i, cells[i].Params, cold[i].WithoutMeta(), warm[i].WithoutMeta())
							}
						}
					}
				}
			}
		})
	}
}

// TestWarmStartObservability checks the provenance a warm sweep stamps
// into RunMeta: resumed cells report a hit with the branch epoch and saved
// epochs, the counters see the prefix tree, and a starvation budget forces
// at least one eviction-then-rebuild without changing results.
func TestWarmStartObservability(t *testing.T) {
	ctx := context.Background()
	g := engine.Grid{Scenario: "sim/gst", P0: []float64{0.5}, GSTs: []int{2, 4}, Horizons: []int{6}, N: 24}
	cells := g.Cells()

	warm := engine.SweepContext(ctx, cells, engine.Options{
		Workers:   1,
		WarmStart: &engine.WarmStartOptions{MemoryBudget: -1},
	})
	hits := 0
	for i, r := range warm {
		if r.Err != "" {
			t.Fatalf("cell %d failed: %s", i, r.Err)
		}
		if r.Meta == nil || r.Meta.Warm == nil {
			t.Fatalf("cell %d: no warm meta", i)
		}
		w := r.Meta.Warm
		if !w.Hit {
			t.Errorf("cell %d: expected a snapshot hit, got %+v", i, w)
		}
		if w.BranchEpoch != cells[i].Params.GST {
			t.Errorf("cell %d: branch epoch %d, want %d", i, w.BranchEpoch, cells[i].Params.GST)
		}
		if w.EpochsSaved != cells[i].Params.GST {
			t.Errorf("cell %d: epochs saved %d, want %d", i, w.EpochsSaved, cells[i].Params.GST)
		}
		if w.PrefixNodes != 2 {
			t.Errorf("cell %d: prefix nodes %d, want 2", i, w.PrefixNodes)
		}
		if w.PeakResidentBytes <= 0 {
			t.Errorf("cell %d: peak resident bytes %d, want > 0", i, w.PeakResidentBytes)
		}
		hits++
	}
	if hits != len(cells) {
		t.Fatalf("%d hits, want %d", hits, len(cells))
	}

	// A 1-byte budget evicts every checkpoint as soon as the next
	// publishes; with one worker the spine finishes before any resume
	// starts, so the shallow checkpoint must be rebuilt on demand.
	starved := engine.SweepContext(ctx, cells, engine.Options{
		Workers:   1,
		WarmStart: &engine.WarmStartOptions{MemoryBudget: 1},
	})
	rebuilt := 0
	for i, r := range starved {
		if r.Err != "" {
			t.Fatalf("starved cell %d failed: %s", i, r.Err)
		}
		if r.Meta != nil && r.Meta.Warm != nil && r.Meta.Warm.Rebuilt > rebuilt {
			rebuilt = r.Meta.Warm.Rebuilt
		}
	}
	if rebuilt == 0 {
		t.Errorf("1-byte budget produced no rebuilds")
	}
	for i := range warm {
		if !reflect.DeepEqual(warm[i].WithoutMeta(), starved[i].WithoutMeta()) {
			t.Errorf("cell %d: eviction schedule changed the result", i)
		}
	}
}

// TestWarmStartColdFallback routes a non-forkable scenario (sim/bounce:
// the Bouncer carries its own RNG cursor) and a lone forkable cell through
// the warm scheduler: both must fall back to the cold path and still
// succeed, with Hit=false provenance.
func TestWarmStartColdFallback(t *testing.T) {
	ctx := context.Background()
	cells := []engine.Cell{
		{Scenario: "sim/bounce", Params: engine.Params{N: 40, Horizon: 8, GST: 2, P0: 0.7, Beta0: 0.25, Seed: 19}},
		// A single sim/gst cell shares a prefix with nobody.
		{Scenario: "sim/gst", Params: engine.Params{N: 24, Horizon: 6, GST: 3}},
	}
	cold := engine.SweepContext(ctx, cells, engine.Options{Workers: 2})
	warm := engine.SweepContext(ctx, cells, engine.Options{
		Workers:   2,
		WarmStart: &engine.WarmStartOptions{},
	})
	for i := range cells {
		if warm[i].Err != "" {
			t.Fatalf("cell %d failed: %s", i, warm[i].Err)
		}
		if !reflect.DeepEqual(cold[i].WithoutMeta(), warm[i].WithoutMeta()) {
			t.Errorf("cell %d: cold-fallback result diverges", i)
		}
		if warm[i].Meta == nil || warm[i].Meta.Warm == nil {
			t.Fatalf("cell %d: cold-fallback cell lost warm provenance", i)
		}
		if warm[i].Meta.Warm.Hit {
			t.Errorf("cell %d: cold-fallback cell claims a snapshot hit", i)
		}
	}
}

// TestWarmStartCancellation cancels before the sweep starts: every cell
// must be marked with the context error and the stream must close.
func TestWarmStartCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := engine.Grid{Scenario: "sim/gst", P0: []float64{0.5}, GSTs: []int{2, 4}, Horizons: []int{6}, N: 24}
	results := engine.SweepContext(ctx, g.Cells(), engine.Options{
		Workers:   2,
		WarmStart: &engine.WarmStartOptions{},
	})
	for i, r := range results {
		if r.Err == "" {
			t.Errorf("cell %d: expected a context error", i)
		}
	}
}

// TestWarmStartErrorCells runs a grid whose cells are invalid for the
// scenario: the warm scheduler must surface the same per-cell errors the
// cold sweep does.
func TestWarmStartErrorCells(t *testing.T) {
	ctx := context.Background()
	cells := []engine.Cell{
		{Scenario: "sim/gst", Params: engine.Params{N: 24, Horizon: 6, GST: -1, Explicit: engine.FieldGST}},
		{Scenario: "sim/nope", Params: engine.Params{N: 8}},
		{Scenario: "sim/gst", Params: engine.Params{N: 24, Horizon: 6, GST: 2}},
		{Scenario: "sim/gst", Params: engine.Params{N: 24, Horizon: 8, GST: 2}},
	}
	cold := engine.SweepContext(ctx, cells, engine.Options{Workers: 2})
	warm := engine.SweepContext(ctx, cells, engine.Options{
		Workers:   2,
		WarmStart: &engine.WarmStartOptions{},
	})
	for i := range cells {
		if !reflect.DeepEqual(cold[i].WithoutMeta(), warm[i].WithoutMeta()) {
			t.Errorf("cell %d: warm error handling diverges\ncold: %+v\nwarm: %+v",
				i, cold[i].WithoutMeta(), warm[i].WithoutMeta())
		}
	}
}
