// Package warmstart is the snapshot-tree sweep scheduler: it groups a
// sweep's cells by the parameter prefix they share (engine.ForkableScenario
// Fork keys), simulates each shared prefix exactly once (RunTo), and fans
// the cells out across the worker pool from deep-copied snapshots
// (ResumeFrom) — turning a grid whose cells re-simulate identical
// epoch-0..branch prefixes into one spine walk plus cheap resumes.
//
// The scheduler is an execution strategy, not a semantics change: results
// are bit-identical to engine.Sweep for any worker count, snapshot-reuse
// pattern, and eviction schedule (the equivalence suite enforces this).
// Importing the package installs it; engine.Options.WarmStart turns it on
// per sweep.
//
// Memory: resident snapshots are refcounted and budgeted
// (engine.WarmStartOptions.MemoryBudget, via sim.Snapshot.Bytes). Over
// budget, the cheapest-to-rebuild snapshots (lowest branch epoch) are
// evicted; a cell that later needs an evicted checkpoint rebuilds it from
// the nearest surviving ancestor, or from genesis. Scenarios that do not
// implement ForkableScenario — and degenerate groups of one cell — run on
// the ordinary cold path inside the same pool.
package warmstart

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
)

func init() {
	engine.SetWarmStartScheduler(Stream)
}

// entry states. An entry is one planned checkpoint: (prefix key, branch
// epoch).
const (
	statePending    = iota // spine has not reached this branch yet
	stateLive              // snapshot resident, ready to resume from
	stateEvicted           // dropped for budget; rebuild on demand
	stateRebuilding        // one cell is rebuilding; siblings wait
	stateFailed            // RunTo failed; every dependent cell fails
	stateReleased          // last dependent cell finished; memory freed
)

type entry struct {
	branch int
	group  *group
	// ready closes when the spine first publishes this entry (live or
	// failed); resumes wait on it before consulting state.
	ready chan struct{}
	// rebuildCh is non-nil while state == stateRebuilding and closes when
	// the rebuild settles (live, evicted, or failed).
	rebuildCh chan struct{}
	// refs counts cells that still need this checkpoint; 0 releases it.
	refs int
	// pins counts in-flight rebuilds reading this checkpoint as their
	// ancestor; a pinned checkpoint is never handed out as Owned (its
	// snapshot is being read concurrently).
	pins   int
	state  int
	prefix *engine.Prefix
	bytes  int64 // resident bytes charged (0 for aliases of an ancestor)
	err    error
}

// group is one prefix-tree spine: the cells of one scenario sharing one
// Fork key, checkpointed at their sorted distinct branch epochs.
type group struct {
	sch *sched
	fs  engine.ForkableScenario
	// params is the representative cell's defaulted params. RunTo
	// implementations derive the prefix from pre-branch dimensions only
	// (the ForkableScenario contract), so any group member's params serve.
	params  engine.Params
	entries map[int]*entry
	order   []int // sorted branch epochs
	// spineDone is set once runSpine has walked every branch: until then
	// the spine may still be reading its latest prefix as the base of the
	// next hop, so no checkpoint can be handed out as Owned.
	spineDone bool
}

// sched is the per-sweep scheduler state: budget accounting and the
// observability counters surfaced through engine.WarmMeta.
type sched struct {
	mu       sync.Mutex
	budget   int64 // <= 0: unlimited
	resident int64
	peak     int64
	hits     int
	rebuilt  int
	nodes    int
	entries  []*entry // every entry across groups, for eviction scans
}

// Stream is the warm-start implementation of engine.SweepStream: same
// channel contract (one Update per cell in completion order, channel
// closed after the last; cancelled cells marked with the context error),
// same bit-identical results, different execution plan.
func Stream(ctx context.Context, cells []engine.Cell, opt engine.Options) <-chan engine.Update {
	reg := opt.Registry
	if reg == nil {
		reg = engine.Default
	}
	out := make(chan engine.Update)
	if len(cells) == 0 {
		close(out)
		return out
	}
	var ws engine.WarmStartOptions
	if opt.WarmStart != nil {
		ws = *opt.WarmStart
	}
	sch := &sched{budget: ws.Budget()}

	// Plan: classify each cell as warm (forkable, shares a prefix with at
	// least one other cell) or cold.
	type warmCell struct {
		idx    int
		params engine.Params
		branch int
	}
	pending := make(map[string][]warmCell)
	pendingFS := make(map[string]engine.ForkableScenario)
	var keys []string // insertion order, for a deterministic plan
	var colds []int
	for i, c := range cells {
		s, ok := reg.Lookup(c.Scenario)
		if !ok {
			colds = append(colds, i) // surfaces the unknown-scenario error cold
			continue
		}
		fs, ok := s.(engine.ForkableScenario)
		if !ok {
			colds = append(colds, i)
			continue
		}
		p := c.Params.WithDefaults(s.Defaults())
		key, branch, forkable := fs.Fork(p)
		if !forkable || branch <= 0 {
			colds = append(colds, i)
			continue
		}
		k := c.Scenario + "\x00" + key
		if _, seen := pending[k]; !seen {
			keys = append(keys, k)
			pendingFS[k] = fs
		}
		pending[k] = append(pending[k], warmCell{i, p, branch})
	}

	type resumeJob struct {
		idx    int
		params engine.Params
		g      *group
		e      *entry
	}
	var groups []*group
	var resumes []resumeJob
	for _, k := range keys {
		wcs := pending[k]
		if len(wcs) < 2 {
			// A lone cell gains nothing from checkpointing — run it cold.
			for _, wc := range wcs {
				colds = append(colds, wc.idx)
			}
			continue
		}
		g := &group{sch: sch, fs: pendingFS[k], params: wcs[0].params, entries: make(map[int]*entry)}
		for _, wc := range wcs {
			e := g.entries[wc.branch]
			if e == nil {
				e = &entry{branch: wc.branch, group: g, ready: make(chan struct{}), state: statePending}
				g.entries[wc.branch] = e
				g.order = append(g.order, wc.branch)
				sch.entries = append(sch.entries, e)
			}
			e.refs++
			resumes = append(resumes, resumeJob{wc.idx, wc.params, g, e})
		}
		sort.Ints(g.order)
		sch.nodes += len(g.order)
		groups = append(groups, g)
	}
	sort.SliceStable(colds, func(a, b int) bool { return colds[a] < colds[b] })
	// Shallow branches first: their checkpoints publish first.
	sort.SliceStable(resumes, func(a, b int) bool { return resumes[a].e.branch < resumes[b].e.branch })

	// One job queue for spines, colds, and resumes, in that order. The
	// ordering is the no-deadlock argument: a resume blocks on its entry's
	// ready channel, but by FIFO it is dequeued only after every spine job
	// was dequeued — and spines never wait on anything — so a blocked
	// resume's spine is always running or finished.
	total := len(groups) + len(colds) + len(resumes)
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > total {
		workers = total
	}
	type indexed struct {
		i   int
		res engine.Result
	}
	finished := make(chan indexed)
	jobs := make(chan func(), total)
	for _, g := range groups {
		g := g
		jobs <- func() { g.runSpine(ctx) }
	}
	for _, i := range colds {
		i := i
		cell := cells[i]
		jobs <- func() {
			var res engine.Result
			if err := ctx.Err(); err != nil {
				// Cancelled before this cell started: mark it without
				// computing (no Meta — no work was done).
				res = failedCell(reg, cell, err)
			} else {
				start := time.Now() //gasper:nondet wall-clock duration metadata only; never part of result identity
				r, err := reg.RunContext(ctx, cell.Scenario, cell.Params)
				if err != nil {
					r = failedCell(reg, cell, err)
				}
				r.Meta = engine.RunMeta{
					DurationMS: float64(time.Since(start)) / float64(time.Millisecond), //gasper:nondet wall-clock duration metadata only; never part of result identity
					Warm:       sch.warmMeta(false, 0, 0),
				}.Merged(r.Meta)
				res = r
			}
			finished <- indexed{i, res}
		}
	}
	for _, rj := range resumes {
		rj := rj
		cell := cells[rj.idx]
		jobs <- func() {
			var res engine.Result
			if err := ctx.Err(); err != nil {
				res = failedCell(reg, cell, err)
				rj.g.sch.decref(rj.e)
			} else {
				start := time.Now() //gasper:nondet wall-clock duration metadata only; never part of result identity
				pre, saved, err := rj.g.acquire(ctx, rj.e)
				var r engine.Result
				if err == nil {
					r, err = rj.g.fs.ResumeFrom(ctx, pre, rj.params)
				}
				rj.g.sch.decref(rj.e)
				if err != nil {
					r = failedCell(reg, cell, err)
				} else {
					// Stamp provenance exactly as Registry.RunContext does
					// on the cold path.
					r.Scenario = rj.g.fs.Name()
					r.Params = rj.params
				}
				r.Meta = engine.RunMeta{
					DurationMS: float64(time.Since(start)) / float64(time.Millisecond), //gasper:nondet wall-clock duration metadata only; never part of result identity
					Warm:       rj.g.sch.warmMeta(true, rj.e.branch, saved),
				}.Merged(r.Meta)
				res = r
			}
			finished <- indexed{rj.idx, res}
		}
	}
	close(jobs)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				job()
			}
		}()
	}
	go func() {
		wg.Wait()
		close(finished)
	}()
	go func() {
		defer close(out)
		completed := 0
		for f := range finished {
			completed++
			out <- engine.Update{Index: f.i, Result: f.res, Completed: completed, Total: len(cells)}
		}
	}()
	return out
}

// runSpine walks the group's branch epochs in order, extending one prefix
// chain and publishing a checkpoint at each. A RunTo failure fails that
// branch's entry but keeps walking from the last good prefix, so one bad
// extension does not doom deeper (independent) retries — under
// cancellation every remaining entry fails fast with the context error.
func (g *group) runSpine(ctx context.Context) {
	var prev *engine.Prefix
	for _, b := range g.order {
		e := g.entries[b]
		if err := ctx.Err(); err != nil {
			g.sch.publishErr(e, err)
			continue
		}
		pre, err := g.fs.RunTo(ctx, g.params, prev, b)
		if err != nil {
			g.sch.publishErr(e, err)
			continue
		}
		g.sch.publish(e, pre, prev)
		prev = pre
	}
	g.sch.mu.Lock()
	g.spineDone = true
	g.sch.mu.Unlock()
}

// acquire hands a resume its checkpoint, rebuilding it first if the budget
// evicted it. Returns the prefix and the number of prefix epochs this cell
// did not have to simulate (for WarmMeta.EpochsSaved).
func (g *group) acquire(ctx context.Context, e *entry) (*engine.Prefix, int, error) {
	select { //gasper:nondet completion-vs-cancellation: the value path is deterministic and cancellation aborts the cell
	case <-e.ready:
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
	sch := g.sch
	for {
		sch.mu.Lock()
		switch e.state {
		case stateLive:
			pre := e.prefix
			sch.hits++
			// Last consumer, spine finished, nothing aliasing or pinning
			// this checkpoint: hand it over Owned, so the resume may adopt
			// the snapshot's state instead of deep-copying it. The entry is
			// consumed here — released and uncharged — because after
			// adoption the snapshot no longer holds restorable state.
			if e.refs == 1 && e.pins == 0 && g.spineDone && !g.aliasedLocked(e) {
				owned := *pre
				owned.Owned = true
				sch.resident -= e.bytes
				e.bytes = 0
				e.prefix = nil
				e.state = stateReleased
				sch.mu.Unlock()
				return &owned, owned.Epoch, nil
			}
			sch.mu.Unlock()
			return pre, pre.Epoch, nil

		case stateFailed:
			err := e.err
			sch.mu.Unlock()
			return nil, 0, err

		case stateEvicted:
			e.state = stateRebuilding
			e.rebuildCh = make(chan struct{})
			ancEntry := g.nearestLiveAncestorLocked(e.branch)
			var anc *engine.Prefix
			if ancEntry != nil {
				// Pin the ancestor for the duration of the rebuild: RunTo
				// reads its snapshot, so it must not be handed to its own
				// resume as Owned (adoption would mutate it mid-read).
				// Eviction and release stay safe — the prefix pointer is
				// immutable and held here.
				anc = ancEntry.prefix
				ancEntry.pins++
			}
			sch.mu.Unlock()

			pre, err := g.fs.RunTo(ctx, g.params, anc, e.branch)

			sch.mu.Lock()
			if ancEntry != nil {
				ancEntry.pins--
			}
			ch := e.rebuildCh
			e.rebuildCh = nil
			if err != nil {
				if ctx.Err() != nil {
					// Cancellation is not the checkpoint's fault: leave it
					// evicted so the state machine stays consistent;
					// waiting siblings observe their own context.
					e.state = stateEvicted
				} else {
					e.state, e.err = stateFailed, err
				}
				sch.mu.Unlock()
				close(ch)
				return nil, 0, err
			}
			e.prefix = pre
			e.state = stateLive
			sch.rebuilt++
			if anc == nil || pre != anc {
				e.bytes = pre.Snap.Bytes()
				sch.resident += e.bytes
				if sch.resident > sch.peak {
					sch.peak = sch.resident
				}
				sch.enforceBudgetLocked(e)
			}
			sch.mu.Unlock()
			close(ch)
			saved := 0
			if anc != nil {
				saved = anc.Epoch
			}
			return pre, saved, nil

		case stateRebuilding:
			ch := e.rebuildCh
			sch.mu.Unlock()
			select { //gasper:nondet completion-vs-cancellation: the value path is deterministic and cancellation aborts the cell
			case <-ch:
			case <-ctx.Done():
				return nil, 0, ctx.Err()
			}

		default:
			// pending after ready, or released while this cell holds a
			// ref: both would be scheduler bugs.
			st := e.state
			sch.mu.Unlock()
			return nil, 0, fmt.Errorf("warmstart: checkpoint at branch %d in unexpected state %d", e.branch, st)
		}
	}
}

// nearestLiveAncestorLocked finds the deepest resident checkpoint strictly
// below the given branch in this group, for rebuilding from. Caller holds
// sch.mu.
func (g *group) nearestLiveAncestorLocked(branch int) *entry {
	for i := sort.SearchInts(g.order, branch) - 1; i >= 0; i-- {
		if e := g.entries[g.order[i]]; e.state == stateLive {
			return e
		}
	}
	return nil
}

// aliasedLocked reports whether another entry still references the same
// prefix (Done prefixes alias across deeper branches). Caller holds sch.mu.
func (g *group) aliasedLocked(e *entry) bool {
	for _, o := range g.entries {
		if o != e && o.prefix == e.prefix {
			return true
		}
	}
	return false
}

// publish marks an entry live with the spine's freshly extended prefix.
// When RunTo returned the previous checkpoint unchanged (a Done prefix —
// the scenario concluded before this branch), the entry aliases the same
// snapshot and is charged zero bytes.
func (s *sched) publish(e *entry, pre, prev *engine.Prefix) {
	s.mu.Lock()
	e.prefix = pre
	e.state = stateLive
	if pre != prev {
		e.bytes = pre.Snap.Bytes()
		s.resident += e.bytes
		if s.resident > s.peak {
			s.peak = s.resident
		}
		s.enforceBudgetLocked(e)
	}
	s.mu.Unlock()
	close(e.ready)
}

func (s *sched) publishErr(e *entry, err error) {
	s.mu.Lock()
	e.state, e.err = stateFailed, err
	s.mu.Unlock()
	close(e.ready)
}

// enforceBudgetLocked evicts resident checkpoints, lowest branch epoch
// first (the cheapest to rebuild), until the budget holds again — never
// the entry just published (evicting it would thrash: its consumer is by
// definition about to need it). Aliases are skipped: they hold no bytes of
// their own, so evicting one frees nothing. Caller holds s.mu.
//
// Eviction is always safe: prefixes are immutable, so a resume already
// holding the pointer is unaffected; later resumes rebuild.
func (s *sched) enforceBudgetLocked(keep *entry) {
	if s.budget <= 0 {
		return
	}
	for s.resident > s.budget {
		var victim *entry
		for _, e := range s.entries {
			if e == keep || e.state != stateLive || e.bytes == 0 {
				continue
			}
			if victim == nil || e.branch < victim.branch {
				victim = e
			}
		}
		if victim == nil {
			return // only the just-published snapshot remains; keep it
		}
		s.resident -= victim.bytes
		victim.bytes = 0
		victim.prefix = nil
		victim.state = stateEvicted
	}
}

// decref retires one cell's claim on a checkpoint; the last claim releases
// the snapshot.
func (s *sched) decref(e *entry) {
	s.mu.Lock()
	e.refs--
	if e.refs <= 0 && e.state != stateRebuilding {
		if e.state == stateLive {
			s.resident -= e.bytes
		}
		e.bytes = 0
		e.prefix = nil
		e.state = stateReleased
	}
	s.mu.Unlock()
}

// warmMeta snapshots the sweep-wide counters for one cell's RunMeta.
func (s *sched) warmMeta(hit bool, branch, saved int) *engine.WarmMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &engine.WarmMeta{
		Hit:               hit,
		BranchEpoch:       branch,
		EpochsSaved:       saved,
		PrefixNodes:       s.nodes,
		SnapshotHits:      s.hits,
		Rebuilt:           s.rebuilt,
		PeakResidentBytes: s.peak,
	}
}

// failedCell mirrors the cold sweep's failure shape: the defaulted params
// when resolvable, so a failed cell still documents the run it attempted.
func failedCell(reg *engine.Registry, cell engine.Cell, err error) engine.Result {
	p := cell.Params
	if s, ok := reg.Lookup(cell.Scenario); ok {
		p = p.WithDefaults(s.Defaults())
	}
	return engine.Result{Scenario: cell.Scenario, Params: p, Err: err.Error()}
}
